// Stocks: combined SVR + TF-IDF ranking over a stock-news database.
//
// The paper's introduction lists stock databases — where trading volume can
// be used to rank results — among the update-intensive applications SVR
// targets, and §4.3.3 shows how to combine the SVR score with classic term
// scores.  This example indexes news headlines for a set of tickers, ranks
// them by a mix of trading volume (SVR, changing every "tick") and TF-IDF
// relevance (Chunk-TermScore method), streams a volume spike, and contrasts
// pure-SVR ranking with combined ranking.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"svrdb/internal/core"
	"svrdb/internal/relation"
	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
	"svrdb/internal/view"
)

var tickers = []string{"ACME", "GLOBEX", "INITECH", "UMBRELLA", "HOOLI", "STARK", "WAYNE", "WONKA"}

var headlineWords = []string{
	"earnings", "beat", "miss", "guidance", "upgrade", "downgrade", "merger",
	"acquisition", "dividend", "buyback", "lawsuit", "regulator", "chip",
	"shortage", "launch", "recall", "strike", "expansion", "quarterly",
	"results", "outlook", "forecast", "analyst", "rating", "breakthrough",
}

func main() {
	pool := buffer.MustNew(pagefile.MustNewMem(pagefile.DefaultPageSize), 8192)
	db := relation.NewDB(pool)

	news, err := db.CreateTable(relation.Schema{
		Name: "News",
		Columns: []relation.Column{
			{Name: "nID", Kind: relation.KindInt64},
			{Name: "ticker", Kind: relation.KindString},
			{Name: "headline", Kind: relation.KindString},
		},
	})
	check(err)
	volume, err := db.CreateTable(relation.Schema{
		Name: "Volume",
		Columns: []relation.Column{
			{Name: "vID", Kind: relation.KindInt64},
			{Name: "nID", Kind: relation.KindInt64},
			{Name: "shares", Kind: relation.KindInt64},
		},
	})
	check(err)

	rng := rand.New(rand.NewSource(8))
	const nHeadlines = 1200
	for n := 1; n <= nHeadlines; n++ {
		ticker := tickers[rng.Intn(len(tickers))]
		words := make([]string, 10)
		for i := range words {
			words[i] = headlineWords[rng.Intn(len(headlineWords))]
		}
		headline := strings.ToLower(ticker) + " " + strings.Join(words, " ")
		check(news.Insert(relation.Row{relation.Int(int64(n)), relation.Str(ticker), relation.Str(headline)}))
		check(volume.Insert(relation.Row{relation.Int(int64(n)), relation.Int(int64(n)),
			relation.Int(int64(rng.Intn(1_000_000)))}))
	}

	// SVR score: the trading volume associated with the headline's ticker at
	// the moment the query runs, scaled down so TF-IDF stays visible in the
	// combined score.
	spec := view.Spec{
		Components: []view.Component{
			view.LookupColumn("Volume", "shares", "nID"),
		},
		Agg:              view.WeightedSum(1.0 / 100000),
		IncludeTermScore: true,
	}

	engine := core.NewEngine(db, core.Options{})
	idx, err := engine.CreateTextIndex("news_headline", "News", "headline", core.IndexOptions{
		Method: core.MethodChunkTermScore,
		Spec:   spec,
	})
	check(err)

	query := "earnings guidance"
	fmt.Printf("pure SVR ranking for %q (volume only):\n", query)
	printHits(idx, query, false)
	fmt.Printf("\ncombined SVR + TF-IDF ranking for %q:\n", query)
	printHits(idx, query, true)

	// A volume spike on one ticker's headlines.  The burst runs inside
	// ApplyBatch, so the 2000 row updates flow into the index through one
	// batched ApplyUpdates per index instead of 2000 B+-tree round-trips.
	fmt.Println("\nsimulating a trading-volume spike on a handful of headlines...")
	check(engine.ApplyBatch(func() error {
		for i := 0; i < 2000; i++ {
			nID := int64(rng.Intn(50) + 1)
			row, err := volume.Get(nID)
			if err != nil {
				return err
			}
			if err := volume.Update(nID, map[string]relation.Value{
				"shares": relation.Int(row[2].I + int64(rng.Intn(500_000))),
			}); err != nil {
				return err
			}
		}
		return nil
	}))
	check(idx.MaintenanceErr())

	fmt.Printf("\ncombined ranking for %q after the spike:\n", query)
	printHits(idx, query, true)

	stats := idx.Stats()
	fmt.Printf("\nindex statistics: method=%s, %d score updates, %d short-list postings written\n",
		stats.Method, stats.ScoreUpdates, stats.ShortListPostingsWritten)
}

func printHits(idx *core.TextIndex, query string, withTermScores bool) {
	res, err := idx.Search(core.SearchRequest{Query: query, K: 8, WithTermScores: withTermScores, LoadRows: true})
	check(err)
	if len(res.Hits) == 0 {
		fmt.Println("  (no results)")
		return
	}
	for i, hit := range res.Hits {
		headline := hit.Row[2].S
		if len(headline) > 60 {
			headline = headline[:60] + "..."
		}
		fmt.Printf("  %d. [%-8s] score %9.3f  %s\n", i+1, hit.Row[1].S, hit.Score, headline)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
