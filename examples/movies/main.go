// Movies: the paper's Internet Archive scenario at a realistic scale.
//
// The example generates a few thousand movies with reviews and usage
// statistics, builds SVR text indexes with two different methods (ID and
// Chunk) over the same data, replays a flash-crowd day — thousands of visit
// and rating updates concentrated on a small "focus set" of suddenly popular
// movies — and compares:
//
//   - how the ranking of a keyword query evolves as the structured values
//     change (the user-visible payoff of SVR), and
//   - how much work each index method spends absorbing those updates and
//     answering queries (the paper's core trade-off).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"svrdb/internal/core"
	"svrdb/internal/relation"
	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
	"svrdb/internal/workload"
)

func main() {
	const nMovies = 1500
	queries := []string{"golden gate", "gold rush", "cable car", "silent film"}

	for _, method := range []core.MethodKind{core.MethodID, core.MethodChunk} {
		fmt.Printf("=== method: %s ===\n", method)
		runScenario(method, nMovies, queries)
		fmt.Println()
	}
}

func runScenario(method core.MethodKind, nMovies int, queries []string) {
	pool := buffer.MustNew(pagefile.MustNewMem(pagefile.DefaultPageSize), 16384)
	db := relation.NewDB(pool)
	params := workload.DefaultArchiveParams()
	params.NumMovies = nMovies
	if _, err := workload.BuildArchiveDB(db, params); err != nil {
		log.Fatal(err)
	}

	engine := core.NewEngine(db, core.Options{})
	start := time.Now()
	idx, err := engine.CreateTextIndex("movies_desc", "Movies", "desc", core.IndexOptions{
		Method: method,
		Spec:   workload.ArchiveSpec(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built index over %d movies in %s (long lists %.2f MB)\n",
		nMovies, time.Since(start).Round(time.Millisecond),
		float64(idx.Stats().LongListBytes)/(1024*1024))

	fmt.Println("ranking before the flash crowd:")
	before := topMovie(idx, queries[0])

	// A flash-crowd day: 5000 structured updates, 60% of them hitting a
	// focus set of 10 suddenly popular movies.
	rng := rand.New(rand.NewSource(99))
	stats, err := db.Table("Statistics")
	if err != nil {
		log.Fatal(err)
	}
	reviews, err := db.Table("Reviews")
	if err != nil {
		log.Fatal(err)
	}
	focus := rng.Perm(nMovies)[:10]
	updStart := time.Now()
	const nUpdates = 5000
	nextReview := int64(1_000_000)
	for i := 0; i < nUpdates; i++ {
		var mID int64
		if rng.Float64() < 0.6 {
			mID = int64(focus[rng.Intn(len(focus))] + 1)
		} else {
			mID = int64(rng.Intn(nMovies) + 1)
		}
		if rng.Float64() < 0.8 {
			row, err := stats.Get(mID)
			if err != nil {
				log.Fatal(err)
			}
			delta := int64(rng.Intn(2000) + 50)
			if err := stats.Update(mID, map[string]relation.Value{
				"nVisit": relation.Int(row[2].I + delta),
			}); err != nil {
				log.Fatal(err)
			}
		} else {
			if err := reviews.Insert(relation.Row{
				relation.Int(nextReview), relation.Int(mID), relation.Float(float64(rng.Intn(5) + 1)),
			}); err != nil {
				log.Fatal(err)
			}
			nextReview++
		}
	}
	if err := idx.MaintenanceErr(); err != nil {
		log.Fatal(err)
	}
	updElapsed := time.Since(updStart)
	fmt.Printf("replayed %d structured updates in %s (%.3f ms/update, %d short-list postings written)\n",
		nUpdates, updElapsed.Round(time.Millisecond),
		float64(updElapsed.Microseconds())/float64(nUpdates)/1000,
		idx.Stats().ShortListPostingsWritten)

	fmt.Println("ranking after the flash crowd:")
	after := topMovie(idx, queries[0])
	if before != after {
		fmt.Printf("-> the top result for %q changed from movie %d to movie %d, driven purely by structured values\n",
			queries[0], before, after)
	}

	// Query-side cost across several keyword queries on a cold cache.
	var total time.Duration
	var postings int
	for _, q := range queries {
		if err := pool.EvictAll(); err != nil {
			log.Fatal(err)
		}
		qStart := time.Now()
		res, err := idx.Search(core.SearchRequest{Query: q, K: 10})
		if err != nil {
			log.Fatal(err)
		}
		total += time.Since(qStart)
		postings += res.PostingsScanned
	}
	fmt.Printf("cold-cache queries: %.3f ms average, %d postings scanned per query on average\n",
		float64(total.Microseconds())/float64(len(queries))/1000, postings/len(queries))
}

func topMovie(idx *core.TextIndex, query string) int64 {
	res, err := idx.Search(core.SearchRequest{Query: query, K: 5, LoadRows: true})
	if err != nil {
		log.Fatal(err)
	}
	for i, hit := range res.Hits {
		fmt.Printf("  %d. %-24s mID %-6d SVR score %12.1f\n", i+1, hit.Row[1].S, hit.PK, hit.Score)
	}
	if len(res.Hits) == 0 {
		return 0
	}
	return res.Hits[0].PK
}
