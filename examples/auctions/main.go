// Auctions: SVR over an eBay-style online-auction table.
//
// The paper's introduction calls out on-line auctions as a natural
// update-intensive SVR application: listings should be ranked by the current
// bid and by how close the auction is to completion, both of which change
// constantly as users bid.  This example builds an Auctions table whose SVR
// score combines the listing's own columns (current bid, urgency) with the
// number of watchers, streams a burst of bids, and shows keyword searches
// tracking the live state of the marketplace.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"svrdb/internal/core"
	"svrdb/internal/relation"
	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
	"svrdb/internal/view"
)

var itemWords = []string{
	"vintage", "camera", "lens", "guitar", "amplifier", "vinyl", "record",
	"mechanical", "keyboard", "watch", "chronograph", "bicycle", "frame",
	"oak", "desk", "lamp", "poster", "signed", "first", "edition", "comic",
	"trading", "card", "console", "cartridge", "synthesizer", "drum", "machine",
}

func main() {
	pool := buffer.MustNew(pagefile.MustNewMem(pagefile.DefaultPageSize), 8192)
	db := relation.NewDB(pool)

	auctions, err := db.CreateTable(relation.Schema{
		Name: "Auctions",
		Columns: []relation.Column{
			{Name: "aID", Kind: relation.KindInt64},
			{Name: "title", Kind: relation.KindString},
			{Name: "description", Kind: relation.KindString},
			{Name: "currentBid", Kind: relation.KindFloat64},
			{Name: "hoursLeft", Kind: relation.KindFloat64},
		},
	})
	check(err)
	watchers, err := db.CreateTable(relation.Schema{
		Name: "Watchers",
		Columns: []relation.Column{
			{Name: "wID", Kind: relation.KindInt64},
			{Name: "aID", Kind: relation.KindInt64},
		},
	})
	check(err)

	rng := rand.New(rand.NewSource(4))
	const nAuctions = 800
	wID := int64(1)
	for a := 1; a <= nAuctions; a++ {
		words := make([]string, 12)
		for i := range words {
			words[i] = itemWords[rng.Intn(len(itemWords))]
		}
		check(auctions.Insert(relation.Row{
			relation.Int(int64(a)),
			relation.Str(strings.Title(words[0] + " " + words[1])),
			relation.Str(strings.Join(words, " ")),
			relation.Float(float64(rng.Intn(200) + 1)),
			relation.Float(float64(rng.Intn(72) + 1)),
		}))
		for w := 0; w < rng.Intn(20); w++ {
			check(watchers.Insert(relation.Row{relation.Int(wID), relation.Int(int64(a))}))
			wID++
		}
	}

	// SVR score: current bid + urgency bonus (close-to-completion listings
	// rank higher) + 5 points per watcher.
	spec := view.Spec{
		Components: []view.Component{
			view.OwnColumn("Auctions", "currentBid"),
			{
				Name:      "urgency",
				DependsOn: []view.Dependency{{Table: "Auctions"}},
				Eval: func(db *relation.DB, pk int64) (float64, error) {
					tbl, err := db.Table("Auctions")
					if err != nil {
						return 0, err
					}
					row, err := tbl.Get(pk)
					if err != nil {
						return 0, nil
					}
					hoursLeft := row[4].F
					return 500 / (hoursLeft + 1), nil
				},
			},
			view.CountRows("Watchers", "aID"),
		},
		Agg: view.WeightedSum(1, 1, 5),
	}

	engine := core.NewEngine(db, core.Options{})
	idx, err := engine.CreateTextIndex("auctions_desc", "Auctions", "description", core.IndexOptions{
		Method: core.MethodChunk,
		Spec:   spec,
	})
	check(err)

	query := "vintage camera"
	fmt.Printf("marketplace ranking for %q before the bidding war:\n", query)
	printHits(idx, query)

	// A bidding war: 3000 bids land, most of them on a handful of hot
	// items.  The burst runs inside ApplyBatch so the resulting score
	// changes reach the index through the batched write pipeline.
	hot := rng.Perm(nAuctions)[:8]
	check(engine.ApplyBatch(func() error {
		for i := 0; i < 3000; i++ {
			var aID int64
			if rng.Float64() < 0.5 {
				aID = int64(hot[rng.Intn(len(hot))] + 1)
			} else {
				aID = int64(rng.Intn(nAuctions) + 1)
			}
			row, err := auctions.Get(aID)
			if err != nil {
				return err
			}
			newBid := row[3].F + float64(rng.Intn(50)+1)
			newHours := row[4].F * 0.999
			if err := auctions.Update(aID, map[string]relation.Value{
				"currentBid": relation.Float(newBid),
				"hoursLeft":  relation.Float(newHours),
			}); err != nil {
				return err
			}
		}
		return nil
	}))
	check(idx.MaintenanceErr())

	fmt.Printf("\nafter 3000 bids (hot items: %v):\n", hot)
	printHits(idx, query)

	stats := idx.Stats()
	fmt.Printf("\nindex statistics: %d score updates absorbed, %d short-list postings written, %d postings scanned by queries\n",
		stats.ScoreUpdates, stats.ShortListPostingsWritten, stats.PostingsScanned)
}

func printHits(idx *core.TextIndex, query string) {
	res, err := idx.Search(core.SearchRequest{Query: query, K: 8, LoadRows: true})
	check(err)
	if len(res.Hits) == 0 {
		fmt.Println("  (no matching listings)")
		return
	}
	for i, hit := range res.Hits {
		fmt.Printf("  %d. %-28s aID %-5d bid %8.2f score %10.1f\n",
			i+1, hit.Row[1].S, hit.PK, hit.Row[3].F, hit.Score)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
