// Quickstart: the smallest end-to-end SVR example.
//
// It builds the paper's Figure 1 database by hand (two movies, their reviews
// and usage statistics), creates an SVR text index over the description
// column using the Chunk method, runs the paper's example query
//
//	SELECT * FROM Movies m
//	ORDER BY score(m.desc, "golden gate") FETCH TOP 10 RESULTS ONLY
//
// and then shows why SVR matters: after a burst of visits to the other
// movie, the same query returns the opposite order — without any index
// rebuild, because the Chunk method absorbs the score update.
package main

import (
	"fmt"
	"log"

	"svrdb/internal/core"
	"svrdb/internal/relation"
	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
	"svrdb/internal/view"
)

func main() {
	// 1. Storage and relational catalog.
	pool := buffer.MustNew(pagefile.MustNewMem(pagefile.DefaultPageSize), 1024)
	db := relation.NewDB(pool)

	movies, err := db.CreateTable(relation.Schema{
		Name: "Movies",
		Columns: []relation.Column{
			{Name: "mID", Kind: relation.KindInt64},
			{Name: "name", Kind: relation.KindString},
			{Name: "desc", Kind: relation.KindString},
		},
	})
	check(err)
	reviews, err := db.CreateTable(relation.Schema{
		Name: "Reviews",
		Columns: []relation.Column{
			{Name: "rID", Kind: relation.KindInt64},
			{Name: "mID", Kind: relation.KindInt64},
			{Name: "rating", Kind: relation.KindFloat64},
		},
	})
	check(err)
	stats, err := db.CreateTable(relation.Schema{
		Name: "Statistics",
		Columns: []relation.Column{
			{Name: "sID", Kind: relation.KindInt64},
			{Name: "mID", Kind: relation.KindInt64},
			{Name: "nVisit", Kind: relation.KindInt64},
			{Name: "nDownload", Kind: relation.KindInt64},
		},
	})
	check(err)

	// 2. The Figure 1 data: two movies that both mention "golden gate" once.
	check(movies.Insert(relation.Row{relation.Int(1), relation.Str("American Thrift"),
		relation.Str("a 1962 classic filmed near the golden gate bridge")}))
	check(movies.Insert(relation.Row{relation.Int(2), relation.Str("Amateur Film"),
		relation.Str("amateur footage of the golden gate in heavy fog")}))

	check(reviews.Insert(relation.Row{relation.Int(1), relation.Int(1), relation.Float(4.5)}))
	check(reviews.Insert(relation.Row{relation.Int(2), relation.Int(1), relation.Float(5.0)}))
	check(reviews.Insert(relation.Row{relation.Int(3), relation.Int(2), relation.Float(2.0)}))

	check(stats.Insert(relation.Row{relation.Int(1), relation.Int(1), relation.Int(20000), relation.Int(1500)}))
	check(stats.Insert(relation.Row{relation.Int(2), relation.Int(2), relation.Int(300), relation.Int(20)}))

	// 3. The SVR score specification of §3.1:
	//    S1 = avg review rating, S2 = nVisit, S3 = nDownload,
	//    Agg = S1*100 + S2/2 + S3.
	spec := view.Spec{
		Components: []view.Component{
			view.AvgColumn("Reviews", "rating", "mID"),
			view.LookupColumn("Statistics", "nVisit", "mID"),
			view.LookupColumn("Statistics", "nDownload", "mID"),
		},
		Agg: view.WeightedSum(100, 0.5, 1),
	}

	// 4. Create the text index (the paper's Chunk method is the default).
	engine := core.NewEngine(db, core.Options{})
	idx, err := engine.CreateTextIndex("movies_desc", "Movies", "desc", core.IndexOptions{
		Method: core.MethodChunk,
		Spec:   spec,
	})
	check(err)

	// 5. The paper's example query.
	fmt.Println("top movies for \"golden gate\" (ranked by structured values):")
	printResults(idx, "golden gate")

	// 6. A flash crowd hits "Amateur Film": 150 000 new visits.  The update
	//    flows through the Statistics table into the Score view and then into
	//    the index (Algorithm 1); no rebuild happens.
	row, err := stats.Get(2)
	check(err)
	check(stats.Update(2, map[string]relation.Value{"nVisit": relation.Int(row[2].I + 150000)}))
	check(idx.MaintenanceErr())

	fmt.Println("\nafter a flash crowd on movie 2 (150000 extra visits):")
	printResults(idx, "golden gate")
}

func printResults(idx *core.TextIndex, query string) {
	res, err := idx.Search(core.SearchRequest{Query: query, K: 10, LoadRows: true})
	check(err)
	for i, hit := range res.Hits {
		fmt.Printf("  %d. %-16s (mID %d, SVR score %.1f)\n", i+1, hit.Row[1].S, hit.PK, hit.Score)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
