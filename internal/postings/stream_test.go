package postings

import (
	"bytes"
	"math/rand"
	"testing"
)

// streamFromBytes runs every stream decoder against its slice-based
// counterpart to make sure the two decodings agree posting for posting.

func TestStreamIDListMatchesSliceDecoder(t *testing.T) {
	b := NewIDListBuilder()
	rng := rand.New(rand.NewSource(1))
	doc := DocID(0)
	for i := 0; i < 5000; i++ {
		doc += DocID(rng.Intn(50) + 1)
		if err := b.Add(doc); err != nil {
			t.Fatal(err)
		}
	}
	data := b.Bytes()

	sliceIt, err := NewIDListIterator(data)
	if err != nil {
		t.Fatal(err)
	}
	streamIt, err := NewStreamIDList(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if streamIt.Len() != sliceIt.Len() {
		t.Fatalf("lengths differ: stream %d, slice %d", streamIt.Len(), sliceIt.Len())
	}
	compareIterators(t, sliceIt, streamIt)
}

func TestStreamScoreListMatchesSliceDecoder(t *testing.T) {
	b := NewScoreListBuilder()
	rng := rand.New(rand.NewSource(2))
	score := 1e9
	for i := 0; i < 3000; i++ {
		score -= rng.Float64() * 100
		if err := b.Add(DocID(i), score); err != nil {
			t.Fatal(err)
		}
	}
	data := b.Bytes()
	sliceIt, err := NewScoreListIterator(data)
	if err != nil {
		t.Fatal(err)
	}
	streamIt, err := NewStreamScoreList(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	compareIterators(t, sliceIt, streamIt)
}

func TestStreamChunkedListMatchesSliceDecoder(t *testing.T) {
	for _, withTerm := range []bool{false, true} {
		var b *ChunkedListBuilder
		if withTerm {
			b = NewChunkedTermListBuilder()
		} else {
			b = NewChunkedListBuilder()
		}
		rng := rand.New(rand.NewSource(3))
		for cid := int32(40); cid >= 1; cid -= int32(rng.Intn(3) + 1) {
			var posts []ChunkPosting
			doc := DocID(0)
			for i := 0; i < rng.Intn(100); i++ {
				doc += DocID(rng.Intn(20) + 1)
				posts = append(posts, ChunkPosting{Doc: doc, TermScore: rng.Float32()})
			}
			if err := b.AddChunk(cid, posts); err != nil {
				t.Fatal(err)
			}
		}
		data := b.Bytes()
		sliceIt, err := NewChunkedListIterator(data)
		if err != nil {
			t.Fatal(err)
		}
		streamIt, err := NewStreamChunkedList(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if streamIt.NumChunks() != sliceIt.NumChunks() || streamIt.Len() != sliceIt.Len() {
			t.Fatalf("headers differ: stream (%d,%d) slice (%d,%d)",
				streamIt.Len(), streamIt.NumChunks(), sliceIt.Len(), sliceIt.NumChunks())
		}
		compareIterators(t, sliceIt, streamIt)
	}
}

func TestStreamIDTermListMatchesSliceDecoder(t *testing.T) {
	b := NewIDTermListBuilder()
	rng := rand.New(rand.NewSource(4))
	doc := DocID(0)
	for i := 0; i < 2000; i++ {
		doc += DocID(rng.Intn(9) + 1)
		if err := b.Add(doc, rng.Float32()); err != nil {
			t.Fatal(err)
		}
	}
	data := b.Bytes()
	sliceIt, err := NewIDTermListIterator(data)
	if err != nil {
		t.Fatal(err)
	}
	streamIt, err := NewStreamIDTermList(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	compareIterators(t, sliceIt, streamIt)
}

func TestStreamDecodersOnEmptyInput(t *testing.T) {
	if it, err := NewStreamIDList(bytes.NewReader(nil)); err != nil {
		t.Fatal(err)
	} else if _, ok, _ := it.Next(); ok {
		t.Error("empty stream ID list yielded a posting")
	}
	if it, err := NewStreamScoreList(bytes.NewReader(nil)); err != nil {
		t.Fatal(err)
	} else if _, ok, _ := it.Next(); ok {
		t.Error("empty stream score list yielded a posting")
	}
	if it, err := NewStreamChunkedList(bytes.NewReader(nil)); err != nil {
		t.Fatal(err)
	} else if _, ok, _ := it.Next(); ok {
		t.Error("empty stream chunked list yielded a posting")
	}
	if it, err := NewStreamIDTermList(bytes.NewReader(nil)); err != nil {
		t.Fatal(err)
	} else if _, ok, _ := it.Next(); ok {
		t.Error("empty stream ID+term list yielded a posting")
	}
}

func TestStreamDecodersOnTruncatedInput(t *testing.T) {
	b := NewScoreListBuilder()
	for i := 0; i < 100; i++ {
		if err := b.Add(DocID(i), float64(1000-i)); err != nil {
			t.Fatal(err)
		}
	}
	data := b.Bytes()
	it, err := NewStreamScoreList(bytes.NewReader(data[:len(data)/2]))
	if err != nil {
		t.Fatal(err)
	}
	sawError := false
	for {
		_, ok, err := it.Next()
		if err != nil {
			sawError = true
			break
		}
		if !ok {
			break
		}
	}
	if !sawError {
		t.Error("truncated score list decoded without error")
	}
}

func compareIterators(t *testing.T, want, got Iterator) {
	t.Helper()
	for i := 0; ; i++ {
		we, wok, werr := want.Next()
		ge, gok, gerr := got.Next()
		if werr != nil || gerr != nil {
			t.Fatalf("unexpected errors at %d: %v / %v", i, werr, gerr)
		}
		if wok != gok {
			t.Fatalf("iterators disagree on length at %d: %v vs %v", i, wok, gok)
		}
		if !wok {
			return
		}
		if we.Doc != ge.Doc || we.SortKey != ge.SortKey || we.CID != ge.CID || we.TermScore != ge.TermScore {
			t.Fatalf("posting %d differs: slice %+v stream %+v", i, we, ge)
		}
	}
}
