// Package postings defines the posting representations shared by all the
// inverted-list methods in the paper, the compressed on-disk layouts of the
// long (immutable) lists, and the iterator/merge machinery the query
// algorithms are written against.
//
// Five long-list layouts are provided, one per index method family:
//
//   - IDList            — ascending document IDs, d-gap + varint encoded
//     (the ID method, §4.2.1).
//   - ScoreList         — (score descending, docID) with the score stored in
//     every posting (the Score-Threshold long list, §4.3.1).
//   - ChunkedList       — postings grouped into chunks ordered by descending
//     chunk ID; within a chunk ascending docIDs, d-gap encoded; the chunk ID
//     is stored once per chunk (the Chunk method, §4.3.2).
//   - IDTermList        — ascending docIDs each carrying a float32 term
//     weight (the ID-TermScore baseline and the fancy lists of §4.3.3).
//   - ChunkedTermList   — the Chunk layout with a float32 term weight per
//     posting (the Chunk-TermScore method, §4.3.3).
//
// Each layout has two wire encodings.  The legacy per-layout varint
// encodings (postings.go) remain readable forever; new blobs default to the
// compressed posting-block format (block.go): fixed-capacity blocks with
// delta + bitpacked bodies, grouped under super-blocks whose skip headers
// let a reader seek past whole page runs without decoding them.  The stream
// readers auto-detect the encoding by first byte and expose the seek
// capability as SeekDoc / SeekScoreLE / SeekChunkLE (false on legacy
// blobs).  See the block.go package-level comment for the byte-level
// grammar and ARCHITECTURE.md "Posting block format" for the design
// rationale.
//
// Short lists live in B+-trees (package index) but are exposed to the query
// algorithms as the same Iterator interface so that the union
// "ShortList(t) ∪ LongList(t)" of Algorithm 2 is a single merged stream.
//
// See ARCHITECTURE.md for the layer map — where this package sits in the
// stack — and for the repo-wide concurrency contract.
package postings
