package postings

import "sync"

// This file defines the block-at-a-time iteration protocol the query read
// path runs on.  The virtual-call-per-posting Iterator interface is kept for
// compatibility (and for cold paths such as list rebuilds), but every hot
// component — the on-disk long-list decoders, the short-list cursors and the
// merge combinators — natively implements BatchIterator, so the inner query
// loops move whole blocks of postings between pipeline stages instead of one
// entry per virtual call.

// BatchSize is the number of entries moved between pipeline stages per
// NextBatch call.  It is sized so a batch of Entry values (40 bytes each)
// spans a few cache pages and roughly one on-disk page of encoded postings.
const BatchSize = 256

// BatchIterator yields postings in the list's native order, a block at a
// time.
type BatchIterator interface {
	// NextBatch fills buf with as many entries as are immediately available,
	// up to len(buf), and returns how many were written.  n == 0 means the
	// stream is exhausted; 0 < n <= len(buf) means more entries may remain.
	NextBatch(buf []Entry) (n int, err error)
}

// SingleStep adapts any Iterator to the batched protocol by stepping it once
// per entry.  It exists so code that only has a plain Iterator (custom
// sources, tests) can feed the batched combinators.
type SingleStep struct {
	It Iterator
}

// NextBatch implements BatchIterator.
func (s SingleStep) NextBatch(buf []Entry) (int, error) {
	n := 0
	for n < len(buf) {
		e, ok, err := s.It.Next()
		if err != nil {
			return n, err
		}
		if !ok {
			break
		}
		buf[n] = e
		n++
	}
	return n, nil
}

// AsBatch upgrades an Iterator to a BatchIterator, using the native batched
// implementation when the iterator has one and a SingleStep adapter
// otherwise.
func AsBatch(it Iterator) BatchIterator {
	if b, ok := it.(BatchIterator); ok {
		return b
	}
	return SingleStep{It: it}
}

// Closer is implemented by combinators that hold pooled scratch buffers;
// Close returns the buffers to the pool and propagates to wrapped inputs.
// Closing is optional — an unclosed combinator is merely invisible to the
// buffer pool — and a closed combinator must not be used again.
type Closer interface {
	Close()
}

// CloseIterator releases its scratch buffers if it implements Closer.
func CloseIterator(it any) {
	if c, ok := it.(Closer); ok {
		c.Close()
	}
}

// entryBufPool recycles the per-query batch buffers so the steady-state
// query path allocates nothing per query.
var entryBufPool = sync.Pool{
	New: func() any {
		b := make([]Entry, BatchSize)
		return &b
	},
}

func getEntryBuf() *[]Entry  { return entryBufPool.Get().(*[]Entry) }
func putEntryBuf(b *[]Entry) { entryBufPool.Put(b) }

// CollectBatched drains a BatchIterator into a slice; the batched
// counterpart of CollectAll, used by tests and list rebuilds.
func CollectBatched(src BatchIterator) ([]Entry, error) {
	var out []Entry
	buf := getEntryBuf()
	defer putEntryBuf(buf)
	for {
		n, err := src.NextBatch(*buf)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return out, nil
		}
		out = append(out, (*buf)[:n]...)
	}
}
