package postings

import (
	"errors"
	"fmt"

	"svrdb/internal/codec"
)

// DocID identifies a document (the primary key of the indexed relation).
type DocID int64

// Op marks a short-list posting as an addition or removal of a term from a
// document, as required for incremental content updates (Appendix A.1).
type Op uint8

const (
	// OpAdd is a normal posting: the document contains the term.
	OpAdd Op = iota
	// OpRem records that the term was removed from the document by a content
	// update; it cancels the matching long-list posting.
	OpRem
)

// Entry is one posting as seen by the query algorithms, independent of which
// physical layout produced it.
type Entry struct {
	Doc DocID
	// SortKey is the value the containing list is ordered by, descending:
	// the (possibly stale) list score for score-ordered lists, or the chunk
	// ID for chunk-ordered lists.  ID-ordered lists use 0.
	SortKey float64
	// CID is the chunk ID for chunk-ordered lists (0 otherwise).
	CID int32
	// TermScore is the stored normalized term weight for TermScore layouts.
	TermScore float32
	// Op distinguishes ADD from REM short-list postings.
	Op Op
	// FromShort records whether the posting came from a short list.
	FromShort bool
}

// Iterator yields postings in the list's native order.
type Iterator interface {
	// Next returns the next posting.  ok is false when the list is
	// exhausted, in which case the entry is the zero value.
	Next() (e Entry, ok bool, err error)
}

// ErrOrder is returned by builders when input postings are not in the
// required order.
var ErrOrder = errors.New("postings: input out of order")

// --- slice iterator ----------------------------------------------------------

// SliceIterator iterates over an in-memory slice of entries (used for short
// lists, which are small enough to materialize per query).
type SliceIterator struct {
	entries []Entry
	pos     int
}

// NewSliceIterator returns an iterator over entries (not copied).
func NewSliceIterator(entries []Entry) *SliceIterator {
	return &SliceIterator{entries: entries}
}

// Len reports how many entries remain to be consumed.
func (it *SliceIterator) Len() int { return len(it.entries) - it.pos }

// Next implements Iterator.
func (it *SliceIterator) Next() (Entry, bool, error) {
	if it.pos >= len(it.entries) {
		return Entry{}, false, nil
	}
	e := it.entries[it.pos]
	it.pos++
	return e, true, nil
}

// NextBatch implements BatchIterator by bulk-copying from the backing slice.
func (it *SliceIterator) NextBatch(buf []Entry) (int, error) {
	n := copy(buf, it.entries[it.pos:])
	it.pos += n
	return n, nil
}

// --- ID list (ID method) ------------------------------------------------------

// IDListBuilder encodes an ascending sequence of document IDs.
type IDListBuilder struct {
	buf   []byte
	count int
	last  DocID
}

// NewIDListBuilder returns an empty builder.
func NewIDListBuilder() *IDListBuilder { return &IDListBuilder{} }

// Add appends a document ID; IDs must be strictly ascending and non-negative.
func (b *IDListBuilder) Add(doc DocID) error {
	if doc < 0 {
		return fmt.Errorf("postings: negative doc ID %d", doc)
	}
	if b.count > 0 && doc <= b.last {
		return fmt.Errorf("%w: doc %d after %d", ErrOrder, doc, b.last)
	}
	if b.count == 0 {
		b.buf = codec.PutUvarint(b.buf, uint64(doc))
	} else {
		b.buf = codec.PutUvarint(b.buf, uint64(doc-b.last))
	}
	b.last = doc
	b.count++
	return nil
}

// Len reports the number of postings added.
func (b *IDListBuilder) Len() int { return b.count }

// Bytes returns the encoded list: a count header followed by d-gaps.
func (b *IDListBuilder) Bytes() []byte {
	out := codec.PutUvarint(nil, uint64(b.count))
	return append(out, b.buf...)
}

// IDListIterator decodes an encoded ID list.
type IDListIterator struct {
	data  []byte
	off   int
	n     int
	seen  int
	last  DocID
	valid bool
}

// NewIDListIterator returns an iterator over data produced by IDListBuilder.
func NewIDListIterator(data []byte) (*IDListIterator, error) {
	if len(data) == 0 {
		return &IDListIterator{}, nil
	}
	n, off, err := codec.Uvarint(data)
	if err != nil {
		return nil, err
	}
	return &IDListIterator{data: data, off: off, n: int(n), valid: true}, nil
}

// Len reports the total number of postings in the list.
func (it *IDListIterator) Len() int { return it.n }

// Next implements Iterator.
func (it *IDListIterator) Next() (Entry, bool, error) {
	if !it.valid || it.seen >= it.n {
		return Entry{}, false, nil
	}
	gap, sz, err := codec.Uvarint(it.data[it.off:])
	if err != nil {
		return Entry{}, false, err
	}
	it.off += sz
	if it.seen == 0 {
		it.last = DocID(gap)
	} else {
		it.last += DocID(gap)
	}
	it.seen++
	return Entry{Doc: it.last}, true, nil
}

// --- Score list (Score-Threshold long list) -----------------------------------

// ScoreListBuilder encodes (score, docID) postings ordered by descending
// score (ties by ascending docID).
type ScoreListBuilder struct {
	buf       []byte
	count     int
	lastScore float64
	lastDoc   DocID
}

// NewScoreListBuilder returns an empty builder.
func NewScoreListBuilder() *ScoreListBuilder { return &ScoreListBuilder{} }

// Add appends a posting; postings must arrive in descending score order.
func (b *ScoreListBuilder) Add(doc DocID, score float64) error {
	if doc < 0 {
		return fmt.Errorf("postings: negative doc ID %d", doc)
	}
	if b.count > 0 {
		if score > b.lastScore || (score == b.lastScore && doc <= b.lastDoc) {
			return fmt.Errorf("%w: (doc %d, score %g) after (doc %d, score %g)", ErrOrder, doc, score, b.lastDoc, b.lastScore)
		}
	}
	b.buf = codec.PutFloat64(b.buf, score)
	b.buf = codec.PutUvarint(b.buf, uint64(doc))
	b.lastScore, b.lastDoc = score, doc
	b.count++
	return nil
}

// Len reports the number of postings added.
func (b *ScoreListBuilder) Len() int { return b.count }

// Bytes returns the encoded list.
func (b *ScoreListBuilder) Bytes() []byte {
	out := codec.PutUvarint(nil, uint64(b.count))
	return append(out, b.buf...)
}

// ScoreListIterator decodes a ScoreListBuilder list.
type ScoreListIterator struct {
	data []byte
	off  int
	n    int
	seen int
}

// NewScoreListIterator returns an iterator over an encoded score list.
func NewScoreListIterator(data []byte) (*ScoreListIterator, error) {
	if len(data) == 0 {
		return &ScoreListIterator{}, nil
	}
	n, off, err := codec.Uvarint(data)
	if err != nil {
		return nil, err
	}
	return &ScoreListIterator{data: data, off: off, n: int(n)}, nil
}

// Len reports the total number of postings.
func (it *ScoreListIterator) Len() int { return it.n }

// Next implements Iterator.
func (it *ScoreListIterator) Next() (Entry, bool, error) {
	if it.seen >= it.n {
		return Entry{}, false, nil
	}
	score, sz, err := codec.Float64(it.data[it.off:])
	if err != nil {
		return Entry{}, false, err
	}
	it.off += sz
	doc, sz, err := codec.Uvarint(it.data[it.off:])
	if err != nil {
		return Entry{}, false, err
	}
	it.off += sz
	it.seen++
	return Entry{Doc: DocID(doc), SortKey: score}, true, nil
}

// --- Chunked list (Chunk method) ----------------------------------------------

// ChunkedListBuilder encodes postings grouped into chunks.  Chunks must be
// appended in descending chunk-ID order; documents within a chunk ascending.
type ChunkedListBuilder struct {
	buf      []byte
	count    int
	chunks   int
	lastCID  int32
	haveCID  bool
	withTerm bool
}

// NewChunkedListBuilder returns a builder for the plain Chunk layout.
func NewChunkedListBuilder() *ChunkedListBuilder { return &ChunkedListBuilder{} }

// NewChunkedTermListBuilder returns a builder for the Chunk-TermScore layout,
// in which every posting carries a float32 term weight.
func NewChunkedTermListBuilder() *ChunkedListBuilder { return &ChunkedListBuilder{withTerm: true} }

// ChunkPosting is one posting destined for a chunk.
type ChunkPosting struct {
	Doc       DocID
	TermScore float32
}

// AddChunk appends a chunk with the given ID and postings (ascending doc
// order required).  Empty chunks are skipped.
func (b *ChunkedListBuilder) AddChunk(cid int32, posts []ChunkPosting) error {
	if len(posts) == 0 {
		return nil
	}
	if b.haveCID && cid >= b.lastCID {
		return fmt.Errorf("%w: chunk %d after %d (chunks must descend)", ErrOrder, cid, b.lastCID)
	}
	b.buf = codec.PutUvarint(b.buf, uint64(uint32(cid)))
	b.buf = codec.PutUvarint(b.buf, uint64(len(posts)))
	last := DocID(-1)
	for i, p := range posts {
		if p.Doc < 0 {
			return fmt.Errorf("postings: negative doc ID %d", p.Doc)
		}
		if i > 0 && p.Doc <= last {
			return fmt.Errorf("%w: doc %d after %d within chunk %d", ErrOrder, p.Doc, last, cid)
		}
		if i == 0 {
			b.buf = codec.PutUvarint(b.buf, uint64(p.Doc))
		} else {
			b.buf = codec.PutUvarint(b.buf, uint64(p.Doc-last))
		}
		if b.withTerm {
			b.buf = codec.PutFloat32(b.buf, p.TermScore)
		}
		last = p.Doc
		b.count++
	}
	b.lastCID = cid
	b.haveCID = true
	b.chunks++
	return nil
}

// Len reports the number of postings added.
func (b *ChunkedListBuilder) Len() int { return b.count }

// Chunks reports the number of non-empty chunks added.
func (b *ChunkedListBuilder) Chunks() int { return b.chunks }

// Bytes returns the encoded list: a header with the posting count, the chunk
// count and a term-score flag, followed by the chunk data.
func (b *ChunkedListBuilder) Bytes() []byte {
	out := codec.PutUvarint(nil, uint64(b.count))
	out = codec.PutUvarint(out, uint64(b.chunks))
	flag := byte(0)
	if b.withTerm {
		flag = 1
	}
	out = append(out, flag)
	return append(out, b.buf...)
}

// ChunkedListIterator decodes a chunked list (with or without term scores).
type ChunkedListIterator struct {
	data     []byte
	off      int
	n        int
	chunks   int
	withTerm bool

	seen      int
	chunkLeft int
	curCID    int32
	lastDoc   DocID
}

// NewChunkedListIterator returns an iterator over an encoded chunked list.
func NewChunkedListIterator(data []byte) (*ChunkedListIterator, error) {
	if len(data) == 0 {
		return &ChunkedListIterator{}, nil
	}
	it := &ChunkedListIterator{data: data}
	n, sz, err := codec.Uvarint(data)
	if err != nil {
		return nil, err
	}
	it.off += sz
	chunks, sz, err := codec.Uvarint(data[it.off:])
	if err != nil {
		return nil, err
	}
	it.off += sz
	if it.off >= len(data) {
		return nil, fmt.Errorf("%w: chunked list missing flag byte", codec.ErrCorrupt)
	}
	it.withTerm = data[it.off] == 1
	it.off++
	it.n = int(n)
	it.chunks = int(chunks)
	return it, nil
}

// Len reports the total number of postings.
func (it *ChunkedListIterator) Len() int { return it.n }

// NumChunks reports the number of chunks in the list.
func (it *ChunkedListIterator) NumChunks() int { return it.chunks }

// Next implements Iterator; entries carry both CID and SortKey (=CID).
func (it *ChunkedListIterator) Next() (Entry, bool, error) {
	if it.seen >= it.n {
		return Entry{}, false, nil
	}
	if it.chunkLeft == 0 {
		cid, sz, err := codec.Uvarint(it.data[it.off:])
		if err != nil {
			return Entry{}, false, err
		}
		it.off += sz
		count, sz, err := codec.Uvarint(it.data[it.off:])
		if err != nil {
			return Entry{}, false, err
		}
		it.off += sz
		it.curCID = int32(uint32(cid))
		it.chunkLeft = int(count)
		it.lastDoc = -1
	}
	gap, sz, err := codec.Uvarint(it.data[it.off:])
	if err != nil {
		return Entry{}, false, err
	}
	it.off += sz
	if it.lastDoc < 0 {
		it.lastDoc = DocID(gap)
	} else {
		it.lastDoc += DocID(gap)
	}
	var termScore float32
	if it.withTerm {
		ts, sz, err := codec.Float32(it.data[it.off:])
		if err != nil {
			return Entry{}, false, err
		}
		it.off += sz
		termScore = ts
	}
	it.chunkLeft--
	it.seen++
	return Entry{
		Doc:       it.lastDoc,
		CID:       it.curCID,
		SortKey:   float64(it.curCID),
		TermScore: termScore,
	}, true, nil
}

// --- ID+TermScore list (ID-TermScore method, fancy lists) ----------------------

// IDTermListBuilder encodes ascending docIDs each with a term weight.
type IDTermListBuilder struct {
	buf   []byte
	count int
	last  DocID
}

// NewIDTermListBuilder returns an empty builder.
func NewIDTermListBuilder() *IDTermListBuilder { return &IDTermListBuilder{} }

// Add appends a posting; doc IDs must be strictly ascending.
func (b *IDTermListBuilder) Add(doc DocID, termScore float32) error {
	if doc < 0 {
		return fmt.Errorf("postings: negative doc ID %d", doc)
	}
	if b.count > 0 && doc <= b.last {
		return fmt.Errorf("%w: doc %d after %d", ErrOrder, doc, b.last)
	}
	if b.count == 0 {
		b.buf = codec.PutUvarint(b.buf, uint64(doc))
	} else {
		b.buf = codec.PutUvarint(b.buf, uint64(doc-b.last))
	}
	b.buf = codec.PutFloat32(b.buf, termScore)
	b.last = doc
	b.count++
	return nil
}

// Len reports the number of postings added.
func (b *IDTermListBuilder) Len() int { return b.count }

// Bytes returns the encoded list.
func (b *IDTermListBuilder) Bytes() []byte {
	out := codec.PutUvarint(nil, uint64(b.count))
	return append(out, b.buf...)
}

// IDTermListIterator decodes an IDTermListBuilder list.
type IDTermListIterator struct {
	data []byte
	off  int
	n    int
	seen int
	last DocID
}

// NewIDTermListIterator returns an iterator over an encoded ID+term list.
func NewIDTermListIterator(data []byte) (*IDTermListIterator, error) {
	if len(data) == 0 {
		return &IDTermListIterator{}, nil
	}
	n, off, err := codec.Uvarint(data)
	if err != nil {
		return nil, err
	}
	return &IDTermListIterator{data: data, off: off, n: int(n)}, nil
}

// Len reports the total number of postings.
func (it *IDTermListIterator) Len() int { return it.n }

// Next implements Iterator.
func (it *IDTermListIterator) Next() (Entry, bool, error) {
	if it.seen >= it.n {
		return Entry{}, false, nil
	}
	gap, sz, err := codec.Uvarint(it.data[it.off:])
	if err != nil {
		return Entry{}, false, err
	}
	it.off += sz
	ts, sz, err := codec.Float32(it.data[it.off:])
	if err != nil {
		return Entry{}, false, err
	}
	it.off += sz
	if it.seen == 0 {
		it.last = DocID(gap)
	} else {
		it.last += DocID(gap)
	}
	it.seen++
	return Entry{Doc: it.last, TermScore: ts}, true, nil
}
