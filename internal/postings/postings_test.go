package postings

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestIDListRoundTrip(t *testing.T) {
	b := NewIDListBuilder()
	ids := []DocID{1, 5, 6, 100, 10000, 10001}
	for _, id := range ids {
		if err := b.Add(id); err != nil {
			t.Fatalf("Add(%d): %v", id, err)
		}
	}
	if b.Len() != len(ids) {
		t.Fatalf("Len = %d, want %d", b.Len(), len(ids))
	}
	it, err := NewIDListIterator(b.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if it.Len() != len(ids) {
		t.Errorf("iterator Len = %d, want %d", it.Len(), len(ids))
	}
	got, err := CollectAll(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ids) {
		t.Fatalf("decoded %d postings, want %d", len(got), len(ids))
	}
	for i, e := range got {
		if e.Doc != ids[i] {
			t.Errorf("posting %d = %d, want %d", i, e.Doc, ids[i])
		}
	}
}

func TestIDListRejectsOutOfOrder(t *testing.T) {
	b := NewIDListBuilder()
	if err := b.Add(10); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(10); err == nil {
		t.Error("duplicate doc accepted")
	}
	if err := b.Add(5); err == nil {
		t.Error("descending doc accepted")
	}
	if err := b.Add(-1); err == nil {
		t.Error("negative doc accepted")
	}
}

func TestIDListEmpty(t *testing.T) {
	b := NewIDListBuilder()
	it, err := NewIDListIterator(b.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := it.Next(); ok {
		t.Error("empty list yielded a posting")
	}
	it2, err := NewIDListIterator(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := it2.Next(); ok {
		t.Error("nil list yielded a posting")
	}
}

func TestIDListProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		set := map[DocID]bool{}
		for _, r := range raw {
			set[DocID(r)] = true
		}
		ids := make([]DocID, 0, len(set))
		for id := range set {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		b := NewIDListBuilder()
		for _, id := range ids {
			if err := b.Add(id); err != nil {
				return false
			}
		}
		it, err := NewIDListIterator(b.Bytes())
		if err != nil {
			return false
		}
		got, err := CollectAll(it)
		if err != nil || len(got) != len(ids) {
			return false
		}
		for i := range ids {
			if got[i].Doc != ids[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestScoreListRoundTrip(t *testing.T) {
	b := NewScoreListBuilder()
	type p struct {
		doc   DocID
		score float64
	}
	ps := []p{{7, 990.5}, {2, 500}, {9, 500}, {1, 87.13}, {4, 0}}
	for _, x := range ps {
		if err := b.Add(x.doc, x.score); err != nil {
			t.Fatalf("Add(%v): %v", x, err)
		}
	}
	it, err := NewScoreListIterator(b.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	got, err := CollectAll(it)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range ps {
		if got[i].Doc != x.doc || got[i].SortKey != x.score {
			t.Errorf("posting %d = (%d, %g), want (%d, %g)", i, got[i].Doc, got[i].SortKey, x.doc, x.score)
		}
	}
}

func TestScoreListRejectsOrderViolations(t *testing.T) {
	b := NewScoreListBuilder()
	if err := b.Add(3, 100); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(4, 200); err == nil {
		t.Error("ascending score accepted")
	}
	if err := b.Add(3, 100); err == nil {
		t.Error("duplicate (doc, score) accepted")
	}
	if err := b.Add(2, 100); err == nil {
		t.Error("same score with descending doc accepted")
	}
}

func TestChunkedListRoundTrip(t *testing.T) {
	b := NewChunkedListBuilder()
	if err := b.AddChunk(5, []ChunkPosting{{Doc: 2}, {Doc: 9}, {Doc: 40}}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddChunk(4, nil); err != nil {
		t.Fatal(err) // empty chunk is skipped
	}
	if err := b.AddChunk(3, []ChunkPosting{{Doc: 1}, {Doc: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddChunk(1, []ChunkPosting{{Doc: 7}}); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 6 || b.Chunks() != 3 {
		t.Fatalf("Len=%d Chunks=%d, want 6 and 3", b.Len(), b.Chunks())
	}
	it, err := NewChunkedListIterator(b.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if it.NumChunks() != 3 {
		t.Errorf("NumChunks = %d, want 3", it.NumChunks())
	}
	got, err := CollectAll(it)
	if err != nil {
		t.Fatal(err)
	}
	wantDocs := []DocID{2, 9, 40, 1, 2, 7}
	wantCIDs := []int32{5, 5, 5, 3, 3, 1}
	if len(got) != len(wantDocs) {
		t.Fatalf("decoded %d postings, want %d", len(got), len(wantDocs))
	}
	for i := range got {
		if got[i].Doc != wantDocs[i] || got[i].CID != wantCIDs[i] {
			t.Errorf("posting %d = (doc %d, cid %d), want (doc %d, cid %d)",
				i, got[i].Doc, got[i].CID, wantDocs[i], wantCIDs[i])
		}
		if got[i].SortKey != float64(wantCIDs[i]) {
			t.Errorf("posting %d sort key %g, want %d", i, got[i].SortKey, wantCIDs[i])
		}
	}
}

func TestChunkedListRejectsOrderViolations(t *testing.T) {
	b := NewChunkedListBuilder()
	if err := b.AddChunk(3, []ChunkPosting{{Doc: 5}}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddChunk(3, []ChunkPosting{{Doc: 6}}); err == nil {
		t.Error("repeated chunk ID accepted")
	}
	if err := b.AddChunk(4, []ChunkPosting{{Doc: 6}}); err == nil {
		t.Error("ascending chunk ID accepted")
	}
	if err := b.AddChunk(2, []ChunkPosting{{Doc: 6}, {Doc: 6}}); err == nil {
		t.Error("duplicate doc within chunk accepted")
	}
}

func TestChunkedTermListCarriesScores(t *testing.T) {
	b := NewChunkedTermListBuilder()
	if err := b.AddChunk(2, []ChunkPosting{{Doc: 1, TermScore: 0.5}, {Doc: 3, TermScore: 0.25}}); err != nil {
		t.Fatal(err)
	}
	it, err := NewChunkedListIterator(b.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	got, err := CollectAll(it)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].TermScore != 0.5 || got[1].TermScore != 0.25 {
		t.Errorf("term scores = %v, %v; want 0.5, 0.25", got[0].TermScore, got[1].TermScore)
	}
}

func TestIDTermListRoundTrip(t *testing.T) {
	b := NewIDTermListBuilder()
	if err := b.Add(3, 0.75); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(8, 0.125); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(8, 0.5); err == nil {
		t.Error("duplicate doc accepted")
	}
	it, err := NewIDTermListIterator(b.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	got, err := CollectAll(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Doc != 3 || got[0].TermScore != 0.75 || got[1].Doc != 8 || got[1].TermScore != 0.125 {
		t.Errorf("decoded postings = %+v", got)
	}
}

func TestUnionMergesInOrder(t *testing.T) {
	long := NewSliceIterator([]Entry{
		{Doc: 1, SortKey: 90},
		{Doc: 7, SortKey: 80},
		{Doc: 3, SortKey: 50},
	})
	short := NewSliceIterator([]Entry{
		{Doc: 9, SortKey: 95, FromShort: true},
		{Doc: 2, SortKey: 80, FromShort: true},
		{Doc: 4, SortKey: 10, FromShort: true},
	})
	got, err := CollectAll(NewUnion(short, long))
	if err != nil {
		t.Fatal(err)
	}
	wantDocs := []DocID{9, 1, 2, 7, 3, 4}
	if len(got) != len(wantDocs) {
		t.Fatalf("union produced %d entries, want %d", len(got), len(wantDocs))
	}
	for i := range got {
		if got[i].Doc != wantDocs[i] {
			t.Errorf("union[%d].Doc = %d, want %d", i, got[i].Doc, wantDocs[i])
		}
	}
	for i := 1; i < len(got); i++ {
		if Less(got[i], got[i-1]) {
			t.Errorf("union out of order at %d", i)
		}
	}
}

func TestUnionEmptyInputs(t *testing.T) {
	got, err := CollectAll(NewUnion(NewSliceIterator(nil), NewSliceIterator(nil)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("union of empty iterators produced %d entries", len(got))
	}
}

func TestCollapseOpsRemovesCancelledPostings(t *testing.T) {
	// Long-list posting for doc 5 at key 3, with a REM short posting at the
	// same position: the document no longer contains the term.
	src := NewSliceIterator([]Entry{
		{Doc: 2, SortKey: 3},
		{Doc: 5, SortKey: 3},
		{Doc: 5, SortKey: 3, Op: OpRem, FromShort: true},
		{Doc: 9, SortKey: 3},
		{Doc: 5, SortKey: 1},
	})
	got, err := CollectAll(NewCollapseOps(src))
	if err != nil {
		t.Fatal(err)
	}
	wantDocs := []DocID{2, 9, 5}
	if len(got) != len(wantDocs) {
		t.Fatalf("collapse produced %d entries (%v), want %d", len(got), got, len(wantDocs))
	}
	for i := range wantDocs {
		if got[i].Doc != wantDocs[i] {
			t.Errorf("collapse[%d].Doc = %d, want %d", i, got[i].Doc, wantDocs[i])
		}
	}
}

func TestCollapseOpsPrefersShortListEntry(t *testing.T) {
	src := NewSliceIterator([]Entry{
		{Doc: 5, SortKey: 3, TermScore: 0.1},
		{Doc: 5, SortKey: 3, TermScore: 0.9, FromShort: true},
	})
	got, err := CollectAll(NewCollapseOps(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].TermScore != 0.9 || !got[0].FromShort {
		t.Errorf("collapse = %+v, want single short-list entry with term score 0.9", got)
	}
}

func TestGroupMergerConjunctiveDetection(t *testing.T) {
	// Doc 4 appears in both streams at key 5; doc 6 only in stream 0.
	s0 := NewSliceIterator([]Entry{{Doc: 4, SortKey: 5}, {Doc: 6, SortKey: 5}, {Doc: 1, SortKey: 2}})
	s1 := NewSliceIterator([]Entry{{Doc: 4, SortKey: 5}, {Doc: 1, SortKey: 2}, {Doc: 3, SortKey: 1}})
	m := NewGroupMerger(s0, s1)
	var full, partial []DocID
	for {
		g, ok, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if g.ContainsAll() {
			full = append(full, g.Doc)
		} else {
			partial = append(partial, g.Doc)
		}
	}
	if len(full) != 2 || full[0] != 4 || full[1] != 1 {
		t.Errorf("conjunctive groups = %v, want [4 1]", full)
	}
	if len(partial) != 2 || partial[0] != 6 || partial[1] != 3 {
		t.Errorf("partial groups = %v, want [6 3]", partial)
	}
}

func TestGroupMergerOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	makeStream := func() *SliceIterator {
		var entries []Entry
		key := 100.0
		for i := 0; i < 50; i++ {
			key -= rng.Float64()
			entries = append(entries, Entry{Doc: DocID(rng.Intn(20)), SortKey: key})
		}
		return NewSliceIterator(entries)
	}
	m := NewGroupMerger(makeStream(), makeStream(), makeStream())
	var prev *Group
	for {
		g, ok, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if prev != nil {
			if g.SortKey > prev.SortKey || (g.SortKey == prev.SortKey && g.Doc < prev.Doc) {
				t.Fatalf("groups out of order: (%g,%d) after (%g,%d)", g.SortKey, g.Doc, prev.SortKey, prev.Doc)
			}
		}
		cp := g
		prev = &cp
	}
}

func TestGroupMergerEmpty(t *testing.T) {
	m := NewGroupMerger(NewSliceIterator(nil), NewSliceIterator(nil))
	if _, ok, err := m.Next(); ok || err != nil {
		t.Errorf("Next on empty merger = %v, %v", ok, err)
	}
}
