package postings

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// This file provides streaming decoders over io.Reader for every long-list
// layout.  The long lists are stored as blobs and read one page at a time
// (§5.2); these decoders pull bytes lazily through a bufio.Reader so that an
// early-terminating query only faults in the pages of the list prefix it
// actually consumed, which is exactly the effect the Chunk and
// Score-Threshold methods rely on for their query-time advantage.

type byteReader struct {
	r *bufio.Reader
}

func newByteReader(r io.Reader) *byteReader {
	return &byteReader{r: bufio.NewReaderSize(r, 4096)}
}

func (br *byteReader) uvarint() (uint64, error) {
	return binary.ReadUvarint(br.r)
}

func (br *byteReader) float32() (float32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(br.r, buf[:]); err != nil {
		return 0, err
	}
	return math.Float32frombits(binary.LittleEndian.Uint32(buf[:])), nil
}

func (br *byteReader) float64() (float64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(br.r, buf[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}

func (br *byteReader) byte() (byte, error) { return br.r.ReadByte() }

// --- streaming ID list ---------------------------------------------------------

// StreamIDList decodes an IDListBuilder blob lazily from r.
type StreamIDList struct {
	br   *byteReader
	n    int
	seen int
	last DocID
	err  error
}

// NewStreamIDList reads the header and returns a lazy iterator.  An empty
// reader yields an empty list.
func NewStreamIDList(r io.Reader) (*StreamIDList, error) {
	br := newByteReader(r)
	n, err := br.uvarint()
	if err == io.EOF {
		return &StreamIDList{br: br}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("postings: stream id list header: %w", err)
	}
	return &StreamIDList{br: br, n: int(n)}, nil
}

// Len reports the total number of postings in the list.
func (s *StreamIDList) Len() int { return s.n }

// Next implements Iterator.
func (s *StreamIDList) Next() (Entry, bool, error) {
	if s.err != nil || s.seen >= s.n {
		return Entry{}, false, s.err
	}
	gap, err := s.br.uvarint()
	if err != nil {
		s.err = fmt.Errorf("postings: stream id list: %w", err)
		return Entry{}, false, s.err
	}
	if s.seen == 0 {
		s.last = DocID(gap)
	} else {
		s.last += DocID(gap)
	}
	s.seen++
	return Entry{Doc: s.last}, true, nil
}

// --- streaming score list ------------------------------------------------------

// StreamScoreList decodes a ScoreListBuilder blob lazily from r.
type StreamScoreList struct {
	br   *byteReader
	n    int
	seen int
	err  error
}

// NewStreamScoreList reads the header and returns a lazy iterator.
func NewStreamScoreList(r io.Reader) (*StreamScoreList, error) {
	br := newByteReader(r)
	n, err := br.uvarint()
	if err == io.EOF {
		return &StreamScoreList{br: br}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("postings: stream score list header: %w", err)
	}
	return &StreamScoreList{br: br, n: int(n)}, nil
}

// Len reports the total number of postings.
func (s *StreamScoreList) Len() int { return s.n }

// Next implements Iterator.
func (s *StreamScoreList) Next() (Entry, bool, error) {
	if s.err != nil || s.seen >= s.n {
		return Entry{}, false, s.err
	}
	score, err := s.br.float64()
	if err != nil {
		s.err = fmt.Errorf("postings: stream score list: %w", err)
		return Entry{}, false, s.err
	}
	doc, err := s.br.uvarint()
	if err != nil {
		s.err = fmt.Errorf("postings: stream score list: %w", err)
		return Entry{}, false, s.err
	}
	s.seen++
	return Entry{Doc: DocID(doc), SortKey: score}, true, nil
}

// --- streaming chunked list ----------------------------------------------------

// StreamChunkedList decodes a ChunkedListBuilder blob lazily from r.
type StreamChunkedList struct {
	br       *byteReader
	n        int
	chunks   int
	withTerm bool

	seen      int
	chunkLeft int
	curCID    int32
	lastDoc   DocID
	err       error
}

// NewStreamChunkedList reads the header and returns a lazy iterator.
func NewStreamChunkedList(r io.Reader) (*StreamChunkedList, error) {
	br := newByteReader(r)
	n, err := br.uvarint()
	if err == io.EOF {
		return &StreamChunkedList{br: br}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("postings: stream chunked list header: %w", err)
	}
	chunks, err := br.uvarint()
	if err != nil {
		return nil, fmt.Errorf("postings: stream chunked list header: %w", err)
	}
	flag, err := br.byte()
	if err != nil {
		return nil, fmt.Errorf("postings: stream chunked list header: %w", err)
	}
	return &StreamChunkedList{br: br, n: int(n), chunks: int(chunks), withTerm: flag == 1}, nil
}

// Len reports the total number of postings; NumChunks the number of chunks.
func (s *StreamChunkedList) Len() int       { return s.n }
func (s *StreamChunkedList) NumChunks() int { return s.chunks }

// Next implements Iterator.
func (s *StreamChunkedList) Next() (Entry, bool, error) {
	if s.err != nil || s.seen >= s.n {
		return Entry{}, false, s.err
	}
	if s.chunkLeft == 0 {
		cid, err := s.br.uvarint()
		if err != nil {
			s.err = fmt.Errorf("postings: stream chunked list: %w", err)
			return Entry{}, false, s.err
		}
		count, err := s.br.uvarint()
		if err != nil {
			s.err = fmt.Errorf("postings: stream chunked list: %w", err)
			return Entry{}, false, s.err
		}
		s.curCID = int32(uint32(cid))
		s.chunkLeft = int(count)
		s.lastDoc = -1
	}
	gap, err := s.br.uvarint()
	if err != nil {
		s.err = fmt.Errorf("postings: stream chunked list: %w", err)
		return Entry{}, false, s.err
	}
	if s.lastDoc < 0 {
		s.lastDoc = DocID(gap)
	} else {
		s.lastDoc += DocID(gap)
	}
	var ts float32
	if s.withTerm {
		ts, err = s.br.float32()
		if err != nil {
			s.err = fmt.Errorf("postings: stream chunked list: %w", err)
			return Entry{}, false, s.err
		}
	}
	s.chunkLeft--
	s.seen++
	return Entry{Doc: s.lastDoc, CID: s.curCID, SortKey: float64(s.curCID), TermScore: ts}, true, nil
}

// --- streaming ID+term list ----------------------------------------------------

// StreamIDTermList decodes an IDTermListBuilder blob lazily from r.
type StreamIDTermList struct {
	br   *byteReader
	n    int
	seen int
	last DocID
	err  error
}

// NewStreamIDTermList reads the header and returns a lazy iterator.
func NewStreamIDTermList(r io.Reader) (*StreamIDTermList, error) {
	br := newByteReader(r)
	n, err := br.uvarint()
	if err == io.EOF {
		return &StreamIDTermList{br: br}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("postings: stream id+term list header: %w", err)
	}
	return &StreamIDTermList{br: br, n: int(n)}, nil
}

// Len reports the total number of postings.
func (s *StreamIDTermList) Len() int { return s.n }

// Next implements Iterator.
func (s *StreamIDTermList) Next() (Entry, bool, error) {
	if s.err != nil || s.seen >= s.n {
		return Entry{}, false, s.err
	}
	gap, err := s.br.uvarint()
	if err != nil {
		s.err = fmt.Errorf("postings: stream id+term list: %w", err)
		return Entry{}, false, s.err
	}
	ts, err := s.br.float32()
	if err != nil {
		s.err = fmt.Errorf("postings: stream id+term list: %w", err)
		return Entry{}, false, s.err
	}
	if s.seen == 0 {
		s.last = DocID(gap)
	} else {
		s.last += DocID(gap)
	}
	s.seen++
	return Entry{Doc: s.last, TermScore: ts}, true, nil
}
