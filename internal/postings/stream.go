package postings

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// This file provides streaming decoders over io.Reader for every long-list
// layout.  The long lists are stored as blobs and read one page at a time
// (§5.2); these decoders pull bytes lazily through a block buffer so that an
// early-terminating query only faults in the pages of the list prefix it
// actually consumed, which is exactly the effect the Chunk and
// Score-Threshold methods rely on for their query-time advantage.
//
// Every decoder implements both Iterator and BatchIterator.  The decode
// logic lives in NextBatch, which decodes a whole block of postings per call
// directly out of the buffered page bytes; Next is a one-entry view of the
// same path kept for compatibility and cold paths.

// streamBlockSize is the block buffer size; one on-disk page.
const streamBlockSize = 4096

// blockReader buffers reads from r and decodes scalars directly from the
// buffered bytes, refilling (and compacting the unconsumed tail) only when a
// scalar could straddle the buffer boundary.
type blockReader struct {
	r   io.Reader
	buf []byte
	pos int
	lim int
	eof bool
}

func newBlockReader(r io.Reader) *blockReader {
	size := streamBlockSize
	// When the source knows how many bytes remain (blob readers do), size
	// the buffer to the list: a tiny list gets a tiny buffer instead of a
	// page-sized one, which matters because short queries over short lists
	// pay the buffer set-up per term per query.
	if rr, ok := r.(interface{ Remaining() uint64 }); ok {
		if rem := rr.Remaining(); rem < uint64(size) {
			size = int(rem)
			if size < 16 {
				size = 16
			}
		}
	}
	return &blockReader{r: r, buf: make([]byte, size)}
}

// fill compacts the unconsumed tail to the front of the buffer and reads
// until the buffer is full or the source is exhausted.
func (b *blockReader) fill() error {
	copy(b.buf, b.buf[b.pos:b.lim])
	b.lim -= b.pos
	b.pos = 0
	for b.lim < len(b.buf) && !b.eof {
		n, err := b.r.Read(b.buf[b.lim:])
		b.lim += n
		if err == io.EOF {
			b.eof = true
			break
		}
		if err != nil {
			return err
		}
		if n == 0 {
			b.eof = true
			break
		}
	}
	return nil
}

// ensure makes at least n bytes available when the stream has them; after a
// call, avail() < n implies the source is exhausted.
func (b *blockReader) ensure(n int) error {
	if b.lim-b.pos >= n || b.eof {
		return nil
	}
	return b.fill()
}

func (b *blockReader) avail() int { return b.lim - b.pos }

func (b *blockReader) uvarint() (uint64, error) {
	if err := b.ensure(binary.MaxVarintLen64); err != nil {
		return 0, err
	}
	if b.pos == b.lim {
		return 0, io.EOF
	}
	v, n := binary.Uvarint(b.buf[b.pos:b.lim])
	if n == 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if n < 0 {
		return 0, fmt.Errorf("postings: uvarint overflow")
	}
	b.pos += n
	return v, nil
}

func (b *blockReader) float32() (float32, error) {
	if err := b.ensure(4); err != nil {
		return 0, err
	}
	if b.avail() < 4 {
		return 0, io.ErrUnexpectedEOF
	}
	v := math.Float32frombits(binary.LittleEndian.Uint32(b.buf[b.pos:]))
	b.pos += 4
	return v, nil
}

func (b *blockReader) float64() (float64, error) {
	if err := b.ensure(8); err != nil {
		return 0, err
	}
	if b.avail() < 8 {
		return 0, io.ErrUnexpectedEOF
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(b.buf[b.pos:]))
	b.pos += 8
	return v, nil
}

func (b *blockReader) byte() (byte, error) {
	if err := b.ensure(1); err != nil {
		return 0, err
	}
	if b.avail() < 1 {
		return 0, io.ErrUnexpectedEOF
	}
	c := b.buf[b.pos]
	b.pos++
	return c, nil
}

// peek returns the next byte without consuming it; io.EOF when the source
// is exhausted.
func (b *blockReader) peek() (byte, error) {
	if err := b.ensure(1); err != nil {
		return 0, err
	}
	if b.avail() < 1 {
		return 0, io.EOF
	}
	return b.buf[b.pos], nil
}

// view consumes the next n bytes and returns them as a contiguous slice of
// the buffer, valid until the next fill.  n must not exceed the buffer
// size; posting blocks are built small enough that a whole block body
// always fits (see blockCap).
func (b *blockReader) view(n int) ([]byte, error) {
	if n > len(b.buf) {
		return nil, fmt.Errorf("postings: block body of %d bytes exceeds %d-byte buffer", n, len(b.buf))
	}
	if err := b.ensure(n); err != nil {
		return nil, err
	}
	if b.avail() < n {
		return nil, io.ErrUnexpectedEOF
	}
	p := b.buf[b.pos : b.pos+n]
	b.pos += n
	return p, nil
}

// byteSkipper is the optional fast-skip protocol of the underlying reader;
// blob readers implement it by advancing their offset without faulting in
// the skipped pages.
type byteSkipper interface{ Skip(n uint64) error }

// skip consumes n bytes.  Bytes beyond the buffered tail are skipped on
// the underlying reader without being read when it supports that, which is
// what lets a seek jump posting blocks without touching their pages.
func (b *blockReader) skip(n int) error {
	if a := b.avail(); a >= n {
		b.pos += n
		return nil
	}
	n -= b.avail()
	b.pos = b.lim
	if !b.eof {
		if sk, ok := b.r.(byteSkipper); ok {
			return sk.Skip(uint64(n))
		}
	}
	for n > 0 {
		if err := b.fill(); err != nil {
			return err
		}
		if b.avail() == 0 {
			return io.ErrUnexpectedEOF
		}
		t := b.avail()
		if t > n {
			t = n
		}
		b.pos += t
		n -= t
	}
	return nil
}

// maybeCompressed dispatches on the blob's first byte: compressed blobs
// start with blockMagic, which no legacy non-empty list can (their first
// byte is a uvarint count >= 1).  It reports whether the compressed path
// claimed the stream; when it did not, the legacy decoders proceed
// unchanged.
func maybeCompressed(br *blockReader, dir []float64) (*blockList, bool, error) {
	c, err := br.peek()
	if err != nil || c != blockMagic {
		return nil, false, nil
	}
	d, err := newBlockList(br, dir)
	if err != nil {
		return nil, true, err
	}
	return d, true, nil
}

// nextOne adapts a NextBatch implementation to the single-step Iterator
// protocol with a stack buffer.
func nextOne(b BatchIterator) (Entry, bool, error) {
	var one [1]Entry
	n, err := b.NextBatch(one[:])
	if err != nil {
		return Entry{}, false, err
	}
	if n == 0 {
		return Entry{}, false, nil
	}
	return one[0], true, nil
}

// --- streaming ID list ---------------------------------------------------------

// StreamIDList decodes an IDListBuilder or BlockIDListBuilder blob lazily
// from r, dispatching on the blob's first byte.
type StreamIDList struct {
	br   *blockReader
	comp *blockList
	n    int
	seen int
	last DocID
	err  error
}

// NewStreamIDList reads the header and returns a lazy iterator.  An empty
// reader yields an empty list.
func NewStreamIDList(r io.Reader) (*StreamIDList, error) {
	br := newBlockReader(r)
	if c, ok, err := maybeCompressed(br, nil); ok || err != nil {
		if err != nil {
			return nil, fmt.Errorf("postings: stream id list header: %w", err)
		}
		if c.layout != 0 && c.layout != layoutID {
			return nil, fmt.Errorf("postings: stream id list: unexpected block layout %d", c.layout)
		}
		return &StreamIDList{br: br, comp: c, n: c.count}, nil
	}
	n, err := br.uvarint()
	if err == io.EOF {
		return &StreamIDList{br: br}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("postings: stream id list header: %w", err)
	}
	return &StreamIDList{br: br, n: int(n)}, nil
}

// Len reports the total number of postings in the list.
func (s *StreamIDList) Len() int { return s.n }

// SeekDoc positions the iterator so the next entry returned is the first
// with Doc >= doc, skipping whole posting blocks — without decoding them
// or faulting in their pages — via the per-block skip headers.  It reports
// whether seeking was available: legacy uncompressed blobs have no skip
// headers and are left unpositioned.
func (s *StreamIDList) SeekDoc(doc DocID) (bool, error) {
	if s.comp == nil {
		return false, nil
	}
	return true, s.comp.seekDoc(doc)
}

// NextBatch implements BatchIterator.
func (s *StreamIDList) NextBatch(out []Entry) (int, error) {
	if s.comp != nil {
		return s.comp.NextBatch(out)
	}
	if s.err != nil {
		return 0, s.err
	}
	n := 0
	for n < len(out) && s.seen < s.n {
		gap, err := s.br.uvarint()
		if err != nil {
			s.err = fmt.Errorf("postings: stream id list: %w", err)
			return n, s.err
		}
		if s.seen == 0 {
			s.last = DocID(gap)
		} else {
			s.last += DocID(gap)
		}
		s.seen++
		out[n] = Entry{Doc: s.last}
		n++
	}
	return n, nil
}

// Next implements Iterator.
func (s *StreamIDList) Next() (Entry, bool, error) { return nextOne(s) }

// --- streaming score list ------------------------------------------------------

// StreamScoreList decodes a ScoreListBuilder or BlockScoreListBuilder blob
// lazily from r, dispatching on the blob's first byte.
type StreamScoreList struct {
	br   *blockReader
	comp *blockList
	n    int
	seen int
	err  error
}

// NewStreamScoreList reads the header and returns a lazy iterator.  It is
// NewStreamScoreListDir without a score directory: compressed blobs that
// encode ranks require the directory the encoder used.
func NewStreamScoreList(r io.Reader) (*StreamScoreList, error) {
	return NewStreamScoreListDir(r, nil)
}

// NewStreamScoreListDir reads the header and returns a lazy iterator that
// resolves compressed score ranks through dir (see BuildScoreDir); dir
// must be the directory the list was encoded with.
func NewStreamScoreListDir(r io.Reader, dir []float64) (*StreamScoreList, error) {
	br := newBlockReader(r)
	if c, ok, err := maybeCompressed(br, dir); ok || err != nil {
		if err != nil {
			return nil, fmt.Errorf("postings: stream score list header: %w", err)
		}
		if c.layout != 0 && c.layout != layoutScore {
			return nil, fmt.Errorf("postings: stream score list: unexpected block layout %d", c.layout)
		}
		return &StreamScoreList{br: br, comp: c, n: c.count}, nil
	}
	n, err := br.uvarint()
	if err == io.EOF {
		return &StreamScoreList{br: br}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("postings: stream score list header: %w", err)
	}
	return &StreamScoreList{br: br, n: int(n)}, nil
}

// Len reports the total number of postings.
func (s *StreamScoreList) Len() int { return s.n }

// SeekScoreLE positions the iterator so the next entry returned is the
// first with score <= s (the layout sorts descending by score), skipping
// whole posting blocks via the skip headers.  It reports whether seeking
// was available (compressed blobs only).
func (s *StreamScoreList) SeekScoreLE(score float64) (bool, error) {
	if s.comp == nil {
		return false, nil
	}
	return true, s.comp.seekScoreLE(score)
}

// NextBatch implements BatchIterator.
func (s *StreamScoreList) NextBatch(out []Entry) (int, error) {
	if s.comp != nil {
		return s.comp.NextBatch(out)
	}
	if s.err != nil {
		return 0, s.err
	}
	n := 0
	for n < len(out) && s.seen < s.n {
		score, err := s.br.float64()
		if err != nil {
			s.err = fmt.Errorf("postings: stream score list: %w", err)
			return n, s.err
		}
		doc, err := s.br.uvarint()
		if err != nil {
			s.err = fmt.Errorf("postings: stream score list: %w", err)
			return n, s.err
		}
		s.seen++
		out[n] = Entry{Doc: DocID(doc), SortKey: score}
		n++
	}
	return n, nil
}

// Next implements Iterator.
func (s *StreamScoreList) Next() (Entry, bool, error) { return nextOne(s) }

// --- streaming chunked list ----------------------------------------------------

// StreamChunkedList decodes a ChunkedListBuilder or
// BlockChunkedListBuilder blob lazily from r, dispatching on the blob's
// first byte.
type StreamChunkedList struct {
	br       *blockReader
	comp     *blockList
	n        int
	chunks   int
	withTerm bool

	seen      int
	chunkLeft int
	curCID    int32
	lastDoc   DocID
	err       error
}

// NewStreamChunkedList reads the header and returns a lazy iterator.
func NewStreamChunkedList(r io.Reader) (*StreamChunkedList, error) {
	br := newBlockReader(r)
	if c, ok, err := maybeCompressed(br, nil); ok || err != nil {
		if err != nil {
			return nil, fmt.Errorf("postings: stream chunked list header: %w", err)
		}
		if c.layout != 0 && c.layout != layoutChunk && c.layout != layoutChunkTerm {
			return nil, fmt.Errorf("postings: stream chunked list: unexpected block layout %d", c.layout)
		}
		return &StreamChunkedList{br: br, comp: c, n: c.count, chunks: c.chunks, withTerm: c.layout == layoutChunkTerm}, nil
	}
	n, err := br.uvarint()
	if err == io.EOF {
		return &StreamChunkedList{br: br}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("postings: stream chunked list header: %w", err)
	}
	chunks, err := br.uvarint()
	if err != nil {
		return nil, fmt.Errorf("postings: stream chunked list header: %w", err)
	}
	flag, err := br.byte()
	if err != nil {
		return nil, fmt.Errorf("postings: stream chunked list header: %w", err)
	}
	return &StreamChunkedList{br: br, n: int(n), chunks: int(chunks), withTerm: flag == 1}, nil
}

// Len reports the total number of postings; NumChunks the number of chunks.
func (s *StreamChunkedList) Len() int       { return s.n }
func (s *StreamChunkedList) NumChunks() int { return s.chunks }

// SeekChunkLE positions the iterator so the next entry returned is the
// first with CID <= cid (the layout sorts descending by chunk), skipping
// whole posting blocks via the skip headers.  It reports whether seeking
// was available (compressed blobs only).
func (s *StreamChunkedList) SeekChunkLE(cid int32) (bool, error) {
	if s.comp == nil {
		return false, nil
	}
	return true, s.comp.seekChunkLE(cid)
}

// NextBatch implements BatchIterator.
func (s *StreamChunkedList) NextBatch(out []Entry) (int, error) {
	if s.comp != nil {
		return s.comp.NextBatch(out)
	}
	if s.err != nil {
		return 0, s.err
	}
	n := 0
	for n < len(out) && s.seen < s.n {
		if s.chunkLeft == 0 {
			cid, err := s.br.uvarint()
			if err != nil {
				s.err = fmt.Errorf("postings: stream chunked list: %w", err)
				return n, s.err
			}
			count, err := s.br.uvarint()
			if err != nil {
				s.err = fmt.Errorf("postings: stream chunked list: %w", err)
				return n, s.err
			}
			s.curCID = int32(uint32(cid))
			s.chunkLeft = int(count)
			s.lastDoc = -1
		}
		gap, err := s.br.uvarint()
		if err != nil {
			s.err = fmt.Errorf("postings: stream chunked list: %w", err)
			return n, s.err
		}
		if s.lastDoc < 0 {
			s.lastDoc = DocID(gap)
		} else {
			s.lastDoc += DocID(gap)
		}
		var ts float32
		if s.withTerm {
			ts, err = s.br.float32()
			if err != nil {
				s.err = fmt.Errorf("postings: stream chunked list: %w", err)
				return n, s.err
			}
		}
		s.chunkLeft--
		s.seen++
		out[n] = Entry{Doc: s.lastDoc, CID: s.curCID, SortKey: float64(s.curCID), TermScore: ts}
		n++
	}
	return n, nil
}

// Next implements Iterator.
func (s *StreamChunkedList) Next() (Entry, bool, error) { return nextOne(s) }

// --- streaming ID+term list ----------------------------------------------------

// StreamIDTermList decodes an IDTermListBuilder or BlockIDTermListBuilder
// blob lazily from r, dispatching on the blob's first byte.
type StreamIDTermList struct {
	br   *blockReader
	comp *blockList
	n    int
	seen int
	last DocID
	err  error
}

// NewStreamIDTermList reads the header and returns a lazy iterator.
func NewStreamIDTermList(r io.Reader) (*StreamIDTermList, error) {
	br := newBlockReader(r)
	if c, ok, err := maybeCompressed(br, nil); ok || err != nil {
		if err != nil {
			return nil, fmt.Errorf("postings: stream id+term list header: %w", err)
		}
		if c.layout != 0 && c.layout != layoutIDTerm {
			return nil, fmt.Errorf("postings: stream id+term list: unexpected block layout %d", c.layout)
		}
		return &StreamIDTermList{br: br, comp: c, n: c.count}, nil
	}
	n, err := br.uvarint()
	if err == io.EOF {
		return &StreamIDTermList{br: br}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("postings: stream id+term list header: %w", err)
	}
	return &StreamIDTermList{br: br, n: int(n)}, nil
}

// Len reports the total number of postings.
func (s *StreamIDTermList) Len() int { return s.n }

// SeekDoc positions the iterator so the next entry returned is the first
// with Doc >= doc, skipping whole posting blocks via the skip headers.  It
// reports whether seeking was available (compressed blobs only).
func (s *StreamIDTermList) SeekDoc(doc DocID) (bool, error) {
	if s.comp == nil {
		return false, nil
	}
	return true, s.comp.seekDoc(doc)
}

// NextBatch implements BatchIterator.
func (s *StreamIDTermList) NextBatch(out []Entry) (int, error) {
	if s.comp != nil {
		return s.comp.NextBatch(out)
	}
	if s.err != nil {
		return 0, s.err
	}
	n := 0
	for n < len(out) && s.seen < s.n {
		gap, err := s.br.uvarint()
		if err != nil {
			s.err = fmt.Errorf("postings: stream id+term list: %w", err)
			return n, s.err
		}
		ts, err := s.br.float32()
		if err != nil {
			s.err = fmt.Errorf("postings: stream id+term list: %w", err)
			return n, s.err
		}
		if s.seen == 0 {
			s.last = DocID(gap)
		} else {
			s.last += DocID(gap)
		}
		s.seen++
		out[n] = Entry{Doc: s.last, TermScore: ts}
		n++
	}
	return n, nil
}

// Next implements Iterator.
func (s *StreamIDTermList) Next() (Entry, bool, error) { return nextOne(s) }
