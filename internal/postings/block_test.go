package postings

import (
	"bytes"
	"math/rand"
	"testing"

	"svrdb/internal/storage/blob"
	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
)

// Property tests: every compressed layout must decode to exactly the same
// entry stream as its legacy encoding, under every list shape the builders
// accept — including sizes straddling the block capacity, dense runs,
// sparse runs, dictionary-friendly and dictionary-busting term weights,
// and scores inside and outside the score directory.

// collectAll drains a BatchIterator through odd-sized batches so block
// boundaries and batch boundaries interleave.
func collectAll(t *testing.T, it BatchIterator) []Entry {
	t.Helper()
	var out []Entry
	buf := make([]Entry, 37)
	for {
		n, err := it.NextBatch(buf)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			return out
		}
		out = append(out, buf[:n]...)
	}
}

func requireSameEntries(t *testing.T, want, got []Entry, what string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d entries, want %d", what, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: entry %d = %+v, want %+v", what, i, got[i], want[i])
		}
	}
}

// listSizes exercises empty, single, one-below/at/above block capacity and
// multi-block lists.
var listSizes = []int{0, 1, 2, blockCap - 1, blockCap, blockCap + 1, 1000, 4096}

func genDocs(rng *rand.Rand, n int, dense bool) []DocID {
	docs := make([]DocID, n)
	doc := DocID(rng.Intn(100))
	for i := range docs {
		if dense {
			doc += DocID(rng.Intn(2) + 1)
		} else {
			doc += DocID(rng.Intn(5000) + 1)
		}
		docs[i] = doc
	}
	return docs
}

func TestBlockIDListMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, size := range listSizes {
		for _, dense := range []bool{true, false} {
			docs := genDocs(rng, size, dense)
			legacy, comp := NewIDListBuilder(), NewBlockIDListBuilder()
			for _, d := range docs {
				if err := legacy.Add(d); err != nil {
					t.Fatal(err)
				}
				if err := comp.Add(d); err != nil {
					t.Fatal(err)
				}
			}
			if legacy.Len() != comp.Len() {
				t.Fatalf("Len = %d, want %d", comp.Len(), legacy.Len())
			}
			li, err := NewStreamIDList(bytes.NewReader(legacy.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			ci, err := NewStreamIDList(bytes.NewReader(comp.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if li.Len() != ci.Len() {
				t.Fatalf("stream Len = %d, want %d", ci.Len(), li.Len())
			}
			requireSameEntries(t, collectAll(t, li), collectAll(t, ci), "id list")
		}
	}
}

func genWeights(rng *rand.Rand, n int, dictFriendly bool) []float32 {
	ws := make([]float32, n)
	for i := range ws {
		if dictFriendly {
			ws[i] = float32(rng.Intn(5)+1) / 200
		} else {
			ws[i] = rng.Float32()
		}
	}
	return ws
}

func TestBlockIDTermListMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, size := range listSizes {
		for _, dictFriendly := range []bool{true, false} {
			docs := genDocs(rng, size, false)
			ws := genWeights(rng, size, dictFriendly)
			legacy, comp := NewIDTermListBuilder(), NewBlockIDTermListBuilder()
			for i, d := range docs {
				if err := legacy.Add(d, ws[i]); err != nil {
					t.Fatal(err)
				}
				if err := comp.Add(d, ws[i]); err != nil {
					t.Fatal(err)
				}
			}
			li, err := NewStreamIDTermList(bytes.NewReader(legacy.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			ci, err := NewStreamIDTermList(bytes.NewReader(comp.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			requireSameEntries(t, collectAll(t, li), collectAll(t, ci), "id+term list")
		}
	}
}

// genScorePostings produces (doc, score) pairs in descending score order
// with doc-ascending ties, drawing most scores from the directory pool and
// a fraction from outside it (the raw-float fallback path).
func genScorePostings(rng *rand.Rand, n int, pool []float64) ([]DocID, []float64) {
	scores := make([]float64, n)
	for i := range scores {
		if rng.Intn(10) == 0 {
			scores[i] = rng.Float64() * 1e6
		} else {
			scores[i] = pool[rng.Intn(len(pool))]
		}
	}
	// Descending scores; assign ascending docs within a run of equal scores.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && scores[j] > scores[j-1]; j-- {
			scores[j], scores[j-1] = scores[j-1], scores[j]
		}
	}
	docs := make([]DocID, n)
	doc := DocID(0)
	for i := range docs {
		doc += DocID(rng.Intn(100) + 1)
		docs[i] = doc
	}
	return docs, scores
}

func scorePool(rng *rand.Rand, n int) []float64 {
	pool := make([]float64, n)
	for i := range pool {
		pool[i] = float64(rng.Intn(100000)) + rng.Float64()
	}
	return pool
}

func TestBlockScoreListMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pool := scorePool(rng, 500)
	dir := BuildScoreDir(pool)
	for _, size := range listSizes {
		docs, scores := genScorePostings(rng, size, pool)
		legacy, comp := NewScoreListBuilder(), NewBlockScoreListBuilder(dir)
		for i := range docs {
			if err := legacy.Add(docs[i], scores[i]); err != nil {
				t.Fatal(err)
			}
			if err := comp.Add(docs[i], scores[i]); err != nil {
				t.Fatal(err)
			}
		}
		li, err := NewStreamScoreList(bytes.NewReader(legacy.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		ci, err := NewStreamScoreListDir(bytes.NewReader(comp.Bytes()), dir)
		if err != nil {
			t.Fatal(err)
		}
		requireSameEntries(t, collectAll(t, li), collectAll(t, ci), "score list")
	}
}

type testChunk struct {
	cid   int32
	posts []ChunkPosting
}

func genChunks(rng *rand.Rand, totalPostings int, withTerm bool) []testChunk {
	var chunks []testChunk
	cid := int32(1 << 20)
	left := totalPostings
	for left > 0 {
		n := rng.Intn(3*blockCap) + 1
		if n > left {
			n = left
		}
		left -= n
		cid -= int32(rng.Intn(50) + 1)
		posts := make([]ChunkPosting, n)
		doc := DocID(rng.Intn(1000))
		for i := range posts {
			doc += DocID(rng.Intn(100) + 1)
			posts[i] = ChunkPosting{Doc: doc}
			if withTerm {
				posts[i].TermScore = float32(rng.Intn(6)+1) / 200
			}
		}
		chunks = append(chunks, testChunk{cid: cid, posts: posts})
	}
	return chunks
}

func TestBlockChunkedListMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, size := range listSizes {
		for _, withTerm := range []bool{false, true} {
			chunks := genChunks(rng, size, withTerm)
			legacy := NewChunkedEncoder(false, withTerm)
			comp := NewChunkedEncoder(true, withTerm)
			for _, c := range chunks {
				if err := legacy.AddChunk(c.cid, c.posts); err != nil {
					t.Fatal(err)
				}
				if err := comp.AddChunk(c.cid, c.posts); err != nil {
					t.Fatal(err)
				}
			}
			if legacy.Len() != comp.Len() || legacy.Chunks() != comp.Chunks() {
				t.Fatalf("Len/Chunks = %d/%d, want %d/%d", comp.Len(), comp.Chunks(), legacy.Len(), legacy.Chunks())
			}
			li, err := NewStreamChunkedList(bytes.NewReader(legacy.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			ci, err := NewStreamChunkedList(bytes.NewReader(comp.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if li.NumChunks() != ci.NumChunks() {
				t.Fatalf("NumChunks = %d, want %d", ci.NumChunks(), li.NumChunks())
			}
			requireSameEntries(t, collectAll(t, li), collectAll(t, ci), "chunked list")
		}
	}
}

// TestBlockCombinatorsOverCompressed drives the k-way combinators with
// compressed inputs on one side and legacy inputs on the other and
// requires identical output — the hot read paths must not be able to tell
// the encodings apart.
func TestBlockCombinatorsOverCompressed(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	pool := scorePool(rng, 200)
	dir := BuildScoreDir(pool)

	const k = 5
	var legacyBlobs, compBlobs [][]byte
	for s := 0; s < k; s++ {
		docs, scores := genScorePostings(rng, 700+rng.Intn(600), pool)
		legacy, comp := NewScoreListBuilder(), NewBlockScoreListBuilder(dir)
		for i := range docs {
			if err := legacy.Add(docs[i], scores[i]); err != nil {
				t.Fatal(err)
			}
			if err := comp.Add(docs[i], scores[i]); err != nil {
				t.Fatal(err)
			}
		}
		legacyBlobs = append(legacyBlobs, legacy.Bytes())
		compBlobs = append(compBlobs, comp.Bytes())
	}

	open := func(blobs [][]byte, withDir bool) []BatchIterator {
		its := make([]BatchIterator, len(blobs))
		for i, b := range blobs {
			var (
				it  BatchIterator
				err error
			)
			if withDir {
				it, err = NewStreamScoreListDir(bytes.NewReader(b), dir)
			} else {
				it, err = NewStreamScoreList(bytes.NewReader(b))
			}
			if err != nil {
				t.Fatal(err)
			}
			its[i] = it
		}
		return its
	}

	t.Run("union+collapse", func(t *testing.T) {
		want := collectAll(t, NewCollapseOps(NewUnion(open(legacyBlobs, false)...)))
		got := collectAll(t, NewCollapseOps(NewUnion(open(compBlobs, true)...)))
		requireSameEntries(t, want, got, "collapsed union")
	})

	t.Run("group-merger", func(t *testing.T) {
		wm := NewGroupMerger(open(legacyBlobs, false)...)
		gm := NewGroupMerger(open(compBlobs, true)...)
		for {
			wg, wok, err := wm.Next()
			if err != nil {
				t.Fatal(err)
			}
			gg, gok, err := gm.Next()
			if err != nil {
				t.Fatal(err)
			}
			if wok != gok {
				t.Fatalf("group streams diverge: legacy ok=%v compressed ok=%v", wok, gok)
			}
			if !wok {
				return
			}
			if wg.Doc != gg.Doc || wg.SortKey != gg.SortKey || wg.Count != gg.Count {
				t.Fatalf("group = (%d, %g, %d), want (%d, %g, %d)", gg.Doc, gg.SortKey, gg.Count, wg.Doc, wg.SortKey, wg.Count)
			}
			for i := range wg.Present {
				if wg.Present[i] != gg.Present[i] || (wg.Present[i] && wg.Entries[i] != gg.Entries[i]) {
					t.Fatalf("group member %d = %+v/%v, want %+v/%v", i, gg.Entries[i], gg.Present[i], wg.Entries[i], wg.Present[i])
				}
			}
		}
	})
}

// TestBlockSeekModel checks every seek method against a model: seeking to
// a random target and draining must equal linearly scanning the full list
// and dropping entries until the seek predicate holds.
func TestBlockSeekModel(t *testing.T) {
	rng := rand.New(rand.NewSource(23))

	t.Run("id", func(t *testing.T) {
		docs := genDocs(rng, 3000, false)
		b := NewBlockIDListBuilder()
		for _, d := range docs {
			if err := b.Add(d); err != nil {
				t.Fatal(err)
			}
		}
		data := b.Bytes()
		full, err := NewStreamIDList(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		all := collectAll(t, full)
		for trial := 0; trial < 50; trial++ {
			target := DocID(rng.Int63n(int64(docs[len(docs)-1]) + 1000))
			it, err := NewStreamIDList(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			ok, err := it.SeekDoc(target)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatal("compressed list reported no seek support")
			}
			var want []Entry
			for _, e := range all {
				if e.Doc >= target {
					want = append(want, e)
				}
			}
			requireSameEntries(t, want, collectAll(t, it), "seek id")
		}
		// Monotone multi-seek on one iterator — the leapfrog access
		// pattern — modeled step for step against the in-memory slice.
		it, err := NewStreamIDList(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		var one [1]Entry
		target := DocID(0)
		pos := 0
		steps := 0
		for {
			target += DocID(rng.Int63n(2000) + 1)
			if _, err := it.SeekDoc(target); err != nil {
				t.Fatal(err)
			}
			n, err := it.NextBatch(one[:])
			if err != nil {
				t.Fatal(err)
			}
			for pos < len(all) && all[pos].Doc < target {
				pos++
			}
			if pos >= len(all) {
				if n != 0 {
					t.Fatalf("walk returned %+v past the model's end", one[0])
				}
				break
			}
			if n == 0 {
				t.Fatalf("walk ended early; model expects %+v", all[pos])
			}
			if one[0] != all[pos] {
				t.Fatalf("walk step = %+v, want %+v", one[0], all[pos])
			}
			target = one[0].Doc
			pos++
			steps++
		}
		if steps == 0 {
			t.Fatal("monotone seek walk returned nothing")
		}
	})

	t.Run("score", func(t *testing.T) {
		pool := scorePool(rng, 300)
		dir := BuildScoreDir(pool)
		docs, scores := genScorePostings(rng, 3000, pool)
		b := NewBlockScoreListBuilder(dir)
		for i := range docs {
			if err := b.Add(docs[i], scores[i]); err != nil {
				t.Fatal(err)
			}
		}
		data := b.Bytes()
		full, err := NewStreamScoreListDir(bytes.NewReader(data), dir)
		if err != nil {
			t.Fatal(err)
		}
		all := collectAll(t, full)
		for trial := 0; trial < 50; trial++ {
			target := all[rng.Intn(len(all))].SortKey + float64(rng.Intn(3)-1)
			it, err := NewStreamScoreListDir(bytes.NewReader(data), dir)
			if err != nil {
				t.Fatal(err)
			}
			ok, err := it.SeekScoreLE(target)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatal("compressed list reported no seek support")
			}
			var want []Entry
			for _, e := range all {
				if e.SortKey <= target {
					want = append(want, e)
				}
			}
			requireSameEntries(t, want, collectAll(t, it), "seek score")
		}
	})

	t.Run("chunk", func(t *testing.T) {
		chunks := genChunks(rng, 3000, true)
		b := NewBlockChunkedListBuilder(true)
		for _, c := range chunks {
			if err := b.AddChunk(c.cid, c.posts); err != nil {
				t.Fatal(err)
			}
		}
		data := b.Bytes()
		full, err := NewStreamChunkedList(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		all := collectAll(t, full)
		for trial := 0; trial < 50; trial++ {
			target := all[rng.Intn(len(all))].CID + int32(rng.Intn(100)-50)
			it, err := NewStreamChunkedList(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			ok, err := it.SeekChunkLE(target)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatal("compressed list reported no seek support")
			}
			var want []Entry
			for _, e := range all {
				if e.CID <= target {
					want = append(want, e)
				}
			}
			requireSameEntries(t, want, collectAll(t, it), "seek chunk")
		}
	})
}

// TestBlockSeekSkipsPages proves the point of the skip header on a real
// blob: seeking deep into a long compressed list must fault in far fewer
// pages than scanning to the same position.
func TestBlockSeekSkipsPages(t *testing.T) {
	pool := buffer.MustNew(pagefile.MustNewMem(pagefile.DefaultPageSize), 256)
	store := blob.NewStore(pool)

	rng := rand.New(rand.NewSource(29))
	b := NewBlockIDListBuilder()
	d := DocID(0)
	for i := 0; i < 200000; i++ {
		d += DocID(rng.Intn(6000) + 1)
		if err := b.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	ref, err := store.Put(b.Bytes())
	if err != nil {
		t.Fatal(err)
	}

	target := d - 1000

	scanReader := store.NewReader(ref)
	scan, err := NewStreamIDList(scanReader)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]Entry, BatchSize)
	for {
		n, err := scan.NextBatch(buf)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 || buf[n-1].Doc >= target {
			break
		}
	}
	scanPages := scanReader.PagesRead()

	seekReader := store.NewReader(ref)
	seek, err := NewStreamIDList(seekReader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seek.SeekDoc(target); err != nil {
		t.Fatal(err)
	}
	if n, err := seek.NextBatch(buf); err != nil || n == 0 || buf[0].Doc < target {
		t.Fatalf("seek landed wrong: n=%d err=%v", n, err)
	}
	seekPages := seekReader.PagesRead()

	if scanPages < 4 {
		t.Fatalf("scan touched only %d pages; list too small for the test to mean anything", scanPages)
	}
	if seekPages*2 >= scanPages {
		t.Fatalf("seek read %d pages vs %d for a scan; skip headers are not skipping", seekPages, scanPages)
	}
}
