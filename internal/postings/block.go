package postings

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"sort"

	"svrdb/internal/codec"
)

// Compressed posting blocks.
//
// Every long-list layout has a second, compressed encoding built from
// fixed-capacity blocks of up to blockCap postings.  A compressed blob is
//
//	magic byte 0x00
//	version<<4 | layout byte
//	uvarint posting count
//	[uvarint chunk count]            (chunk layouts only)
//	super-block*
//
// Blocks are framed at two levels.  Each super-block groups up to superFan
// blocks and is
//
//	uvarint n                        (postings in this super-block)
//	key summary                      (first key, last key — layout specific)
//	uvarint byteLen
//	block*                           (byteLen bytes)
//
// and each block inside it is
//
//	uvarint n                        (postings in this block, 1..blockCap)
//	key summary                      (same form as the super-block's)
//	uvarint bodyLen
//	body                             (bodyLen bytes, self-contained)
//
// The (first key, last key, byte length) triple is the skip header, and it
// reads identically at both levels.  A seek walks headers and skips any
// frame whose key range cannot contain the target without decoding it.
// The two levels exist because of the page economics: a compressed block
// is far smaller than a disk page, so skipping single blocks saves decode
// work but still touches every page, while a skipped super-block spans
// many pages that are never faulted in (the blob reader advances by
// offset).  Bodies restart from absolute values, so a block decodes
// without any state from its predecessors.
//
// The magic byte cannot collide with the legacy encodings: their first
// byte is the uvarint posting count, which for a non-empty list is never
// 0x00, and the legacy empty lists (a bare 0x00, or 0x00 0x00 flag for the
// chunked layouts) decode as empty lists under either interpretation
// because the version/layout byte distinguishes them.  The stream
// constructors dispatch on this byte, so old uncompressed blobs keep
// decoding forever.
//
// Per-layout bodies:
//
//	ID        width byte w, then (gap-1) per posting bitpacked at w bits
//	IDTerm    ID body, then a term-weight section
//	Score     per posting: uvarint rank tag, uvarint doc.  Tag 0 is
//	          followed by a raw float64 score; tag c>0 encodes rank c-1
//	          into the score directory (absolute at block start and after
//	          a raw score, otherwise a delta from the previous rank).
//	Chunk     segments of equal-cid runs: cid (absolute for the first
//	          segment, then a positive descending delta), uvarint segN,
//	          uvarint first doc, width byte, bitpacked (gap-1)
//	ChunkTerm Chunk body, then a term-weight section for all n postings
//
// The term-weight section is a mode byte d: 0 is followed by n raw
// float32 weights; 1..maxWeightDict is a dictionary of d distinct float32
// values followed by n indices bitpacked at bits.Len(d-1) bits.  Term
// weights are normalized term frequencies, so a block rarely sees more
// than a handful of distinct values.
//
// The Score layout's rank codec needs a score directory: the sorted
// descending distinct document scores of the build (BuildScoreDir).  It
// turns 8-byte float scores into ~1-byte varint rank deltas while
// round-tripping values exactly; scores missing from the directory fall
// back to raw float64s.

const (
	// blockMagic marks a compressed blob; legacy blobs never start with it.
	blockMagic = 0x00
	// blockVersion is the posting-block format version, stored in the high
	// nibble of the second byte.
	blockVersion = 1
	// blockCap is the maximum number of postings per block.  128 postings
	// keep the worst-case block body (~2.7 KB) under the 4 KB stream
	// buffer, so a body is always contiguous in the buffered page bytes.
	blockCap = 128
	// maxWeightDict is the largest per-block term-weight dictionary; blocks
	// with more distinct weights store them raw.
	maxWeightDict = 16
	// superFan is the number of blocks per super-block.  256 blocks of
	// dense postings compress to tens of kilobytes — several pages — so a
	// skipped super-block is a real page-I/O saving, not just a decode
	// saving.
	superFan = 256
)

// Layout tags, stored in the low nibble of the second byte.
const (
	layoutID byte = 1 + iota
	layoutIDTerm
	layoutScore
	layoutChunk
	layoutChunkTerm
)

// --- build-side encoder protocol ----------------------------------------------

// IDListEncoder is the build-side protocol for the ID layout, satisfied by
// both IDListBuilder (legacy) and BlockIDListBuilder (compressed).
type IDListEncoder interface {
	Add(doc DocID) error
	Len() int
	Bytes() []byte
}

// IDTermListEncoder is the build-side protocol for the ID+term layout.
type IDTermListEncoder interface {
	Add(doc DocID, termScore float32) error
	Len() int
	Bytes() []byte
}

// ScoreListEncoder is the build-side protocol for the score layout.
type ScoreListEncoder interface {
	Add(doc DocID, score float64) error
	Len() int
	Bytes() []byte
}

// ChunkedListEncoder is the build-side protocol for the chunked layouts.
type ChunkedListEncoder interface {
	AddChunk(cid int32, posts []ChunkPosting) error
	Len() int
	Chunks() int
	Bytes() []byte
}

// NewIDEncoder returns an ID-layout encoder, compressed or legacy.
func NewIDEncoder(compressed bool) IDListEncoder {
	if compressed {
		return NewBlockIDListBuilder()
	}
	return NewIDListBuilder()
}

// NewIDTermEncoder returns an ID+term-layout encoder, compressed or legacy.
func NewIDTermEncoder(compressed bool) IDTermListEncoder {
	if compressed {
		return NewBlockIDTermListBuilder()
	}
	return NewIDTermListBuilder()
}

// NewScoreEncoder returns a score-layout encoder.  The compressed encoder
// writes ranks into dir (see BuildScoreDir); the decoder must be given the
// same directory.
func NewScoreEncoder(compressed bool, dir []float64) ScoreListEncoder {
	if compressed {
		return NewBlockScoreListBuilder(dir)
	}
	return NewScoreListBuilder()
}

// NewChunkedEncoder returns a chunked-layout encoder, with or without
// per-posting term weights.
func NewChunkedEncoder(compressed, withTerm bool) ChunkedListEncoder {
	if compressed {
		return NewBlockChunkedListBuilder(withTerm)
	}
	if withTerm {
		return NewChunkedTermListBuilder()
	}
	return NewChunkedListBuilder()
}

// BuildScoreDir returns the sorted-descending distinct values of scores:
// the per-build score directory the compressed score layout encodes ranks
// into.  Both the encoder and the decoder must use the same directory.
func BuildScoreDir(scores []float64) []float64 {
	if len(scores) == 0 {
		return nil
	}
	dir := append([]float64(nil), scores...)
	sort.Sort(sort.Reverse(sort.Float64Slice(dir)))
	out := dir[:1]
	for _, s := range dir[1:] {
		if s != out[len(out)-1] {
			out = append(out, s)
		}
	}
	return out
}

// dirRank finds the exact rank of s in the descending directory.
func dirRank(dir []float64, s float64) (int, bool) {
	i := sort.Search(len(dir), func(i int) bool { return dir[i] <= s })
	if i < len(dir) && dir[i] == s {
		return i, true
	}
	return 0, false
}

// --- bitpacking ----------------------------------------------------------------

// appendPacked appends vals bitpacked LSB-first at w bits each.  Values
// must fit in w bits.  w == 0 appends nothing (all values are zero).
func appendPacked(dst []byte, vals []uint64, w int) []byte {
	if w == 0 {
		return dst
	}
	var acc uint64
	nb := 0
	var b8 [8]byte
	for _, v := range vals {
		acc |= v << uint(nb)
		if nb+w >= 64 {
			binary.LittleEndian.PutUint64(b8[:], acc)
			dst = append(dst, b8[:]...)
			spill := 64 - nb
			acc = 0
			if spill < w {
				acc = v >> uint(spill)
			}
			nb = nb + w - 64
		} else {
			nb += w
		}
	}
	if nb > 0 {
		binary.LittleEndian.PutUint64(b8[:], acc)
		dst = append(dst, b8[:(nb+7)/8]...)
	}
	return dst
}

// getBits extracts the w-bit value at bit offset bitOff from the LSB-first
// packed bytes in src.  All bits of the value must lie within src.
func getBits(src []byte, bitOff, w uint) uint64 {
	if w == 0 {
		return 0
	}
	byteOff := int(bitOff >> 3)
	shift := bitOff & 7
	var word uint64
	if byteOff+8 <= len(src) {
		word = binary.LittleEndian.Uint64(src[byteOff:])
	} else {
		for i := len(src) - 1; i >= byteOff; i-- {
			word = word<<8 | uint64(src[i])
		}
	}
	v := word >> shift
	if shift != 0 && byteOff+8 < len(src) {
		v |= uint64(src[byteOff+8]) << (64 - shift)
	}
	if w < 64 {
		v &= (1 << w) - 1
	}
	return v
}

// --- term-weight section --------------------------------------------------------

// appendWeights appends the term-weight section for ws (len >= 1).
func appendWeights(dst []byte, ws []float32) []byte {
	var dict [maxWeightDict]uint32
	var idx [blockCap]uint64
	d := 0
outer:
	for i, w := range ws {
		b := math.Float32bits(w)
		for j := 0; j < d; j++ {
			if dict[j] == b {
				idx[i] = uint64(j)
				continue outer
			}
		}
		if d == maxWeightDict {
			d = -1
			break
		}
		dict[d] = b
		idx[i] = uint64(d)
		d++
	}
	if d < 0 {
		dst = append(dst, 0)
		for _, w := range ws {
			dst = codec.PutFloat32(dst, w)
		}
		return dst
	}
	dst = append(dst, byte(d))
	for j := 0; j < d; j++ {
		dst = codec.PutUint32(dst, dict[j])
	}
	return appendPacked(dst, idx[:len(ws)], bits.Len(uint(d-1)))
}

// decodeWeights fills out[i].TermScore from the term-weight section at
// body[off:], returning the offset past the section.
func decodeWeights(body []byte, off int, out []Entry) (int, error) {
	n := len(out)
	if off >= len(body) {
		return 0, fmt.Errorf("%w: missing term-weight section", codec.ErrCorrupt)
	}
	mode := int(body[off])
	off++
	if mode == 0 {
		if off+4*n > len(body) {
			return 0, fmt.Errorf("%w: raw term weights truncated", codec.ErrCorrupt)
		}
		for i := 0; i < n; i++ {
			out[i].TermScore = math.Float32frombits(binary.LittleEndian.Uint32(body[off:]))
			off += 4
		}
		return off, nil
	}
	if mode > maxWeightDict {
		return 0, fmt.Errorf("%w: term-weight dictionary of %d", codec.ErrCorrupt, mode)
	}
	if off+4*mode > len(body) {
		return 0, fmt.Errorf("%w: term-weight dictionary truncated", codec.ErrCorrupt)
	}
	var dict [maxWeightDict]float32
	for j := 0; j < mode; j++ {
		dict[j] = math.Float32frombits(binary.LittleEndian.Uint32(body[off:]))
		off += 4
	}
	w := bits.Len(uint(mode - 1))
	plen := (n*w + 7) / 8
	if off+plen > len(body) {
		return 0, fmt.Errorf("%w: term-weight indices truncated", codec.ErrCorrupt)
	}
	src := body[off : off+plen]
	bitOff := uint(0)
	for i := 0; i < n; i++ {
		k := getBits(src, bitOff, uint(w))
		bitOff += uint(w)
		if int(k) >= mode {
			return 0, fmt.Errorf("%w: term-weight index %d of %d", codec.ErrCorrupt, k, mode)
		}
		out[i].TermScore = dict[k]
	}
	return off + plen, nil
}

// --- compressed builders --------------------------------------------------------

// blockIDCore is the shared encoder for the ID and ID+term layouts.
type blockIDCore struct {
	withTerm bool
	out      []byte // finished super-blocks
	sup      []byte // blocks of the open super-block
	scratch  []byte
	docs     [blockCap]DocID
	ws       [blockCap]float32
	n        int
	count    int
	last     DocID

	supN      int
	supBlocks int
	supFirst  DocID
	supLast   DocID
}

func (c *blockIDCore) add(doc DocID, w float32) error {
	if doc < 0 {
		return fmt.Errorf("postings: negative doc ID %d", doc)
	}
	if c.count > 0 && doc <= c.last {
		return fmt.Errorf("%w: doc %d after %d", ErrOrder, doc, c.last)
	}
	c.docs[c.n] = doc
	c.ws[c.n] = w
	c.n++
	c.last = doc
	c.count++
	if c.n == blockCap {
		c.flush()
	}
	return nil
}

func (c *blockIDCore) flush() {
	if c.n == 0 {
		return
	}
	n := c.n
	if c.supBlocks == 0 {
		c.supFirst = c.docs[0]
	}
	c.supLast = c.docs[n-1]
	c.sup = codec.PutUvarint(c.sup, uint64(n))
	c.sup = codec.PutUvarint(c.sup, uint64(c.docs[0]))
	c.sup = codec.PutUvarint(c.sup, uint64(c.docs[n-1]-c.docs[0]))
	body := appendDocGaps(c.scratch[:0], c.docs[:n])
	if c.withTerm {
		body = appendWeights(body, c.ws[:n])
	}
	c.sup = codec.PutUvarint(c.sup, uint64(len(body)))
	c.sup = append(c.sup, body...)
	c.scratch = body[:0]
	c.supN += n
	c.supBlocks++
	c.n = 0
	if c.supBlocks == superFan {
		c.flushSuper()
	}
}

func (c *blockIDCore) flushSuper() {
	if c.supBlocks == 0 {
		return
	}
	c.out = codec.PutUvarint(c.out, uint64(c.supN))
	c.out = codec.PutUvarint(c.out, uint64(c.supFirst))
	c.out = codec.PutUvarint(c.out, uint64(c.supLast-c.supFirst))
	c.out = codec.PutUvarint(c.out, uint64(len(c.sup)))
	c.out = append(c.out, c.sup...)
	c.sup = c.sup[:0]
	c.supN, c.supBlocks = 0, 0
}

func (c *blockIDCore) bytes(layout byte) []byte {
	c.flush()
	c.flushSuper()
	out := []byte{blockMagic, blockVersion<<4 | layout}
	out = codec.PutUvarint(out, uint64(c.count))
	return append(out, c.out...)
}

// appendDocGaps appends the width byte and bitpacked (gap-1) run for the
// ascending docs (the first doc is carried by the enclosing header).
func appendDocGaps(body []byte, docs []DocID) []byte {
	n := len(docs)
	w := 0
	var gaps [blockCap]uint64
	for i := 1; i < n; i++ {
		g := uint64(docs[i]-docs[i-1]) - 1
		gaps[i-1] = g
		if l := bits.Len64(g); l > w {
			w = l
		}
	}
	body = append(body, byte(w))
	return appendPacked(body, gaps[:n-1], w)
}

// BlockIDListBuilder is the compressed encoder for the ID layout.
type BlockIDListBuilder struct{ c blockIDCore }

// NewBlockIDListBuilder returns an empty compressed ID-list encoder.
func NewBlockIDListBuilder() *BlockIDListBuilder { return &BlockIDListBuilder{} }

// Add appends a document ID; IDs must be strictly ascending and non-negative.
func (b *BlockIDListBuilder) Add(doc DocID) error { return b.c.add(doc, 0) }

// Len reports the number of postings added.
func (b *BlockIDListBuilder) Len() int { return b.c.count }

// Bytes returns the encoded list.
func (b *BlockIDListBuilder) Bytes() []byte { return b.c.bytes(layoutID) }

// BlockIDTermListBuilder is the compressed encoder for the ID+term layout.
type BlockIDTermListBuilder struct{ c blockIDCore }

// NewBlockIDTermListBuilder returns an empty compressed ID+term encoder.
func NewBlockIDTermListBuilder() *BlockIDTermListBuilder {
	b := &BlockIDTermListBuilder{}
	b.c.withTerm = true
	return b
}

// Add appends a posting; doc IDs must be strictly ascending.
func (b *BlockIDTermListBuilder) Add(doc DocID, termScore float32) error {
	return b.c.add(doc, termScore)
}

// Len reports the number of postings added.
func (b *BlockIDTermListBuilder) Len() int { return b.c.count }

// Bytes returns the encoded list.
func (b *BlockIDTermListBuilder) Bytes() []byte { return b.c.bytes(layoutIDTerm) }

// BlockScoreListBuilder is the compressed encoder for the score layout.
type BlockScoreListBuilder struct {
	dir       []float64
	out       []byte // finished super-blocks
	sup       []byte // blocks of the open super-block
	scratch   []byte
	docs      [blockCap]DocID
	scores    [blockCap]float64
	n         int
	count     int
	lastScore float64
	lastDoc   DocID

	supN      int
	supBlocks int
	supFirst  float64
	supLast   float64
}

// NewBlockScoreListBuilder returns an empty compressed score-list encoder
// writing ranks into dir (may be nil: every score then stores raw).
func NewBlockScoreListBuilder(dir []float64) *BlockScoreListBuilder {
	return &BlockScoreListBuilder{dir: dir}
}

// Add appends a posting; postings must arrive in descending score order.
func (b *BlockScoreListBuilder) Add(doc DocID, score float64) error {
	if doc < 0 {
		return fmt.Errorf("postings: negative doc ID %d", doc)
	}
	if b.count > 0 {
		if score > b.lastScore || (score == b.lastScore && doc <= b.lastDoc) {
			return fmt.Errorf("%w: (doc %d, score %g) after (doc %d, score %g)", ErrOrder, doc, score, b.lastDoc, b.lastScore)
		}
	}
	b.docs[b.n] = doc
	b.scores[b.n] = score
	b.n++
	b.lastScore, b.lastDoc = score, doc
	b.count++
	if b.n == blockCap {
		b.flush()
	}
	return nil
}

func (b *BlockScoreListBuilder) appendScoreKey(dst []byte, s float64) []byte {
	if r, ok := dirRank(b.dir, s); ok {
		return codec.PutUvarint(dst, uint64(r)+1)
	}
	dst = codec.PutUvarint(dst, 0)
	return codec.PutFloat64(dst, s)
}

func (b *BlockScoreListBuilder) flush() {
	if b.n == 0 {
		return
	}
	n := b.n
	if b.supBlocks == 0 {
		b.supFirst = b.scores[0]
	}
	b.supLast = b.scores[n-1]
	b.sup = codec.PutUvarint(b.sup, uint64(n))
	b.sup = b.appendScoreKey(b.sup, b.scores[0])
	b.sup = b.appendScoreKey(b.sup, b.scores[n-1])
	body := b.scratch[:0]
	prevRank := -1
	for i := 0; i < n; i++ {
		if r, ok := dirRank(b.dir, b.scores[i]); ok {
			if prevRank >= 0 {
				body = codec.PutUvarint(body, uint64(r-prevRank)+1)
			} else {
				body = codec.PutUvarint(body, uint64(r)+1)
			}
			prevRank = r
		} else {
			body = codec.PutUvarint(body, 0)
			body = codec.PutFloat64(body, b.scores[i])
			prevRank = -1
		}
		body = codec.PutUvarint(body, uint64(b.docs[i]))
	}
	b.sup = codec.PutUvarint(b.sup, uint64(len(body)))
	b.sup = append(b.sup, body...)
	b.scratch = body[:0]
	b.supN += n
	b.supBlocks++
	b.n = 0
	if b.supBlocks == superFan {
		b.flushSuper()
	}
}

func (b *BlockScoreListBuilder) flushSuper() {
	if b.supBlocks == 0 {
		return
	}
	b.out = codec.PutUvarint(b.out, uint64(b.supN))
	b.out = b.appendScoreKey(b.out, b.supFirst)
	b.out = b.appendScoreKey(b.out, b.supLast)
	b.out = codec.PutUvarint(b.out, uint64(len(b.sup)))
	b.out = append(b.out, b.sup...)
	b.sup = b.sup[:0]
	b.supN, b.supBlocks = 0, 0
}

// Len reports the number of postings added.
func (b *BlockScoreListBuilder) Len() int { return b.count }

// Bytes returns the encoded list.
func (b *BlockScoreListBuilder) Bytes() []byte {
	b.flush()
	b.flushSuper()
	out := []byte{blockMagic, blockVersion<<4 | layoutScore}
	out = codec.PutUvarint(out, uint64(b.count))
	return append(out, b.out...)
}

// BlockChunkedListBuilder is the compressed encoder for the chunked layouts.
type BlockChunkedListBuilder struct {
	withTerm bool
	out      []byte // finished super-blocks
	sup      []byte // blocks of the open super-block
	scratch  []byte
	cids     [blockCap]int32
	docs     [blockCap]DocID
	ws       [blockCap]float32
	n        int
	count    int
	chunks   int
	lastCID  int32
	haveCID  bool

	supN      int
	supBlocks int
	supFirst  int32
	supLast   int32
}

// NewBlockChunkedListBuilder returns an empty compressed chunked-list
// encoder, with or without per-posting term weights.
func NewBlockChunkedListBuilder(withTerm bool) *BlockChunkedListBuilder {
	return &BlockChunkedListBuilder{withTerm: withTerm}
}

// AddChunk appends a chunk with the given ID and postings (ascending doc
// order required; chunk IDs must descend).  Empty chunks are skipped.
func (b *BlockChunkedListBuilder) AddChunk(cid int32, posts []ChunkPosting) error {
	if len(posts) == 0 {
		return nil
	}
	if b.haveCID && cid >= b.lastCID {
		return fmt.Errorf("%w: chunk %d after %d (chunks must descend)", ErrOrder, cid, b.lastCID)
	}
	last := DocID(-1)
	for i, p := range posts {
		if p.Doc < 0 {
			return fmt.Errorf("postings: negative doc ID %d", p.Doc)
		}
		if i > 0 && p.Doc <= last {
			return fmt.Errorf("%w: doc %d after %d within chunk %d", ErrOrder, p.Doc, last, cid)
		}
		b.cids[b.n] = cid
		b.docs[b.n] = p.Doc
		b.ws[b.n] = p.TermScore
		b.n++
		last = p.Doc
		b.count++
		if b.n == blockCap {
			b.flush()
		}
	}
	b.lastCID = cid
	b.haveCID = true
	b.chunks++
	return nil
}

func (b *BlockChunkedListBuilder) flush() {
	if b.n == 0 {
		return
	}
	n := b.n
	if b.supBlocks == 0 {
		b.supFirst = b.cids[0]
	}
	b.supLast = b.cids[n-1]
	b.sup = codec.PutUvarint(b.sup, uint64(n))
	b.sup = codec.PutUvarint(b.sup, uint64(uint32(b.cids[0])))
	b.sup = codec.PutUvarint(b.sup, uint64(int64(b.cids[0])-int64(b.cids[n-1])))
	body := b.scratch[:0]
	first := true
	var prevCID int32
	for i := 0; i < n; {
		j := i + 1
		for j < n && b.cids[j] == b.cids[i] {
			j++
		}
		if first {
			body = codec.PutUvarint(body, uint64(uint32(b.cids[i])))
			first = false
		} else {
			body = codec.PutUvarint(body, uint64(int64(prevCID)-int64(b.cids[i])))
		}
		prevCID = b.cids[i]
		body = codec.PutUvarint(body, uint64(j-i))
		body = codec.PutUvarint(body, uint64(b.docs[i]))
		body = appendDocGaps(body, b.docs[i:j])
		i = j
	}
	if b.withTerm {
		body = appendWeights(body, b.ws[:n])
	}
	b.sup = codec.PutUvarint(b.sup, uint64(len(body)))
	b.sup = append(b.sup, body...)
	b.scratch = body[:0]
	b.supN += n
	b.supBlocks++
	b.n = 0
	if b.supBlocks == superFan {
		b.flushSuper()
	}
}

func (b *BlockChunkedListBuilder) flushSuper() {
	if b.supBlocks == 0 {
		return
	}
	b.out = codec.PutUvarint(b.out, uint64(b.supN))
	b.out = codec.PutUvarint(b.out, uint64(uint32(b.supFirst)))
	b.out = codec.PutUvarint(b.out, uint64(int64(b.supFirst)-int64(b.supLast)))
	b.out = codec.PutUvarint(b.out, uint64(len(b.sup)))
	b.out = append(b.out, b.sup...)
	b.sup = b.sup[:0]
	b.supN, b.supBlocks = 0, 0
}

// Len reports the number of postings added; Chunks the number of chunks.
func (b *BlockChunkedListBuilder) Len() int    { return b.count }
func (b *BlockChunkedListBuilder) Chunks() int { return b.chunks }

// Bytes returns the encoded list.
func (b *BlockChunkedListBuilder) Bytes() []byte {
	b.flush()
	b.flushSuper()
	layout := layoutChunk
	if b.withTerm {
		layout = layoutChunkTerm
	}
	out := []byte{blockMagic, blockVersion<<4 | layout}
	out = codec.PutUvarint(out, uint64(b.count))
	out = codec.PutUvarint(out, uint64(b.chunks))
	return append(out, b.out...)
}

// --- compressed decoder ---------------------------------------------------------

// blockHeader is one decoded skip header.
type blockHeader struct {
	n        int
	bodyLen  int
	firstDoc DocID
	lastDoc  DocID
	firstKey float64
	lastKey  float64
	firstCID int32
	lastCID  int32
}

// blockList decodes a compressed blob of any layout, one whole block at a
// time into an inline scratch array.  The stream wrappers in stream.go
// delegate to it when the blob carries the compressed magic.
type blockList struct {
	br        *blockReader
	layout    byte
	count     int
	chunks    int
	dir       []float64
	decoded   int
	superLeft int // postings remaining in the open super-block
	pos       int
	entries   []Entry
	arr       [blockCap]Entry
	err       error
}

// newBlockList consumes the compressed blob header from br (whose next
// byte is known to be blockMagic) and returns the decoder.  A bare magic
// byte with nothing after it is the legacy empty list.
func newBlockList(br *blockReader, dir []float64) (*blockList, error) {
	if _, err := br.byte(); err != nil {
		return nil, err
	}
	vl, err := br.byte()
	if err != nil {
		return &blockList{br: br}, nil
	}
	if vl == 0 {
		// Legacy empty chunked list: count 0, chunk count 0, flag byte.
		// Its first two bytes are 0x00 0x00; nothing follows but the flag,
		// so the list is empty under either interpretation.
		return &blockList{br: br}, nil
	}
	if vl>>4 != blockVersion {
		return nil, fmt.Errorf("postings: unknown posting block version %d", vl>>4)
	}
	layout := vl & 0x0f
	if layout < layoutID || layout > layoutChunkTerm {
		return nil, fmt.Errorf("postings: unknown posting block layout %d", layout)
	}
	d := &blockList{br: br, layout: layout, dir: dir}
	cnt, err := br.uvarint()
	if err != nil {
		return nil, fmt.Errorf("postings: posting block count: %w", err)
	}
	d.count = int(cnt)
	if layout == layoutChunk || layout == layoutChunkTerm {
		ch, err := br.uvarint()
		if err != nil {
			return nil, fmt.Errorf("postings: posting block chunk count: %w", err)
		}
		d.chunks = int(ch)
	}
	return d, nil
}

func (d *blockList) readScoreKey() (float64, error) {
	c, err := d.br.uvarint()
	if err != nil {
		return 0, err
	}
	if c == 0 {
		return d.br.float64()
	}
	r := int(c - 1)
	if r >= len(d.dir) {
		return 0, fmt.Errorf("%w: score rank %d outside directory of %d", codec.ErrCorrupt, r, len(d.dir))
	}
	return d.dir[r], nil
}

// readHeader decodes one skip header.  The same shape frames both levels:
// max is the posting bound the frame must respect — what remains of the
// list for a super-block, what remains of the super-block (capped at
// blockCap) for a block.
func (d *blockList) readHeader(max int) (blockHeader, error) {
	var h blockHeader
	nv, err := d.br.uvarint()
	if err != nil {
		return h, err
	}
	h.n = int(nv)
	if h.n < 1 || h.n > max {
		return h, fmt.Errorf("%w: frame of %d postings where at most %d fit", codec.ErrCorrupt, h.n, max)
	}
	switch d.layout {
	case layoutID, layoutIDTerm:
		f, err := d.br.uvarint()
		if err != nil {
			return h, err
		}
		span, err := d.br.uvarint()
		if err != nil {
			return h, err
		}
		h.firstDoc = DocID(f)
		h.lastDoc = DocID(f + span)
	case layoutScore:
		if h.firstKey, err = d.readScoreKey(); err != nil {
			return h, err
		}
		if h.lastKey, err = d.readScoreKey(); err != nil {
			return h, err
		}
	case layoutChunk, layoutChunkTerm:
		f, err := d.br.uvarint()
		if err != nil {
			return h, err
		}
		span, err := d.br.uvarint()
		if err != nil {
			return h, err
		}
		h.firstCID = int32(uint32(f))
		h.lastCID = int32(int64(h.firstCID) - int64(span))
	}
	bl, err := d.br.uvarint()
	if err != nil {
		return h, err
	}
	h.bodyLen = int(bl)
	return h, nil
}

// loadBlock decodes the block under h into the scratch array.
func (d *blockList) loadBlock(h blockHeader) error {
	body, err := d.br.view(h.bodyLen)
	if err != nil {
		return err
	}
	out := d.arr[:h.n]
	for i := range out {
		out[i] = Entry{}
	}
	switch d.layout {
	case layoutID:
		_, err = decodeDocGaps(body, 0, h.firstDoc, out)
	case layoutIDTerm:
		var off int
		if off, err = decodeDocGaps(body, 0, h.firstDoc, out); err == nil {
			_, err = decodeWeights(body, off, out)
		}
	case layoutScore:
		err = d.decodeScoreBody(body, out)
	case layoutChunk, layoutChunkTerm:
		err = d.decodeChunkBody(body, out)
	}
	if err != nil {
		return err
	}
	d.decoded += h.n
	d.entries = out
	d.pos = 0
	return nil
}

// decodeDocGaps fills out[i].Doc from the width byte and bitpacked gap run
// at body[off:], returning the offset past the run.
func decodeDocGaps(body []byte, off int, first DocID, out []Entry) (int, error) {
	n := len(out)
	if off >= len(body) {
		return 0, fmt.Errorf("%w: missing gap width", codec.ErrCorrupt)
	}
	w := int(body[off])
	off++
	if w > 64 {
		return 0, fmt.Errorf("%w: gap width %d", codec.ErrCorrupt, w)
	}
	plen := ((n-1)*w + 7) / 8
	if off+plen > len(body) {
		return 0, fmt.Errorf("%w: gap run truncated", codec.ErrCorrupt)
	}
	src := body[off : off+plen]
	prev := first
	out[0].Doc = first
	bitOff := uint(0)
	for i := 1; i < n; i++ {
		prev += DocID(getBits(src, bitOff, uint(w))) + 1
		bitOff += uint(w)
		out[i].Doc = prev
	}
	return off + plen, nil
}

func (d *blockList) decodeScoreBody(body []byte, out []Entry) error {
	off := 0
	prevRank := -1
	for i := range out {
		c, sz, err := codec.Uvarint(body[off:])
		if err != nil {
			return err
		}
		off += sz
		var s float64
		if c == 0 {
			if s, sz, err = codec.Float64(body[off:]); err != nil {
				return err
			}
			off += sz
			prevRank = -1
		} else {
			r := int(c - 1)
			if prevRank >= 0 {
				r = prevRank + int(c-1)
			}
			if r >= len(d.dir) {
				return fmt.Errorf("%w: score rank %d outside directory of %d", codec.ErrCorrupt, r, len(d.dir))
			}
			s = d.dir[r]
			prevRank = r
		}
		doc, sz, err := codec.Uvarint(body[off:])
		if err != nil {
			return err
		}
		off += sz
		out[i] = Entry{Doc: DocID(doc), SortKey: s}
	}
	return nil
}

func (d *blockList) decodeChunkBody(body []byte, out []Entry) error {
	n := len(out)
	off := 0
	first := true
	var cid int32
	for i := 0; i < n; {
		v, sz, err := codec.Uvarint(body[off:])
		if err != nil {
			return err
		}
		off += sz
		if first {
			cid = int32(uint32(v))
			first = false
		} else {
			cid = int32(int64(cid) - int64(v))
		}
		segN, sz, err := codec.Uvarint(body[off:])
		if err != nil {
			return err
		}
		off += sz
		if segN < 1 || i+int(segN) > n {
			return fmt.Errorf("%w: segment of %d postings at %d of %d", codec.ErrCorrupt, segN, i, n)
		}
		fd, sz, err := codec.Uvarint(body[off:])
		if err != nil {
			return err
		}
		off += sz
		seg := out[i : i+int(segN)]
		if off, err = decodeDocGaps(body, off, DocID(fd), seg); err != nil {
			return err
		}
		for k := range seg {
			seg[k].CID = cid
			seg[k].SortKey = float64(cid)
		}
		i += int(segN)
	}
	if d.layout == layoutChunkTerm {
		if _, err := decodeWeights(body, off, out); err != nil {
			return err
		}
	}
	return nil
}

// blockMax caps a block frame's posting bound at what remains of the open
// super-block.
func (d *blockList) blockMax() int {
	if d.superLeft < blockCap {
		return d.superLeft
	}
	return blockCap
}

// NextBatch implements BatchIterator.
func (d *blockList) NextBatch(out []Entry) (int, error) {
	if d.err != nil {
		return 0, d.err
	}
	n := 0
	for n < len(out) {
		if d.pos < len(d.entries) {
			c := copy(out[n:], d.entries[d.pos:])
			d.pos += c
			n += c
			continue
		}
		if d.decoded >= d.count {
			break
		}
		if d.superLeft == 0 {
			sh, err := d.readHeader(d.count - d.decoded)
			if err != nil {
				d.err = fmt.Errorf("postings: posting super-block: %w", err)
				return n, d.err
			}
			d.superLeft = sh.n
			continue
		}
		h, err := d.readHeader(d.blockMax())
		if err == nil {
			err = d.loadBlock(h)
		}
		if err != nil {
			d.err = fmt.Errorf("postings: posting block: %w", err)
			return n, d.err
		}
		d.superLeft -= h.n
	}
	return n, nil
}

// seekUntil advances the decoder so the next entry returned is the first
// for which keep reports true.  The skip headers prove, without decoding,
// that a frame cannot contain such an entry: a skipped block saves its
// body's decode, and a skipped super-block additionally saves the page
// reads of its multi-page span (the blob reader advances by offset).  If
// no entry qualifies the decoder is left exhausted.
func (d *blockList) seekUntil(skipFrame func(*blockHeader) bool, keep func(*Entry) bool) error {
	if d.err != nil {
		return d.err
	}
	fail := func(level string, err error) error {
		d.err = fmt.Errorf("postings: posting %s: %w", level, err)
		return d.err
	}
	for {
		for d.pos < len(d.entries) {
			if keep(&d.entries[d.pos]) {
				return nil
			}
			d.pos++
		}
		if d.decoded >= d.count {
			return nil
		}
		if d.superLeft == 0 {
			sh, err := d.readHeader(d.count - d.decoded)
			if err != nil {
				return fail("super-block", err)
			}
			if skipFrame(&sh) {
				if err := d.br.skip(sh.bodyLen); err != nil {
					return fail("super-block", err)
				}
				d.decoded += sh.n
				continue
			}
			d.superLeft = sh.n
			continue
		}
		h, err := d.readHeader(d.blockMax())
		if err != nil {
			return fail("block", err)
		}
		if skipFrame(&h) {
			if err := d.br.skip(h.bodyLen); err != nil {
				return fail("block", err)
			}
			d.decoded += h.n
			d.superLeft -= h.n
			d.entries = nil
			d.pos = 0
			continue
		}
		if err := d.loadBlock(h); err != nil {
			return fail("block", err)
		}
		d.superLeft -= h.n
	}
}

// seekDoc positions at the first entry with Doc >= doc (ID layouts).
func (d *blockList) seekDoc(doc DocID) error {
	return d.seekUntil(
		func(h *blockHeader) bool { return h.lastDoc < doc },
		func(e *Entry) bool { return e.Doc >= doc },
	)
}

// seekScoreLE positions at the first entry with SortKey <= s (score layout,
// which sorts descending by score).
func (d *blockList) seekScoreLE(s float64) error {
	return d.seekUntil(
		func(h *blockHeader) bool { return h.lastKey > s },
		func(e *Entry) bool { return e.SortKey <= s },
	)
}

// seekChunkLE positions at the first entry with CID <= cid (chunk layouts,
// which sort descending by chunk ID).
func (d *blockList) seekChunkLE(cid int32) error {
	return d.seekUntil(
		func(h *blockHeader) bool { return h.lastCID > cid },
		func(e *Entry) bool { return e.CID <= cid },
	)
}
