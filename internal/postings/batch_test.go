package postings

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
)

// This file holds the property tests for the block-at-a-time protocol: for
// every long-list layout and every combinator, batched iteration and
// single-step iteration must produce byte-identical entry streams, for any
// batch buffer size.

// collectBatchSize drains src with a fixed batch buffer size.
func collectBatchSize(t *testing.T, src BatchIterator, size int) []Entry {
	t.Helper()
	var out []Entry
	buf := make([]Entry, size)
	for {
		n, err := src.NextBatch(buf)
		if err != nil {
			t.Fatalf("NextBatch(size %d): %v", size, err)
		}
		if n == 0 {
			return out
		}
		out = append(out, buf[:n]...)
	}
}

func collectSingle(t *testing.T, it Iterator) []Entry {
	t.Helper()
	out, err := CollectAll(it)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func sameEntries(t *testing.T, label string, got, want []Entry) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d entries, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: entry %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// batchSizes exercises the interesting buffer shapes: degenerate, prime-ish,
// and the production size.
var batchSizes = []int{1, 3, 7, BatchSize}

// --- layout equivalence --------------------------------------------------------

// randomAscendingDocs produces a strictly ascending docID sequence.
func randomAscendingDocs(rng *rand.Rand, n int) []DocID {
	docs := make([]DocID, n)
	cur := DocID(0)
	for i := range docs {
		cur += DocID(1 + rng.Intn(1000))
		docs[i] = cur
	}
	return docs
}

// layoutCase builds one encoded long list and its two decoders.
type layoutCase struct {
	name string
	data []byte
}

func buildLayoutCases(t *testing.T, rng *rand.Rand, n int) []layoutCase {
	t.Helper()
	var cases []layoutCase

	idb := NewIDListBuilder()
	for _, d := range randomAscendingDocs(rng, n) {
		if err := idb.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	cases = append(cases, layoutCase{name: "id", data: idb.Bytes()})

	sb := NewScoreListBuilder()
	score := 1e9
	lastDoc := DocID(0)
	for i := 0; i < n; i++ {
		if rng.Intn(3) > 0 || i == 0 {
			score -= rng.Float64() * 100
			lastDoc = 0
		}
		lastDoc += DocID(1 + rng.Intn(1000))
		if err := sb.Add(lastDoc, score); err != nil {
			t.Fatal(err)
		}
	}
	cases = append(cases, layoutCase{name: "score", data: sb.Bytes()})

	for _, withTerm := range []bool{false, true} {
		var cb *ChunkedListBuilder
		name := "chunk"
		if withTerm {
			cb = NewChunkedTermListBuilder()
			name = "chunk-term"
		} else {
			cb = NewChunkedListBuilder()
		}
		cid := int32(1000)
		remaining := n
		for remaining > 0 {
			sz := 1 + rng.Intn(remaining)
			posts := make([]ChunkPosting, 0, sz)
			for _, d := range randomAscendingDocs(rng, sz) {
				posts = append(posts, ChunkPosting{Doc: d, TermScore: rng.Float32()})
			}
			if err := cb.AddChunk(cid, posts); err != nil {
				t.Fatal(err)
			}
			cid -= int32(1 + rng.Intn(5))
			remaining -= sz
		}
		cases = append(cases, layoutCase{name: name, data: cb.Bytes()})
	}

	itb := NewIDTermListBuilder()
	for _, d := range randomAscendingDocs(rng, n) {
		if err := itb.Add(d, rng.Float32()); err != nil {
			t.Fatal(err)
		}
	}
	cases = append(cases, layoutCase{name: "id-term", data: itb.Bytes()})

	return cases
}

// streamFor decodes data with the matching stream decoder.
func streamFor(t *testing.T, name string, data []byte) BatchIterator {
	t.Helper()
	r := bytes.NewReader(data)
	var (
		s   BatchIterator
		err error
	)
	switch name {
	case "id":
		s, err = NewStreamIDList(r)
	case "score":
		s, err = NewStreamScoreList(r)
	case "chunk", "chunk-term":
		s, err = NewStreamChunkedList(r)
	case "id-term":
		s, err = NewStreamIDTermList(r)
	default:
		t.Fatalf("unknown layout %q", name)
	}
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// memoryIteratorFor decodes data with the in-memory (slice) decoder, which
// only implements the single-step protocol.
func memoryIteratorFor(t *testing.T, name string, data []byte) Iterator {
	t.Helper()
	var (
		it  Iterator
		err error
	)
	switch name {
	case "id":
		it, err = NewIDListIterator(data)
	case "score":
		it, err = NewScoreListIterator(data)
	case "chunk", "chunk-term":
		it, err = NewChunkedListIterator(data)
	case "id-term":
		it, err = NewIDTermListIterator(data)
	default:
		t.Fatalf("unknown layout %q", name)
	}
	if err != nil {
		t.Fatal(err)
	}
	return it
}

func TestLayoutBatchedMatchesSingleStep(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		n := rng.Intn(700) // includes empty lists
		for _, c := range buildLayoutCases(t, rng, n) {
			// Reference stream: the in-memory decoder stepped one entry at a
			// time — a fully independent decode path.
			want := collectSingle(t, memoryIteratorFor(t, c.name, c.data))
			// Single-step over the streaming decoder.
			got := collectSingle(t, asIterator(streamFor(t, c.name, c.data)))
			sameEntries(t, c.name+"/stream-single", got, want)
			// Batched over the streaming decoder, various buffer sizes.
			for _, size := range batchSizes {
				got := collectBatchSize(t, streamFor(t, c.name, c.data), size)
				sameEntries(t, c.name+"/stream-batched", got, want)
			}
		}
	}
}

// asIterator views a BatchIterator that also implements Iterator as such.
func asIterator(b BatchIterator) Iterator {
	return b.(Iterator)
}

// --- combinator equivalence ----------------------------------------------------

// randomSortedStream produces entries in (SortKey desc, Doc asc) order with
// deliberate position collisions, short-list flags and ADD/REM ops.
func randomSortedStream(rng *rand.Rand, n int, fromShort bool) []Entry {
	entries := make([]Entry, n)
	for i := range entries {
		e := Entry{
			// Few distinct keys and docs force same-position runs both
			// within and across streams.
			SortKey:   float64(rng.Intn(8)),
			Doc:       DocID(rng.Intn(30)),
			TermScore: rng.Float32(),
			FromShort: fromShort,
		}
		if fromShort && rng.Intn(4) == 0 {
			e.Op = OpRem
		}
		entries[i] = e
	}
	sort.SliceStable(entries, func(i, j int) bool { return Less(entries[i], entries[j]) })
	return entries
}

// refMerge is a reference k-way merge: concatenate with stream indexes,
// stable-sort by position keeping stream order on ties.
func refMerge(streams ...[]Entry) []Entry {
	type tagged struct {
		e      Entry
		stream int
	}
	var all []tagged
	for si, s := range streams {
		for _, e := range s {
			all = append(all, tagged{e: e, stream: si})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if !SamePosition(a.e, b.e) {
			return Less(a.e, b.e)
		}
		return a.stream < b.stream
	})
	out := make([]Entry, len(all))
	for i, tg := range all {
		out[i] = tg.e
	}
	return out
}

// refCollapse is a reference implementation of the ADD/REM collapse.
func refCollapse(entries []Entry) []Entry {
	var out []Entry
	for i := 0; i < len(entries); {
		j := i
		removed := false
		best := entries[i]
		for ; j < len(entries) && SamePosition(entries[j], entries[i]); j++ {
			if entries[j].Op == OpRem {
				removed = true
			}
			if entries[j].FromShort && !best.FromShort {
				best = entries[j]
			}
		}
		if !removed {
			out = append(out, best)
		}
		i = j
	}
	return out
}

func TestUnionBatchedMatchesReference(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		k := 1 + rng.Intn(4)
		streams := make([][]Entry, k)
		for i := range streams {
			streams[i] = randomSortedStream(rng, rng.Intn(120), i == 0)
		}
		want := refMerge(streams...)

		mk := func(single bool) []BatchIterator {
			srcs := make([]BatchIterator, k)
			for i := range streams {
				if single {
					srcs[i] = SingleStep{It: NewSliceIterator(streams[i])}
				} else {
					srcs[i] = NewSliceIterator(streams[i])
				}
			}
			return srcs
		}

		got := collectSingle(t, NewUnion(mk(false)...))
		sameEntries(t, "union/next", got, want)
		got = collectSingle(t, NewUnion(mk(true)...))
		sameEntries(t, "union/next-singlestep-inputs", got, want)
		for _, size := range batchSizes {
			u := NewUnion(mk(false)...)
			sameEntries(t, "union/batched", collectBatchSize(t, u, size), want)
			u.Close()
		}
	}
}

func TestCollapseOpsBatchedMatchesReference(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(200 + trial)))
		long := randomSortedStream(rng, rng.Intn(150), false)
		short := randomSortedStream(rng, rng.Intn(60), true)
		want := refCollapse(refMerge(short, long))

		build := func() *CollapseOps {
			return NewCollapseOps(NewUnion(NewSliceIterator(short), NewSliceIterator(long)))
		}
		got := collectSingle(t, build())
		sameEntries(t, "collapse/next", got, want)
		for _, size := range batchSizes {
			c := build()
			sameEntries(t, "collapse/batched", collectBatchSize(t, c, size), want)
			c.Close()
		}
	}
}

// refGroup mirrors Group with owned slices for comparison.
type refGroup struct {
	doc     DocID
	sortKey float64
	entries []Entry
	present []bool
	count   int
}

// refGroups is the reference grouping of the merged streams.
func refGroups(streams ...[]Entry) []refGroup {
	type tagged struct {
		e      Entry
		stream int
	}
	var all []tagged
	for si, s := range streams {
		for _, e := range s {
			all = append(all, tagged{e: e, stream: si})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if !SamePosition(a.e, b.e) {
			return Less(a.e, b.e)
		}
		return a.stream < b.stream
	})
	var out []refGroup
	for i := 0; i < len(all); {
		g := refGroup{
			doc:     all[i].e.Doc,
			sortKey: all[i].e.SortKey,
			entries: make([]Entry, len(streams)),
			present: make([]bool, len(streams)),
		}
		j := i
		for ; j < len(all) && SamePosition(all[j].e, all[i].e); j++ {
			g.entries[all[j].stream] = all[j].e
			if !g.present[all[j].stream] {
				g.present[all[j].stream] = true
				g.count++
			}
		}
		out = append(out, g)
		i = j
	}
	return out
}

func collectGroups(t *testing.T, m *GroupMerger) []refGroup {
	t.Helper()
	var out []refGroup
	for {
		g, ok, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		// Copy out: the merger reuses the group's slices.
		cp := refGroup{
			doc:     g.Doc,
			sortKey: g.SortKey,
			entries: make([]Entry, len(g.Entries)),
			present: append([]bool(nil), g.Present...),
			count:   g.Count,
		}
		for i, p := range g.Present {
			if p {
				cp.entries[i] = g.Entries[i]
			}
		}
		out = append(out, cp)
	}
}

func sameGroups(t *testing.T, label string, got, want []refGroup) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d groups, want %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.doc != w.doc || g.sortKey != w.sortKey || g.count != w.count {
			t.Fatalf("%s: group %d = (%g,%d,count %d), want (%g,%d,count %d)",
				label, i, g.sortKey, g.doc, g.count, w.sortKey, w.doc, w.count)
		}
		for s := range w.present {
			if g.present[s] != w.present[s] {
				t.Fatalf("%s: group %d stream %d present = %v, want %v", label, i, s, g.present[s], w.present[s])
			}
			if w.present[s] && g.entries[s] != w.entries[s] {
				t.Fatalf("%s: group %d stream %d entry = %+v, want %+v", label, i, s, g.entries[s], w.entries[s])
			}
		}
	}
}

func TestGroupMergerBatchedMatchesReference(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(300 + trial)))
		k := 1 + rng.Intn(4)
		// Group inputs must have distinct positions within one stream, as the
		// per-term pipelines guarantee after CollapseOps.
		streams := make([][]Entry, k)
		for i := range streams {
			streams[i] = refCollapse(randomSortedStream(rng, rng.Intn(100), false))
		}
		want := refGroups(streams...)

		srcs := make([]BatchIterator, k)
		for i := range streams {
			srcs[i] = NewSliceIterator(streams[i])
		}
		m := NewGroupMerger(srcs...)
		sameGroups(t, "groups/batched-inputs", collectGroups(t, m), want)
		m.Close()

		for i := range streams {
			srcs[i] = SingleStep{It: NewSliceIterator(streams[i])}
		}
		m = NewGroupMerger(srcs...)
		sameGroups(t, "groups/singlestep-inputs", collectGroups(t, m), want)
		m.Close()
	}
}

// TestPipelineBatchedMatchesSingleStep runs the full per-term read pipeline —
// stream-decoded long list ∪ short list, collapsed — in both protocols and
// requires identical output, including ADD/REM short-list interleavings that
// cancel long-list postings.
func TestPipelineBatchedMatchesSingleStep(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(400 + trial)))

		// Long list: a score-ordered stream layout.
		sb := NewScoreListBuilder()
		score := 1000.0
		var longEntries []Entry
		lastDoc := DocID(0)
		for i := 0; i < 60+rng.Intn(200); i++ {
			if rng.Intn(3) > 0 || i == 0 {
				score -= 1 + rng.Float64()
				lastDoc = 0
			}
			lastDoc += DocID(1 + rng.Intn(50))
			if err := sb.Add(lastDoc, score); err != nil {
				t.Fatal(err)
			}
			longEntries = append(longEntries, Entry{Doc: lastDoc, SortKey: score})
		}
		data := sb.Bytes()

		// Short list: entries colliding with long-list positions, some REMs.
		var short []Entry
		for _, le := range longEntries {
			if rng.Intn(5) == 0 {
				e := Entry{Doc: le.Doc, SortKey: le.SortKey, TermScore: rng.Float32(), FromShort: true}
				if rng.Intn(2) == 0 {
					e.Op = OpRem
				}
				short = append(short, e)
			}
		}
		sort.SliceStable(short, func(i, j int) bool { return Less(short[i], short[j]) })

		want := refCollapse(refMerge(short, longEntries))

		long := streamFor(t, "score", data)
		batched := collectBatchSize(t, NewCollapseOps(NewUnion(NewSliceIterator(short), long)), BatchSize)
		sameEntries(t, "pipeline/batched", batched, want)

		longSingle := SingleStep{It: asIterator(streamFor(t, "score", data))}
		single := collectSingle(t, NewCollapseOps(NewUnion(SingleStep{It: NewSliceIterator(short)}, longSingle)))
		sameEntries(t, "pipeline/single", single, want)
	}
}
