package postings

// This file implements the iterator combinators the query algorithms are
// built from:
//
//   - Union       — merges the short and long list of one term into a single
//     stream in (SortKey descending, Doc ascending) order, the
//     "SL(ti) ∪ LL(ti)" of Algorithms 2 and 3.
//   - CollapseOps — applies ADD/REM short-list postings produced by content
//     updates (Appendix A.1) to the merged stream.
//   - GroupMerger — advances the per-term streams of a multi-keyword query in
//     lock step, yielding, for each (SortKey, Doc) position, the set of query
//     terms whose stream contains that document there.  Conjunctive queries
//     accept groups covering every term, disjunctive queries any non-empty
//     group.
//
// All three run on the block-at-a-time protocol: they pull batches from
// their inputs into pooled scratch buffers, merge directly out of those
// buffers (no virtual call per posting), and — for Union and CollapseOps —
// emit whole batches downstream.  Each also keeps a single-step Next for
// compatibility with the plain Iterator interface.

// Less orders entries by descending SortKey and then ascending Doc, which is
// the processing order of every score- or chunk-ordered list in the paper.
func Less(a, b Entry) bool {
	if a.SortKey != b.SortKey {
		return a.SortKey > b.SortKey
	}
	return a.Doc < b.Doc
}

// SamePosition reports whether two entries occupy the same (SortKey, Doc)
// position in the processing order.
func SamePosition(a, b Entry) bool {
	return a.SortKey == b.SortKey && a.Doc == b.Doc
}

// mergeHead is one buffered input of a merge combinator.
type mergeHead struct {
	src  BatchIterator
	buf  *[]Entry
	pos  int
	n    int
	done bool
}

// cur returns the head's current entry; only valid when pos < n.
func (h *mergeHead) cur() Entry { return (*h.buf)[h.pos] }

// refill fetches the next batch from the head's source.  After a call either
// pos < n holds or the head is done and its scratch buffer returned.
func (h *mergeHead) refill() error {
	if h.done {
		return nil
	}
	if h.buf == nil {
		h.buf = getEntryBuf()
	}
	n, err := h.src.NextBatch(*h.buf)
	if err != nil {
		return err
	}
	h.pos, h.n = 0, n
	if n == 0 {
		h.done = true
		putEntryBuf(h.buf)
		h.buf = nil
	}
	return nil
}

// close releases the head's scratch buffer and propagates to its source.
func (h *mergeHead) close() {
	if h.buf != nil {
		putEntryBuf(h.buf)
		h.buf = nil
	}
	h.done = true
	h.n, h.pos = 0, 0
	CloseIterator(h.src)
}

// singleStepState implements Next on top of NextBatch with a pooled buffer.
type singleStepState struct {
	buf *[]Entry
	pos int
	n   int
}

func (s *singleStepState) next(b BatchIterator) (Entry, bool, error) {
	if s.pos >= s.n {
		if s.buf == nil {
			s.buf = getEntryBuf()
		}
		n, err := b.NextBatch(*s.buf)
		if err != nil {
			return Entry{}, false, err
		}
		if n == 0 {
			return Entry{}, false, nil
		}
		s.pos, s.n = 0, n
	}
	e := (*s.buf)[s.pos]
	s.pos++
	return e, true, nil
}

func (s *singleStepState) close() {
	if s.buf != nil {
		putEntryBuf(s.buf)
		s.buf = nil
	}
	s.pos, s.n = 0, 0
}

// Union merges any number of inputs, each already in (SortKey desc, Doc asc)
// order, into a single stream in that order.  Entries from different inputs
// at the same position are both emitted (callers that need ADD/REM semantics
// wrap the union in CollapseOps).  Ties are broken by input index so the
// merge is deterministic.
type Union struct {
	heads []mergeHead
	init  bool
	out   singleStepState
}

// NewUnion returns a union over the given inputs.  Wrap a plain Iterator
// with AsBatch (or SingleStep) to feed it in.
func NewUnion(srcs ...BatchIterator) *Union {
	heads := make([]mergeHead, len(srcs))
	for i, src := range srcs {
		heads[i] = mergeHead{src: src}
	}
	return &Union{heads: heads}
}

func (u *Union) prime() error {
	for i := range u.heads {
		if err := u.heads[i].refill(); err != nil {
			return err
		}
	}
	u.init = true
	return nil
}

// NextBatch implements BatchIterator.  Runs of entries from one input that
// sort before every other input's next entry are copied out in bulk.
func (u *Union) NextBatch(out []Entry) (int, error) {
	if !u.init {
		if err := u.prime(); err != nil {
			return 0, err
		}
	}
	n := 0
	for n < len(out) {
		// Pick the input whose current entry sorts first; ties keep the
		// lowest input index, matching the documented emit order.
		best := -1
		for i := range u.heads {
			h := &u.heads[i]
			if h.pos >= h.n {
				continue
			}
			if best < 0 || Less(h.cur(), u.heads[best].cur()) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		hb := &u.heads[best]
		buf := (*hb.buf)[:hb.n]
		// The run from the best input extends while its entries sort before
		// every other input's current entry.  limitIdx is the lowest-indexed
		// input holding the smallest such entry; the run may include entries
		// equal to it only when best has the lower input index, preserving
		// the documented tie order.
		limit := Entry{}
		limitIdx := -1
		for i := range u.heads {
			if i == best {
				continue
			}
			h := &u.heads[i]
			if h.pos >= h.n {
				continue
			}
			if e := h.cur(); limitIdx < 0 || Less(e, limit) {
				limit, limitIdx = e, i
			}
		}
		if limitIdx < 0 {
			c := copy(out[n:], buf[hb.pos:])
			n += c
			hb.pos += c
		} else if best < limitIdx {
			for hb.pos < hb.n && n < len(out) && !Less(limit, buf[hb.pos]) {
				out[n] = buf[hb.pos]
				n++
				hb.pos++
			}
		} else {
			for hb.pos < hb.n && n < len(out) && Less(buf[hb.pos], limit) {
				out[n] = buf[hb.pos]
				n++
				hb.pos++
			}
		}
		if hb.pos >= hb.n {
			if err := hb.refill(); err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

// Next implements Iterator.
func (u *Union) Next() (Entry, bool, error) { return u.out.next(u) }

// Close implements Closer.
func (u *Union) Close() {
	for i := range u.heads {
		u.heads[i].close()
	}
	u.out.close()
	u.init = true
}

// CollapseOps merges runs of entries at the same (SortKey, Doc) position and
// applies content-update semantics: a REM posting cancels the position
// entirely (the term was removed from the document); otherwise short-list
// postings win over long-list postings so the freshest term score is used.
type CollapseOps struct {
	src     mergeHead
	pending Entry
	have    bool
	out     singleStepState
}

// NewCollapseOps wraps src, which must already be in (SortKey desc, Doc asc)
// order.
func NewCollapseOps(src BatchIterator) *CollapseOps {
	return &CollapseOps{src: mergeHead{src: src}}
}

// nextInput steps the buffered input one entry.
func (c *CollapseOps) nextInput() (Entry, bool, error) {
	if c.src.pos >= c.src.n {
		if err := c.src.refill(); err != nil {
			return Entry{}, false, err
		}
		if c.src.done {
			return Entry{}, false, nil
		}
	}
	e := c.src.cur()
	c.src.pos++
	return e, true, nil
}

// NextBatch implements BatchIterator.
func (c *CollapseOps) NextBatch(out []Entry) (int, error) {
	n := 0
	for n < len(out) {
		if !c.have {
			e, ok, err := c.nextInput()
			if err != nil {
				return n, err
			}
			if !ok {
				break
			}
			c.pending = e
		}
		// Gather the run at this position.
		cur := c.pending
		c.have = false
		removed := cur.Op == OpRem
		best := cur
		for {
			e, ok, err := c.nextInput()
			if err != nil {
				return n, err
			}
			if !ok {
				break
			}
			if !SamePosition(e, cur) {
				c.pending = e
				c.have = true
				break
			}
			if e.Op == OpRem {
				removed = true
			}
			// Prefer short-list postings: their term score is fresher.
			if e.FromShort && !best.FromShort {
				best = e
			}
		}
		if removed {
			continue
		}
		out[n] = best
		n++
	}
	return n, nil
}

// Next implements Iterator.
func (c *CollapseOps) Next() (Entry, bool, error) { return c.out.next(c) }

// Close implements Closer.
func (c *CollapseOps) Close() {
	c.src.close()
	c.out.close()
	c.have = false
}

// Group is the set of per-term entries found at one (SortKey, Doc) position.
//
// The Entries and Present slices returned by GroupMerger.Next are reused
// across calls; callers must copy out anything they retain past the next
// Next call.
type Group struct {
	Doc DocID
	// SortKey of the position (list score or chunk ID).
	SortKey float64
	// Entries[i] is the posting from stream i; Present[i] reports whether
	// stream i had a posting at this position.
	Entries []Entry
	Present []bool
	// Count is the number of streams present.
	Count int
}

// ContainsAll reports whether every stream contributed a posting.
func (g *Group) ContainsAll() bool { return g.Count == len(g.Present) }

// GroupMerger merges k per-term streams (each in (SortKey desc, Doc asc)
// order) and yields one Group per distinct position, in the same order.
// Input postings move in batches; groups are emitted one at a time because
// the stopping rules of Algorithms 2 and 3 are evaluated per position.
type GroupMerger struct {
	heads []mergeHead
	order []int // binary min-heap of head indices, ordered by current entry
	g     Group
	init  bool
}

// NewGroupMerger returns a merger over the given streams.
func NewGroupMerger(streams ...BatchIterator) *GroupMerger {
	heads := make([]mergeHead, len(streams))
	for i, src := range streams {
		heads[i] = mergeHead{src: src}
	}
	return &GroupMerger{
		heads: heads,
		order: make([]int, 0, len(streams)),
		g: Group{
			Entries: make([]Entry, len(streams)),
			Present: make([]bool, len(streams)),
		},
	}
}

// NumStreams reports the number of merged streams.
func (m *GroupMerger) NumStreams() int { return len(m.heads) }

// lessIdx orders two heads by their current entries, ties by head index so
// duplicate positions across streams pop in stream order.
func (m *GroupMerger) lessIdx(x, y int) bool {
	a, b := m.heads[x].cur(), m.heads[y].cur()
	if a.SortKey != b.SortKey || a.Doc != b.Doc {
		return Less(a, b)
	}
	return x < y
}

func (m *GroupMerger) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !m.lessIdx(m.order[i], m.order[parent]) {
			break
		}
		m.order[i], m.order[parent] = m.order[parent], m.order[i]
		i = parent
	}
}

func (m *GroupMerger) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(m.order) && m.lessIdx(m.order[l], m.order[smallest]) {
			smallest = l
		}
		if r < len(m.order) && m.lessIdx(m.order[r], m.order[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		m.order[i], m.order[smallest] = m.order[smallest], m.order[i]
		i = smallest
	}
}

func (m *GroupMerger) prime() error {
	for i := range m.heads {
		if err := m.heads[i].refill(); err != nil {
			return err
		}
		if !m.heads[i].done {
			m.order = append(m.order, i)
			m.siftUp(len(m.order) - 1)
		}
	}
	m.init = true
	return nil
}

// popRoot removes the exhausted head at the heap root.
func (m *GroupMerger) popRoot() {
	last := len(m.order) - 1
	m.order[0] = m.order[last]
	m.order = m.order[:last]
	if len(m.order) > 1 {
		m.siftDown(0)
	}
}

// Next returns the next Group, or ok=false when all streams are exhausted.
// The group's slices are reused; see the Group docs.
func (m *GroupMerger) Next() (Group, bool, error) {
	if !m.init {
		if err := m.prime(); err != nil {
			return Group{}, false, err
		}
	}
	if len(m.order) == 0 {
		return Group{}, false, nil
	}
	top := m.heads[m.order[0]].cur()
	m.g.Doc, m.g.SortKey = top.Doc, top.SortKey
	for i := range m.g.Present {
		m.g.Present[i] = false
	}
	m.g.Count = 0
	for len(m.order) > 0 {
		i := m.order[0]
		h := &m.heads[i]
		e := h.cur()
		if e.SortKey != top.SortKey || e.Doc != top.Doc {
			break
		}
		m.g.Entries[i] = e
		if !m.g.Present[i] {
			m.g.Present[i] = true
			m.g.Count++
		}
		// Advance that stream and restore heap order.
		h.pos++
		if h.pos >= h.n {
			if err := h.refill(); err != nil {
				return Group{}, false, err
			}
			if h.done {
				m.popRoot()
				continue
			}
		}
		m.siftDown(0)
	}
	return m.g, true, nil
}

// Close implements Closer.
func (m *GroupMerger) Close() {
	for i := range m.heads {
		m.heads[i].close()
	}
	m.order = m.order[:0]
	m.init = true
}

// CollectAll drains an iterator into a slice; used by tests and by callers
// that materialize short lists.
func CollectAll(it Iterator) ([]Entry, error) {
	var out []Entry
	for {
		e, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, e)
	}
}
