package postings

import "container/heap"

// This file implements the iterator combinators the query algorithms are
// built from:
//
//   - Union       — merges the short and long list of one term into a single
//     stream in (SortKey descending, Doc ascending) order, the
//     "SL(ti) ∪ LL(ti)" of Algorithms 2 and 3.
//   - CollapseOps — applies ADD/REM short-list postings produced by content
//     updates (Appendix A.1) to the merged stream.
//   - GroupMerger — advances the per-term streams of a multi-keyword query in
//     lock step, yielding, for each (SortKey, Doc) position, the set of query
//     terms whose stream contains that document there.  Conjunctive queries
//     accept groups covering every term, disjunctive queries any non-empty
//     group.

// Less orders entries by descending SortKey and then ascending Doc, which is
// the processing order of every score- or chunk-ordered list in the paper.
func Less(a, b Entry) bool {
	if a.SortKey != b.SortKey {
		return a.SortKey > b.SortKey
	}
	return a.Doc < b.Doc
}

// SamePosition reports whether two entries occupy the same (SortKey, Doc)
// position in the processing order.
func SamePosition(a, b Entry) bool {
	return a.SortKey == b.SortKey && a.Doc == b.Doc
}

// Union merges any number of iterators, each already in (SortKey desc, Doc
// asc) order, into a single stream in that order.  Entries from different
// inputs at the same position are both emitted (callers that need ADD/REM
// semantics wrap the union in CollapseOps).
type Union struct {
	heads []unionHead
	init  bool
}

type unionHead struct {
	it    Iterator
	entry Entry
	valid bool
}

// NewUnion returns a union over the given iterators.
func NewUnion(iters ...Iterator) *Union {
	heads := make([]unionHead, len(iters))
	for i, it := range iters {
		heads[i] = unionHead{it: it}
	}
	return &Union{heads: heads}
}

func (u *Union) prime() error {
	for i := range u.heads {
		e, ok, err := u.heads[i].it.Next()
		if err != nil {
			return err
		}
		u.heads[i].entry = e
		u.heads[i].valid = ok
	}
	u.init = true
	return nil
}

// Next implements Iterator.
func (u *Union) Next() (Entry, bool, error) {
	if !u.init {
		if err := u.prime(); err != nil {
			return Entry{}, false, err
		}
	}
	best := -1
	for i := range u.heads {
		if !u.heads[i].valid {
			continue
		}
		if best < 0 || Less(u.heads[i].entry, u.heads[best].entry) {
			best = i
		}
	}
	if best < 0 {
		return Entry{}, false, nil
	}
	out := u.heads[best].entry
	e, ok, err := u.heads[best].it.Next()
	if err != nil {
		return Entry{}, false, err
	}
	u.heads[best].entry = e
	u.heads[best].valid = ok
	return out, true, nil
}

// CollapseOps merges runs of entries at the same (SortKey, Doc) position and
// applies content-update semantics: a REM posting cancels the position
// entirely (the term was removed from the document); otherwise short-list
// postings win over long-list postings so the freshest term score is used.
type CollapseOps struct {
	src     Iterator
	pending Entry
	have    bool
	done    bool
}

// NewCollapseOps wraps src, which must already be in (SortKey desc, Doc asc)
// order.
func NewCollapseOps(src Iterator) *CollapseOps { return &CollapseOps{src: src} }

// Next implements Iterator.
func (c *CollapseOps) Next() (Entry, bool, error) {
	for {
		if c.done && !c.have {
			return Entry{}, false, nil
		}
		if !c.have {
			e, ok, err := c.src.Next()
			if err != nil {
				return Entry{}, false, err
			}
			if !ok {
				c.done = true
				return Entry{}, false, nil
			}
			c.pending = e
			c.have = true
		}
		// Gather the run at this position.
		cur := c.pending
		removed := cur.Op == OpRem
		best := cur
		for {
			e, ok, err := c.src.Next()
			if err != nil {
				return Entry{}, false, err
			}
			if !ok {
				c.done = true
				c.have = false
				break
			}
			if !SamePosition(e, cur) {
				c.pending = e
				c.have = true
				break
			}
			if e.Op == OpRem {
				removed = true
			}
			// Prefer short-list postings: their term score is fresher.
			if e.FromShort && !best.FromShort {
				best = e
			}
		}
		if removed {
			continue
		}
		return best, true, nil
	}
}

// Group is the set of per-term entries found at one (SortKey, Doc) position.
type Group struct {
	Doc DocID
	// SortKey of the position (list score or chunk ID).
	SortKey float64
	// Entries[i] is the posting from stream i; Present[i] reports whether
	// stream i had a posting at this position.
	Entries []Entry
	Present []bool
	// Count is the number of streams present.
	Count int
}

// ContainsAll reports whether every stream contributed a posting.
func (g *Group) ContainsAll() bool { return g.Count == len(g.Present) }

// GroupMerger merges k per-term streams (each in (SortKey desc, Doc asc)
// order) and yields one Group per distinct position, in the same order.
type GroupMerger struct {
	streams []Iterator
	heads   []groupHead
	pq      groupPQ
	init    bool
}

type groupHead struct {
	entry Entry
	valid bool
}

// NewGroupMerger returns a merger over the given streams.
func NewGroupMerger(streams ...Iterator) *GroupMerger {
	return &GroupMerger{streams: streams, heads: make([]groupHead, len(streams))}
}

// NumStreams reports the number of merged streams.
func (m *GroupMerger) NumStreams() int { return len(m.streams) }

func (m *GroupMerger) prime() error {
	m.pq = groupPQ{}
	for i := range m.streams {
		e, ok, err := m.streams[i].Next()
		if err != nil {
			return err
		}
		m.heads[i] = groupHead{entry: e, valid: ok}
		if ok {
			heap.Push(&m.pq, pqItem{stream: i, entry: e})
		}
	}
	m.init = true
	return nil
}

// Next returns the next Group, or ok=false when all streams are exhausted.
func (m *GroupMerger) Next() (Group, bool, error) {
	if !m.init {
		if err := m.prime(); err != nil {
			return Group{}, false, err
		}
	}
	if m.pq.Len() == 0 {
		return Group{}, false, nil
	}
	top := m.pq.items[0]
	g := Group{
		Doc:     top.entry.Doc,
		SortKey: top.entry.SortKey,
		Entries: make([]Entry, len(m.streams)),
		Present: make([]bool, len(m.streams)),
	}
	for m.pq.Len() > 0 && SamePosition(m.pq.items[0].entry, top.entry) {
		item := heap.Pop(&m.pq).(pqItem)
		g.Entries[item.stream] = item.entry
		if !g.Present[item.stream] {
			g.Present[item.stream] = true
			g.Count++
		}
		// Advance that stream.
		e, ok, err := m.streams[item.stream].Next()
		if err != nil {
			return Group{}, false, err
		}
		if ok {
			heap.Push(&m.pq, pqItem{stream: item.stream, entry: e})
		}
	}
	return g, true, nil
}

type pqItem struct {
	stream int
	entry  Entry
}

type groupPQ struct {
	items []pqItem
}

func (p *groupPQ) Len() int { return len(p.items) }

func (p *groupPQ) Less(i, j int) bool {
	a, b := p.items[i].entry, p.items[j].entry
	if a.SortKey != b.SortKey || a.Doc != b.Doc {
		return Less(a, b)
	}
	return p.items[i].stream < p.items[j].stream
}

func (p *groupPQ) Swap(i, j int) { p.items[i], p.items[j] = p.items[j], p.items[i] }

func (p *groupPQ) Push(x any) { p.items = append(p.items, x.(pqItem)) }

func (p *groupPQ) Pop() any {
	last := p.items[len(p.items)-1]
	p.items = p.items[:len(p.items)-1]
	return last
}

// CollectAll drains an iterator into a slice; used by tests and by callers
// that materialize short lists.
func CollectAll(it Iterator) ([]Entry, error) {
	var out []Entry
	for {
		e, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, e)
	}
}
