package core

import (
	"fmt"
	"path/filepath"
	"testing"

	"svrdb/internal/storage/pagefile"
)

// TestCrashRecoveryMatrixLifecycle is the crash-matrix leg for the online
// index lifecycle: a committed archive database performs one lifecycle
// operation — an online CreateTextIndex backfill, or a DropTextIndex —
// while a deterministic fault kills the process at every write, torn-write
// and fsync site of the commit protocol.  After each crash the file must
// reopen cleanly with the index either fully absent or fully present
// (query results byte-identical to the pre- or post-op committed state),
// never in between — and if the operation reported success, the post state
// is mandatory.
func TestCrashRecoveryMatrixLifecycle(t *testing.T) {
	const nMovies = 10
	for _, op := range []struct {
		name    string
		mutate  func(e *Engine) error
		prepare func(t *testing.T, path string)
	}{
		{
			name: "create",
			mutate: func(e *Engine) error {
				_, err := e.CreateTextIndex("idx-online", "Movies", "desc", IndexOptions{
					Method:   MethodChunk,
					SpecName: "archive",
				})
				return err
			},
			prepare: func(t *testing.T, path string) { buildDurableArchive(t, path, nMovies) },
		},
		{
			name: "drop",
			mutate: func(e *Engine) error {
				return e.DropTextIndex("idx-" + string(MethodChunk))
			},
			prepare: func(t *testing.T, path string) { buildDurableArchive(t, path, nMovies) },
		},
	} {
		op := op
		t.Run(op.name, func(t *testing.T) {
			dir := t.TempDir()
			template := filepath.Join(dir, "template.svrdb")
			op.prepare(t, template)

			snapshotOf := func(name string, mutate func(e *Engine) error) string {
				p := filepath.Join(dir, name+".svrdb")
				cloneEngineFile(t, template, p)
				e, err := Open(p, durableOpts())
				if err != nil {
					t.Fatal(err)
				}
				defer e.Close()
				if mutate != nil {
					if err := mutate(e); err != nil {
						t.Fatal(err)
					}
				}
				return searchSnapshot(t, e)
			}
			pre := snapshotOf("pre", nil)
			post := snapshotOf("post", op.mutate)
			if pre == post {
				t.Fatalf("%s did not change any query results; the matrix would prove nothing", op.name)
			}

			// Counting run: learn the fault-site counts for this operation.
			countPath := filepath.Join(dir, "count.svrdb")
			cloneEngineFile(t, template, countPath)
			counter := pagefile.NewFaultInjector(pagefile.FaultPlan{})
			cfile, err := pagefile.Open(countPath, pagefile.WithFaults(counter))
			if err != nil {
				t.Fatal(err)
			}
			ce, err := openFromFile(cfile, durableOpts())
			if err != nil {
				t.Fatal(err)
			}
			openReads := counter.Reads()
			if err := op.mutate(ce); err != nil {
				t.Fatal(err)
			}
			writes, syncs := counter.Writes(), counter.Syncs()
			cfile.Close()
			if writes < 2 || syncs < 2 || openReads < 2 {
				t.Fatalf("counting run saw %d writes, %d syncs, %d open reads; too few for a meaningful matrix", writes, syncs, openReads)
			}

			type site struct {
				name string
				plan pagefile.FaultPlan
			}
			var sites []site
			for i := 1; i <= int(writes); i++ {
				sites = append(sites,
					site{fmt.Sprintf("write-%d", i), pagefile.FaultPlan{FailWrite: i}},
					site{fmt.Sprintf("torn-write-%d", i), pagefile.FaultPlan{FailWrite: i, TornWrite: true}})
			}
			for i := 1; i <= int(syncs); i++ {
				sites = append(sites, site{fmt.Sprintf("sync-%d", i), pagefile.FaultPlan{FailSync: i}})
			}
			for i := 1; i <= int(openReads); i++ {
				sites = append(sites, site{fmt.Sprintf("read-%d", i), pagefile.FaultPlan{FailRead: i}})
			}

			for _, s := range sites {
				t.Run(s.name, func(t *testing.T) {
					work := filepath.Join(dir, "work.svrdb")
					cloneEngineFile(t, template, work)
					fi := pagefile.NewFaultInjector(s.plan)
					file, err := pagefile.Open(work, pagefile.WithFaults(fi))

					opRan, opCommitted := false, false
					if err == nil {
						e, openErr := openFromFile(file, durableOpts())
						if openErr == nil {
							opRan = true
							opCommitted = op.mutate(e) == nil
						}
						file.Close()
					}
					if !fi.Tripped() {
						t.Skipf("fault site %s not reached in this run", s.name)
					}

					re, err := Open(work, durableOpts())
					if err != nil {
						t.Fatalf("clean reopen after crash: %v", err)
					}
					got := searchSnapshot(t, re)
					if err := re.Close(); err != nil {
						t.Errorf("close after recovery: %v", err)
					}
					switch got {
					case pre:
						if opCommitted {
							t.Errorf("%s reported success but recovery landed on the pre-op state", op.name)
						}
					case post:
						if !opRan {
							t.Errorf("%s never ran yet recovery produced the post-op state", op.name)
						}
					default:
						t.Errorf("recovered state matches neither the fully-absent nor the fully-present index state (op ran: %v, committed: %v)",
							opRan, opCommitted)
					}
				})
			}
		})
	}
}
