package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"svrdb/internal/relation"
	"svrdb/internal/workload"
)

// lifecycleStormQueries is the probe mix the lifecycle torture tests run
// against the index being created or dropped.
var lifecycleStormQueries = []SearchRequest{
	{Query: "golden gate", K: 10},
	{Query: "san francisco", K: 8, Disjunctive: true},
}

// startStatisticsStorm launches a writer goroutine pushing continuous
// update batches through ApplyBatch until stop closes.  The returned wait
// function joins the goroutine and reports its first error.
func startStatisticsStorm(e *Engine, db *relation.DB, nMovies int, stop chan struct{}) func() error {
	errCh := make(chan error, 1)
	go func() {
		errCh <- func() error {
			stats, err := db.Table("Statistics")
			if err != nil {
				return err
			}
			for b := 0; ; b++ {
				select {
				case <-stop:
					return nil
				default:
				}
				err := e.ApplyBatch(func() error {
					for j := 0; j < 8; j++ {
						pk := int64((b*8+j)%nMovies + 1)
						row, err := stats.Get(pk)
						if err != nil {
							return err
						}
						return stats.Update(pk, map[string]relation.Value{
							"nVisit": relation.Int(row[2].I + int64(1000*(j+1))),
						})
					}
					return nil
				})
				if err != nil {
					return err
				}
			}
		}()
	}()
	return func() error { return <-errCh }
}

// TestOnlineCreateIndexUnderLoad creates an index on a live engine while a
// query storm polls for it by name and a writer storm pushes batches.  The
// lifecycle contract under test: every lookup before publish cleanly misses
// with ErrNotFound, the publish is monotonic (once seen, never unseen), every
// search after publish succeeds, and the published index is byte-identical
// to one built on the quiesced engine — i.e. the backfill plus the racing
// batches lost nothing.
func TestOnlineCreateIndexUnderLoad(t *testing.T) {
	for _, method := range []MethodKind{MethodID, MethodChunk} {
		method := method
		t.Run(string(method), func(t *testing.T) {
			const nMovies = 120
			engine, db := newArchiveEngine(t, nMovies)
			engine.RegisterSpec("archive", workload.ArchiveSpec())

			stop := make(chan struct{})
			stormWait := startStatisticsStorm(engine, db, nMovies, stop)

			var published atomic.Bool
			var wg sync.WaitGroup
			const readers = 4
			for r := 0; r < readers; r++ {
				r := r
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						ti, err := engine.TextIndex("live")
						if err != nil {
							if !errors.Is(err, relation.ErrNotFound) {
								t.Errorf("reader %d: pre-publish lookup failed with %v, want ErrNotFound", r, err)
								return
							}
							if published.Load() {
								t.Errorf("reader %d: index vanished after publish", r)
								return
							}
							continue
						}
						published.Store(true)
						if _, err := ti.Search(lifecycleStormQueries[(i+r)%len(lifecycleStormQueries)]); err != nil {
							t.Errorf("reader %d: post-publish search failed: %v", r, err)
							return
						}
					}
				}()
			}

			if _, err := engine.CreateTextIndex("live", "Movies", "desc", IndexOptions{
				Method:   method,
				SpecName: "archive",
			}); err != nil {
				t.Fatalf("online create: %v", err)
			}
			// Let the readers hammer the published index a little before
			// stopping the storm.
			for i := 0; i < 50 && !published.Load(); i++ {
				ti, err := engine.TextIndex("live")
				if err != nil {
					t.Fatalf("lookup after create returned: %v", err)
				}
				if _, err := ti.Search(lifecycleStormQueries[0]); err != nil {
					t.Fatalf("search after create returned: %v", err)
				}
			}
			close(stop)
			wg.Wait()
			if err := stormWait(); err != nil {
				t.Fatalf("writer storm: %v", err)
			}

			// With the engine quiesced, the online-built index must answer
			// exactly like a freshly built reference over the same state.
			live, err := engine.TextIndex("live")
			if err != nil {
				t.Fatal(err)
			}
			ref, err := engine.CreateTextIndex("ref", "Movies", "desc", IndexOptions{
				Method:   method,
				SpecName: "archive",
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range lifecycleStormQueries {
				got, err := live.Search(q)
				if err != nil {
					t.Fatal(err)
				}
				want, err := ref.Search(q)
				if err != nil {
					t.Fatal(err)
				}
				if serializeResult(got) != serializeResult(want) {
					t.Errorf("query %q: online-built index diverges from reference:\n  got  %s\n  want %s",
						q.Query, serializeResult(got), serializeResult(want))
				}
			}
			if err := live.MaintenanceErr(); err != nil {
				t.Errorf("maintenance errors on online-built index: %v", err)
			}
			if err := engine.Close(); err != nil {
				t.Errorf("Close (includes pin audit): %v", err)
			}
		})
	}
}

// TestOnlineDropIndexUnderLoad drops an index out from under a query+write
// storm.  No reader may ever observe a half-removed index: a search either
// completes normally or fails with ErrNotFound (by-name lookup or a stale
// handle), never ErrClosed or a torn result.  Afterwards the name is free
// for reuse, the recreated index matches a reference, and the engine's pin
// audit passes — the drop released every page it retired.
func TestOnlineDropIndexUnderLoad(t *testing.T) {
	const nMovies = 120
	engine, db := newArchiveEngine(t, nMovies)
	engine.RegisterSpec("archive", workload.ArchiveSpec())
	ti, err := engine.CreateTextIndex("live", "Movies", "desc", IndexOptions{
		Method:   MethodChunk,
		SpecName: "archive",
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	stormWait := startStatisticsStorm(engine, db, nMovies, stop)

	var sawNotFound atomic.Int64
	var wg sync.WaitGroup
	const readers = 4
	for r := 0; r < readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Alternate between the stale handle and a fresh lookup:
				// both must degrade to ErrNotFound once the drop lands.
				h := ti
				if i%2 == 0 {
					var err error
					h, err = engine.TextIndex("live")
					if err != nil {
						if !errors.Is(err, relation.ErrNotFound) {
							t.Errorf("reader %d: lookup failed with %v, want ErrNotFound", r, err)
							return
						}
						sawNotFound.Add(1)
						continue
					}
				}
				res, err := h.Search(lifecycleStormQueries[(i+r)%len(lifecycleStormQueries)])
				if err != nil {
					if !errors.Is(err, relation.ErrNotFound) {
						t.Errorf("reader %d: search racing drop failed with %v, want ErrNotFound", r, err)
						return
					}
					sawNotFound.Add(1)
					continue
				}
				// A successful search must be whole: scores sorted, no
				// zero-hit degenerate answers for the common query.
				for j := 1; j < len(res.Hits); j++ {
					if res.Hits[j].Score > res.Hits[j-1].Score {
						t.Errorf("reader %d: unsorted hits from a search racing the drop", r)
						return
					}
				}
			}
		}()
	}

	if err := engine.DropTextIndex("live"); err != nil {
		t.Fatalf("online drop: %v", err)
	}
	// Keep the readers running until at least one of them observes the
	// dropped state; sleeping yields the CPU so they actually get scheduled
	// on single-core hosts.
	deadline := time.Now().Add(10 * time.Second)
	for sawNotFound.Load() == 0 && time.Now().Before(deadline) {
		if _, err := engine.TextIndex("live"); !errors.Is(err, relation.ErrNotFound) {
			t.Fatalf("lookup after drop = %v, want ErrNotFound", err)
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if err := stormWait(); err != nil {
		t.Fatalf("writer storm: %v", err)
	}
	if sawNotFound.Load() == 0 {
		t.Error("no reader ever observed the dropped index; the race window was never exercised")
	}

	// The stale handle keeps failing with ErrNotFound, not ErrClosed.
	if _, err := ti.Search(lifecycleStormQueries[0]); !errors.Is(err, relation.ErrNotFound) {
		t.Errorf("stale handle search after drop = %v, want ErrNotFound", err)
	}
	if _, _, err := ti.TermStats("golden gate"); !errors.Is(err, relation.ErrNotFound) {
		t.Errorf("stale handle termstats after drop = %v, want ErrNotFound", err)
	}

	// The name is free again and the replacement behaves like a fresh build.
	re, err := engine.CreateTextIndex("live", "Movies", "desc", IndexOptions{
		Method:   MethodChunk,
		SpecName: "archive",
	})
	if err != nil {
		t.Fatalf("recreate after drop: %v", err)
	}
	ref, err := engine.CreateTextIndex("ref", "Movies", "desc", IndexOptions{
		Method:   MethodChunk,
		SpecName: "archive",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range lifecycleStormQueries {
		got, err := re.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if serializeResult(got) != serializeResult(want) {
			t.Errorf("query %q: recreated index diverges from reference", q.Query)
		}
	}
	// Close runs the pool pin audit: the drop must have released every page
	// the dropped index held or retired.
	if err := engine.Close(); err != nil {
		t.Errorf("Close (includes pin audit): %v", err)
	}
}

// TestDropFreesPages pins the resource side of the drop contract: dropping
// an index returns its pages to the pagefile free list, so a drop+recreate
// cycle reuses storage instead of leaking it.
func TestDropFreesPages(t *testing.T) {
	engine, _ := newArchiveEngine(t, 150)
	engine.RegisterSpec("archive", workload.ArchiveSpec())
	// netGrow is the cumulative count of pages carved from fresh file space
	// (allocations not satisfied from the free list).
	netGrow := func() uint64 {
		s := engine.Pool().File().Stats()
		return s.Allocs - s.Reuses
	}

	base := netGrow()
	if _, err := engine.CreateTextIndex("cycle", "Movies", "desc", IndexOptions{
		Method: MethodChunk, SpecName: "archive",
	}); err != nil {
		t.Fatal(err)
	}
	firstBuild := netGrow() - base
	freesBefore := engine.Pool().File().Stats().Frees
	if err := engine.DropTextIndex("cycle"); err != nil {
		t.Fatal(err)
	}
	if freed := engine.Pool().File().Stats().Frees - freesBefore; freed == 0 {
		t.Fatal("drop returned no pages to the pagefile free list")
	}
	// Recreating the same index must be satisfiable almost entirely from the
	// freed pages: the pagefile may grow by a handful of fresh pages
	// (allocation order differs), but nothing near a second full build.
	mid := netGrow()
	if _, err := engine.CreateTextIndex("cycle", "Movies", "desc", IndexOptions{
		Method: MethodChunk, SpecName: "archive",
	}); err != nil {
		t.Fatal(err)
	}
	if grown := netGrow() - mid; grown > firstBuild/4 {
		t.Errorf("rebuild after drop grew the file by %d fresh pages (first build %d); drop is not freeing pages",
			grown, firstBuild)
	}
	if err := engine.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}
