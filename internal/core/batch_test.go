package core

import (
	"fmt"
	"testing"

	"svrdb/internal/relation"
	"svrdb/internal/workload"
)

// applyArchiveMutations performs a deterministic burst of structured
// updates — visit-count bumps (score changes through the view), description
// edits (content updates) and row deletions — against an archive database.
func applyArchiveMutations(t *testing.T, db *relation.DB, nMovies, rounds int) func() error {
	t.Helper()
	return func() error {
		stats, err := db.Table("Statistics")
		if err != nil {
			return err
		}
		movies, err := db.Table("Movies")
		if err != nil {
			return err
		}
		for i := 0; i < rounds; i++ {
			mID := int64(i%nMovies + 1)
			row, err := stats.Get(mID)
			if err != nil {
				return err
			}
			if err := stats.Update(mID, map[string]relation.Value{
				"nVisit": relation.Int(row[2].I + int64(500+i*37%900)),
			}); err != nil {
				return err
			}
			if i%7 == 0 {
				mrow, err := movies.Get(mID)
				if err != nil {
					return err
				}
				if err := movies.Update(mID, map[string]relation.Value{
					"desc": relation.Str(mrow[2].S + fmt.Sprintf(" remastered edition %d", i)),
				}); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

// TestApplyBatchMatchesEagerMaintenance drives the same structured-update
// burst through two engines — one with eager per-change maintenance, one
// inside ApplyBatch — and requires identical search results afterwards.
func TestApplyBatchMatchesEagerMaintenance(t *testing.T) {
	const nMovies = 120
	for _, method := range []MethodKind{MethodID, MethodScoreThreshold, MethodChunk, MethodChunkTermScore} {
		t.Run(string(method), func(t *testing.T) {
			eagerEngine, eagerDB := newArchiveEngine(t, nMovies)
			batchEngine, batchDB := newArchiveEngine(t, nMovies)
			eagerIdx, err := eagerEngine.CreateTextIndex("m", "Movies", "desc", IndexOptions{Method: method, Spec: workload.ArchiveSpec()})
			if err != nil {
				t.Fatal(err)
			}
			batchIdx, err := batchEngine.CreateTextIndex("m", "Movies", "desc", IndexOptions{Method: method, Spec: workload.ArchiveSpec()})
			if err != nil {
				t.Fatal(err)
			}

			if err := applyArchiveMutations(t, eagerDB, nMovies, 300)(); err != nil {
				t.Fatalf("eager mutations: %v", err)
			}
			if err := batchEngine.ApplyBatch(applyArchiveMutations(t, batchDB, nMovies, 300)); err != nil {
				t.Fatalf("ApplyBatch: %v", err)
			}
			if err := eagerIdx.MaintenanceErr(); err != nil {
				t.Fatalf("eager maintenance: %v", err)
			}
			if err := batchIdx.MaintenanceErr(); err != nil {
				t.Fatalf("batch maintenance: %v", err)
			}

			for _, q := range []string{"golden gate", "san francisco", "amateur film", "remastered edition"} {
				eRes, err := eagerIdx.Search(SearchRequest{Query: q, K: 20})
				if err != nil {
					t.Fatalf("eager search %q: %v", q, err)
				}
				bRes, err := batchIdx.Search(SearchRequest{Query: q, K: 20})
				if err != nil {
					t.Fatalf("batch search %q: %v", q, err)
				}
				if len(eRes.Hits) != len(bRes.Hits) {
					t.Fatalf("query %q: %d hits (eager) vs %d (batched)", q, len(eRes.Hits), len(bRes.Hits))
				}
				for i := range eRes.Hits {
					if eRes.Hits[i].PK != bRes.Hits[i].PK || eRes.Hits[i].Score != bRes.Hits[i].Score {
						t.Errorf("query %q hit %d: eager (%d, %g) vs batched (%d, %g)",
							q, i, eRes.Hits[i].PK, eRes.Hits[i].Score, bRes.Hits[i].PK, bRes.Hits[i].Score)
					}
				}
			}
		})
	}
}

// TestApplyBatchPanicStillFlushes checks that a panic inside fn does not
// leave the indexes stuck in deferred-maintenance mode: the changes made
// before the panic flush, and later eager updates keep flowing.
func TestApplyBatchPanicStillFlushes(t *testing.T) {
	const nMovies = 50
	engine, db := newArchiveEngine(t, nMovies)
	idx, err := engine.CreateTextIndex("m", "Movies", "desc", IndexOptions{Spec: workload.ArchiveSpec()})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := db.Table("Statistics")
	if err != nil {
		t.Fatal(err)
	}
	bump := func(mID int64, delta int64) {
		row, err := stats.Get(mID)
		if err != nil {
			t.Fatal(err)
		}
		if err := stats.Update(mID, map[string]relation.Value{"nVisit": relation.Int(row[2].I + delta)}); err != nil {
			t.Fatal(err)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate out of ApplyBatch")
			}
		}()
		_ = engine.ApplyBatch(func() error {
			bump(1, 1_000_000)
			panic("boom")
		})
	}()
	// The pre-panic change must have flushed into the index...
	s, ok, err := idx.ScoreOf(1)
	if err != nil || !ok {
		t.Fatalf("ScoreOf(1): %v %v", ok, err)
	}
	if s < 500_000 {
		t.Errorf("pre-panic score change not flushed: score %g", s)
	}
	// ...and eager maintenance must work again afterwards.
	bump(2, 2_000_000)
	if err := idx.MaintenanceErr(); err != nil {
		t.Fatal(err)
	}
	s2, ok, err := idx.ScoreOf(2)
	if err != nil || !ok || s2 < 1_000_000 {
		t.Errorf("eager update after recovered panic not applied: score %g, %v, %v", s2, ok, err)
	}
}

// TestApplyBatchPropagatesErrors checks that a failing mutation function
// surfaces its error and that the engine stays usable.
func TestApplyBatchPropagatesErrors(t *testing.T) {
	engine, _ := newArchiveEngine(t, 50)
	idx, err := engine.CreateTextIndex("m", "Movies", "desc", IndexOptions{Spec: workload.ArchiveSpec()})
	if err != nil {
		t.Fatal(err)
	}
	wantErr := fmt.Errorf("mutation failed")
	if err := engine.ApplyBatch(func() error { return wantErr }); err == nil {
		t.Fatal("ApplyBatch swallowed the mutation error")
	}
	if _, err := idx.Search(SearchRequest{Query: "golden gate", K: 5}); err != nil {
		t.Fatalf("engine unusable after failed batch: %v", err)
	}
}
