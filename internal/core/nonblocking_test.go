package core

import (
	"testing"
	"time"

	"svrdb/internal/relation"
	"svrdb/internal/workload"
)

// TestSearchAndStatsDoNotBlockBehindMaintenance pins the epoch-read
// contract: while a maintenance write holds the writer mutex — the position
// of a long ApplyBatch flush or an offline merge — searches and stats
// scrapes must still complete against the published snapshot instead of
// queueing behind the writer.  Before the snapshot refactor both took the
// reader side of a lock the writer held exclusively, so this test timed out.
func TestSearchAndStatsDoNotBlockBehindMaintenance(t *testing.T) {
	engine, _ := newArchiveEngine(t, 120)
	idx, err := engine.CreateTextIndex("m", "Movies", "desc", IndexOptions{
		Method: MethodChunk,
		Spec:   workload.ArchiveSpec(),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Park a writer inside the maintenance critical section.
	hold := make(chan struct{})
	held := make(chan struct{})
	writerDone := make(chan error, 1)
	go func() {
		writerDone <- idx.writeLocked(func() error {
			close(held)
			<-hold
			return nil
		})
	}()
	<-held

	done := make(chan struct{})
	go func() {
		defer close(done)
		res, err := idx.Search(SearchRequest{Query: "golden gate", K: 5})
		if err != nil {
			t.Errorf("Search while maintenance holds the writer mutex: %v", err)
			return
		}
		if len(res.Hits) == 0 {
			t.Error("Search under maintenance returned no hits from the published snapshot")
		}
		st := idx.Stats()
		if st.Method != "Chunk" {
			t.Errorf("Stats under maintenance returned method %q, want Chunk", st.Method)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("search/stats blocked behind a maintenance write holding the writer mutex")
	}
	close(hold)
	if err := <-writerDone; err != nil {
		t.Fatalf("parked writer: %v", err)
	}

	// The /v1/stats shape: scraping mid-ApplyBatch must also return promptly.
	stats, err := engine.DB().Table("Statistics")
	if err != nil {
		t.Fatal(err)
	}
	inBatch := make(chan struct{})
	release := make(chan struct{})
	batchDone := make(chan error, 1)
	go func() {
		batchDone <- engine.ApplyBatch(func() error {
			row, err := stats.Get(1)
			if err != nil {
				return err
			}
			if err := stats.Update(1, map[string]relation.Value{
				"nVisit": relation.Int(row[2].I + 1_000_000),
			}); err != nil {
				return err
			}
			close(inBatch)
			<-release
			return nil
		})
	}()
	<-inBatch
	scrape := make(chan struct{})
	go func() {
		defer close(scrape)
		if st := idx.Stats(); st.Method != "Chunk" {
			t.Errorf("Stats mid-batch returned method %q, want Chunk", st.Method)
		}
	}()
	select {
	case <-scrape:
	case <-time.After(10 * time.Second):
		t.Fatal("stats scrape stalled behind an in-flight ApplyBatch")
	}
	close(release)
	if err := <-batchDone; err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}

	if err := engine.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
