// Package core implements the SVR engine: the paper's "text management
// component" (§3), tightly integrated with the relational substrate.
//
// The engine owns a relational database, a text analyzer and any number of
// text indexes.  Creating a text index on a (table, text column) pair with a
// score specification does everything Figure 2 of the paper describes:
//
//  1. the Score materialized view is created and populated from the score
//     specification (§3.1, §3.2);
//  2. the chosen inverted-list method (§4) is bulk built from the text
//     column and the view;
//  3. incremental maintenance is wired up: structured-data updates flow
//     through the view into Algorithm 1, document inserts/deletes/content
//     edits flow into the Appendix A maintenance paths;
//  4. keyword search queries run the method's top-k algorithm against the
//     latest scores and join the ranked IDs back to the base rows.
//
// See ARCHITECTURE.md for the layer map — where this package sits in the
// stack — and for the repo-wide concurrency contract.
package core
