package core

// Multi-tenant namespaces.  A tenant is a named slice of the engine: every
// table and index whose name starts with "<tenant>/" belongs to it, so
// tenancy needs no separate schema machinery — the existing catalog, batch
// path and search path all work on qualified names.  What the engine adds
// on top is metering: each tenant carries a row/byte quota, and the batch
// admission check (ApplyBatchChecked) rejects a batch that would push the
// tenant's footprint past it — atomically, before any mutation runs, and
// without disturbing batches from other tenants queued behind it.

import (
	"fmt"
	"sort"
	"strings"

	"svrdb/internal/relation"
)

// TenantQuota bounds one tenant's namespace footprint.  A zero field means
// unlimited on that axis; the zero value is a fully unlimited tenant.
type TenantQuota struct {
	// MaxRows caps the total row count across the tenant's tables.
	MaxRows int64
	// MaxBytes caps the total encoded row bytes across the tenant's tables.
	MaxBytes int64
}

// TenantUsage reports a tenant's current namespace footprint.
type TenantUsage struct {
	Rows  int64
	Bytes int64
}

// TenantOf extracts the tenant from a qualified name ("tenant/Table" →
// "tenant").  Unqualified names belong to no tenant and return "".
func TenantOf(name string) string {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		return name[:i]
	}
	return ""
}

// CreateTenant registers a tenant with a quota.  Re-registering an existing
// tenant replaces its quota (tables already over a tightened quota stay;
// the next batch that grows them rejects).  The name must be non-empty and
// must not itself contain the namespace separator.
func (e *Engine) CreateTenant(name string, quota TenantQuota) error {
	if name == "" || strings.ContainsRune(name, '/') {
		return fmt.Errorf("core: %w: invalid tenant name %q", ErrInvalidRequest, name)
	}
	if quota.MaxRows < 0 || quota.MaxBytes < 0 {
		return fmt.Errorf("core: %w: negative quota for tenant %q", ErrInvalidRequest, name)
	}
	e.tenantMu.Lock()
	e.tenants[name] = quota
	e.tenantMu.Unlock()
	return nil
}

// TenantNames lists registered tenants in sorted order.
func (e *Engine) TenantNames() []string {
	e.tenantMu.RLock()
	defer e.tenantMu.RUnlock()
	names := make([]string, 0, len(e.tenants))
	for n := range e.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TenantQuotaOf reports a tenant's registered quota.
func (e *Engine) TenantQuotaOf(name string) (TenantQuota, bool) {
	e.tenantMu.RLock()
	defer e.tenantMu.RUnlock()
	q, ok := e.tenants[name]
	return q, ok
}

// tenantQuotas snapshots the tenant registry (for the catalog builder).
func (e *Engine) tenantQuotas() map[string]TenantQuota {
	e.tenantMu.RLock()
	defer e.tenantMu.RUnlock()
	out := make(map[string]TenantQuota, len(e.tenants))
	for n, q := range e.tenants {
		out[n] = q
	}
	return out
}

// restoreTenants installs quotas decoded from a durable catalog.
func (e *Engine) restoreTenants(quotas map[string]TenantQuota) {
	e.tenantMu.Lock()
	defer e.tenantMu.Unlock()
	for n, q := range quotas {
		e.tenants[n] = q
	}
}

// TenantUsageOf sums the tenant's current footprint across every table in
// its namespace.  The sums read each table's own counters, so the result is
// exact under the batch lock (every mutation path holds it) and a live
// approximation otherwise.
func (e *Engine) TenantUsageOf(name string) TenantUsage {
	var u TenantUsage
	prefix := name + "/"
	for _, tn := range e.db.TableNames() {
		if !strings.HasPrefix(tn, prefix) {
			continue
		}
		tbl, err := e.db.Table(tn)
		if err != nil {
			continue
		}
		u.Rows += int64(tbl.Len())
		u.Bytes += tbl.Bytes()
	}
	return u
}

// CheckTenantQuota reports whether the tenant can grow by addRows rows and
// addBytes encoded bytes without exceeding its quota.  Unregistered tenants
// are unlimited; shrinking batches (negative deltas) always pass.  Intended
// as (part of) an ApplyBatchChecked pre-check: under the batch lock the
// usage it reads cannot move, so a pass guarantees the batch fits.
func (e *Engine) CheckTenantQuota(tenant string, addRows, addBytes int64) error {
	if tenant == "" {
		return nil
	}
	q, ok := e.TenantQuotaOf(tenant)
	if !ok || (q.MaxRows == 0 && q.MaxBytes == 0) {
		return nil
	}
	u := e.TenantUsageOf(tenant)
	if q.MaxRows > 0 && u.Rows+addRows > q.MaxRows {
		return fmt.Errorf("core: tenant %q: %w: rows %d+%d > max %d",
			tenant, ErrQuotaExceeded, u.Rows, addRows, q.MaxRows)
	}
	if q.MaxBytes > 0 && u.Bytes+addBytes > q.MaxBytes {
		return fmt.Errorf("core: tenant %q: %w: bytes %d+%d > max %d",
			tenant, ErrQuotaExceeded, u.Bytes, addBytes, q.MaxBytes)
	}
	return nil
}

// EncodedRowSize reports the byte footprint a row contributes to its
// tenant's quota: the size of the row's storage encoding.  The server's
// quota pre-check uses it to project a batch's byte delta before any
// mutation runs.
func EncodedRowSize(row relation.Row) int {
	return relation.EncodedRowSize(row)
}
