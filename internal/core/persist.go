package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"

	"svrdb/internal/index"
	"svrdb/internal/relation"
	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
	"svrdb/internal/text"
	"svrdb/internal/view"
)

// catalogVersion is bumped when the catalog encoding changes.
const catalogVersion = 1

// catalogIndexEntry records one text index in the catalog: its identity, the
// knobs to rebuild its Config, the name its score spec is registered under
// (the spec itself holds Go functions and cannot be serialized), and the
// anchors of its view tree and method structures.
type catalogIndexEntry struct {
	Name     string
	Table    string
	Column   string
	SpecName string

	ThresholdRatio float64
	ChunkRatio     float64
	MinChunkSize   int
	FancyListSize  int
	Uncompressed   bool

	View   view.State
	Method index.MethodState
}

// catalog is the gob-encoded snapshot of every piece of navigational state
// the page file's pages do not themselves record: table schemas and tree
// roots, view tree roots, and the six methods' in-memory state.  It is
// written into a page chain at every commit; the chain head travels in the
// page file's header meta, so catalog and data become visible atomically.
type catalog struct {
	Version int
	Tables  []relation.TableState
	Indexes []catalogIndexEntry
	// Tenants records registered tenant quotas.  Added after version 1
	// shipped; gob tolerates the extra field, so files written without it
	// decode with a nil map and the version stays 1.
	Tenants map[string]TenantQuota
}

// --- catalog page chain -------------------------------------------------------
//
// The catalog is sliced across a singly linked chain of ordinary pages:
// [8 next page (InvalidPageID ends the chain)][4 payload length][payload].
// Pages are allocated through the file's free list and freed at the next
// commit, so the steady state alternates between two page sets and the file
// never grows from checkpointing.  The chain is written and read directly
// against the pagefile (never through the buffer pool): catalog pages are
// touched once per commit and would only pollute the LRU.

const chainHeaderSize = 12

// metaBytes encodes the header meta: chain head + total catalog length.
func metaBytes(head pagefile.PageID, length int) []byte {
	out := make([]byte, 16)
	binary.LittleEndian.PutUint64(out[0:8], uint64(head))
	binary.LittleEndian.PutUint64(out[8:16], uint64(length))
	return out
}

func parseMeta(meta []byte) (head pagefile.PageID, length int, err error) {
	if len(meta) == 0 {
		return pagefile.InvalidPageID, 0, nil
	}
	if len(meta) < 16 {
		return 0, 0, fmt.Errorf("core: malformed catalog meta of %d bytes", len(meta))
	}
	return pagefile.PageID(binary.LittleEndian.Uint64(meta[0:8])),
		int(binary.LittleEndian.Uint64(meta[8:16])), nil
}

// writeCatalogChain stores data in freshly allocated pages and returns the
// page IDs (the first is the chain head).
func writeCatalogChain(file pagefile.File, data []byte) ([]pagefile.PageID, error) {
	pageSize := file.PageSize()
	payload := pageSize - chainHeaderSize
	if payload <= 0 {
		return nil, fmt.Errorf("core: page size %d too small for catalog chain", pageSize)
	}
	nPages := (len(data) + payload - 1) / payload
	if nPages == 0 {
		nPages = 1
	}
	ids := make([]pagefile.PageID, nPages)
	for i := range ids {
		id, err := file.Allocate()
		if err != nil {
			return nil, err
		}
		ids[i] = id
	}
	page := make([]byte, pageSize)
	for i := 0; i < nPages; i++ {
		next := pagefile.InvalidPageID
		if i+1 < nPages {
			next = ids[i+1]
		}
		lo := i * payload
		hi := min(lo+payload, len(data))
		clear(page)
		binary.LittleEndian.PutUint64(page[0:8], uint64(next))
		binary.LittleEndian.PutUint32(page[8:12], uint32(hi-lo))
		copy(page[chainHeaderSize:], data[lo:hi])
		if err := file.Write(ids[i], page); err != nil {
			return nil, err
		}
	}
	return ids, nil
}

// readCatalogChain walks the chain from head and reassembles the catalog
// bytes, returning them along with the chain's page IDs (so the next commit
// can free them).
func readCatalogChain(file pagefile.File, head pagefile.PageID, length int) ([]byte, []pagefile.PageID, error) {
	var (
		out   = make([]byte, 0, length)
		ids   []pagefile.PageID
		page  = make([]byte, file.PageSize())
		id    = head
		limit = int(file.NumPages()) + 1
	)
	for id != pagefile.InvalidPageID {
		if len(ids) >= limit {
			return nil, nil, errors.New("core: catalog chain contains a cycle")
		}
		if err := file.Read(id, page); err != nil {
			return nil, nil, fmt.Errorf("core: read catalog page %d: %w", id, err)
		}
		ids = append(ids, id)
		next := pagefile.PageID(binary.LittleEndian.Uint64(page[0:8]))
		n := int(binary.LittleEndian.Uint32(page[8:12]))
		if n > len(page)-chainHeaderSize {
			return nil, nil, fmt.Errorf("core: catalog page %d claims %d payload bytes", id, n)
		}
		out = append(out, page[chainHeaderSize:chainHeaderSize+n]...)
		id = next
	}
	if len(out) < length {
		return nil, nil, fmt.Errorf("core: catalog chain holds %d bytes, header meta says %d", len(out), length)
	}
	return out[:length], ids, nil
}

// --- commit -------------------------------------------------------------------

// buildCatalog snapshots the engine.  The caller holds batchMu, so no batch
// is mid-flight; each index is additionally snapshotted under its writer
// mutex so an eager maintenance write cannot interleave.  Searches are not
// excluded — they read the published snapshot and never move navigational
// state.
func (e *Engine) buildCatalog() *catalog {
	cat := &catalog{Version: catalogVersion, Tenants: e.tenantQuotas()}
	for _, name := range e.db.TableNames() {
		tbl, err := e.db.Table(name)
		if err != nil {
			continue
		}
		cat.Tables = append(cat.Tables, tbl.State())
	}
	for _, name := range e.TextIndexNames() {
		ti, err := e.TextIndex(name)
		if err != nil {
			continue
		}
		ti.writerMu.Lock()
		entry := catalogIndexEntry{
			Name:           ti.name,
			Table:          ti.table,
			Column:         ti.column,
			SpecName:       ti.specName,
			ThresholdRatio: ti.cfg.ThresholdRatio,
			ChunkRatio:     ti.cfg.ChunkRatio,
			MinChunkSize:   ti.cfg.MinChunkSize,
			FancyListSize:  ti.cfg.FancyListSize,
			Uncompressed:   ti.cfg.Uncompressed,
			View:           ti.view.State(),
			Method:         ti.method.State(),
		}
		ti.writerMu.Unlock()
		cat.Indexes = append(cat.Indexes, entry)
	}
	return cat
}

// commitDurable checkpoints the engine into its durable page file: flush
// every dirty page, serialize the catalog into a fresh page chain, free the
// previous chain, and commit — one atomic WAL transaction covering data,
// catalog and header.  It is a no-op for in-memory engines.  The caller
// must hold batchMu (ApplyBatch and Close already do).
func (e *Engine) commitDurable() error {
	if !e.durable {
		return nil
	}
	pool := e.db.Pool()
	if err := pool.FlushOrdered(); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(e.buildCatalog()); err != nil {
		return fmt.Errorf("core: encode catalog: %w", err)
	}
	file := pool.File()
	// The old chain's pages are freed inside this commit window and the new
	// chain allocated (possibly reusing them): the durable backend stages
	// every write until Commit, so a crash anywhere in between still
	// recovers the previous committed catalog intact.
	for _, id := range e.catalogPages {
		if err := file.Free(id); err != nil {
			return fmt.Errorf("core: free catalog page %d: %w", id, err)
		}
	}
	pages, err := writeCatalogChain(file, buf.Bytes())
	if err != nil {
		return fmt.Errorf("core: write catalog: %w", err)
	}
	head := pagefile.InvalidPageID
	if len(pages) > 0 {
		head = pages[0]
	}
	if err := file.Commit(metaBytes(head, buf.Len())); err != nil {
		return err
	}
	e.catalogPages = pages
	return nil
}

// --- open ---------------------------------------------------------------------

// OpenOptions configures Open.
type OpenOptions struct {
	// Analyzer tokenizes text columns; nil installs the default analyzer.
	// It must match the analyzer the file was built with, or restored
	// indexes will tokenize maintenance traffic differently than the build.
	Analyzer *text.Analyzer
	// Specs maps spec names (IndexOptions.SpecName) to score specifications.
	// Score specs hold Go functions and cannot live in the file; every index
	// recorded in the catalog must find its spec here by name.
	Specs map[string]view.Spec
	// PoolPages sizes the buffer pool (default 4096 pages).
	PoolPages int
	// PageSize sets the page size when creating a new file; opening an
	// existing file with a different page size is an error.  Zero accepts
	// the file's (or the disk default for a new file).
	PageSize int
}

// Open creates or opens a durable engine at path.  A fresh file yields an
// empty engine whose first commit initializes the catalog; an existing file
// is recovered to its last committed state (the pagefile replays its WAL)
// and every table, view and text index is reattached without rebuilding —
// opening is proportional to catalog size, not data size.
//
// Every ApplyBatch against a durable engine commits atomically on return,
// and Close writes a final checkpoint, so kill -9 at any point loses at
// most the batch in flight.
func Open(path string, opts OpenOptions) (*Engine, error) {
	var fileOpts []pagefile.Option
	if opts.PageSize > 0 {
		fileOpts = append(fileOpts, pagefile.WithPageSize(opts.PageSize))
	}
	file, err := pagefile.Open(path, fileOpts...)
	if err != nil {
		return nil, err
	}
	e, err := openFromFile(file, opts)
	if err != nil {
		file.Close()
		return nil, err
	}
	return e, nil
}

// openFromFile builds the engine over an already-opened (and recovered)
// durable file; split out so crash-point tests can inject faults through
// pagefile.Open themselves.
func openFromFile(file pagefile.File, opts OpenOptions) (*Engine, error) {
	poolPages := opts.PoolPages
	if poolPages <= 0 {
		poolPages = 4096
	}
	pool, err := buffer.New(file, poolPages)
	if err != nil {
		return nil, err
	}
	db := relation.NewDB(pool)
	e := NewEngine(db, Options{Analyzer: opts.Analyzer})
	e.durable = true
	// Seed the engine's spec registry from the open options so indexes
	// created online after this open (POST /v1/indexes) resolve the same
	// spec names the restored catalog uses.
	for name, spec := range opts.Specs {
		e.RegisterSpec(name, spec)
	}

	head, length, err := parseMeta(file.Meta())
	if err != nil {
		return nil, err
	}
	if head == pagefile.InvalidPageID && length == 0 && len(file.Meta()) == 0 {
		// Fresh file: nothing to restore.
		return e, nil
	}

	data, pages, err := readCatalogChain(file, head, length)
	if err != nil {
		return nil, err
	}
	var cat catalog
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&cat); err != nil {
		return nil, fmt.Errorf("core: decode catalog: %w", err)
	}
	if cat.Version != catalogVersion {
		return nil, fmt.Errorf("core: catalog version %d not supported (want %d)", cat.Version, catalogVersion)
	}
	e.catalogPages = pages
	e.restoreTenants(cat.Tenants)

	for _, ts := range cat.Tables {
		if _, err := db.RestoreTable(ts); err != nil {
			return nil, fmt.Errorf("core: restore table %q: %w", ts.Schema.Name, err)
		}
	}
	for _, ent := range cat.Indexes {
		if err := e.restoreTextIndex(ent, opts.Specs); err != nil {
			return nil, fmt.Errorf("core: restore index %q: %w", ent.Name, err)
		}
	}
	return e, nil
}

// restoreTextIndex reattaches one text index from its catalog entry: reopen
// the score view against its tree, restore the method, rewire the document
// source and the incremental-maintenance listeners.
func (e *Engine) restoreTextIndex(ent catalogIndexEntry, specs map[string]view.Spec) error {
	spec, ok := specs[ent.SpecName]
	if !ok {
		return fmt.Errorf("no spec registered under name %q (OpenOptions.Specs)", ent.SpecName)
	}
	tbl, err := e.db.Table(ent.Table)
	if err != nil {
		return err
	}
	colIdx, err := tbl.Schema().ColumnIndex(ent.Column)
	if err != nil {
		return err
	}

	sv, err := view.OpenScoreView(e.db, ent.Table, spec, ent.View)
	if err != nil {
		return err
	}
	cfg := index.Config{
		Pool:           e.db.Pool(),
		ThresholdRatio: ent.ThresholdRatio,
		ChunkRatio:     ent.ChunkRatio,
		MinChunkSize:   ent.MinChunkSize,
		FancyListSize:  ent.FancyListSize,
		Uncompressed:   ent.Uncompressed,
	}
	method, err := index.Restore(cfg, ent.Method)
	if err != nil {
		return err
	}
	method.SetSource(&tableDocSource{table: tbl, colIdx: colIdx, analyzer: e.analyzer})

	ti := &TextIndex{
		name:     ent.Name,
		table:    ent.Table,
		column:   ent.Column,
		specName: ent.SpecName,
		cfg:      cfg,
		engine:   e,
		view:     sv,
		method:   method,
	}
	sv.OnScoreChange(ti.onScoreChange)
	if err := sv.Attach(); err != nil {
		return err
	}
	ti.baseHook = tbl.OnChange(ti.onBaseRowChange)

	e.mu.Lock()
	e.indexes[ent.Name] = ti
	e.mu.Unlock()
	return nil
}
