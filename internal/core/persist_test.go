package core

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"svrdb/internal/storage/pagefile"
	"svrdb/internal/view"
	"svrdb/internal/workload"
)

// archiveSpecRegistry maps the name the indexes record in the catalog to the
// archive score spec; specs hold function values, so the registry is built
// fresh per call.
func archiveSpecRegistry() map[string]view.Spec {
	return map[string]view.Spec{"archive": workload.ArchiveSpec()}
}

// crashQueries are the deterministic probes whose results define "the
// committed state" for recovery comparisons.  The terms come from the
// archive workload vocabulary.
var crashQueries = []SearchRequest{
	{Query: "golden gate", K: 10},
	{Query: "san francisco", K: 10, Disjunctive: true},
}

// searchSnapshot serializes every index's results for every crash query into
// one string, scores at full float64 precision, so recovered engines can be
// compared byte for byte.
func searchSnapshot(t *testing.T, e *Engine) string {
	t.Helper()
	names := e.TextIndexNames()
	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		ti, err := e.TextIndex(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := ti.MaintenanceErr(); err != nil {
			t.Fatalf("index %q maintenance: %v", name, err)
		}
		for _, q := range crashQueries {
			res, err := ti.Search(q)
			if err != nil {
				t.Fatalf("index %q query %q: %v", name, q.Query, err)
			}
			fmt.Fprintf(&sb, "%s|%s:", name, q.Query)
			for _, h := range res.Hits {
				fmt.Fprintf(&sb, " %d=%.17g", h.PK, h.Score)
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// createAllMethodIndexes creates one text index per method, named after it.
func createAllMethodIndexes(t *testing.T, e *Engine) {
	t.Helper()
	for _, m := range AllMethods() {
		if _, err := e.CreateTextIndex("idx-"+string(m), "Movies", "desc", IndexOptions{
			Method:   m,
			Spec:     workload.ArchiveSpec(),
			SpecName: "archive",
		}); err != nil {
			t.Fatalf("create %s index: %v", m, err)
		}
	}
}

func durableOpts() OpenOptions {
	return OpenOptions{Specs: archiveSpecRegistry()}
}

// buildDurableArchive creates a durable engine at path with the archive
// workload loaded and all six method indexes built, then closes it cleanly.
func buildDurableArchive(t *testing.T, path string, nMovies int) {
	t.Helper()
	e, err := Open(path, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	params := workload.DefaultArchiveParams()
	params.NumMovies = nMovies
	if _, err := workload.BuildArchiveDB(e.DB(), params); err != nil {
		t.Fatal(err)
	}
	createAllMethodIndexes(t, e)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func copyDataFile(t *testing.T, src, dst string) {
	t.Helper()
	in, err := os.Open(src)
	if errors.Is(err, os.ErrNotExist) {
		os.Remove(dst)
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if _, err := io.Copy(out, in); err != nil {
		t.Fatal(err)
	}
}

// cloneEngineFile copies a durable engine's data file and WAL sidecar.
func cloneEngineFile(t *testing.T, src, dst string) {
	t.Helper()
	copyDataFile(t, src, dst)
	copyDataFile(t, pagefile.WALPath(src), pagefile.WALPath(dst))
}

// TestDurableReopenAllMethods is the round-trip acceptance test: build, index
// with all six methods, mutate in a batch, close, reopen, and require every
// method's query results to match byte for byte — then keep writing through
// the reopened engine and survive a second reopen.
func TestDurableReopenAllMethods(t *testing.T) {
	const nMovies = 40
	path := filepath.Join(t.TempDir(), "archive.svrdb")
	e, err := Open(path, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	params := workload.DefaultArchiveParams()
	params.NumMovies = nMovies
	if _, err := workload.BuildArchiveDB(e.DB(), params); err != nil {
		t.Fatal(err)
	}
	createAllMethodIndexes(t, e)
	if err := e.ApplyBatch(applyArchiveMutations(t, e.DB(), nMovies, 60)); err != nil {
		t.Fatal(err)
	}
	want := searchSnapshot(t, e)

	// Cross-check against a purely in-memory engine fed the same build and
	// mutations: durability must not change query semantics.
	mem, memDB := newArchiveEngine(t, nMovies)
	createAllMethodIndexes(t, mem)
	if err := mem.ApplyBatch(applyArchiveMutations(t, memDB, nMovies, 60)); err != nil {
		t.Fatal(err)
	}
	if got := searchSnapshot(t, mem); got != want {
		t.Errorf("durable engine results diverge from in-memory engine:\n%s\nvs\n%s", want, got)
	}

	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path, durableOpts())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got := searchSnapshot(t, re); got != want {
		t.Errorf("results after reopen diverge:\nbefore close:\n%s\nafter reopen:\n%s", want, got)
	}

	// The reopened engine must keep absorbing writes...
	if err := re.ApplyBatch(applyArchiveMutations(t, re.DB(), nMovies, 30)); err != nil {
		t.Fatal(err)
	}
	want2 := searchSnapshot(t, re)
	if want2 == want {
		t.Fatal("second mutation batch did not change any scores; the follow-up reopen check is vacuous")
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	// ...and those writes must survive another reopen.
	re2, err := Open(path, durableOpts())
	if err != nil {
		t.Fatalf("second reopen: %v", err)
	}
	defer re2.Close()
	if got := searchSnapshot(t, re2); got != want2 {
		t.Errorf("post-reopen writes lost on second reopen:\n%s\nvs\n%s", want2, got)
	}
}

// TestOpenMissingSpecFails pins the error path: reopening a file whose
// catalog names a spec absent from the registry must fail with a clear
// message, not restore a half-wired index.
func TestOpenMissingSpecFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "archive.svrdb")
	buildDurableArchive(t, path, 10)
	_, err := Open(path, OpenOptions{})
	if err == nil {
		t.Fatal("Open succeeded without the spec registry")
	}
	if !strings.Contains(err.Error(), "archive") {
		t.Errorf("error does not name the missing spec: %v", err)
	}
}

// TestCrashDuringEpochSwapServesPreSwapSnapshot pins the boundary between
// the in-memory publish and the durable publish: a write batch swaps every
// index's epoch (the snapshot readers see) before the WAL commit makes the
// batch durable.  If the process dies between the swap and the commit, the
// swap must not count — the WAL commit point is the only publish that
// survives a crash, so the reopened engine must serve the pre-swap state
// byte for byte.
func TestCrashDuringEpochSwapServesPreSwapSnapshot(t *testing.T) {
	const nMovies = 12
	dir := t.TempDir()
	template := filepath.Join(dir, "template.svrdb")
	buildDurableArchive(t, template, nMovies)

	pre := func() string {
		p := filepath.Join(dir, "pre.svrdb")
		cloneEngineFile(t, template, p)
		e, err := Open(p, durableOpts())
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		return searchSnapshot(t, e)
	}()

	// Fail the first file write after open: every write the batch issues
	// before that point — base-table mutations, index flushes, the epoch
	// swaps themselves — is in-memory, so the fault lands exactly between
	// the in-memory publish and the durable commit.
	work := filepath.Join(dir, "work.svrdb")
	cloneEngineFile(t, template, work)
	fi := pagefile.NewFaultInjector(pagefile.FaultPlan{FailWrite: 1})
	file, err := pagefile.Open(work, pagefile.WithFaults(fi))
	if err != nil {
		t.Fatal(err)
	}
	e, err := openFromFile(file, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	epochsBefore := map[string]uint64{}
	for _, name := range e.TextIndexNames() {
		ti, err := e.TextIndex(name)
		if err != nil {
			t.Fatal(err)
		}
		epochsBefore[name] = ti.Stats().Epoch
	}
	if err := e.ApplyBatch(applyArchiveMutations(t, e.DB(), nMovies, 10)); err == nil {
		t.Fatal("ApplyBatch reported success despite the injected commit fault")
	}
	if !fi.Tripped() {
		t.Fatal("the commit never reached the faulted write site")
	}
	// The batch must have swapped epochs in memory before the commit fault:
	// that is the window this test exists to crash in.
	for _, name := range e.TextIndexNames() {
		ti, err := e.TextIndex(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := ti.Stats().Epoch; got <= epochsBefore[name] {
			t.Errorf("index %q epoch did not advance before the commit fault (%d -> %d); the crash landed before the swap", name, epochsBefore[name], got)
		}
	}
	file.Close()

	re, err := Open(work, durableOpts())
	if err != nil {
		t.Fatalf("clean reopen after crash: %v", err)
	}
	got := searchSnapshot(t, re)
	if err := re.Close(); err != nil {
		t.Errorf("close after recovery: %v", err)
	}
	if got != pre {
		t.Errorf("crash between epoch swap and WAL commit must recover the pre-swap snapshot:\nwant\n%s\ngot\n%s", pre, got)
	}
}

// TestCrashRecoveryMatrixEngine is the tentpole acceptance test: a committed
// archive database absorbs one mutation batch while a deterministic fault
// kills the process at every write, torn-write and fsync site of the commit
// protocol.  After each crash the file is reopened cleanly and all six
// methods' query results must match either the pre-batch or the post-batch
// committed state byte for byte — and if ApplyBatch reported success, the
// post state is mandatory.
func TestCrashRecoveryMatrixEngine(t *testing.T) {
	const nMovies = 12
	const rounds = 15
	dir := t.TempDir()
	template := filepath.Join(dir, "template.svrdb")
	buildDurableArchive(t, template, nMovies)

	mutate := func(e *Engine) error {
		return e.ApplyBatch(applyArchiveMutations(t, e.DB(), nMovies, rounds))
	}

	// Reference snapshots: the committed state before and after the batch.
	pre := func() string {
		p := filepath.Join(dir, "pre.svrdb")
		cloneEngineFile(t, template, p)
		e, err := Open(p, durableOpts())
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		return searchSnapshot(t, e)
	}()
	post := func() string {
		p := filepath.Join(dir, "post.svrdb")
		cloneEngineFile(t, template, p)
		e, err := Open(p, durableOpts())
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		if err := mutate(e); err != nil {
			t.Fatal(err)
		}
		return searchSnapshot(t, e)
	}()
	if pre == post {
		t.Fatal("mutation batch did not change any query results; the matrix would prove nothing")
	}

	// Counting run: learn the fault-site counts.  Reads are counted up to the
	// end of Open (the restore path); writes and syncs across the batch
	// commit.
	countPath := filepath.Join(dir, "count.svrdb")
	cloneEngineFile(t, template, countPath)
	counter := pagefile.NewFaultInjector(pagefile.FaultPlan{})
	cfile, err := pagefile.Open(countPath, pagefile.WithFaults(counter))
	if err != nil {
		t.Fatal(err)
	}
	ce, err := openFromFile(cfile, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	openReads := counter.Reads()
	if err := mutate(ce); err != nil {
		t.Fatal(err)
	}
	writes, syncs := counter.Writes(), counter.Syncs()
	cfile.Close()
	if writes < 3 || syncs < 2 || openReads < 2 {
		t.Fatalf("counting run saw %d writes, %d syncs, %d open reads; too few for a meaningful matrix", writes, syncs, openReads)
	}

	type site struct {
		name string
		plan pagefile.FaultPlan
	}
	var sites []site
	for i := 1; i <= writes; i++ {
		sites = append(sites,
			site{fmt.Sprintf("write-%d", i), pagefile.FaultPlan{FailWrite: i}},
			site{fmt.Sprintf("torn-write-%d", i), pagefile.FaultPlan{FailWrite: i, TornWrite: true}})
	}
	for i := 1; i <= syncs; i++ {
		sites = append(sites, site{fmt.Sprintf("sync-%d", i), pagefile.FaultPlan{FailSync: i}})
	}
	for i := 1; i <= openReads; i++ {
		sites = append(sites, site{fmt.Sprintf("read-%d", i), pagefile.FaultPlan{FailRead: i}})
	}

	for _, s := range sites {
		t.Run(s.name, func(t *testing.T) {
			work := filepath.Join(dir, "work.svrdb")
			cloneEngineFile(t, template, work)
			fi := pagefile.NewFaultInjector(s.plan)
			file, err := pagefile.Open(work, pagefile.WithFaults(fi))

			batchRan, batchCommitted := false, false
			if err == nil {
				e, openErr := openFromFile(file, durableOpts())
				if openErr == nil {
					batchRan = true
					batchCommitted = mutate(e) == nil
				}
				file.Close()
			}
			if !fi.Tripped() {
				// The exact site count can drift by a page or two between runs
				// (catalog encoding order); a site past the end proves nothing.
				t.Skipf("fault site %s not reached in this run", s.name)
			}

			re, err := Open(work, durableOpts())
			if err != nil {
				t.Fatalf("clean reopen after crash: %v", err)
			}
			got := searchSnapshot(t, re)
			if err := re.Close(); err != nil {
				t.Errorf("close after recovery: %v", err)
			}
			switch got {
			case pre:
				if batchCommitted {
					t.Error("ApplyBatch reported success but recovery landed on the pre-batch state")
				}
			case post:
				if !batchRan {
					t.Error("batch never ran yet recovery produced the post-batch state")
				}
			default:
				t.Errorf("recovered state matches neither the pre- nor the post-batch committed state (batch ran: %v, committed: %v)",
					batchRan, batchCommitted)
			}
		})
	}
}
