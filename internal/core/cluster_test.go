package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"testing"

	"svrdb/internal/relation"
	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
	"svrdb/internal/view"
	"svrdb/internal/workload"
)

// clusterTestParams is a corpus small enough to build 6 methods × 11
// engines in test time but rich enough that queries rank real top-k sets.
func clusterTestParams() workload.Params {
	return workload.Params{
		NumDocs:     300,
		TermsPerDoc: 40,
		VocabSize:   500,
		TermZipf:    1.0,
		ScoreMax:    100000,
		ScoreZipf:   0.75,
		Seed:        7,
	}
}

var docsSchema = relation.Schema{
	Name: "Docs",
	Columns: []relation.Column{
		{Name: "id", Kind: relation.KindInt64},
		{Name: "body", Kind: relation.KindString},
		{Name: "score", Kind: relation.KindFloat64},
	},
}

func docsSpec() view.Spec {
	return view.Spec{Components: []view.Component{view.OwnColumn("Docs", "score")}}
}

func docRow(doc workload.DocID, tokens []string, score float64) relation.Row {
	return relation.Row{
		relation.Int(int64(doc)),
		relation.Str(strings.Join(tokens, " ")),
		relation.Float(score),
	}
}

// buildSingle loads the corpus into one engine and indexes it.
func buildSingle(t *testing.T, corpus *workload.Corpus, kind MethodKind) *Engine {
	t.Helper()
	pool := buffer.MustNew(pagefile.MustNewMem(pagefile.DefaultPageSize), 4096)
	db := relation.NewDB(pool)
	tbl, err := db.CreateTable(docsSchema)
	if err != nil {
		t.Fatal(err)
	}
	err = corpus.ForEach(func(doc workload.DocID, tokens []string) error {
		return tbl.Insert(docRow(doc, tokens, corpus.Score(doc)))
	})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(db, Options{})
	if _, err := e.CreateTextIndex("docs", "Docs", "body", IndexOptions{
		Method: kind, Spec: docsSpec(), MinChunkSize: 8,
	}); err != nil {
		t.Fatal(err)
	}
	return e
}

// buildCluster loads the same corpus into an n-shard cluster, routing every
// document through the partitioner, and indexes each shard.
func buildCluster(t *testing.T, corpus *workload.Corpus, kind MethodKind, shards int) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterOptions{Shards: shards, PoolPages: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable(docsSchema); err != nil {
		t.Fatal(err)
	}
	var ops []ClusterOp
	err = corpus.ForEach(func(doc workload.DocID, tokens []string) error {
		ops = append(ops, ClusterOp{Kind: OpInsert, Table: "Docs", Row: docRow(doc, tokens, corpus.Score(doc))})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ApplyOps(ops); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTextIndex("docs", "Docs", "body", IndexOptions{
		Method: kind, Spec: docsSpec(), MinChunkSize: 8,
	}); err != nil {
		t.Fatal(err)
	}
	return c
}

func applySingleUpdates(t *testing.T, e *Engine, updates []workload.ScoreUpdate) {
	t.Helper()
	err := e.ApplyBatch(func() error {
		tbl, err := e.DB().Table("Docs")
		if err != nil {
			return err
		}
		for _, u := range updates {
			if err := tbl.Update(int64(u.Doc), map[string]relation.Value{"score": relation.Float(u.NewScore)}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func applyClusterUpdates(t *testing.T, c *Cluster, updates []workload.ScoreUpdate) {
	t.Helper()
	ops := make([]ClusterOp, len(updates))
	for i, u := range updates {
		ops[i] = ClusterOp{Kind: OpUpdate, Table: "Docs", PK: int64(u.Doc),
			Set: map[string]relation.Value{"score": relation.Float(u.NewScore)}}
	}
	if err := c.ApplyOps(ops); err != nil {
		t.Fatal(err)
	}
}

// assertSameHits requires byte-identical rankings: same length, same ids in
// the same order, bitwise-equal scores.
func assertSameHits(t *testing.T, label string, want, got *SearchResult) {
	t.Helper()
	if len(want.Hits) != len(got.Hits) {
		t.Fatalf("%s: single engine returned %d hits, cluster %d", label, len(want.Hits), len(got.Hits))
	}
	for i := range want.Hits {
		w, g := want.Hits[i], got.Hits[i]
		if w.PK != g.PK {
			t.Fatalf("%s: hit %d: single pk %d, cluster pk %d", label, i, w.PK, g.PK)
		}
		if math.Float64bits(w.Score) != math.Float64bits(g.Score) {
			t.Fatalf("%s: hit %d (doc %d): single score %v (%x), cluster %v (%x)",
				label, i, w.PK, w.Score, math.Float64bits(w.Score), g.Score, math.Float64bits(g.Score))
		}
	}
	if got.Partial {
		t.Fatalf("%s: cluster of healthy in-process shards reported a partial result", label)
	}
}

// TestShardedEquivalence is the sharding correctness property: for every
// method, any partitioning of the corpus across 1–4 shards returns
// byte-identical top-k (ids, scores, order) to the single-engine result,
// conjunctive and disjunctive, before and after an update trace, and — for
// the TermScore methods — under combined SVR+TFIDF ranking, where the
// cluster pins global collection statistics.
func TestShardedEquivalence(t *testing.T) {
	corpus := workload.Generate(clusterTestParams())
	qp := workload.DefaultQueryParams()
	qp.NumQueries = 12
	qp.Seed = 11
	queries := workload.GenerateQueries(corpus, qp)

	up := workload.DefaultUpdateParams()
	up.NumUpdates = 400
	up.Seed = 13
	updates := workload.GenerateUpdates(corpus, up)

	for _, kind := range AllMethods() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			single := buildSingle(t, corpus, kind)
			defer single.Close()
			si, err := single.TextIndex("docs")
			if err != nil {
				t.Fatal(err)
			}
			withTS := kind == MethodIDTermScore || kind == MethodChunkTermScore

			shardCounts := []int{1, 2, 3, 4}
			clusters := make([]*Cluster, len(shardCounts))
			for i, shards := range shardCounts {
				clusters[i] = buildCluster(t, corpus, kind, shards)
				defer clusters[i].Close()
			}

			check := func(phase string) {
				for qi, terms := range queries {
					query := strings.Join(terms, " ")
					for _, k := range []int{1, 10} {
						for _, disj := range []bool{false, true} {
							req := SearchRequest{Query: query, K: k, Disjunctive: disj}
							want, err := si.Search(req)
							if err != nil {
								t.Fatal(err)
							}
							for i, cluster := range clusters {
								got, err := cluster.Search("docs", req)
								if err != nil {
									t.Fatal(err)
								}
								label := fmt.Sprintf("%s shards=%d q%d k=%d disj=%v", phase, shardCounts[i], qi, k, disj)
								assertSameHits(t, label, want, got)
							}
						}
						if withTS {
							req := SearchRequest{Query: query, K: k, WithTermScores: true}
							want, err := si.Search(req)
							if err != nil {
								t.Fatal(err)
							}
							for i, cluster := range clusters {
								got, err := cluster.Search("docs", req)
								if err != nil {
									t.Fatal(err)
								}
								label := fmt.Sprintf("%s shards=%d q%d k=%d termscores", phase, shardCounts[i], qi, k)
								assertSameHits(t, label, want, got)
							}
						}
					}
				}
			}

			check("built")
			applySingleUpdates(t, single, updates)
			for _, cluster := range clusters {
				applyClusterUpdates(t, cluster, updates)
			}
			check("updated")
		})
	}
}

// TestClusterGlobalStats checks the GlobalStats plumbing directly: the
// cluster-summed term statistics equal the single engine's, and a shard
// queried with the global override ranks with cluster-wide idf.
func TestClusterGlobalStats(t *testing.T) {
	corpus := workload.Generate(clusterTestParams())
	single := buildSingle(t, corpus, MethodIDTermScore)
	defer single.Close()
	cluster := buildCluster(t, corpus, MethodIDTermScore, 3)
	defer cluster.Close()

	qp := workload.DefaultQueryParams()
	qp.NumQueries = 4
	qp.Seed = 3
	for _, terms := range workload.GenerateQueries(corpus, qp) {
		query := strings.Join(terms, " ")
		wantN, wantDF, err := single.TermStats("docs", query)
		if err != nil {
			t.Fatal(err)
		}
		gotN, gotDF, err := cluster.TermStats("docs", query)
		if err != nil {
			t.Fatal(err)
		}
		if wantN != gotN {
			t.Fatalf("query %q: single numDocs %d, cluster sum %d", query, wantN, gotN)
		}
		if len(wantDF) != len(gotDF) {
			t.Fatalf("query %q: df length %d vs %d", query, len(wantDF), len(gotDF))
		}
		for i := range wantDF {
			if wantDF[i] != gotDF[i] {
				t.Fatalf("query %q term %d: single df %d, cluster sum %d", query, i, wantDF[i], gotDF[i])
			}
		}
	}
}

// TestClusterRoutingColumns checks that a table routed by a non-pk column
// places rows by that column and that broadcast updates by primary key
// reach the owning shard (and only report not-found when no shard owns the
// row).
func TestClusterRoutingColumns(t *testing.T) {
	c, err := NewCluster(ClusterOptions{
		Shards:         3,
		Partitioner:    "mod",
		RoutingColumns: map[string]string{"Reviews": "mID"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	schema := relation.Schema{
		Name: "Reviews",
		Columns: []relation.Column{
			{Name: "rID", Kind: relation.KindInt64},
			{Name: "mID", Kind: relation.KindInt64},
			{Name: "rating", Kind: relation.KindFloat64},
		},
	}
	if err := c.CreateTable(schema); err != nil {
		t.Fatal(err)
	}
	if err := c.EnsureIndex("Reviews", "mID"); err != nil {
		t.Fatal(err)
	}
	// 30 reviews over 10 movies: review rID r belongs to movie r%10.
	var ops []ClusterOp
	for r := int64(0); r < 30; r++ {
		ops = append(ops, ClusterOp{Kind: OpInsert, Table: "Reviews",
			Row: relation.Row{relation.Int(r), relation.Int(r % 10), relation.Float(3)}})
	}
	if err := c.ApplyOps(ops); err != nil {
		t.Fatal(err)
	}
	// Placement: every review of movie m lives on shard m mod 3, nowhere else.
	for m := int64(0); m < 10; m++ {
		owner := c.ShardFor(m)
		for i := 0; i < c.NumShards(); i++ {
			tbl, err := c.Shard(i).DB().Table("Reviews")
			if err != nil {
				t.Fatal(err)
			}
			n := 0
			if err := tbl.LookupByColumn("mID", relation.Int(m), func(relation.Row) bool { n++; return true }); err != nil {
				if !errors.Is(err, relation.ErrNotFound) {
					t.Fatal(err)
				}
			}
			if i == owner && n != 3 {
				t.Fatalf("movie %d: owner shard %d holds %d reviews, want 3", m, owner, n)
			}
			if i != owner && n != 0 {
				t.Fatalf("movie %d: shard %d holds %d reviews, want 0", m, i, n)
			}
		}
	}
	// Broadcast update by pk: rID 17 exists on exactly one shard.
	err = c.ApplyOps([]ClusterOp{{Kind: OpUpdate, Table: "Reviews", PK: 17,
		Set: map[string]relation.Value{"rating": relation.Float(5)}}})
	if err != nil {
		t.Fatal(err)
	}
	owner := c.ShardFor(17 % 10)
	tbl, err := c.Shard(owner).DB().Table("Reviews")
	if err != nil {
		t.Fatal(err)
	}
	row, err := tbl.Get(17)
	if err != nil {
		t.Fatal(err)
	}
	if row[2].F != 5 {
		t.Fatalf("broadcast update did not land: rating = %v", row[2].F)
	}
	// A pk no shard owns surfaces not-found.
	err = c.ApplyOps([]ClusterOp{{Kind: OpDelete, Table: "Reviews", PK: 999}})
	if !errors.Is(err, relation.ErrNotFound) {
		t.Fatalf("broadcast delete of missing pk: err = %v, want ErrNotFound", err)
	}
}

// TestClusterReopenKeepsPartitioning checks the durable manifest: a reopen
// without options inherits shard count and partitioner, data routed before
// the reopen is found after it, and conflicting options are rejected.
func TestClusterReopenKeepsPartitioning(t *testing.T) {
	dir := t.TempDir()
	specs := map[string]view.Spec{"docs": docsSpec()}
	c, err := OpenCluster(dir, ClusterOptions{Shards: 2, Partitioner: "mod", Specs: specs, PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable(docsSchema); err != nil {
		t.Fatal(err)
	}
	var ops []ClusterOp
	for d := int64(0); d < 20; d++ {
		ops = append(ops, ClusterOp{Kind: OpInsert, Table: "Docs",
			Row: relation.Row{relation.Int(d), relation.Str(fmt.Sprintf("common term%d", d)), relation.Float(float64(d))}})
	}
	if err := c.ApplyOps(ops); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTextIndex("docs", "Docs", "body", IndexOptions{
		Method: MethodChunk, Spec: docsSpec(), SpecName: "docs", MinChunkSize: 4,
	}); err != nil {
		t.Fatal(err)
	}
	want, err := c.Search("docs", SearchRequest{Query: "common", K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with zero options: manifest supplies shards + partitioner.
	re, err := OpenCluster(dir, ClusterOptions{Specs: specs, PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NumShards() != 2 {
		t.Fatalf("reopened cluster has %d shards, want 2", re.NumShards())
	}
	if re.PartitionerName() != "mod" {
		t.Fatalf("reopened cluster partitioner = %q, want mod", re.PartitionerName())
	}
	got, err := re.Search("docs", SearchRequest{Query: "common", K: 5})
	if err != nil {
		t.Fatal(err)
	}
	assertSameHits(t, "reopen", want, got)
	// Writes keep routing to the same shards: doc 21 is odd → shard 1 under mod.
	if err := re.Insert("Docs", relation.Row{relation.Int(21), relation.Str("common termX"), relation.Float(1)}); err != nil {
		t.Fatal(err)
	}
	tbl, err := re.Shard(1).DB().Table("Docs")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Get(21); err != nil {
		t.Fatalf("doc 21 not on shard 1 after reopen: %v", err)
	}

	// Conflicting options are rejected, not silently repartitioned.
	if _, err := OpenCluster(dir, ClusterOptions{Shards: 4, Specs: specs}); err == nil {
		t.Fatal("reopen with conflicting shard count succeeded")
	}
	if _, err := OpenCluster(dir, ClusterOptions{Partitioner: "hash", Specs: specs}); err == nil {
		t.Fatal("reopen with conflicting partitioner succeeded")
	}
}

// TestGroupCommitCoalesces checks the ApplyBatch group commit: concurrent
// batches produce strictly fewer pagefile commits than batches, and every
// batch's writes are durable (visible after reopen) once ApplyBatch
// returns.
func TestGroupCommitCoalesces(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/group.svrdb"
	e, err := Open(path, OpenOptions{PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.DB().CreateTable(relation.Schema{
		Name: "KV",
		Columns: []relation.Column{
			{Name: "k", Kind: relation.KindInt64},
			{Name: "v", Kind: relation.KindInt64},
		},
	}); err != nil {
		t.Fatal(err)
	}
	// One committed batch so the table exists on disk before the storm.
	if err := e.ApplyBatch(func() error {
		tbl, err := e.DB().Table("KV")
		if err != nil {
			return err
		}
		return tbl.Insert(relation.Row{relation.Int(-1), relation.Int(0)})
	}); err != nil {
		t.Fatal(err)
	}

	// Deterministic fan-in: a blocker batch holds the batch lock while
	// `writers` further ApplyBatch callers queue up behind it (visible via
	// the commit-waiter counter), then the blocker is released.  The
	// blocker and every writer except the last defer their commit to the
	// next caller, so the whole group must land in exactly one pagefile
	// commit.
	const writers = 8
	before := e.Pool().File().Stats().Commits
	blockerIn := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, writers+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		errs[writers] = e.ApplyBatch(func() error {
			close(blockerIn)
			<-release
			tbl, err := e.DB().Table("KV")
			if err != nil {
				return err
			}
			return tbl.Insert(relation.Row{relation.Int(1000), relation.Int(0)})
		})
	}()
	<-blockerIn
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			err := e.ApplyBatch(func() error {
				tbl, err := e.DB().Table("KV")
				if err != nil {
					return err
				}
				return tbl.Insert(relation.Row{relation.Int(int64(w)), relation.Int(int64(w))})
			})
			errs[w] = err
		}(w)
	}
	// Wait until every writer is queued on the batch lock, so the blocker
	// observes them and defers its commit.
	for e.commitWaiters.Load() < writers {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	commits := e.Pool().File().Stats().Commits - before
	if commits != 1 {
		t.Fatalf("group commit: %d commits for %d concurrent batches, want 1", commits, writers+1)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Every batch that returned is durable.
	re, err := Open(path, OpenOptions{PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	tbl, err := re.DB().Table("KV")
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.Len(); got != writers+2 {
		t.Fatalf("reopened table holds %d rows, want %d", got, writers+2)
	}
}
