package core

import (
	"fmt"
	"sort"
	"sync"
)

// This file defines the shard partitioning contract.  A Cluster owns N
// engines ("shards") and routes every write to exactly one of them by a
// Partitioner over the row's routing key (the primary key by default).
// Partitioners are resolved by registered name so a durable cluster can
// record which one it was created with and reopen with the same placement —
// a partitioner change under existing data would silently orphan rows on
// shards the router never consults.

// Partitioner maps a routing key to one of n shards.  Implementations must
// be deterministic and stateless: the same (key, n) pair always yields the
// same shard, on every process that ever opens the cluster.
type Partitioner interface {
	// Name is the identifier the cluster manifest records.
	Name() string
	// Shard returns the owning shard in [0, n) for the key.
	Shard(key int64, n int) int
}

// DefaultPartitioner is the partitioner used when none is named.
const DefaultPartitioner = "hash"

var (
	partitionersMu sync.RWMutex
	partitioners   = map[string]Partitioner{}
)

// RegisterPartitioner makes a partitioner resolvable by name (for
// ClusterOptions.Partitioner and the durable cluster manifest).  Registering
// a duplicate name panics, like flag redefinition: it is a wiring bug.
func RegisterPartitioner(p Partitioner) {
	partitionersMu.Lock()
	defer partitionersMu.Unlock()
	if _, dup := partitioners[p.Name()]; dup {
		panic(fmt.Sprintf("core: partitioner %q registered twice", p.Name()))
	}
	partitioners[p.Name()] = p
}

// PartitionerByName resolves a registered partitioner; the empty name
// resolves to DefaultPartitioner.
func PartitionerByName(name string) (Partitioner, error) {
	if name == "" {
		name = DefaultPartitioner
	}
	partitionersMu.RLock()
	defer partitionersMu.RUnlock()
	p, ok := partitioners[name]
	if !ok {
		return nil, fmt.Errorf("core: no partitioner registered under %q (have %v)", name, partitionerNamesLocked())
	}
	return p, nil
}

// PartitionerNames lists the registered partitioners in sorted order.
func PartitionerNames() []string {
	partitionersMu.RLock()
	defer partitionersMu.RUnlock()
	return partitionerNamesLocked()
}

func partitionerNamesLocked() []string {
	names := make([]string, 0, len(partitioners))
	for n := range partitioners {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// hashPartitioner spreads keys by a 64-bit finalizer (splitmix64's mixing
// function), so dense sequential primary keys land uniformly instead of
// striping.  This is the default.
type hashPartitioner struct{}

func (hashPartitioner) Name() string { return "hash" }

func (hashPartitioner) Shard(key int64, n int) int {
	x := uint64(key)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return int(x % uint64(n))
}

// modPartitioner routes key k to shard k mod n.  Placement is obvious by
// inspection, which tests and debugging sessions want; real deployments
// want "hash" so key locality cannot skew shard load.
type modPartitioner struct{}

func (modPartitioner) Name() string { return "mod" }

func (modPartitioner) Shard(key int64, n int) int {
	m := key % int64(n)
	if m < 0 {
		m += int64(n)
	}
	return int(m)
}

func init() {
	RegisterPartitioner(hashPartitioner{})
	RegisterPartitioner(modPartitioner{})
}
