package core

import (
	"math"
	"sort"
	"testing"

	"svrdb/internal/relation"
	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
	"svrdb/internal/view"
	"svrdb/internal/workload"
)

func newArchiveEngine(t testing.TB, nMovies int) (*Engine, *relation.DB) {
	t.Helper()
	db := relation.NewDB(buffer.MustNew(pagefile.MustNewMem(pagefile.DefaultPageSize), 8192))
	params := workload.DefaultArchiveParams()
	params.NumMovies = nMovies
	if _, err := workload.BuildArchiveDB(db, params); err != nil {
		t.Fatal(err)
	}
	return NewEngine(db, Options{}), db
}

func TestCreateTextIndexValidation(t *testing.T) {
	engine, _ := newArchiveEngine(t, 50)
	if _, err := engine.CreateTextIndex("x", "Nope", "desc", IndexOptions{Spec: workload.ArchiveSpec()}); err == nil {
		t.Error("index over missing table created")
	}
	if _, err := engine.CreateTextIndex("x", "Movies", "missing", IndexOptions{Spec: workload.ArchiveSpec()}); err == nil {
		t.Error("index over missing column created")
	}
	if _, err := engine.CreateTextIndex("x", "Movies", "mID", IndexOptions{Spec: workload.ArchiveSpec()}); err == nil {
		t.Error("index over non-text column created")
	}
	if _, err := engine.CreateTextIndex("x", "Movies", "desc", IndexOptions{Method: "bogus", Spec: workload.ArchiveSpec()}); err == nil {
		t.Error("index with bogus method created")
	}
	if _, err := engine.CreateTextIndex("ok", "Movies", "desc", IndexOptions{Spec: workload.ArchiveSpec()}); err != nil {
		t.Fatalf("valid index creation failed: %v", err)
	}
	if _, err := engine.CreateTextIndex("ok", "Movies", "desc", IndexOptions{Spec: workload.ArchiveSpec()}); err == nil {
		t.Error("duplicate index name accepted")
	}
	if _, err := engine.TextIndex("ok"); err != nil {
		t.Errorf("TextIndex lookup failed: %v", err)
	}
	if _, err := engine.TextIndex("missing"); err == nil {
		t.Error("lookup of missing index succeeded")
	}
	if names := engine.TextIndexNames(); len(names) != 1 || names[0] != "ok" {
		t.Errorf("TextIndexNames = %v", names)
	}
}

func TestSearchRankingMatchesViewScores(t *testing.T) {
	for _, method := range AllMethods() {
		if method == MethodScore {
			// The Score method is exercised too, but with a smaller database
			// below to keep build times sensible; skip it in this loop.
			continue
		}
		t.Run(string(method), func(t *testing.T) {
			engine, _ := newArchiveEngine(t, 300)
			idx, err := engine.CreateTextIndex("movies_desc", "Movies", "desc", IndexOptions{
				Method: method,
				Spec:   workload.ArchiveSpec(),
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := idx.Search(SearchRequest{Query: "golden gate", K: 10, LoadRows: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Hits) == 0 {
				t.Fatal("no results for a common query")
			}
			// Hits must be sorted by score and each hit's score must equal the
			// view's current score of that document.
			for i, hit := range res.Hits {
				if i > 0 && res.Hits[i-1].Score < hit.Score {
					t.Errorf("hits not sorted by score at %d", i)
				}
				want, ok, err := idx.ScoreOf(hit.PK)
				if err != nil || !ok {
					t.Fatalf("ScoreOf(%d): %v %v", hit.PK, ok, err)
				}
				if math.Abs(hit.Score-want) > 1e-9 {
					t.Errorf("hit %d score = %g, view score = %g", hit.PK, hit.Score, want)
				}
				if hit.Row == nil {
					t.Errorf("LoadRows did not populate the row for %d", hit.PK)
				}
			}
		})
	}
}

func TestStructuredUpdateChangesRanking(t *testing.T) {
	engine, db := newArchiveEngine(t, 200)
	idx, err := engine.CreateTextIndex("movies_desc", "Movies", "desc", IndexOptions{
		Method: MethodChunk,
		Spec:   workload.ArchiveSpec(),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := idx.Search(SearchRequest{Query: "golden gate", K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) < 2 {
		t.Skip("query too selective for this seed")
	}
	// Promote the last-ranked hit with a massive visit spike.
	target := res.Hits[len(res.Hits)-1].PK
	stats, _ := db.Table("Statistics")
	row, err := stats.Get(target)
	if err != nil {
		t.Fatal(err)
	}
	if err := stats.Update(target, map[string]relation.Value{
		"nVisit": relation.Int(row[2].I + 10_000_000),
	}); err != nil {
		t.Fatal(err)
	}
	if err := idx.MaintenanceErr(); err != nil {
		t.Fatal(err)
	}
	res2, err := idx.Search(SearchRequest{Query: "golden gate", K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Hits[0].PK != target {
		t.Errorf("after the flash crowd, movie %d should rank first; got %d", target, res2.Hits[0].PK)
	}
}

func TestDocumentLifecycleThroughEngine(t *testing.T) {
	engine, db := newArchiveEngine(t, 100)
	idx, err := engine.CreateTextIndex("movies_desc", "Movies", "desc", IndexOptions{
		Method: MethodChunk,
		Spec:   workload.ArchiveSpec(),
	})
	if err != nil {
		t.Fatal(err)
	}
	movies, _ := db.Table("Movies")

	// Insert a new movie with a distinctive term.
	newID := int64(100000)
	if err := movies.Insert(relation.Row{
		relation.Int(newID), relation.Str("Zeppelin Voyage"), relation.Str("zeppelin crossing the golden gate"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := idx.MaintenanceErr(); err != nil {
		t.Fatal(err)
	}
	res, err := idx.Search(SearchRequest{Query: "zeppelin", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 1 || res.Hits[0].PK != newID {
		t.Fatalf("inserted movie not found: %+v", res.Hits)
	}

	// Content update: the description changes and loses the term.
	if err := movies.Update(newID, map[string]relation.Value{
		"desc": relation.Str("dirigible crossing the golden gate"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := idx.MaintenanceErr(); err != nil {
		t.Fatal(err)
	}
	res, err = idx.Search(SearchRequest{Query: "zeppelin", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 0 {
		t.Errorf("document still found under removed term: %+v", res.Hits)
	}
	res, err = idx.Search(SearchRequest{Query: "dirigible", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 1 || res.Hits[0].PK != newID {
		t.Errorf("document not found under added term: %+v", res.Hits)
	}

	// Delete the movie; it must disappear from results.
	if err := movies.Delete(newID); err != nil {
		t.Fatal(err)
	}
	if err := idx.MaintenanceErr(); err != nil {
		t.Fatal(err)
	}
	res, err = idx.Search(SearchRequest{Query: "dirigible", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 0 {
		t.Errorf("deleted movie still returned: %+v", res.Hits)
	}
}

func TestSearchValidation(t *testing.T) {
	engine, _ := newArchiveEngine(t, 50)
	idx, err := engine.CreateTextIndex("movies_desc", "Movies", "desc", IndexOptions{Spec: workload.ArchiveSpec()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.Search(SearchRequest{Query: "golden", K: 0}); err == nil {
		t.Error("search with k=0 accepted")
	}
	if _, err := idx.Search(SearchRequest{Query: "!!!", K: 5}); err == nil {
		t.Error("search with no indexable terms accepted")
	}
	if _, err := idx.Search(SearchRequest{Query: "golden", K: 5, WithTermScores: true}); err == nil {
		t.Error("term-score search on an SVR-only method accepted")
	}
}

func TestCombinedRankingThroughEngine(t *testing.T) {
	engine, _ := newArchiveEngine(t, 200)
	idx, err := engine.CreateTextIndex("movies_desc", "Movies", "desc", IndexOptions{
		Method: MethodChunkTermScore,
		Spec:   workload.ArchiveSpec(),
	})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := idx.Search(SearchRequest{Query: "golden gate", K: 10})
	if err != nil {
		t.Fatal(err)
	}
	combined, err := idx.Search(SearchRequest{Query: "golden gate", K: 10, WithTermScores: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Hits) == 0 || len(combined.Hits) == 0 {
		t.Fatal("no results")
	}
	// Combined scores include a non-negative term-score contribution, so for
	// the same document the combined score is at least the SVR score.
	svr := map[int64]float64{}
	for _, h := range plain.Hits {
		svr[h.PK] = h.Score
	}
	for _, h := range combined.Hits {
		if s, ok := svr[h.PK]; ok && h.Score < s-1e-9 {
			t.Errorf("combined score %g below SVR score %g for doc %d", h.Score, s, h.PK)
		}
	}
	// Results must be sorted.
	if !sort.SliceIsSorted(combined.Hits, func(i, j int) bool { return combined.Hits[i].Score >= combined.Hits[j].Score }) {
		t.Error("combined results not sorted")
	}
}

func TestScoreMethodThroughEngine(t *testing.T) {
	// Small database: the Score method rewrites every posting of a document
	// on each update, so keep the build tiny.
	db := relation.NewDB(buffer.MustNew(pagefile.MustNewMem(pagefile.DefaultPageSize), 4096))
	params := workload.DefaultArchiveParams()
	params.NumMovies = 60
	params.WordsPerDesc = 12
	if _, err := workload.BuildArchiveDB(db, params); err != nil {
		t.Fatal(err)
	}
	engine := NewEngine(db, Options{})
	idx, err := engine.CreateTextIndex("movies_desc", "Movies", "desc", IndexOptions{
		Method: MethodScore,
		Spec:   workload.ArchiveSpec(),
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, _ := db.Table("Statistics")
	row, err := stats.Get(30)
	if err != nil {
		t.Fatal(err)
	}
	if err := stats.Update(30, map[string]relation.Value{"nVisit": relation.Int(row[2].I + 5_000_000)}); err != nil {
		t.Fatal(err)
	}
	if err := idx.MaintenanceErr(); err != nil {
		t.Fatal(err)
	}
	res, err := idx.Search(SearchRequest{Query: "golden", K: 3, Disjunctive: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) > 0 {
		want, _, _ := idx.ScoreOf(res.Hits[0].PK)
		if math.Abs(res.Hits[0].Score-want) > 1e-9 {
			t.Errorf("top hit score %g does not match view score %g", res.Hits[0].Score, want)
		}
	}
	if got := idx.Stats().LongListPostingsWritten; got == 0 {
		t.Error("Score method reported no long-list posting rewrites after an update")
	}
	if idx.View().Spec().Agg == nil {
		t.Error("view spec lost its aggregator")
	}
	_ = view.Spec{}
}

// TestEngineCloseAuditsPins drives the full update and search machinery —
// including the B+-tree patch fast path on every score change — and then
// checks Close: it must flush, pass the buffer pool's pin audit, and leave
// the page file closed.
func TestEngineCloseAuditsPins(t *testing.T) {
	engine, db := newArchiveEngine(t, 60)
	ti, err := engine.CreateTextIndex("movies", "Movies", "desc", IndexOptions{
		Method: MethodChunk,
		Spec:   workload.ArchiveSpec(),
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := db.Table("Statistics")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		mID := int64(i%60 + 1)
		row, err := stats.Get(mID)
		if err != nil {
			t.Fatal(err)
		}
		if err := stats.Update(mID, map[string]relation.Value{
			"nVisit": relation.Int(row[2].I + int64(50+i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ti.Search(SearchRequest{Query: "golden gate", K: 5, LoadRows: true}); err != nil {
		t.Fatal(err)
	}
	if err := engine.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The pool's backing file is closed: once the cache is dropped, page
	// reads must fail instead of silently serving stale frames.
	if err := engine.Pool().EvictAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Pool().Get(0); err == nil {
		t.Error("Get after Close succeeded, want error")
	}
}

// TestEngineCloseReportsPinLeak verifies the audit actually bites: a pin
// taken and never released must surface as a Close error.
func TestEngineCloseReportsPinLeak(t *testing.T) {
	engine, _ := newArchiveEngine(t, 20)
	if _, err := engine.Pool().Get(0); err != nil {
		t.Fatal(err)
	}
	// Deliberately no Release.
	if err := engine.Close(); err == nil {
		t.Error("Close with a leaked pin returned nil, want error")
	}
}
