package core

import (
	"errors"
	"testing"

	"svrdb/internal/relation"
	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
	"svrdb/internal/view"
	"svrdb/internal/workload"
)

// TestApplyBatchAfterClose pins the engine-level close fence: a batch that
// acquires the batch lock after Close must fail fast with ErrClosed and
// never run fn — otherwise its base-table mutations would land on storage
// that has already been flushed, pin-audited and closed.
func TestApplyBatchAfterClose(t *testing.T) {
	db := relation.NewDB(buffer.MustNew(pagefile.MustNewMem(pagefile.DefaultPageSize), 2048))
	params := workload.DefaultArchiveParams()
	params.NumMovies = 10
	if _, err := workload.BuildArchiveDB(db, params); err != nil {
		t.Fatal(err)
	}
	engine := NewEngine(db, Options{})
	if _, err := engine.CreateTextIndex("m", "Movies", "desc", IndexOptions{Spec: workload.ArchiveSpec()}); err != nil {
		t.Fatal(err)
	}
	if err := engine.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	ran := false
	err := engine.ApplyBatch(func() error { ran = true; return nil })
	if !errors.Is(err, ErrClosed) {
		t.Errorf("ApplyBatch after Close error = %v, want ErrClosed", err)
	}
	if ran {
		t.Error("ApplyBatch ran fn against a closed engine")
	}

	// Close is idempotent.
	if err := engine.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestSearchAfterCloseSentinel pins that the per-index fence reports the
// same sentinel the serving layer maps to 503.
func TestSearchAfterCloseSentinel(t *testing.T) {
	db := relation.NewDB(buffer.MustNew(pagefile.MustNewMem(pagefile.DefaultPageSize), 2048))
	tbl, err := db.CreateTable(relation.Schema{
		Name: "Docs",
		Columns: []relation.Column{
			{Name: "id", Kind: relation.KindInt64},
			{Name: "body", Kind: relation.KindString},
			{Name: "val", Kind: relation.KindFloat64},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(relation.Row{relation.Int(1), relation.Str("alpha"), relation.Float(1)}); err != nil {
		t.Fatal(err)
	}
	engine := NewEngine(db, Options{})
	idx, err := engine.CreateTextIndex("d", "Docs", "body", IndexOptions{
		Spec: view.Spec{Components: []view.Component{view.OwnColumn("Docs", "val")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := idx.Search(SearchRequest{Query: "alpha", K: 1}); !errors.Is(err, ErrClosed) {
		t.Errorf("Search after Close error = %v, want ErrClosed", err)
	}
}
