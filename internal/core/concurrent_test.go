package core

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"svrdb/internal/relation"
	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
	"svrdb/internal/view"
	"svrdb/internal/workload"
)

// serializeResult renders a search result deterministically so results can
// be compared for exact equality across goroutines.
func serializeResult(res *SearchResult) string {
	out := ""
	for _, h := range res.Hits {
		out += fmt.Sprintf("%d:%v;", h.PK, h.Score)
	}
	return out
}

// tortureQueries returns the query mix of the torture test for a method.
func tortureQueries(method MethodKind) []SearchRequest {
	qs := []SearchRequest{
		{Query: "golden gate", K: 10},
		{Query: "silent river", K: 5, Disjunctive: true},
	}
	if method == MethodIDTermScore || method == MethodChunkTermScore {
		qs = append(qs, SearchRequest{Query: "golden gate", K: 10, WithTermScores: true})
	}
	return qs
}

// TestConcurrentSearchTorture races N reader goroutines against a writer
// applying update batches, for every method.  Batches are applied through
// Engine.ApplyBatch, so each batch becomes visible atomically; after every
// batch the writer captures the authoritative result of each query.  Every
// result a racing reader observed must be byte-identical to the result of
// some captured version — i.e. concurrent execution is equivalent to some
// serial order of the applied batches.  Run under -race this doubles as the
// data-race gate for the whole read path.
func TestConcurrentSearchTorture(t *testing.T) {
	for _, method := range AllMethods() {
		method := method
		t.Run(string(method), func(t *testing.T) {
			nMovies, batches, perBatch := 150, 6, 12
			if method == MethodScore {
				// The Score method rewrites every posting of a document per
				// score update; keep its collection small.
				nMovies, batches, perBatch = 80, 4, 8
			}
			engine, db := newArchiveEngine(t, nMovies)
			idx, err := engine.CreateTextIndex("m", "Movies", "desc", IndexOptions{
				Method: method,
				Spec:   workload.ArchiveSpec(),
			})
			if err != nil {
				t.Fatal(err)
			}
			queries := tortureQueries(method)

			// versions[qi] is the set of results query qi legitimately had at
			// some point in the batch sequence.
			versions := make([]map[string]bool, len(queries))
			for qi := range versions {
				versions[qi] = map[string]bool{}
			}
			capture := func() {
				for qi, req := range queries {
					res, err := idx.Search(req)
					if err != nil {
						t.Errorf("capture query %d: %v", qi, err)
						return
					}
					versions[qi][serializeResult(res)] = true
				}
			}
			capture() // version 0: the freshly built index

			const readers = 4
			stop := make(chan struct{})
			observed := make([]map[int]map[string]bool, readers)
			var wg sync.WaitGroup
			for r := 0; r < readers; r++ {
				r := r
				observed[r] = map[int]map[string]bool{}
				for qi := range queries {
					observed[r][qi] = map[string]bool{}
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						qi := (i + r) % len(queries)
						res, err := idx.Search(queries[qi])
						if err != nil {
							t.Errorf("reader %d: %v", r, err)
							return
						}
						observed[r][qi][serializeResult(res)] = true
					}
				}()
			}

			stats, err := db.Table("Statistics")
			if err != nil {
				t.Fatal(err)
			}
			for b := 0; b < batches; b++ {
				err := engine.ApplyBatch(func() error {
					for j := 0; j < perBatch; j++ {
						pk := int64((b*perBatch+j)%nMovies + 1)
						row, err := stats.Get(pk)
						if err != nil {
							return err
						}
						delta := int64(50_000 * (j + 1) * (b + 1))
						if err := stats.Update(pk, map[string]relation.Value{
							"nVisit": relation.Int(row[2].I + delta),
						}); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					t.Fatalf("batch %d: %v", b, err)
				}
				capture()
			}
			close(stop)
			wg.Wait()

			for r := range observed {
				for qi, set := range observed[r] {
					for s := range set {
						if !versions[qi][s] {
							t.Errorf("reader %d observed a result for query %d matching no serialized version:\n  got  %q\n  want one of %d captured versions", r, qi, s, len(versions[qi]))
						}
					}
				}
			}
			if err := idx.MaintenanceErr(); err != nil {
				t.Errorf("maintenance errors: %v", err)
			}
			if err := engine.Close(); err != nil {
				t.Errorf("Close (includes pin audit): %v", err)
			}
		})
	}
}

// TestConcurrentQueryStormPinsClean hammers one index with read-only
// searches from many goroutines and then audits the buffer pool: every pin
// taken by the concurrent read path must have been released, and the
// engine's Close (which drains and re-audits) must succeed.
func TestConcurrentQueryStormPinsClean(t *testing.T) {
	engine, _ := newArchiveEngine(t, 200)
	idx, err := engine.CreateTextIndex("m", "Movies", "desc", IndexOptions{
		Method: MethodChunk,
		Spec:   workload.ArchiveSpec(),
	})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, perG = 8, 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			reqs := []SearchRequest{
				{Query: "golden gate", K: 10, LoadRows: true},
				{Query: "silent river city", K: 3, Disjunctive: true},
			}
			for i := 0; i < perG; i++ {
				if _, err := idx.Search(reqs[(i+g)%len(reqs)]); err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := engine.Pool().CheckPins(); err != nil {
		t.Errorf("pin audit after query storm: %v", err)
	}
	if err := engine.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestClampScore pins the clamping domain: NaN (which a plain `s < 0` test
// passes through), -0, negatives and +Inf must all map into the index's
// key-safe range.
func TestClampScore(t *testing.T) {
	if got := clampScore(math.NaN()); got != 0 {
		t.Errorf("clampScore(NaN) = %v, want 0", got)
	}
	if got := clampScore(-5); got != 0 {
		t.Errorf("clampScore(-5) = %v, want 0", got)
	}
	if got := clampScore(math.Copysign(0, -1)); got != 0 || math.Signbit(got) {
		t.Errorf("clampScore(-0) = %v (signbit %v), want +0", got, math.Signbit(got))
	}
	if got := clampScore(math.Inf(1)); got != math.MaxFloat64 {
		t.Errorf("clampScore(+Inf) = %v, want MaxFloat64", got)
	}
	if got := clampScore(3.5); got != 3.5 {
		t.Errorf("clampScore(3.5) = %v, want 3.5", got)
	}
}

// TestNaNScoreDoesNotPoisonIndex drives a NaN (and then +Inf) score through
// the live maintenance path — a structured update that makes the score
// aggregate NaN — and checks the index stays healthy: no maintenance
// errors, searches still return the document (clamped to 0), and a +Inf
// score ranks first with a finite value instead of corrupting the B+-tree
// key order.
func TestNaNScoreDoesNotPoisonIndex(t *testing.T) {
	db := relation.NewDB(buffer.MustNew(pagefile.MustNewMem(pagefile.DefaultPageSize), 2048))
	tbl, err := db.CreateTable(relation.Schema{
		Name: "Docs",
		Columns: []relation.Column{
			{Name: "id", Kind: relation.KindInt64},
			{Name: "body", Kind: relation.KindString},
			{Name: "val", Kind: relation.KindFloat64},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for pk, doc := range map[int64]struct {
		body string
		val  float64
	}{
		1: {"alpha beta common", 10},
		2: {"alpha gamma common", 5},
		3: {"alpha delta common", 1},
	} {
		if err := tbl.Insert(relation.Row{relation.Int(pk), relation.Str(doc.body), relation.Float(doc.val)}); err != nil {
			t.Fatal(err)
		}
	}
	engine := NewEngine(db, Options{})
	idx, err := engine.CreateTextIndex("d", "Docs", "body", IndexOptions{
		Method: MethodChunk,
		Spec:   view.Spec{Components: []view.Component{view.OwnColumn("Docs", "val")}},
	})
	if err != nil {
		t.Fatal(err)
	}

	// NaN flows through the score view into onScoreChange.
	if err := tbl.Update(1, map[string]relation.Value{"val": relation.Float(math.NaN())}); err != nil {
		t.Fatal(err)
	}
	if err := idx.MaintenanceErr(); err != nil {
		t.Fatalf("maintenance error after NaN score: %v", err)
	}
	res, err := idx.Search(SearchRequest{Query: "alpha", K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 3 {
		t.Fatalf("got %d hits after NaN score, want 3 (the NaN document clamps to 0, it does not vanish)", len(res.Hits))
	}
	for _, h := range res.Hits {
		if math.IsNaN(h.Score) {
			t.Errorf("NaN score leaked into results: doc %d", h.PK)
		}
		if h.PK == 1 && h.Score != 0 {
			t.Errorf("NaN-scored doc 1 has score %v, want 0", h.Score)
		}
	}

	// +Inf clamps to MaxFloat64 and ranks first.
	if err := tbl.Update(3, map[string]relation.Value{"val": relation.Float(math.Inf(1))}); err != nil {
		t.Fatal(err)
	}
	if err := idx.MaintenanceErr(); err != nil {
		t.Fatalf("maintenance error after +Inf score: %v", err)
	}
	res, err = idx.Search(SearchRequest{Query: "alpha", K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) == 0 || res.Hits[0].PK != 3 {
		t.Fatalf("+Inf-scored doc should rank first; hits = %+v", res.Hits)
	}
	if math.IsInf(res.Hits[0].Score, 1) || res.Hits[0].Score != math.MaxFloat64 {
		t.Errorf("+Inf score = %v, want MaxFloat64", res.Hits[0].Score)
	}
	if err := engine.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestMaintenanceErrCap checks that repeated maintenance failures retain a
// bounded error list with an accurate dropped-count summary, and that
// ClearMaintenanceErr restores a healthy report.
func TestMaintenanceErrCap(t *testing.T) {
	ti := &TextIndex{name: "capped"}
	for i := 0; i < maxMaintenanceErrs+25; i++ {
		ti.recordErr(fmt.Errorf("boom %d", i))
	}
	ti.mu.Lock()
	retained, dropped := len(ti.maintenanceErrs), ti.droppedErrs
	ti.mu.Unlock()
	if retained != maxMaintenanceErrs {
		t.Errorf("retained %d errors, want %d", retained, maxMaintenanceErrs)
	}
	if dropped != 25 {
		t.Errorf("dropped %d errors, want 25", dropped)
	}
	err := ti.MaintenanceErr()
	if err == nil {
		t.Fatal("MaintenanceErr = nil with recorded errors")
	}
	if want := "25 further maintenance errors dropped"; !strings.Contains(err.Error(), want) {
		t.Errorf("MaintenanceErr %q does not mention %q", err.Error(), want)
	}
	ti.ClearMaintenanceErr()
	if err := ti.MaintenanceErr(); err != nil {
		t.Errorf("MaintenanceErr after Clear = %v, want nil", err)
	}
	// The cap applies afresh after clearing.
	ti.recordErr(fmt.Errorf("again"))
	if err := ti.MaintenanceErr(); err == nil || strings.Contains(err.Error(), "dropped") {
		t.Errorf("post-clear error report wrong: %v", err)
	}
}
