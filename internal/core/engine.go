package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"svrdb/internal/index"
	"svrdb/internal/postings"
	"svrdb/internal/relation"
	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
	"svrdb/internal/text"
	"svrdb/internal/view"
)

// ErrClosed is wrapped into the error every engine entry point returns once
// Engine.Close has fenced the engine; callers (the HTTP serving layer in
// particular) match it with errors.Is to distinguish "shutting down" from a
// real failure.
var ErrClosed = errors.New("engine is closed")

// ErrInvalidRequest is wrapped into request-validation failures in Search
// (non-positive k, a query with no indexable terms) so callers — the HTTP
// layer in particular — can distinguish a caller mistake from an engine
// fault.
var ErrInvalidRequest = errors.New("invalid search request")

// ErrQuotaExceeded is wrapped into the rejection a tenant's batch gets when
// applying it would push the tenant past its row or byte quota.  The batch
// is rejected before any of it applies — quota checks run under the batch
// lock ahead of the batch body, so rejection is atomic.
var ErrQuotaExceeded = errors.New("tenant quota exceeded")

// ErrExists is wrapped into errors for creating something that already
// exists (an index name in use); HTTP maps it to 409 Conflict.
var ErrExists = errors.New("already exists")

// MethodKind selects which inverted-list structure a text index uses.
type MethodKind string

// The supported index methods (§4 of the paper).
const (
	MethodID             MethodKind = "id"
	MethodScore          MethodKind = "score"
	MethodScoreThreshold MethodKind = "score-threshold"
	MethodChunk          MethodKind = "chunk"
	MethodIDTermScore    MethodKind = "id-termscore"
	MethodChunkTermScore MethodKind = "chunk-termscore"
)

// AllMethods lists every supported method kind in the order the paper's
// tables report them.
func AllMethods() []MethodKind {
	return []MethodKind{MethodID, MethodScore, MethodScoreThreshold, MethodChunk, MethodIDTermScore, MethodChunkTermScore}
}

// newMethod constructs the index implementation for a kind.
func newMethod(kind MethodKind, cfg index.Config) (index.Method, error) {
	switch kind {
	case MethodID:
		return index.NewID(cfg)
	case MethodScore:
		return index.NewScore(cfg)
	case MethodScoreThreshold:
		return index.NewScoreThreshold(cfg)
	case MethodChunk, "":
		return index.NewChunk(cfg)
	case MethodIDTermScore:
		return index.NewIDTermScore(cfg)
	case MethodChunkTermScore:
		return index.NewChunkTermScore(cfg)
	default:
		return nil, fmt.Errorf("core: unknown index method %q", kind)
	}
}

// Engine is the top-level SVR engine.
type Engine struct {
	db       *relation.DB
	analyzer *text.Analyzer

	mu      sync.RWMutex
	indexes map[string]*TextIndex

	// specs is the score-spec registry: online index creation (the HTTP
	// POST /v1/indexes path in particular) references specs by name because
	// a spec holds Go functions that cannot travel in a request body or the
	// durable catalog.  Guarded by specMu.
	specMu sync.RWMutex
	specs  map[string]view.Spec

	// tenants maps tenant names to their quotas.  A tenant's namespace is
	// the set of tables and indexes named "<tenant>/<rest>"; quotas meter
	// that namespace's row and byte footprint.  Guarded by tenantMu.
	tenantMu sync.RWMutex
	tenants  map[string]TenantQuota

	// batchMu serializes ApplyBatch calls: the per-index batching flag is
	// engaged for the duration of one batch, so overlapping batches would
	// flush each other's half-accumulated events.
	batchMu sync.Mutex
	// Group-commit state.  Concurrent ApplyBatch callers coalesce into one
	// pagefile Commit: a batch that sees other callers queued on batchMu
	// (commitWaiters > 0) skips its own commit and waits for a successor's,
	// which — because pagefile.Commit covers every staged page, not just the
	// committing batch's — makes the earlier batch durable too.  batchSeq
	// numbers batches (guarded by batchMu); commitSeq/commitErr record the
	// newest batch covered by a finished commit (guarded by commitMu,
	// signalled through commitCond).
	commitWaiters atomic.Int64
	batchSeq      uint64
	commitMu      sync.Mutex
	commitCond    *sync.Cond
	commitSeq     uint64
	commitErr     error
	// closed (guarded by batchMu) is set by Close; an ApplyBatch that
	// acquires batchMu afterwards must fail fast rather than run fn's
	// base-table mutations against flushed, audited, closed storage.
	closed bool
	// closedFlag mirrors closed for lock-free observers (Closed): a shard
	// health probe must not block behind batchMu while a long batch holds it.
	closedFlag atomic.Bool

	// durable marks engines opened from a page file on disk (core.Open):
	// every ApplyBatch return and Close writes an atomic checkpoint
	// (commitDurable).  In-memory engines skip all of it.
	durable bool
	// catalogPages is the page chain holding the last committed catalog;
	// the next commit frees it and writes a fresh chain (guarded by
	// batchMu, like the commits that use it).
	catalogPages []pagefile.PageID
}

// Options configures an Engine.
type Options struct {
	// Analyzer tokenizes text columns; nil installs the default analyzer.
	Analyzer *text.Analyzer
}

// NewEngine creates an engine over an existing relational database.
func NewEngine(db *relation.DB, opts Options) *Engine {
	a := opts.Analyzer
	if a == nil {
		a = text.NewAnalyzer()
	}
	e := &Engine{
		db:       db,
		analyzer: a,
		indexes:  map[string]*TextIndex{},
		specs:    map[string]view.Spec{},
		tenants:  map[string]TenantQuota{},
	}
	e.commitCond = sync.NewCond(&e.commitMu)
	return e
}

// RegisterSpec registers a score specification under a name so online index
// creation (and durable reopen) can resolve it.  Re-registering a name
// replaces the spec.
func (e *Engine) RegisterSpec(name string, spec view.Spec) {
	e.specMu.Lock()
	defer e.specMu.Unlock()
	e.specs[name] = spec
}

// Spec resolves a registered score specification by name.
func (e *Engine) Spec(name string) (view.Spec, bool) {
	e.specMu.RLock()
	defer e.specMu.RUnlock()
	s, ok := e.specs[name]
	return s, ok
}

// SpecNames lists the registered score-spec names in sorted order.
func (e *Engine) SpecNames() []string {
	e.specMu.RLock()
	defer e.specMu.RUnlock()
	names := make([]string, 0, len(e.specs))
	for n := range e.specs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Close shuts the engine down: in-flight maintenance writes and searches
// are drained (the writer mutex and the shutdown fence's write side are
// each acquired once, so every write and Search that started before Close
// finishes first), each index's epoch readers are drained and its retired
// pages recycled (Method.Drain), accumulated maintenance errors are
// surfaced, dirty pages are written back in one ordered sweep, and the
// buffer pool's pin accounting is audited (CheckPins) so that a pin leak
// or over-release anywhere in the storage stack — e.g. on the B+-tree
// patch fast path — fails loudly at close instead of shipping silently.
// The underlying page file is closed last.  The drain also fences: each
// index is marked closed, so a search or maintenance write that starts
// after the drain fails fast instead of pinning pages while the audit runs
// or touching a closed file.  The fence covers the engine's own paths
// (Search and index maintenance); direct relation.Table or ScoreView reads
// are not fenced — callers that read tables directly must stop doing so
// before Close, or the pin audit may observe their in-flight pins.  An
// in-flight ApplyBatch is waited for: Close takes the batch lock first, so
// a batch's base-table mutations and index flush complete before the drain
// and audit begin.  Close is idempotent: a second call returns nil without
// touching the already-closed storage, and an ApplyBatch that acquires the
// batch lock after Close fails fast with ErrClosed.
func (e *Engine) Close() error {
	e.batchMu.Lock()
	defer e.batchMu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	e.closedFlag.Store(true)
	e.mu.RLock()
	indexes := make([]*TextIndex, 0, len(e.indexes))
	for _, ti := range e.indexes {
		indexes = append(indexes, ti)
	}
	e.mu.RUnlock()
	var errs []error
	for _, ti := range indexes {
		// Drain and fence.  writerMu waits out any in-flight maintenance
		// write; the rw write lock waits out in-flight searches (the only
		// writer of rw is this drain); the closed mark turns away anything
		// that starts later.  Method.Drain then waits for any straggling
		// epoch readers and recycles every page retired for them, so the
		// pin audit and the final flush below see quiesced structures.
		ti.writerMu.Lock()
		ti.rw.Lock()
		ti.closed = true
		ti.rw.Unlock()
		ti.writerMu.Unlock()
		if err := ti.method.Drain(); err != nil {
			errs = append(errs, fmt.Errorf("core: index %q: drain: %w", ti.name, err))
		}
		if err := ti.MaintenanceErr(); err != nil {
			errs = append(errs, fmt.Errorf("core: index %q: %w", ti.name, err))
		}
	}
	pool := e.db.Pool()
	// A durable engine writes a final checkpoint (flush + catalog + commit)
	// so a clean shutdown reopens without WAL replay; in-memory engines just
	// flush.  The checkpoint runs after the drain above, so every index is
	// quiesced and its tree roots are final.
	if e.durable {
		// commitUpTo (not bare commitDurable) so any ApplyBatch that
		// deferred its commit and is still waiting gets released by this
		// final covering checkpoint.
		if err := e.commitUpTo(e.batchSeq); err != nil {
			errs = append(errs, err)
		}
	} else if err := pool.FlushOrdered(); err != nil {
		errs = append(errs, err)
	}
	if err := pool.CheckPins(); err != nil {
		errs = append(errs, err)
	}
	if err := pool.File().Close(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// Closed reports whether Close has run.  It never blocks — shard health
// probes call it while writers may be holding the batch lock.
func (e *Engine) Closed() bool { return e.closedFlag.Load() }

// DB returns the engine's relational database.
func (e *Engine) DB() *relation.DB { return e.db }

// Analyzer returns the engine's text analyzer.
func (e *Engine) Analyzer() *text.Analyzer { return e.analyzer }

// Pool returns the buffer pool that backs the engine's storage.
func (e *Engine) Pool() *buffer.Pool { return e.db.Pool() }

// IndexOptions configures a text index.
type IndexOptions struct {
	// Method selects the inverted-list structure; the default is Chunk, the
	// paper's recommended method.
	Method MethodKind
	// Spec is the SVR score specification (§3.1).
	Spec view.Spec
	// SpecName is the registry name the spec can be resolved under when the
	// engine is reopened from a durable file (see OpenOptions.Specs).  Specs
	// hold Go functions and cannot be serialized, so a durable engine
	// records this name in its catalog instead.  Required for durable
	// engines; ignored for in-memory ones.
	SpecName string
	// ThresholdRatio, ChunkRatio, MinChunkSize and FancyListSize override the
	// method knobs; zero values use the paper's defaults.
	ThresholdRatio float64
	ChunkRatio     float64
	MinChunkSize   int
	FancyListSize  int
}

// TextIndex is one SVR text index over a (table, column) pair.
//
// A TextIndex is safe for concurrent use, and searches never block behind
// maintenance: every query evaluates against the method's atomically
// published snapshot (see internal/index: epoch/snapshot reads), so the
// write paths — eager change events, ApplyUpdates, ApplyBatch flushes,
// MergeShortLists — only serialize against each other on writerMu, never
// against readers.  The only lock a search takes is the read side of rw,
// whose write side is taken exactly once, by Engine.Close, to fence
// shutdown; during normal operation it is uncontended.
type TextIndex struct {
	name   string
	table  string
	column string
	// specName and cfg are recorded in the durable catalog so the index can
	// be reattached on reopen (the spec is resolved by name, the config
	// rebuilds the method knobs).
	specName string
	cfg      index.Config

	engine *Engine
	view   *view.ScoreView
	method index.Method
	// baseHook is the change-listener handle registered on the indexed
	// table, kept so DropTextIndex can detach it.
	baseHook relation.ListenerHandle

	// writerMu serializes the maintenance paths against each other.  Readers
	// never take it: queries run against published snapshots.
	writerMu sync.Mutex
	// rw is the shutdown fence only.  Search holds the read side across the
	// top-k evaluation and the row join; Engine.Close takes the write side
	// once to drain in-flight searches before the pin audit and file close.
	// No maintenance path ever takes the write side, so searches never wait
	// on it in a running engine.
	rw sync.RWMutex
	// closed is set by Engine.Close with both writerMu and rw held; a Search
	// or maintenance write that starts afterwards fails fast instead of
	// touching a closed page file while the close-time pin audit runs.
	closed bool
	// dropped distinguishes an index fenced by DropTextIndex from one fenced
	// by engine shutdown: a search racing a drop reports not-found (the
	// index is gone) rather than engine-closed.
	dropped bool

	mu              sync.Mutex
	maintenanceErrs []error
	// droppedErrs counts maintenance errors discarded once maintenanceErrs
	// reached maxMaintenanceErrs, so a repeatedly failing index reports a
	// bounded error list plus an accurate drop count instead of growing
	// without bound.
	droppedErrs uint64
	// batching defers incremental maintenance: change events convert to
	// index.Update values in pending instead of hitting the method, and
	// flushBatch applies them in one Method.ApplyUpdates call.
	batching bool
	pending  []index.Update
}

// maxMaintenanceErrs bounds how many maintenance errors a TextIndex retains;
// further errors only bump the dropped-error counter.
const maxMaintenanceErrs = 16

// CreateTextIndex creates and bulk-builds a text index.  It is safe on a
// live engine: the whole backfill runs under the batch lock, so ApplyBatch
// writers queue behind it exactly as behind a long batch, while searches —
// which never touch the batch lock — keep serving throughout.  Searches
// against the new name cleanly miss until the index is registered, after
// which they observe the fully backfilled index; there is no in-between
// state.  Writers that bypass ApplyBatch and mutate tables directly during
// the backfill are not fenced and may be missed — the engine's write paths
// (HTTP serving included) all go through ApplyBatch.
//
// When opts.Spec is empty and opts.SpecName is set, the spec is resolved
// from the engine's registry (RegisterSpec / OpenOptions.Specs), which is
// how creation requests arriving over HTTP name their scoring.
func (e *Engine) CreateTextIndex(name, table, column string, opts IndexOptions) (*TextIndex, error) {
	e.batchMu.Lock()
	defer e.batchMu.Unlock()
	if e.closed {
		return nil, fmt.Errorf("core: %w", ErrClosed)
	}
	e.mu.RLock()
	_, exists := e.indexes[name]
	e.mu.RUnlock()
	if exists {
		return nil, fmt.Errorf("core: text index %q: %w", name, ErrExists)
	}

	if len(opts.Spec.Components) == 0 && opts.SpecName != "" {
		spec, ok := e.Spec(opts.SpecName)
		if !ok {
			return nil, fmt.Errorf("core: %w: no score spec registered under %q", ErrInvalidRequest, opts.SpecName)
		}
		opts.Spec = spec
	}

	tbl, err := e.db.Table(table)
	if err != nil {
		return nil, err
	}
	colIdx, err := tbl.Schema().ColumnIndex(column)
	if err != nil {
		return nil, err
	}
	if tbl.Schema().Columns[colIdx].Kind != relation.KindString {
		return nil, fmt.Errorf("core: column %q of table %q is not a text column", column, table)
	}

	sv, err := view.NewScoreView(e.db, table, opts.Spec)
	if err != nil {
		return nil, err
	}
	if err := sv.Build(); err != nil {
		return nil, err
	}

	cfg := index.Config{
		Pool:           e.db.Pool(),
		ThresholdRatio: opts.ThresholdRatio,
		ChunkRatio:     opts.ChunkRatio,
		MinChunkSize:   opts.MinChunkSize,
		FancyListSize:  opts.FancyListSize,
	}
	method, err := newMethod(opts.Method, cfg)
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrInvalidRequest, err)
	}

	ti := &TextIndex{
		name:     name,
		table:    table,
		column:   column,
		specName: opts.SpecName,
		cfg:      cfg,
		engine:   e,
		view:     sv,
		method:   method,
	}

	src := &tableDocSource{table: tbl, colIdx: colIdx, analyzer: e.analyzer}
	if err := method.Build(src, func(doc index.DocID) float64 {
		s, ok, err := sv.Score(int64(doc))
		if err != nil || !ok {
			return 0
		}
		return clampScore(s)
	}); err != nil {
		return nil, err
	}
	// Write the build's dirty pages back in one ordered sweep rather than
	// letting them dribble out in LRU eviction order.
	if err := e.db.Pool().FlushOrdered(); err != nil {
		return nil, err
	}

	// Incremental maintenance: structured-value changes flow through the
	// view into score updates; document lifecycle events flow into the
	// Appendix A maintenance paths; text edits flow into content updates.
	sv.OnScoreChange(ti.onScoreChange)
	if err := sv.Attach(); err != nil {
		return nil, err
	}
	ti.baseHook = tbl.OnChange(ti.onBaseRowChange)

	e.mu.Lock()
	e.indexes[name] = ti
	e.mu.Unlock()

	// A durable engine checkpoints the freshly built index immediately: the
	// build is the most expensive thing the engine ever does, and an
	// un-checkpointed build would be lost to a crash before the first batch
	// (the crash lands on the previous catalog, so the index is fully absent
	// rather than half-built).  commitUpTo also covers (and wakes) any
	// group-commit waiters queued behind the build.
	if err := e.commitUpTo(e.batchSeq); err != nil {
		return nil, err
	}
	return ti, nil
}

// DropTextIndex removes a text index from a live engine: the index is
// deregistered, its maintenance listeners detached, in-flight searches
// drained (a search that raced the drop either completes against the last
// published snapshot or reports not-found — never a half-removed index),
// and every page its structures occupied — method trees, long-list and
// fancy-list blobs, and the score view's tree — returns to the pagefile
// free list.  On a durable engine the drop commits atomically: a crash
// anywhere inside it recovers to the index fully present or fully absent.
func (e *Engine) DropTextIndex(name string) error {
	e.batchMu.Lock()
	defer e.batchMu.Unlock()
	if e.closed {
		return fmt.Errorf("core: %w", ErrClosed)
	}
	e.mu.Lock()
	ti, ok := e.indexes[name]
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("core: no text index named %q: %w", name, relation.ErrNotFound)
	}
	delete(e.indexes, name)
	e.mu.Unlock()

	// Detach maintenance: the view stops listening to its dependency tables
	// and the base table stops feeding content updates.  A mutation already
	// mid-notification may deliver one final event; the fence below waits
	// out any write it triggers before the pages are released.
	ti.view.Detach()
	if tbl, err := e.db.Table(ti.table); err == nil {
		tbl.RemoveListener(ti.baseHook)
	}

	// Fence: wait out in-flight maintenance writes (writerMu) and searches
	// (rw), then mark the index dropped so stragglers fail fast with a
	// not-found error instead of touching released pages.
	ti.writerMu.Lock()
	ti.rw.Lock()
	ti.closed = true
	ti.dropped = true
	ti.rw.Unlock()
	ti.writerMu.Unlock()

	// Release the storage: retire every page of the method's structures and
	// the view tree, then drain the epochs — any reader still pinned to the
	// last snapshot leaves first, after which all retired pages recycle onto
	// the free list.
	var errs []error
	if err := ti.method.ReleasePages(); err != nil {
		errs = append(errs, fmt.Errorf("core: drop %q: release index pages: %w", name, err))
	}
	if err := ti.view.ReleaseTree(); err != nil {
		errs = append(errs, fmt.Errorf("core: drop %q: release view tree: %w", name, err))
	}
	if err := ti.method.Drain(); err != nil {
		errs = append(errs, fmt.Errorf("core: drop %q: drain: %w", name, err))
	}
	if err := ti.MaintenanceErr(); err != nil {
		errs = append(errs, fmt.Errorf("core: drop %q: %w", name, err))
	}
	// Durable engines persist the drop (and the freed pages) atomically;
	// commitUpTo also wakes any group-commit waiters queued behind the drop.
	if err := e.commitUpTo(e.batchSeq); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// TextIndex returns a previously created index by name.
func (e *Engine) TextIndex(name string) (*TextIndex, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	ti, ok := e.indexes[name]
	if !ok {
		return nil, fmt.Errorf("core: no text index named %q: %w", name, relation.ErrNotFound)
	}
	return ti, nil
}

// TextIndexNames lists the created indexes in sorted order.
func (e *Engine) TextIndexNames() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	names := make([]string, 0, len(e.indexes))
	for n := range e.indexes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// clampScore enforces the paper's assumption that SVR scores are
// non-negative and finite; out-of-domain aggregates are clamped rather than
// let loose into the index:
//
//   - NaN maps to 0.  (A plain `s < 0` check passes NaN through, and a NaN
//     score poisons the B+-tree: the order-preserving float encoding would
//     place it unpredictably and every comparison against it is false, so
//     score updates could neither find nor remove the old posting.)
//   - Negative values and -0 map to +0, so the codec produces the canonical
//     zero key.
//   - +Inf maps to MaxFloat64, keeping early-termination bounds finite.
func clampScore(s float64) float64 {
	if math.IsNaN(s) || s <= 0 {
		return 0
	}
	if math.IsInf(s, 1) {
		return math.MaxFloat64
	}
	return s
}

// --- maintenance plumbing ------------------------------------------------------

func (ti *TextIndex) recordErr(err error) {
	if err == nil {
		return
	}
	ti.mu.Lock()
	defer ti.mu.Unlock()
	if len(ti.maintenanceErrs) >= maxMaintenanceErrs {
		ti.droppedErrs++
		return
	}
	ti.maintenanceErrs = append(ti.maintenanceErrs, err)
}

// MaintenanceErr returns the accumulated incremental-maintenance errors, if
// any.  A healthy index returns nil.  At most maxMaintenanceErrs errors are
// retained; when more occurred, the joined error ends with a summary of how
// many were dropped.
func (ti *TextIndex) MaintenanceErr() error {
	ti.mu.Lock()
	defer ti.mu.Unlock()
	if len(ti.maintenanceErrs) == 0 {
		return nil
	}
	errs := ti.maintenanceErrs
	if ti.droppedErrs > 0 {
		errs = append(append([]error(nil), errs...),
			fmt.Errorf("core: %d further maintenance errors dropped (only the first %d are retained)", ti.droppedErrs, maxMaintenanceErrs))
	}
	return errors.Join(errs...)
}

// ClearMaintenanceErr discards the accumulated maintenance errors and the
// dropped-error count, so an index whose failure cause has been repaired
// (for example by MergeShortLists rebuilding its structures) can report
// healthy again.
func (ti *TextIndex) ClearMaintenanceErr() {
	ti.mu.Lock()
	defer ti.mu.Unlock()
	ti.maintenanceErrs = nil
	ti.droppedErrs = 0
}

// onScoreChange reacts to Score view changes (Algorithm 1's entry point).
// Eager maintenance takes the index write lock around the method call so it
// drains and excludes concurrent searches; in batch mode the event only
// lands in the pending queue and no lock beyond ti.mu is needed.
func (ti *TextIndex) onScoreChange(c view.ScoreChange) {
	doc := index.DocID(c.Doc)
	switch {
	case c.Deleted:
		if ti.enqueue(index.Update{Op: index.DeleteOp, Doc: doc}) {
			return
		}
		ti.recordErr(ti.writeLocked(func() error { return ti.method.DeleteDocument(doc) }))
	case c.Inserted:
		tokens, err := ti.tokensOf(c.Doc)
		if err != nil {
			ti.recordErr(err)
			return
		}
		if ti.enqueue(index.Update{Op: index.InsertOp, Doc: doc, Tokens: tokens, Score: clampScore(c.New)}) {
			return
		}
		ti.recordErr(ti.writeLocked(func() error { return ti.method.InsertDocument(doc, tokens, clampScore(c.New)) }))
	default:
		if ti.enqueue(index.Update{Op: index.ScoreOp, Doc: doc, Score: clampScore(c.New)}) {
			return
		}
		ti.recordErr(ti.writeLocked(func() error { return ti.method.UpdateScore(doc, clampScore(c.New)) }))
	}
}

// writeLocked runs fn holding the writer mutex: maintenance writes serialize
// against each other, while searches keep running against the last published
// snapshot and flip to fn's result atomically when the method publishes.  It
// honours the close fence — a maintenance write that acquires the mutex
// after Engine.Close has drained must not touch the flushed, audited, closed
// storage underneath.
func (ti *TextIndex) writeLocked(fn func() error) error {
	ti.writerMu.Lock()
	defer ti.writerMu.Unlock()
	if ti.closed {
		return fmt.Errorf("core: text index %q: %w", ti.name, ErrClosed)
	}
	return fn()
}

// enqueue buffers an update when batch mode is active, reporting whether it
// took ownership of the event.
func (ti *TextIndex) enqueue(u index.Update) bool {
	ti.mu.Lock()
	defer ti.mu.Unlock()
	if !ti.batching {
		return false
	}
	ti.pending = append(ti.pending, u)
	return true
}

// beginBatch defers maintenance events until flushBatch.
func (ti *TextIndex) beginBatch() {
	ti.mu.Lock()
	ti.batching = true
	ti.mu.Unlock()
}

// flushBatch applies the deferred events through the method's batched write
// pipeline.  The writer mutex is acquired *before* batching is cleared: an
// eager maintenance event that observes batching == false can therefore
// only run its own writeLocked after this flush's apply completes, so the
// batch's older ops can never be overtaken by a newer event (which would
// permanently diverge a content diff).
func (ti *TextIndex) flushBatch() error {
	ti.writerMu.Lock()
	defer ti.writerMu.Unlock()
	ti.mu.Lock()
	ops := ti.pending
	ti.pending = nil
	ti.batching = false
	ti.mu.Unlock()
	if ti.closed {
		if len(ops) == 0 {
			return nil
		}
		return fmt.Errorf("core: text index %q: %w, %d batched updates dropped", ti.name, ErrClosed, len(ops))
	}
	if len(ops) == 0 {
		return nil
	}
	return ti.method.ApplyUpdates(ops)
}

// ApplyUpdates feeds a prepared batch straight into the method's batched
// write pipeline.  Bulk ingestion paths (benchmarks, loaders) use it to
// bypass the per-row change plumbing.  The batch holds the index write lock
// for its duration, so concurrent searches see either none or all of it.
func (ti *TextIndex) ApplyUpdates(batch []index.Update) error {
	return ti.writeLocked(func() error { return ti.method.ApplyUpdates(batch) })
}

// ApplyBatch runs fn — typically a burst of structured-data mutations —
// with index maintenance deferred: the score and content changes fn
// produces are collected per text index and applied through each method's
// batched write pipeline (Method.ApplyUpdates) when fn returns, instead of
// one B+-tree round-trip per change.  The final index states are identical
// to applying the changes eagerly, with two documented nuances:
//
//   - searches issued inside fn see the index as of the batch's start,
//     since maintenance has not been applied yet;
//   - a deferred score update that ends up crossing its method's rewrite
//     threshold reads the document's tokens at flush time, not at event
//     time, so a batch that scores and then edits/deletes the same row
//     writes that document's short-list postings from the end-of-batch
//     content (query results stay correct either way — Theorems 1 and 2
//     hold for any staleness — but TermScore weights can differ from the
//     eager interleaving).  Capturing tokens per deferred score change
//     would tokenize every updated document and forfeit the batching win,
//     so the batch trades that equivalence edge for throughput.
//
// Errors from fn and from the flushes are joined; the flush runs even if
// fn panics, so the indexes never stay in deferred mode.
//
// ApplyBatch calls serialize against each other (batches from concurrent
// goroutines apply one after another, each atomically); fn must not call
// ApplyBatch recursively.
//
// On a durable engine, concurrent callers group-commit: a batch that sees
// further batches queued behind it defers its pagefile Commit to one of
// them and waits for that covering commit instead of issuing its own, so N
// concurrent ApplyBatch calls — the write fan-in of an N-shard cluster in
// particular — cost far fewer than N fsync pairs.  Durability is unchanged:
// ApplyBatch still only returns once a commit covering its writes is on
// disk (pagefile.Commit persists every staged page, so a successor's commit
// carries its predecessors' pages).  The group size is bounded so a steady
// stream of writers cannot defer commits indefinitely.
func (e *Engine) ApplyBatch(fn func() error) (err error) {
	return e.ApplyBatchChecked(nil, fn)
}

// ApplyBatchChecked is ApplyBatch with an admission check: pre (if non-nil)
// runs under the batch lock after the closed check but before any mutation
// or index batching begins.  If pre fails, the batch is rejected atomically
// — fn never runs, no table row moves, no index event queues, and nothing
// commits.  The tenant quota path uses this: pre inspects current usage
// (stable under the batch lock, since every mutation path holds it) against
// the batch's projected footprint, so an over-quota batch from one tenant
// bounces without disturbing batches from any other tenant queued behind it.
func (e *Engine) ApplyBatchChecked(pre func() error, fn func() error) (err error) {
	e.commitWaiters.Add(1)
	e.batchMu.Lock()
	e.commitWaiters.Add(-1)
	// waitSeq != 0 means this batch deferred its commit; after batchMu is
	// released the final deferred func below blocks until a successor's
	// commit covers it.
	var waitSeq uint64
	defer func() {
		if waitSeq != 0 {
			if cerr := e.waitForCommit(waitSeq); cerr != nil {
				err = errors.Join(err, cerr)
			}
		}
	}()
	defer e.batchMu.Unlock()
	if e.closed {
		// The engine-level fence: without it, a batch that lost the race
		// against Close would run fn's base-table mutations against closed
		// storage (past the flush and pin audit) and only the index flush
		// afterwards would report the closed error.
		return fmt.Errorf("core: %w", ErrClosed)
	}
	if pre != nil {
		if err := pre(); err != nil {
			return err
		}
	}
	e.mu.RLock()
	indexes := make([]*TextIndex, 0, len(e.indexes))
	for _, ti := range e.indexes {
		indexes = append(indexes, ti)
	}
	e.mu.RUnlock()
	for _, ti := range indexes {
		ti.beginBatch()
	}
	defer func() {
		errs := []error{err}
		for _, ti := range indexes {
			errs = append(errs, ti.flushBatch())
		}
		// Durable engines commit the whole batch — base-table pages, index
		// pages and the refreshed catalog — as one atomic WAL transaction;
		// when ApplyBatch returns, the batch either survives any crash or
		// (on commit error) is reported failed.  With other callers queued,
		// the commit is left to one of them (group commit) and waited for
		// outside the batch lock.
		if e.durable {
			e.batchSeq++
			if e.commitWaiters.Load() > 0 && e.batchSeq-e.committedSeq() < maxCommitGroup {
				waitSeq = e.batchSeq
			} else {
				errs = append(errs, e.commitUpTo(e.batchSeq))
			}
		}
		err = errors.Join(errs...)
	}()
	return fn()
}

// maxCommitGroup bounds how many batches one pagefile Commit may cover.
// Without the bound, a steady stream of arriving writers would let every
// batch defer to its successor and no commit would ever run.
const maxCommitGroup = 32

// commitUpTo runs commitDurable and records that every batch up to seq is
// covered, waking deferred ApplyBatch callers.  Caller must hold batchMu.
func (e *Engine) commitUpTo(seq uint64) error {
	err := e.commitDurable()
	e.commitMu.Lock()
	if seq > e.commitSeq {
		e.commitSeq = seq
		e.commitErr = err
	}
	e.commitMu.Unlock()
	e.commitCond.Broadcast()
	return err
}

// committedSeq reports the newest batch sequence covered by a finished
// commit.
func (e *Engine) committedSeq() uint64 {
	e.commitMu.Lock()
	defer e.commitMu.Unlock()
	return e.commitSeq
}

// waitForCommit blocks until a commit covering batch seq has finished and
// returns that commit's error.  (If several commits land before the waiter
// wakes, the error reported is the newest one's — a failure there is
// over-reported to older batches, never under-reported, since a failed
// covering commit always records its error before waking anyone.)
func (e *Engine) waitForCommit(seq uint64) error {
	e.commitMu.Lock()
	defer e.commitMu.Unlock()
	for e.commitSeq < seq {
		e.commitCond.Wait()
	}
	return e.commitErr
}

// onBaseRowChange reacts to text-column edits on the indexed relation.
func (ti *TextIndex) onBaseRowChange(c relation.Change) {
	if c.Kind != relation.ChangeUpdate || c.Old == nil || c.New == nil {
		return
	}
	tbl, err := ti.engine.db.Table(ti.table)
	if err != nil {
		ti.recordErr(err)
		return
	}
	colIdx, err := tbl.Schema().ColumnIndex(ti.column)
	if err != nil {
		ti.recordErr(err)
		return
	}
	oldText := c.Old[colIdx].S
	newText := c.New[colIdx].S
	if oldText == newText {
		return
	}
	oldTokens := ti.engine.analyzer.Tokenize(oldText)
	newTokens := ti.engine.analyzer.Tokenize(newText)
	if ti.enqueue(index.Update{Op: index.ContentOp, Doc: index.DocID(c.PK), OldTokens: oldTokens, NewTokens: newTokens}) {
		return
	}
	ti.recordErr(ti.writeLocked(func() error { return ti.method.UpdateContent(index.DocID(c.PK), oldTokens, newTokens) }))
}

func (ti *TextIndex) tokensOf(pk int64) ([]string, error) {
	tbl, err := ti.engine.db.Table(ti.table)
	if err != nil {
		return nil, err
	}
	colIdx, err := tbl.Schema().ColumnIndex(ti.column)
	if err != nil {
		return nil, err
	}
	row, err := tbl.Get(pk)
	if err != nil {
		return nil, err
	}
	return ti.engine.analyzer.Tokenize(row[colIdx].S), nil
}

// --- search --------------------------------------------------------------------

// SearchRequest is a keyword search against one text index.
type SearchRequest struct {
	// Query is the raw query text; it is analyzed with the engine's analyzer.
	Query string
	// K is the number of results wanted (the paper's FETCH TOP k).
	K int
	// Disjunctive selects OR semantics; the default is AND.
	Disjunctive bool
	// WithTermScores combines TF-IDF term scores with the SVR score
	// (requires a TermScore method).
	WithTermScores bool
	// LoadRows also fetches the full base-table rows of the results.
	LoadRows bool
	// Global, when set, overrides the collection statistics behind IDF with
	// cluster-wide values (total documents, per-term df summed over every
	// shard).  A Cluster fills it so each shard ranks with the same idf a
	// single engine over the whole corpus would use; DF must align with the
	// distinct analyzed terms of Query, which TermStats produces for the
	// same query text.
	Global *index.GlobalStats
}

// SearchHit is one ranked document.
type SearchHit struct {
	// PK is the primary key of the base-table row.
	PK int64
	// Score is the ranking score (SVR or combined).
	Score float64
	// Row is the base-table row when SearchRequest.LoadRows is set.
	Row relation.Row
}

// SearchResult carries the hits plus the work counters of the underlying
// query algorithm.
type SearchResult struct {
	Hits            []SearchHit
	PostingsScanned int
	Stopped         bool
	// Partial marks a scatter-gather result that is missing one or more
	// shards' contributions (the shards were down or timed out).  A
	// single-engine Search never sets it.
	Partial bool
}

// Search runs a keyword query and returns the top-k rows ranked by the
// latest structured-value scores.
//
// Search is safe to call from many goroutines concurrently and never blocks
// behind maintenance: the top-k evaluation runs entirely against the
// method's published snapshot (pinning its epoch so superseded pages stay
// valid), so a search observes the index either before or after a write
// batch, never mid-flight, without waiting for the batch.  The only lock
// held is the read side of the shutdown fence, whose write side only
// Engine.Close takes.
func (ti *TextIndex) Search(req SearchRequest) (*SearchResult, error) {
	if req.K < 1 {
		return nil, fmt.Errorf("core: %w: k = %d must be positive", ErrInvalidRequest, req.K)
	}
	terms := ti.engine.analyzer.Tokenize(req.Query)
	if len(terms) == 0 {
		return nil, fmt.Errorf("core: %w: query contains no indexable terms", ErrInvalidRequest)
	}
	terms = text.DistinctTerms(terms)
	ti.rw.RLock()
	defer ti.rw.RUnlock()
	if ti.closed {
		if ti.dropped {
			// The index was dropped while this search raced it: report
			// not-found (the caller's 404), not a shutdown error — the
			// engine is alive, the index just no longer exists.
			return nil, fmt.Errorf("core: no text index named %q: %w", ti.name, relation.ErrNotFound)
		}
		return nil, fmt.Errorf("core: text index %q: %w", ti.name, ErrClosed)
	}
	qr, err := ti.method.TopK(index.Query{
		Terms:          terms,
		K:              req.K,
		Disjunctive:    req.Disjunctive,
		WithTermScores: req.WithTermScores,
		Global:         req.Global,
	})
	if err != nil {
		return nil, err
	}
	res := &SearchResult{PostingsScanned: qr.PostingsScanned, Stopped: qr.Stopped}
	res.Hits = make([]SearchHit, len(qr.Results))
	for i, r := range qr.Results {
		res.Hits[i] = SearchHit{PK: r.Doc, Score: r.Score}
	}
	if req.LoadRows && len(qr.Results) > 0 {
		// Join the ranked IDs back to the base rows in one batch so the
		// probes hit the row tree in key order.  The ranked IDs come from
		// the pinned snapshot while the join reads the live table, so a
		// concurrent batch can land between ranking and join: a hit whose
		// row the batch deleted joins to a nil Row, and base-table
		// mutations inside Engine.ApplyBatch commit before the index flush
		// either way.  Callers using LoadRows concurrently with writes must
		// treat a nil Row as "deleted since ranking".
		tbl, err := ti.engine.db.Table(ti.table)
		if err != nil {
			return nil, err
		}
		pks := make([]int64, len(qr.Results))
		for i, r := range qr.Results {
			pks[i] = r.Doc
		}
		rows, err := tbl.GetMany(pks)
		if err != nil {
			return nil, err
		}
		for i, row := range rows {
			res.Hits[i].Row = row
		}
	}
	return res, nil
}

// TermStats analyzes query exactly like Search and reports the index's
// collection statistics for the resulting terms: the snapshot document
// count and each term's document frequency.  A cluster sums these across
// shards into the index.GlobalStats it passes back via SearchRequest.Global
// — tokenization is deterministic, so every shard (and the eventual Search
// calls) derives the same term list from the same query text and the df
// vector stays aligned.
func (ti *TextIndex) TermStats(query string) (numDocs int64, df []int64, err error) {
	terms := ti.engine.analyzer.Tokenize(query)
	if len(terms) == 0 {
		return 0, nil, fmt.Errorf("core: %w: query contains no indexable terms", ErrInvalidRequest)
	}
	terms = text.DistinctTerms(terms)
	ti.rw.RLock()
	defer ti.rw.RUnlock()
	if ti.closed {
		if ti.dropped {
			return 0, nil, fmt.Errorf("core: no text index named %q: %w", ti.name, relation.ErrNotFound)
		}
		return 0, nil, fmt.Errorf("core: text index %q: %w", ti.name, ErrClosed)
	}
	return ti.method.TermStats(terms)
}

// SearchIndex looks up the named text index and runs the query on it; it is
// the Engine-level entry point the shard scatter-gather path (and any other
// caller holding only an engine) uses.
func (e *Engine) SearchIndex(name string, req SearchRequest) (*SearchResult, error) {
	ti, err := e.TextIndex(name)
	if err != nil {
		return nil, err
	}
	return ti.Search(req)
}

// TermStats looks up the named text index and reports its collection
// statistics for the query's analyzed terms (see TextIndex.TermStats).
func (e *Engine) TermStats(name, query string) (int64, []int64, error) {
	ti, err := e.TextIndex(name)
	if err != nil {
		return 0, nil, err
	}
	return ti.TermStats(query)
}

// Name returns the index name.
func (ti *TextIndex) Name() string { return ti.name }

// Table returns the name of the indexed base table.
func (ti *TextIndex) Table() string { return ti.table }

// Column returns the name of the indexed text column.
func (ti *TextIndex) Column() string { return ti.column }

// Method returns the underlying index method (exposed for benchmarks and
// diagnostics).
func (ti *TextIndex) Method() index.Method { return ti.method }

// View returns the Score materialized view backing this index.
func (ti *TextIndex) View() *view.ScoreView { return ti.view }

// Stats returns the underlying index statistics.  It is lock-free for the
// caller: the method snapshots its structure sizes from the published
// snapshot under an epoch guard, so a stats scrape returns promptly even
// while a long ApplyBatch or merge holds the writer mutex.  After
// Engine.Close (once the method is drained) it returns a zero-valued Stats
// bar the method name instead of walking trees over a closed page file.
func (ti *TextIndex) Stats() index.Stats {
	return ti.method.Stats()
}

// MergeShortLists runs the periodic offline merge on the underlying index:
// the long inverted lists are rebuilt from the current scores and contents
// and the short lists emptied.  Deployments run this during maintenance
// windows; the paper excludes it from the measured update costs (§5.1).
// The merge holds only the writer mutex: searches keep serving the
// pre-merge snapshot for its whole duration and flip to the merged index
// atomically when it publishes.
func (ti *TextIndex) MergeShortLists() error {
	return ti.writeLocked(func() error { return ti.method.MergeShortLists() })
}

// ScoreOf returns the current SVR score of a document.
func (ti *TextIndex) ScoreOf(pk int64) (float64, bool, error) { return ti.view.Score(pk) }

// --- document source over a relation --------------------------------------------

// tableDocSource adapts a relational table's text column to index.DocSource.
type tableDocSource struct {
	table    *relation.Table
	colIdx   int
	analyzer *text.Analyzer
}

func (s *tableDocSource) NumDocs() int { return s.table.Len() }

func (s *tableDocSource) ForEach(fn func(doc postings.DocID, tokens []string) error) error {
	var innerErr error
	err := s.table.Scan(func(row relation.Row) bool {
		tokens := s.analyzer.Tokenize(row[s.colIdx].S)
		if innerErr = fn(postings.DocID(row[0].I), tokens); innerErr != nil {
			return false
		}
		return true
	})
	if innerErr != nil {
		return innerErr
	}
	return err
}

func (s *tableDocSource) Tokens(doc postings.DocID) ([]string, error) {
	row, err := s.table.Get(int64(doc))
	if err != nil {
		return nil, err
	}
	return s.analyzer.Tokenize(row[s.colIdx].S), nil
}
