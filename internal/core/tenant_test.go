package core

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"svrdb/internal/relation"
	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
	"svrdb/internal/view"
)

func tenantDataSchema(name string) relation.Schema {
	return relation.Schema{
		Name: name,
		Columns: []relation.Column{
			{Name: "id", Kind: relation.KindInt64},
			{Name: "body", Kind: relation.KindString},
			{Name: "val", Kind: relation.KindFloat64},
		},
	}
}

func tenantRow(id int64) relation.Row {
	return relation.Row{relation.Int(id), relation.Str("alpha beta common"), relation.Float(float64(id % 97))}
}

func TestTenantAPIValidation(t *testing.T) {
	db := relation.NewDB(buffer.MustNew(pagefile.MustNewMem(pagefile.DefaultPageSize), 1024))
	e := NewEngine(db, Options{})
	defer e.Close()

	for _, bad := range []string{"", "a/b"} {
		if err := e.CreateTenant(bad, TenantQuota{}); !errors.Is(err, ErrInvalidRequest) {
			t.Errorf("CreateTenant(%q) = %v, want ErrInvalidRequest", bad, err)
		}
	}
	if err := e.CreateTenant("neg", TenantQuota{MaxRows: -1}); !errors.Is(err, ErrInvalidRequest) {
		t.Errorf("negative quota accepted: %v", err)
	}
	if err := e.CreateTenant("acme", TenantQuota{MaxRows: 5}); err != nil {
		t.Fatal(err)
	}
	if q, ok := e.TenantQuotaOf("acme"); !ok || q.MaxRows != 5 {
		t.Errorf("TenantQuotaOf(acme) = %+v/%v, want MaxRows 5", q, ok)
	}
	// Re-registering replaces the quota.
	if err := e.CreateTenant("acme", TenantQuota{MaxRows: 9}); err != nil {
		t.Fatal(err)
	}
	if q, _ := e.TenantQuotaOf("acme"); q.MaxRows != 9 {
		t.Errorf("re-registered quota = %+v, want MaxRows 9", q)
	}
	if names := e.TenantNames(); len(names) != 1 || names[0] != "acme" {
		t.Errorf("TenantNames = %v", names)
	}

	for name, want := range map[string]string{
		"acme/Docs": "acme", "Docs": "", "a/b/c": "a", "/x": "",
	} {
		if got := TenantOf(name); got != want {
			t.Errorf("TenantOf(%q) = %q, want %q", name, got, want)
		}
	}
}

// TestTenantQuotaAtomicRejection is the single-threaded half of the quota
// property: a batch that would push a tenant past its quota is rejected as
// a unit — no op in it applies, usage stays exactly where it was, and
// another tenant's identical batch still lands.
func TestTenantQuotaAtomicRejection(t *testing.T) {
	db := relation.NewDB(buffer.MustNew(pagefile.MustNewMem(pagefile.DefaultPageSize), 4096))
	e := NewEngine(db, Options{})
	defer e.Close()

	if err := e.CreateTenant("small", TenantQuota{MaxRows: 4}); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateTenant("big", TenantQuota{}); err != nil {
		t.Fatal(err)
	}
	smallTbl, err := db.CreateTable(tenantDataSchema("small/Data"))
	if err != nil {
		t.Fatal(err)
	}
	bigTbl, err := db.CreateTable(tenantDataSchema("big/Data"))
	if err != nil {
		t.Fatal(err)
	}

	insertN := func(tbl *relation.Table, tenant string, from, n int) error {
		rows := int64(n)
		var bytes int64
		for i := 0; i < n; i++ {
			bytes += int64(EncodedRowSize(tenantRow(int64(from + i))))
		}
		return e.ApplyBatchChecked(
			func() error { return e.CheckTenantQuota(tenant, rows, bytes) },
			func() error {
				for i := 0; i < n; i++ {
					if err := tbl.Insert(tenantRow(int64(from + i))); err != nil {
						return err
					}
				}
				return nil
			})
	}

	if err := insertN(smallTbl, "small", 1, 3); err != nil {
		t.Fatalf("within-quota batch rejected: %v", err)
	}
	// 3 rows in, quota 4: a 2-row batch must reject atomically even though
	// its first row alone would fit.
	err = insertN(smallTbl, "small", 10, 2)
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota batch error = %v, want ErrQuotaExceeded", err)
	}
	if got := smallTbl.Len(); got != 3 {
		t.Fatalf("rejected batch partially applied: %d rows, want 3", got)
	}
	if u := e.TenantUsageOf("small"); u.Rows != 3 {
		t.Fatalf("usage after rejection = %+v, want 3 rows", u)
	}
	// The unlimited tenant is undisturbed by its neighbour's rejection.
	if err := insertN(bigTbl, "big", 1, 50); err != nil {
		t.Fatalf("unlimited tenant batch rejected: %v", err)
	}
	// The last row of the quota is still reachable.
	if err := insertN(smallTbl, "small", 20, 1); err != nil {
		t.Fatalf("filling the final quota slot failed: %v", err)
	}
	if err := insertN(smallTbl, "small", 30, 1); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("insert past a full quota = %v, want ErrQuotaExceeded", err)
	}

	// Byte quotas bind too: a tenant with ample rows but tight bytes rejects
	// on the byte axis.
	if err := e.CreateTenant("bytes", TenantQuota{MaxBytes: int64(3 * EncodedRowSize(tenantRow(1)))}); err != nil {
		t.Fatal(err)
	}
	bytesTbl, err := db.CreateTable(tenantDataSchema("bytes/Data"))
	if err != nil {
		t.Fatal(err)
	}
	if err := insertN(bytesTbl, "bytes", 1, 3); err != nil {
		t.Fatalf("within-byte-quota batch rejected: %v", err)
	}
	if err := insertN(bytesTbl, "bytes", 10, 1); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-byte-quota batch = %v, want ErrQuotaExceeded", err)
	}
}

// TestTenantQuotaPropertyInterleaved is the concurrent half: N tenants with
// tight quotas push interleaved random-size batches from separate
// goroutines.  The invariant is bookkeeping exactness under contention —
// every accepted batch is fully present, every rejected batch contributed
// nothing, no tenant ends over quota, and one tenant exhausting its quota
// never blocks or corrupts another's admissions.
func TestTenantQuotaPropertyInterleaved(t *testing.T) {
	db := relation.NewDB(buffer.MustNew(pagefile.MustNewMem(pagefile.DefaultPageSize), 8192))
	e := NewEngine(db, Options{})
	defer e.Close()

	const nTenants = 4
	const batchesPer = 40
	quotas := []TenantQuota{
		{MaxRows: 25},
		{MaxRows: 60},
		{MaxBytes: 2048},
		{}, // unlimited control tenant
	}
	tables := make([]*relation.Table, nTenants)
	for i := 0; i < nTenants; i++ {
		name := fmt.Sprintf("t%d", i)
		if err := e.CreateTenant(name, quotas[i]); err != nil {
			t.Fatal(err)
		}
		tbl, err := db.CreateTable(tenantDataSchema(name + "/Data"))
		if err != nil {
			t.Fatal(err)
		}
		tables[i] = tbl
	}

	accepted := make([]int64, nTenants)
	rejected := make([]int64, nTenants)
	var wg sync.WaitGroup
	for ti := 0; ti < nTenants; ti++ {
		ti := ti
		wg.Add(1)
		go func() {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", ti)
			rng := rand.New(rand.NewSource(int64(1000 + ti)))
			for b := 0; b < batchesPer; b++ {
				n := 1 + rng.Intn(5)
				from := ti*1_000_000 + b*10
				rows := int64(n)
				var bytes int64
				for i := 0; i < n; i++ {
					bytes += int64(EncodedRowSize(tenantRow(int64(from + i))))
				}
				err := e.ApplyBatchChecked(
					func() error { return e.CheckTenantQuota(tenant, rows, bytes) },
					func() error {
						for i := 0; i < n; i++ {
							if err := tables[ti].Insert(tenantRow(int64(from + i))); err != nil {
								return err
							}
						}
						return nil
					})
				switch {
				case err == nil:
					accepted[ti] += int64(n)
				case errors.Is(err, ErrQuotaExceeded):
					rejected[ti] += int64(n)
				default:
					t.Errorf("tenant %s batch %d: unexpected error %v", tenant, b, err)
					return
				}
			}
		}()
	}
	wg.Wait()

	for ti := 0; ti < nTenants; ti++ {
		name := fmt.Sprintf("t%d", ti)
		u := e.TenantUsageOf(name)
		if u.Rows != accepted[ti] {
			t.Errorf("tenant %s: usage %d rows != %d accepted (atomicity violated)", name, u.Rows, accepted[ti])
		}
		if int64(tables[ti].Len()) != accepted[ti] {
			t.Errorf("tenant %s: table holds %d rows, accepted %d", name, tables[ti].Len(), accepted[ti])
		}
		q := quotas[ti]
		if q.MaxRows > 0 && u.Rows > q.MaxRows {
			t.Errorf("tenant %s: %d rows exceeds quota %d", name, u.Rows, q.MaxRows)
		}
		if q.MaxBytes > 0 && u.Bytes > q.MaxBytes {
			t.Errorf("tenant %s: %d bytes exceeds quota %d", name, u.Bytes, q.MaxBytes)
		}
	}
	// The bounded tenants must actually have hit their quotas (otherwise the
	// test never exercised rejection), and the unlimited tenant must never
	// have been rejected.
	for ti := 0; ti < nTenants-1; ti++ {
		if rejected[ti] == 0 {
			t.Errorf("tenant t%d: no batch was ever rejected; quota too loose for the property to bite", ti)
		}
	}
	if rejected[nTenants-1] != 0 {
		t.Errorf("unlimited tenant had %d rows rejected", rejected[nTenants-1])
	}
	if accepted[nTenants-1] == 0 {
		t.Error("unlimited tenant accepted nothing")
	}
}

// TestTenantNamespaceSearchIsolation builds an index per tenant namespace
// over identically-named logical tables and checks searches stay inside the
// tenant's slice.
func TestTenantNamespaceSearchIsolation(t *testing.T) {
	db := relation.NewDB(buffer.MustNew(pagefile.MustNewMem(pagefile.DefaultPageSize), 4096))
	e := NewEngine(db, Options{})
	defer e.Close()
	spec := func(table string) view.Spec {
		return view.Spec{Components: []view.Component{view.OwnColumn(table, "val")}}
	}
	for ti, body := range map[string]string{"a": "alpha shared", "b": "beta shared"} {
		tbl, err := db.CreateTable(tenantDataSchema(ti + "/Docs"))
		if err != nil {
			t.Fatal(err)
		}
		if err := tbl.Insert(relation.Row{relation.Int(1), relation.Str(body), relation.Float(1)}); err != nil {
			t.Fatal(err)
		}
		if _, err := e.CreateTextIndex(ti+"/docs", ti+"/Docs", "body", IndexOptions{
			Method: MethodChunk, Spec: spec(ti + "/Docs"),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for ti, ownTerm := range map[string]string{"a": "alpha", "b": "beta"} {
		idx, err := e.TextIndex(ti + "/docs")
		if err != nil {
			t.Fatal(err)
		}
		res, err := idx.Search(SearchRequest{Query: "shared", K: 10})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Hits) != 1 {
			t.Errorf("tenant %s: %d hits for the shared term, want only its own document", ti, len(res.Hits))
		}
		res, err = idx.Search(SearchRequest{Query: ownTerm, K: 10})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Hits) != 1 {
			t.Errorf("tenant %s: own term %q got %d hits, want 1", ti, ownTerm, len(res.Hits))
		}
	}
}

// TestTenantPersistence checks tenant registrations travel through the gob
// catalog: quotas and tenant-namespaced tables/indexes survive a close and
// reopen, and enforcement picks up where it left off.
func TestTenantPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.svrdb")
	spec := view.Spec{Components: []view.Component{view.OwnColumn("acme/Docs", "val")}}
	opts := OpenOptions{Specs: map[string]view.Spec{"acme-val": spec}}

	e, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CreateTenant("acme", TenantQuota{MaxRows: 3, MaxBytes: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	tbl, err := e.DB().CreateTable(tenantDataSchema("acme/Docs"))
	if err != nil {
		t.Fatal(err)
	}
	err = e.ApplyBatchChecked(
		func() error { return e.CheckTenantQuota("acme", 2, 256) },
		func() error {
			for id := int64(1); id <= 2; id++ {
				if err := tbl.Insert(tenantRow(id)); err != nil {
					return err
				}
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateTextIndex("acme/docs", "acme/Docs", "body", IndexOptions{
		Method: MethodChunk, SpecName: "acme-val",
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path, opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	q, ok := re.TenantQuotaOf("acme")
	if !ok || q.MaxRows != 3 || q.MaxBytes != 1<<20 {
		t.Fatalf("reopened quota = %+v/%v, want MaxRows 3 MaxBytes 1MiB", q, ok)
	}
	if u := re.TenantUsageOf("acme"); u.Rows != 2 || u.Bytes == 0 {
		t.Fatalf("reopened usage = %+v, want 2 rows with nonzero bytes", u)
	}
	idx, err := re.TextIndex("acme/docs")
	if err != nil {
		t.Fatalf("tenant index lost on reopen: %v", err)
	}
	if res, err := idx.Search(SearchRequest{Query: "alpha", K: 10}); err != nil || len(res.Hits) != 2 {
		t.Fatalf("reopened tenant index search = %v hits, err %v; want 2 hits", len(res.Hits), err)
	}
	// Enforcement resumes against the recovered usage: one slot left.
	rtbl, err := re.DB().Table("acme/Docs")
	if err != nil {
		t.Fatal(err)
	}
	insertOne := func(id int64) error {
		return re.ApplyBatchChecked(
			func() error { return re.CheckTenantQuota("acme", 1, int64(EncodedRowSize(tenantRow(id)))) },
			func() error { return rtbl.Insert(tenantRow(id)) })
	}
	if err := insertOne(3); err != nil {
		t.Fatalf("final quota slot rejected after reopen: %v", err)
	}
	if err := insertOne(4); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("insert past quota after reopen = %v, want ErrQuotaExceeded", err)
	}
	if !strings.Contains(fmt.Sprint(insertOne(5)), "acme") {
		t.Error("quota error does not name the tenant")
	}
}
