package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"svrdb/internal/index"
	"svrdb/internal/relation"
	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
	"svrdb/internal/text"
	"svrdb/internal/topk"
	"svrdb/internal/view"
)

// This file implements the sharded engine: a Cluster owns N Engines,
// routes writes to exactly one shard by the registered Partitioner over
// each row's routing key, and fans searches out over every shard, merging
// the per-shard top-k through the same topk.Heap the methods use so the
// merged ranking (ids, scores, order) is byte-identical to a single engine
// holding the whole corpus.
//
// The identity argument: every document lives on exactly one shard, so a
// document in the global top-k is necessarily in its own shard's local
// top-k (its score does not depend on which shard computes it once the
// collection statistics are pinned — see GlobalStats), and the k best of
// the union of local top-k lists is exactly the global top-k.  Plain SVR
// ranking uses no collection statistics at all; WithTermScores ranking
// does (IDF), so the scatter path first sums per-shard TermStats into one
// GlobalStats and pins it into every shard's query, making each shard's
// TFIDF arithmetic bit-identical to the single-engine computation.
// topk.Heap's deterministic tie-break (score desc, doc asc) does the rest.

// ShardSearcher is the read-side transport of one shard as the
// scatter-gather path consumes it.  *Engine implements it for in-process
// shards; the serving layer implements it over HTTP for remote ones.
type ShardSearcher interface {
	// SearchIndex runs a query against the shard's named text index.
	SearchIndex(index string, req SearchRequest) (*SearchResult, error)
	// TermStats reports the shard's document count and the per-term
	// document frequencies for the query's analyzed terms, in the same
	// deterministic term order every shard derives from the query text.
	TermStats(index, query string) (numDocs int64, df []int64, err error)
}

// ScatterSearch fans one query out over shards and merges the per-shard
// top-k into the global top-k.  Failed shards degrade the result instead
// of failing it: their contribution is missing and Partial is set.  Only
// when every shard fails does ScatterSearch return an error (the first
// one, so an invalid request reports as such rather than as "all down").
func ScatterSearch(shards []ShardSearcher, name string, req SearchRequest) (*SearchResult, error) {
	n := len(shards)
	if n == 0 {
		return nil, errors.New("core: scatter search over zero shards")
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	shardErrs := make([]error, n)

	// Phase 1 (WithTermScores only): pin global collection statistics so
	// every shard ranks with the single-engine idf.  A shard that cannot
	// report stats is excluded from the search phase — using its postings
	// without its df contribution would perturb every shard's idf.
	if req.WithTermScores && req.Global == nil {
		numDocs := make([]int64, n)
		dfs := make([][]int64, n)
		var wg sync.WaitGroup
		for i := range shards {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				numDocs[i], dfs[i], shardErrs[i] = shards[i].TermStats(name, req.Query)
			}(i)
		}
		wg.Wait()
		global := &index.GlobalStats{}
		for i := range shards {
			if shardErrs[i] != nil {
				alive[i] = false
				continue
			}
			if global.DF == nil {
				global.DF = make([]int64, len(dfs[i]))
			} else if len(dfs[i]) != len(global.DF) {
				alive[i] = false
				shardErrs[i] = fmt.Errorf("core: shard %d reports %d terms, others %d", i, len(dfs[i]), len(global.DF))
				continue
			}
			global.NumDocs += numDocs[i]
			for t, d := range dfs[i] {
				global.DF[t] += d
			}
		}
		req.Global = global
	}

	results := make([]*SearchResult, n)
	var wg sync.WaitGroup
	for i := range shards {
		if !alive[i] {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], shardErrs[i] = shards[i].SearchIndex(name, req)
		}(i)
	}
	wg.Wait()

	merged := &SearchResult{}
	heap := topk.New(req.K)
	byDoc := make(map[int64]SearchHit)
	ok := 0
	for _, res := range results {
		if res == nil {
			continue
		}
		ok++
		merged.PostingsScanned += res.PostingsScanned
		merged.Stopped = merged.Stopped || res.Stopped
		merged.Partial = merged.Partial || res.Partial
		for _, hit := range res.Hits {
			if heap.Add(hit.PK, hit.Score) {
				byDoc[hit.PK] = hit
			}
		}
	}
	if ok == 0 {
		for _, err := range shardErrs {
			if err != nil {
				return nil, err
			}
		}
		return nil, errors.New("core: scatter search produced no shard results")
	}
	if ok < n {
		merged.Partial = true
	}
	ranked := heap.Results()
	merged.Hits = make([]SearchHit, len(ranked))
	for i, r := range ranked {
		hit := byDoc[r.Doc]
		// Doc and Score come from the heap (the canonical merge), the Row
		// join from whichever shard owned the document.
		merged.Hits[i] = SearchHit{PK: r.Doc, Score: r.Score, Row: hit.Row}
	}
	return merged, nil
}

// --- cluster --------------------------------------------------------------------

// ClusterOptions configures NewCluster / OpenCluster.
type ClusterOptions struct {
	// Shards is the number of engine shards.  Required for NewCluster and
	// for the first OpenCluster of a directory; a reopen takes the count
	// from the manifest and rejects a conflicting non-zero value here.
	Shards int
	// Partitioner names the registered write partitioner (default "hash").
	// Persisted in the cluster manifest; a reopen rejects a conflicting
	// name, because repartitioning existing data requires a reshard, not a
	// flag change.
	Partitioner string
	// RoutingColumns overrides the routing key column per table; the
	// default routing key is the primary key (column 0).  A table whose
	// rows must co-locate with a parent table's rows routes on the foreign
	// key instead — e.g. reviews route on their movie id so the per-movie
	// score join stays shard-local.  Persisted in the manifest.
	RoutingColumns map[string]string
	// Analyzer, Specs, PoolPages, PageSize mirror OpenOptions and apply to
	// every shard.  PoolPages is per shard (default 4096).
	Analyzer  *text.Analyzer
	Specs     map[string]view.Spec
	PoolPages int
	PageSize  int
}

// Cluster owns N engine shards plus the routing state that places every
// row on exactly one of them.  Reads (Search, TermStats, stats scrapes)
// fan out and merge; writes route.  All methods are safe for concurrent
// use, with the same per-shard guarantees the Engine documents.
type Cluster struct {
	shards  []*Engine
	part    Partitioner
	routing map[string]string
	dir     string // non-empty for durable clusters
}

// clusterManifest is the durable cluster-level catalog: the shard count and
// partitioning contract that must survive reopen for routing to keep
// finding every row.  Per-shard state lives in each shard's own catalog.
type clusterManifest struct {
	Version        int               `json:"version"`
	Shards         int               `json:"shards"`
	Partitioner    string            `json:"partitioner"`
	RoutingColumns map[string]string `json:"routing_columns,omitempty"`
}

const clusterManifestVersion = 1

// manifestName is the cluster manifest's filename inside the cluster dir.
const manifestName = "cluster.json"

// shardFileName returns the page-file name of shard i.
func shardFileName(i int) string { return fmt.Sprintf("shard-%04d.svrdb", i) }

// NewCluster creates an in-memory cluster of opts.Shards fresh engines,
// each over its own buffer pool and memory-backed page file.
func NewCluster(opts ClusterOptions) (*Cluster, error) {
	if opts.Shards < 1 {
		return nil, fmt.Errorf("core: cluster needs at least 1 shard, got %d", opts.Shards)
	}
	part, err := PartitionerByName(opts.Partitioner)
	if err != nil {
		return nil, err
	}
	poolPages := opts.PoolPages
	if poolPages <= 0 {
		poolPages = 4096
	}
	pageSize := opts.PageSize
	if pageSize <= 0 {
		pageSize = pagefile.DefaultPageSize
	}
	c := &Cluster{part: part, routing: cloneRouting(opts.RoutingColumns)}
	for i := 0; i < opts.Shards; i++ {
		pool := buffer.MustNew(pagefile.MustNewMem(pageSize), poolPages)
		c.shards = append(c.shards, NewEngine(relation.NewDB(pool), Options{Analyzer: opts.Analyzer}))
	}
	return c, nil
}

// OpenCluster creates or reopens a durable cluster rooted at dir: one page
// file per shard plus a cluster.json manifest recording the shard count
// and partitioner.  Reopening validates the options against the manifest —
// the persisted partitioning wins, so a reopened cluster keeps routing
// rows exactly where the original run placed them.
func OpenCluster(dir string, opts ClusterOptions) (*Cluster, error) {
	manifestPath := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(manifestPath)
	switch {
	case err == nil:
		var m clusterManifest
		if err := json.Unmarshal(data, &m); err != nil {
			return nil, fmt.Errorf("core: parse %s: %w", manifestPath, err)
		}
		if m.Version != clusterManifestVersion {
			return nil, fmt.Errorf("core: cluster manifest version %d not supported (want %d)", m.Version, clusterManifestVersion)
		}
		if opts.Shards != 0 && opts.Shards != m.Shards {
			return nil, fmt.Errorf("core: cluster at %s has %d shards, options ask for %d (resharding is not a reopen)", dir, m.Shards, opts.Shards)
		}
		if opts.Partitioner != "" && opts.Partitioner != m.Partitioner {
			return nil, fmt.Errorf("core: cluster at %s is partitioned by %q, options ask for %q", dir, m.Partitioner, opts.Partitioner)
		}
		opts.Shards = m.Shards
		opts.Partitioner = m.Partitioner
		opts.RoutingColumns = m.RoutingColumns
	case os.IsNotExist(err):
		if opts.Shards < 1 {
			return nil, fmt.Errorf("core: cluster needs at least 1 shard, got %d", opts.Shards)
		}
		if opts.Partitioner == "" {
			opts.Partitioner = DefaultPartitioner
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		m := clusterManifest{
			Version:        clusterManifestVersion,
			Shards:         opts.Shards,
			Partitioner:    opts.Partitioner,
			RoutingColumns: opts.RoutingColumns,
		}
		data, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			return nil, err
		}
		// Write-then-rename so a crash mid-write cannot leave a torn
		// manifest masquerading as the cluster's routing contract.
		tmp := manifestPath + ".tmp"
		if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
			return nil, err
		}
		if err := os.Rename(tmp, manifestPath); err != nil {
			return nil, err
		}
	default:
		return nil, err
	}

	part, err := PartitionerByName(opts.Partitioner)
	if err != nil {
		return nil, err
	}
	c := &Cluster{part: part, routing: cloneRouting(opts.RoutingColumns), dir: dir}
	for i := 0; i < opts.Shards; i++ {
		e, err := Open(filepath.Join(dir, shardFileName(i)), OpenOptions{
			Analyzer:  opts.Analyzer,
			Specs:     opts.Specs,
			PoolPages: opts.PoolPages,
			PageSize:  opts.PageSize,
		})
		if err != nil {
			for _, open := range c.shards {
				open.Close()
			}
			return nil, fmt.Errorf("core: open shard %d: %w", i, err)
		}
		c.shards = append(c.shards, e)
	}
	return c, nil
}

func cloneRouting(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// NumShards returns the shard count.
func (c *Cluster) NumShards() int { return len(c.shards) }

// Shard returns shard i's engine (for per-shard stats, tests, backends).
func (c *Cluster) Shard(i int) *Engine { return c.shards[i] }

// Engines returns all shard engines in shard order.
func (c *Cluster) Engines() []*Engine { return append([]*Engine(nil), c.shards...) }

// PartitionerName returns the name of the partitioner routing writes.
func (c *Cluster) PartitionerName() string { return c.part.Name() }

// ShardFor returns the shard owning the given routing key.
func (c *Cluster) ShardFor(key int64) int { return c.part.Shard(key, len(c.shards)) }

// Close closes every shard and joins their errors.
func (c *Cluster) Close() error {
	var errs []error
	for i, e := range c.shards {
		if err := e.Close(); err != nil {
			errs = append(errs, fmt.Errorf("core: close shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// CreateTable creates the table on every shard (schemas are cluster-wide;
// rows are not).
func (c *Cluster) CreateTable(schema relation.Schema) error {
	for i, e := range c.shards {
		if _, err := e.DB().CreateTable(schema); err != nil {
			return fmt.Errorf("core: shard %d: %w", i, err)
		}
	}
	return nil
}

// EnsureIndex creates a secondary index on every shard's copy of the table.
func (c *Cluster) EnsureIndex(table, column string) error {
	for i, e := range c.shards {
		tbl, err := e.DB().Table(table)
		if err != nil {
			return fmt.Errorf("core: shard %d: %w", i, err)
		}
		if err := tbl.EnsureIndex(column); err != nil {
			return fmt.Errorf("core: shard %d: %w", i, err)
		}
	}
	return nil
}

// CreateTextIndex creates the text index on every shard.  Each shard
// builds over its own rows; the scatter-gather Search merges them.
func (c *Cluster) CreateTextIndex(name, table, column string, opts IndexOptions) error {
	for i, e := range c.shards {
		if _, err := e.CreateTextIndex(name, table, column, opts); err != nil {
			return fmt.Errorf("core: shard %d: %w", i, err)
		}
	}
	return nil
}

// routingIndex resolves the routing column's position in the table's
// schema: the configured RoutingColumns entry, defaulting to the primary
// key (column 0).  The column must be an int64 column.
func (c *Cluster) routingIndex(table string) (int, error) {
	tbl, err := c.shards[0].DB().Table(table)
	if err != nil {
		return 0, err
	}
	col, ok := c.routing[table]
	if !ok {
		return 0, nil
	}
	schema := tbl.Schema()
	idx, err := schema.ColumnIndex(col)
	if err != nil {
		return 0, err
	}
	if schema.Columns[idx].Kind != relation.KindInt64 {
		return 0, fmt.Errorf("core: routing column %q of table %q is not an int64 column", col, table)
	}
	return idx, nil
}

// OpKind discriminates cluster write operations.
type OpKind uint8

const (
	// OpInsert inserts Row into Table.
	OpInsert OpKind = iota
	// OpUpdate applies Set to the row with primary key PK.
	OpUpdate
	// OpDelete deletes the row with primary key PK.
	OpDelete
)

// ClusterOp is one write in a routed batch.
type ClusterOp struct {
	Kind  OpKind
	Table string
	// Row is the inserted row (OpInsert).
	Row relation.Row
	// PK addresses the row for OpUpdate / OpDelete.
	PK int64
	// Set carries the updated columns (OpUpdate).
	Set map[string]relation.Value

	// broadcastFound counts owning shards for a broadcast update/delete;
	// ApplyOps sets it on the per-shard copies so not-found on non-owners
	// is tolerated while "no shard owned it" still surfaces.
	broadcastFound *atomic.Int64
}

// Insert routes one row to its owning shard and applies it as a
// single-op batch.
func (c *Cluster) Insert(table string, row relation.Row) error {
	return c.ApplyOps([]ClusterOp{{Kind: OpInsert, Table: table, Row: row}})
}

// ApplyOps routes a batch of writes to their owning shards and applies
// each shard's slice through Engine.ApplyBatch concurrently — the N-shard
// write fan-in the engine's group commit exists for.  Inserts route by the
// routing column's value.  Updates and deletes route by primary key when
// the table routes on its primary key; on tables routed by another column
// (the primary key says nothing about placement) they are broadcast to
// every shard and tolerated as not-found on the shards that do not own the
// row — an op that no shard owned reports ErrNotFound.
//
// Atomicity is per shard, not cluster-wide: each shard applies (and, when
// durable, commits) its slice as one batch, so a mid-batch crash can leave
// some shards' slices applied and others' not.  Ops within one shard's
// slice preserve batch order.
func (c *Cluster) ApplyOps(ops []ClusterOp) error {
	n := len(c.shards)
	perShard := make([][]ClusterOp, n)
	// found counts, per broadcast op, how many shards owned the row.
	type broadcastOp struct {
		op    ClusterOp
		found *atomic.Int64
	}
	var broadcasts []broadcastOp
	routingIdx := map[string]int{}
	for _, op := range ops {
		idx, ok := routingIdx[op.Table]
		if !ok {
			var err error
			idx, err = c.routingIndex(op.Table)
			if err != nil {
				return err
			}
			routingIdx[op.Table] = idx
		}
		switch op.Kind {
		case OpInsert:
			if len(op.Row) <= idx {
				return fmt.Errorf("core: insert into %q: row has %d columns, routing column is #%d", op.Table, len(op.Row), idx)
			}
			shard := c.part.Shard(op.Row[idx].I, n)
			perShard[shard] = append(perShard[shard], op)
		case OpUpdate, OpDelete:
			if idx == 0 {
				shard := c.part.Shard(op.PK, n)
				perShard[shard] = append(perShard[shard], op)
				continue
			}
			b := broadcastOp{op: op, found: &atomic.Int64{}}
			broadcasts = append(broadcasts, b)
			for shard := 0; shard < n; shard++ {
				bop := op
				bop.broadcastFound = b.found
				perShard[shard] = append(perShard[shard], bop)
			}
		default:
			return fmt.Errorf("core: unknown cluster op kind %d", op.Kind)
		}
	}

	shardErrs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if len(perShard[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			shardErrs[i] = c.shards[i].ApplyBatch(func() error {
				return applyShardOps(c.shards[i], perShard[i])
			})
		}(i)
	}
	wg.Wait()

	var errs []error
	for i, err := range shardErrs {
		if err != nil {
			errs = append(errs, fmt.Errorf("core: shard %d: %w", i, err))
		}
	}
	for _, b := range broadcasts {
		if b.found.Load() == 0 {
			errs = append(errs, fmt.Errorf("core: %w: pk %d in table %q on any shard", relation.ErrNotFound, b.op.PK, b.op.Table))
		}
	}
	return errors.Join(errs...)
}

// applyShardOps applies one shard's slice of a routed batch in order.
func applyShardOps(e *Engine, ops []ClusterOp) error {
	for _, op := range ops {
		tbl, err := e.DB().Table(op.Table)
		if err != nil {
			return err
		}
		switch op.Kind {
		case OpInsert:
			if err := tbl.Insert(op.Row); err != nil {
				return err
			}
		case OpUpdate:
			err := tbl.Update(op.PK, op.Set)
			if op.broadcastFound != nil && errors.Is(err, relation.ErrNotFound) {
				continue // another shard owns (or nobody owns) this row
			}
			if err != nil {
				return err
			}
			if op.broadcastFound != nil {
				op.broadcastFound.Add(1)
			}
		case OpDelete:
			err := tbl.Delete(op.PK)
			if op.broadcastFound != nil && errors.Is(err, relation.ErrNotFound) {
				continue
			}
			if err != nil {
				return err
			}
			if op.broadcastFound != nil {
				op.broadcastFound.Add(1)
			}
		}
	}
	return nil
}

// Search fans the query out over every shard and merges the per-shard
// top-k into the global ranking (see ScatterSearch).  With every shard
// healthy — always, for in-process shards — results are byte-identical to
// the same corpus in one engine.
func (c *Cluster) Search(name string, req SearchRequest) (*SearchResult, error) {
	return ScatterSearch(c.searchers(), name, req)
}

// TermStats sums the per-shard collection statistics for the query's terms
// — the GlobalStats inputs.
func (c *Cluster) TermStats(name, query string) (int64, []int64, error) {
	var numDocs int64
	var df []int64
	for i, e := range c.shards {
		nd, d, err := e.TermStats(name, query)
		if err != nil {
			return 0, nil, fmt.Errorf("core: shard %d: %w", i, err)
		}
		if df == nil {
			df = make([]int64, len(d))
		}
		numDocs += nd
		for t, v := range d {
			df[t] += v
		}
	}
	return numDocs, df, nil
}

// IndexStats returns each shard's stats for the named index, in shard
// order (the serving layer's per-shard stats sections read from here).
func (c *Cluster) IndexStats(name string) ([]index.Stats, error) {
	out := make([]index.Stats, len(c.shards))
	for i, e := range c.shards {
		ti, err := e.TextIndex(name)
		if err != nil {
			return nil, fmt.Errorf("core: shard %d: %w", i, err)
		}
		out[i] = ti.Stats()
	}
	return out, nil
}

func (c *Cluster) searchers() []ShardSearcher {
	out := make([]ShardSearcher, len(c.shards))
	for i, e := range c.shards {
		out[i] = e
	}
	return out
}
