package blob

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
)

// tailPool recycles the zero-padding buffers used for a blob's final
// partial page.
var tailPool sync.Pool

// Ref locates a blob within the store.
type Ref struct {
	// FirstPage is the first page of the blob.
	FirstPage pagefile.PageID
	// Length is the blob length in bytes.
	Length uint64
}

// PageSpan reports how many pages the blob occupies.
func (r Ref) PageSpan(pageSize int) uint64 {
	if r.Length == 0 {
		return 0
	}
	return (r.Length + uint64(pageSize) - 1) / uint64(pageSize)
}

// Store writes and reads blobs through a buffer pool.
type Store struct {
	pool *buffer.Pool
}

// ErrOutOfRange is returned when a read extends past the end of a blob.
var ErrOutOfRange = errors.New("blob: read out of range")

// NewStore creates a store over the given pool.
func NewStore(pool *buffer.Pool) *Store { return &Store{pool: pool} }

// Pool exposes the underlying buffer pool (used by callers that need I/O
// statistics for the pages a blob read touched).
func (s *Store) Pool() *buffer.Pool { return s.pool }

// Put writes data as a new blob and returns its Ref.  Empty blobs are valid
// and occupy no pages.
//
// The pages are written straight through to the file rather than via pool
// frames: blobs are written once and read back later (often much later, on
// a cold cache), so faulting every page of a fresh blob into the pool would
// only evict the structures a bulk build is actively using.
func (s *Store) Put(data []byte) (Ref, error) {
	if len(data) == 0 {
		return Ref{FirstPage: pagefile.InvalidPageID, Length: 0}, nil
	}
	pageSize := s.pool.PageSize()
	nPages := (len(data) + pageSize - 1) / pageSize
	first, err := s.pool.File().AllocateN(nPages)
	if err != nil {
		return Ref{}, fmt.Errorf("blob: allocate %d pages: %w", nPages, err)
	}
	for i := 0; i < nPages; i++ {
		lo := i * pageSize
		hi := lo + pageSize
		page := data[lo:]
		var scratch []byte
		if hi > len(data) {
			// Partial tail page: pad with zeros.  The pooled buffer keeps
			// Put safe for concurrent callers without allocating one page
			// per blob (bulk builds write one or two small blobs per term).
			scratch, _ = tailPool.Get().([]byte)
			if len(scratch) < pageSize {
				scratch = make([]byte, pageSize)
			}
			n := copy(scratch, data[lo:])
			clear(scratch[n:pageSize])
			page = scratch[:pageSize]
		}
		err := s.pool.WriteThrough(first+pagefile.PageID(i), page)
		if scratch != nil {
			tailPool.Put(scratch)
		}
		if err != nil {
			return Ref{}, err
		}
	}
	return Ref{FirstPage: first, Length: uint64(len(data))}, nil
}

// ReadAll reads an entire blob into memory.  Query algorithms should prefer
// NewReader so that early termination avoids touching trailing pages; ReadAll
// exists for tests and for small blobs such as per-term metadata.
func (s *Store) ReadAll(ref Ref) ([]byte, error) {
	out := make([]byte, 0, ref.Length)
	r := s.NewReader(ref)
	buf := make([]byte, s.pool.PageSize())
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// Reader streams a blob one page at a time.
type Reader struct {
	store *Store
	ref   Ref
	off   uint64 // absolute offset into the blob

	page      []byte // current decoded page contents (only the valid portion)
	pageBase  uint64 // blob offset of page[0]
	pagesRead int
}

// NewReader returns a Reader positioned at the start of the blob.
func (s *Store) NewReader(ref Ref) *Reader {
	return &Reader{store: s, ref: ref}
}

// PagesRead reports how many distinct page fetches this reader has issued.
// Early-terminating query algorithms use it (together with pool statistics)
// to report how much of a long list they actually scanned.
func (r *Reader) PagesRead() int { return r.pagesRead }

// Offset reports the current read position within the blob.
func (r *Reader) Offset() uint64 { return r.off }

// Len reports the total blob length.
func (r *Reader) Len() uint64 { return r.ref.Length }

// Remaining reports how many bytes are left to read.
func (r *Reader) Remaining() uint64 { return r.ref.Length - r.off }

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	if r.off >= r.ref.Length {
		return 0, io.EOF
	}
	if err := r.loadPageFor(r.off); err != nil {
		return 0, err
	}
	start := r.off - r.pageBase
	n := copy(p, r.page[start:])
	r.off += uint64(n)
	if n == 0 && r.off >= r.ref.Length {
		return 0, io.EOF
	}
	return n, nil
}

// ReadAt reads len(p) bytes starting at blob offset off.  It is used by
// readers that need random access within a chunked list (for example to jump
// to a chunk directory entry).
func (r *Reader) ReadAt(p []byte, off uint64) (int, error) {
	if off+uint64(len(p)) > r.ref.Length {
		return 0, fmt.Errorf("%w: [%d,%d) of %d", ErrOutOfRange, off, off+uint64(len(p)), r.ref.Length)
	}
	total := 0
	for total < len(p) {
		if err := r.loadPageFor(off + uint64(total)); err != nil {
			return total, err
		}
		start := off + uint64(total) - r.pageBase
		n := copy(p[total:], r.page[start:])
		total += n
	}
	return total, nil
}

// Skip advances the read position by n bytes without touching the skipped
// pages.
func (r *Reader) Skip(n uint64) error {
	if r.off+n > r.ref.Length {
		return fmt.Errorf("%w: skip %d from %d of %d", ErrOutOfRange, n, r.off, r.ref.Length)
	}
	r.off += n
	return nil
}

// Seek repositions the reader at an absolute blob offset.
func (r *Reader) Seek(off uint64) error {
	if off > r.ref.Length {
		return fmt.Errorf("%w: seek to %d of %d", ErrOutOfRange, off, r.ref.Length)
	}
	r.off = off
	return nil
}

func (r *Reader) loadPageFor(off uint64) error {
	pageSize := uint64(r.store.pool.PageSize())
	base := off / pageSize * pageSize
	if r.page != nil && base == r.pageBase {
		return nil
	}
	pageIdx := off / pageSize
	fr, err := r.store.pool.Get(r.ref.FirstPage + pagefile.PageID(pageIdx))
	if err != nil {
		return err
	}
	valid := r.ref.Length - base
	if valid > pageSize {
		valid = pageSize
	}
	if uint64(cap(r.page)) < pageSize {
		r.page = make([]byte, pageSize)
	}
	r.page = r.page[:valid]
	copy(r.page, fr.Data()[:valid])
	fr.Release()
	r.pageBase = base
	r.pagesRead++
	return nil
}
