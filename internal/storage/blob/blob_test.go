package blob

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
)

func newStore(t testing.TB, pageSize, poolPages int) *Store {
	t.Helper()
	f := pagefile.MustNewMem(pageSize)
	return NewStore(buffer.MustNew(f, poolPages))
}

func TestPutReadAllRoundTrip(t *testing.T) {
	s := newStore(t, 256, 16)
	sizes := []int{1, 255, 256, 257, 1000, 4096}
	for _, n := range sizes {
		data := make([]byte, n)
		rand.New(rand.NewSource(int64(n))).Read(data)
		ref, err := s.Put(data)
		if err != nil {
			t.Fatalf("Put(%d bytes): %v", n, err)
		}
		got, err := s.ReadAll(ref)
		if err != nil {
			t.Fatalf("ReadAll(%d bytes): %v", n, err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("round trip of %d bytes corrupted data", n)
		}
	}
}

func TestEmptyBlob(t *testing.T) {
	s := newStore(t, 256, 4)
	ref, err := s.Put(nil)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Length != 0 || ref.PageSpan(256) != 0 {
		t.Errorf("empty blob ref = %+v", ref)
	}
	data, err := s.ReadAll(ref)
	if err != nil || len(data) != 0 {
		t.Errorf("ReadAll of empty blob = %d bytes, %v", len(data), err)
	}
}

func TestPageSpan(t *testing.T) {
	cases := []struct {
		length uint64
		want   uint64
	}{{0, 0}, {1, 1}, {256, 1}, {257, 2}, {512, 2}, {513, 3}}
	for _, c := range cases {
		ref := Ref{Length: c.length}
		if got := ref.PageSpan(256); got != c.want {
			t.Errorf("PageSpan(%d) = %d, want %d", c.length, got, c.want)
		}
	}
}

func TestReaderStreamsPageAtATime(t *testing.T) {
	s := newStore(t, 256, 64)
	data := make([]byte, 256*10)
	rand.New(rand.NewSource(1)).Read(data)
	ref, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}

	r := s.NewReader(ref)
	// Reading only the first 100 bytes should touch exactly one page.
	buf := make([]byte, 100)
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatal(err)
	}
	if r.PagesRead() != 1 {
		t.Errorf("PagesRead after partial read = %d, want 1", r.PagesRead())
	}
	if !bytes.Equal(buf, data[:100]) {
		t.Error("partial read returned wrong bytes")
	}

	// Reading the rest touches the remaining pages.
	rest, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rest, data[100:]) {
		t.Error("remaining read returned wrong bytes")
	}
	if r.PagesRead() != 10 {
		t.Errorf("PagesRead after full read = %d, want 10", r.PagesRead())
	}
}

func TestReaderEarlyTerminationSavesPages(t *testing.T) {
	s := newStore(t, 256, 64)
	data := make([]byte, 256*100)
	ref, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	s.Pool().ResetStats()
	r := s.NewReader(ref)
	buf := make([]byte, 256*3)
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatal(err)
	}
	if got := s.Pool().Stats().Misses; got > 4 {
		t.Errorf("early-terminated read missed %d pages, want <= 4 of 100", got)
	}
}

func TestReadAt(t *testing.T) {
	s := newStore(t, 128, 64)
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i % 251)
	}
	ref, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	r := s.NewReader(ref)
	buf := make([]byte, 300)
	if _, err := r.ReadAt(buf, 500); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[500:800]) {
		t.Error("ReadAt returned wrong bytes")
	}
	if _, err := r.ReadAt(buf, 900); err == nil {
		t.Error("ReadAt past end succeeded, want error")
	}
}

func TestSkipAndSeek(t *testing.T) {
	s := newStore(t, 128, 64)
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i)
	}
	ref, _ := s.Put(data)
	r := s.NewReader(ref)
	if err := r.Skip(512); err != nil {
		t.Fatal(err)
	}
	var one [1]byte
	if _, err := r.Read(one[:]); err != nil {
		t.Fatal(err)
	}
	if want := byte(512 % 256); one[0] != want {
		t.Errorf("byte after skip = %d, want %d", one[0], want)
	}
	if err := r.Seek(2000); err == nil {
		t.Error("Seek past end succeeded, want error")
	}
	if err := r.Seek(999); err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != 1 {
		t.Errorf("Remaining = %d, want 1", r.Remaining())
	}
	if err := r.Skip(5); err == nil {
		t.Error("Skip past end succeeded, want error")
	}
}

func TestMultipleBlobsDoNotOverlap(t *testing.T) {
	s := newStore(t, 256, 64)
	blobs := make([][]byte, 20)
	refs := make([]Ref, 20)
	rng := rand.New(rand.NewSource(9))
	for i := range blobs {
		blobs[i] = make([]byte, rng.Intn(2000)+1)
		rng.Read(blobs[i])
		ref, err := s.Put(blobs[i])
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = ref
	}
	for i := range blobs {
		got, err := s.ReadAll(refs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, blobs[i]) {
			t.Errorf("blob %d corrupted", i)
		}
	}
}
