// Package blob implements an append-only store for large immutable byte
// objects on top of a buffer pool.
//
// The paper stores the long inverted lists "as binary objects in the
// database since they are never updated; they were read in a page at a time
// during query processing" (§5.2).  This package is that facility: a blob is
// written once across consecutive pages and read back through a streaming
// Reader that fetches one page at a time, so query algorithms that terminate
// early (Score-Threshold, Chunk, Chunk-TermScore) touch only a prefix of the
// blob's pages and the buffer-pool statistics show exactly how many.
// Reader.Skip advances the position without faulting the pages in between,
// which is what lets the compressed posting blocks (package postings) seek
// past whole super-blocks without paying their I/O.
//
// See ARCHITECTURE.md for the layer map — where this package sits in the
// stack — and for the repo-wide concurrency contract.
package blob
