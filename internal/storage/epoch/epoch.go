// Package epoch implements epoch-based reclamation for copy-on-write
// structures: readers enter the current epoch before walking a published
// snapshot, writers retire superseded pages into the current epoch and
// advance it when they publish a new snapshot, and a retired page is
// recycled only once every reader that could still reach it has left.
//
// The manager keeps a FIFO of epoch nodes.  Each node records the readers
// that entered during its epoch and the pages retired during it.  Because
// readers only ever observe the snapshot current at Enter time, a page
// retired in epoch E is unreachable to any reader that enters at E+1 or
// later; the node for E can therefore be freed as soon as it reaches the
// front of the FIFO with no remaining readers and the epoch has moved on.
// Reclamation stops at the first node that still has readers, which is
// conservative (a later node's pages may wait on an earlier node's
// stragglers) but keeps the invariant trivially monotone.
//
// Reclamation work is split so that readers stay O(1): Leave only detaches
// reclaimable nodes onto a pending list, and the actual page frees run on
// the writer's next Advance (or on Drain), outside the manager mutex.  A
// search thread that happens to drop the last guard on a drained epoch must
// not spend milliseconds returning hundreds of pages to the buffer pool —
// that cost belongs to the maintenance path whose copy-on-write churn
// created the garbage, and holding the mutex while freeing would stall
// every concurrent Enter behind it.
package epoch

import (
	"errors"
	"sync"

	"svrdb/internal/storage/pagefile"
)

// Manager coordinates one structure's epochs.  All methods are safe for
// concurrent use.
type Manager struct {
	mu      sync.Mutex
	cond    *sync.Cond
	free    func(pagefile.PageID) error
	current uint64
	head    *node
	tail    *node

	guards   int               // readers currently inside any epoch
	retained int               // retired pages not yet freed
	pending  []pagefile.PageID // detached from drained epochs, awaiting a writer free
	closed   bool
	errs     []error
}

// node is one epoch of the FIFO.
type node struct {
	epoch uint64
	refs  int
	pages []pagefile.PageID
	next  *node
}

// New creates a manager that recycles retired pages through free (typically
// the buffer pool's FreePage, which drops any resident frame and returns
// the page to the pagefile free list).
func New(free func(pagefile.PageID) error) *Manager {
	m := &Manager{free: free}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Guard is one reader's presence in an epoch.  The zero Guard is dead
// (Ok reports false) and Leave on it is a no-op.
type Guard struct {
	m *Manager
	n *node
}

// Ok reports whether the guard actually pins an epoch; it is false when the
// manager was already closed at Enter time.
func (g Guard) Ok() bool { return g.n != nil }

// Enter pins the current epoch.  The caller must Leave exactly once when it
// no longer holds references into the snapshot it loaded after entering.
// After Close/Drain, Enter returns a dead guard.
func (m *Manager) Enter() Guard {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Guard{}
	}
	n := m.currentNodeLocked()
	n.refs++
	m.guards++
	return Guard{m: m, n: n}
}

// Leave releases the guard.  It must be called at most once.  Leave is
// cheap by design — it detaches any epochs this departure drains but defers
// the page frees to the next writer Advance (or Drain), so a search thread
// never pays for maintenance garbage.
func (g Guard) Leave() {
	if g.n == nil {
		return
	}
	m := g.m
	m.mu.Lock()
	g.n.refs--
	m.guards--
	m.reclaimLocked()
	m.mu.Unlock()
}

// Retire hands superseded pages to the current epoch.  They are freed once
// every reader that entered at or before this epoch has left and the epoch
// has been advanced past.
func (m *Manager) Retire(pages ...pagefile.PageID) {
	if len(pages) == 0 {
		return
	}
	m.mu.Lock()
	n := m.currentNodeLocked()
	n.pages = append(n.pages, pages...)
	m.retained += len(pages)
	m.mu.Unlock()
}

// Advance moves to the next epoch.  Writers call it immediately after
// publishing a new snapshot, so that pages retired while building it become
// reclaimable as soon as the old snapshot's readers drain.  Advance also
// frees every page whose epoch has already drained — outside the manager
// mutex, so concurrent Enter/Leave calls are never stalled behind the frees.
func (m *Manager) Advance() {
	m.mu.Lock()
	m.current++
	m.reclaimLocked()
	pending := m.pending
	m.pending = nil
	m.mu.Unlock()
	m.freeBatch(pending)
}

// currentNodeLocked returns the FIFO node of the current epoch, creating it
// on first use.
func (m *Manager) currentNodeLocked() *node {
	if m.tail != nil && m.tail.epoch == m.current {
		return m.tail
	}
	n := &node{epoch: m.current}
	if m.tail == nil {
		m.head, m.tail = n, n
	} else {
		m.tail.next = n
		m.tail = n
	}
	return n
}

// reclaimLocked detaches the longest reclaimable prefix of the FIFO — nodes
// whose epoch has been advanced past and whose readers have all left — onto
// the pending list.  The pages stay counted as retained until freeBatch
// actually returns them.
func (m *Manager) reclaimLocked() {
	for m.head != nil && m.head.refs == 0 && m.head.epoch < m.current {
		n := m.head
		m.head = n.next
		if m.head == nil {
			m.tail = nil
		}
		m.pending = append(m.pending, n.pages...)
		m.cond.Broadcast()
	}
}

// freeBatch returns a batch of detached pages to the pool.  It runs without
// the manager mutex; the pages are unreachable from any present or future
// reader, so only the retained counter and error accumulation need the lock.
func (m *Manager) freeBatch(pages []pagefile.PageID) {
	if len(pages) == 0 {
		return
	}
	var errs []error
	for _, p := range pages {
		if err := m.free(p); err != nil {
			errs = append(errs, err)
		}
	}
	m.mu.Lock()
	m.retained -= len(pages)
	m.errs = append(m.errs, errs...)
	m.cond.Broadcast()
	m.mu.Unlock()
}

// Drain closes the manager — subsequent Enter calls return dead guards —
// advances past the final epoch and blocks until every active reader has
// left and every retired page has been freed.  It returns the accumulated
// free errors (also from earlier background reclamation).
func (m *Manager) Drain() error {
	m.mu.Lock()
	m.closed = true
	m.current++
	m.reclaimLocked()
	for m.head != nil {
		m.cond.Wait()
		m.reclaimLocked()
	}
	pending := m.pending
	m.pending = nil
	m.mu.Unlock()
	m.freeBatch(pending)

	m.mu.Lock()
	defer m.mu.Unlock()
	// A concurrent Advance may still be freeing its own detached batch;
	// retained reaches zero only once every free has landed.
	for m.retained > 0 {
		m.cond.Wait()
	}
	err := errors.Join(m.errs...)
	m.errs = nil
	return err
}

// Stats is a point-in-time observation of the manager.
type Stats struct {
	// Current is the current epoch number (the number of Advances so far).
	Current uint64
	// ActiveGuards is the number of readers currently inside an epoch.
	ActiveGuards int
	// RetainedPages is the number of retired pages awaiting reclamation.
	RetainedPages int
}

// Stats reports the manager's current state.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{Current: m.current, ActiveGuards: m.guards, RetainedPages: m.retained}
}
