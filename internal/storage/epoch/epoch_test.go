package epoch

import (
	"errors"
	"sync"
	"testing"

	"svrdb/internal/storage/pagefile"
)

// collectFree records freed pages in order.
type collectFree struct {
	mu    sync.Mutex
	pages []pagefile.PageID
	fail  map[pagefile.PageID]error
}

func (c *collectFree) free(p pagefile.PageID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err, ok := c.fail[p]; ok {
		return err
	}
	c.pages = append(c.pages, p)
	return nil
}

func (c *collectFree) freed() []pagefile.PageID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]pagefile.PageID(nil), c.pages...)
}

func TestRetireWithoutReadersFreesOnAdvance(t *testing.T) {
	var c collectFree
	m := New(c.free)
	m.Retire(1, 2, 3)
	if got := c.freed(); len(got) != 0 {
		t.Fatalf("pages freed before advance: %v", got)
	}
	if st := m.Stats(); st.RetainedPages != 3 {
		t.Fatalf("RetainedPages = %d, want 3", st.RetainedPages)
	}
	m.Advance()
	if got := c.freed(); len(got) != 3 {
		t.Fatalf("freed %v, want 3 pages", got)
	}
	if st := m.Stats(); st.RetainedPages != 0 || st.Current != 1 {
		t.Fatalf("stats after advance: %+v", st)
	}
}

func TestReaderPinsItsEpoch(t *testing.T) {
	var c collectFree
	m := New(c.free)
	g := m.Enter()
	if !g.Ok() {
		t.Fatal("guard not ok on open manager")
	}
	m.Retire(7)
	m.Advance()
	if got := c.freed(); len(got) != 0 {
		t.Fatalf("pages freed under an active reader: %v", got)
	}
	g.Leave()
	// Leave detaches the drained epoch but defers the free to the writer:
	// the page is still retained until the next Advance.
	if got := c.freed(); len(got) != 0 {
		t.Fatalf("reader's Leave freed %v itself, want deferral to the writer", got)
	}
	if st := m.Stats(); st.RetainedPages != 1 {
		t.Fatalf("RetainedPages = %d after Leave, want 1", st.RetainedPages)
	}
	m.Advance()
	if got := c.freed(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("freed %v, want [7]", got)
	}
}

// A reader in a later epoch must not block reclamation of an earlier epoch,
// and a reader in an earlier epoch must block everything behind it (FIFO).
func TestFIFOOrdering(t *testing.T) {
	var c collectFree
	m := New(c.free)
	early := m.Enter()
	m.Retire(1)
	m.Advance() // epoch 0 -> 1; node 0 pinned by early
	late := m.Enter()
	m.Retire(2)
	m.Advance() // epoch 1 -> 2; node 1 pinned by late
	if got := c.freed(); len(got) != 0 {
		t.Fatalf("freed %v, want none", got)
	}
	late.Leave()
	// Node 0 still pinned; conservative FIFO keeps node 1's page too.
	if got := c.freed(); len(got) != 0 {
		t.Fatalf("freed %v while the earlier epoch is pinned", got)
	}
	early.Leave()
	m.Advance() // the writer's next advance runs the deferred frees
	if got := c.freed(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("freed %v, want [1 2]", got)
	}
}

func TestDrainWaitsForReaders(t *testing.T) {
	var c collectFree
	m := New(c.free)
	g := m.Enter()
	m.Retire(5)
	done := make(chan error, 1)
	go func() { done <- m.Drain() }()
	// Drain must not complete while the guard is held; give the goroutine a
	// chance to block, then release.
	select {
	case <-done:
		t.Fatal("Drain returned with an active guard")
	default:
	}
	g.Leave()
	if err := <-done; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if got := c.freed(); len(got) != 1 || got[0] != 5 {
		t.Fatalf("freed %v, want [5]", got)
	}
	if g2 := m.Enter(); g2.Ok() {
		t.Fatal("Enter succeeded after Drain")
	}
}

func TestDrainReportsFreeErrors(t *testing.T) {
	boom := errors.New("boom")
	c := collectFree{fail: map[pagefile.PageID]error{9: boom}}
	m := New(c.free)
	m.Retire(8, 9)
	if err := m.Drain(); !errors.Is(err, boom) {
		t.Fatalf("Drain error = %v, want %v", err, boom)
	}
}

func TestConcurrentGuards(t *testing.T) {
	var c collectFree
	m := New(c.free)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				g := m.Enter()
				if g.Ok() {
					g.Leave()
				}
			}
		}()
	}
	for i := 0; i < 100; i++ {
		m.Retire(pagefile.PageID(i))
		m.Advance()
	}
	wg.Wait()
	if err := m.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if st := m.Stats(); st.RetainedPages != 0 || st.ActiveGuards != 0 {
		t.Fatalf("stats after drain: %+v", st)
	}
	if got := c.freed(); len(got) != 100 {
		t.Fatalf("freed %d pages, want 100", len(got))
	}
}
