package pagefile

import (
	"errors"
	"sync"
)

// ErrInjectedFault is the sentinel wrapped into every error the fault
// injector produces, so tests can distinguish injected failures from real
// ones with errors.Is.
var ErrInjectedFault = errors.New("pagefile: injected fault")

// FaultPlan selects which I/O operation fails.  All counters are 1-based
// and count operations across both the data file and the WAL, in the order
// the backend issues them — so a plan derived from a counting run replays
// the exact same sequence.  The zero value injects nothing.
type FaultPlan struct {
	// FailWrite makes the Nth WriteAt fail.  With TornWrite set, the first
	// half of that write reaches the file before the error — simulating a
	// torn page from a crash mid-write.
	FailWrite int
	TornWrite bool
	// FailSync makes the Nth Sync return an error (the write cache is
	// "lost": the preceding writes still happened, which is exactly what a
	// crash between write and fsync looks like after the kernel cache is
	// dropped — for this single-process model, what matters is that the
	// caller cannot treat the commit as durable).
	FailSync int
	// FailRead makes the Nth ReadAt fail with a short read.
	FailRead int
}

// FaultInjector wraps the backend's file handles and fails deterministically
// per its FaultPlan.  After the first injected fault the injector goes
// dead: every subsequent operation fails too, modeling a kill -9 — the
// process never gets to issue more I/O after the crash point.
//
// With a zero FaultPlan the injector is a pure counter; use Writes, Syncs
// and Reads after a clean run to learn how many injection sites a workload
// has, then iterate FailWrite/FailSync/FailRead over 1..N.
type FaultInjector struct {
	plan FaultPlan

	mu     sync.Mutex
	writes int
	syncs  int
	reads  int
	dead   bool
}

// NewFaultInjector returns an injector executing plan.
func NewFaultInjector(plan FaultPlan) *FaultInjector {
	return &FaultInjector{plan: plan}
}

// Writes returns the number of WriteAt calls observed so far.
func (fi *FaultInjector) Writes() int {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.writes
}

// Syncs returns the number of Sync calls observed so far.
func (fi *FaultInjector) Syncs() int {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.syncs
}

// Reads returns the number of ReadAt calls observed so far.
func (fi *FaultInjector) Reads() int {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.reads
}

// Tripped reports whether a fault has been injected.
func (fi *FaultInjector) Tripped() bool {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.dead
}

// wrap decorates b with the injector; a nil receiver (no WithFaults option)
// returns b unchanged.
func (fi *FaultInjector) wrap(b backing) backing {
	if fi == nil {
		return b
	}
	return &faultyBacking{fi: fi, b: b}
}

type faultyBacking struct {
	fi *FaultInjector
	b  backing
}

func (f *faultyBacking) WriteAt(p []byte, off int64) (int, error) {
	fi := f.fi
	fi.mu.Lock()
	if fi.dead {
		fi.mu.Unlock()
		return 0, errorsJoinFault("write after crash point")
	}
	fi.writes++
	inject := fi.plan.FailWrite > 0 && fi.writes == fi.plan.FailWrite
	torn := inject && fi.plan.TornWrite
	if inject {
		fi.dead = true
	}
	fi.mu.Unlock()
	if !inject {
		return f.b.WriteAt(p, off)
	}
	if torn && len(p) > 1 {
		// Half the bytes land; the rest are lost to the crash.
		f.b.WriteAt(p[:len(p)/2], off)
	}
	return 0, errorsJoinFault("write failed")
}

func (f *faultyBacking) ReadAt(p []byte, off int64) (int, error) {
	fi := f.fi
	fi.mu.Lock()
	if fi.dead {
		fi.mu.Unlock()
		return 0, errorsJoinFault("read after crash point")
	}
	fi.reads++
	inject := fi.plan.FailRead > 0 && fi.reads == fi.plan.FailRead
	if inject {
		fi.dead = true
	}
	fi.mu.Unlock()
	if inject {
		// Short read: a prefix arrives, then the error.
		if len(p) > 1 {
			n, _ := f.b.ReadAt(p[:len(p)/2], off)
			return n, errorsJoinFault("short read")
		}
		return 0, errorsJoinFault("short read")
	}
	return f.b.ReadAt(p, off)
}

func (f *faultyBacking) Sync() error {
	fi := f.fi
	fi.mu.Lock()
	if fi.dead {
		fi.mu.Unlock()
		return errorsJoinFault("sync after crash point")
	}
	fi.syncs++
	inject := fi.plan.FailSync > 0 && fi.syncs == fi.plan.FailSync
	if inject {
		fi.dead = true
	}
	fi.mu.Unlock()
	if inject {
		return errorsJoinFault("sync failed")
	}
	return f.b.Sync()
}

func (f *faultyBacking) Truncate(size int64) error {
	fi := f.fi
	fi.mu.Lock()
	dead := fi.dead
	fi.mu.Unlock()
	if dead {
		return errorsJoinFault("truncate after crash point")
	}
	return f.b.Truncate(size)
}

// Close always reaches the real handle so tests can reopen the path even
// after a simulated crash.
func (f *faultyBacking) Close() error { return f.b.Close() }

func errorsJoinFault(msg string) error {
	return &injectedError{msg: msg}
}

type injectedError struct{ msg string }

func (e *injectedError) Error() string { return "pagefile: injected fault: " + e.msg }

func (e *injectedError) Is(target error) bool { return target == ErrInjectedFault }
