package pagefile

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// fileImage is a full logical snapshot of a committed file: every page plus
// the application meta.  Crash-point tests compare recovered files against
// these images byte for byte.
type fileImage struct {
	pages [][]byte
	meta  []byte
	free  int
}

func snapshotFile(t *testing.T, f File) *fileImage {
	t.Helper()
	img := &fileImage{meta: f.Meta(), free: f.FreePages()}
	buf := make([]byte, f.PageSize())
	for id := uint64(0); id < f.NumPages(); id++ {
		if err := f.Read(PageID(id), buf); err != nil {
			t.Fatalf("snapshot read page %d: %v", id, err)
		}
		img.pages = append(img.pages, append([]byte(nil), buf...))
	}
	return img
}

func (img *fileImage) equal(other *fileImage) bool {
	if len(img.pages) != len(other.pages) || !bytes.Equal(img.meta, other.meta) || img.free != other.free {
		return false
	}
	for i := range img.pages {
		if !bytes.Equal(img.pages[i], other.pages[i]) {
			return false
		}
	}
	return true
}

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	in, err := os.Open(src)
	if errors.Is(err, os.ErrNotExist) {
		os.Remove(dst)
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if _, err := io.Copy(out, in); err != nil {
		t.Fatal(err)
	}
}

// cloneDB copies a data file and its WAL sidecar into a fresh working path.
func cloneDB(t *testing.T, src, dst string) {
	t.Helper()
	copyFile(t, src, dst)
	copyFile(t, WALPath(src), WALPath(dst))
}

// commitScenario is the mutation batch whose crash behaviour the matrix
// explores: rewrite one committed page, allocate a new one, and free
// another — exercising in-place writeback, growth and the free chain in a
// single commit.
func commitScenario(f File) error {
	page := make([]byte, f.PageSize())
	for i := range page {
		page[i] = 0xC4
	}
	if err := f.Write(1, page); err != nil {
		return err
	}
	id, err := f.Allocate()
	if err != nil {
		return err
	}
	for i := range page {
		page[i] = 0xD5
	}
	if err := f.Write(id, page); err != nil {
		return err
	}
	if err := f.Free(2); err != nil {
		return err
	}
	return f.Commit([]byte("after"))
}

// TestCrashPointMatrixFile drives the commit protocol into a deterministic
// fault at every write and fsync site (plain failures and torn writes),
// reopens without faults, and asserts the recovered file is byte-identical
// to either the pre-commit or the post-commit committed image — never a
// hybrid.  A fault injected before the WAL fsync completes must recover the
// pre state; a successful Commit must recover the post state.
func TestCrashPointMatrixFile(t *testing.T) {
	dir := t.TempDir()
	template := filepath.Join(dir, "template.svrdb")

	// Build the committed pre state: four pages with distinct fill bytes.
	f, err := Open(template, WithPageSize(512))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.AllocateN(4); err != nil {
		t.Fatal(err)
	}
	page := make([]byte, 512)
	for id := PageID(0); id < 4; id++ {
		for i := range page {
			page[i] = 0xA0 + byte(id)
		}
		if err := f.Write(id, page); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Commit([]byte("before")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Pre image, and post image from one clean run of the scenario.
	pre := func() *fileImage {
		f, err := Open(template)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		return snapshotFile(t, f)
	}()
	postPath := filepath.Join(dir, "post.svrdb")
	cloneDB(t, template, postPath)
	post := func() *fileImage {
		f, err := Open(postPath)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := commitScenario(f); err != nil {
			t.Fatal(err)
		}
		return snapshotFile(t, f)
	}()
	if pre.equal(post) {
		t.Fatal("scenario did not change the file; the matrix would prove nothing")
	}

	// Counting run: learn how many write and sync sites the scenario has.
	countPath := filepath.Join(dir, "count.svrdb")
	cloneDB(t, template, countPath)
	counter := NewFaultInjector(FaultPlan{})
	cf, err := Open(countPath, WithFaults(counter))
	if err != nil {
		t.Fatal(err)
	}
	if err := commitScenario(cf); err != nil {
		t.Fatal(err)
	}
	cf.Close()
	writes, syncs := counter.Writes(), counter.Syncs()
	if writes < 3 || syncs < 2 {
		t.Fatalf("scenario has %d writes and %d syncs; too few for a meaningful matrix", writes, syncs)
	}

	type site struct {
		plan FaultPlan
		name string
	}
	var sites []site
	for i := 1; i <= writes; i++ {
		sites = append(sites,
			site{FaultPlan{FailWrite: i}, fmt.Sprintf("write-%d", i)},
			site{FaultPlan{FailWrite: i, TornWrite: true}, fmt.Sprintf("torn-write-%d", i)})
	}
	for i := 1; i <= syncs; i++ {
		sites = append(sites, site{FaultPlan{FailSync: i}, fmt.Sprintf("sync-%d", i)})
	}

	for _, s := range sites {
		t.Run(s.name, func(t *testing.T) {
			work := filepath.Join(dir, "work.svrdb")
			cloneDB(t, template, work)
			fi := NewFaultInjector(s.plan)
			f, err := Open(work, WithFaults(fi))
			if err != nil {
				t.Fatalf("open with faults failed before the scenario ran: %v", err)
			}
			commitErr := commitScenario(f)
			f.Close()
			if !fi.Tripped() {
				t.Fatalf("fault site %s never fired", s.name)
			}

			// The crash happened; reopen without faults and recover.
			rf, err := Open(work)
			if err != nil {
				t.Fatalf("recovery open: %v", err)
			}
			defer rf.Close()
			img := snapshotFile(t, rf)
			switch {
			case img.equal(pre):
				if commitErr == nil {
					t.Error("Commit reported success but recovery landed on the pre state")
				}
			case img.equal(post):
				// Roll-forward of a fully-logged commit: fine whether or not
				// Commit got to report success.
			default:
				t.Errorf("recovered state is neither the pre- nor the post-commit image (commit err: %v)", commitErr)
			}

			// The recovered file must accept and persist a fresh commit.
			if err := commitScenario(rf); err != nil {
				t.Fatalf("commit after recovery: %v", err)
			}
		})
	}
}

// TestFreeListSurvivesReopen pins the satellite requirement: pages freed
// before a commit survive close/reopen through the persisted free chain, are
// handed back in the same LIFO order, and arrive zeroed.
func TestFreeListSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.svrdb")
	f, err := Open(path, WithPageSize(512))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.AllocateN(5); err != nil {
		t.Fatal(err)
	}
	junk := bytes.Repeat([]byte{0xEE}, 512)
	for id := PageID(0); id < 5; id++ {
		if err := f.Write(id, junk); err != nil {
			t.Fatal(err)
		}
	}
	// Free 1 then 3: LIFO means the next allocations hand back 3 then 1.
	if err := f.Free(1); err != nil {
		t.Fatal(err)
	}
	if err := f.Free(3); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	rf, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	if got := rf.FreePages(); got != 2 {
		t.Fatalf("FreePages after reopen = %d, want 2", got)
	}
	if got := rf.NumPages(); got != 5 {
		t.Fatalf("NumPages after reopen = %d, want 5", got)
	}
	zero := make([]byte, 512)
	buf := make([]byte, 512)
	for _, want := range []PageID{3, 1} {
		id, err := rf.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if id != want {
			t.Errorf("Allocate after reopen = page %d, want recycled page %d", id, want)
		}
		if err := rf.Read(id, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, zero) {
			t.Errorf("recycled page %d not zeroed after reopen", id)
		}
	}
	if rf.NumPages() != 5 {
		t.Errorf("NumPages grew to %d despite recycled allocations", rf.NumPages())
	}
	st := rf.Stats()
	if st.Reuses != 2 {
		t.Errorf("Stats.Reuses = %d, want 2", st.Reuses)
	}
}

// TestRecoveryCountsTornWAL pins that a torn WAL tail is detected, counted
// and discarded rather than replayed.
func TestRecoveryCountsTornWAL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.svrdb")
	f, err := Open(path, WithPageSize(512))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Allocate(); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit([]byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Plant a torn record: valid magic, then garbage cut short.
	wal, err := os.OpenFile(WALPath(path), os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := make([]byte, 60)
	copy(torn, []byte{0x31, 0x30, 0x4c, 0x41, 0x57, 0x52, 0x56, 0x53}) // walMagic little-endian
	if _, err := wal.WriteAt(torn, 0); err != nil {
		t.Fatal(err)
	}
	wal.Close()

	rf, err := Open(path)
	if err != nil {
		t.Fatalf("open with torn WAL: %v", err)
	}
	defer rf.Close()
	if got := rf.Meta(); !bytes.Equal(got, []byte("v1")) {
		t.Errorf("meta after torn-WAL recovery = %q, want %q", got, "v1")
	}
	if st := rf.Stats(); st.TornPages == 0 {
		t.Error("TornPages counter not bumped by torn WAL tail")
	}
}
