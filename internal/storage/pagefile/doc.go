// Package pagefile provides a fixed-size-page storage abstraction that the
// rest of the storage engine is built on.
//
// The paper's implementation stores all index structures in BerkeleyDB, whose
// performance characteristics are dominated by how many disk pages each
// operation touches.  This package reproduces that model: every structure
// above it (B+-trees, blob-stored inverted lists) allocates, reads and writes
// whole pages, and the file keeps precise counters of logical page I/O so
// that experiments can report "pages read" alongside wall-clock time.  An
// optional simulated per-read latency lets benchmarks approximate a
// cold-cache disk even when the backing store is main memory.
//
// Two backends implement the File interface.  NewMem is the in-memory
// simulation the benchmarks run on.  Open(path, opts...) is the durable disk
// backend: a checksummed-header page file with a write-ahead log, where every
// write stages in memory until Commit makes the batch atomic (WAL append +
// fsync, in-place writeback, checkpoint) and reopening replays any committed
// WAL record a crash left unapplied.  WithFaults injects deterministic write,
// torn-write, fsync and read failures for crash-point testing.  See the
// "Durability & recovery" section of ARCHITECTURE.md for the on-disk format
// and the recovery procedure.
//
// See ARCHITECTURE.md for the layer map — where this package sits in the
// stack — and for the repo-wide concurrency contract.
package pagefile
