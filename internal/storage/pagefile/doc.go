// Package pagefile provides a fixed-size-page storage abstraction that the
// rest of the storage engine is built on.
//
// The paper's implementation stores all index structures in BerkeleyDB, whose
// performance characteristics are dominated by how many disk pages each
// operation touches.  This package reproduces that model: every structure
// above it (B+-trees, blob-stored inverted lists) allocates, reads and writes
// whole pages, and the file keeps precise counters of logical page I/O so
// that experiments can report "pages read" alongside wall-clock time.  An
// optional simulated per-read latency lets benchmarks approximate a
// cold-cache disk even when the backing store is main memory.
//
// See ARCHITECTURE.md for the layer map — where this package sits in the
// stack — and for the repo-wide concurrency contract.
package pagefile
