package pagefile

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// DefaultDiskPageSize is the page size of a durable file unless the creator
// overrides it.  4 KiB matches the physical sector/page granularity of the
// disks the paper's cost model charges per page touched.
const DefaultDiskPageSize = 4096

// formatVersion is bumped whenever the on-disk layout changes.
const formatVersion = 1

// minDiskPageSize keeps the fixed header comfortably inside physical page 0.
const minDiskPageSize = 512

// maxDiskPageSize bounds the page size a WAL record may claim, so a corrupt
// record cannot make recovery compute an absurd record length before the
// checksum gets a chance to reject it.
const maxDiskPageSize = 1 << 22

// metaMax bounds the opaque application root stored in the header (the
// engine keeps a catalog pointer there, a few dozen bytes).
const metaMax = 256

var (
	headerMagic = [8]byte{'S', 'V', 'R', 'D', 'B', 'P', 'F', '1'}
	walMagic    = uint64(0x53565257414c3031) // "SVRWAL01"
	// freePageMagic stamps the first 8 bytes of an on-disk free-list chain
	// page so that a corrupted chain is detected instead of walked blindly.
	freePageMagic = uint64(0x5356524652454531) // "SVRFREE1"
)

// crcTable is the Castagnoli polynomial, the common choice for storage
// checksums (hardware accelerated on most CPUs).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt is wrapped into Open errors when neither the header nor the
// write-ahead log yields a consistent committed state.
var ErrCorrupt = errors.New("pagefile: file is corrupt")

// ErrClosed is returned by operations on a closed durable file.
var ErrClosed = errors.New("pagefile: file is closed")

// header is the decoded form of physical page 0.
//
// Layout (little-endian):
//
//	[0:8]    magic "SVRDBPF1"
//	[8:12]   format version
//	[12:16]  page size
//	[16:24]  committed page count
//	[24:32]  free-list chain head (InvalidPageID when empty)
//	[32:40]  free-list length
//	[40:48]  last committed WAL LSN
//	[48:52]  meta length
//	[52:52+metaMax] meta (opaque application root)
//	[52+metaMax : +4] CRC32-C over all preceding bytes
type header struct {
	pageSize  int
	nPages    uint64
	freeHead  PageID
	freeCount uint64
	lsn       uint64
	meta      []byte
}

const headerSize = 52 + metaMax + 4

func (h *header) encode() []byte {
	buf := make([]byte, headerSize)
	copy(buf[0:8], headerMagic[:])
	binary.LittleEndian.PutUint32(buf[8:12], formatVersion)
	binary.LittleEndian.PutUint32(buf[12:16], uint32(h.pageSize))
	binary.LittleEndian.PutUint64(buf[16:24], h.nPages)
	binary.LittleEndian.PutUint64(buf[24:32], uint64(h.freeHead))
	binary.LittleEndian.PutUint64(buf[32:40], h.freeCount)
	binary.LittleEndian.PutUint64(buf[40:48], h.lsn)
	binary.LittleEndian.PutUint32(buf[48:52], uint32(len(h.meta)))
	copy(buf[52:52+metaMax], h.meta)
	crc := crc32.Checksum(buf[:headerSize-4], crcTable)
	binary.LittleEndian.PutUint32(buf[headerSize-4:], crc)
	return buf
}

func decodeHeader(buf []byte) (*header, error) {
	if len(buf) < headerSize {
		return nil, fmt.Errorf("%w: short header (%d bytes)", ErrCorrupt, len(buf))
	}
	if !bytes.Equal(buf[0:8], headerMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if crc := crc32.Checksum(buf[:headerSize-4], crcTable); crc != binary.LittleEndian.Uint32(buf[headerSize-4:headerSize]) {
		return nil, fmt.Errorf("%w: header checksum mismatch", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(buf[8:12]); v != formatVersion {
		return nil, fmt.Errorf("pagefile: format version %d not supported (want %d)", v, formatVersion)
	}
	h := &header{
		pageSize:  int(binary.LittleEndian.Uint32(buf[12:16])),
		nPages:    binary.LittleEndian.Uint64(buf[16:24]),
		freeHead:  PageID(binary.LittleEndian.Uint64(buf[24:32])),
		freeCount: binary.LittleEndian.Uint64(buf[32:40]),
		lsn:       binary.LittleEndian.Uint64(buf[40:48]),
	}
	metaLen := binary.LittleEndian.Uint32(buf[48:52])
	if metaLen > metaMax {
		return nil, fmt.Errorf("%w: meta length %d exceeds %d", ErrCorrupt, metaLen, metaMax)
	}
	if metaLen > 0 {
		h.meta = append([]byte(nil), buf[52:52+metaLen]...)
	}
	if h.pageSize < minDiskPageSize {
		return nil, fmt.Errorf("%w: page size %d below minimum %d", ErrCorrupt, h.pageSize, minDiskPageSize)
	}
	return h, nil
}

// backing is the subset of *os.File the durable backend needs; the fault
// injector wraps it to fail deterministically at chosen I/O sites.
type backing interface {
	io.ReaderAt
	io.WriterAt
	Sync() error
	Truncate(size int64) error
	Close() error
}

// Option configures Open.
type Option func(*openOptions)

type openOptions struct {
	pageSize int
	faults   *FaultInjector
}

// WithPageSize sets the page size used when creating a new file.  Opening an
// existing file with a different explicit page size is an error; pass 0 (or
// omit the option) to accept whatever the header records.
func WithPageSize(n int) Option { return func(o *openOptions) { o.pageSize = n } }

// WithFaults installs a deterministic fault-injection layer under the file:
// every WriteAt/ReadAt/Sync on the data file and the WAL consults the
// injector first.  Crash-point tests use it to fail the Nth I/O, tear a
// write in half, or break fsync, then reopen without faults and assert
// recovery.
func WithFaults(fi *FaultInjector) Option { return func(o *openOptions) { o.faults = fi } }

// diskFile is the durable backend: a page file at path with a checksummed
// header on physical page 0 (logical page id N lives at byte offset
// (N+1)·pageSize) and a write-ahead log at path+".wal".
//
// All writes — page writes, allocations, frees — are staged in memory and
// reach the data file only inside Commit:
//
//  1. one WAL record holding every staged page image plus the post-commit
//     header state is written and fsynced (the commit point);
//  2. the staged images are written back in place in ascending page order,
//     the header is rewritten, and the data file is fsynced;
//  3. the WAL is truncated (the checkpoint).
//
// A crash before (1) completes loses the staged writes and recovers the
// previous committed state; a crash after (1) replays the record on the
// next Open and recovers the new state.  Committed pages are therefore
// never overwritten in place by uncommitted data, which also makes it safe
// for a commit window to reuse pages freed in the same window.
//
// The free list is persisted as an on-disk chain threaded through the freed
// pages themselves: each carries [freePageMagic][next PageID] in its first
// 16 bytes, the header records the chain head and length, and Free stages
// the chain page like any other write so the chain always commits
// atomically with the state that freed it.
type diskFile struct {
	pageSize int
	path     string
	data     backing
	wal      backing

	mu        sync.RWMutex
	closed    bool
	nPages    uint64 // allocated, including uncommitted allocations
	committed uint64 // page count as of the last commit
	staged    map[PageID][]byte
	free      []PageID // stack; free[len-1] is the chain head
	freeSet   map[PageID]struct{}
	lsn       uint64
	meta      []byte

	counters
}

// WALPath returns the write-ahead log path for a data file path.
func WALPath(path string) string { return path + ".wal" }

// Open creates or opens a durable page file at path.  A new file is
// initialized with an empty committed header before Open returns; an
// existing file is recovered: the header is validated, any complete WAL
// record is replayed, a torn WAL tail is discarded, and the persisted free
// list is loaded.
func Open(path string, opts ...Option) (File, error) {
	var o openOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.pageSize != 0 && o.pageSize < minDiskPageSize {
		return nil, fmt.Errorf("%w: %d (minimum %d)", ErrBadPageSize, o.pageSize, minDiskPageSize)
	}

	dataFD, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pagefile: open %s: %w", path, err)
	}
	walFD, err := os.OpenFile(WALPath(path), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		dataFD.Close()
		return nil, fmt.Errorf("pagefile: open %s: %w", WALPath(path), err)
	}

	f := &diskFile{
		path:    path,
		staged:  map[PageID][]byte{},
		freeSet: map[PageID]struct{}{},
	}
	f.data = o.faults.wrap(dataFD)
	f.wal = o.faults.wrap(walFD)

	info, err := dataFD.Stat()
	if err != nil {
		f.closeHandles()
		return nil, fmt.Errorf("pagefile: stat %s: %w", path, err)
	}

	if info.Size() == 0 {
		// Fresh file: write an empty committed header so that a crash right
		// after creation still opens cleanly.
		f.pageSize = o.pageSize
		if f.pageSize == 0 {
			f.pageSize = DefaultDiskPageSize
		}
		hdr := header{pageSize: f.pageSize, freeHead: InvalidPageID}
		if err := f.writeHeader(&hdr); err != nil {
			f.closeHandles()
			return nil, err
		}
		if err := f.data.Sync(); err != nil {
			f.closeHandles()
			return nil, fmt.Errorf("pagefile: sync %s: %w", path, err)
		}
		f.fsyncs.Add(1)
		return f, nil
	}

	if err := f.recover(o.pageSize); err != nil {
		f.closeHandles()
		return nil, err
	}
	return f, nil
}

func (f *diskFile) closeHandles() {
	f.data.Close()
	f.wal.Close()
}

// writeHeader encodes hdr into physical page 0 (padded to a full page).
func (f *diskFile) writeHeader(hdr *header) error {
	page := make([]byte, f.pageSize)
	copy(page, hdr.encode())
	if _, err := f.data.WriteAt(page, 0); err != nil {
		return fmt.Errorf("pagefile: write header: %w", err)
	}
	return nil
}

// pageOffset maps a logical page ID to its byte offset in the data file.
func (f *diskFile) pageOffset(id PageID) int64 {
	return (int64(id) + 1) * int64(f.pageSize)
}

// --- recovery ---------------------------------------------------------------

// walRecord is one decoded commit record.
//
// Layout (little-endian):
//
//	[0:8]   walMagic
//	[8:16]  LSN
//	[16:24] post-commit page count
//	[24:32] post-commit free-list head
//	[32:40] post-commit free-list length
//	[40:44] page size (records are self-describing so a torn header does
//	        not strand the replay without the geometry it needs)
//	[44:48] meta length
//	[48:52] page image count
//	[52:...] meta bytes, then count × ([8 page ID][pageSize image])
//	[...:+4] CRC32-C over everything above
type walRecord struct {
	header
	pages  []PageID
	images [][]byte
}

func (f *diskFile) encodeWALRecord(rec *walRecord) []byte {
	size := 52 + len(rec.meta) + len(rec.pages)*(8+f.pageSize) + 4
	buf := make([]byte, 0, size)
	var scratch [8]byte
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		buf = append(buf, scratch[:8]...)
	}
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		buf = append(buf, scratch[:4]...)
	}
	put64(walMagic)
	put64(rec.lsn)
	put64(rec.nPages)
	put64(uint64(rec.freeHead))
	put64(rec.freeCount)
	put32(uint32(f.pageSize))
	put32(uint32(len(rec.meta)))
	put32(uint32(len(rec.pages)))
	buf = append(buf, rec.meta...)
	for i, id := range rec.pages {
		put64(uint64(id))
		buf = append(buf, rec.images[i][:f.pageSize]...)
	}
	put32(crc32.Checksum(buf, crcTable))
	return buf
}

// decodeWALRecord parses one record from buf, returning it and the bytes
// consumed.  A nil record with nil error means buf holds no (further)
// record; a nil record with a non-nil error means a torn or corrupt record.
// The record carries its own page size; a non-zero wantPageSize is checked
// against it.
func decodeWALRecord(buf []byte, wantPageSize int) (*walRecord, int, error) {
	if len(buf) < 52 {
		if isAllZero(buf) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("%w: truncated WAL record header", ErrCorrupt)
	}
	if binary.LittleEndian.Uint64(buf[0:8]) != walMagic {
		if isAllZero(buf[:8]) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("%w: bad WAL record magic", ErrCorrupt)
	}
	pageSize := int(binary.LittleEndian.Uint32(buf[40:44]))
	if pageSize < minDiskPageSize || pageSize > maxDiskPageSize {
		return nil, 0, fmt.Errorf("%w: WAL record page size %d", ErrCorrupt, pageSize)
	}
	if wantPageSize != 0 && pageSize != wantPageSize {
		return nil, 0, fmt.Errorf("%w: WAL record page size %d, want %d", ErrCorrupt, pageSize, wantPageSize)
	}
	metaLen := binary.LittleEndian.Uint32(buf[44:48])
	count := binary.LittleEndian.Uint32(buf[48:52])
	if metaLen > metaMax {
		return nil, 0, fmt.Errorf("%w: WAL meta length %d", ErrCorrupt, metaLen)
	}
	total := 52 + int(metaLen) + int(count)*(8+pageSize) + 4
	if len(buf) < total {
		return nil, 0, fmt.Errorf("%w: torn WAL record (%d of %d bytes)", ErrCorrupt, len(buf), total)
	}
	body := buf[:total-4]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(buf[total-4:total]) {
		return nil, 0, fmt.Errorf("%w: WAL record checksum mismatch", ErrCorrupt)
	}
	rec := &walRecord{
		header: header{
			pageSize:  pageSize,
			nPages:    binary.LittleEndian.Uint64(buf[16:24]),
			freeHead:  PageID(binary.LittleEndian.Uint64(buf[24:32])),
			freeCount: binary.LittleEndian.Uint64(buf[32:40]),
			lsn:       binary.LittleEndian.Uint64(buf[8:16]),
		},
	}
	if metaLen > 0 {
		rec.meta = append([]byte(nil), buf[52:52+metaLen]...)
	}
	off := 52 + int(metaLen)
	for i := uint32(0); i < count; i++ {
		id := PageID(binary.LittleEndian.Uint64(buf[off : off+8]))
		off += 8
		rec.pages = append(rec.pages, id)
		rec.images = append(rec.images, buf[off:off+pageSize])
		off += pageSize
	}
	return rec, total, nil
}

func isAllZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// recover brings the file to its last committed state: validate the header,
// replay any complete WAL record the header does not yet reflect, discard a
// torn WAL tail, truncate the data file to the committed length, and load
// the persisted free list.
func (f *diskFile) recover(wantPageSize int) error {
	hdrBuf := make([]byte, headerSize)
	var hdr *header
	if _, err := f.data.ReadAt(hdrBuf, 0); err == nil {
		if h, err := decodeHeader(hdrBuf); err == nil {
			hdr = h
		} else if errors.Is(err, ErrCorrupt) {
			// Torn header write: fall through to the WAL, which always holds
			// the record that was rewriting it.
			f.tornPages.Add(1)
		} else {
			return err
		}
	}

	// Pin down the geometry the WAL must be parsed with.  The header is
	// authoritative when intact; otherwise each record self-describes its
	// page size (validated against the caller's, if given), so a torn header
	// never strands the replay.
	pageSize := wantPageSize
	if hdr != nil {
		if wantPageSize != 0 && hdr.pageSize != wantPageSize {
			return fmt.Errorf("%w: file has page size %d, caller wants %d", ErrBadPageSize, hdr.pageSize, wantPageSize)
		}
		pageSize = hdr.pageSize
	}

	walBuf, err := readAll(f.wal)
	if err != nil {
		return fmt.Errorf("pagefile: read WAL: %w", err)
	}
	var last *walRecord
	for off := 0; off < len(walBuf); {
		rec, n, err := decodeWALRecord(walBuf[off:], pageSize)
		if err != nil {
			// Torn tail: the commit that wrote it never reached its fsync
			// acknowledgement, so discarding it is the correct recovery.
			f.tornPages.Add(1)
			break
		}
		if rec == nil {
			break
		}
		last = rec
		off += n
	}
	if last != nil {
		pageSize = last.header.pageSize
	}
	if pageSize == 0 {
		// No header, no WAL record: the corrupt-file error below fires; the
		// default only keeps pageOffset arithmetic sane until then.
		pageSize = DefaultDiskPageSize
	}
	f.pageSize = pageSize

	switch {
	case hdr == nil && last == nil:
		return fmt.Errorf("%w: no valid header and no valid WAL record in %s", ErrCorrupt, f.path)
	case last != nil && (hdr == nil || last.lsn > hdr.lsn):
		// Roll the committed-but-not-applied record forward.
		for i, id := range last.pages {
			if _, err := f.data.WriteAt(last.images[i], f.pageOffset(id)); err != nil {
				return fmt.Errorf("pagefile: recovery write page %d: %w", id, err)
			}
		}
		if err := f.writeHeader(&last.header); err != nil {
			return err
		}
		if err := f.data.Sync(); err != nil {
			return fmt.Errorf("pagefile: recovery sync: %w", err)
		}
		f.fsyncs.Add(1)
		f.recoveries.Add(1)
		hdr = &last.header
	}

	f.nPages = hdr.nPages
	f.committed = hdr.nPages
	f.lsn = hdr.lsn
	f.meta = append([]byte(nil), hdr.meta...)

	// Drop any garbage past the committed end (pages allocated by an
	// uncommitted window before the crash) and the consumed WAL.
	if err := f.data.Truncate(f.pageOffset(PageID(f.nPages))); err != nil {
		return fmt.Errorf("pagefile: truncate data: %w", err)
	}
	if err := f.wal.Truncate(0); err != nil {
		return fmt.Errorf("pagefile: truncate WAL: %w", err)
	}

	return f.loadFreeList(hdr.freeHead, hdr.freeCount)
}

// loadFreeList walks the on-disk chain and rebuilds the in-memory stack so
// that allocation order after a reopen matches the order before it
// (chain head = top of stack).
func (f *diskFile) loadFreeList(head PageID, count uint64) error {
	if count == 0 {
		return nil
	}
	chain := make([]PageID, 0, count)
	page := make([]byte, f.pageSize)
	id := head
	for i := uint64(0); i < count; i++ {
		if uint64(id) >= f.nPages {
			return fmt.Errorf("%w: free-list chain points at page %d of %d", ErrCorrupt, id, f.nPages)
		}
		if _, err := f.data.ReadAt(page, f.pageOffset(id)); err != nil {
			return fmt.Errorf("pagefile: read free-list page %d: %w", id, err)
		}
		if binary.LittleEndian.Uint64(page[0:8]) != freePageMagic {
			return fmt.Errorf("%w: free-list page %d lacks chain magic", ErrCorrupt, id)
		}
		chain = append(chain, id)
		id = PageID(binary.LittleEndian.Uint64(page[8:16]))
	}
	if id != InvalidPageID {
		return fmt.Errorf("%w: free-list chain longer than recorded length %d", ErrCorrupt, count)
	}
	// chain[0] is the head; the stack pops from the end.
	f.free = make([]PageID, len(chain))
	for i, p := range chain {
		f.free[len(chain)-1-i] = p
	}
	for _, p := range chain {
		f.freeSet[p] = struct{}{}
	}
	return nil
}

func readAll(b backing) ([]byte, error) {
	var out []byte
	buf := make([]byte, 1<<16)
	var off int64
	for {
		n, err := b.ReadAt(buf, off)
		out = append(out, buf[:n]...)
		off += int64(n)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return out, nil
		}
	}
}

// --- File interface ---------------------------------------------------------

func (f *diskFile) PageSize() int { return f.pageSize }

func (f *diskFile) NumPages() uint64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.nPages
}

func (f *diskFile) SetReadLatency(d time.Duration) {
	// The durable backing pays real I/O latency; the simulation knob is a
	// no-op here (it exists for the in-memory benchmarks).
}

func (f *diskFile) ReadLatency() time.Duration { return 0 }

// stagePageLocked returns a zeroed staging buffer for id, reusing an
// existing staged buffer when present.  The caller holds f.mu.
func (f *diskFile) stagePageLocked(id PageID) []byte {
	buf, ok := f.staged[id]
	if !ok {
		buf = make([]byte, f.pageSize)
		f.staged[id] = buf
	} else {
		clear(buf)
	}
	return buf
}

func (f *diskFile) Allocate() (PageID, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return InvalidPageID, ErrClosed
	}
	f.allocs.Add(1)
	if n := len(f.free); n > 0 {
		id := f.free[n-1]
		f.free = f.free[:n-1]
		delete(f.freeSet, id)
		f.reuses.Add(1)
		// Hand the page back zeroed: the staged zero image also overwrites
		// the chain link the page carried while free.
		f.stagePageLocked(id)
		return id, nil
	}
	id := PageID(f.nPages)
	f.nPages++
	f.stagePageLocked(id)
	return id, nil
}

func (f *diskFile) AllocateN(n int) (PageID, error) {
	if n <= 0 {
		return InvalidPageID, fmt.Errorf("pagefile: AllocateN(%d): n must be positive", n)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return InvalidPageID, ErrClosed
	}
	f.allocs.Add(uint64(n))
	if first, ok := f.takeFreeRunLocked(n); ok {
		f.reuses.Add(uint64(n))
		for i := 0; i < n; i++ {
			f.stagePageLocked(first + PageID(i))
		}
		return first, nil
	}
	first := PageID(f.nPages)
	for i := 0; i < n; i++ {
		f.stagePageLocked(first + PageID(i))
	}
	f.nPages += uint64(n)
	return first, nil
}

// takeFreeRunLocked removes an ID-contiguous, slot-adjacent run of n pages
// from the free stack.  Because the removed slots are adjacent, the on-page
// chain breaks at exactly one point: the page that sat just above the
// segment must now link to the page just below it.  Restaging that single
// link keeps the chain a future loadFreeList walks consistent with the
// stack, and the restage rides the normal WAL commit, so a crash either
// keeps the old chain or installs the new one whole.
func (f *diskFile) takeFreeRunLocked(n int) (PageID, bool) {
	i, first, ok := findFreeRun(f.free, n)
	if !ok {
		return InvalidPageID, false
	}
	if above := i + n; above < len(f.free) {
		below := InvalidPageID
		if i > 0 {
			below = f.free[i-1]
		}
		page := f.stagePageLocked(f.free[above])
		binary.LittleEndian.PutUint64(page[0:8], freePageMagic)
		binary.LittleEndian.PutUint64(page[8:16], uint64(below))
	}
	for k := 0; k < n; k++ {
		delete(f.freeSet, f.free[i+k])
	}
	f.free = append(f.free[:i], f.free[i+n:]...)
	return first, true
}

func (f *diskFile) Free(id PageID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if uint64(id) >= f.nPages {
		return fmt.Errorf("%w: free page %d of %d", ErrPageOutOfRange, id, f.nPages)
	}
	if _, dup := f.freeSet[id]; dup {
		return fmt.Errorf("pagefile: double free of page %d", id)
	}
	next := InvalidPageID
	if n := len(f.free); n > 0 {
		next = f.free[n-1]
	}
	page := f.stagePageLocked(id)
	binary.LittleEndian.PutUint64(page[0:8], freePageMagic)
	binary.LittleEndian.PutUint64(page[8:16], uint64(next))
	f.freeSet[id] = struct{}{}
	f.free = append(f.free, id)
	f.frees.Add(1)
	return nil
}

func (f *diskFile) FreePages() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.free)
}

func (f *diskFile) Read(id PageID, dst []byte) error {
	if len(dst) < f.pageSize {
		return fmt.Errorf("pagefile: read buffer of %d bytes is smaller than page size %d", len(dst), f.pageSize)
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		return ErrClosed
	}
	if uint64(id) >= f.nPages {
		return fmt.Errorf("%w: read page %d of %d", ErrPageOutOfRange, id, f.nPages)
	}
	f.reads.Add(1)
	f.bytesRead.Add(uint64(f.pageSize))
	if img, ok := f.staged[id]; ok {
		copy(dst, img)
		return nil
	}
	if uint64(id) >= f.committed {
		// Allocated this window but never written or staged (cannot happen
		// through the public API, which stages zeros on allocation); keep
		// the invariant anyway.
		clear(dst[:f.pageSize])
		return nil
	}
	if _, err := f.data.ReadAt(dst[:f.pageSize], f.pageOffset(id)); err != nil {
		return fmt.Errorf("pagefile: read page %d: %w", id, err)
	}
	return nil
}

func (f *diskFile) Write(id PageID, src []byte) error {
	if len(src) < f.pageSize {
		return fmt.Errorf("pagefile: write buffer of %d bytes is smaller than page size %d", len(src), f.pageSize)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if uint64(id) >= f.nPages {
		return fmt.Errorf("%w: write page %d of %d", ErrPageOutOfRange, id, f.nPages)
	}
	f.writes.Add(1)
	f.bytesWritten.Add(uint64(f.pageSize))
	buf, ok := f.staged[id]
	if !ok {
		buf = make([]byte, f.pageSize)
		f.staged[id] = buf
	}
	copy(buf, src[:f.pageSize])
	return nil
}

// Commit runs the WAL commit protocol described on diskFile.  It is a no-op
// when nothing changed since the last commit.
func (f *diskFile) Commit(meta []byte) error {
	if len(meta) > metaMax {
		return fmt.Errorf("pagefile: commit meta of %d bytes exceeds maximum %d", len(meta), metaMax)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if len(f.staged) == 0 && f.nPages == f.committed && bytes.Equal(meta, f.meta) {
		return nil
	}

	rec := walRecord{
		header: header{
			pageSize:  f.pageSize,
			nPages:    f.nPages,
			freeHead:  InvalidPageID,
			freeCount: uint64(len(f.free)),
			lsn:       f.lsn + 1,
			meta:      append([]byte(nil), meta...),
		},
	}
	if n := len(f.free); n > 0 {
		rec.freeHead = f.free[n-1]
	}
	rec.pages = make([]PageID, 0, len(f.staged))
	for id := range f.staged {
		rec.pages = append(rec.pages, id)
	}
	sort.Slice(rec.pages, func(i, j int) bool { return rec.pages[i] < rec.pages[j] })
	rec.images = make([][]byte, len(rec.pages))
	for i, id := range rec.pages {
		rec.images[i] = f.staged[id]
	}

	// 1. WAL append + fsync: the commit point.
	walBuf := f.encodeWALRecord(&rec)
	if _, err := f.wal.WriteAt(walBuf, 0); err != nil {
		return fmt.Errorf("pagefile: WAL write: %w", err)
	}
	if err := f.wal.Sync(); err != nil {
		return fmt.Errorf("pagefile: WAL sync: %w", err)
	}
	f.walBytes.Add(uint64(len(walBuf)))
	f.fsyncs.Add(1)

	// 2. In-place writeback + header + data fsync.  Any failure from here on
	// leaves the WAL intact; the next Open replays it.
	for i, id := range rec.pages {
		if _, err := f.data.WriteAt(rec.images[i], f.pageOffset(id)); err != nil {
			return fmt.Errorf("pagefile: writeback page %d: %w", id, err)
		}
	}
	if err := f.writeHeader(&rec.header); err != nil {
		return err
	}
	if err := f.data.Sync(); err != nil {
		return fmt.Errorf("pagefile: data sync: %w", err)
	}
	f.fsyncs.Add(1)

	// 3. Checkpoint: drop the consumed WAL.  Leaving it in place would be
	// harmless (replay is idempotent and LSN-guarded), so the truncate is
	// not fsynced.
	if err := f.wal.Truncate(0); err != nil {
		return fmt.Errorf("pagefile: WAL truncate: %w", err)
	}

	f.lsn = rec.lsn
	f.committed = f.nPages
	f.meta = rec.meta
	f.staged = map[PageID][]byte{}
	f.commits.Add(1)
	return nil
}

func (f *diskFile) Meta() []byte {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.meta == nil {
		return nil
	}
	return append([]byte(nil), f.meta...)
}

func (f *diskFile) Stats() Stats { return f.counters.snapshot() }

func (f *diskFile) ResetStats() { f.counters.reset() }

func (f *diskFile) SizeBytes() uint64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.nPages * uint64(f.pageSize)
}

func (f *diskFile) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	var errs []error
	if err := f.data.Close(); err != nil {
		errs = append(errs, err)
	}
	if err := f.wal.Close(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}
