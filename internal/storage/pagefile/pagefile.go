package pagefile

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultPageSize is the page size used throughout the repository unless a
// caller overrides it.  8 KiB matches the BerkeleyDB default used in the
// paper's experimental setup.
const DefaultPageSize = 8192

// PageID identifies a page within a File.  Page IDs are dense and start at 0.
type PageID uint64

// InvalidPageID is a sentinel that never refers to an allocated page.
const InvalidPageID = PageID(^uint64(0))

// Stats accumulates logical I/O counters for a File.  All counters are
// monotonically increasing; use File.ResetStats to start a new measurement
// window.
type Stats struct {
	// Reads is the number of page reads served by the file.
	Reads uint64
	// Writes is the number of page writes applied to the file.
	Writes uint64
	// Allocs is the number of pages allocated.
	Allocs uint64
	// Frees is the number of pages returned to the free list, and Reuses the
	// number of allocations satisfied from it.  Together with Allocs they show
	// whether delete/reinsert churn is bounded (freed pages are recycled) or
	// growing the file.
	Frees  uint64
	Reuses uint64
	// BytesRead and BytesWritten are the corresponding byte totals.
	BytesRead    uint64
	BytesWritten uint64
}

// File is a page-addressed storage area.
//
// A File is safe for concurrent use.  Two backing implementations are
// provided: an in-memory backing (NewMem) used by tests and benchmarks, and a
// disk backing (Open) used when datasets must survive the process or exceed
// memory.
type File struct {
	pageSize int

	mu     sync.RWMutex
	mem    [][]byte // in-memory backing; nil when disk-backed
	slab   []byte   // in-memory allocation arena pages are carved from
	disk   *os.File // disk backing; nil when memory-backed
	nPages uint64

	// free is the stack of recycled page IDs (B+-tree delete hygiene returns
	// emptied node pages here); freeSet guards against double frees, which
	// would hand the same page to two structures.
	free    []PageID
	freeSet map[PageID]struct{}

	readLatency atomic.Int64 // simulated latency per read, nanoseconds

	reads        atomic.Uint64
	writes       atomic.Uint64
	allocs       atomic.Uint64
	frees        atomic.Uint64
	reuses       atomic.Uint64
	bytesRead    atomic.Uint64
	bytesWritten atomic.Uint64
}

// ErrPageOutOfRange is returned when a page ID beyond the allocated range is
// read or written.
var ErrPageOutOfRange = errors.New("pagefile: page out of range")

// ErrBadPageSize is returned by constructors when the requested page size is
// not positive.
var ErrBadPageSize = errors.New("pagefile: page size must be positive")

// NewMem creates a memory-backed file with the given page size.
func NewMem(pageSize int) (*File, error) {
	if pageSize <= 0 {
		return nil, ErrBadPageSize
	}
	return &File{pageSize: pageSize, mem: make([][]byte, 0, 64)}, nil
}

// MustNewMem is like NewMem but panics on error.  It is intended for tests
// and examples where the page size is a constant.
func MustNewMem(pageSize int) *File {
	f, err := NewMem(pageSize)
	if err != nil {
		panic(err)
	}
	return f
}

// Open creates or opens a disk-backed file at path with the given page size.
// An existing file must have a length that is a multiple of the page size.
func Open(path string, pageSize int) (*File, error) {
	if pageSize <= 0 {
		return nil, ErrBadPageSize
	}
	fd, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pagefile: open %s: %w", path, err)
	}
	info, err := fd.Stat()
	if err != nil {
		fd.Close()
		return nil, fmt.Errorf("pagefile: stat %s: %w", path, err)
	}
	if info.Size()%int64(pageSize) != 0 {
		fd.Close()
		return nil, fmt.Errorf("pagefile: %s size %d is not a multiple of page size %d", path, info.Size(), pageSize)
	}
	return &File{
		pageSize: pageSize,
		disk:     fd,
		nPages:   uint64(info.Size() / int64(pageSize)),
	}, nil
}

// Close releases the backing resources.  Closing a memory-backed file drops
// its pages.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.mem = nil
	if f.disk != nil {
		err := f.disk.Close()
		f.disk = nil
		return err
	}
	return nil
}

// PageSize reports the fixed page size of the file.
func (f *File) PageSize() int { return f.pageSize }

// NumPages reports how many pages have been allocated.
func (f *File) NumPages() uint64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.numPagesLocked()
}

func (f *File) numPagesLocked() uint64 {
	if f.mem != nil {
		return uint64(len(f.mem))
	}
	return f.nPages
}

// SetReadLatency configures a simulated latency charged on every page read.
// A zero duration disables the simulation.  This is used by the benchmark
// harness to approximate cold-cache disk behaviour for long inverted lists.
func (f *File) SetReadLatency(d time.Duration) {
	if d < 0 {
		d = 0
	}
	f.readLatency.Store(int64(d))
}

// ReadLatency reports the configured simulated read latency.
func (f *File) ReadLatency() time.Duration {
	return time.Duration(f.readLatency.Load())
}

// memSlabPages is how many pages a memory-backed file reserves per arena
// growth; carving pages out of an arena keeps a bulk load's thousands of
// small allocations from becoming thousands of individual GC objects.
const memSlabPages = 64

// carvePageLocked returns a zeroed page buffer from the arena, growing it
// when exhausted.  The caller holds f.mu.
func (f *File) carvePageLocked() []byte {
	if len(f.slab) < f.pageSize {
		f.slab = make([]byte, memSlabPages*f.pageSize)
	}
	p := f.slab[:f.pageSize:f.pageSize]
	f.slab = f.slab[f.pageSize:]
	return p
}

// Allocate returns a zeroed page: a recycled one from the free list when
// available, otherwise a freshly appended one.
func (f *File) Allocate() (PageID, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.allocs.Add(1)
	if n := len(f.free); n > 0 {
		id := f.free[n-1]
		f.free = f.free[:n-1]
		delete(f.freeSet, id)
		f.reuses.Add(1)
		if f.mem != nil {
			clear(f.mem[id])
			return id, nil
		}
		zero := make([]byte, f.pageSize)
		if _, err := f.disk.WriteAt(zero, int64(id)*int64(f.pageSize)); err != nil {
			return InvalidPageID, fmt.Errorf("pagefile: reuse page %d: %w", id, err)
		}
		return id, nil
	}
	if f.mem != nil {
		f.mem = append(f.mem, f.carvePageLocked())
		return PageID(len(f.mem) - 1), nil
	}
	id := PageID(f.nPages)
	zero := make([]byte, f.pageSize)
	if _, err := f.disk.WriteAt(zero, int64(id)*int64(f.pageSize)); err != nil {
		return InvalidPageID, fmt.Errorf("pagefile: allocate page %d: %w", id, err)
	}
	f.nPages++
	return id, nil
}

// Free returns an allocated page to the free list for a later Allocate to
// reuse.  The file never shrinks, but a workload that frees as it allocates
// (delete/reinsert churn over B+-trees) stays bounded instead of growing
// without limit.  Freeing an unallocated or already-free page is an error.
func (f *File) Free(id PageID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if uint64(id) >= f.numPagesLocked() {
		return fmt.Errorf("%w: free page %d of %d", ErrPageOutOfRange, id, f.numPagesLocked())
	}
	if _, dup := f.freeSet[id]; dup {
		return fmt.Errorf("pagefile: double free of page %d", id)
	}
	if f.freeSet == nil {
		f.freeSet = map[PageID]struct{}{}
	}
	f.freeSet[id] = struct{}{}
	f.free = append(f.free, id)
	f.frees.Add(1)
	return nil
}

// FreePages reports how many pages are currently on the free list.
func (f *File) FreePages() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.free)
}

// AllocateN allocates n consecutive pages and returns the ID of the first.
// It is used by the blob store to reserve space for large immutable objects
// (the long inverted lists) in one call.
func (f *File) AllocateN(n int) (PageID, error) {
	if n <= 0 {
		return InvalidPageID, fmt.Errorf("pagefile: AllocateN(%d): n must be positive", n)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.allocs.Add(uint64(n))
	if f.mem != nil {
		first := PageID(len(f.mem))
		for i := 0; i < n; i++ {
			f.mem = append(f.mem, f.carvePageLocked())
		}
		return first, nil
	}
	first := PageID(f.nPages)
	zero := make([]byte, f.pageSize*n)
	if _, err := f.disk.WriteAt(zero, int64(first)*int64(f.pageSize)); err != nil {
		return InvalidPageID, fmt.Errorf("pagefile: allocate %d pages: %w", n, err)
	}
	f.nPages += uint64(n)
	return first, nil
}

// Read copies the contents of page id into dst, which must be at least
// PageSize bytes long.
func (f *File) Read(id PageID, dst []byte) error {
	if len(dst) < f.pageSize {
		return fmt.Errorf("pagefile: read buffer of %d bytes is smaller than page size %d", len(dst), f.pageSize)
	}
	if lat := f.readLatency.Load(); lat > 0 {
		time.Sleep(time.Duration(lat))
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	if uint64(id) >= f.numPagesLocked() {
		return fmt.Errorf("%w: read page %d of %d", ErrPageOutOfRange, id, f.numPagesLocked())
	}
	f.reads.Add(1)
	f.bytesRead.Add(uint64(f.pageSize))
	if f.mem != nil {
		copy(dst, f.mem[id])
		return nil
	}
	if _, err := f.disk.ReadAt(dst[:f.pageSize], int64(id)*int64(f.pageSize)); err != nil {
		return fmt.Errorf("pagefile: read page %d: %w", id, err)
	}
	return nil
}

// Write replaces the contents of page id with src, which must be at least
// PageSize bytes long (only the first PageSize bytes are stored).
func (f *File) Write(id PageID, src []byte) error {
	if len(src) < f.pageSize {
		return fmt.Errorf("pagefile: write buffer of %d bytes is smaller than page size %d", len(src), f.pageSize)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if uint64(id) >= f.numPagesLocked() {
		return fmt.Errorf("%w: write page %d of %d", ErrPageOutOfRange, id, f.numPagesLocked())
	}
	f.writes.Add(1)
	f.bytesWritten.Add(uint64(f.pageSize))
	if f.mem != nil {
		copy(f.mem[id], src[:f.pageSize])
		return nil
	}
	if _, err := f.disk.WriteAt(src[:f.pageSize], int64(id)*int64(f.pageSize)); err != nil {
		return fmt.Errorf("pagefile: write page %d: %w", id, err)
	}
	return nil
}

// Stats returns a snapshot of the I/O counters.
func (f *File) Stats() Stats {
	return Stats{
		Reads:        f.reads.Load(),
		Writes:       f.writes.Load(),
		Allocs:       f.allocs.Load(),
		Frees:        f.frees.Load(),
		Reuses:       f.reuses.Load(),
		BytesRead:    f.bytesRead.Load(),
		BytesWritten: f.bytesWritten.Load(),
	}
}

// ResetStats zeroes the I/O counters.  Allocation counts are preserved since
// they describe the size of the file rather than a measurement window.
func (f *File) ResetStats() {
	f.reads.Store(0)
	f.writes.Store(0)
	f.bytesRead.Store(0)
	f.bytesWritten.Store(0)
}

// SizeBytes reports the total allocated size of the file in bytes.
func (f *File) SizeBytes() uint64 {
	return f.NumPages() * uint64(f.pageSize)
}
