package pagefile

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultPageSize is the page size used throughout the repository unless a
// caller overrides it.  8 KiB matches the BerkeleyDB default used in the
// paper's experimental setup.
const DefaultPageSize = 8192

// PageID identifies a page within a File.  Page IDs are dense and start at 0.
type PageID uint64

// InvalidPageID is a sentinel that never refers to an allocated page.
const InvalidPageID = PageID(^uint64(0))

// Stats accumulates logical I/O counters for a File.  All counters are
// monotonically increasing; use File.ResetStats to start a new measurement
// window.
type Stats struct {
	// Reads is the number of page reads served by the file.
	Reads uint64
	// Writes is the number of page writes applied to the file.
	Writes uint64
	// Allocs is the number of pages allocated.
	Allocs uint64
	// Frees is the number of pages returned to the free list, and Reuses the
	// number of allocations satisfied from it.  Together with Allocs they show
	// whether delete/reinsert churn is bounded (freed pages are recycled) or
	// growing the file.
	Frees  uint64
	Reuses uint64
	// BytesRead and BytesWritten are the corresponding byte totals.
	BytesRead    uint64
	BytesWritten uint64
	// Durability counters; all zero for a memory-backed file.
	//
	// Commits counts successful Commit calls; WALBytes the bytes appended to
	// the write-ahead log; Fsyncs the fsync calls issued (WAL and data file);
	// Recoveries how many Opens had to replay a WAL record; TornPages how
	// many corrupt or half-written structures (torn WAL tail, bad header)
	// recovery detected and discarded.
	Commits    uint64
	WALBytes   uint64
	Fsyncs     uint64
	Recoveries uint64
	TornPages  uint64
}

// File is a page-addressed storage area.
//
// Implementations are safe for concurrent use.  Two backings are provided:
// an in-memory backing (NewMem) used by tests and in-memory benchmarks, and
// a durable disk backing (Open) whose contents survive the process — see
// disk.go for the on-disk format and the WAL commit protocol.
//
// Writes to a durable file are buffered (staged) until Commit makes them
// atomically durable; a crash at any point loses at most the writes since
// the last successful Commit, never committed state.  The in-memory backing
// applies writes immediately and treats Commit as a meta store.
type File interface {
	// PageSize reports the fixed page size of the file.
	PageSize() int
	// NumPages reports how many pages have been allocated (including, for a
	// durable file, allocations not yet committed).
	NumPages() uint64
	// Allocate returns a zeroed page: a recycled one from the free list when
	// available, otherwise a freshly appended one.
	Allocate() (PageID, error)
	// AllocateN allocates n consecutive pages and returns the ID of the
	// first.  It is used by the blob store to reserve space for large
	// immutable objects (the long inverted lists) in one call.  Like
	// Allocate it prefers recycling: a contiguous run of freed pages (the
	// shape a dropped index's blobs leave behind) is reused before the file
	// grows.
	AllocateN(n int) (PageID, error)
	// Free returns an allocated page to the free list for a later Allocate
	// to reuse.  The file never shrinks, but a workload that frees as it
	// allocates (delete/reinsert churn over B+-trees) stays bounded instead
	// of growing without limit.  Freeing an unallocated or already-free page
	// is an error.
	Free(id PageID) error
	// FreePages reports how many pages are currently on the free list.
	FreePages() int
	// Read copies the contents of page id into dst, which must be at least
	// PageSize bytes long.
	Read(id PageID, dst []byte) error
	// Write replaces the contents of page id with src, which must be at
	// least PageSize bytes long (only the first PageSize bytes are stored).
	Write(id PageID, src []byte) error
	// Commit atomically makes every write since the previous Commit durable
	// together with meta, a small opaque application root (the engine stores
	// its catalog pointer there).  On a memory-backed file Commit only
	// records meta.
	Commit(meta []byte) error
	// Meta returns the most recently committed meta, nil if none.
	Meta() []byte
	// Stats returns a snapshot of the I/O counters.
	Stats() Stats
	// ResetStats zeroes the per-window I/O counters.  Allocation counts and
	// the recovery counters are preserved: they describe the file, not a
	// measurement window.
	ResetStats()
	// SizeBytes reports the total allocated size of the file in bytes.
	SizeBytes() uint64
	// SetReadLatency configures a simulated latency charged on every page
	// read.  A zero duration disables the simulation.  The benchmark harness
	// uses it to approximate cold-cache disk behaviour for long inverted
	// lists on the in-memory backing.
	SetReadLatency(d time.Duration)
	// ReadLatency reports the configured simulated read latency.
	ReadLatency() time.Duration
	// Close releases the backing resources.  Close does not commit: staged
	// writes on a durable file are discarded (the engine commits first).
	Close() error
}

// ErrPageOutOfRange is returned when a page ID beyond the allocated range is
// read or written.
var ErrPageOutOfRange = errors.New("pagefile: page out of range")

// ErrBadPageSize is returned by constructors when the requested page size is
// not usable.
var ErrBadPageSize = errors.New("pagefile: bad page size")

// counters groups the atomic statistics shared by both backings.
type counters struct {
	reads        atomic.Uint64
	writes       atomic.Uint64
	allocs       atomic.Uint64
	frees        atomic.Uint64
	reuses       atomic.Uint64
	bytesRead    atomic.Uint64
	bytesWritten atomic.Uint64
	commits      atomic.Uint64
	walBytes     atomic.Uint64
	fsyncs       atomic.Uint64
	recoveries   atomic.Uint64
	tornPages    atomic.Uint64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Reads:        c.reads.Load(),
		Writes:       c.writes.Load(),
		Allocs:       c.allocs.Load(),
		Frees:        c.frees.Load(),
		Reuses:       c.reuses.Load(),
		BytesRead:    c.bytesRead.Load(),
		BytesWritten: c.bytesWritten.Load(),
		Commits:      c.commits.Load(),
		WALBytes:     c.walBytes.Load(),
		Fsyncs:       c.fsyncs.Load(),
		Recoveries:   c.recoveries.Load(),
		TornPages:    c.tornPages.Load(),
	}
}

func (c *counters) reset() {
	c.reads.Store(0)
	c.writes.Store(0)
	c.bytesRead.Store(0)
	c.bytesWritten.Store(0)
	c.commits.Store(0)
	c.walBytes.Store(0)
	c.fsyncs.Store(0)
}

// memFile is the in-memory backing: a simulated disk with I/O counters and
// optional per-read latency, used by tests and the in-memory benchmarks.
type memFile struct {
	pageSize int

	mu   sync.RWMutex
	mem  [][]byte // page images
	slab []byte   // allocation arena pages are carved from
	meta []byte

	// free is the stack of recycled page IDs (B+-tree delete hygiene returns
	// emptied node pages here); freeSet guards against double frees, which
	// would hand the same page to two structures.
	free    []PageID
	freeSet map[PageID]struct{}

	readLatency atomic.Int64 // simulated latency per read, nanoseconds

	counters
}

// NewMem creates a memory-backed file with the given page size.
func NewMem(pageSize int) (File, error) {
	if pageSize <= 0 {
		return nil, ErrBadPageSize
	}
	return &memFile{pageSize: pageSize, mem: make([][]byte, 0, 64)}, nil
}

// MustNewMem is like NewMem but panics on error.  It is intended for tests
// and examples where the page size is a constant.
func MustNewMem(pageSize int) File {
	f, err := NewMem(pageSize)
	if err != nil {
		panic(err)
	}
	return f
}

// Close drops the pages of a memory-backed file.
func (f *memFile) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.mem = nil
	return nil
}

func (f *memFile) PageSize() int { return f.pageSize }

func (f *memFile) NumPages() uint64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return uint64(len(f.mem))
}

func (f *memFile) SetReadLatency(d time.Duration) {
	if d < 0 {
		d = 0
	}
	f.readLatency.Store(int64(d))
}

func (f *memFile) ReadLatency() time.Duration {
	return time.Duration(f.readLatency.Load())
}

// memSlabPages is how many pages a memory-backed file reserves per arena
// growth; carving pages out of an arena keeps a bulk load's thousands of
// small allocations from becoming thousands of individual GC objects.
const memSlabPages = 64

// carvePageLocked returns a zeroed page buffer from the arena, growing it
// when exhausted.  The caller holds f.mu.
func (f *memFile) carvePageLocked() []byte {
	if len(f.slab) < f.pageSize {
		f.slab = make([]byte, memSlabPages*f.pageSize)
	}
	p := f.slab[:f.pageSize:f.pageSize]
	f.slab = f.slab[f.pageSize:]
	return p
}

func (f *memFile) Allocate() (PageID, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.allocs.Add(1)
	if n := len(f.free); n > 0 {
		id := f.free[n-1]
		f.free = f.free[:n-1]
		delete(f.freeSet, id)
		f.reuses.Add(1)
		clear(f.mem[id])
		return id, nil
	}
	f.mem = append(f.mem, f.carvePageLocked())
	return PageID(len(f.mem) - 1), nil
}

func (f *memFile) Free(id PageID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if uint64(id) >= uint64(len(f.mem)) {
		return fmt.Errorf("%w: free page %d of %d", ErrPageOutOfRange, id, len(f.mem))
	}
	if _, dup := f.freeSet[id]; dup {
		return fmt.Errorf("pagefile: double free of page %d", id)
	}
	if f.freeSet == nil {
		f.freeSet = map[PageID]struct{}{}
	}
	f.freeSet[id] = struct{}{}
	f.free = append(f.free, id)
	f.frees.Add(1)
	return nil
}

func (f *memFile) FreePages() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.free)
}

func (f *memFile) AllocateN(n int) (PageID, error) {
	if n <= 0 {
		return InvalidPageID, fmt.Errorf("pagefile: AllocateN(%d): n must be positive", n)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.allocs.Add(uint64(n))
	if i, first, ok := findFreeRun(f.free, n); ok {
		for k := 0; k < n; k++ {
			delete(f.freeSet, f.free[i+k])
		}
		f.free = append(f.free[:i], f.free[i+n:]...)
		for k := 0; k < n; k++ {
			clear(f.mem[first+PageID(k)])
		}
		f.reuses.Add(uint64(n))
		return first, nil
	}
	first := PageID(len(f.mem))
	for i := 0; i < n; i++ {
		f.mem = append(f.mem, f.carvePageLocked())
	}
	return first, nil
}

// findFreeRun scans a free stack for n pages whose IDs are consecutive and
// that occupy adjacent stack slots.  Requiring slot adjacency (not just ID
// adjacency) lets the caller remove the run by splicing the stack — and,
// for the durable backing, its on-page chain — at a single point.  Pages
// freed in ID order, the shape a dropped index's release leaves behind,
// satisfy both conditions.  Returns the segment's lowest stack index and
// the run's lowest page ID.
func findFreeRun(free []PageID, n int) (int, PageID, bool) {
	if n <= 0 || len(free) < n {
		return 0, InvalidPageID, false
	}
	if n == 1 {
		// Any free page qualifies; take the top of the stack like Allocate.
		return len(free) - 1, free[len(free)-1], true
	}
	ascLen, descLen := 1, 1
	for i := 1; i < len(free); i++ {
		if free[i] == free[i-1]+1 {
			ascLen++
		} else {
			ascLen = 1
		}
		if free[i]+1 == free[i-1] {
			descLen++
		} else {
			descLen = 1
		}
		if ascLen >= n {
			return i - n + 1, free[i-n+1], true
		}
		if descLen >= n {
			return i - n + 1, free[i], true
		}
	}
	return 0, InvalidPageID, false
}

func (f *memFile) Read(id PageID, dst []byte) error {
	if len(dst) < f.pageSize {
		return fmt.Errorf("pagefile: read buffer of %d bytes is smaller than page size %d", len(dst), f.pageSize)
	}
	if lat := f.readLatency.Load(); lat > 0 {
		time.Sleep(time.Duration(lat))
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	if uint64(id) >= uint64(len(f.mem)) {
		return fmt.Errorf("%w: read page %d of %d", ErrPageOutOfRange, id, len(f.mem))
	}
	f.reads.Add(1)
	f.bytesRead.Add(uint64(f.pageSize))
	copy(dst, f.mem[id])
	return nil
}

func (f *memFile) Write(id PageID, src []byte) error {
	if len(src) < f.pageSize {
		return fmt.Errorf("pagefile: write buffer of %d bytes is smaller than page size %d", len(src), f.pageSize)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if uint64(id) >= uint64(len(f.mem)) {
		return fmt.Errorf("%w: write page %d of %d", ErrPageOutOfRange, id, len(f.mem))
	}
	f.writes.Add(1)
	f.bytesWritten.Add(uint64(f.pageSize))
	copy(f.mem[id], src[:f.pageSize])
	return nil
}

// Commit on a memory-backed file records meta; the page images are already
// "durable" for the life of the process.
func (f *memFile) Commit(meta []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.meta = append(f.meta[:0], meta...)
	f.commits.Add(1)
	return nil
}

func (f *memFile) Meta() []byte {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.meta == nil {
		return nil
	}
	return append([]byte(nil), f.meta...)
}

func (f *memFile) Stats() Stats { return f.counters.snapshot() }

func (f *memFile) ResetStats() { f.counters.reset() }

func (f *memFile) SizeBytes() uint64 {
	return f.NumPages() * uint64(f.pageSize)
}
