package pagefile

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"
)

func TestMemAllocateReadWrite(t *testing.T) {
	f := MustNewMem(256)
	id, err := f.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id != 0 {
		t.Errorf("first page ID = %d, want 0", id)
	}
	src := bytes.Repeat([]byte{0x5A}, 256)
	if err := f.Write(id, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 256)
	if err := f.Read(id, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, dst) {
		t.Error("read back page does not match written data")
	}
}

func TestBadPageSize(t *testing.T) {
	if _, err := NewMem(0); err == nil {
		t.Error("NewMem(0) succeeded, want error")
	}
	if _, err := NewMem(-1); err == nil {
		t.Error("NewMem(-1) succeeded, want error")
	}
}

func TestOutOfRange(t *testing.T) {
	f := MustNewMem(128)
	buf := make([]byte, 128)
	if err := f.Read(0, buf); err == nil {
		t.Error("Read of unallocated page succeeded, want error")
	}
	if err := f.Write(5, buf); err == nil {
		t.Error("Write of unallocated page succeeded, want error")
	}
}

func TestShortBuffers(t *testing.T) {
	f := MustNewMem(128)
	id, _ := f.Allocate()
	small := make([]byte, 64)
	if err := f.Read(id, small); err == nil {
		t.Error("Read into short buffer succeeded, want error")
	}
	if err := f.Write(id, small); err == nil {
		t.Error("Write from short buffer succeeded, want error")
	}
}

func TestAllocateN(t *testing.T) {
	f := MustNewMem(128)
	first, err := f.AllocateN(10)
	if err != nil {
		t.Fatal(err)
	}
	if first != 0 {
		t.Errorf("first = %d, want 0", first)
	}
	if f.NumPages() != 10 {
		t.Errorf("NumPages = %d, want 10", f.NumPages())
	}
	if _, err := f.AllocateN(0); err == nil {
		t.Error("AllocateN(0) succeeded, want error")
	}
}

func TestStatsCounting(t *testing.T) {
	f := MustNewMem(128)
	id, _ := f.Allocate()
	buf := make([]byte, 128)
	for i := 0; i < 3; i++ {
		if err := f.Write(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := f.Read(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	s := f.Stats()
	if s.Reads != 5 || s.Writes != 3 || s.Allocs != 1 {
		t.Errorf("Stats = %+v, want 5 reads, 3 writes, 1 alloc", s)
	}
	if s.BytesRead != 5*128 || s.BytesWritten != 3*128 {
		t.Errorf("byte counters = %+v", s)
	}
	f.ResetStats()
	s = f.Stats()
	if s.Reads != 0 || s.Writes != 0 {
		t.Errorf("counters not reset: %+v", s)
	}
	if s.Allocs != 1 {
		t.Errorf("Allocs reset to %d, want preserved 1", s.Allocs)
	}
}

func TestSizeBytes(t *testing.T) {
	f := MustNewMem(256)
	if _, err := f.AllocateN(4); err != nil {
		t.Fatal(err)
	}
	if got := f.SizeBytes(); got != 1024 {
		t.Errorf("SizeBytes = %d, want 1024", got)
	}
}

func TestReadLatency(t *testing.T) {
	f := MustNewMem(128)
	id, _ := f.Allocate()
	buf := make([]byte, 128)
	f.SetReadLatency(2 * time.Millisecond)
	if got := f.ReadLatency(); got != 2*time.Millisecond {
		t.Fatalf("ReadLatency = %v", got)
	}
	start := time.Now()
	if err := f.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Errorf("read with simulated latency took %v, want >= 2ms", elapsed)
	}
	f.SetReadLatency(-1)
	if got := f.ReadLatency(); got != 0 {
		t.Errorf("negative latency should clamp to 0, got %v", got)
	}
}

func TestDiskBackedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	f, err := Open(path, WithPageSize(512))
	if err != nil {
		t.Fatal(err)
	}
	id, err := f.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	src := bytes.Repeat([]byte{7}, 512)
	if err := f.Write(id, src); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit([]byte("root")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen — no explicit page size: it comes from the header — and verify
	// the committed page and meta survived.
	f2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if f2.PageSize() != 512 {
		t.Fatalf("reopened PageSize = %d, want 512", f2.PageSize())
	}
	if f2.NumPages() != 1 {
		t.Fatalf("reopened NumPages = %d, want 1", f2.NumPages())
	}
	dst := make([]byte, 512)
	if err := f2.Read(0, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, dst) {
		t.Error("reopened page contents differ")
	}
	if got := f2.Meta(); !bytes.Equal(got, []byte("root")) {
		t.Errorf("reopened Meta = %q, want %q", got, "root")
	}
}

func TestUncommittedWritesLostOnReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	f, err := Open(path, WithPageSize(512))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := f.Allocate()
	if err := f.Write(a, bytes.Repeat([]byte{1}, 512)); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(nil); err != nil {
		t.Fatal(err)
	}
	// Second page allocated and written but never committed.
	b, _ := f.Allocate()
	if err := f.Write(b, bytes.Repeat([]byte{2}, 512)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	f2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if f2.NumPages() != 1 {
		t.Errorf("reopened NumPages = %d, want only the 1 committed page", f2.NumPages())
	}
}

func TestOpenRejectsMisalignedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	f, err := Open(path, WithPageSize(512))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Allocate(); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(nil); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Open(path, WithPageSize(1024)); err == nil {
		t.Error("Open with mismatched page size succeeded, want error")
	}
}

func TestFreeListReuse(t *testing.T) {
	f := MustNewMem(256)
	ids := make([]PageID, 4)
	for i := range ids {
		id, err := f.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	// Dirty page 2, free it, and check the next Allocate hands it back zeroed.
	if err := f.Write(ids[2], bytes.Repeat([]byte{0xAB}, 256)); err != nil {
		t.Fatal(err)
	}
	if err := f.Free(ids[2]); err != nil {
		t.Fatal(err)
	}
	if got := f.FreePages(); got != 1 {
		t.Fatalf("FreePages = %d, want 1", got)
	}
	before := f.NumPages()
	id, err := f.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id != ids[2] {
		t.Errorf("Allocate after Free = page %d, want recycled page %d", id, ids[2])
	}
	if f.NumPages() != before {
		t.Errorf("NumPages grew from %d to %d despite free list", before, f.NumPages())
	}
	dst := make([]byte, 256)
	if err := f.Read(id, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, make([]byte, 256)) {
		t.Error("recycled page was not zeroed")
	}
	st := f.Stats()
	if st.Frees != 1 || st.Reuses != 1 {
		t.Errorf("Stats Frees=%d Reuses=%d, want 1 and 1", st.Frees, st.Reuses)
	}
}

func TestFreeRejectsBadPages(t *testing.T) {
	f := MustNewMem(256)
	id, err := f.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Free(PageID(99)); err == nil {
		t.Error("Free of unallocated page succeeded, want error")
	}
	if err := f.Free(id); err != nil {
		t.Fatal(err)
	}
	if err := f.Free(id); err == nil {
		t.Error("double Free succeeded, want error")
	}
}

func TestFreeListDiskBacked(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	f, err := Open(path, WithPageSize(512))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	a, _ := f.Allocate()
	b, _ := f.Allocate()
	if err := f.Write(a, bytes.Repeat([]byte{0x7F}, 512)); err != nil {
		t.Fatal(err)
	}
	if err := f.Free(a); err != nil {
		t.Fatal(err)
	}
	id, err := f.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id != a {
		t.Errorf("disk-backed Allocate after Free = %d, want %d", id, a)
	}
	dst := make([]byte, 512)
	if err := f.Read(id, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, make([]byte, 512)) {
		t.Error("recycled disk page was not zeroed")
	}
	_ = b
}

// TestAllocateNReusesFreedRuns covers the run recycler on both backings: a
// contiguous run freed out of the middle of the file (the shape a dropped
// index's blobs leave behind) must satisfy the next AllocateN of that size
// without growing the file, zeroed, and — on the durable backing — with a
// free-list chain that still walks cleanly after a commit and reopen.
func TestAllocateNReusesFreedRuns(t *testing.T) {
	t.Run("mem", func(t *testing.T) {
		f := MustNewMem(256)
		first, err := f.AllocateN(10)
		if err != nil {
			t.Fatal(err)
		}
		// Free pages 3..6 in ascending order (slot-adjacent run), plus two
		// scattered singles the run scan must skip over.
		if err := f.Free(first + 8); err != nil {
			t.Fatal(err)
		}
		for i := 3; i <= 6; i++ {
			if err := f.Free(first + PageID(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := f.Free(first + 0); err != nil {
			t.Fatal(err)
		}
		before := f.NumPages()
		run, err := f.AllocateN(4)
		if err != nil {
			t.Fatal(err)
		}
		if run != first+3 {
			t.Errorf("AllocateN(4) = page %d, want recycled run start %d", run, first+3)
		}
		if f.NumPages() != before {
			t.Errorf("NumPages grew from %d to %d despite a matching free run", before, f.NumPages())
		}
		if got := f.FreePages(); got != 2 {
			t.Errorf("FreePages after run reuse = %d, want the 2 scattered singles", got)
		}
		dst := make([]byte, 256)
		for i := 0; i < 4; i++ {
			if err := f.Read(run+PageID(i), dst); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(dst, make([]byte, 256)) {
				t.Errorf("recycled run page %d was not zeroed", i)
			}
		}
		// No run of 3 remains: AllocateN must grow the file, not corrupt the
		// free list trying.
		if _, err := f.AllocateN(3); err != nil {
			t.Fatal(err)
		}
		if f.NumPages() != before+3 {
			t.Errorf("NumPages = %d, want %d (no run of 3 was free)", f.NumPages(), before+3)
		}
	})

	t.Run("disk", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "pages.db")
		f, err := Open(path, WithPageSize(512))
		if err != nil {
			t.Fatal(err)
		}
		first, err := f.AllocateN(10)
		if err != nil {
			t.Fatal(err)
		}
		// Free singles around a 4-page run so the splice point is mid-chain.
		for _, off := range []PageID{9, 3, 4, 5, 6, 1} {
			if err := f.Free(first + off); err != nil {
				t.Fatal(err)
			}
		}
		if err := f.Commit(nil); err != nil {
			t.Fatal(err)
		}
		run, err := f.AllocateN(4)
		if err != nil {
			t.Fatal(err)
		}
		if run != first+3 {
			t.Errorf("disk AllocateN(4) = page %d, want recycled run start %d", run, first+3)
		}
		if st := f.Stats(); st.Reuses < 4 {
			t.Errorf("Stats Reuses = %d, want >= 4 after run reuse", st.Reuses)
		}
		if err := f.Commit(nil); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}

		// The spliced chain must still walk: reopen rebuilds the free list
		// from the on-page links, and the two surviving singles must both be
		// reusable.
		re, err := Open(path)
		if err != nil {
			t.Fatalf("reopen after run reuse: %v", err)
		}
		defer re.Close()
		if got := re.FreePages(); got != 2 {
			t.Fatalf("FreePages after reopen = %d, want 2", got)
		}
		got := map[PageID]bool{}
		for i := 0; i < 2; i++ {
			id, err := re.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			got[id] = true
		}
		if !got[first+9] || !got[first+1] {
			t.Errorf("reopened free list handed out %v, want the surviving singles %d and %d", got, first+9, first+1)
		}
		if re.NumPages() != f.NumPages() {
			t.Errorf("NumPages after reopen = %d, want %d", re.NumPages(), f.NumPages())
		}
	})
}
