package buffer

import (
	"errors"
	"testing"

	"svrdb/internal/storage/pagefile"
)

// failWriteFile wraps a pagefile.File and fails writes of one page while
// armed, recording the writes that do go through.
type failWriteFile struct {
	pagefile.File
	failID pagefile.PageID
	armed  bool
	writes []pagefile.PageID
}

func (f *failWriteFile) Write(id pagefile.PageID, data []byte) error {
	if f.armed && id == f.failID {
		return errors.New("synthetic write failure")
	}
	f.writes = append(f.writes, id)
	return f.File.Write(id, data)
}

// TestFlushOrderedErrorKeepsFramesDirty pins the flush error contract: a
// failing writeback surfaces as a *FlushError naming the page, the failing
// frame and every later frame in the sweep stay dirty, and a retry after the
// fault clears completes the flush without rewriting already-clean pages.
func TestFlushOrderedErrorKeepsFramesDirty(t *testing.T) {
	ff := &failWriteFile{File: pagefile.MustNewMem(pagefile.DefaultPageSize), failID: 1, armed: true}
	p := MustNew(ff, 8)
	for i := 0; i < 3; i++ {
		fr, err := p.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		fr.Data()[0] = byte(i + 1)
		fr.MarkDirty()
		fr.Release()
	}

	err := p.FlushOrdered()
	var fe *FlushError
	if !errors.As(err, &fe) {
		t.Fatalf("FlushOrdered returned %v, want *FlushError", err)
	}
	if fe.PageID != 1 {
		t.Errorf("FlushError.PageID = %d, want 1", fe.PageID)
	}
	if len(ff.writes) != 1 || ff.writes[0] != 0 {
		t.Errorf("writes before the fault = %v, want [0]", ff.writes)
	}
	dirty := func(id pagefile.PageID) bool {
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.frames[id].dirty
	}
	if dirty(0) {
		t.Error("page 0 flushed but still marked dirty")
	}
	if !dirty(1) || !dirty(2) {
		t.Error("failing frame or a later frame was marked clean; a retry would lose its contents")
	}

	// Retry after the fault clears: only the still-dirty pages go out.
	ff.armed = false
	if err := p.FlushOrdered(); err != nil {
		t.Fatalf("retry: %v", err)
	}
	if len(ff.writes) != 3 || ff.writes[1] != 1 || ff.writes[2] != 2 {
		t.Errorf("writes after retry = %v, want [0 1 2]", ff.writes)
	}
	if dirty(1) || dirty(2) {
		t.Error("frames still dirty after a successful retry")
	}

	// The file must hold every page's final contents.
	buf := make([]byte, p.PageSize())
	for id := pagefile.PageID(0); id < 3; id++ {
		if err := ff.Read(id, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(id+1) {
			t.Errorf("page %d holds %d, want %d", id, buf[0], id+1)
		}
	}
}
