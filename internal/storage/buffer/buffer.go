package buffer

import (
	"container/list"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"svrdb/internal/storage/pagefile"
)

// Stats counts buffer pool activity since the last ResetStats.
type Stats struct {
	Hits      uint64 // page requests satisfied from the pool
	Misses    uint64 // page requests that had to read the underlying file
	Evictions uint64 // pages evicted to make room
	Flushes   uint64 // dirty pages written back
	// OverReleases counts Release calls without a matching Get.  A correct
	// caller never produces one; the counter (also checked by CheckPins)
	// exists so unbalanced pin accounting is detectable instead of silently
	// ignored.
	OverReleases uint64
}

// Frame is a pinned page held by the buffer pool.  Callers must Release a
// frame when finished with it; a released frame's Data must not be used
// again.
type Frame struct {
	pool *Pool
	id   pagefile.PageID
	data []byte
	elem *list.Element

	pins  int
	dirty bool

	// ready is closed once the page contents are loaded (the frame's loading
	// latch); loadErr is set before ready is closed when the read failed.
	// Concurrent Gets of the same page wait on ready instead of serializing
	// the file read under the pool lock.
	ready   chan struct{}
	loadErr error
}

// ID returns the page ID the frame holds.
func (fr *Frame) ID() pagefile.PageID { return fr.id }

// Data returns the page contents.  The slice aliases the pool's copy of the
// page; mutations must be followed by MarkDirty so that they are written
// back on eviction or flush.
func (fr *Frame) Data() []byte { return fr.data }

// MarkDirty records that the frame's contents have been modified.
func (fr *Frame) MarkDirty() {
	fr.pool.mu.Lock()
	fr.dirty = true
	fr.pool.mu.Unlock()
}

// Patch overwrites len(src) bytes of the page at offset off and marks the
// frame dirty.  It is the mutate-in-place fast path for same-length value
// rewrites: the caller edits the resident page image directly instead of
// rebuilding and rewriting the whole page.  The caller must hold the pin for
// the duration of the call and off+len(src) must lie within the page.
func (fr *Frame) Patch(off int, src []byte) {
	if off < 0 || off+len(src) > len(fr.data) {
		panic(fmt.Sprintf("buffer: patch [%d,%d) outside page of %d bytes", off, off+len(src), len(fr.data)))
	}
	copy(fr.data[off:], src)
	fr.MarkDirty()
}

// Release unpins the frame.  It is an error (reported by the pool's
// CheckPins) to release a frame more times than it was pinned.
func (fr *Frame) Release() {
	fr.pool.release(fr)
}

// Pool is a fixed-capacity LRU buffer pool.  It is safe for concurrent use.
type Pool struct {
	file     pagefile.File
	capacity int

	mu     sync.Mutex
	frames map[pagefile.PageID]*Frame
	lru    *list.List // front = most recently used; holds unpinned and pinned frames

	// freeData recycles page buffers of evicted frames so a steady-state
	// miss does not allocate.
	freeData [][]byte

	// The activity counters are atomics so that Stats and the benchmark
	// harness can sample them while concurrent queries hammer the pool,
	// without taking p.mu and without torn reads on 32-bit platforms.
	hits         atomic.Uint64
	misses       atomic.Uint64
	evictions    atomic.Uint64
	flushes      atomic.Uint64
	overReleases atomic.Uint64
}

// maxFreeBuffers bounds the recycled page-buffer list.
const maxFreeBuffers = 16

// ErrPoolFull is returned when every frame in the pool is pinned and a new
// page must be brought in.
var ErrPoolFull = errors.New("buffer: all frames pinned")

// New creates a pool over file with space for capacity pages.  Capacity must
// be at least 1.
func New(file pagefile.File, capacity int) (*Pool, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("buffer: capacity %d must be at least 1", capacity)
	}
	return &Pool{
		file:     file,
		capacity: capacity,
		frames:   make(map[pagefile.PageID]*Frame, capacity),
		lru:      list.New(),
	}, nil
}

// MustNew is like New but panics on error.
func MustNew(file pagefile.File, capacity int) *Pool {
	p, err := New(file, capacity)
	if err != nil {
		panic(err)
	}
	return p
}

// Capacity reports the pool capacity in pages.
func (p *Pool) Capacity() int { return p.capacity }

// File returns the underlying page file.
func (p *Pool) File() pagefile.File { return p.file }

// PageSize reports the page size of the underlying file.
func (p *Pool) PageSize() int { return p.file.PageSize() }

// Get pins the page with the given ID, reading it from the underlying file
// if it is not already resident.
func (p *Pool) Get(id pagefile.PageID) (*Frame, error) {
	p.mu.Lock()
	if fr, ok := p.frames[id]; ok {
		p.hits.Add(1)
		fr.pins++
		p.lru.MoveToFront(fr.elem)
		p.mu.Unlock()
		// Wait on the loading latch: another Get may still be reading the
		// page contents from the file.
		<-fr.ready
		if fr.loadErr != nil {
			p.release(fr)
			return nil, fr.loadErr
		}
		return fr, nil
	}
	p.misses.Add(1)
	fr, err := p.allocFrameLocked(id)
	if err != nil {
		p.mu.Unlock()
		return nil, err
	}
	p.mu.Unlock()

	// Read the page without holding the pool lock; the frame is already
	// visible and pinned, so concurrent requests for the same page park on
	// its ready latch while requests for other pages proceed.
	err = p.file.Read(id, fr.data)
	p.mu.Lock()
	fr.loadErr = err
	close(fr.ready)
	if err != nil {
		p.dropFrameLocked(fr)
		p.mu.Unlock()
		return nil, err
	}
	p.mu.Unlock()
	return fr, nil
}

// NewPage allocates a fresh page in the underlying file and returns it
// pinned and marked dirty.
func (p *Pool) NewPage() (*Frame, error) {
	id, err := p.file.Allocate()
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	fr, err := p.allocFrameLocked(id)
	if err != nil {
		return nil, err
	}
	// Fresh pages start zeroed; a recycled buffer holds the evicted page's
	// bytes, so clear it.  The Get path overwrites via file.Read instead.
	clear(fr.data)
	fr.dirty = true
	close(fr.ready)
	return fr, nil
}

// allocFrameLocked creates a pinned frame for id with an open loading latch,
// evicting and recycling a page buffer if necessary.  The caller holds p.mu.
func (p *Pool) allocFrameLocked(id pagefile.PageID) (*Frame, error) {
	if len(p.frames) >= p.capacity {
		if err := p.evictOneLocked(); err != nil {
			return nil, err
		}
	}
	var data []byte
	if n := len(p.freeData); n > 0 {
		data = p.freeData[n-1]
		p.freeData = p.freeData[:n-1]
	} else {
		data = make([]byte, p.file.PageSize())
	}
	fr := &Frame{
		pool:  p,
		id:    id,
		data:  data,
		pins:  1,
		ready: make(chan struct{}),
	}
	fr.elem = p.lru.PushFront(fr)
	p.frames[id] = fr
	return fr, nil
}

// recycleBufferLocked returns a dropped frame's page buffer to the free
// list.  The caller holds p.mu.
func (p *Pool) recycleBufferLocked(data []byte) {
	if len(p.freeData) < maxFreeBuffers {
		p.freeData = append(p.freeData, data)
	}
}

// dropFrameLocked removes a frame that failed to initialize.
func (p *Pool) dropFrameLocked(fr *Frame) {
	p.lru.Remove(fr.elem)
	delete(p.frames, fr.id)
	p.recycleBufferLocked(fr.data)
	fr.data = nil
}

// evictOneLocked evicts the least recently used unpinned frame, flushing it
// if dirty.  The caller holds p.mu.
func (p *Pool) evictOneLocked() error {
	for e := p.lru.Back(); e != nil; e = e.Prev() {
		fr := e.Value.(*Frame)
		if fr.pins > 0 {
			continue
		}
		if fr.dirty {
			if err := p.file.Write(fr.id, fr.data); err != nil {
				return err
			}
			p.flushes.Add(1)
		}
		p.lru.Remove(e)
		delete(p.frames, fr.id)
		p.recycleBufferLocked(fr.data)
		fr.data = nil
		p.evictions.Add(1)
		return nil
	}
	return ErrPoolFull
}

func (p *Pool) release(fr *Frame) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if fr.pins > 0 {
		fr.pins--
	} else {
		p.overReleases.Add(1)
	}
}

// FlushError identifies the page whose writeback failed during a flush
// sweep.  The frame for PageID and every frame after it in the sweep order
// are still dirty: a flush that hits a FlushError can simply be retried.
type FlushError struct {
	PageID pagefile.PageID
	Err    error
}

func (e *FlushError) Error() string {
	return fmt.Sprintf("buffer: flush of page %d failed: %v", e.PageID, e.Err)
}

func (e *FlushError) Unwrap() error { return e.Err }

// FlushAll writes every dirty resident page back to the underlying file.
// It is FlushOrdered under its historical name: ordered writeback is never
// worse than map-iteration order.
func (p *Pool) FlushAll() error { return p.FlushOrdered() }

// FlushOrdered writes every dirty resident page back in ascending page-ID
// order — one sequential pass over the file.  Bulk writers call it after a
// batch so the dirty pages a batch produced go out as one ordered sweep
// instead of dribbling out in LRU eviction order.
//
// On failure it returns a *FlushError naming the page that could not be
// written; that frame and every later frame in the sweep stay dirty, so the
// sweep can be retried without losing updates.
func (p *Pool) FlushOrdered() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.flushOrderedLocked()
}

func (p *Pool) flushOrderedLocked() error {
	dirty := make([]*Frame, 0, len(p.frames))
	for _, fr := range p.frames {
		if fr.dirty {
			dirty = append(dirty, fr)
		}
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].id < dirty[j].id })
	for _, fr := range dirty {
		if err := p.file.Write(fr.id, fr.data); err != nil {
			return &FlushError{PageID: fr.id, Err: err}
		}
		fr.dirty = false
		p.flushes.Add(1)
	}
	return nil
}

// Checkpoint flushes every dirty resident page and commits the underlying
// file with meta as its new application root.  Over a durable file this is
// the atomic-commit boundary: the flushed pages and meta become visible
// together after a crash, or not at all.  Over a memory file the commit is
// just a meta store, so callers can checkpoint unconditionally.
//
// The flush and the commit run under the pool lock as one critical section,
// so pages dirtied by a concurrent writer cannot slip between the sweep and
// the commit point.  (In the engine's lock order, callers already hold the
// batch/table rungs above the pool, making the checkpoint's content
// deterministic; the pool lock here only protects frame state.)
func (p *Pool) Checkpoint(meta []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.flushOrderedLocked(); err != nil {
		return err
	}
	return p.file.Commit(meta)
}

// WriteThrough writes a full page image directly to the underlying file
// without bringing the page into the pool, so bulk loads that write
// structures much larger than the pool do not evict the working set.  data
// must be at least PageSize bytes.  The caller must own the page: it is
// intended for freshly allocated pages that no reader has seen yet.  If the
// page happens to be resident its frame is updated in place and marked
// clean, so later reads stay coherent.
func (p *Pool) WriteThrough(id pagefile.PageID, data []byte) error {
	p.mu.Lock()
	if fr, ok := p.frames[id]; ok {
		copy(fr.data, data[:p.file.PageSize()])
		fr.dirty = false
	}
	p.flushes.Add(1)
	p.mu.Unlock()
	return p.file.Write(id, data)
}

// FreePage drops any resident frame for id without writing it back and
// returns the page to the file's free list.  Callers use it to recycle pages
// of structures they are dismantling (emptied B+-tree nodes); the page's
// contents are dead, so flushing a dirty frame would be wasted I/O.  The
// page must be unpinned.
func (p *Pool) FreePage(id pagefile.PageID) error {
	p.mu.Lock()
	if fr, ok := p.frames[id]; ok {
		if fr.pins > 0 {
			p.mu.Unlock()
			return fmt.Errorf("buffer: free of page %d with %d pins", id, fr.pins)
		}
		p.lru.Remove(fr.elem)
		delete(p.frames, id)
		p.recycleBufferLocked(fr.data)
		fr.data = nil
	}
	p.mu.Unlock()
	return p.file.Free(id)
}

// EvictAll flushes and drops every unpinned page, producing a cold cache.
// Pinned pages are flushed but remain resident.  The benchmark harness calls
// this before timing each query, mirroring the cold-cache methodology in the
// paper's §5.2.
func (p *Pool) EvictAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var next *list.Element
	for e := p.lru.Front(); e != nil; e = next {
		next = e.Next()
		fr := e.Value.(*Frame)
		if fr.dirty {
			if err := p.file.Write(fr.id, fr.data); err != nil {
				return err
			}
			fr.dirty = false
			p.flushes.Add(1)
		}
		if fr.pins == 0 {
			p.lru.Remove(e)
			delete(p.frames, fr.id)
			p.evictions.Add(1)
		}
	}
	return nil
}

// PinnedPages reports the number of frames with a non-zero pin count.  Tests
// use it to verify that every Get is matched by a Release.
func (p *Pool) PinnedPages() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, fr := range p.frames {
		if fr.pins > 0 {
			n++
		}
	}
	return n
}

// ResidentPages reports the number of pages currently cached.
func (p *Pool) ResidentPages() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.frames)
}

// CheckPins reports pin-accounting violations: frames still pinned (a Get
// without a matching Release) and over-releases (a Release without a
// matching Get).  Tests call it after exercising a structure to assert that
// every pin was balanced.
func (p *Pool) CheckPins() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	pinned := 0
	for _, fr := range p.frames {
		if fr.pins > 0 {
			pinned++
		}
	}
	if pinned > 0 || p.overReleases.Load() > 0 {
		return fmt.Errorf("buffer: pin accounting violated: %d frames still pinned, %d over-releases", pinned, p.overReleases.Load())
	}
	return nil
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{Hits: p.hits.Load(), Misses: p.misses.Load(), Evictions: p.evictions.Load(), Flushes: p.flushes.Load(), OverReleases: p.overReleases.Load()}
}

// ResetStats zeroes the pool counters.  The over-release counter is
// deliberately not reset: it records a caller bug, not workload activity.
func (p *Pool) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.hits.Store(0)
	p.misses.Store(0)
	p.evictions.Store(0)
	p.flushes.Store(0)
}
