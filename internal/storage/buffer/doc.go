// Package buffer implements an LRU page buffer pool over a pagefile.File.
//
// The paper runs all queries against a BerkeleyDB cache of fixed size
// (100 MB) that is deliberately too small to hold the long inverted lists,
// and evaluates queries on a cold cache.  This pool reproduces that set-up:
// it has a fixed capacity in pages, tracks hits and misses, and exposes
// EvictAll so the benchmark harness can force a cold cache before each
// query measurement while leaving the small structures (Score table, short
// lists) to be re-warmed naturally, exactly as described in §5.2 of the
// paper.
//
// See ARCHITECTURE.md for the layer map — where this package sits in the
// stack — and for the repo-wide concurrency contract.
package buffer
