package buffer

import (
	"fmt"
	"sync"
	"testing"

	"svrdb/internal/storage/pagefile"
)

func newPool(t testing.TB, pageSize, capacity int) (*Pool, pagefile.File) {
	t.Helper()
	f := pagefile.MustNewMem(pageSize)
	p, err := New(f, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return p, f
}

func TestNewPageAndGet(t *testing.T) {
	p, _ := newPool(t, 128, 4)
	fr, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	fr.Data()[0] = 0xAB
	fr.MarkDirty()
	id := fr.ID()
	fr.Release()

	fr2, err := p.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if fr2.Data()[0] != 0xAB {
		t.Error("page contents lost between NewPage and Get")
	}
	fr2.Release()
}

func TestCapacityValidation(t *testing.T) {
	f := pagefile.MustNewMem(128)
	if _, err := New(f, 0); err == nil {
		t.Error("New with capacity 0 succeeded, want error")
	}
}

func TestHitMissCounting(t *testing.T) {
	p, _ := newPool(t, 128, 4)
	fr, _ := p.NewPage()
	id := fr.ID()
	fr.Release()

	for i := 0; i < 3; i++ {
		fr, err := p.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		fr.Release()
	}
	s := p.Stats()
	if s.Hits != 3 {
		t.Errorf("Hits = %d, want 3", s.Hits)
	}
	p.ResetStats()
	if p.Stats().Hits != 0 {
		t.Error("ResetStats did not zero counters")
	}
}

func TestEvictionWritesDirtyPages(t *testing.T) {
	p, f := newPool(t, 128, 2)
	// Create three pages through a pool that can hold only two.
	var ids []pagefile.PageID
	for i := 0; i < 3; i++ {
		fr, err := p.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		fr.Data()[0] = byte(i + 1)
		fr.MarkDirty()
		ids = append(ids, fr.ID())
		fr.Release()
	}
	if p.ResidentPages() > 2 {
		t.Errorf("ResidentPages = %d, exceeds capacity 2", p.ResidentPages())
	}
	if p.Stats().Evictions == 0 {
		t.Error("expected at least one eviction")
	}
	// The evicted page must have been flushed to the file.
	buf := make([]byte, 128)
	if err := f.Read(ids[0], buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 1 {
		t.Errorf("evicted dirty page not flushed: first byte %d, want 1", buf[0])
	}
	// And it must read back correctly through the pool.
	fr, err := p.Get(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if fr.Data()[0] != 1 {
		t.Errorf("re-fetched page contents = %d, want 1", fr.Data()[0])
	}
	fr.Release()
}

func TestAllPinnedError(t *testing.T) {
	p, _ := newPool(t, 128, 2)
	fr1, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	fr2, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.NewPage(); err == nil {
		t.Error("NewPage with all frames pinned succeeded, want ErrPoolFull")
	}
	fr1.Release()
	fr2.Release()
	if _, err := p.NewPage(); err != nil {
		t.Errorf("NewPage after releasing pins: %v", err)
	}
}

func TestFlushAllAndEvictAll(t *testing.T) {
	p, f := newPool(t, 128, 8)
	var ids []pagefile.PageID
	for i := 0; i < 5; i++ {
		fr, _ := p.NewPage()
		fr.Data()[0] = byte(10 + i)
		fr.MarkDirty()
		ids = append(ids, fr.ID())
		fr.Release()
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	for i, id := range ids {
		if err := f.Read(id, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(10+i) {
			t.Errorf("page %d not flushed", id)
		}
	}
	if err := p.EvictAll(); err != nil {
		t.Fatal(err)
	}
	if p.ResidentPages() != 0 {
		t.Errorf("ResidentPages after EvictAll = %d, want 0", p.ResidentPages())
	}
	// Pages still readable afterwards (cold cache).
	before := p.Stats().Misses
	fr, err := p.Get(ids[3])
	if err != nil {
		t.Fatal(err)
	}
	fr.Release()
	if p.Stats().Misses != before+1 {
		t.Error("read after EvictAll should be a miss")
	}
}

func TestEvictAllKeepsPinnedPages(t *testing.T) {
	p, _ := newPool(t, 128, 4)
	fr, _ := p.NewPage()
	if err := p.EvictAll(); err != nil {
		t.Fatal(err)
	}
	if p.ResidentPages() != 1 {
		t.Errorf("pinned page was evicted; ResidentPages = %d", p.ResidentPages())
	}
	if p.PinnedPages() != 1 {
		t.Errorf("PinnedPages = %d, want 1", p.PinnedPages())
	}
	fr.Release()
	if p.PinnedPages() != 0 {
		t.Errorf("PinnedPages after release = %d, want 0", p.PinnedPages())
	}
}

func TestLRUOrderPreferred(t *testing.T) {
	p, _ := newPool(t, 128, 3)
	var ids []pagefile.PageID
	for i := 0; i < 3; i++ {
		fr, _ := p.NewPage()
		ids = append(ids, fr.ID())
		fr.Release()
	}
	// Touch page 0 so that page 1 becomes the LRU victim.
	fr, _ := p.Get(ids[0])
	fr.Release()
	frNew, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	frNew.Release()
	// Page 0 should still be resident (a hit); page 1 should be gone (a miss).
	base := p.Stats()
	fr, _ = p.Get(ids[0])
	fr.Release()
	if p.Stats().Hits != base.Hits+1 {
		t.Error("recently used page was evicted before the LRU page")
	}
	fr, _ = p.Get(ids[1])
	fr.Release()
	if p.Stats().Misses != base.Misses+1 {
		t.Error("LRU page was unexpectedly still resident")
	}
}

func TestOverReleaseDetected(t *testing.T) {
	p, _ := newPool(t, 128, 4)
	fr, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckPins(); err == nil {
		t.Error("CheckPins with a pinned frame succeeded, want error")
	}
	fr.Release()
	if err := p.CheckPins(); err != nil {
		t.Errorf("CheckPins after balanced release: %v", err)
	}
	// The second release is unbalanced and must be counted, not swallowed.
	fr.Release()
	if got := p.Stats().OverReleases; got != 1 {
		t.Errorf("OverReleases = %d, want 1", got)
	}
	if err := p.CheckPins(); err == nil {
		t.Error("CheckPins after over-release succeeded, want error")
	}
	// ResetStats keeps the over-release count: it records a caller bug.
	p.ResetStats()
	if got := p.Stats().OverReleases; got != 1 {
		t.Errorf("OverReleases after ResetStats = %d, want 1", got)
	}
}

func TestConcurrentGetSamePage(t *testing.T) {
	p, _ := newPool(t, 128, 8)
	fr, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	fr.Data()[0] = 0x5A
	fr.MarkDirty()
	id := fr.ID()
	fr.Release()
	if err := p.EvictAll(); err != nil {
		t.Fatal(err)
	}

	// Hammer the same cold page from many goroutines: every Get must wait on
	// the loading latch and observe fully loaded contents.
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fr, err := p.Get(id)
			if err != nil {
				errs <- err
				return
			}
			if fr.Data()[0] != 0x5A {
				errs <- fmt.Errorf("got byte %#x, want 0x5a", fr.Data()[0])
			}
			fr.Release()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := p.CheckPins(); err != nil {
		t.Errorf("CheckPins after concurrent gets: %v", err)
	}
}

func TestEvictedBuffersRecycled(t *testing.T) {
	p, _ := newPool(t, 128, 2)
	// Cycle many pages through a 2-frame pool; the free list must keep the
	// pool from allocating a fresh buffer per miss, and recycled buffers must
	// never leak stale bytes into fresh pages.
	var ids []pagefile.PageID
	for i := 0; i < 6; i++ {
		fr, err := p.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		for j := range fr.Data() {
			fr.Data()[j] = 0xEE
		}
		fr.MarkDirty()
		ids = append(ids, fr.ID())
		fr.Release()
	}
	fr, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range fr.Data() {
		if b != 0 {
			t.Fatal("NewPage returned a recycled buffer with stale bytes")
		}
	}
	fr.Release()
	// Re-reading an evicted page must still return its flushed contents.
	fr2, err := p.Get(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if fr2.Data()[0] != 0xEE {
		t.Errorf("evicted page byte = %#x, want 0xee", fr2.Data()[0])
	}
	fr2.Release()
}

func TestWriteThrough(t *testing.T) {
	p, f := newPool(t, 128, 4)
	id, err := f.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	page := make([]byte, 128)
	page[0] = 0x5A
	if err := p.WriteThrough(id, page); err != nil {
		t.Fatal(err)
	}
	// The page must not have been pulled into the pool...
	if p.ResidentPages() != 0 {
		t.Errorf("WriteThrough made %d pages resident, want 0", p.ResidentPages())
	}
	// ...but a later Get must read the written contents.
	fr, err := p.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Data()[0] != 0x5A {
		t.Error("WriteThrough contents not visible to Get")
	}
	fr.Release()

	// Writing through to a resident page keeps the frame coherent and clean.
	page[0] = 0x77
	if err := p.WriteThrough(id, page); err != nil {
		t.Fatal(err)
	}
	fr, err = p.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Data()[0] != 0x77 {
		t.Error("WriteThrough did not update the resident frame")
	}
	fr.Release()
	if err := p.CheckPins(); err != nil {
		t.Error(err)
	}
}

func TestFlushOrdered(t *testing.T) {
	p, f := newPool(t, 128, 16)
	// Dirty several pages in a scrambled creation order.
	var ids []pagefile.PageID
	for i := 0; i < 8; i++ {
		fr, err := p.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		fr.Data()[0] = byte(i + 1)
		fr.MarkDirty()
		ids = append(ids, fr.ID())
		fr.Release()
	}
	before := f.Stats().Writes
	if err := p.FlushOrdered(); err != nil {
		t.Fatal(err)
	}
	if got := f.Stats().Writes - before; got != 8 {
		t.Errorf("FlushOrdered wrote %d pages, want 8", got)
	}
	// A second flush writes nothing: everything is clean.
	before = f.Stats().Writes
	if err := p.FlushOrdered(); err != nil {
		t.Fatal(err)
	}
	if got := f.Stats().Writes - before; got != 0 {
		t.Errorf("second FlushOrdered wrote %d pages, want 0", got)
	}
	// The flushed contents are durable in the file.
	buf := make([]byte, 128)
	for i, id := range ids {
		if err := f.Read(id, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i+1) {
			t.Errorf("page %d contents = %d, want %d", id, buf[0], i+1)
		}
	}
}

func TestFramePatch(t *testing.T) {
	pool, _ := newPool(t, 256, 4)
	fr, err := pool.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	id := fr.ID()
	copy(fr.Data(), []byte("aaaaaaaa"))
	fr.MarkDirty()
	fr.Patch(2, []byte("XY"))
	fr.Release()
	// Evict so the patched image must round-trip through the file.
	if err := pool.EvictAll(); err != nil {
		t.Fatal(err)
	}
	fr, err = pool.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(fr.Data()[:8]); got != "aaXYaaaa" {
		t.Errorf("patched page = %q, want %q", got, "aaXYaaaa")
	}
	fr.Release()
	if err := pool.CheckPins(); err != nil {
		t.Error(err)
	}
}

func TestFramePatchBoundsPanic(t *testing.T) {
	pool, _ := newPool(t, 256, 4)
	fr, err := pool.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Release()
	defer func() {
		if recover() == nil {
			t.Error("out-of-bounds Patch did not panic")
		}
	}()
	fr.Patch(255, []byte("too long"))
}

func TestFreePageDropsFrameWithoutFlush(t *testing.T) {
	pool, file := newPool(t, 256, 4)
	fr, err := pool.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	id := fr.ID()
	copy(fr.Data(), []byte("doomed"))
	fr.MarkDirty()
	fr.Release()
	flushesBefore := pool.Stats().Flushes
	if err := pool.FreePage(id); err != nil {
		t.Fatal(err)
	}
	if pool.Stats().Flushes != flushesBefore {
		t.Error("FreePage flushed a dead page")
	}
	if pool.ResidentPages() != 0 {
		t.Errorf("ResidentPages = %d after FreePage, want 0", pool.ResidentPages())
	}
	if file.FreePages() != 1 {
		t.Errorf("file FreePages = %d, want 1", file.FreePages())
	}
	// The recycled page comes back zeroed through NewPage.
	fr2, err := pool.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	if fr2.ID() != id {
		t.Errorf("NewPage after FreePage = page %d, want recycled %d", fr2.ID(), id)
	}
	for _, b := range fr2.Data()[:8] {
		if b != 0 {
			t.Fatal("recycled page not zeroed")
		}
	}
	fr2.Release()
	if err := pool.CheckPins(); err != nil {
		t.Error(err)
	}
}

func TestFreePageRefusesPinned(t *testing.T) {
	pool, _ := newPool(t, 256, 4)
	fr, err := pool.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.FreePage(fr.ID()); err == nil {
		t.Error("FreePage of a pinned page succeeded, want error")
	}
	fr.Release()
	if err := pool.FreePage(fr.ID()); err != nil {
		t.Errorf("FreePage after release: %v", err)
	}
}
