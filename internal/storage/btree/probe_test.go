package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
)

// TestProbeMatchesGet drives a probe with ascending, descending and random
// key sequences — hits and misses — and requires agreement with Get.
func TestProbeMatchesGet(t *testing.T) {
	tree, pool := newTestTree(t, 512, 64)
	for i := 0; i < 1500; i += 2 { // only even keys exist
		if err := tree.Put([]byte(fmt.Sprintf("k%06d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	check := func(probe *Probe, key []byte) {
		t.Helper()
		pv, pok, perr := probe.Get(key)
		gv, gok, gerr := tree.Get(key)
		if (perr != nil) != (gerr != nil) || pok != gok || !bytes.Equal(pv, gv) {
			t.Fatalf("probe.Get(%q) = (%q,%v,%v), Get = (%q,%v,%v)", key, pv, pok, perr, gv, gok, gerr)
		}
	}
	asc := tree.NewProbe()
	for i := 0; i < 1600; i++ { // ascending, ~half misses
		check(asc, []byte(fmt.Sprintf("k%06d", i)))
	}
	desc := tree.NewProbe()
	for i := 1599; i >= 0; i-- {
		check(desc, []byte(fmt.Sprintf("k%06d", i)))
	}
	rng := rand.New(rand.NewSource(9))
	random := tree.NewProbe()
	for i := 0; i < 2000; i++ {
		check(random, []byte(fmt.Sprintf("k%06d", rng.Intn(1800))))
	}
	// Keys outside the stored range on both sides.
	edge := tree.NewProbe()
	check(edge, []byte("a"))
	check(edge, []byte("zzz"))
	if err := pool.CheckPins(); err != nil {
		t.Error(err)
	}
}

// TestProbeEmptyAndSingleLeaf covers trees whose root is the only leaf: the
// probe must answer misses without error.
func TestProbeEmptyAndSingleLeaf(t *testing.T) {
	tree, _ := newTestTree(t, 512, 64)
	probe := tree.NewProbe()
	for i := 0; i < 3; i++ {
		if _, ok, err := probe.Get([]byte("missing")); ok || err != nil {
			t.Fatalf("probe on empty tree = %v, %v", ok, err)
		}
	}
	if err := tree.Put([]byte("only"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	probe = tree.NewProbe()
	if v, ok, err := probe.Get([]byte("only")); err != nil || !ok || string(v) != "v" {
		t.Fatalf("probe.Get(only) = %q, %v, %v", v, ok, err)
	}
	if _, ok, _ := probe.Get([]byte("aaa")); ok {
		t.Error("probe found a key below the only entry")
	}
	if _, ok, _ := probe.Get([]byte("zzz")); ok {
		t.Error("probe found a key above the only entry")
	}
}

// TestProbeOnBulkLoadedTree checks the probe against the packed leaves a
// bulk load produces.
func TestProbeOnBulkLoadedTree(t *testing.T) {
	file := pagefile.MustNewMem(512)
	pool := buffer.MustNew(file, 64)
	items := bulkItems(2000, 8)
	tree, err := BulkLoad(pool, items)
	if err != nil {
		t.Fatal(err)
	}
	probe := tree.NewProbe()
	for _, it := range items {
		v, ok, err := probe.Get(it.Key)
		if err != nil || !ok || !bytes.Equal(v, it.Value) {
			t.Fatalf("probe.Get(%q) = %q, %v, %v", it.Key, v, ok, err)
		}
	}
	if err := pool.CheckPins(); err != nil {
		t.Error(err)
	}
}
