package btree

import (
	"bytes"
	"errors"
	"fmt"

	"sync/atomic"

	"svrdb/internal/codec"
	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
)

const (
	nodeLeaf     = byte(1)
	nodeInternal = byte(2)
)

// ErrEntryTooLarge is returned when a key/value pair cannot fit in a page.
var ErrEntryTooLarge = errors.New("btree: entry too large for page")

// Tree is a B+-tree.  It is not safe for concurrent mutation; the engine
// serializes index updates, as the paper's single update stream does.
// Concurrent readers (Get, Has, Probe, cursors, range scans) are safe with
// each other, and the mutable tree metadata — the root page, the key count
// and the patch counter — is held in atomics so that metadata reads
// (Len, Patches, a reader starting its descent) race-cleanly against a
// serialized writer instead of tearing.  Readers racing a concurrent writer
// over node *contents* still require external coordination (the engine's
// index-level RW lock provides it).
type Tree struct {
	pool *buffer.Pool
	root atomic.Uint64 // current root pagefile.PageID
	size atomic.Int64  // number of live keys

	// patches counts writes absorbed by the in-place leaf patch fast path.
	patches atomic.Uint64
	// disablePatch forces every write through the parse→reserialize path;
	// equivalence tests use it to pit the two paths against each other.
	disablePatch bool

	// cow switches the tree to copy-on-write mutation: pages written since
	// the last Seal (tracked in fresh) may still be mutated in place, but a
	// page that a published snapshot can reach is never overwritten —
	// mutating it allocates a new page, rewires the ancestor path and hands
	// the old page to retire.  Concurrent readers walk a View captured at
	// publication time and never observe a half-built state.
	cow    bool
	retire func(pagefile.PageID)
	fresh  map[pagefile.PageID]struct{}
}

// EnableCOW switches the tree to copy-on-write mutation.  retire receives
// every page a mutation supersedes (typically epoch.Manager.Retire, which
// recycles it once concurrent readers drain).  Pages the tree allocates
// after this call are private until Seal marks them published.
func (t *Tree) EnableCOW(retire func(pagefile.PageID)) {
	t.cow = true
	t.retire = retire
	t.fresh = map[pagefile.PageID]struct{}{}
}

// Seal marks every page of the tree as published: the writer has made the
// current root reachable by readers (via View), so from now on mutations
// copy pages instead of overwriting them.  Called once per publication.
func (t *Tree) Seal() {
	if t.cow {
		clear(t.fresh)
	}
}

// mutableInPlace reports whether the page may be overwritten where it is:
// always outside COW mode, and only for unpublished (fresh) pages in it.
func (t *Tree) mutableInPlace(id pagefile.PageID) bool {
	if !t.cow {
		return true
	}
	_, ok := t.fresh[id]
	return ok
}

// writeNodeOut flushes n to a page it is allowed to occupy: its own page
// when that is mutable in place, otherwise a newly allocated page (the old
// one is retired and n.id is updated).  It returns the page the node now
// lives at; the caller is responsible for rewiring the parent pointer when
// the id changed.
func (t *Tree) writeNodeOut(n *node) (pagefile.PageID, error) {
	if t.mutableInPlace(n.id) {
		return n.id, t.flushNode(n)
	}
	old := n.id
	fr, err := t.pool.NewPage()
	if err != nil {
		return pagefile.InvalidPageID, err
	}
	n.id = fr.ID()
	err = writeNode(fr, n, t.pool.PageSize())
	fr.Release()
	if err != nil {
		return pagefile.InvalidPageID, err
	}
	t.fresh[n.id] = struct{}{}
	if err := t.freePage(old); err != nil {
		return pagefile.InvalidPageID, err
	}
	return n.id, nil
}

// clonePage copies the pinned page into a fresh page and returns the new
// frame pinned (the caller releases it).  Used by the COW patch path, which
// edits the raw page image without parsing it.
func (t *Tree) clonePage(fr *buffer.Frame) (*buffer.Frame, error) {
	nfr, err := t.pool.NewPage()
	if err != nil {
		return nil, err
	}
	copy(nfr.Data(), fr.Data())
	nfr.MarkDirty()
	t.fresh[nfr.ID()] = struct{}{}
	return nfr, nil
}

// replaceChildPointer rewires the child pointer old → new along the
// root-to-parent path (deepest ancestor last), copying published ancestors
// on the way and updating the root when the relocation bubbles to it.
// Child pointers are fixed-width 8-byte fields, so a mutable ancestor is
// patched in its pinned page without a parse.
func (t *Tree) replaceChildPointer(path []pagefile.PageID, old, new pagefile.PageID) error {
	for i := len(path) - 1; i >= 0; i-- {
		pid := path[i]
		fr, err := t.pool.Get(pid)
		if err != nil {
			return err
		}
		off, err := pageFindChildOffset(pid, fr.Data(), old)
		if err != nil {
			fr.Release()
			return err
		}
		var enc [8]byte
		codec.PutUint64(enc[:0], uint64(new))
		if t.mutableInPlace(pid) {
			fr.Patch(off, enc[:])
			fr.Release()
			return nil
		}
		nfr, err := t.clonePage(fr)
		fr.Release()
		if err != nil {
			return err
		}
		nfr.Patch(off, enc[:])
		nid := nfr.ID()
		nfr.Release()
		if err := t.freePage(pid); err != nil {
			return err
		}
		old, new = pid, nid
	}
	// The relocation reached the top of the path: the root itself moved.
	t.setRoot(new)
	return nil
}

// pageFindChildOffset scans a serialized internal node for the 8-byte child
// pointer equal to child and returns its byte offset within the page.
func pageFindChildOffset(id pagefile.PageID, data []byte, child pagefile.PageID) (int, error) {
	if len(data) == 0 || data[0] != nodeInternal {
		return 0, fmt.Errorf("btree: page %d is not an internal node", id)
	}
	off := 1
	nKeys64, sz, err := codec.Uvarint(data[off:])
	if err != nil {
		return 0, fmt.Errorf("btree: page %d: %w", id, err)
	}
	off += sz
	c0, _, err := codec.Uint64(data[off:])
	if err != nil {
		return 0, err
	}
	if pagefile.PageID(c0) == child {
		return off, nil
	}
	off += 8
	for i := 0; i < int(nKeys64); i++ {
		_, sz, err := codec.LenBytes(data[off:])
		if err != nil {
			return 0, err
		}
		off += sz
		c, _, err := codec.Uint64(data[off:])
		if err != nil {
			return 0, err
		}
		if pagefile.PageID(c) == child {
			return off, nil
		}
		off += 8
	}
	return 0, fmt.Errorf("btree: page %d has no child pointer to %d", id, child)
}

// rootID returns the current root page.
func (t *Tree) rootID() pagefile.PageID { return pagefile.PageID(t.root.Load()) }

// setRoot installs a new root page.
func (t *Tree) setRoot(id pagefile.PageID) { t.root.Store(uint64(id)) }

// node is the in-memory form of a page.
type node struct {
	id   pagefile.PageID
	leaf bool
	keys [][]byte

	// leaf fields
	vals [][]byte
	next pagefile.PageID
	prev pagefile.PageID

	// internal fields: len(children) == len(keys)+1, keys[i] is the smallest
	// key reachable through children[i+1].
	children []pagefile.PageID
}

// New creates an empty tree with a single leaf root.
func New(pool *buffer.Pool) (*Tree, error) {
	fr, err := pool.NewPage()
	if err != nil {
		return nil, err
	}
	root := &node{id: fr.ID(), leaf: true, next: pagefile.InvalidPageID, prev: pagefile.InvalidPageID}
	if err := writeNode(fr, root, pool.PageSize()); err != nil {
		fr.Release()
		return nil, err
	}
	fr.Release()
	t := &Tree{pool: pool}
	t.setRoot(root.id)
	return t, nil
}

// MustNew is like New but panics on error; intended for tests and examples.
func MustNew(pool *buffer.Pool) *Tree {
	t, err := New(pool)
	if err != nil {
		panic(err)
	}
	return t
}

// Open attaches to an existing tree whose root page and key count were
// recorded at a checkpoint (see RootPage and Len).  It does no I/O: the
// first descent validates the root the usual way.
func Open(pool *buffer.Pool, root pagefile.PageID, size int) *Tree {
	t := &Tree{pool: pool}
	t.setRoot(root)
	t.size.Store(int64(size))
	return t
}

// Len reports the number of keys stored in the tree.
func (t *Tree) Len() int { return int(t.size.Load()) }

// Patches reports how many writes were absorbed by the in-place leaf patch
// fast path since the tree was created.
func (t *Tree) Patches() uint64 { return t.patches.Load() }

// RootPage returns the page ID of the root node.
func (t *Tree) RootPage() pagefile.PageID { return t.rootID() }

// maxEntrySize is the largest serialized key+value entry allowed, chosen so
// that a node can always hold at least four entries.
func (t *Tree) maxEntrySize() int { return t.pool.PageSize() / 4 }

// --- node serialization -----------------------------------------------------

// Layout (leaf):
//
//	[1 type][varint nKeys][8 next][8 prev] { [len key][key][len val][val] }*
//
// Layout (internal):
//
//	[1 type][varint nKeys][8 child0] { [len key][key][8 child] }*
func serializeNode(n *node) []byte {
	out := make([]byte, 0, 256)
	if n.leaf {
		out = append(out, nodeLeaf)
		out = codec.PutUvarint(out, uint64(len(n.keys)))
		out = codec.PutUint64(out, uint64(n.next))
		out = codec.PutUint64(out, uint64(n.prev))
		for i := range n.keys {
			out = codec.PutLenBytes(out, n.keys[i])
			out = codec.PutLenBytes(out, n.vals[i])
		}
		return out
	}
	out = append(out, nodeInternal)
	out = codec.PutUvarint(out, uint64(len(n.keys)))
	out = codec.PutUint64(out, uint64(n.children[0]))
	for i := range n.keys {
		out = codec.PutLenBytes(out, n.keys[i])
		out = codec.PutUint64(out, uint64(n.children[i+1]))
	}
	return out
}

func (t *Tree) nodeSize(n *node) int { return len(serializeNode(n)) }

func writeNode(fr *buffer.Frame, n *node, pageSize int) error {
	data := serializeNode(n)
	if len(data) > pageSize {
		return fmt.Errorf("btree: serialized node %d bytes exceeds page size %d", len(data), pageSize)
	}
	buf := fr.Data()
	copy(buf, data)
	for i := len(data); i < pageSize; i++ {
		buf[i] = 0
	}
	fr.MarkDirty()
	return nil
}

func parseNode(id pagefile.PageID, data []byte) (*node, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("btree: empty page %d", id)
	}
	n := &node{id: id}
	off := 1
	nKeys64, sz, err := codec.Uvarint(data[off:])
	if err != nil {
		return nil, fmt.Errorf("btree: page %d: %w", id, err)
	}
	off += sz
	nKeys := int(nKeys64)
	switch data[0] {
	case nodeLeaf:
		n.leaf = true
		next, sz, err := codec.Uint64(data[off:])
		if err != nil {
			return nil, err
		}
		off += sz
		prev, sz, err := codec.Uint64(data[off:])
		if err != nil {
			return nil, err
		}
		off += sz
		n.next = pagefile.PageID(next)
		n.prev = pagefile.PageID(prev)
		n.keys = make([][]byte, 0, nKeys)
		n.vals = make([][]byte, 0, nKeys)
		for i := 0; i < nKeys; i++ {
			k, sz, err := codec.LenBytes(data[off:])
			if err != nil {
				return nil, err
			}
			off += sz
			v, sz, err := codec.LenBytes(data[off:])
			if err != nil {
				return nil, err
			}
			off += sz
			n.keys = append(n.keys, append([]byte(nil), k...))
			n.vals = append(n.vals, append([]byte(nil), v...))
		}
	case nodeInternal:
		child0, sz, err := codec.Uint64(data[off:])
		if err != nil {
			return nil, err
		}
		off += sz
		n.keys = make([][]byte, 0, nKeys)
		n.children = make([]pagefile.PageID, 0, nKeys+1)
		n.children = append(n.children, pagefile.PageID(child0))
		for i := 0; i < nKeys; i++ {
			k, sz, err := codec.LenBytes(data[off:])
			if err != nil {
				return nil, err
			}
			off += sz
			c, sz, err := codec.Uint64(data[off:])
			if err != nil {
				return nil, err
			}
			off += sz
			n.keys = append(n.keys, append([]byte(nil), k...))
			n.children = append(n.children, pagefile.PageID(c))
		}
	default:
		return nil, fmt.Errorf("btree: page %d has unknown node type %d", id, data[0])
	}
	return n, nil
}

// readNode pins the page, parses it and releases the pin (the parsed node is
// an independent copy).
func (t *Tree) readNode(id pagefile.PageID) (*node, error) {
	fr, err := t.pool.Get(id)
	if err != nil {
		return nil, err
	}
	defer fr.Release()
	return parseNode(id, fr.Data())
}

// flushNode writes the node back to its page.
func (t *Tree) flushNode(n *node) error {
	fr, err := t.pool.Get(n.id)
	if err != nil {
		return err
	}
	defer fr.Release()
	return writeNode(fr, n, t.pool.PageSize())
}

// newNode allocates a page for a fresh node and assigns its ID.  The caller
// must populate the node's fields and flush it before it is ever read.
func (t *Tree) newNode(leaf bool) (*node, error) {
	fr, err := t.pool.NewPage()
	if err != nil {
		return nil, err
	}
	fr.Release()
	if t.cow {
		t.fresh[fr.ID()] = struct{}{}
	}
	return &node{id: fr.ID(), leaf: leaf, next: pagefile.InvalidPageID, prev: pagefile.InvalidPageID}, nil
}

// --- lookup ------------------------------------------------------------------

// searchKeys returns the index of the first key >= key.
func searchKeys(keys [][]byte, key []byte) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childIndex returns which child of an internal node should be followed for
// key.
func childIndex(n *node, key []byte) int {
	// keys[i] separates children[i] (keys < keys[i]) from children[i+1]
	// (keys >= keys[i]).
	i := searchKeys(n.keys, key)
	if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
		return i + 1
	}
	return i
}

// pageChild scans a serialized internal node for the child to follow for
// key, without materializing the node.  It mirrors childIndex: keys[i]
// separates children[i] (keys < keys[i]) from children[i+1] (keys >= keys[i]).
func pageChild(id pagefile.PageID, data, key []byte) (pagefile.PageID, error) {
	child, _, err := pageChildWithUpper(id, data, key)
	return child, err
}

// pageChildWithUpper is pageChild extended with the separator that bounds
// the chosen child from above within this node (nil when the child is the
// node's rightmost).  The returned key aliases data.
func pageChildWithUpper(id pagefile.PageID, data, key []byte) (pagefile.PageID, []byte, error) {
	off := 1
	nKeys64, sz, err := codec.Uvarint(data[off:])
	if err != nil {
		return pagefile.InvalidPageID, nil, fmt.Errorf("btree: page %d: %w", id, err)
	}
	off += sz
	child0, sz, err := codec.Uint64(data[off:])
	if err != nil {
		return pagefile.InvalidPageID, nil, err
	}
	off += sz
	cur := pagefile.PageID(child0)
	matched := false // cur chosen by an equal separator; its upper bound is the next one
	for i := 0; i < int(nKeys64); i++ {
		k, sz, err := codec.LenBytes(data[off:])
		if err != nil {
			return pagefile.InvalidPageID, nil, err
		}
		off += sz
		c, sz, err := codec.Uint64(data[off:])
		if err != nil {
			return pagefile.InvalidPageID, nil, err
		}
		off += sz
		if matched {
			return cur, k, nil
		}
		cmp := bytes.Compare(k, key)
		if cmp > 0 {
			return cur, k, nil
		}
		cur = pagefile.PageID(c)
		if cmp == 0 {
			matched = true
		}
	}
	return cur, nil, nil
}

// pageLeafLookup scans a serialized leaf for key, returning the value bytes
// in place (aliasing data) when present.
func pageLeafLookup(id pagefile.PageID, data, key []byte) ([]byte, bool, error) {
	valOff, valLen, found, err := pageLeafFindValue(id, data, key)
	if err != nil || !found {
		return nil, false, err
	}
	return data[valOff : valOff+valLen], true, nil
}

// pageLeafFindValue scans a serialized leaf for key and returns the offset
// and length of its value bytes within data — the patch fast path needs the
// location so it can overwrite the value in the pinned page; pageLeafLookup
// wraps it for callers that want the contents.  The scan decodes the
// per-entry length prefixes inline (with a fast path for the ubiquitous
// one-byte varint) because this loop is the heart of every Score-table
// probe and every patched write.
func pageLeafFindValue(id pagefile.PageID, data, key []byte) (valOff, valLen int, found bool, err error) {
	off := 1
	nKeys64, sz, err := codec.Uvarint(data[off:])
	if err != nil {
		return 0, 0, false, fmt.Errorf("btree: page %d: %w", id, err)
	}
	off += sz + 16 // skip next and prev pointers
	for i := 0; i < int(nKeys64); i++ {
		kl, sz, err := leafEntryLen(data, off)
		if err != nil {
			return 0, 0, false, err
		}
		off += sz
		if off+kl > len(data) {
			return 0, 0, false, fmt.Errorf("btree: page %d leaf entry overruns page", id)
		}
		k := data[off : off+kl]
		off += kl
		vl, sz, err := leafEntryLen(data, off)
		if err != nil {
			return 0, 0, false, err
		}
		off += sz
		if off+vl > len(data) {
			return 0, 0, false, fmt.Errorf("btree: page %d leaf entry overruns page", id)
		}
		cmp := bytes.Compare(k, key)
		if cmp == 0 {
			return off, vl, true, nil
		}
		if cmp > 0 {
			return 0, 0, false, nil
		}
		off += vl
	}
	return 0, 0, false, nil
}

// leafEntryLen decodes a length prefix at data[off:]; one-byte varints (all
// lengths under 128) skip the generic decoder.
func leafEntryLen(data []byte, off int) (int, int, error) {
	if off < len(data) {
		if b := data[off]; b < 0x80 {
			return int(b), 1, nil
		}
	}
	v, sz, err := codec.Uvarint(data[off:])
	return int(v), sz, err
}

// findLeafFrame descends to the leaf that would hold key, scanning the
// serialized internal nodes directly from their pinned pages, and returns
// the leaf's frame still pinned (the caller releases it).  Unlike the
// parse-every-node descent it allocates nothing, which matters because every
// Score-table and ListScore-table probe on the query hot path starts here.
func (t *Tree) findLeafFrame(key []byte) (*buffer.Frame, error) {
	return t.descendToLeaf(key, nil, nil)
}

// descendToLeaf is the shared serialized-page descent: it returns the leaf's
// frame still pinned and, when the out-params are non-nil, appends the page
// ID of every internal node visited to path and records the exclusive upper
// bound of the leaf's key range in upper (left untouched — nil for a fresh
// slice — when the leaf is rightmost).
func (t *Tree) descendToLeaf(key []byte, path *[]pagefile.PageID, upper *[]byte) (*buffer.Frame, error) {
	return t.descendFrom(t.rootID(), key, path, upper)
}

// descendFrom is descendToLeaf starting from an explicit root, which lets
// snapshot readers (View) descend a frozen tree while the live root moves.
// A nil key descends to the leftmost leaf (every separator compares above
// nil), with upper still tracking the leaf's exclusive bound — the primitive
// behind chain-free range scans, which re-descend at the previous leaf's
// upper bound instead of following sibling pointers that copy-on-write
// mutation leaves stale.
func (t *Tree) descendFrom(root pagefile.PageID, key []byte, path *[]pagefile.PageID, upper *[]byte) (*buffer.Frame, error) {
	id := root
	for {
		fr, err := t.pool.Get(id)
		if err != nil {
			return nil, err
		}
		data := fr.Data()
		if len(data) == 0 {
			fr.Release()
			return nil, fmt.Errorf("btree: empty page %d", id)
		}
		switch data[0] {
		case nodeLeaf:
			return fr, nil
		case nodeInternal:
			var child pagefile.PageID
			if upper != nil {
				var u []byte
				child, u, err = pageChildWithUpper(id, data, key)
				if u != nil {
					// Copy out: u aliases the page, which is released below.
					*upper = append((*upper)[:0], u...)
				}
			} else {
				child, err = pageChild(id, data, key)
			}
			fr.Release()
			if err != nil {
				return nil, err
			}
			if path != nil {
				*path = append(*path, id)
			}
			id = child
		default:
			typ := data[0]
			fr.Release()
			return nil, fmt.Errorf("btree: page %d has unknown node type %d", id, typ)
		}
	}
}

// Get returns the value stored under key, or (nil, false) when absent.  The
// returned value is an independent copy.
func (t *Tree) Get(key []byte) ([]byte, bool, error) {
	v, ok, err := t.lookup(key, true)
	return v, ok, err
}

// Has reports whether key is present.
func (t *Tree) Has(key []byte) (bool, error) {
	_, ok, err := t.lookup(key, false)
	return ok, err
}

// lookup probes for key without materializing any node.  When copyVal is set
// the value is copied out of the pinned page before release.
func (t *Tree) lookup(key []byte, copyVal bool) ([]byte, bool, error) {
	fr, err := t.findLeafFrame(key)
	if err != nil {
		return nil, false, err
	}
	v, ok, err := pageLeafLookup(fr.ID(), fr.Data(), key)
	if ok && copyVal {
		v = append([]byte(nil), v...)
	} else if !copyVal {
		v = nil
	}
	fr.Release()
	return v, ok, err
}

func (t *Tree) findLeaf(key []byte) (*node, error) {
	fr, err := t.findLeafFrame(key)
	if err != nil {
		return nil, err
	}
	defer fr.Release()
	return parseNode(fr.ID(), fr.Data())
}

// --- insertion ---------------------------------------------------------------

// Put inserts key with value, replacing any existing value.
func (t *Tree) Put(key, value []byte) error {
	_, err := t.Upsert(key, value)
	return err
}

// Patch overwrites the value stored under key in place when the existing
// value has identical length, and reports whether it did.  The write happens
// directly in the pinned leaf page — no node parse, no reserialize, no
// structural change — which is why it is the fast path for every fixed-width
// table write.  (false, nil) means the key is absent or the lengths differ;
// the caller falls back to Upsert.
//
// In COW mode a published leaf is not written where it is: the page is
// cloned, the clone patched, and the one ancestor pointer rewired — still
// no node parse, so the fixed-width fast path survives snapshot isolation.
func (t *Tree) Patch(key, value []byte) (bool, error) {
	if len(key) == 0 {
		return false, errors.New("btree: empty key")
	}
	return t.tryPatch(key, value)
}

// tryPatch is the shared patch probe of Patch and Upsert.
func (t *Tree) tryPatch(key, value []byte) (bool, error) {
	if !t.cow {
		fr, err := t.findLeafFrame(key)
		if err != nil {
			return false, err
		}
		ok, err := t.patchInFrame(fr, key, value)
		fr.Release()
		return ok, err
	}
	var path []pagefile.PageID
	fr, err := t.descendToLeaf(key, &path, nil)
	if err != nil {
		return false, err
	}
	if t.mutableInPlace(fr.ID()) {
		ok, err := t.patchInFrame(fr, key, value)
		fr.Release()
		return ok, err
	}
	// Published leaf: check patchability first so a miss costs nothing, then
	// clone, patch the clone and rewire the parent pointer.
	valOff, valLen, found, err := pageLeafFindValue(fr.ID(), fr.Data(), key)
	if err != nil || !found || valLen != len(value) {
		fr.Release()
		return false, err
	}
	old := fr.ID()
	nfr, err := t.clonePage(fr)
	fr.Release()
	if err != nil {
		return false, err
	}
	nfr.Patch(valOff, value)
	nid := nfr.ID()
	nfr.Release()
	if err := t.freePage(old); err != nil {
		return false, err
	}
	if err := t.replaceChildPointer(path, old, nid); err != nil {
		return false, err
	}
	t.patches.Add(1)
	return true, nil
}

// patchInFrame applies the in-place patch against an already-pinned leaf
// frame.  The caller retains the pin.
func (t *Tree) patchInFrame(fr *buffer.Frame, key, value []byte) (bool, error) {
	valOff, valLen, found, err := pageLeafFindValue(fr.ID(), fr.Data(), key)
	if err != nil {
		return false, err
	}
	if !found || valLen != len(value) {
		return false, nil
	}
	fr.Patch(valOff, value)
	t.patches.Add(1)
	return true, nil
}

// patchRun applies as many leading items as possible as in-place patches
// against an already-pinned leaf frame, in one forward scan: items are in
// ascending key order and so are the leaf's entries, so the two advance
// together and a run of r replacements over a leaf of n entries costs
// O(n+r) instead of r full scans.  It stops at the first item that is not a
// same-length replacement of a key on this leaf (including items belonging
// to later leaves) and returns how many items it consumed.
func (t *Tree) patchRun(fr *buffer.Frame, items []Item) (int, error) {
	id := fr.ID()
	data := fr.Data()
	off := 1
	nKeys64, sz, err := codec.Uvarint(data[off:])
	if err != nil {
		return 0, fmt.Errorf("btree: page %d: %w", id, err)
	}
	off += sz + 16 // skip next and prev pointers
	consumed := 0
	for i := 0; i < int(nKeys64) && consumed < len(items); i++ {
		kl, sz, err := leafEntryLen(data, off)
		if err != nil {
			return consumed, err
		}
		off += sz
		if off+kl > len(data) {
			return consumed, fmt.Errorf("btree: page %d leaf entry overruns page", id)
		}
		k := data[off : off+kl]
		off += kl
		vl, sz, err := leafEntryLen(data, off)
		if err != nil {
			return consumed, err
		}
		off += sz
		if off+vl > len(data) {
			return consumed, fmt.Errorf("btree: page %d leaf entry overruns page", id)
		}
		cmp := bytes.Compare(k, items[consumed].Key)
		if cmp == 0 && vl == len(items[consumed].Value) {
			fr.Patch(off, items[consumed].Value)
			t.patches.Add(1)
			consumed++
		} else if cmp >= 0 {
			// The item is absent from this leaf (or present with a different
			// value length): not patchable, hand the rest to the caller.
			break
		}
		off += vl
	}
	return consumed, nil
}

// Upsert is Put that also reports whether a new key was inserted (false
// means an existing value was replaced).  Callers that need to maintain an
// entry count use it to avoid a separate Has probe per write.
//
// A same-length replacement is absorbed by the Patch fast path before the
// general insert machinery runs: one descent over pinned pages and an
// in-place value overwrite, no node parse or reserialize.  A write that
// misses the patch (new key, changed length) pays that probe descent on top
// of insertInto's own — a deliberate trade: the probe allocates nothing and
// is far cheaper than the leaf parse and rewrite the miss path performs
// anyway, while the hit path (every fixed-width table update, the paper's
// dominant workload) skips the rewrite entirely.
func (t *Tree) Upsert(key, value []byte) (bool, error) {
	if len(key) == 0 {
		return false, errors.New("btree: empty key")
	}
	if len(key)+len(value)+16 > t.maxEntrySize() {
		return false, fmt.Errorf("%w: key %d + value %d bytes (max %d)", ErrEntryTooLarge, len(key), len(value), t.maxEntrySize())
	}
	if !t.disablePatch {
		ok, err := t.tryPatch(key, value)
		if err != nil {
			return false, err
		}
		if ok {
			return false, nil
		}
	}
	self, promoted, newChild, inserted, err := t.insertInto(t.rootID(), key, value)
	if err != nil {
		return false, err
	}
	if inserted {
		t.size.Add(1)
	}
	if newChild == pagefile.InvalidPageID {
		if self != t.rootID() {
			t.setRoot(self)
		}
		return inserted, nil
	}
	// Root split: create a new internal root.
	newRoot, err := t.newNode(false)
	if err != nil {
		return false, err
	}
	newRoot.keys = [][]byte{promoted}
	newRoot.children = []pagefile.PageID{self, newChild}
	if err := t.flushNode(newRoot); err != nil {
		return false, err
	}
	t.setRoot(newRoot.id)
	return inserted, nil
}

// insertInto inserts into the subtree rooted at id.  It returns the page the
// subtree's root now lives at (COW mutation may relocate it), the promoted
// separator key and new sibling page when the node split, and whether a new
// key (as opposed to a replacement) was inserted.
func (t *Tree) insertInto(id pagefile.PageID, key, value []byte) (pagefile.PageID, []byte, pagefile.PageID, bool, error) {
	n, err := t.readNode(id)
	if err != nil {
		return id, nil, pagefile.InvalidPageID, false, err
	}
	if n.leaf {
		i := searchKeys(n.keys, key)
		inserted := true
		if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
			n.vals[i] = append([]byte(nil), value...)
			inserted = false
		} else {
			n.keys = append(n.keys, nil)
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = append([]byte(nil), key...)
			n.vals = append(n.vals, nil)
			copy(n.vals[i+1:], n.vals[i:])
			n.vals[i] = append([]byte(nil), value...)
		}
		if t.nodeSize(n) <= t.pool.PageSize() {
			self, err := t.writeNodeOut(n)
			return self, nil, pagefile.InvalidPageID, inserted, err
		}
		self, promoted, sib, err := t.splitLeaf(n)
		return self, promoted, sib, inserted, err
	}

	ci := childIndex(n, key)
	oldChild := n.children[ci]
	childSelf, promoted, newChild, inserted, err := t.insertInto(oldChild, key, value)
	if err != nil {
		return id, nil, pagefile.InvalidPageID, false, err
	}
	if childSelf == oldChild && newChild == pagefile.InvalidPageID {
		return id, nil, pagefile.InvalidPageID, inserted, nil
	}
	n.children[ci] = childSelf
	if newChild == pagefile.InvalidPageID {
		self, err := t.writeNodeOut(n)
		return self, nil, pagefile.InvalidPageID, inserted, err
	}
	// Insert the promoted separator into this internal node.
	i := searchKeys(n.keys, promoted)
	n.keys = append(n.keys, nil)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = promoted
	n.children = append(n.children, pagefile.InvalidPageID)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = newChild
	if t.nodeSize(n) <= t.pool.PageSize() {
		self, err := t.writeNodeOut(n)
		return self, nil, pagefile.InvalidPageID, inserted, err
	}
	self, up, sib, err := t.splitInternal(n)
	return self, up, sib, inserted, err
}

// splitLeaf splits an over-full leaf into two, returning the page the left
// half now lives at, the separator key (first key of the new right sibling)
// and the sibling's page ID.
func (t *Tree) splitLeaf(n *node) (pagefile.PageID, []byte, pagefile.PageID, error) {
	mid := len(n.keys) / 2
	if mid == 0 {
		mid = 1
	}
	right, err := t.newNode(true)
	if err != nil {
		return n.id, nil, pagefile.InvalidPageID, err
	}
	right.keys = append(right.keys, n.keys[mid:]...)
	right.vals = append(right.vals, n.vals[mid:]...)
	right.next = n.next

	// Fix the old next leaf's prev pointer.  COW trees do not maintain the
	// sibling chain — copy-on-write relocation would leave neighbours'
	// pointers stale anyway — and every COW read path re-descends instead of
	// chain-walking, so the stale pointers are never followed.
	if !t.cow && n.next != pagefile.InvalidPageID {
		oldNext, err := t.readNode(n.next)
		if err != nil {
			return n.id, nil, pagefile.InvalidPageID, err
		}
		oldNext.prev = right.id
		if err := t.flushNode(oldNext); err != nil {
			return n.id, nil, pagefile.InvalidPageID, err
		}
	}

	n.keys = n.keys[:mid]
	n.vals = n.vals[:mid]
	n.next = right.id

	self, err := t.writeNodeOut(n)
	if err != nil {
		return n.id, nil, pagefile.InvalidPageID, err
	}
	right.prev = self
	if err := t.flushNode(right); err != nil {
		return self, nil, pagefile.InvalidPageID, err
	}
	sep := append([]byte(nil), right.keys[0]...)
	return self, sep, right.id, nil
}

// splitInternal splits an over-full internal node, promoting the middle key.
// It returns the page the left half now lives at, the promoted key and the
// new right sibling.
func (t *Tree) splitInternal(n *node) (pagefile.PageID, []byte, pagefile.PageID, error) {
	mid := len(n.keys) / 2
	if mid == 0 {
		mid = 1
	}
	promoted := append([]byte(nil), n.keys[mid]...)

	right, err := t.newNode(false)
	if err != nil {
		return n.id, nil, pagefile.InvalidPageID, err
	}
	right.keys = append(right.keys, n.keys[mid+1:]...)
	right.children = append(right.children, n.children[mid+1:]...)

	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]

	if err := t.flushNode(right); err != nil {
		return n.id, nil, pagefile.InvalidPageID, err
	}
	self, err := t.writeNodeOut(n)
	if err != nil {
		return n.id, nil, pagefile.InvalidPageID, err
	}
	return self, promoted, right.id, nil
}

// --- deletion ----------------------------------------------------------------

// Delete removes key if present and reports whether it was found.  Leaves are
// not rebalanced, but a leaf that empties completely is unlinked from the
// sibling chain, removed from its ancestors and its page recycled (see the
// package comment).
func (t *Tree) Delete(key []byte) (bool, error) {
	var path []pagefile.PageID
	fr, err := t.descendToLeaf(key, &path, nil)
	if err != nil {
		return false, err
	}
	leaf, err := parseNode(fr.ID(), fr.Data())
	fr.Release()
	if err != nil {
		return false, err
	}
	i := searchKeys(leaf.keys, key)
	if i >= len(leaf.keys) || !bytes.Equal(leaf.keys[i], key) {
		return false, nil
	}
	leaf.keys = append(leaf.keys[:i], leaf.keys[i+1:]...)
	leaf.vals = append(leaf.vals[:i], leaf.vals[i+1:]...)
	t.size.Add(-1)
	if len(leaf.keys) == 0 && leaf.id != t.rootID() {
		// The page is about to be recycled; writing the dead image first
		// would be wasted I/O.
		return true, t.pruneEmptiedLeafAlongPath(leaf, path)
	}
	old := leaf.id
	self, err := t.writeNodeOut(leaf)
	if err != nil {
		return true, err
	}
	if self != old {
		return true, t.replaceChildPointer(path, old, self)
	}
	return true, nil
}

// freePage disposes of a page the tree no longer references.  A page no
// published snapshot could reach (non-COW trees, and fresh pages in COW
// mode) is recycled immediately: the resident frame (if any) is dropped
// without writeback and the page goes to the pagefile free list.  A
// published page is retired instead and recycled once its epoch drains.
func (t *Tree) freePage(id pagefile.PageID) error {
	if t.cow {
		if _, ok := t.fresh[id]; ok {
			delete(t.fresh, id)
			return t.pool.FreePage(id)
		}
		t.retire(id)
		return nil
	}
	return t.pool.FreePage(id)
}

// RetireAll disposes of every page of the tree — retired when published,
// recycled immediately when fresh or non-COW — for a tree being replaced
// wholesale (bulk-load swap, offline merge).  The tree must not be used
// afterwards.
func (t *Tree) RetireAll() error {
	return t.retireSubtree(t.rootID())
}

func (t *Tree) retireSubtree(id pagefile.PageID) error {
	n, err := t.readNode(id)
	if err != nil {
		return err
	}
	if !n.leaf {
		for _, c := range n.children {
			if err := t.retireSubtree(c); err != nil {
				return err
			}
		}
	}
	return t.freePage(id)
}

// pruneEmptiedLeafAlongPath dismantles a leaf a delete just emptied, given
// the already-parsed (and already-emptied, unflushed) leaf and the
// root-to-leaf descent path: the leaf is unlinked from the sibling chain
// (non-COW trees only — COW read paths never follow the chain), removed from
// the ancestor chain and its page recycled, without ever writing the dead
// page image.  An internal node that loses its only child is pruned the same way,
// a root that empties entirely is rewritten as an empty leaf, and a root
// left with a single child collapses onto it — so the tree sheds every page
// the deletes emptied.
func (t *Tree) pruneEmptiedLeafAlongPath(leaf *node, path []pagefile.PageID) error {
	// Unlink from the doubly linked sibling chain.
	if !t.cow {
		if leaf.prev != pagefile.InvalidPageID {
			prev, err := t.readNode(leaf.prev)
			if err != nil {
				return err
			}
			prev.next = leaf.next
			if err := t.flushNode(prev); err != nil {
				return err
			}
		}
		if leaf.next != pagefile.InvalidPageID {
			next, err := t.readNode(leaf.next)
			if err != nil {
				return err
			}
			next.prev = leaf.prev
			if err := t.flushNode(next); err != nil {
				return err
			}
		}
	}
	if err := t.freePage(leaf.id); err != nil {
		return err
	}

	// Remove the dead child from its ancestors, pruning any internal node
	// that empties in turn.
	child := leaf.id
	for pi := len(path) - 1; pi >= 0; pi-- {
		parent, err := t.readNode(path[pi])
		if err != nil {
			return err
		}
		ci := -1
		for j, c := range parent.children {
			if c == child {
				ci = j
				break
			}
		}
		if ci < 0 {
			return fmt.Errorf("btree: page %d missing from parent %d during prune", child, path[pi])
		}
		parent.children = append(parent.children[:ci], parent.children[ci+1:]...)
		if len(parent.keys) > 0 {
			// Drop the separator adjacent to the removed child: keys[ci-1]
			// separated it from its left neighbour; for child 0 the old
			// keys[0] bounds the new leftmost subtree from below, which the
			// invariants do not require.
			ki := ci - 1
			if ki < 0 {
				ki = 0
			}
			parent.keys = append(parent.keys[:ki], parent.keys[ki+1:]...)
		}
		if len(parent.children) == 0 {
			// The parent lost its only child.  A non-root parent is pruned in
			// turn; an empty root means the whole tree emptied, so the root
			// is rewritten as an empty leaf (New's initial state) — under COW
			// at a fresh page, leaving the published root untouched.
			if parent.id == t.rootID() {
				root := &node{id: t.rootID(), leaf: true, next: pagefile.InvalidPageID, prev: pagefile.InvalidPageID}
				self, err := t.writeNodeOut(root)
				if err != nil {
					return err
				}
				t.setRoot(self)
				return nil
			}
			if err := t.freePage(parent.id); err != nil {
				return err
			}
			child = parent.id
			continue
		}
		oldParent := parent.id
		self, err := t.writeNodeOut(parent)
		if err != nil {
			return err
		}
		if self != oldParent {
			if err := t.replaceChildPointer(path[:pi], oldParent, self); err != nil {
				return err
			}
		}
		break
	}
	return t.collapseRoot()
}

// collapseRoot repeatedly replaces an internal root that has a single child
// with that child, recycling the old root's page (height reduction after
// pruning).
func (t *Tree) collapseRoot() error {
	for {
		n, err := t.readNode(t.rootID())
		if err != nil {
			return err
		}
		if n.leaf || len(n.children) != 1 {
			return nil
		}
		old := t.rootID()
		t.setRoot(n.children[0])
		if err := t.freePage(old); err != nil {
			return err
		}
	}
}

// --- scans -------------------------------------------------------------------

// Visitor receives key/value pairs during a scan.  Returning false stops the
// scan early.
type Visitor func(key, value []byte) bool

// AscendRange visits keys in [start, end) in ascending order.  A nil start
// begins at the smallest key; a nil end scans to the largest.  The scan is
// chain-free — it re-descends at each leaf's upper bound instead of
// following sibling pointers — so it is valid on COW trees, whose sibling
// chain goes stale as pages relocate.
func (t *Tree) AscendRange(start, end []byte, visit Visitor) error {
	return t.View().AscendRange(start, end, visit)
}

// errDescendOnCOW rejects descending scans on COW trees: they walk the leaf
// sibling chain, which COW mutation does not maintain.
var errDescendOnCOW = errors.New("btree: descending scans are not supported on COW trees")

// Ascend visits every key in ascending order.
func (t *Tree) Ascend(visit Visitor) error { return t.AscendRange(nil, nil, visit) }

// AscendPrefix visits every key beginning with prefix in ascending order.
func (t *Tree) AscendPrefix(prefix []byte, visit Visitor) error {
	return t.AscendRange(prefix, prefixEnd(prefix), visit)
}

// DescendRange visits keys in (startExclusiveHigh..end] descending.  A nil
// high starts from the largest key; a nil low scans to the smallest.  The
// high bound is exclusive, the low bound inclusive, mirroring AscendRange.
// Only available on non-COW trees (see errDescendOnCOW).
func (t *Tree) DescendRange(high, low []byte, visit Visitor) error {
	if t.cow {
		return errDescendOnCOW
	}
	var leaf *node
	var err error
	var i int
	if high == nil {
		leaf, err = t.rightmostLeaf()
		if err != nil {
			return err
		}
		i = len(leaf.keys) - 1
	} else {
		leaf, err = t.findLeaf(high)
		if err != nil {
			return err
		}
		i = searchKeys(leaf.keys, high) - 1
	}
	for {
		for ; i >= 0; i-- {
			if low != nil && bytes.Compare(leaf.keys[i], low) < 0 {
				return nil
			}
			if !visit(leaf.keys[i], leaf.vals[i]) {
				return nil
			}
		}
		if leaf.prev == pagefile.InvalidPageID {
			return nil
		}
		leaf, err = t.readNode(leaf.prev)
		if err != nil {
			return err
		}
		i = len(leaf.keys) - 1
	}
}

// Descend visits every key in descending order.
func (t *Tree) Descend(visit Visitor) error { return t.DescendRange(nil, nil, visit) }

// DescendPrefix visits keys with the given prefix from highest to lowest.
func (t *Tree) DescendPrefix(prefix []byte, visit Visitor) error {
	return t.DescendRange(prefixEnd(prefix), prefix, visit)
}

// prefixEnd returns the smallest key greater than every key with the given
// prefix, or nil when no such key exists (prefix of all 0xFF bytes).
func prefixEnd(prefix []byte) []byte {
	end := append([]byte(nil), prefix...)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] != 0xFF {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}

func (t *Tree) leftmostLeaf() (*node, error) {
	n, err := t.readNode(t.rootID())
	if err != nil {
		return nil, err
	}
	for !n.leaf {
		n, err = t.readNode(n.children[0])
		if err != nil {
			return nil, err
		}
	}
	return n, nil
}

func (t *Tree) rightmostLeaf() (*node, error) {
	n, err := t.readNode(t.rootID())
	if err != nil {
		return nil, err
	}
	for !n.leaf {
		n, err = t.readNode(n.children[len(n.children)-1])
		if err != nil {
			return nil, err
		}
	}
	return n, nil
}

// --- diagnostics -------------------------------------------------------------

// Height returns the number of levels in the tree (1 for a single leaf).
func (t *Tree) Height() (int, error) {
	h := 1
	n, err := t.readNode(t.rootID())
	if err != nil {
		return 0, err
	}
	for !n.leaf {
		h++
		n, err = t.readNode(n.children[0])
		if err != nil {
			return 0, err
		}
	}
	return h, nil
}

// CheckInvariants validates structural invariants: keys sorted within nodes,
// separator keys bounding subtrees, and leaf sibling links consistent.  It is
// used by tests and returns a descriptive error on the first violation.
func (t *Tree) CheckInvariants() error {
	_, _, err := t.checkSubtree(t.rootID(), nil, nil)
	if err != nil {
		return err
	}
	if t.cow {
		// COW mutation abandons the sibling chain (reads never follow it), so
		// only the structural invariants apply.
		return nil
	}
	return t.checkLeafChain()
}

func (t *Tree) checkSubtree(id pagefile.PageID, lower, upper []byte) (minKey, maxKey []byte, err error) {
	n, err := t.readNode(id)
	if err != nil {
		return nil, nil, err
	}
	for i := 1; i < len(n.keys); i++ {
		if bytes.Compare(n.keys[i-1], n.keys[i]) >= 0 {
			return nil, nil, fmt.Errorf("btree: page %d keys out of order at %d", id, i)
		}
	}
	for _, k := range n.keys {
		if lower != nil && bytes.Compare(k, lower) < 0 {
			return nil, nil, fmt.Errorf("btree: page %d key below lower bound", id)
		}
		if upper != nil && bytes.Compare(k, upper) >= 0 {
			return nil, nil, fmt.Errorf("btree: page %d key above upper bound", id)
		}
	}
	if n.leaf {
		if len(n.keys) == 0 {
			return lower, lower, nil
		}
		return n.keys[0], n.keys[len(n.keys)-1], nil
	}
	if len(n.children) != len(n.keys)+1 {
		return nil, nil, fmt.Errorf("btree: page %d has %d keys but %d children", id, len(n.keys), len(n.children))
	}
	for i, child := range n.children {
		lo := lower
		hi := upper
		if i > 0 {
			lo = n.keys[i-1]
		}
		if i < len(n.keys) {
			hi = n.keys[i]
		}
		if _, _, err := t.checkSubtree(child, lo, hi); err != nil {
			return nil, nil, err
		}
	}
	return lower, upper, nil
}

func (t *Tree) checkLeafChain() error {
	leaf, err := t.leftmostLeaf()
	if err != nil {
		return err
	}
	var prev []byte
	prevID := pagefile.InvalidPageID
	for {
		if leaf.prev != prevID {
			return fmt.Errorf("btree: leaf %d prev pointer %d, want %d", leaf.id, leaf.prev, prevID)
		}
		for _, k := range leaf.keys {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				return fmt.Errorf("btree: leaf chain keys out of order at page %d", leaf.id)
			}
			prev = append(prev[:0], k...)
		}
		if leaf.next == pagefile.InvalidPageID {
			return nil
		}
		prevID = leaf.id
		leaf, err = t.readNode(leaf.next)
		if err != nil {
			return err
		}
	}
}
