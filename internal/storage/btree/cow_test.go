package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"svrdb/internal/storage/pagefile"
)

// cowKey/cowVal build fixed-width test entries so patches stay same-length.
func cowKey(i int) []byte { return []byte(fmt.Sprintf("key:%06d", i)) }
func cowVal(i, gen int) []byte {
	return []byte(fmt.Sprintf("val:%06d:%04d", i, gen))
}

// collectView materializes every key/value pair a view can see.
func collectView(t *testing.T, v View) map[string]string {
	t.Helper()
	out := map[string]string{}
	if err := v.Ascend(func(k, val []byte) bool {
		out[string(k)] = string(val)
		return true
	}); err != nil {
		t.Fatalf("Ascend: %v", err)
	}
	return out
}

// TestCOWSealedViewSurvivesMutation is the core snapshot property: a view
// captured at Seal time keeps returning exactly the sealed contents while
// the writer patches, inserts, deletes and splits underneath it.
func TestCOWSealedViewSurvivesMutation(t *testing.T) {
	tree, _ := newTestTree(t, 512, 256)
	var retired []pagefile.PageID
	tree.EnableCOW(func(id pagefile.PageID) { retired = append(retired, id) })

	const n = 400
	for i := 0; i < n; i++ {
		if err := tree.Put(cowKey(i), cowVal(i, 0)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	tree.Seal()
	v1 := tree.View()
	want1 := collectView(t, v1)
	if len(want1) != n {
		t.Fatalf("sealed view has %d keys, want %d", len(want1), n)
	}

	// Mutate everything: same-length patches on evens, deletes of every
	// fourth key, fresh inserts beyond the sealed range.
	for i := 0; i < n; i += 2 {
		if err := tree.Put(cowKey(i), cowVal(i, 1)); err != nil {
			t.Fatalf("patch Put: %v", err)
		}
	}
	for i := 1; i < n; i += 4 {
		if ok, err := tree.Delete(cowKey(i)); err != nil || !ok {
			t.Fatalf("Delete(%d) = %v, %v", i, ok, err)
		}
	}
	for i := n; i < n+200; i++ {
		if err := tree.Put(cowKey(i), cowVal(i, 1)); err != nil {
			t.Fatalf("insert Put: %v", err)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants after mutation: %v", err)
	}
	if len(retired) == 0 {
		t.Fatal("no pages were retired by COW mutation of a sealed tree")
	}

	// The sealed view is bit-for-bit unchanged, scans and point reads alike.
	got1 := collectView(t, v1)
	if len(got1) != len(want1) {
		t.Fatalf("sealed view now has %d keys, want %d", len(got1), len(want1))
	}
	for k, val := range want1 {
		if got1[k] != val {
			t.Fatalf("sealed view key %q = %q, want %q", k, got1[k], val)
		}
	}
	for i := 0; i < n; i += 37 {
		val, ok, err := v1.Get(cowKey(i))
		if err != nil || !ok {
			t.Fatalf("view Get(%d) = %v, %v", i, ok, err)
		}
		if !bytes.Equal(val, cowVal(i, 0)) {
			t.Fatalf("view Get(%d) = %q, want generation 0", i, val)
		}
	}
	if _, ok, _ := v1.Get(cowKey(n + 10)); ok {
		t.Fatal("sealed view sees a key inserted after Seal")
	}

	// The live tree sees the new state.
	for i := 0; i < n; i += 2 {
		val, ok, err := tree.Get(cowKey(i))
		if err != nil || !ok {
			t.Fatalf("live Get(%d) = %v, %v", i, ok, err)
		}
		if !bytes.Equal(val, cowVal(i, 1)) {
			t.Fatalf("live Get(%d) = %q, want generation 1", i, val)
		}
	}
	for i := 1; i < n; i += 4 {
		if _, ok, _ := tree.Get(cowKey(i)); ok {
			t.Fatalf("live tree still has deleted key %d", i)
		}
	}
}

// TestCOWFreshPagesRecycledNotRetired asserts that before the first Seal —
// while no snapshot can reach any page allocated since EnableCOW — mutation
// never feeds the retire hook: superseded fresh pages go straight back to
// the free list.  (The one page predating EnableCOW, the initial empty
// root, is conservatively treated as published and may be retired once.)
func TestCOWFreshPagesRecycledNotRetired(t *testing.T) {
	tree, _ := newTestTree(t, 512, 256)
	var retired []pagefile.PageID
	tree.EnableCOW(func(id pagefile.PageID) { retired = append(retired, id) })
	if err := tree.Put(cowKey(0), cowVal(0, 0)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	retired = nil // drop the pre-COW initial root
	for i := 1; i < 300; i++ {
		if err := tree.Put(cowKey(i), cowVal(i, 0)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	for i := 0; i < 300; i += 3 {
		if _, err := tree.Delete(cowKey(i)); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	if len(retired) != 0 {
		t.Fatalf("retired %d pages before any Seal: %v", len(retired), retired)
	}
}

// TestCOWBatchOpsPreserveSealedView drives the batched write paths
// (UpsertBatch, DeleteBatch) against a sealed tree and checks the snapshot
// plus the live contents against a shadow map.
func TestCOWBatchOpsPreserveSealedView(t *testing.T) {
	tree, _ := newTestTree(t, 512, 256)
	tree.EnableCOW(func(pagefile.PageID) {})

	shadow := map[string]string{}
	const n = 300
	var items []Item
	for i := 0; i < n; i++ {
		items = append(items, Item{Key: cowKey(i), Value: cowVal(i, 0)})
		shadow[string(cowKey(i))] = string(cowVal(i, 0))
	}
	if _, err := tree.UpsertBatch(items); err != nil {
		t.Fatalf("UpsertBatch: %v", err)
	}
	tree.Seal()
	v1 := tree.View()
	want1 := collectView(t, v1)

	// Batch 1: same-length patch of every key (pure patchRun on promoted
	// clones) plus new inserts.
	var batch []Item
	for i := 0; i < n; i++ {
		batch = append(batch, Item{Key: cowKey(i), Value: cowVal(i, 1)})
		shadow[string(cowKey(i))] = string(cowVal(i, 1))
	}
	for i := n; i < n+100; i++ {
		batch = append(batch, Item{Key: cowKey(i), Value: cowVal(i, 1)})
		shadow[string(cowKey(i))] = string(cowVal(i, 1))
	}
	if _, err := tree.UpsertBatch(batch); err != nil {
		t.Fatalf("UpsertBatch 2: %v", err)
	}

	// Batch 2: delete a swath, including runs that empty whole leaves.
	var dels [][]byte
	for i := 50; i < 250; i++ {
		dels = append(dels, cowKey(i))
		delete(shadow, string(cowKey(i)))
	}
	removed, err := tree.DeleteBatch(dels)
	if err != nil {
		t.Fatalf("DeleteBatch: %v", err)
	}
	if removed != 200 {
		t.Fatalf("DeleteBatch removed %d, want 200", removed)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants: %v", err)
	}

	got1 := collectView(t, v1)
	if len(got1) != len(want1) {
		t.Fatalf("sealed view drifted: %d keys, want %d", len(got1), len(want1))
	}
	for k, val := range want1 {
		if got1[k] != val {
			t.Fatalf("sealed view key %q = %q, want %q", k, got1[k], val)
		}
	}
	live := collectView(t, tree.View())
	if len(live) != len(shadow) {
		t.Fatalf("live tree has %d keys, want %d", len(live), len(shadow))
	}
	for k, val := range shadow {
		if live[k] != val {
			t.Fatalf("live key %q = %q, want %q", k, live[k], val)
		}
	}
	if tree.Len() != len(shadow) {
		t.Fatalf("Len = %d, want %d", tree.Len(), len(shadow))
	}
}

// TestCOWViewProbeConsistency checks the snapshot-pinned probe: ascending
// point lookups against a sealed view resolve the sealed values while the
// writer churns.
func TestCOWViewProbeConsistency(t *testing.T) {
	tree, _ := newTestTree(t, 512, 256)
	tree.EnableCOW(func(pagefile.PageID) {})
	const n = 350
	for i := 0; i < n; i++ {
		if err := tree.Put(cowKey(i), cowVal(i, 0)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	tree.Seal()
	v1 := tree.View()
	probe := v1.NewProbe()

	rng := rand.New(rand.NewSource(7))
	for gen := 1; gen <= 3; gen++ {
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				if err := tree.Put(cowKey(i), cowVal(i, gen)); err != nil {
					t.Fatalf("Put: %v", err)
				}
			}
		}
		// Ascending probes, the query engine's access pattern.
		for i := 0; i < n; i++ {
			val, ok, err := probe.Get(cowKey(i))
			if err != nil || !ok {
				t.Fatalf("probe Get(%d) = %v, %v", i, ok, err)
			}
			if !bytes.Equal(val, cowVal(i, 0)) {
				t.Fatalf("gen %d: probe Get(%d) = %q, want sealed value", gen, i, val)
			}
		}
		// A few random jumps to exercise the re-descend path.
		for j := 0; j < 50; j++ {
			i := rng.Intn(n)
			val, ok, err := probe.Get(cowKey(i))
			if err != nil || !ok || !bytes.Equal(val, cowVal(i, 0)) {
				t.Fatalf("random probe Get(%d) = %q, %v, %v", i, val, ok, err)
			}
		}
	}
}

// TestCOWRetireAllCoversEveryPage replaces a sealed tree wholesale and
// checks that RetireAll hands back exactly the sealed tree's page count.
func TestCOWRetireAllCoversEveryPage(t *testing.T) {
	tree, _ := newTestTree(t, 512, 256)
	var retired []pagefile.PageID
	tree.EnableCOW(func(id pagefile.PageID) { retired = append(retired, id) })
	const n = 300
	for i := 0; i < n; i++ {
		if err := tree.Put(cowKey(i), cowVal(i, 0)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	tree.Seal()

	// Count reachable pages via a fresh descent of every leaf + internals.
	var pages int
	var count func(id pagefile.PageID) error
	count = func(id pagefile.PageID) error {
		pages++
		n, err := tree.readNode(id)
		if err != nil {
			return err
		}
		if !n.leaf {
			for _, c := range n.children {
				if err := count(c); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := count(tree.rootID()); err != nil {
		t.Fatalf("walk: %v", err)
	}
	retired = nil // only count RetireAll's own contribution
	if err := tree.RetireAll(); err != nil {
		t.Fatalf("RetireAll: %v", err)
	}
	if len(retired) != pages {
		t.Fatalf("RetireAll retired %d pages, tree had %d", len(retired), pages)
	}
}
