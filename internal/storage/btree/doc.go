// Package btree implements a B+-tree keyed by arbitrary byte strings over a
// buffer pool of fixed-size pages.
//
// The paper implements every updatable structure — the Score table, the
// ListScore/ListChunk tables, the short inverted lists and the Score
// method's clustered long list — as BerkeleyDB B+-trees (§5.2).  This
// package is the equivalent substrate: keys and values are opaque byte
// strings, keys compare bytewise (order-preserving composite keys are built
// with package codec), leaves are doubly linked for ascending and descending
// range scans, and every node occupies exactly one buffer-pool page so that
// the I/O counters reflect realistic access costs.
//
// Deletion is "lazy": a key is removed from its leaf but leaves are not
// rebalanced when they underflow.  This matches the access patterns in this
// repository (deletes are rare: only document deletion uses them) and keeps
// scans and lookups correct; space from deleted entries is reclaimed when a
// leaf is next split or rewritten.  A leaf that empties completely is the
// exception: it is unlinked from the sibling chain, removed from its parent
// and its page recycled through the pagefile free list, so delete/reinsert
// churn neither grows the page file without bound nor leaves dead leaves for
// scans to traverse.
//
// Writes that replace an existing value with one of identical length — every
// fixed-width table write: Score-table score updates, ListScore/ListChunk
// rows, deleted-flag flips — take an in-place patch fast path: the value
// bytes are overwritten directly in the pinned leaf page (Frame.Patch) with
// no node parse or reserialize.  Upsert applies it automatically; Patch
// exposes it directly.
//
// See ARCHITECTURE.md for the layer map — where this package sits in the
// stack — and for the repo-wide concurrency contract.
package btree
