package btree

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
)

// newTestTree builds a tree over a small page size so that splits happen
// with modest numbers of keys, exercising multi-level structure.
func newTestTree(t testing.TB, pageSize, poolPages int) (*Tree, *buffer.Pool) {
	t.Helper()
	file := pagefile.MustNewMem(pageSize)
	pool := buffer.MustNew(file, poolPages)
	tree, err := New(pool)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tree, pool
}

func TestPutGetSingle(t *testing.T) {
	tree, _ := newTestTree(t, 512, 64)
	if err := tree.Put([]byte("movie:42"), []byte("American Thrift")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	v, ok, err := tree.Get([]byte("movie:42"))
	if err != nil || !ok {
		t.Fatalf("Get = %v, %v, %v", v, ok, err)
	}
	if string(v) != "American Thrift" {
		t.Errorf("Get = %q, want %q", v, "American Thrift")
	}
	if _, ok, _ := tree.Get([]byte("movie:43")); ok {
		t.Error("Get of absent key reported present")
	}
}

func TestPutReplace(t *testing.T) {
	tree, _ := newTestTree(t, 512, 64)
	key := []byte("doc")
	if err := tree.Put(key, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := tree.Put(key, []byte("new")); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 1 {
		t.Errorf("Len = %d after replace, want 1", tree.Len())
	}
	v, _, _ := tree.Get(key)
	if string(v) != "new" {
		t.Errorf("Get = %q, want %q", v, "new")
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	tree, _ := newTestTree(t, 512, 64)
	if err := tree.Put(nil, []byte("v")); err == nil {
		t.Fatal("Put with empty key succeeded, want error")
	}
}

func TestEntryTooLarge(t *testing.T) {
	tree, _ := newTestTree(t, 512, 64)
	big := bytes.Repeat([]byte{'x'}, 1024)
	if err := tree.Put([]byte("k"), big); err == nil {
		t.Fatal("oversized value accepted, want error")
	}
}

func TestManyInsertsAndSplits(t *testing.T) {
	tree, pool := newTestTree(t, 512, 256)
	const n = 2000
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key%06d", i))
		val := []byte(fmt.Sprintf("value-%d", i*i))
		if err := tree.Put(key, val); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if tree.Len() != n {
		t.Fatalf("Len = %d, want %d", tree.Len(), n)
	}
	h, err := tree.Height()
	if err != nil {
		t.Fatal(err)
	}
	if h < 2 {
		t.Errorf("Height = %d; expected splits to produce a multi-level tree", h)
	}
	for i := 0; i < n; i += 37 {
		key := []byte(fmt.Sprintf("key%06d", i))
		v, ok, err := tree.Get(key)
		if err != nil || !ok {
			t.Fatalf("Get %s: %v %v", key, ok, err)
		}
		want := fmt.Sprintf("value-%d", i*i)
		if string(v) != want {
			t.Errorf("Get %s = %q, want %q", key, v, want)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Errorf("CheckInvariants: %v", err)
	}
	if pool.PinnedPages() != 0 {
		t.Errorf("pool has %d pinned pages after operations, want 0", pool.PinnedPages())
	}
}

func TestRandomInsertLookupAgainstMap(t *testing.T) {
	tree, _ := newTestTree(t, 512, 512)
	rng := rand.New(rand.NewSource(11))
	oracle := map[string]string{}
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("k%08d", rng.Intn(3000))
		v := fmt.Sprintf("v%d", rng.Int63())
		oracle[k] = v
		if err := tree.Put([]byte(k), []byte(v)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if tree.Len() != len(oracle) {
		t.Fatalf("Len = %d, want %d", tree.Len(), len(oracle))
	}
	for k, want := range oracle {
		v, ok, err := tree.Get([]byte(k))
		if err != nil || !ok || string(v) != want {
			t.Fatalf("Get %s = %q, %v, %v; want %q", k, v, ok, err, want)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Errorf("CheckInvariants: %v", err)
	}
}

func TestDelete(t *testing.T) {
	tree, _ := newTestTree(t, 512, 256)
	for i := 0; i < 500; i++ {
		if err := tree.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	ok, err := tree.Delete([]byte("k0100"))
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if _, found, _ := tree.Get([]byte("k0100")); found {
		t.Error("deleted key still present")
	}
	ok, err = tree.Delete([]byte("k0100"))
	if err != nil || ok {
		t.Errorf("second Delete = %v, %v; want false, nil", ok, err)
	}
	if tree.Len() != 499 {
		t.Errorf("Len = %d, want 499", tree.Len())
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Errorf("CheckInvariants: %v", err)
	}
}

func TestAscendOrder(t *testing.T) {
	tree, _ := newTestTree(t, 512, 256)
	keys := rand.New(rand.NewSource(3)).Perm(1000)
	for _, k := range keys {
		if err := tree.Put([]byte(fmt.Sprintf("k%05d", k)), []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	var seen []string
	if err := tree.Ascend(func(k, v []byte) bool {
		seen = append(seen, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1000 {
		t.Fatalf("Ascend visited %d keys, want 1000", len(seen))
	}
	if !sort.StringsAreSorted(seen) {
		t.Error("Ascend did not visit keys in sorted order")
	}
}

func TestDescendOrder(t *testing.T) {
	tree, _ := newTestTree(t, 512, 256)
	for i := 0; i < 1000; i++ {
		if err := tree.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	var seen []string
	if err := tree.Descend(func(k, v []byte) bool {
		seen = append(seen, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1000 {
		t.Fatalf("Descend visited %d keys, want 1000", len(seen))
	}
	for i := 1; i < len(seen); i++ {
		if seen[i-1] <= seen[i] {
			t.Fatalf("Descend order violated at %d: %s then %s", i, seen[i-1], seen[i])
		}
	}
}

func TestAscendRangeBounds(t *testing.T) {
	tree, _ := newTestTree(t, 512, 256)
	for i := 0; i < 100; i++ {
		if err := tree.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	var seen []string
	err := tree.AscendRange([]byte("k010"), []byte("k020"), func(k, v []byte) bool {
		seen = append(seen, string(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 10 {
		t.Fatalf("range scan returned %d keys, want 10: %v", len(seen), seen)
	}
	if seen[0] != "k010" || seen[9] != "k019" {
		t.Errorf("range scan bounds wrong: first %s last %s", seen[0], seen[9])
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tree, _ := newTestTree(t, 512, 256)
	for i := 0; i < 100; i++ {
		if err := tree.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	if err := tree.Ascend(func(k, v []byte) bool {
		count++
		return count < 5
	}); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("early-stopped scan visited %d keys, want 5", count)
	}
}

func TestAscendPrefix(t *testing.T) {
	tree, _ := newTestTree(t, 512, 256)
	terms := []string{"news", "newt", "new", "golden", "gate"}
	for _, term := range terms {
		for i := 0; i < 5; i++ {
			key := append([]byte(term+"\x00"), byte(i))
			if err := tree.Put(key, []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
	}
	count := 0
	if err := tree.AscendPrefix([]byte("news\x00"), func(k, v []byte) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("prefix scan for news returned %d entries, want 5", count)
	}
}

func TestDescendPrefix(t *testing.T) {
	tree, _ := newTestTree(t, 512, 256)
	for i := 0; i < 20; i++ {
		key := []byte(fmt.Sprintf("term\x00%02d", i))
		if err := tree.Put(key, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// An entry under a different prefix that must not appear.
	if err := tree.Put([]byte("tern\x0000"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	var seen []string
	if err := tree.DescendPrefix([]byte("term\x00"), func(k, v []byte) bool {
		seen = append(seen, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 20 {
		t.Fatalf("DescendPrefix returned %d entries, want 20 (%v)", len(seen), seen)
	}
	if seen[0] != "term\x0019" || seen[19] != "term\x0000" {
		t.Errorf("DescendPrefix order wrong: first %q last %q", seen[0], seen[19])
	}
}

func TestDeleteThenScan(t *testing.T) {
	tree, _ := newTestTree(t, 512, 256)
	for i := 0; i < 300; i++ {
		if err := tree.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i += 2 {
		if _, err := tree.Delete([]byte(fmt.Sprintf("k%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	if err := tree.Ascend(func(k, v []byte) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 150 {
		t.Errorf("scan after deletes visited %d keys, want 150", count)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Errorf("CheckInvariants: %v", err)
	}
}

func TestScanEmptyTree(t *testing.T) {
	tree, _ := newTestTree(t, 512, 64)
	count := 0
	if err := tree.Ascend(func(k, v []byte) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if err := tree.Descend(func(k, v []byte) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Errorf("scans of empty tree visited %d keys", count)
	}
}

func TestSmallBufferPoolStillCorrect(t *testing.T) {
	// A pool with very few frames forces constant eviction and re-reads,
	// verifying that nodes survive round trips through the page file.
	tree, pool := newTestTree(t, 512, 8)
	const n = 1500
	for i := 0; i < n; i++ {
		if err := tree.Put([]byte(fmt.Sprintf("k%06d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := pool.EvictAll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 101 {
		v, ok, err := tree.Get([]byte(fmt.Sprintf("k%06d", i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get after evict-all failed for %d: %q %v %v", i, v, ok, err)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Errorf("CheckInvariants: %v", err)
	}
}

func TestBinaryKeysWithOrderedEncoding(t *testing.T) {
	tree, _ := newTestTree(t, 1024, 256)
	// Keys are (score descending, docID) as the Score method lays out its
	// clustered long list; verify descending scan yields descending scores.
	type posting struct {
		score float64
		doc   uint64
	}
	rng := rand.New(rand.NewSource(5))
	var postings []posting
	for i := 0; i < 500; i++ {
		postings = append(postings, posting{score: rng.Float64() * 100000, doc: uint64(i)})
	}
	for _, p := range postings {
		key := make([]byte, 0, 16)
		key = appendDescFloat(key, p.score)
		key = appendUint64(key, p.doc)
		if err := tree.Put(key, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	prev := 1e18
	count := 0
	if err := tree.Ascend(func(k, v []byte) bool {
		score := descFloatFrom(k)
		if score > prev {
			t.Fatalf("scores not descending: %v after %v", score, prev)
		}
		prev = score
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != len(postings) {
		t.Errorf("visited %d postings, want %d", count, len(postings))
	}
}

// Helpers mirroring codec's ordered encodings without importing it (keeps
// this package's tests self-contained at the storage layer).
func appendDescFloat(dst []byte, f float64) []byte {
	bits := uint64(0)
	if f < 0 {
		panic("test helper only supports non-negative scores")
	}
	bits = ^(floatBits(f) | (1 << 63))
	return appendUint64(dst, bits)
}

func descFloatFrom(key []byte) float64 {
	u := uint64(0)
	for i := 0; i < 8; i++ {
		u = u<<8 | uint64(key[i])
	}
	return floatFromBits((^u) &^ (1 << 63))
}

func appendUint64(dst []byte, v uint64) []byte {
	for shift := 56; shift >= 0; shift -= 8 {
		dst = append(dst, byte(v>>uint(shift)))
	}
	return dst
}

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(u uint64) float64 { return math.Float64frombits(u) }
