package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
)

func bulkItems(n int, valSize int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			Key:   []byte(fmt.Sprintf("key%08d", i)),
			Value: bytes.Repeat([]byte{byte('a' + i%26)}, valSize),
		}
	}
	return items
}

func collectAll(t *testing.T, tree *Tree) ([][]byte, [][]byte) {
	t.Helper()
	var keys, vals [][]byte
	err := tree.Ascend(func(k, v []byte) bool {
		keys = append(keys, append([]byte(nil), k...))
		vals = append(vals, append([]byte(nil), v...))
		return true
	})
	if err != nil {
		t.Fatalf("Ascend: %v", err)
	}
	return keys, vals
}

// TestBulkLoadEquivalence checks that a bulk-loaded tree holds exactly the
// same content, in the same cursor order, as an Upsert-built tree, at
// several sizes including empty, single-leaf and multi-level shapes.
func TestBulkLoadEquivalence(t *testing.T) {
	for _, n := range []int{0, 1, 7, 120, 2500} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			file := pagefile.MustNewMem(512)
			pool := buffer.MustNew(file, 64)
			items := bulkItems(n, 8)
			bulk, err := BulkLoad(pool, items)
			if err != nil {
				t.Fatalf("BulkLoad: %v", err)
			}
			if err := bulk.CheckInvariants(); err != nil {
				t.Fatalf("bulk tree invariants: %v", err)
			}
			if bulk.Len() != n {
				t.Fatalf("Len = %d, want %d", bulk.Len(), n)
			}

			up, upPool := newTestTree(t, 512, 64)
			for _, it := range items {
				if err := up.Put(it.Key, it.Value); err != nil {
					t.Fatal(err)
				}
			}
			bk, bv := collectAll(t, bulk)
			uk, uv := collectAll(t, up)
			if len(bk) != len(uk) {
				t.Fatalf("bulk has %d keys, upsert-built has %d", len(bk), len(uk))
			}
			for i := range bk {
				if !bytes.Equal(bk[i], uk[i]) || !bytes.Equal(bv[i], uv[i]) {
					t.Fatalf("entry %d: bulk (%q,%q) != upsert (%q,%q)", i, bk[i], bv[i], uk[i], uv[i])
				}
			}
			// Point lookups and descending scans agree too.
			for _, it := range items {
				v, ok, err := bulk.Get(it.Key)
				if err != nil || !ok || !bytes.Equal(v, it.Value) {
					t.Fatalf("Get(%q) = %q, %v, %v", it.Key, v, ok, err)
				}
			}
			var desc [][]byte
			if err := bulk.Descend(func(k, v []byte) bool {
				desc = append(desc, append([]byte(nil), k...))
				return true
			}); err != nil {
				t.Fatal(err)
			}
			for i := range desc {
				if !bytes.Equal(desc[i], bk[len(bk)-1-i]) {
					t.Fatalf("descend order broken at %d", i)
				}
			}
			if err := pool.CheckPins(); err != nil {
				t.Errorf("bulk pool pins: %v", err)
			}
			if err := upPool.CheckPins(); err != nil {
				t.Errorf("upsert pool pins: %v", err)
			}
		})
	}
}

// TestBulkLoadFillFactor checks that bulk-built leaves are packed close to
// the bulk fill target, i.e. the bulk loader produces far fewer, fuller
// leaves than the half-full ones repeated splitting leaves behind.
func TestBulkLoadFillFactor(t *testing.T) {
	file := pagefile.MustNewMem(512)
	pool := buffer.MustNew(file, 64)
	items := bulkItems(3000, 8)
	bulk, err := BulkLoad(pool, items)
	if err != nil {
		t.Fatal(err)
	}
	leaves, used, err := bulk.LeafStats()
	if err != nil {
		t.Fatal(err)
	}
	fill := float64(used) / float64(leaves*512)
	if fill < 0.75 {
		t.Errorf("bulk leaf fill = %.2f, want >= 0.75", fill)
	}

	up, _ := newTestTree(t, 512, 64)
	for _, it := range items {
		if err := up.Put(it.Key, it.Value); err != nil {
			t.Fatal(err)
		}
	}
	upLeaves, _, err := up.LeafStats()
	if err != nil {
		t.Fatal(err)
	}
	if leaves >= upLeaves {
		t.Errorf("bulk tree has %d leaves, upsert-built has %d; bulk should be denser", leaves, upLeaves)
	}
}

// TestBulkLoadRejectsBadInput checks the input validation.
func TestBulkLoadRejectsBadInput(t *testing.T) {
	file := pagefile.MustNewMem(512)
	pool := buffer.MustNew(file, 64)
	if _, err := BulkLoad(pool, []Item{{Key: []byte("b")}, {Key: []byte("a")}}); err == nil {
		t.Error("out-of-order input accepted")
	}
	if _, err := BulkLoad(pool, []Item{{Key: []byte("a")}, {Key: []byte("a")}}); err == nil {
		t.Error("duplicate keys accepted")
	}
	if _, err := BulkLoad(pool, []Item{{Key: nil, Value: []byte("v")}}); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := BulkLoad(pool, []Item{{Key: []byte("k"), Value: bytes.Repeat([]byte("v"), 512)}}); err == nil {
		t.Error("oversized entry accepted")
	}
}

// TestBulkLoadThenMutate checks that a bulk-built tree accepts the full
// mutation and scan API afterwards: inserts split its packed leaves
// correctly and deletes behave as on an Upsert-built tree.
func TestBulkLoadThenMutate(t *testing.T) {
	file := pagefile.MustNewMem(512)
	pool := buffer.MustNew(file, 64)
	items := bulkItems(1000, 8)
	tree, err := BulkLoad(pool, items)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	// Interleave inserts of fresh keys with deletes of loaded ones.
	for i := 0; i < 400; i++ {
		if i%2 == 0 {
			k := []byte(fmt.Sprintf("key%08d-x", rng.Intn(1000)))
			if err := tree.Put(k, []byte("new")); err != nil {
				t.Fatal(err)
			}
		} else {
			k := items[rng.Intn(1000)].Key
			if _, err := tree.Delete(k); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("invariants after mutation: %v", err)
	}
	if err := pool.CheckPins(); err != nil {
		t.Errorf("pins: %v", err)
	}
}

// TestUpsertBatchEquivalence checks that UpsertBatch leaves the tree in
// exactly the state sequential Upserts produce, including duplicate keys in
// the batch (last occurrence wins) and replacements of existing keys.
func TestUpsertBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	seqTree, seqPool := newTestTree(t, 512, 64)
	batTree, batPool := newTestTree(t, 512, 64)

	// Pre-populate both with the same base content.
	base := bulkItems(600, 8)
	for _, it := range base {
		if err := seqTree.Put(it.Key, it.Value); err != nil {
			t.Fatal(err)
		}
		if err := batTree.Put(it.Key, it.Value); err != nil {
			t.Fatal(err)
		}
	}

	for round := 0; round < 20; round++ {
		n := 1 + rng.Intn(300)
		batch := make([]Item, n)
		for i := range batch {
			// Mix of replacements of existing keys, fresh keys and
			// within-batch duplicates.
			key := fmt.Sprintf("key%08d", rng.Intn(900))
			if rng.Intn(4) == 0 {
				key = fmt.Sprintf("new%08d", rng.Intn(200))
			}
			batch[i] = Item{Key: []byte(key), Value: []byte(fmt.Sprintf("r%d-%d", round, i))}
		}
		seqInserted := 0
		for _, it := range batch {
			ins, err := seqTree.Upsert(it.Key, it.Value)
			if err != nil {
				t.Fatal(err)
			}
			if ins {
				seqInserted++
			}
		}
		batInserted, err := batTree.UpsertBatch(append([]Item(nil), batch...))
		if err != nil {
			t.Fatal(err)
		}
		if batInserted != seqInserted {
			t.Fatalf("round %d: UpsertBatch inserted %d, sequential inserted %d", round, batInserted, seqInserted)
		}
		if seqTree.Len() != batTree.Len() {
			t.Fatalf("round %d: Len %d vs %d", round, seqTree.Len(), batTree.Len())
		}
	}
	sk, sv := collectAll(t, seqTree)
	bk, bv := collectAll(t, batTree)
	if len(sk) != len(bk) {
		t.Fatalf("key counts differ: %d vs %d", len(sk), len(bk))
	}
	for i := range sk {
		if !bytes.Equal(sk[i], bk[i]) || !bytes.Equal(sv[i], bv[i]) {
			t.Fatalf("entry %d differs: (%q,%q) vs (%q,%q)", i, sk[i], sv[i], bk[i], bv[i])
		}
	}
	if err := batTree.CheckInvariants(); err != nil {
		t.Fatalf("batch tree invariants: %v", err)
	}
	if err := seqPool.CheckPins(); err != nil {
		t.Errorf("seq pins: %v", err)
	}
	if err := batPool.CheckPins(); err != nil {
		t.Errorf("batch pins: %v", err)
	}
}

// TestDeleteBatchEquivalence checks DeleteBatch against sequential Deletes,
// including keys that are absent.
func TestDeleteBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	seqTree, _ := newTestTree(t, 512, 64)
	batTree, batPool := newTestTree(t, 512, 64)
	base := bulkItems(800, 8)
	for _, it := range base {
		if err := seqTree.Put(it.Key, it.Value); err != nil {
			t.Fatal(err)
		}
		if err := batTree.Put(it.Key, it.Value); err != nil {
			t.Fatal(err)
		}
	}
	var keys [][]byte
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("key%08d", rng.Intn(1200)) // ~1/3 absent
		keys = append(keys, []byte(k))
	}
	seqRemoved := 0
	for _, k := range keys {
		ok, err := seqTree.Delete(k)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			seqRemoved++
		}
	}
	batRemoved, err := batTree.DeleteBatch(append([][]byte(nil), keys...))
	if err != nil {
		t.Fatal(err)
	}
	if batRemoved != seqRemoved {
		t.Fatalf("DeleteBatch removed %d, sequential removed %d", batRemoved, seqRemoved)
	}
	sk, _ := collectAll(t, seqTree)
	bk, _ := collectAll(t, batTree)
	if len(sk) != len(bk) {
		t.Fatalf("key counts differ: %d vs %d", len(sk), len(bk))
	}
	for i := range sk {
		if !bytes.Equal(sk[i], bk[i]) {
			t.Fatalf("entry %d differs: %q vs %q", i, sk[i], bk[i])
		}
	}
	if err := batTree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := batPool.CheckPins(); err != nil {
		t.Errorf("pins: %v", err)
	}
}

// TestUpsertBatchVariedSizes drives UpsertBatch with values of varying size
// so replacements change leaf occupancy in both directions and some
// replacements overflow into the split fallback.
func TestUpsertBatchVariedSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seqTree, _ := newTestTree(t, 512, 256)
	batTree, _ := newTestTree(t, 512, 256)
	for round := 0; round < 15; round++ {
		n := 1 + rng.Intn(120)
		batch := make([]Item, n)
		for i := range batch {
			batch[i] = Item{
				Key:   []byte(fmt.Sprintf("k%06d", rng.Intn(400))),
				Value: bytes.Repeat([]byte{'v'}, rng.Intn(80)),
			}
		}
		for _, it := range batch {
			if _, err := seqTree.Upsert(it.Key, it.Value); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := batTree.UpsertBatch(append([]Item(nil), batch...)); err != nil {
			t.Fatal(err)
		}
	}
	sk, sv := collectAll(t, seqTree)
	bk, bv := collectAll(t, batTree)
	if len(sk) != len(bk) {
		t.Fatalf("key counts differ: %d vs %d", len(sk), len(bk))
	}
	for i := range sk {
		if !bytes.Equal(sk[i], bk[i]) || !bytes.Equal(sv[i], bv[i]) {
			t.Fatalf("entry %d differs", i)
		}
	}
	if err := batTree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBulkLoadSortedLeavesChain verifies the leaf chain of a bulk-built
// tree is strictly sorted end to end (checkLeafChain covers links; this
// asserts the cursor order matches the input run exactly).
func TestBulkLoadSortedLeavesChain(t *testing.T) {
	file := pagefile.MustNewMem(512)
	pool := buffer.MustNew(file, 64)
	items := bulkItems(1234, 4)
	tree, err := BulkLoad(pool, items)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	err = tree.Ascend(func(k, v []byte) bool {
		if !bytes.Equal(k, items[i].Key) {
			t.Fatalf("position %d: got %q, want %q", i, k, items[i].Key)
		}
		i++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(items) {
		t.Fatalf("cursor visited %d keys, want %d", i, len(items))
	}
	if !sort.SliceIsSorted(items, func(a, b int) bool { return bytes.Compare(items[a].Key, items[b].Key) < 0 }) {
		t.Fatal("test input not sorted")
	}
}
