package btree

// Probe is a point-lookup cursor that exploits key locality: it remembers
// the leaf of the previous lookup (and that leaf's exclusive upper bound,
// captured during the descent) and answers keys that land on the same leaf
// with a binary search over the parsed node, re-descending only when the key
// jumps outside the cached range.
//
// The query algorithms resolve candidate scores in ascending document order
// (the merge order of ID- and chunk-ordered lists), so consecutive
// Score-table probes walk the key space left to right; with a Probe each
// leaf is parsed once per query instead of linearly re-scanned in its
// serialized form once per candidate.  The cursor never follows leaf sibling
// pointers — COW mutation leaves them stale — so a leaf-boundary crossing
// costs one root descent over cached internal pages.
//
// A probe from Tree.NewProbe reads the live root each descent and must not
// be used across tree mutations; one from View.NewProbe descends the frozen
// root and stays consistent for the view's lifetime.
import (
	"bytes"

	"svrdb/internal/storage/pagefile"
)

// Probe caches the most recently visited leaf.
type Probe struct {
	t *Tree
	// root pins the descent root; InvalidPageID means live (re-read the
	// tree's current root on every descent).
	root pagefile.PageID
	leaf *node
	// upper is the exclusive upper bound of the cached leaf's key range; nil
	// when the leaf is the tree's rightmost.
	upper []byte
	// rootLeaf records that the cached leaf is the root itself, which covers
	// every key (e.g. a table no update has split yet).
	rootLeaf bool
}

// NewProbe returns a probe over the tree's live state.
func (t *Tree) NewProbe() *Probe { return &Probe{t: t, root: pagefile.InvalidPageID} }

// NewProbe returns a probe over the frozen view.
func (v View) NewProbe() *Probe { return &Probe{t: v.t, root: v.root} }

// Get returns the value stored under key, or (nil, false) when absent.  The
// returned slice is owned by the probe's cached node; callers must not
// retain it across further probe calls or tree mutations.
func (p *Probe) Get(key []byte) ([]byte, bool, error) {
	// Fast path: the key provably lands on the cached leaf — at or above its
	// first key and below its upper bound (a root leaf covers everything, so
	// even misses resolve without a descent).
	if p.leaf != nil {
		covered := p.rootLeaf
		if !covered && len(p.leaf.keys) > 0 && bytes.Compare(key, p.leaf.keys[0]) >= 0 &&
			(p.upper == nil || bytes.Compare(key, p.upper) < 0) {
			covered = true
		}
		if covered {
			v, ok := p.lookupInLeaf(key)
			return v, ok, nil
		}
	}
	// Restart: descend and cache the leaf with its bound.
	root := p.root
	if root == pagefile.InvalidPageID {
		root = p.t.rootID()
	}
	ub := make([]byte, 0, 64)
	fr, err := p.t.descendFrom(root, key, nil, &ub)
	if err != nil {
		return nil, false, err
	}
	leaf, err := parseNode(fr.ID(), fr.Data())
	fr.Release()
	if err != nil {
		return nil, false, err
	}
	p.leaf = leaf
	p.rootLeaf = leaf.id == root
	if len(ub) > 0 {
		p.upper = ub
	} else {
		p.upper = nil
	}
	v, ok := p.lookupInLeaf(key)
	return v, ok, nil
}

// lookupInLeaf resolves key against the cached leaf.
func (p *Probe) lookupInLeaf(key []byte) (val []byte, ok bool) {
	i := searchKeys(p.leaf.keys, key)
	if i < len(p.leaf.keys) && bytes.Equal(p.leaf.keys[i], key) {
		return p.leaf.vals[i], true
	}
	return nil, false
}
