package btree

// Probe is a point-lookup cursor that exploits key locality: it remembers
// the leaf of the previous lookup and answers keys that land on the same or
// the adjacent leaf with a binary search over the parsed node, falling back
// to a root descent only when the key jumps elsewhere.
//
// The query algorithms resolve candidate scores in ascending document order
// (the merge order of ID- and chunk-ordered lists), so consecutive
// Score-table probes walk the leaf chain left to right; with a Probe each
// leaf is parsed once per query instead of linearly re-scanned in its
// serialized form once per candidate.
//
// A Probe must not be used across tree mutations: create one per query (or
// per read batch) and discard it.
import (
	"bytes"

	"svrdb/internal/storage/pagefile"
)

// Probe caches the most recently visited leaf.
type Probe struct {
	t    *Tree
	leaf *node
}

// NewProbe returns a probe over the tree's current state.
func (t *Tree) NewProbe() *Probe { return &Probe{t: t} }

// Get returns the value stored under key, or (nil, false) when absent.  The
// returned slice is owned by the probe's cached node; callers must not
// retain it across further probe calls or tree mutations.
func (p *Probe) Get(key []byte) ([]byte, bool, error) {
	// Fast path: the key lands on the cached leaf.  A cached root leaf
	// covers every key (the whole tree is one leaf — e.g. a table no update
	// has touched yet), so even misses resolve without a descent.
	if p.leaf != nil && (p.leaf.id == p.t.rootID() ||
		(len(p.leaf.keys) > 0 && bytes.Compare(key, p.leaf.keys[0]) >= 0)) {
		if v, ok, decided := p.lookupInLeaf(key); decided {
			return v, ok, nil
		}
		// Beyond the cached leaf's last key: try the adjacent leaf once
		// (the common case for ascending probes crossing a leaf boundary).
		if p.leaf.next != pagefile.InvalidPageID {
			nxt, err := p.t.readNode(p.leaf.next)
			if err != nil {
				return nil, false, err
			}
			if len(nxt.keys) > 0 && bytes.Compare(key, nxt.keys[0]) >= 0 {
				p.leaf = nxt
				if v, ok, decided := p.lookupInLeaf(key); decided {
					return v, ok, nil
				}
			} else if len(nxt.keys) > 0 {
				// The key falls in the gap between the two leaves: absent.
				return nil, false, nil
			}
		} else {
			// No leaf to the right: absent.
			return nil, false, nil
		}
	}
	// Restart: descend from the root and cache the leaf.
	leaf, err := p.t.findLeaf(key)
	if err != nil {
		return nil, false, err
	}
	p.leaf = leaf
	i := searchKeys(leaf.keys, key)
	if i < len(leaf.keys) && bytes.Equal(leaf.keys[i], key) {
		return leaf.vals[i], true, nil
	}
	return nil, false, nil
}

// lookupInLeaf resolves key against the cached leaf.  decided is false when
// the key lies beyond the leaf's last key, in which case a later leaf may
// hold it.
func (p *Probe) lookupInLeaf(key []byte) (val []byte, ok, decided bool) {
	i := searchKeys(p.leaf.keys, key)
	if i >= len(p.leaf.keys) {
		return nil, false, false
	}
	if bytes.Equal(p.leaf.keys[i], key) {
		return p.leaf.vals[i], true, true
	}
	// key < keys[i] and key >= keys[0]: it could only live on this leaf.
	return nil, false, true
}
