package btree

// This file implements the write-side bulk paths of the tree:
//
//   - BulkLoad builds a tree from an already-sorted run of entries by
//     packing leaves left to right and stacking internal levels on top,
//     instead of paying a root-to-leaf descent (and a full leaf
//     parse/serialize cycle) per key the way repeated Upsert does.  Nodes
//     are written straight through to the page file, so a bulk load of a
//     structure much larger than the buffer pool does not evict the pool's
//     working set.
//
//   - UpsertBatch and DeleteBatch apply a group of keyed writes to an
//     existing tree.  The keys are sorted first, so runs of keys that land
//     in the same leaf share one descent and one parse/serialize cycle —
//     the write-side analogue of the read path's block-at-a-time protocol.
//
// All three preserve the exact logical content that the equivalent sequence
// of Upsert/Delete calls would produce; only the physical access pattern
// (and, for BulkLoad, the leaf fill factor) differs.

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
)

// Item is one key/value pair of a batched write.
type Item struct {
	Key   []byte
	Value []byte
}

// bulkFillFraction is the default target fill of bulk-built nodes: slightly
// under full so that the first few post-build inserts amend leaves in place
// instead of immediately splitting every one of them.
const bulkFillFraction = 0.9

// minBulkFill bounds how sparse a caller may ask bulk-built nodes to be.
const minBulkFill = 0.25

// ErrUnsorted is returned by BulkLoad when the input run is not in strictly
// ascending key order.
var ErrUnsorted = errors.New("btree: bulk-load input not in strictly ascending key order")

// uvarintLen returns the encoded size of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// entrySize is the serialized size of one leaf entry.
func entrySize(key, value []byte) int {
	return uvarintLen(uint64(len(key))) + len(key) + uvarintLen(uint64(len(value))) + len(value)
}

// leafHeaderSize is the serialized size of a leaf node's fixed fields.
func leafHeaderSize(nKeys int) int { return 1 + uvarintLen(uint64(nKeys)) + 16 }

// internalHeaderSize is the serialized size of an internal node's fixed
// fields (type, key count, child0).
func internalHeaderSize(nKeys int) int { return 1 + uvarintLen(uint64(nKeys)) + 8 }

// internalEntrySize is the serialized size of one internal separator entry.
func internalEntrySize(key []byte) int {
	return uvarintLen(uint64(len(key))) + len(key) + 8
}

// BulkLoad builds a new tree over pool from items, which must be in strictly
// ascending key order.  Leaves are packed left to right to the bulk fill
// target and internal levels are stacked bottom-up; every node is written
// exactly once, directly to the page file, so the pool's resident set is
// untouched.  An empty run produces an empty tree.
func BulkLoad(pool *buffer.Pool, items []Item) (*Tree, error) {
	return BulkLoadFill(pool, items, bulkFillFraction)
}

// BulkLoadFill is BulkLoad with an explicit node fill target in
// (minBulkFill, bulkFillFraction].  Read-mostly structures want the dense
// default; tables that absorb a steady stream of in-place updates trade
// density for cheaper leaf rewrites (every update reserializes its whole
// leaf, so leaf size is the per-update write cost).
func BulkLoadFill(pool *buffer.Pool, items []Item, fill float64) (*Tree, error) {
	if fill > bulkFillFraction {
		fill = bulkFillFraction
	}
	if fill < minBulkFill {
		fill = minBulkFill
	}
	maxEntry := pool.PageSize() / 4
	for i := range items {
		if len(items[i].Key) == 0 {
			return nil, errors.New("btree: empty key")
		}
		if len(items[i].Key)+len(items[i].Value)+16 > maxEntry {
			return nil, fmt.Errorf("%w: key %d + value %d bytes (max %d)",
				ErrEntryTooLarge, len(items[i].Key), len(items[i].Value), maxEntry)
		}
		if i > 0 && bytes.Compare(items[i-1].Key, items[i].Key) >= 0 {
			return nil, fmt.Errorf("%w: key %d <= key %d", ErrUnsorted, i, i-1)
		}
	}
	if len(items) == 0 {
		return New(pool)
	}

	target := int(float64(pool.PageSize()) * fill)

	// Pack the leaf level: each group of consecutive items becomes one leaf.
	type group struct {
		lo, hi int // item (or child) index range [lo, hi)
	}
	var leaves []group
	size := leafHeaderSize(0)
	lo := 0
	for i := range items {
		es := entrySize(items[i].Key, items[i].Value)
		if i > lo && size+es > target {
			leaves = append(leaves, group{lo, i})
			lo = i
			size = leafHeaderSize(0)
		}
		size += es
	}
	leaves = append(leaves, group{lo, len(items)})

	// Pack internal levels bottom-up.  levelGroups[0] is the leaf level;
	// each higher level groups the children of the one below.
	levelGroups := [][]group{leaves}
	childKeys := make([][]byte, len(leaves)) // min key per node of the current level
	for i, g := range leaves {
		childKeys[i] = items[g.lo].Key
	}
	for len(levelGroups[len(levelGroups)-1]) > 1 {
		children := levelGroups[len(levelGroups)-1]
		var ups []group
		size = internalHeaderSize(0)
		lo = 0
		for i := range children {
			es := internalEntrySize(childKeys[i])
			if i > lo && size+es > target {
				ups = append(ups, group{lo, i})
				lo = i
				size = internalHeaderSize(0)
			}
			size += es
		}
		ups = append(ups, group{lo, len(children)})
		// Avoid a trailing single-child internal node when a neighbour can
		// spare a child (a lone child is structurally legal but wasteful).
		if n := len(ups); n > 1 && ups[n-1].hi-ups[n-1].lo == 1 && ups[n-2].hi-ups[n-2].lo > 2 {
			ups[n-2].hi--
			ups[n-1].lo--
		}
		nextKeys := make([][]byte, len(ups))
		for i, g := range ups {
			nextKeys[i] = childKeys[g.lo]
		}
		levelGroups = append(levelGroups, ups)
		childKeys = nextKeys
	}

	// Allocate one contiguous run of pages for the whole tree and assign
	// IDs level by level, leaves first.
	total := 0
	for _, lvl := range levelGroups {
		total += len(lvl)
	}
	first, err := pool.File().AllocateN(total)
	if err != nil {
		return nil, err
	}
	levelIDs := make([][]pagefile.PageID, len(levelGroups))
	next := first
	for li, lvl := range levelGroups {
		ids := make([]pagefile.PageID, len(lvl))
		for i := range lvl {
			ids[i] = next
			next++
		}
		levelIDs[li] = ids
	}

	// Serialize and write every node straight through to the file.
	page := make([]byte, pool.PageSize())
	writeOut := func(n *node) error {
		data := serializeNode(n)
		if len(data) > len(page) {
			return fmt.Errorf("btree: bulk-built node %d bytes exceeds page size %d", len(data), len(page))
		}
		copy(page, data)
		clear(page[len(data):])
		return pool.WriteThrough(n.id, page)
	}
	for i, g := range leaves {
		n := &node{id: levelIDs[0][i], leaf: true, next: pagefile.InvalidPageID, prev: pagefile.InvalidPageID}
		if i > 0 {
			n.prev = levelIDs[0][i-1]
		}
		if i < len(leaves)-1 {
			n.next = levelIDs[0][i+1]
		}
		for j := g.lo; j < g.hi; j++ {
			n.keys = append(n.keys, items[j].Key)
			n.vals = append(n.vals, items[j].Value)
		}
		if err := writeOut(n); err != nil {
			return nil, err
		}
	}
	// minKey per node of the level below, rebuilt as levels are written.
	minKeys := make([][]byte, len(leaves))
	for i, g := range leaves {
		minKeys[i] = items[g.lo].Key
	}
	for li := 1; li < len(levelGroups); li++ {
		lvl := levelGroups[li]
		nextMin := make([][]byte, len(lvl))
		for i, g := range lvl {
			n := &node{id: levelIDs[li][i]}
			n.children = append(n.children, levelIDs[li-1][g.lo])
			for j := g.lo + 1; j < g.hi; j++ {
				n.keys = append(n.keys, minKeys[j])
				n.children = append(n.children, levelIDs[li-1][j])
			}
			if err := writeOut(n); err != nil {
				return nil, err
			}
			nextMin[i] = minKeys[g.lo]
		}
		minKeys = nextMin
	}

	top := levelIDs[len(levelIDs)-1]
	t := &Tree{pool: pool}
	t.setRoot(top[0])
	t.size.Store(int64(len(items)))
	return t, nil
}

// UpsertBatch applies a group of upserts, sorting the items by key so that
// runs of keys belonging to the same leaf share one descent and one leaf
// rewrite.  Duplicate keys within the batch collapse to the last occurrence,
// matching sequential Upsert calls.  It reports how many keys were newly
// inserted (as opposed to replaced) and reorders items in place.
func (t *Tree) UpsertBatch(items []Item) (int, error) {
	maxEntry := t.maxEntrySize()
	for i := range items {
		if len(items[i].Key) == 0 {
			return 0, errors.New("btree: empty key")
		}
		if len(items[i].Key)+len(items[i].Value)+16 > maxEntry {
			return 0, fmt.Errorf("%w: key %d + value %d bytes (max %d)",
				ErrEntryTooLarge, len(items[i].Key), len(items[i].Value), maxEntry)
		}
	}
	sort.SliceStable(items, func(i, j int) bool { return bytes.Compare(items[i].Key, items[j].Key) < 0 })
	// Keep only the last occurrence of each key.
	w := 0
	for i := 0; i < len(items); i++ {
		if i+1 < len(items) && bytes.Equal(items[i].Key, items[i+1].Key) {
			continue
		}
		items[w] = items[i]
		w++
	}
	items = items[:w]

	inserted := 0
	pageSize := t.pool.PageSize()
	i := 0
	for i < len(items) {
		var path []pagefile.PageID
		var upper []byte
		fr, err := t.descendToLeaf(items[i].Key, &path, &upper)
		if err != nil {
			return inserted, err
		}
		// Under COW a published leaf is promoted to a private clone before
		// the batch touches it (upsert semantics guarantee at least one write
		// to this leaf, so the copy is never wasted); the patch and rewrite
		// phases below then mutate the clone in place.
		if t.cow && !t.mutableInPlace(fr.ID()) {
			old := fr.ID()
			nfr, cerr := t.clonePage(fr)
			fr.Release()
			if cerr != nil {
				return inserted, cerr
			}
			if err := t.freePage(old); err != nil {
				nfr.Release()
				return inserted, err
			}
			if err := t.replaceChildPointer(path, old, nfr.ID()); err != nil {
				nfr.Release()
				return inserted, err
			}
			fr = nfr
		}
		// Patch phase: a run of same-length replacements is applied directly
		// to the pinned page in one forward scan over the serialized leaf
		// (the sorted items and the leaf entries advance together), no parse
		// or reserialize.  Replace-only batches (fixed-width table flushes)
		// never leave this phase.
		if !t.disablePatch {
			n, perr := t.patchRun(fr, items[i:])
			if perr != nil {
				fr.Release()
				return inserted, perr
			}
			i += n
		}
		if i >= len(items) || (upper != nil && bytes.Compare(items[i].Key, upper) >= 0) {
			fr.Release()
			continue
		}
		// Mixed run: materialize the leaf (any patches above are already in
		// the page image) and fall through to the rewrite path.
		leaf, err := parseNode(fr.ID(), fr.Data())
		fr.Release()
		if err != nil {
			return inserted, err
		}
		size := t.nodeSize(leaf)
		modified := false
		for i < len(items) && (upper == nil || bytes.Compare(items[i].Key, upper) < 0) {
			it := items[i]
			j := searchKeys(leaf.keys, it.Key)
			if j < len(leaf.keys) && bytes.Equal(leaf.keys[j], it.Key) {
				newSize := size - len(leaf.vals[j]) + uvarintLen(uint64(len(it.Value))) - uvarintLen(uint64(len(leaf.vals[j]))) + len(it.Value)
				if newSize > pageSize {
					break // replacement overflows: fall back to Upsert's split path
				}
				leaf.vals[j] = append([]byte(nil), it.Value...)
				size = newSize
			} else {
				newSize := size + entrySize(it.Key, it.Value) + leafHeaderSize(len(leaf.keys)+1) - leafHeaderSize(len(leaf.keys))
				if newSize > pageSize {
					break // leaf full: fall back to Upsert's split path
				}
				leaf.keys = append(leaf.keys, nil)
				copy(leaf.keys[j+1:], leaf.keys[j:])
				leaf.keys[j] = append([]byte(nil), it.Key...)
				leaf.vals = append(leaf.vals, nil)
				copy(leaf.vals[j+1:], leaf.vals[j:])
				leaf.vals[j] = append([]byte(nil), it.Value...)
				size = newSize
				inserted++
				t.size.Add(1)
			}
			modified = true
			i++
		}
		if modified {
			if err := t.flushNode(leaf); err != nil {
				return inserted, err
			}
		}
		if i < len(items) && (upper == nil || bytes.Compare(items[i].Key, upper) < 0) {
			// The next item still belongs to this leaf but did not fit:
			// let Upsert split it, then resume batching.
			ins, err := t.Upsert(items[i].Key, items[i].Value)
			if err != nil {
				return inserted, err
			}
			if ins {
				inserted++
			}
			i++
		}
	}
	return inserted, nil
}

// DeleteBatch removes a group of keys, sorting them so that keys sharing a
// leaf share one descent and one leaf rewrite.  A leaf the batch empties is
// pruned exactly as Delete would prune it: unlinked from the sibling chain
// and its page recycled.  It reports how many keys were present and removed,
// and reorders keys in place.
func (t *Tree) DeleteBatch(keys [][]byte) (int, error) {
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
	removed := 0
	i := 0
	for i < len(keys) {
		var path []pagefile.PageID
		var upper []byte
		fr, err := t.descendToLeaf(keys[i], &path, &upper)
		if err != nil {
			return removed, err
		}
		leaf, err := parseNode(fr.ID(), fr.Data())
		fr.Release()
		if err != nil {
			return removed, err
		}
		modified := false
		for i < len(keys) && (upper == nil || bytes.Compare(keys[i], upper) < 0) {
			j := searchKeys(leaf.keys, keys[i])
			if j < len(leaf.keys) && bytes.Equal(leaf.keys[j], keys[i]) {
				leaf.keys = append(leaf.keys[:j], leaf.keys[j+1:]...)
				leaf.vals = append(leaf.vals[:j], leaf.vals[j+1:]...)
				removed++
				t.size.Add(-1)
				modified = true
			}
			i++
		}
		if modified {
			if len(leaf.keys) == 0 && leaf.id != t.rootID() {
				// The run emptied the leaf: skip the dead-image flush and
				// dismantle it instead.
				if err := t.pruneEmptiedLeafAlongPath(leaf, path); err != nil {
					return removed, err
				}
			} else {
				old := leaf.id
				self, err := t.writeNodeOut(leaf)
				if err != nil {
					return removed, err
				}
				if self != old {
					if err := t.replaceChildPointer(path, old, self); err != nil {
						return removed, err
					}
				}
			}
		}
	}
	return removed, nil
}

// LeafStats walks the leaf chain and reports the number of leaves and their
// total serialized payload, letting tests assert the fill factor of
// bulk-built trees.
func (t *Tree) LeafStats() (leaves int, usedBytes int, err error) {
	leaf, err := t.leftmostLeaf()
	if err != nil {
		return 0, 0, err
	}
	for {
		leaves++
		usedBytes += t.nodeSize(leaf)
		if leaf.next == pagefile.InvalidPageID {
			return leaves, usedBytes, nil
		}
		leaf, err = t.readNode(leaf.next)
		if err != nil {
			return 0, 0, err
		}
	}
}
