package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// fixedVal builds the deterministic 9-byte value of a (key, version) pair —
// the width of a Score-table row — so that every rewrite in these tests is a
// same-length replacement.
func fixedVal(key string, version int) []byte {
	return []byte(fmt.Sprintf("%4.4s-%04d", key, version%10000))
}

func TestPatchBasics(t *testing.T) {
	tree, _ := newTestTree(t, 512, 64)
	key := []byte("doc:0001")
	if ok, err := tree.Patch(key, []byte("v1")); err != nil || ok {
		t.Fatalf("Patch of absent key = %v, %v, want false", ok, err)
	}
	if err := tree.Put(key, []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	if ok, err := tree.Patch(key, []byte("bbb")); err != nil || ok {
		t.Fatalf("Patch with different length = %v, %v, want false", ok, err)
	}
	if ok, err := tree.Patch(key, []byte("bbbb")); err != nil || !ok {
		t.Fatalf("Patch same length = %v, %v, want true", ok, err)
	}
	if v, _, _ := tree.Get(key); string(v) != "bbbb" {
		t.Errorf("Get after Patch = %q, want %q", v, "bbbb")
	}
	if tree.Patches() != 1 {
		t.Errorf("Patches = %d, want 1", tree.Patches())
	}
	if tree.Len() != 1 {
		t.Errorf("Len = %d, want 1", tree.Len())
	}
}

func TestPatchSurvivesEviction(t *testing.T) {
	tree, pool := newTestTree(t, 512, 128)
	const n = 300
	for i := 0; i < n; i++ {
		if err := tree.Put([]byte(fmt.Sprintf("key:%04d", i)), fixedVal("val", 0)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 7 {
		if ok, err := tree.Patch([]byte(fmt.Sprintf("key:%04d", i)), fixedVal("new", i)); err != nil || !ok {
			t.Fatalf("Patch key %d = %v, %v", i, ok, err)
		}
	}
	// The patches live only in dirty frames; a full eviction forces them
	// through the page file and back.
	if err := pool.EvictAll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := fixedVal("val", 0)
		if i%7 == 0 {
			want = fixedVal("new", i)
		}
		v, ok, err := tree.Get([]byte(fmt.Sprintf("key:%04d", i)))
		if err != nil || !ok {
			t.Fatalf("Get key %d = %v, %v", i, ok, err)
		}
		if !bytes.Equal(v, want) {
			t.Fatalf("key %d = %q after eviction, want %q", i, v, want)
		}
	}
	if err := pool.CheckPins(); err != nil {
		t.Error(err)
	}
}

// TestUpsertPatchEquivalenceProperty pits the patch fast path against the
// parse→reserialize path over random same-length traces: two trees receive
// the identical operation sequence, one with patching disabled, and must end
// byte-for-byte identical under every cursor.  The trace deliberately hits
// leaf-boundary keys and keys emptied by a prior Delete.
func TestUpsertPatchEquivalenceProperty(t *testing.T) {
	for _, seed := range []int64{1, 7, 23} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			patched, patchedPool := newTestTree(t, 512, 256)
			plain, plainPool := newTestTree(t, 512, 256)
			plain.disablePatch = true

			keys := make([][]byte, 120)
			for i := range keys {
				keys[i] = []byte(fmt.Sprintf("doc:%05d", i*3))
			}
			apply := func(op func(*Tree) error) {
				if err := op(patched); err != nil {
					t.Fatal(err)
				}
				if err := op(plain); err != nil {
					t.Fatal(err)
				}
			}
			// Seed both trees, forcing several leaves at page size 512.
			for i, k := range keys {
				k, v := k, fixedVal("seed", i)
				apply(func(tr *Tree) error { return tr.Put(k, v) })
			}
			for step := 0; step < 2000; step++ {
				k := keys[rng.Intn(len(keys))]
				switch rng.Intn(10) {
				case 0: // delete, so later upserts hit reinsert-after-delete
					apply(func(tr *Tree) error { _, err := tr.Delete(k); return err })
				case 1: // fresh key insert (different length values allowed)
					fresh := []byte(fmt.Sprintf("doc:%05d", rng.Intn(400)))
					v := fixedVal("ins", step)
					apply(func(tr *Tree) error { return tr.Put(fresh, v) })
				default: // same-length rewrite: the patch candidate
					v := fixedVal("upd", step)
					apply(func(tr *Tree) error { return tr.Put(k, v) })
				}
			}
			if patched.Patches() == 0 {
				t.Fatal("patch-enabled tree recorded no patches")
			}
			if plain.Patches() != 0 {
				t.Fatalf("patch-disabled tree recorded %d patches", plain.Patches())
			}
			if patched.Len() != plain.Len() {
				t.Fatalf("Len: patched %d, plain %d", patched.Len(), plain.Len())
			}
			assertSameContents(t, patched, plain)
			if err := patched.CheckInvariants(); err != nil {
				t.Error(err)
			}
			if err := patchedPool.CheckPins(); err != nil {
				t.Error(err)
			}
			if err := plainPool.CheckPins(); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestUpsertBatchPatchEquivalenceProperty does the same for the batched
// writer: replace-only and mixed batches through UpsertBatch must equal the
// patch-disabled tree's sequential application.
func TestUpsertBatchPatchEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	batched, batchedPool := newTestTree(t, 512, 256)
	plain, _ := newTestTree(t, 512, 256)
	plain.disablePatch = true

	var seedItems []Item
	for i := 0; i < 150; i++ {
		seedItems = append(seedItems, Item{
			Key:   []byte(fmt.Sprintf("doc:%05d", i*2)),
			Value: fixedVal("seed", i),
		})
	}
	for _, it := range seedItems {
		if err := plain.Put(it.Key, it.Value); err != nil {
			t.Fatal(err)
		}
		if err := batched.Put(it.Key, it.Value); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 40; round++ {
		var batch []Item
		for j := 0; j < 64; j++ {
			var key []byte
			if rng.Intn(8) == 0 { // occasional fresh insert in the batch
				key = []byte(fmt.Sprintf("doc:%05d", rng.Intn(300)))
			} else {
				key = seedItems[rng.Intn(len(seedItems))].Key
			}
			batch = append(batch, Item{Key: key, Value: fixedVal("rnd", rng.Intn(10000))})
		}
		// UpsertBatch collapses duplicate keys to the last occurrence;
		// sequential application does the same naturally.
		for _, it := range batch {
			if err := plain.Put(it.Key, it.Value); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := batched.UpsertBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	if batched.Patches() == 0 {
		t.Fatal("UpsertBatch recorded no patches on a replace-heavy trace")
	}
	assertSameContents(t, batched, plain)
	if err := batched.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if err := batchedPool.CheckPins(); err != nil {
		t.Error(err)
	}
}

// TestDescendRangeExclusiveHighModel checks DescendRange's exclusive high /
// inclusive low contract against a sorted-slice model, since the patch path
// reuses the same leaf-walk machinery.
func TestDescendRangeExclusiveHighModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tree, _ := newTestTree(t, 512, 256)
	var model []string
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("k%04d", rng.Intn(2000))
		v := fixedVal("v", i)
		inserted, err := tree.Upsert([]byte(k), v)
		if err != nil {
			t.Fatal(err)
		}
		if inserted {
			model = append(model, k)
		}
	}
	sort.Strings(model)
	for trial := 0; trial < 200; trial++ {
		lo := fmt.Sprintf("k%04d", rng.Intn(2000))
		hi := fmt.Sprintf("k%04d", rng.Intn(2000))
		if lo > hi {
			lo, hi = hi, lo
		}
		var want []string
		for i := len(model) - 1; i >= 0; i-- {
			if model[i] < hi && model[i] >= lo { // high exclusive, low inclusive
				want = append(want, model[i])
			}
		}
		var got []string
		err := tree.DescendRange([]byte(hi), []byte(lo), func(k, v []byte) bool {
			got = append(got, string(k))
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("DescendRange(%q, %q) returned %d keys, want %d", hi, lo, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("DescendRange(%q, %q)[%d] = %q, want %q", hi, lo, i, got[i], want[i])
			}
		}
	}
}

// assertSameContents fails unless both trees yield identical key/value
// sequences ascending and descending.
func assertSameContents(t *testing.T, a, b *Tree) {
	t.Helper()
	dump := func(tr *Tree, desc bool) []string {
		var out []string
		visit := func(k, v []byte) bool {
			out = append(out, string(k)+"="+string(v))
			return true
		}
		var err error
		if desc {
			err = tr.Descend(visit)
		} else {
			err = tr.Ascend(visit)
		}
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	for _, desc := range []bool{false, true} {
		da, db := dump(a, desc), dump(b, desc)
		if len(da) != len(db) {
			t.Fatalf("desc=%v: %d entries vs %d", desc, len(da), len(db))
		}
		for i := range da {
			if da[i] != db[i] {
				t.Fatalf("desc=%v: entry %d differs: %q vs %q", desc, i, da[i], db[i])
			}
		}
	}
}
