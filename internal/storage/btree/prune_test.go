package btree

import (
	"fmt"
	"math/rand"
	"testing"

	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
)

// fillSequential inserts n fixed-width entries and returns the key set.
func fillSequential(t *testing.T, tree *Tree, n int) [][]byte {
	t.Helper()
	keys := make([][]byte, n)
	for i := 0; i < n; i++ {
		keys[i] = []byte(fmt.Sprintf("doc:%05d", i))
		if err := tree.Put(keys[i], fixedVal("fill", i)); err != nil {
			t.Fatal(err)
		}
	}
	return keys
}

// TestDeleteUnlinksEmptiedLeaves empties a contiguous middle range spanning
// several leaves and verifies every traversal machinery skips the dead
// region: ascending and descending scans, bounded ranges over the hole, and
// point probes.
func TestDeleteUnlinksEmptiedLeaves(t *testing.T) {
	file := pagefile.MustNewMem(512)
	pool := buffer.MustNew(file, 256)
	tree := MustNew(pool)
	keys := fillSequential(t, tree, 600)

	lo, hi := 150, 450
	for i := lo; i < hi; i++ {
		ok, err := tree.Delete(keys[i])
		if err != nil {
			t.Fatalf("Delete %d: %v", i, err)
		}
		if !ok {
			t.Fatalf("Delete %d reported absent", i)
		}
	}
	if file.FreePages() == 0 {
		t.Fatal("emptying a 300-key range recycled no pages")
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	survivors := func() []int {
		var out []int
		for i := 0; i < len(keys); i++ {
			if i < lo || i >= hi {
				out = append(out, i)
			}
		}
		return out
	}()
	// Ascend sees exactly the survivors, in order.
	var got []string
	if err := tree.Ascend(func(k, v []byte) bool { got = append(got, string(k)); return true }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(survivors) {
		t.Fatalf("Ascend returned %d keys, want %d", len(got), len(survivors))
	}
	for j, i := range survivors {
		if got[j] != string(keys[i]) {
			t.Fatalf("Ascend[%d] = %q, want %q", j, got[j], keys[i])
		}
	}
	// Descend crosses the hole in the other direction.
	got = got[:0]
	if err := tree.Descend(func(k, v []byte) bool { got = append(got, string(k)); return true }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(survivors) {
		t.Fatalf("Descend returned %d keys, want %d", len(got), len(survivors))
	}
	// A range scan entirely inside the emptied hole yields nothing.
	count := 0
	if err := tree.AscendRange(keys[lo], keys[hi-1], func(k, v []byte) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Errorf("AscendRange over emptied hole returned %d keys", count)
	}
	if err := tree.DescendRange(keys[hi-1], keys[lo], func(k, v []byte) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Errorf("DescendRange over emptied hole returned %d keys", count)
	}
	// A range scan straddling the hole sees only the survivors at its edges.
	var straddle []string
	if err := tree.AscendRange(keys[lo-2], keys[hi+2], func(k, v []byte) bool {
		straddle = append(straddle, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{string(keys[lo-2]), string(keys[lo-1]), string(keys[hi]), string(keys[hi+1])}
	if len(straddle) != len(want) {
		t.Fatalf("straddling AscendRange = %v, want %v", straddle, want)
	}
	for i := range want {
		if straddle[i] != want[i] {
			t.Fatalf("straddling AscendRange[%d] = %q, want %q", i, straddle[i], want[i])
		}
	}
	// Point probes: deleted keys absent, survivors present, including through
	// the locality-aware Probe cursor walking across the hole.
	probe := tree.NewProbe()
	for i := 0; i < len(keys); i++ {
		_, ok, err := probe.Get(keys[i])
		if err != nil {
			t.Fatal(err)
		}
		if wantOK := i < lo || i >= hi; ok != wantOK {
			t.Fatalf("Probe.Get(%s) = %v, want %v", keys[i], ok, wantOK)
		}
	}
	if err := pool.CheckPins(); err != nil {
		t.Error(err)
	}
}

// TestDeleteAllKeysEmptiesTree deletes every key and checks the tree
// collapses to a single empty leaf with everything else recycled, then
// accepts fresh inserts.
func TestDeleteAllKeysEmptiesTree(t *testing.T) {
	file := pagefile.MustNewMem(512)
	pool := buffer.MustNew(file, 256)
	tree := MustNew(pool)
	keys := fillSequential(t, tree, 500)
	allocated := file.NumPages()

	// Delete in a shuffled order so leaves empty in arbitrary sequence.
	rng := rand.New(rand.NewSource(3))
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	for _, k := range keys {
		if _, err := tree.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	if tree.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", tree.Len())
	}
	count := 0
	if err := tree.Ascend(func(k, v []byte) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("Ascend over empty tree returned %d keys", count)
	}
	// All pages but the root leaf should be back on the free list.
	if free := uint64(file.FreePages()); free != allocated-1 {
		t.Errorf("free pages = %d, want %d (all but the root)", free, allocated-1)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The emptied tree keeps working.
	fillSequential(t, tree, 100)
	if tree.Len() != 100 {
		t.Fatalf("Len = %d after refill, want 100", tree.Len())
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := pool.CheckPins(); err != nil {
		t.Error(err)
	}
}

// TestDeleteReinsertChurnBounded runs the paper's core delete/reinsert
// workload shape for many rounds and asserts the page file stops growing:
// freed pages are recycled instead of leaking.
func TestDeleteReinsertChurnBounded(t *testing.T) {
	file := pagefile.MustNewMem(512)
	pool := buffer.MustNew(file, 256)
	tree := MustNew(pool)
	const n = 400
	fillSequential(t, tree, n)

	var sizeAfterFirstRound uint64
	for round := 0; round < 30; round++ {
		for i := 0; i < n; i++ {
			if _, err := tree.Delete([]byte(fmt.Sprintf("doc:%05d", i))); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < n; i++ {
			if err := tree.Put([]byte(fmt.Sprintf("doc:%05d", i)), fixedVal("chrn", round)); err != nil {
				t.Fatal(err)
			}
		}
		if round == 0 {
			sizeAfterFirstRound = file.NumPages()
		}
	}
	if file.NumPages() > sizeAfterFirstRound {
		t.Errorf("page file grew under churn: %d pages after round 1, %d after round 30",
			sizeAfterFirstRound, file.NumPages())
	}
	if file.Stats().Reuses == 0 {
		t.Error("churn never reused a freed page")
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := pool.CheckPins(); err != nil {
		t.Error(err)
	}
}

// TestDeleteBatchPrunesEmptiedLeaves is the DeleteBatch analogue of the
// unlink test: a grouped delete that empties leaves must prune them too.
func TestDeleteBatchPrunesEmptiedLeaves(t *testing.T) {
	file := pagefile.MustNewMem(512)
	pool := buffer.MustNew(file, 256)
	tree := MustNew(pool)
	keys := fillSequential(t, tree, 600)

	var batch [][]byte
	for i := 100; i < 500; i++ {
		batch = append(batch, keys[i])
	}
	removed, err := tree.DeleteBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 400 {
		t.Fatalf("DeleteBatch removed %d, want 400", removed)
	}
	if file.FreePages() == 0 {
		t.Fatal("DeleteBatch emptied leaves but recycled no pages")
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := tree.Ascend(func(k, v []byte) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 200 {
		t.Fatalf("Ascend after DeleteBatch returned %d keys, want 200", count)
	}
	if err := pool.CheckPins(); err != nil {
		t.Error(err)
	}
}

// TestDeleteEmptiedRangeThenCursorResume exercises a bounded-range cursor
// walk (the keyedList treeCursor pattern: AscendRange from a resume key)
// across a pruned region.
func TestDeleteEmptiedRangeThenCursorResume(t *testing.T) {
	tree, pool := newTestTree(t, 512, 256)
	keys := fillSequential(t, tree, 400)
	for i := 120; i < 280; i++ {
		if _, err := tree.Delete(keys[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Resume-style scan: batches of 16 from an explicit key, as treeCursor
	// refills do.
	var all []string
	next := keys[0]
	for {
		var batch []string
		var resume []byte
		err := tree.AscendRange(next, nil, func(k, v []byte) bool {
			if len(batch) >= 16 {
				resume = append([]byte(nil), k...)
				return false
			}
			batch = append(batch, string(k))
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, batch...)
		if resume == nil {
			break
		}
		next = resume
	}
	if len(all) != 240 {
		t.Fatalf("cursor-style walk saw %d keys, want 240", len(all))
	}
	for j := 1; j < len(all); j++ {
		if all[j-1] >= all[j] {
			t.Fatalf("cursor-style walk out of order at %d: %q >= %q", j, all[j-1], all[j])
		}
	}
	if err := pool.CheckPins(); err != nil {
		t.Error(err)
	}
}

// TestPruneSpineCollapse empties the whole tree one key at a time with
// invariants checked after every delete, verifying ancestor pruning and the
// final root collapse back to height 1.
func TestPruneSpineCollapse(t *testing.T) {
	tree, pool := newTestTree(t, 512, 256)
	n := 60
	for i := 0; i < n; i++ {
		if err := tree.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("valuevaluevalue")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if _, err := tree.Delete([]byte(fmt.Sprintf("k%04d", i))); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
		if err := tree.CheckInvariants(); err != nil {
			t.Fatalf("after delete %d: %v", i, err)
		}
	}
	if h, _ := tree.Height(); h != 1 {
		t.Errorf("height after emptying = %d, want 1", h)
	}
	if err := pool.CheckPins(); err != nil {
		t.Error(err)
	}
}
