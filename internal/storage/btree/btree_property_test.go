package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
)

// Property-based tests: the tree must behave exactly like a sorted map under
// arbitrary operation sequences, and its structural invariants must hold
// afterwards.

type treeOp struct {
	Kind  uint8 // 0 = put, 1 = delete, 2 = get
	Key   uint16
	Value uint8
}

func TestTreeMatchesSortedMapProperty(t *testing.T) {
	f := func(ops []treeOp) bool {
		tree, _ := newTestTree(t, 512, 128)
		oracle := map[string]string{}
		for _, op := range ops {
			key := fmt.Sprintf("k%05d", op.Key)
			switch op.Kind % 3 {
			case 0:
				val := fmt.Sprintf("v%d", op.Value)
				if err := tree.Put([]byte(key), []byte(val)); err != nil {
					return false
				}
				oracle[key] = val
			case 1:
				ok, err := tree.Delete([]byte(key))
				if err != nil {
					return false
				}
				_, existed := oracle[key]
				if ok != existed {
					return false
				}
				delete(oracle, key)
			default:
				v, ok, err := tree.Get([]byte(key))
				if err != nil {
					return false
				}
				want, existed := oracle[key]
				if ok != existed || (existed && string(v) != want) {
					return false
				}
			}
		}
		if tree.Len() != len(oracle) {
			return false
		}
		// Full ascending scan must equal the sorted oracle.
		keys := make([]string, 0, len(oracle))
		for k := range oracle {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		i := 0
		good := true
		tree.Ascend(func(k, v []byte) bool {
			if i >= len(keys) || string(k) != keys[i] || string(v) != oracle[keys[i]] {
				good = false
				return false
			}
			i++
			return true
		})
		if !good || i != len(keys) {
			return false
		}
		return tree.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDescendMatchesAscendReversed(t *testing.T) {
	f := func(rawKeys []uint16) bool {
		file := pagefile.MustNewMem(512)
		pool := buffer.MustNew(file, 128)
		tree := MustNew(pool)
		for _, k := range rawKeys {
			if err := tree.Put([]byte(fmt.Sprintf("k%05d", k)), []byte("v")); err != nil {
				return false
			}
		}
		var asc, desc []string
		tree.Ascend(func(k, v []byte) bool { asc = append(asc, string(k)); return true })
		tree.Descend(func(k, v []byte) bool { desc = append(desc, string(k)); return true })
		if len(asc) != len(desc) {
			return false
		}
		for i := range asc {
			if asc[i] != desc[len(desc)-1-i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRangeScanMatchesOracleProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	tree, _ := newTestTree(t, 512, 256)
	oracle := map[string]bool{}
	for i := 0; i < 1500; i++ {
		key := fmt.Sprintf("k%05d", rng.Intn(5000))
		oracle[key] = true
		if err := tree.Put([]byte(key), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	keys := make([]string, 0, len(oracle))
	for k := range oracle {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	for trial := 0; trial < 100; trial++ {
		lo := fmt.Sprintf("k%05d", rng.Intn(5000))
		hi := fmt.Sprintf("k%05d", rng.Intn(5000))
		if lo > hi {
			lo, hi = hi, lo
		}
		var want []string
		for _, k := range keys {
			if k >= lo && k < hi {
				want = append(want, k)
			}
		}
		var got []string
		if err := tree.AscendRange([]byte(lo), []byte(hi), func(k, v []byte) bool {
			got = append(got, string(k))
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("range [%s,%s): got %d keys, want %d", lo, hi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("range [%s,%s) mismatch at %d: %s vs %s", lo, hi, i, got[i], want[i])
			}
		}
	}
}

func TestPrefixEndEdgeCases(t *testing.T) {
	cases := []struct {
		prefix []byte
		want   []byte
	}{
		{[]byte("abc"), []byte("abd")},
		{[]byte{0x01, 0xFF}, []byte{0x02}},
		{[]byte{0xFF, 0xFF}, nil},
		{[]byte{}, nil},
	}
	for _, c := range cases {
		got := prefixEnd(c.prefix)
		if !bytes.Equal(got, c.want) {
			t.Errorf("prefixEnd(%v) = %v, want %v", c.prefix, got, c.want)
		}
	}
}
