package btree

import (
	"bytes"

	"svrdb/internal/storage/pagefile"
)

// View is a frozen read-only image of the tree: the root page and key count
// captured at one instant.  On a COW tree a View taken at publication time
// stays internally consistent no matter what the writer does afterwards —
// every page reachable from the captured root is immutable until the view's
// epoch drains.  All View scans are chain-free: instead of following leaf
// sibling pointers (stale under COW), they re-descend from the captured root
// at each leaf's exclusive upper bound, which internal-page caching keeps
// cheap.
type View struct {
	t    *Tree
	root pagefile.PageID
	size int64
}

// View captures the tree's current root and size.  On a COW tree, call it
// only on a sealed publication point; on a non-COW tree it is just a scan
// handle (no isolation against the serialized writer).
func (t *Tree) View() View {
	return View{t: t, root: t.rootID(), size: t.size.Load()}
}

// Root returns the captured root page.
func (v View) Root() pagefile.PageID { return v.root }

// Len reports the number of keys at capture time.
func (v View) Len() int { return int(v.size) }

// Get returns the value stored under key, or (nil, false) when absent.  The
// returned value is an independent copy.
func (v View) Get(key []byte) ([]byte, bool, error) {
	fr, err := v.t.descendFrom(v.root, key, nil, nil)
	if err != nil {
		return nil, false, err
	}
	val, ok, err := pageLeafLookup(fr.ID(), fr.Data(), key)
	if ok {
		val = append([]byte(nil), val...)
	}
	fr.Release()
	return val, ok, err
}

// AscendRange visits keys in [start, end) in ascending order.  A nil start
// begins at the smallest key; a nil end scans to the largest.
func (v View) AscendRange(start, end []byte, visit Visitor) error {
	key := start // nil descends to the leftmost leaf
	upper := make([]byte, 0, 64)
	for {
		upper = upper[:0]
		fr, err := v.t.descendFrom(v.root, key, nil, &upper)
		if err != nil {
			return err
		}
		leaf, err := parseNode(fr.ID(), fr.Data())
		fr.Release()
		if err != nil {
			return err
		}
		i := 0
		if key != nil {
			i = searchKeys(leaf.keys, key)
		}
		for ; i < len(leaf.keys); i++ {
			if end != nil && bytes.Compare(leaf.keys[i], end) >= 0 {
				return nil
			}
			if !visit(leaf.keys[i], leaf.vals[i]) {
				return nil
			}
		}
		// Separator keys are never empty, so an untouched buffer means the
		// descent stayed rightmost at every level: this was the last leaf.
		if len(upper) == 0 {
			return nil
		}
		if end != nil && bytes.Compare(upper, end) >= 0 {
			return nil
		}
		// Re-descend at this leaf's exclusive upper bound; equal separators
		// route right, so the descent lands exactly on the successor leaf.
		key = append([]byte(nil), upper...)
	}
}

// Ascend visits every key in ascending order.
func (v View) Ascend(visit Visitor) error { return v.AscendRange(nil, nil, visit) }

// AscendPrefix visits every key beginning with prefix in ascending order.
func (v View) AscendPrefix(prefix []byte, visit Visitor) error {
	return v.AscendRange(prefix, prefixEnd(prefix), visit)
}
