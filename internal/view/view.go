package view

import (
	"errors"
	"fmt"
	"sync"

	"svrdb/internal/codec"
	"svrdb/internal/relation"
	"svrdb/internal/storage/btree"
)

// Component is one scoring component: the equivalent of a SQL-bodied
// function S_i(Ck) returning a float for a primary key of the indexed
// relation.
type Component struct {
	// Name identifies the component in diagnostics.
	Name string
	// Eval computes the component score for the document with primary key pk.
	Eval func(db *relation.DB, pk int64) (float64, error)
	// DependsOn lists the base tables whose changes can affect this
	// component, and how rows of those tables map back to a document.
	DependsOn []Dependency
}

// Dependency states that changes to rows of Table affect the document whose
// primary key is stored in FKColumn of that table.  An empty FKColumn means
// the table's own primary key is the document key (the indexed relation
// itself).
type Dependency struct {
	Table    string
	FKColumn string
}

// Aggregator combines the component scores into the final SVR score.  It
// must be deterministic; the engine re-evaluates it on every refresh.
type Aggregator func(components []float64) float64

// WeightedSum returns an aggregator computing sum_i w_i * s_i, the shape of
// the paper's example Agg(s1,s2,s3) = s1*100 + s2/2 + s3.
func WeightedSum(weights ...float64) Aggregator {
	w := append([]float64(nil), weights...)
	return func(components []float64) float64 {
		total := 0.0
		for i, c := range components {
			if i < len(w) {
				total += w[i] * c
			} else {
				total += c
			}
		}
		return total
	}
}

// Sum returns an aggregator that simply adds the components.
func Sum() Aggregator {
	return func(components []float64) float64 {
		total := 0.0
		for _, c := range components {
			total += c
		}
		return total
	}
}

// Spec is a full SVR score specification for one text column.
type Spec struct {
	// Components are the scoring components S1..Sm.
	Components []Component
	// Agg combines the component values; nil means Sum().
	Agg Aggregator
	// IncludeTermScore requests that IR-style term scores (TF-IDF) be
	// combined with the SVR score at query time; it does not affect the
	// materialized view (§3.2 notes the TF-IDF term is excluded from the
	// view and handled by the query algorithm).
	IncludeTermScore bool
}

// Validate checks that the spec is usable.
func (s *Spec) Validate() error {
	if len(s.Components) == 0 {
		return errors.New("view: spec needs at least one scoring component")
	}
	for i, c := range s.Components {
		if c.Eval == nil {
			return fmt.Errorf("view: component %d (%q) has no Eval function", i, c.Name)
		}
	}
	return nil
}

// --- component constructors ---------------------------------------------------

// AvgColumn returns a component computing AVG(valueColumn) over the rows of
// table whose fkColumn equals the document key — the shape of the paper's S1
// (average review rating).  Documents with no matching rows score 0.
func AvgColumn(table, valueColumn, fkColumn string) Component {
	return Component{
		Name:      fmt.Sprintf("avg(%s.%s)", table, valueColumn),
		DependsOn: []Dependency{{Table: table, FKColumn: fkColumn}},
		Eval: func(db *relation.DB, pk int64) (float64, error) {
			sum, n, err := foldColumn(db, table, valueColumn, fkColumn, pk)
			if err != nil {
				return 0, err
			}
			if n == 0 {
				return 0, nil
			}
			return sum / float64(n), nil
		},
	}
}

// SumColumn returns a component computing SUM(valueColumn) over matching rows.
func SumColumn(table, valueColumn, fkColumn string) Component {
	return Component{
		Name:      fmt.Sprintf("sum(%s.%s)", table, valueColumn),
		DependsOn: []Dependency{{Table: table, FKColumn: fkColumn}},
		Eval: func(db *relation.DB, pk int64) (float64, error) {
			sum, _, err := foldColumn(db, table, valueColumn, fkColumn, pk)
			return sum, err
		},
	}
}

// CountRows returns a component counting the matching rows of table.
func CountRows(table, fkColumn string) Component {
	return Component{
		Name:      fmt.Sprintf("count(%s)", table),
		DependsOn: []Dependency{{Table: table, FKColumn: fkColumn}},
		Eval: func(db *relation.DB, pk int64) (float64, error) {
			tbl, err := db.Table(table)
			if err != nil {
				return 0, err
			}
			if err := tbl.EnsureIndex(fkColumn); err != nil {
				return 0, err
			}
			count := 0.0
			err = tbl.LookupByColumn(fkColumn, relation.Int(pk), func(relation.Row) bool {
				count++
				return true
			})
			return count, err
		},
	}
}

// LookupColumn returns a component reading valueColumn from the single row of
// table whose fkColumn equals the document key — the shape of the paper's S2
// and S3 (nVisit and nDownload in the Statistics table).  Missing rows score
// 0; when several rows match, the first is used.
func LookupColumn(table, valueColumn, fkColumn string) Component {
	return Component{
		Name:      fmt.Sprintf("%s.%s", table, valueColumn),
		DependsOn: []Dependency{{Table: table, FKColumn: fkColumn}},
		Eval: func(db *relation.DB, pk int64) (float64, error) {
			tbl, err := db.Table(table)
			if err != nil {
				return 0, err
			}
			if err := tbl.EnsureIndex(fkColumn); err != nil {
				return 0, err
			}
			colIdx, err := tbl.Schema().ColumnIndex(valueColumn)
			if err != nil {
				return 0, err
			}
			out := 0.0
			found := false
			err = tbl.LookupByColumn(fkColumn, relation.Int(pk), func(r relation.Row) bool {
				out = r[colIdx].AsFloat()
				found = true
				return false
			})
			_ = found
			return out, err
		},
	}
}

// OwnColumn returns a component reading a numeric column of the indexed
// relation itself (for example ranking an auctions table by its own
// currentBid column).
func OwnColumn(table, valueColumn string) Component {
	return Component{
		Name:      fmt.Sprintf("%s.%s", table, valueColumn),
		DependsOn: []Dependency{{Table: table}},
		Eval: func(db *relation.DB, pk int64) (float64, error) {
			tbl, err := db.Table(table)
			if err != nil {
				return 0, err
			}
			colIdx, err := tbl.Schema().ColumnIndex(valueColumn)
			if err != nil {
				return 0, err
			}
			row, err := tbl.Get(pk)
			if errors.Is(err, relation.ErrNotFound) {
				return 0, nil
			}
			if err != nil {
				return 0, err
			}
			return row[colIdx].AsFloat(), nil
		},
	}
}

// Constant returns a component with a fixed value (useful for offsets in
// tests and ablations).
func Constant(v float64) Component {
	return Component{
		Name: fmt.Sprintf("const(%g)", v),
		Eval: func(*relation.DB, int64) (float64, error) { return v, nil },
	}
}

func foldColumn(db *relation.DB, table, valueColumn, fkColumn string, pk int64) (sum float64, n int, err error) {
	tbl, err := db.Table(table)
	if err != nil {
		return 0, 0, err
	}
	if err := tbl.EnsureIndex(fkColumn); err != nil {
		return 0, 0, err
	}
	colIdx, err := tbl.Schema().ColumnIndex(valueColumn)
	if err != nil {
		return 0, 0, err
	}
	err = tbl.LookupByColumn(fkColumn, relation.Int(pk), func(r relation.Row) bool {
		sum += r[colIdx].AsFloat()
		n++
		return true
	})
	return sum, n, err
}

// --- the Score materialized view ----------------------------------------------

// ScoreChange is delivered to listeners when a document's SVR score changes.
type ScoreChange struct {
	Doc int64
	Old float64
	New float64
	// Inserted is true when the document first enters the view, Deleted when
	// it leaves.
	Inserted bool
	Deleted  bool
}

// ScoreListener observes score changes; the inverted-list indexes register
// one so that score updates reach Algorithm 1.
type ScoreListener func(ScoreChange)

// ScoreView materializes the SVR score of every document of the indexed
// relation, exactly as the paper's `create materialized view Score` (§3.2).
type ScoreView struct {
	db        *relation.DB
	baseTable string
	spec      Spec
	tree      *btree.Tree

	// refreshMu serializes Refresh and Remove end to end — component
	// evaluation, tree write and listener notification — so concurrent base
	// mutations of the same document cannot interleave their refreshes
	// (last-computed-wins would let a stale score overwrite a fresh one,
	// and notifications would reach the indexes out of order).
	refreshMu sync.Mutex

	// treeMu guards the materialized score tree: Score and ForEach readers
	// share it, Refresh and Remove take it exclusively.  Score components
	// never run under it.
	treeMu sync.RWMutex

	mu        sync.RWMutex
	listeners []ScoreListener
	attached  bool
	rows      int
	refreshes uint64
	// hooks remembers every dependency-table listener Attach registered so
	// Detach can unhook them when the owning index is dropped.
	hooks []tableHook
}

// tableHook pairs a dependency table with the listener handle Attach
// registered on it.
type tableHook struct {
	table  *relation.Table
	handle relation.ListenerHandle
}

// NewScoreView creates the view for the given indexed relation and spec.
// Call Build to populate it and Attach to enable incremental maintenance.
func NewScoreView(db *relation.DB, baseTable string, spec Spec) (*ScoreView, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Agg == nil {
		spec.Agg = Sum()
	}
	if _, err := db.Table(baseTable); err != nil {
		return nil, err
	}
	tree, err := btree.New(db.Pool())
	if err != nil {
		return nil, err
	}
	return &ScoreView{db: db, baseTable: baseTable, spec: spec, tree: tree}, nil
}

// Spec returns the view's score specification.
func (v *ScoreView) Spec() Spec { return v.spec }

// State records the view's checkpoint anchor: where its materialized score
// tree lives.  The spec itself holds Go functions and cannot be serialized;
// reopening resolves it by name from a registry (see core.OpenOptions).
type State struct {
	Root relation.TreeState // reuse the tree-anchor shape
	Rows int
}

// State snapshots the view for a checkpoint.  The caller must hold the
// engine's batch rung so no refresh is mid-flight.
func (v *ScoreView) State() State {
	v.treeMu.RLock()
	defer v.treeMu.RUnlock()
	v.mu.RLock()
	rows := v.rows
	v.mu.RUnlock()
	return State{
		Root: relation.TreeState{Root: v.tree.RootPage(), Size: v.tree.Len()},
		Rows: rows,
	}
}

// OpenScoreView reattaches a view to its checkpointed score tree.  The spec
// must be the same one the view was built with (resolved from the caller's
// registry); Attach must be called afterwards, as with NewScoreView.
func OpenScoreView(db *relation.DB, baseTable string, spec Spec, st State) (*ScoreView, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Agg == nil {
		spec.Agg = Sum()
	}
	if _, err := db.Table(baseTable); err != nil {
		return nil, err
	}
	tree := btree.Open(db.Pool(), st.Root.Root, st.Root.Size)
	return &ScoreView{db: db, baseTable: baseTable, spec: spec, tree: tree, rows: st.Rows}, nil
}

// Len reports how many documents currently have a materialized score.
func (v *ScoreView) Len() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.rows
}

// Refreshes reports how many single-document refreshes have run (a proxy for
// incremental-maintenance work in benchmarks).
func (v *ScoreView) Refreshes() uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.refreshes
}

// OnScoreChange registers a listener invoked after each score change.
func (v *ScoreView) OnScoreChange(l ScoreListener) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.listeners = append(v.listeners, l)
}

func (v *ScoreView) notify(c ScoreChange) {
	v.mu.RLock()
	listeners := append([]ScoreListener(nil), v.listeners...)
	v.mu.RUnlock()
	for _, l := range listeners {
		l(c)
	}
}

func scoreKey(pk int64) []byte { return codec.PutOrderedUint64(nil, uint64(pk)) }

// compute evaluates the aggregated score for one document.
func (v *ScoreView) compute(pk int64) (float64, error) {
	components := make([]float64, len(v.spec.Components))
	for i, c := range v.spec.Components {
		s, err := c.Eval(v.db, pk)
		if err != nil {
			return 0, fmt.Errorf("view: component %q for doc %d: %w", c.Name, pk, err)
		}
		components[i] = s
	}
	return v.spec.Agg(components), nil
}

// Score returns the materialized score of a document.
func (v *ScoreView) Score(pk int64) (float64, bool, error) {
	v.treeMu.RLock()
	defer v.treeMu.RUnlock()
	return v.scoreLocked(pk)
}

// scoreLocked is Score for callers already holding treeMu (either side).
func (v *ScoreView) scoreLocked(pk int64) (float64, bool, error) {
	data, ok, err := v.tree.Get(scoreKey(pk))
	if err != nil || !ok {
		return 0, false, err
	}
	s, _, err := codec.Float64(data)
	if err != nil {
		return 0, false, err
	}
	return s, true, nil
}

// ForEach visits every (document, score) pair in primary-key order.  The
// visitor runs under the view read lock and must not mutate the view.
func (v *ScoreView) ForEach(visit func(pk int64, score float64) bool) error {
	v.treeMu.RLock()
	defer v.treeMu.RUnlock()
	var innerErr error
	err := v.tree.Ascend(func(k, val []byte) bool {
		pk, _, err := codec.OrderedUint64(k)
		if err != nil {
			innerErr = err
			return false
		}
		s, _, err := codec.Float64(val)
		if err != nil {
			innerErr = err
			return false
		}
		return visit(int64(pk), s)
	})
	if innerErr != nil {
		return innerErr
	}
	return err
}

// Build fully (re)materializes the view from the base relation.  The
// primary keys are collected first and each document refreshed after the
// scan, because Refresh evaluates score components that may read the base
// table itself — re-entering the table from inside its own scan would
// nest read locks (a deadlock hazard if a writer queues between them).
func (v *ScoreView) Build() error {
	base, err := v.db.Table(v.baseTable)
	if err != nil {
		return err
	}
	pks := make([]int64, 0, base.Len())
	err = base.Scan(func(row relation.Row) bool {
		pks = append(pks, row[0].I)
		return true
	})
	if err != nil {
		return err
	}
	for _, pk := range pks {
		if err := v.Refresh(pk); err != nil {
			return err
		}
	}
	return nil
}

// Refresh recomputes the score of one document and notifies listeners if it
// changed.  This is the unit of incremental maintenance.
func (v *ScoreView) Refresh(pk int64) error {
	v.refreshMu.Lock()
	defer v.refreshMu.Unlock()
	v.mu.Lock()
	v.refreshes++
	v.mu.Unlock()

	// Re-check existence under refreshMu: a racing base-table Delete whose
	// Remove already ran (or will run after this refresh, serialized behind
	// refreshMu) must not have this refresh re-materialize a score row for
	// a dead document.
	base, err := v.db.Table(v.baseTable)
	if err != nil {
		return err
	}
	if _, err := base.Get(pk); err != nil {
		if errors.Is(err, relation.ErrNotFound) {
			return nil
		}
		return err
	}

	newScore, err := v.compute(pk)
	if err != nil {
		return err
	}
	v.treeMu.Lock()
	old, existed, err := v.scoreLocked(pk)
	if err != nil {
		v.treeMu.Unlock()
		return err
	}
	if existed && old == newScore {
		v.treeMu.Unlock()
		return nil
	}
	if err := v.tree.Put(scoreKey(pk), codec.PutFloat64(nil, newScore)); err != nil {
		v.treeMu.Unlock()
		return err
	}
	v.treeMu.Unlock()
	if !existed {
		v.mu.Lock()
		v.rows++
		v.mu.Unlock()
	}
	v.notify(ScoreChange{Doc: pk, Old: old, New: newScore, Inserted: !existed})
	return nil
}

// Remove drops a document from the view (document deletion).
func (v *ScoreView) Remove(pk int64) error {
	v.refreshMu.Lock()
	defer v.refreshMu.Unlock()
	v.treeMu.Lock()
	old, existed, err := v.scoreLocked(pk)
	if err != nil {
		v.treeMu.Unlock()
		return err
	}
	if !existed {
		v.treeMu.Unlock()
		return nil
	}
	if _, err := v.tree.Delete(scoreKey(pk)); err != nil {
		v.treeMu.Unlock()
		return err
	}
	v.treeMu.Unlock()
	v.mu.Lock()
	v.rows--
	v.mu.Unlock()
	v.notify(ScoreChange{Doc: pk, Old: old, Deleted: true})
	return nil
}

// Attach registers change listeners on every dependency table so that base
// updates are folded into the view incrementally.  It is idempotent.
func (v *ScoreView) Attach() error {
	v.mu.Lock()
	if v.attached {
		v.mu.Unlock()
		return nil
	}
	v.attached = true
	v.mu.Unlock()

	type hook struct {
		table    string
		fkColumn string
	}
	hooks := map[hook]bool{}
	for _, c := range v.spec.Components {
		for _, dep := range c.DependsOn {
			table := dep.Table
			if table == "" {
				table = v.baseTable
			}
			hooks[hook{table: table, fkColumn: dep.FKColumn}] = true
		}
	}
	// The indexed relation itself always participates: inserting or deleting
	// a document must add or remove its view row.
	hooks[hook{table: v.baseTable}] = true

	for h := range hooks {
		tbl, err := v.db.Table(h.table)
		if err != nil {
			return err
		}
		fkIdx := -1
		if h.fkColumn != "" {
			fkIdx, err = tbl.Schema().ColumnIndex(h.fkColumn)
			if err != nil {
				return err
			}
		}
		isBase := h.table == v.baseTable && h.fkColumn == ""
		fk := fkIdx
		handle := tbl.OnChange(func(c relation.Change) {
			v.handleChange(c, isBase, fk)
		})
		v.mu.Lock()
		v.hooks = append(v.hooks, tableHook{table: tbl, handle: handle})
		v.mu.Unlock()
	}
	return nil
}

// Detach unhooks every dependency-table listener Attach registered, so base
// mutations stop refreshing the view.  A mutation already mid-notification
// may still deliver one final refresh after Detach returns; the caller
// (index drop) fences the index before releasing the view's pages.
func (v *ScoreView) Detach() {
	v.mu.Lock()
	hooks := v.hooks
	v.hooks = nil
	v.attached = false
	v.mu.Unlock()
	for _, h := range hooks {
		h.table.RemoveListener(h.handle)
	}
}

// ReleaseTree frees every page of the materialized score tree back to the
// pool's free list.  Only an index drop calls it, after the view is detached
// and the owning index fenced; the view is unusable afterwards.
func (v *ScoreView) ReleaseTree() error {
	v.treeMu.Lock()
	defer v.treeMu.Unlock()
	return v.tree.RetireAll()
}

// handleChange folds one base-table change into the view.  Errors during
// asynchronous maintenance are currently dropped after best effort; the
// engine's tests verify the view against full recomputation.
func (v *ScoreView) handleChange(c relation.Change, isBase bool, fkIdx int) {
	affected := map[int64]bool{}
	if isBase {
		switch c.Kind {
		case relation.ChangeDelete:
			_ = v.Remove(c.PK)
			return
		default:
			affected[c.PK] = true
		}
	} else if fkIdx >= 0 {
		if c.Old != nil && fkIdx < len(c.Old) {
			affected[c.Old[fkIdx].AsInt()] = true
		}
		if c.New != nil && fkIdx < len(c.New) {
			affected[c.New[fkIdx].AsInt()] = true
		}
	}
	for pk := range affected {
		// Only refresh documents that exist in the indexed relation.
		base, err := v.db.Table(v.baseTable)
		if err != nil {
			return
		}
		if _, err := base.Get(pk); err != nil {
			continue
		}
		_ = v.Refresh(pk)
	}
}
