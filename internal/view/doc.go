// Package view implements the SVR score specification framework of §3.1 and
// the incrementally maintained Score materialized view of §3.2.
//
// A score specification names a set of scoring components — the Go
// equivalents of the paper's SQL-bodied functions S1..Sm, each mapping a
// primary-key value of the indexed relation to a float — and an aggregation
// function Agg that combines them into the document's SVR score.  The
// ScoreView materializes Agg(S1(pk), ..., Sm(pk)) for every row of the
// indexed relation, keeps it up to date incrementally as the base relations
// change (by subscribing to table change notifications, the equivalent of
// incremental view maintenance), and notifies listeners — the inverted-list
// indexes — whenever a document's score changes.
//
// See ARCHITECTURE.md for the layer map — where this package sits in the
// stack — and for the repo-wide concurrency contract.
package view
