package view

import (
	"math"
	"testing"

	"svrdb/internal/relation"
	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
)

// buildExampleDB creates the paper's Figure 1 schema with a couple of movies.
func buildExampleDB(t testing.TB) *relation.DB {
	t.Helper()
	db := relation.NewDB(buffer.MustNew(pagefile.MustNewMem(4096), 2048))
	movies, err := db.CreateTable(relation.Schema{
		Name: "Movies",
		Columns: []relation.Column{
			{Name: "mID", Kind: relation.KindInt64},
			{Name: "name", Kind: relation.KindString},
			{Name: "desc", Kind: relation.KindString},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	reviews, err := db.CreateTable(relation.Schema{
		Name: "Reviews",
		Columns: []relation.Column{
			{Name: "rID", Kind: relation.KindInt64},
			{Name: "mID", Kind: relation.KindInt64},
			{Name: "rating", Kind: relation.KindFloat64},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := db.CreateTable(relation.Schema{
		Name: "Statistics",
		Columns: []relation.Column{
			{Name: "sID", Kind: relation.KindInt64},
			{Name: "mID", Kind: relation.KindInt64},
			{Name: "nVisit", Kind: relation.KindInt64},
			{Name: "nDownload", Kind: relation.KindInt64},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	mustInsert(t, movies, relation.Row{relation.Int(1), relation.Str("American Thrift"), relation.Str("golden gate classic")})
	mustInsert(t, movies, relation.Row{relation.Int(2), relation.Str("Amateur Film"), relation.Str("golden gate amateur")})

	mustInsert(t, reviews, relation.Row{relation.Int(1), relation.Int(1), relation.Float(4)})
	mustInsert(t, reviews, relation.Row{relation.Int(2), relation.Int(1), relation.Float(5)})
	mustInsert(t, reviews, relation.Row{relation.Int(3), relation.Int(2), relation.Float(2)})

	mustInsert(t, stats, relation.Row{relation.Int(1), relation.Int(1), relation.Int(20000), relation.Int(1000)})
	mustInsert(t, stats, relation.Row{relation.Int(2), relation.Int(2), relation.Int(300), relation.Int(20)})
	return db
}

func mustInsert(t testing.TB, tbl *relation.Table, row relation.Row) {
	t.Helper()
	if err := tbl.Insert(row); err != nil {
		t.Fatal(err)
	}
}

func exampleSpec() Spec {
	return Spec{
		Components: []Component{
			AvgColumn("Reviews", "rating", "mID"),
			LookupColumn("Statistics", "nVisit", "mID"),
			LookupColumn("Statistics", "nDownload", "mID"),
		},
		Agg: WeightedSum(100, 0.5, 1),
	}
}

func TestSpecValidation(t *testing.T) {
	if err := (&Spec{}).Validate(); err == nil {
		t.Error("empty spec validated")
	}
	bad := Spec{Components: []Component{{Name: "broken"}}}
	if err := bad.Validate(); err == nil {
		t.Error("spec with nil Eval validated")
	}
	if err := (&Spec{Components: []Component{Constant(1)}}).Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestAggregators(t *testing.T) {
	ws := WeightedSum(2, 0.5)
	if got := ws([]float64{10, 4}); got != 22 {
		t.Errorf("WeightedSum = %g, want 22", got)
	}
	// Extra components beyond the weights are added unweighted.
	if got := ws([]float64{10, 4, 3}); got != 25 {
		t.Errorf("WeightedSum with extra component = %g, want 25", got)
	}
	if got := Sum()([]float64{1, 2, 3}); got != 6 {
		t.Errorf("Sum = %g, want 6", got)
	}
}

func TestBuildComputesPaperExampleScores(t *testing.T) {
	db := buildExampleDB(t)
	v, err := NewScoreView(db, "Movies", exampleSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Build(); err != nil {
		t.Fatal(err)
	}
	if v.Len() != 2 {
		t.Fatalf("view has %d rows, want 2", v.Len())
	}
	// Movie 1: avg rating 4.5 -> 450, visits 20000 -> 10000, downloads 1000.
	s1, ok, err := v.Score(1)
	if err != nil || !ok {
		t.Fatalf("Score(1) = %v %v", ok, err)
	}
	if want := 4.5*100 + 20000.0/2 + 1000; math.Abs(s1-want) > 1e-9 {
		t.Errorf("Score(1) = %g, want %g", s1, want)
	}
	// Movie 2: avg 2 -> 200, visits 300 -> 150, downloads 20.
	s2, _, _ := v.Score(2)
	if want := 2.0*100 + 150 + 20; math.Abs(s2-want) > 1e-9 {
		t.Errorf("Score(2) = %g, want %g", s2, want)
	}
	if s1 <= s2 {
		t.Error("American Thrift must outrank Amateur Film in the paper's example")
	}
}

func TestIncrementalMaintenanceOnDependencyTables(t *testing.T) {
	db := buildExampleDB(t)
	v, err := NewScoreView(db, "Movies", exampleSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Build(); err != nil {
		t.Fatal(err)
	}
	if err := v.Attach(); err != nil {
		t.Fatal(err)
	}

	var changes []ScoreChange
	v.OnScoreChange(func(c ScoreChange) { changes = append(changes, c) })

	// A visits update to movie 2 must refresh only movie 2's score.
	stats, _ := db.Table("Statistics")
	if err := stats.Update(2, map[string]relation.Value{"nVisit": relation.Int(150300)}); err != nil {
		t.Fatal(err)
	}
	if len(changes) != 1 || changes[0].Doc != 2 {
		t.Fatalf("changes after visits update = %+v, want one change for doc 2", changes)
	}
	s2, _, _ := v.Score(2)
	if want := 2.0*100 + 150300.0/2 + 20; math.Abs(s2-want) > 1e-9 {
		t.Errorf("Score(2) after update = %g, want %g", s2, want)
	}

	// A new review for movie 1 must refresh movie 1.
	reviews, _ := db.Table("Reviews")
	changes = nil
	if err := reviews.Insert(relation.Row{relation.Int(4), relation.Int(1), relation.Float(1)}); err != nil {
		t.Fatal(err)
	}
	if len(changes) != 1 || changes[0].Doc != 1 {
		t.Fatalf("changes after review insert = %+v", changes)
	}
	s1, _, _ := v.Score(1)
	wantAvg := (4.0 + 5.0 + 1.0) / 3.0
	if want := wantAvg*100 + 10000 + 1000; math.Abs(s1-want) > 1e-9 {
		t.Errorf("Score(1) after new review = %g, want %g", s1, want)
	}

	// The view must equal full recomputation after all of this.
	check := func(pk int64) {
		fresh, err := NewScoreView(db, "Movies", exampleSpec())
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.Build(); err != nil {
			t.Fatal(err)
		}
		a, _, _ := v.Score(pk)
		b, _, _ := fresh.Score(pk)
		if math.Abs(a-b) > 1e-9 {
			t.Errorf("incremental score for %d = %g, full recomputation = %g", pk, a, b)
		}
	}
	check(1)
	check(2)
}

func TestBaseTableInsertAndDelete(t *testing.T) {
	db := buildExampleDB(t)
	v, err := NewScoreView(db, "Movies", exampleSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Build(); err != nil {
		t.Fatal(err)
	}
	if err := v.Attach(); err != nil {
		t.Fatal(err)
	}
	var changes []ScoreChange
	v.OnScoreChange(func(c ScoreChange) { changes = append(changes, c) })

	movies, _ := db.Table("Movies")
	if err := movies.Insert(relation.Row{relation.Int(3), relation.Str("New Release"), relation.Str("golden news")}); err != nil {
		t.Fatal(err)
	}
	if len(changes) != 1 || !changes[0].Inserted || changes[0].Doc != 3 {
		t.Fatalf("insert change = %+v", changes)
	}
	if v.Len() != 3 {
		t.Errorf("view rows = %d, want 3", v.Len())
	}

	changes = nil
	if err := movies.Delete(3); err != nil {
		t.Fatal(err)
	}
	if len(changes) != 1 || !changes[0].Deleted || changes[0].Doc != 3 {
		t.Fatalf("delete change = %+v", changes)
	}
	if v.Len() != 2 {
		t.Errorf("view rows after delete = %d, want 2", v.Len())
	}
	if _, ok, _ := v.Score(3); ok {
		t.Error("deleted document still has a view score")
	}
}

func TestUpdatesToUnrelatedDocumentsDoNotNotify(t *testing.T) {
	db := buildExampleDB(t)
	v, err := NewScoreView(db, "Movies", exampleSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Build(); err != nil {
		t.Fatal(err)
	}
	if err := v.Attach(); err != nil {
		t.Fatal(err)
	}
	count := 0
	v.OnScoreChange(func(ScoreChange) { count++ })

	// A statistics row for a movie that does not exist must not produce a
	// notification.
	stats, _ := db.Table("Statistics")
	if err := stats.Insert(relation.Row{relation.Int(99), relation.Int(99), relation.Int(5), relation.Int(5)}); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Errorf("received %d notifications for an unrelated row", count)
	}
	// An update that leaves the score unchanged must not notify either.
	reviews, _ := db.Table("Reviews")
	row, _ := reviews.Get(1)
	if err := reviews.Update(1, map[string]relation.Value{"rating": relation.Float(row[2].F)}); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Errorf("received %d notifications for a no-op update", count)
	}
}

func TestComponentConstructors(t *testing.T) {
	db := buildExampleDB(t)
	cases := []struct {
		name string
		c    Component
		pk   int64
		want float64
	}{
		{"avg", AvgColumn("Reviews", "rating", "mID"), 1, 4.5},
		{"sum", SumColumn("Reviews", "rating", "mID"), 1, 9},
		{"count", CountRows("Reviews", "mID"), 1, 2},
		{"lookup", LookupColumn("Statistics", "nVisit", "mID"), 2, 300},
		{"lookup missing", LookupColumn("Statistics", "nVisit", "mID"), 42, 0},
		{"own column", OwnColumn("Movies", "mID"), 2, 2},
		{"constant", Constant(7.5), 1, 7.5},
		{"avg no rows", AvgColumn("Reviews", "rating", "mID"), 42, 0},
	}
	for _, c := range cases {
		got, err := c.c.Eval(db, c.pk)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: Eval = %g, want %g", c.name, got, c.want)
		}
	}
}

func TestNewScoreViewValidation(t *testing.T) {
	db := buildExampleDB(t)
	if _, err := NewScoreView(db, "Missing", exampleSpec()); err == nil {
		t.Error("view over missing table created")
	}
	if _, err := NewScoreView(db, "Movies", Spec{}); err == nil {
		t.Error("view with empty spec created")
	}
}

func TestForEachOrdered(t *testing.T) {
	db := buildExampleDB(t)
	v, err := NewScoreView(db, "Movies", exampleSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Build(); err != nil {
		t.Fatal(err)
	}
	var pks []int64
	if err := v.ForEach(func(pk int64, score float64) bool {
		pks = append(pks, pk)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(pks) != 2 || pks[0] != 1 || pks[1] != 2 {
		t.Errorf("ForEach order = %v, want [1 2]", pks)
	}
}
