package text

import (
	"math"
	"reflect"
	"testing"
)

func TestTokenizeBasics(t *testing.T) {
	a := NewAnalyzer()
	got := a.Tokenize("The Golden-Gate bridge, 1937!")
	want := []string{"the", "golden", "gate", "bridge", "1937"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeEmpty(t *testing.T) {
	a := NewAnalyzer()
	if got := a.Tokenize(""); len(got) != 0 {
		t.Errorf("Tokenize(\"\") = %v, want empty", got)
	}
	if got := a.Tokenize("!!! ---"); len(got) != 0 {
		t.Errorf("Tokenize of punctuation = %v, want empty", got)
	}
}

func TestTokenizeOptions(t *testing.T) {
	a := NewAnalyzer(WithStopwords([]string{"the", "a"}), WithMinTokenLength(3))
	got := a.Tokenize("The a big DOG ran")
	want := []string{"big", "dog", "ran"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize with options = %v, want %v", got, want)
	}

	noFold := NewAnalyzer(WithoutLowercasing())
	got = noFold.Tokenize("Gate gate")
	want = []string{"Gate", "gate"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize without lowercasing = %v, want %v", got, want)
	}
}

func TestTermFrequenciesAndDistinct(t *testing.T) {
	tokens := []string{"news", "gate", "news", "golden", "gate", "news"}
	tf := TermFrequencies(tokens)
	if tf["news"] != 3 || tf["gate"] != 2 || tf["golden"] != 1 {
		t.Errorf("TermFrequencies = %v", tf)
	}
	distinct := DistinctTerms(tokens)
	want := []string{"gate", "golden", "news"}
	if !reflect.DeepEqual(distinct, want) {
		t.Errorf("DistinctTerms = %v, want %v", distinct, want)
	}
}

func TestDictionaryInternLookup(t *testing.T) {
	d := NewDictionary()
	id1 := d.Intern("news")
	id2 := d.Intern("gate")
	if id1 == id2 {
		t.Error("distinct terms received the same ID")
	}
	if again := d.Intern("news"); again != id1 {
		t.Errorf("re-interning returned %d, want %d", again, id1)
	}
	if got, ok := d.Lookup("gate"); !ok || got != id2 {
		t.Errorf("Lookup(gate) = %d, %v", got, ok)
	}
	if _, ok := d.Lookup("absent"); ok {
		t.Error("Lookup of absent term succeeded")
	}
	if d.Term(id1) != "news" || d.Term(TermID(999)) != "" {
		t.Error("Term lookup wrong")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
}

func TestDocumentFrequencies(t *testing.T) {
	d := NewDictionary()
	d.AddDocumentTerms([]string{"news", "gate"})
	d.AddDocumentTerms([]string{"news"})
	if d.DocFreq("news") != 2 || d.DocFreq("gate") != 1 || d.DocFreq("absent") != 0 {
		t.Errorf("doc freqs = %d, %d, %d", d.DocFreq("news"), d.DocFreq("gate"), d.DocFreq("absent"))
	}
	d.RemoveDocumentTerms([]string{"news", "absent"})
	if d.DocFreq("news") != 1 {
		t.Errorf("DocFreq after removal = %d, want 1", d.DocFreq("news"))
	}
	d.RemoveDocumentTerms([]string{"news", "news"})
	if d.DocFreq("news") != 0 {
		t.Errorf("DocFreq should not go negative: %d", d.DocFreq("news"))
	}
}

func TestIDF(t *testing.T) {
	stats := CollectionStats{NumDocs: 1000}
	if IDF(stats, 0) != 0 {
		t.Error("IDF of absent term should be 0")
	}
	if IDF(CollectionStats{}, 10) != 0 {
		t.Error("IDF with empty collection should be 0")
	}
	rare := IDF(stats, 1)
	common := IDF(stats, 900)
	if rare <= common {
		t.Errorf("IDF of rare term (%g) should exceed common term (%g)", rare, common)
	}
	if want := math.Log(1 + 1000.0/1.0); math.Abs(rare-want) > 1e-12 {
		t.Errorf("IDF(1) = %g, want %g", rare, want)
	}
}

func TestNormalizedTFAndTFIDF(t *testing.T) {
	if NormalizedTF(0, 100) != 0 || NormalizedTF(5, 0) != 0 {
		t.Error("degenerate NormalizedTF inputs should yield 0")
	}
	w := NormalizedTF(5, 100)
	if math.Abs(float64(w)-0.05) > 1e-6 {
		t.Errorf("NormalizedTF(5,100) = %v, want 0.05", w)
	}
	idf := IDF(CollectionStats{NumDocs: 100}, 10)
	if got := TFIDF(w, idf); math.Abs(got-float64(w)*idf) > 1e-12 {
		t.Errorf("TFIDF = %g", got)
	}
}
