// Package text provides the text-analysis substrate used by the inverted
// list indexes: tokenization, a term dictionary, per-document term
// statistics and the normalized term scores (TF and IDF) consumed by the
// TermScore index variants.
//
// The paper combines SVR scores with "term scores (such as TF-IDF)"
// (§4.3.3); the Chunk-TermScore and ID-TermScore methods store a normalized
// term frequency with each posting and combine it with an IDF factor and the
// SVR score at query time.  This package computes those quantities.
//
// See ARCHITECTURE.md for the layer map — where this package sits in the
// stack — and for the repo-wide concurrency contract.
package text
