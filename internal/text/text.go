package text

import (
	"math"
	"sort"
	"strings"
	"sync"
	"unicode"
)

// Analyzer turns raw text into index terms.  The zero value is not usable;
// call NewAnalyzer.
type Analyzer struct {
	lowercase bool
	minLen    int
	stopwords map[string]struct{}
}

// AnalyzerOption configures an Analyzer.
type AnalyzerOption func(*Analyzer)

// WithStopwords installs a stopword list; stopwords are dropped from the
// token stream.
func WithStopwords(words []string) AnalyzerOption {
	return func(a *Analyzer) {
		for _, w := range words {
			a.stopwords[strings.ToLower(w)] = struct{}{}
		}
	}
}

// WithMinTokenLength drops tokens shorter than n runes.
func WithMinTokenLength(n int) AnalyzerOption {
	return func(a *Analyzer) { a.minLen = n }
}

// WithoutLowercasing disables case folding (enabled by default).
func WithoutLowercasing() AnalyzerOption {
	return func(a *Analyzer) { a.lowercase = false }
}

// NewAnalyzer returns an analyzer that splits on non-alphanumeric runes and
// lowercases tokens.
func NewAnalyzer(opts ...AnalyzerOption) *Analyzer {
	a := &Analyzer{lowercase: true, minLen: 1, stopwords: map[string]struct{}{}}
	for _, o := range opts {
		o(a)
	}
	return a
}

// Tokenize splits text into terms.
func (a *Analyzer) Tokenize(text string) []string {
	var tokens []string
	fields := strings.FieldsFunc(text, func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
	for _, f := range fields {
		if a.lowercase {
			f = strings.ToLower(f)
		}
		if len([]rune(f)) < a.minLen {
			continue
		}
		if _, stopped := a.stopwords[f]; stopped {
			continue
		}
		tokens = append(tokens, f)
	}
	return tokens
}

// TermFrequencies counts occurrences of each distinct term in tokens.
func TermFrequencies(tokens []string) map[string]int {
	tf := make(map[string]int, len(tokens))
	for _, t := range tokens {
		tf[t]++
	}
	return tf
}

// DistinctTerms returns the sorted distinct terms of a token stream.
func DistinctTerms(tokens []string) []string {
	set := TermFrequencies(tokens)
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// TermID is a compact identifier assigned to a term by a Dictionary.
type TermID uint32

// Dictionary maps terms to dense TermIDs and tracks document frequencies.
// It is safe for concurrent use.
type Dictionary struct {
	mu      sync.RWMutex
	ids     map[string]TermID
	terms   []string
	docFreq []int64
	// gen counts document-frequency mutations, letting snapshot publishers
	// skip the O(vocabulary) frequency copy when nothing changed (e.g. a
	// score-only batch).
	gen uint64
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{ids: map[string]TermID{}}
}

// Intern returns the TermID for term, assigning a new one if needed.
func (d *Dictionary) Intern(term string) TermID {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[term]; ok {
		return id
	}
	id := TermID(len(d.terms))
	d.ids[term] = id
	d.terms = append(d.terms, term)
	d.docFreq = append(d.docFreq, 0)
	return id
}

// Lookup returns the TermID for term if it has been interned.
func (d *Dictionary) Lookup(term string) (TermID, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.ids[term]
	return id, ok
}

// Term returns the string for a TermID.
func (d *Dictionary) Term(id TermID) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) >= len(d.terms) {
		return ""
	}
	return d.terms[id]
}

// Len reports the number of interned terms.
func (d *Dictionary) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.terms)
}

// AddDocumentTerms increments the document frequency of each distinct term.
func (d *Dictionary) AddDocumentTerms(distinct []string) {
	for _, t := range distinct {
		id := d.Intern(t)
		d.mu.Lock()
		d.docFreq[id]++
		d.gen++
		d.mu.Unlock()
	}
}

// RemoveDocumentTerms decrements the document frequency of each distinct
// term (used when a document is deleted or its content changes).
func (d *Dictionary) RemoveDocumentTerms(distinct []string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, t := range distinct {
		if id, ok := d.ids[t]; ok && d.docFreq[id] > 0 {
			d.docFreq[id]--
			d.gen++
		}
	}
}

// Gen returns the document-frequency mutation counter; equal values mean the
// frequency vector has not changed between observations.
func (d *Dictionary) Gen() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.gen
}

// DocFreqSnapshot returns an independent copy of the per-term document
// frequencies, indexed by TermID, for a frozen IDF view.
func (d *Dictionary) DocFreqSnapshot() []int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]int64(nil), d.docFreq...)
}

// DocFreq reports how many documents contain the term.
func (d *Dictionary) DocFreq(term string) int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id, ok := d.ids[term]; ok {
		return d.docFreq[id]
	}
	return 0
}

// DictionaryState is the serializable snapshot of a Dictionary, captured at
// a checkpoint and restored on open.  Terms are listed in TermID order; the
// term→ID map is rebuilt from it.
type DictionaryState struct {
	Terms   []string
	DocFreq []int64
}

// State snapshots the dictionary.
func (d *Dictionary) State() DictionaryState {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return DictionaryState{
		Terms:   append([]string(nil), d.terms...),
		DocFreq: append([]int64(nil), d.docFreq...),
	}
}

// RestoreDictionary rebuilds a dictionary from a snapshot.
func RestoreDictionary(st DictionaryState) *Dictionary {
	d := &Dictionary{
		ids:     make(map[string]TermID, len(st.Terms)),
		terms:   append([]string(nil), st.Terms...),
		docFreq: append([]int64(nil), st.DocFreq...),
	}
	for i, t := range d.terms {
		d.ids[t] = TermID(i)
	}
	for len(d.docFreq) < len(d.terms) {
		d.docFreq = append(d.docFreq, 0)
	}
	return d
}

// CollectionStats carries the collection-level counts needed for IDF.
type CollectionStats struct {
	NumDocs int64
}

// IDF returns the inverse document frequency of a term:
// log(1 + N/df).  Terms absent from the collection get IDF 0 so that they
// contribute nothing to combined scores.
func IDF(stats CollectionStats, docFreq int64) float64 {
	if docFreq <= 0 || stats.NumDocs <= 0 {
		return 0
	}
	return math.Log(1 + float64(stats.NumDocs)/float64(docFreq))
}

// NormalizedTF returns the length-normalized term frequency used as the
// per-posting term weight: tf / docLen.  A zero document length yields 0.
func NormalizedTF(tf, docLen int) float32 {
	if docLen <= 0 || tf <= 0 {
		return 0
	}
	return float32(float64(tf) / float64(docLen))
}

// TFIDF combines a stored normalized TF weight with a collection IDF.
func TFIDF(normTF float32, idf float64) float64 {
	return float64(normTF) * idf
}
