package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the serving-layer load generator: it drives a query mix over
// real HTTP — TCP, JSON codec, mux, metrics, the works — so that serving
// overhead versus a direct core.TextIndex.Search call is measured rather
// than guessed.  svrbench -experiment serve and BenchmarkServeQuery both
// run through it, so the experiment table and the CI benchmark can never
// drift apart.

// LoadResult aggregates one load run.  Percentiles are exact (computed from
// every request's recorded latency), unlike the /v1/stats histogram bounds.
type LoadResult struct {
	Workers int
	Queries int
	Elapsed time.Duration
	// QPS is Queries / Elapsed.
	QPS float64
	// Avg, P50, P99 and P999 summarize per-request latency as a client saw
	// it; P999 is the deep-tail number the tail-latency experiment watches.
	Avg, P50, P99, P999 time.Duration
	// Max is the single slowest request — the hard ceiling a concurrent
	// maintenance stall would show up in.
	Max time.Duration
}

// NewLoadClient returns an http.Client tuned for loopback load generation:
// enough idle connections that every worker keeps one alive, so steady-state
// requests measure request handling, not TCP handshakes.
func NewLoadClient(workers int) *http.Client {
	transport := &http.Transport{
		MaxIdleConns:        workers * 2,
		MaxIdleConnsPerHost: workers * 2,
	}
	return &http.Client{Transport: transport, Timeout: 30 * time.Second}
}

// RunSearchLoad replays total queries from the pool across workers
// goroutines against POST {baseURL}/v1/indexes/{index}/search.  Work is
// handed out through an atomic cursor (the same discipline as
// bench.RunConcurrentQueries) so the division of labour is even regardless
// of per-query cost variance.  Every response body is fully read and
// decoded — a torn or non-200 response fails the run.
func RunSearchLoad(client *http.Client, baseURL, index string, queries [][]string, k, workers, total int) (LoadResult, error) {
	if client == nil {
		client = NewLoadClient(workers)
	}
	url := fmt.Sprintf("%s/v1/indexes/%s/search", baseURL, index)

	// Pre-encode each query's request body once: the generator should spend
	// its time in the server, not in its own JSON encoder.
	bodies := make([][]byte, len(queries))
	for i, terms := range queries {
		b, err := json.Marshal(SearchRequest{Terms: terms, K: k})
		if err != nil {
			return LoadResult{}, err
		}
		bodies[i] = b
	}

	var cursor atomic.Int64
	var (
		errMu    sync.Mutex
		firstErr error
	)
	latencies := make([][]time.Duration, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lats := make([]time.Duration, 0, total/workers+1)
			for {
				i := cursor.Add(1) - 1
				if i >= int64(total) {
					break
				}
				body := bodies[i%int64(len(bodies))]
				reqStart := time.Now()
				if err := doSearch(client, url, body); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					break
				}
				lats = append(lats, time.Since(reqStart))
			}
			latencies[w] = lats
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return LoadResult{}, firstErr
	}

	var all []time.Duration
	for _, lats := range latencies {
		all = append(all, lats...)
	}
	return Summarize(all, elapsed, workers), nil
}

// Summarize folds a latency series into a LoadResult.  It is the single
// percentile/QPS computation shared by the HTTP load generator and the
// serve experiment's direct-Search row, so the two sides of the
// direct-vs-HTTP comparison can never drift onto different math.
func Summarize(lats []time.Duration, elapsed time.Duration, workers int) LoadResult {
	res := LoadResult{Workers: workers, Queries: len(lats), Elapsed: elapsed}
	if elapsed > 0 {
		res.QPS = float64(len(lats)) / elapsed.Seconds()
	}
	if len(lats) == 0 {
		return res
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	res.Avg = sum / time.Duration(len(sorted))
	res.P50 = sorted[nearestRank(len(sorted), 0.50)]
	res.P99 = sorted[nearestRank(len(sorted), 0.99)]
	res.P999 = sorted[nearestRank(len(sorted), 0.999)]
	res.Max = sorted[len(sorted)-1]
	return res
}

// nearestRank returns the index of the nearest-rank q-quantile in a sorted
// series of n observations — the same ceil(q*n) convention the metrics
// registry's histogram percentiles use, so /v1/stats and load-run results
// agree at the rank boundaries (a naive (n*99)/100 index reports the
// maximum as p99 at exactly 100 samples).
func nearestRank(n int, q float64) int {
	i := int(math.Ceil(q*float64(n))) - 1
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// doSearch issues one search request and validates the response end to end.
func doSearch(client *http.Client, url string, body []byte) error {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("server: reading response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server: search returned %d: %s", resp.StatusCode, data)
	}
	var sr SearchResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		return fmt.Errorf("server: undecodable search response: %w", err)
	}
	return nil
}
