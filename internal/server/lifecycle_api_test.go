package server

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"svrdb/internal/relation"
	"svrdb/internal/view"
)

// doJSON issues a request with an optional JSON body and optional headers,
// returning status and body bytes.
func doJSON(t *testing.T, method, url string, body any, hdr map[string]string) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = strings.NewReader(string(b))
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// assertNotFoundShape decodes data as the structured 404 body and checks
// every field the satellite contract names.
func assertNotFoundShape(t *testing.T, data []byte, resource, name string) {
	t.Helper()
	var er ErrorResponse
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatalf("404 body %q is not JSON: %v", data, err)
	}
	if er.Code != "not_found" || er.Resource != resource || er.Name != name || er.Error == "" {
		t.Errorf("404 body = %+v, want code=not_found resource=%q name=%q with a message", er, resource, name)
	}
}

// TestIndexLifecycleEndpoints drives the full create → query → drop cycle
// over HTTP, including every error shape the endpoints promise.
func TestIndexLifecycleEndpoints(t *testing.T) {
	_, base, _, _ := newTestServer(t)

	// Create a second index over the same table with a different method.
	status, data := doJSON(t, http.MethodPost, base+"/v1/indexes", CreateIndexRequest{
		Name: "docs2", Table: "Docs", Column: "body", Method: "id", Spec: "val",
	}, nil)
	if status != http.StatusCreated {
		t.Fatalf("create status = %d, body %s", status, data)
	}
	var cr CreateIndexResponse
	if err := json.Unmarshal(data, &cr); err != nil || cr.Name != "docs2" || cr.Method != "ID" {
		t.Fatalf("create response %s (err %v), want name docs2 method ID", data, err)
	}

	// The new index answers immediately and agrees with the original.
	want := searchVia(t, base, "docs", SearchRequest{Query: "alpha common", K: 10})
	got := searchVia(t, base, "docs2", SearchRequest{Query: "alpha common", K: 10})
	if len(got.Hits) != len(want.Hits) {
		t.Fatalf("new index returned %d hits, existing %d", len(got.Hits), len(want.Hits))
	}
	for i := range want.Hits {
		if got.Hits[i].PK != want.Hits[i].PK || got.Hits[i].Score != want.Hits[i].Score {
			t.Errorf("hit %d: docs2 (%d, %v) != docs (%d, %v)", i,
				got.Hits[i].PK, got.Hits[i].Score, want.Hits[i].PK, want.Hits[i].Score)
		}
	}

	// Error shapes.
	for _, tc := range []struct {
		name string
		req  CreateIndexRequest
		want int
	}{
		{"duplicate name", CreateIndexRequest{Name: "docs", Table: "Docs", Column: "body", Spec: "val"}, http.StatusConflict},
		{"unknown spec", CreateIndexRequest{Name: "x", Table: "Docs", Column: "body", Spec: "nope"}, http.StatusBadRequest},
		{"missing spec", CreateIndexRequest{Name: "x", Table: "Docs", Column: "body"}, http.StatusBadRequest},
		{"unknown method", CreateIndexRequest{Name: "x", Table: "Docs", Column: "body", Method: "bogus", Spec: "val"}, http.StatusBadRequest},
		{"missing name", CreateIndexRequest{Table: "Docs", Column: "body", Spec: "val"}, http.StatusBadRequest},
	} {
		status, data := doJSON(t, http.MethodPost, base+"/v1/indexes", tc.req, nil)
		if status != tc.want {
			t.Errorf("%s: status = %d, want %d (body %s)", tc.name, status, tc.want, data)
		}
	}
	status, data = doJSON(t, http.MethodPost, base+"/v1/indexes", CreateIndexRequest{
		Name: "x", Table: "Nope", Column: "body", Spec: "val",
	}, nil)
	if status != http.StatusNotFound {
		t.Fatalf("unknown table: status = %d, want 404 (body %s)", status, data)
	}
	assertNotFoundShape(t, data, "table", "Nope")

	// Drop the new index; searches on it 404 with the structured shape.
	status, data = doJSON(t, http.MethodDelete, base+"/v1/indexes/docs2", nil, nil)
	if status != http.StatusOK {
		t.Fatalf("drop status = %d, body %s", status, data)
	}
	var dr DropIndexResponse
	if err := json.Unmarshal(data, &dr); err != nil || dr.Dropped != "docs2" {
		t.Fatalf("drop response %s, want dropped docs2", data)
	}
	status, data = postJSON(t, base+"/v1/indexes/docs2/search", SearchRequest{Query: "alpha"})
	if status != http.StatusNotFound {
		t.Fatalf("search after drop: status = %d, want 404", status)
	}
	assertNotFoundShape(t, data, "index", "docs2")
	// Dropping again is the same structured 404.
	status, data = doJSON(t, http.MethodDelete, base+"/v1/indexes/docs2", nil, nil)
	if status != http.StatusNotFound {
		t.Fatalf("double drop: status = %d, want 404", status)
	}
	assertNotFoundShape(t, data, "index", "docs2")

	// The original index kept serving throughout.
	if res := searchVia(t, base, "docs", SearchRequest{Query: "alpha common", K: 10}); len(res.Hits) == 0 {
		t.Error("original index lost its results across the neighbour's lifecycle")
	}
}

// TestTenantEndpointsAndQuota exercises the tenant API end to end: register
// a tenant, namespace requests with X-SVR-Tenant, build a tenant index over
// a tenant table, hit the quota (429), and read the per-tenant stats slice.
func TestTenantEndpointsAndQuota(t *testing.T) {
	srv, base, _, _ := newTestServer(t)
	acme := map[string]string{"X-SVR-Tenant": "acme"}

	status, data := doJSON(t, http.MethodPost, base+"/v1/tenants", CreateTenantRequest{
		Name: "acme", MaxRows: 3,
	}, nil)
	if status != http.StatusCreated {
		t.Fatalf("create tenant status = %d, body %s", status, data)
	}
	status, data = doJSON(t, http.MethodPost, base+"/v1/tenants", CreateTenantRequest{Name: "a/b"}, nil)
	if status != http.StatusBadRequest {
		t.Errorf("invalid tenant name: status = %d, want 400 (body %s)", status, data)
	}

	// The tenant's table lives under its prefix; the spec for its index is
	// registered server-side like any other deployment-provided spec.
	if _, err := srv.engine.DB().CreateTable(relation.Schema{
		Name: "acme/Docs",
		Columns: []relation.Column{
			{Name: "id", Kind: relation.KindInt64},
			{Name: "body", Kind: relation.KindString},
			{Name: "val", Kind: relation.KindFloat64},
		},
	}); err != nil {
		t.Fatal(err)
	}
	srv.engine.RegisterSpec("acme-val", view.Spec{Components: []view.Component{view.OwnColumn("acme/Docs", "val")}})

	// tenantHits searches the tenant's index through the header-qualified
	// unprefixed name ({name} is a single path segment, so "acme/docs"
	// cannot travel in the URL).
	tenantHits := func() int {
		status, data := doJSON(t, http.MethodPost, base+"/v1/indexes/docs/search", SearchRequest{Query: "tenant", K: 10}, acme)
		if status != http.StatusOK {
			t.Fatalf("tenant search status = %d, body %s", status, data)
		}
		var sr SearchResponse
		if err := json.Unmarshal(data, &sr); err != nil {
			t.Fatal(err)
		}
		return len(sr.Hits)
	}

	// Unqualified names + the tenant header = the tenant's namespace.
	status, data = doJSON(t, http.MethodPost, base+"/v1/tables/Docs/rows", map[string]any{
		"rows": []map[string]any{
			{"id": 1, "body": "alpha tenant", "val": 10},
			{"id": 2, "body": "beta tenant", "val": 5},
		},
	}, acme)
	if status != http.StatusOK {
		t.Fatalf("tenant insert status = %d, body %s", status, data)
	}
	// Without the header the same path hits the shared Docs table — the two
	// namespaces must not bleed into each other.
	res := searchVia(t, base, "docs", SearchRequest{Query: "tenant", K: 10})
	if len(res.Hits) != 0 {
		t.Errorf("shared index sees %d tenant rows", len(res.Hits))
	}

	// Create the tenant's index through the API with the header qualifying
	// both the index and table names.
	status, data = doJSON(t, http.MethodPost, base+"/v1/indexes", CreateIndexRequest{
		Name: "docs", Table: "Docs", Column: "body", Spec: "acme-val",
	}, acme)
	if status != http.StatusCreated {
		t.Fatalf("tenant index create status = %d, body %s", status, data)
	}
	var cr CreateIndexResponse
	if err := json.Unmarshal(data, &cr); err != nil || cr.Name != "acme/docs" || cr.Table != "acme/Docs" {
		t.Fatalf("tenant index create response %s, want acme/-qualified names", data)
	}
	if n := tenantHits(); n != 2 {
		t.Fatalf("tenant search found %d hits, want its 2 rows", n)
	}

	// Quota: 2 of 3 rows used; a 2-row batch rejects atomically with 429.
	status, data = doJSON(t, http.MethodPost, base+"/v1/tables/Docs/rows", map[string]any{
		"rows": []map[string]any{
			{"id": 3, "body": "gamma tenant", "val": 1},
			{"id": 4, "body": "delta tenant", "val": 1},
		},
	}, acme)
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-quota insert status = %d, want 429 (body %s)", status, data)
	}
	if n := tenantHits(); n != 2 {
		t.Errorf("rejected batch partially applied: %d hits, want 2", n)
	}
	// The batch endpoint enforces the same quota.
	status, data = doJSON(t, http.MethodPost, base+"/v1/batch", map[string]any{
		"ops": []map[string]any{
			{"op": "insert", "table": "Docs", "row": map[string]any{"id": 5, "body": "x", "val": 1}},
			{"op": "insert", "table": "Docs", "row": map[string]any{"id": 6, "body": "y", "val": 1}},
		},
	}, acme)
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-quota batch status = %d, want 429 (body %s)", status, data)
	}
	// One row still fits; deletes always pass.
	status, data = doJSON(t, http.MethodPost, base+"/v1/batch", map[string]any{
		"ops": []map[string]any{{"op": "insert", "table": "Docs", "row": map[string]any{"id": 3, "body": "gamma tenant", "val": 1}}},
	}, acme)
	if status != http.StatusOK {
		t.Fatalf("final-slot insert status = %d (body %s)", status, data)
	}
	pk := int64(3)
	status, data = doJSON(t, http.MethodPost, base+"/v1/batch", BatchRequest{
		Ops: []BatchOp{{Op: "delete", Table: "Docs", PK: &pk}},
	}, acme)
	if status != http.StatusOK {
		t.Fatalf("delete at full quota status = %d (body %s)", status, data)
	}

	// GET /v1/tenants and the stats tenants slice agree on usage.
	var list struct {
		Tenants []TenantStatus `json:"tenants"`
	}
	if status := getJSON(t, base+"/v1/tenants", &list); status != http.StatusOK {
		t.Fatalf("list tenants status = %d", status)
	}
	if len(list.Tenants) != 1 || list.Tenants[0].Name != "acme" || list.Tenants[0].Rows != 2 || list.Tenants[0].MaxRows != 3 {
		t.Fatalf("tenant list = %+v, want acme with 2/3 rows", list.Tenants)
	}
	if list.Tenants[0].Bytes == 0 {
		t.Error("tenant byte usage is zero with rows present")
	}

	var stats struct {
		Tenants []struct {
			Name    string            `json:"name"`
			Rows    int64             `json:"rows"`
			Latency *EndpointSnapshot `json:"latency"`
		} `json:"tenants"`
	}
	if status := getJSON(t, base+"/v1/stats", &stats); status != http.StatusOK {
		t.Fatalf("stats status = %d", status)
	}
	if len(stats.Tenants) != 1 || stats.Tenants[0].Name != "acme" || stats.Tenants[0].Rows != 2 {
		t.Fatalf("stats tenants = %+v, want acme with 2 rows", stats.Tenants)
	}
	lat := stats.Tenants[0].Latency
	if lat == nil || lat.Count < 5 || lat.P99MS <= 0 {
		t.Errorf("per-tenant latency histogram = %+v, want the tenant's requests counted with percentiles", lat)
	}
}

// TestChangesStream subscribes to a table's change feed and checks inserts,
// updates and deletes arrive in commit order as NDJSON events.
func TestChangesStream(t *testing.T) {
	_, base, _, _ := newTestServer(t)

	// Validation first: missing and unknown table.
	status, data := doJSON(t, http.MethodGet, base+"/v1/changes", nil, nil)
	if status != http.StatusBadRequest {
		t.Errorf("missing table param: status = %d (body %s), want 400", status, data)
	}
	status, data = doJSON(t, http.MethodGet, base+"/v1/changes?table=Nope", nil, nil)
	if status != http.StatusNotFound {
		t.Fatalf("unknown table: status = %d, want 404", status)
	}
	assertNotFoundShape(t, data, "table", "Nope")

	resp, err := http.Get(base + "/v1/changes?table=Docs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}

	// Mutate while subscribed: one insert, one update, one delete.
	status, data = postJSON(t, base+"/v1/batch", map[string]any{
		"ops": []map[string]any{
			{"op": "insert", "table": "Docs", "row": map[string]any{"id": 50, "body": "streamed doc", "val": 7}},
			{"op": "update", "table": "Docs", "pk": 1, "set": map[string]any{"val": 99}},
			{"op": "delete", "table": "Docs", "pk": 4},
		},
	})
	if status != http.StatusOK {
		t.Fatalf("batch status = %d, body %s", status, data)
	}

	want := []struct {
		kind string
		pk   int64
	}{
		{"insert", 50},
		{"update", 1},
		{"delete", 4},
	}
	sc := bufio.NewScanner(resp.Body)
	deadline := time.AfterFunc(10*time.Second, func() { resp.Body.Close() })
	defer deadline.Stop()
	for i, w := range want {
		if !sc.Scan() {
			t.Fatalf("stream ended after %d events: %v", i, sc.Err())
		}
		var ev ChangeEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("event %d: bad NDJSON line %q: %v", i, sc.Text(), err)
		}
		if ev.Lagged {
			t.Fatalf("stream lagged during a 3-op test batch")
		}
		if ev.Table != "Docs" || ev.Kind != w.kind || ev.PK != w.pk {
			t.Errorf("event %d = %+v, want %s of pk %d", i, ev, w.kind, w.pk)
		}
		if w.kind == "insert" {
			if body, _ := ev.Row["body"].(string); body != "streamed doc" {
				t.Errorf("insert event row = %v, want the inserted body", ev.Row)
			}
		}
		if w.kind == "delete" && ev.Row != nil {
			t.Errorf("delete event carries a row: %v", ev.Row)
		}
	}
}
