package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"svrdb/internal/core"
	"svrdb/internal/relation"
	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
	"svrdb/internal/view"
)

// newTestServer builds a small engine (a Docs table whose SVR score is its
// own "val" column), starts a Server on an ephemeral port, and registers a
// cleanup that shuts it down.
func newTestServer(t *testing.T) (*Server, string, *core.TextIndex, *relation.Table) {
	t.Helper()
	db := relation.NewDB(buffer.MustNew(pagefile.MustNewMem(pagefile.DefaultPageSize), 4096))
	tbl, err := db.CreateTable(relation.Schema{
		Name: "Docs",
		Columns: []relation.Column{
			{Name: "id", Kind: relation.KindInt64},
			{Name: "body", Kind: relation.KindString},
			{Name: "val", Kind: relation.KindFloat64},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	docs := []struct {
		id   int64
		body string
		val  float64
	}{
		{1, "alpha beta common", 30},
		{2, "alpha gamma common", 20},
		{3, "alpha delta common", 10},
		{4, "beta delta rare", 5},
	}
	for _, d := range docs {
		if err := tbl.Insert(relation.Row{relation.Int(d.id), relation.Str(d.body), relation.Float(d.val)}); err != nil {
			t.Fatal(err)
		}
	}
	engine := core.NewEngine(db, core.Options{})
	// Registered (not just inline) so POST /v1/indexes can resolve it.
	engine.RegisterSpec("val", view.Spec{Components: []view.Component{view.OwnColumn("Docs", "val")}})
	ti, err := engine.CreateTextIndex("docs", "Docs", "body", core.IndexOptions{
		Method: core.MethodChunk,
		Spec:   view.Spec{Components: []view.Component{view.OwnColumn("Docs", "val")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(engine, Options{})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return srv, "http://" + addr, ti, tbl
}

// postJSON posts a body and returns the status plus decoded response bytes.
func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func getJSON(t *testing.T, url string, dst any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return resp.StatusCode
}

func TestSearchEndpointMatchesDirect(t *testing.T) {
	_, base, ti, _ := newTestServer(t)

	direct, err := ti.Search(core.SearchRequest{Query: "alpha common", K: 10, LoadRows: true})
	if err != nil {
		t.Fatal(err)
	}

	status, data := postJSON(t, base+"/v1/indexes/docs/search", SearchRequest{Query: "alpha common", K: 10, LoadRows: true})
	if status != http.StatusOK {
		t.Fatalf("search status = %d, body %s", status, data)
	}
	var got SearchResponse
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Hits) != len(direct.Hits) {
		t.Fatalf("HTTP search returned %d hits, direct %d", len(got.Hits), len(direct.Hits))
	}
	for i, h := range got.Hits {
		if h.PK != direct.Hits[i].PK || h.Score != direct.Hits[i].Score {
			t.Errorf("hit %d: HTTP (%d, %v) != direct (%d, %v)", i, h.PK, h.Score, direct.Hits[i].PK, direct.Hits[i].Score)
		}
		if h.Row == nil {
			t.Errorf("hit %d: load_rows set but no row returned", i)
			continue
		}
		if body, ok := h.Row["body"].(string); !ok || !strings.Contains(body, "common") {
			t.Errorf("hit %d: row body = %v, want the document text", i, h.Row["body"])
		}
	}
	if got.PostingsScanned != direct.PostingsScanned {
		t.Errorf("postings_scanned = %d, direct %d", got.PostingsScanned, direct.PostingsScanned)
	}

	// Terms form of the request matches the query form.
	status, data = postJSON(t, base+"/v1/indexes/docs/search", SearchRequest{Terms: []string{"alpha", "common"}, K: 10})
	if status != http.StatusOK {
		t.Fatalf("terms search status = %d, body %s", status, data)
	}
	var viaTerms SearchResponse
	if err := json.Unmarshal(data, &viaTerms); err != nil {
		t.Fatal(err)
	}
	if len(viaTerms.Hits) != len(direct.Hits) {
		t.Errorf("terms search returned %d hits, want %d", len(viaTerms.Hits), len(direct.Hits))
	}
}

func TestSearchValidation(t *testing.T) {
	_, base, _, _ := newTestServer(t)
	for _, tc := range []struct {
		name string
		url  string
		body string
		want int
	}{
		{"unknown index", base + "/v1/indexes/nope/search", `{"query":"alpha"}`, http.StatusNotFound},
		{"malformed body", base + "/v1/indexes/docs/search", `{"query":`, http.StatusBadRequest},
		{"unknown field", base + "/v1/indexes/docs/search", `{"qwery":"alpha"}`, http.StatusBadRequest},
		{"missing query", base + "/v1/indexes/docs/search", `{"k":5}`, http.StatusBadRequest},
		{"no indexable terms", base + "/v1/indexes/docs/search", `{"query":"!!!"}`, http.StatusBadRequest},
		{"negative k", base + "/v1/indexes/docs/search", `{"query":"alpha","k":-1}`, http.StatusBadRequest},
		{"huge k (OOM guard)", base + "/v1/indexes/docs/search", `{"query":"alpha","k":2000000000}`, http.StatusBadRequest},
		{"query and terms both set", base + "/v1/indexes/docs/search", `{"query":"alpha","terms":["beta"]}`, http.StatusBadRequest},
		{"trailing data", base + "/v1/indexes/docs/search", `{"query":"alpha"}{"query":"beta"}`, http.StatusBadRequest},
	} {
		resp, err := http.Post(tc.url, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d (body %s)", tc.name, resp.StatusCode, tc.want, data)
		}
		var er ErrorResponse
		if err := json.Unmarshal(data, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body %q is not an ErrorResponse", tc.name, data)
		}
	}
}

func TestInsertRowsThenSearch(t *testing.T) {
	_, base, _, _ := newTestServer(t)

	status, data := postJSON(t, base+"/v1/tables/Docs/rows", map[string]any{
		"rows": []map[string]any{
			{"id": 10, "body": "alpha zeta common", "val": 99.5},
			{"id": 11, "body": "zeta omega", "val": 50},
		},
	})
	if status != http.StatusOK {
		t.Fatalf("insert status = %d, body %s", status, data)
	}
	var ir InsertRowsResponse
	if err := json.Unmarshal(data, &ir); err != nil || ir.Inserted != 2 {
		t.Fatalf("insert response %s, want inserted=2", data)
	}

	status, data = postJSON(t, base+"/v1/indexes/docs/search", SearchRequest{Query: "zeta", K: 5})
	if status != http.StatusOK {
		t.Fatalf("search status = %d, body %s", status, data)
	}
	var sr SearchResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Hits) != 2 || sr.Hits[0].PK != 10 || sr.Hits[0].Score != 99.5 {
		t.Fatalf("search after insert = %+v, want docs 10 (score 99.5) and 11", sr.Hits)
	}

	// Validation: missing column, unknown table, duplicate key.
	status, _ = postJSON(t, base+"/v1/tables/Docs/rows", map[string]any{
		"rows": []map[string]any{{"id": 12, "val": 1}},
	})
	if status != http.StatusBadRequest {
		t.Errorf("missing column: status = %d, want 400", status)
	}
	status, _ = postJSON(t, base+"/v1/tables/Nope/rows", map[string]any{
		"rows": []map[string]any{{"id": 12}},
	})
	if status != http.StatusNotFound {
		t.Errorf("unknown table: status = %d, want 404", status)
	}
	status, _ = postJSON(t, base+"/v1/tables/Docs/rows", map[string]any{
		"rows": []map[string]any{{"id": 10, "body": "dup", "val": 1}},
	})
	if status != http.StatusConflict {
		t.Errorf("duplicate key: status = %d, want 409", status)
	}
}

func TestBatchEndpoint(t *testing.T) {
	_, base, ti, _ := newTestServer(t)

	// One batch: bump doc 3 to the top, delete doc 2, insert doc 20.
	status, data := postJSON(t, base+"/v1/batch", map[string]any{
		"ops": []map[string]any{
			{"op": "update", "table": "Docs", "pk": 3, "set": map[string]any{"val": 1000}},
			{"op": "delete", "table": "Docs", "pk": 2},
			{"op": "insert", "table": "Docs", "row": map[string]any{"id": 20, "body": "alpha common epsilon", "val": 500}},
		},
	})
	if status != http.StatusOK {
		t.Fatalf("batch status = %d, body %s", status, data)
	}
	var br BatchResponse
	if err := json.Unmarshal(data, &br); err != nil || br.Applied != 3 {
		t.Fatalf("batch response %s, want applied=3", data)
	}

	res, err := ti.Search(core.SearchRequest{Query: "alpha common", K: 10})
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := []int64{3, 20, 1}
	if len(res.Hits) != len(wantOrder) {
		t.Fatalf("after batch: %d hits (%+v), want %v", len(res.Hits), res.Hits, wantOrder)
	}
	for i, pk := range wantOrder {
		if res.Hits[i].PK != pk {
			t.Errorf("after batch: hit %d = doc %d, want %d", i, res.Hits[i].PK, pk)
		}
	}

	// A malformed op rejects the whole batch before anything applies.
	for name, batch := range map[string]map[string]any{
		"unknown op kind": {"ops": []map[string]any{
			{"op": "update", "table": "Docs", "pk": 1, "set": map[string]any{"val": 7}},
			{"op": "upsert", "table": "Docs", "pk": 1},
		}},
		"update without pk": {"ops": []map[string]any{
			{"op": "update", "table": "Docs", "pk": 1, "set": map[string]any{"val": 7}},
			{"op": "update", "table": "Docs", "set": map[string]any{"val": 8}},
		}},
		"delete without pk": {"ops": []map[string]any{
			{"op": "update", "table": "Docs", "pk": 1, "set": map[string]any{"val": 7}},
			{"op": "delete", "table": "Docs"},
		}},
	} {
		status, data := postJSON(t, base+"/v1/batch", batch)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body %s)", name, status, data)
		}
		if score, _, _ := ti.ScoreOf(1); score != 30 {
			t.Errorf("%s: rejected batch still applied: doc 1 score = %v, want 30", name, score)
		}
	}

	// An unknown table in a batch is the same 404 the rows endpoint gives.
	status, _ = postJSON(t, base+"/v1/batch", map[string]any{
		"ops": []map[string]any{{"op": "delete", "table": "Nope", "pk": 1}},
	})
	if status != http.StatusNotFound {
		t.Errorf("unknown table in batch: status = %d, want 404", status)
	}
}

func TestHealthzAndStats(t *testing.T) {
	_, base, _, _ := newTestServer(t)

	var health map[string]any
	if status := getJSON(t, base+"/healthz", &health); status != http.StatusOK {
		t.Fatalf("healthz status = %d", status)
	}
	if health["status"] != "ok" {
		t.Errorf("healthz = %v, want status ok", health)
	}

	// A few searches so the stats have something to show.
	for i := 0; i < 3; i++ {
		if status, data := postJSON(t, base+"/v1/indexes/docs/search", SearchRequest{Query: "alpha"}); status != http.StatusOK {
			t.Fatalf("search status = %d, body %s", status, data)
		}
	}

	var stats struct {
		Indexes map[string]struct {
			Method  string `json:"method"`
			Queries uint64 `json:"queries"`
		} `json:"indexes"`
		Pool      map[string]uint64  `json:"pool"`
		Pagefile  map[string]uint64  `json:"pagefile"`
		Endpoints []EndpointSnapshot `json:"endpoints"`
	}
	if status := getJSON(t, base+"/v1/stats", &stats); status != http.StatusOK {
		t.Fatalf("stats status = %d", status)
	}
	idx, ok := stats.Indexes["docs"]
	if !ok || idx.Method == "" || idx.Queries < 3 {
		t.Errorf("stats.indexes[docs] = %+v, want queries >= 3 and a method name", idx)
	}
	var search *EndpointSnapshot
	for i := range stats.Endpoints {
		if strings.Contains(stats.Endpoints[i].Route, "/search") {
			search = &stats.Endpoints[i]
		}
	}
	if search == nil || search.Count < 3 || search.QPS <= 0 || search.P99MS <= 0 {
		t.Errorf("search endpoint metrics = %+v, want count >= 3 with QPS and latency", search)
	}
	if stats.Pagefile["reads"] == 0 && stats.Pool["hits"] == 0 {
		t.Errorf("stats show no storage activity at all: pool=%v pagefile=%v", stats.Pool, stats.Pagefile)
	}
}

func TestUnmatchedRoutesReturnJSON(t *testing.T) {
	_, base, _, _ := newTestServer(t)
	for name, tc := range map[string]struct {
		method, url string
		want        int
	}{
		"unknown path":   {http.MethodGet, base + "/nope", http.StatusNotFound},
		"wrong method":   {http.MethodGet, base + "/v1/batch", http.StatusMethodNotAllowed},
		"mistyped route": {http.MethodPost, base + "/v1/index/docs/search", http.StatusNotFound},
	} {
		req, err := http.NewRequest(tc.method, tc.url, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", name, resp.StatusCode, tc.want)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: Content-Type = %q, want application/json", name, ct)
		}
		var er ErrorResponse
		if err := json.Unmarshal(data, &er); err != nil || er.Error == "" {
			t.Errorf("%s: body %q does not decode as an ErrorResponse", name, data)
		}
	}
}

func TestLoadGenerator(t *testing.T) {
	_, base, _, _ := newTestServer(t)
	queries := [][]string{{"alpha"}, {"common"}, {"beta"}}
	res, err := RunSearchLoad(nil, base, "docs", queries, 5, 2, 40)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 40 || res.QPS <= 0 || res.P99 < res.P50 || res.P50 <= 0 {
		t.Errorf("load result %+v: want 40 queries with sane QPS/latency stats", res)
	}
}

func TestMetricsRegistry(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 100; i++ {
		r.Observe("GET /x", 200, 2*time.Millisecond)
	}
	r.Observe("GET /x", 500, 2*time.Second)
	snaps := r.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("got %d snapshots, want 1", len(snaps))
	}
	s := snaps[0]
	if s.Count != 101 || s.Errors != 1 {
		t.Errorf("count=%d errors=%d, want 101/1", s.Count, s.Errors)
	}
	// p50 sits in the 2ms bucket (upper bound 4.096ms); p99 must reflect
	// the one 2s outlier's bucket only at p>100/101, so it stays near 4ms.
	if s.P50MS < 2 || s.P50MS > 5 {
		t.Errorf("p50 = %vms, want ~2-4ms", s.P50MS)
	}
	if s.P99MS > 10 {
		t.Errorf("p99 = %vms, want to exclude the single 2s outlier at this count", s.P99MS)
	}
	if s.AvgMS < 15 {
		t.Errorf("avg = %vms, want the outlier pulling it above ~20ms", s.AvgMS)
	}

	// A second outlier pushes the nearest-rank p99 index past the fast
	// bucket: the tail must now surface (ceil rounding — a floor would
	// still report the fast bucket).
	r.Observe("GET /x", 200, 2*time.Second)
	s = r.Snapshot()[0]
	if s.P99MS < 1000 {
		t.Errorf("p99 = %vms after 2/102 slow observations, want the ~2s tail bucket", s.P99MS)
	}
}
