package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// lifecycle is the HTTP serving skeleton shared by the single-engine Server
// and the shard Router: listener ownership, the draining fence, in-flight
// request accounting and the ordered graceful shutdown.  Both frontends
// differ only in what they put behind the fence (an engine's routes vs the
// scatter-gather routes) and what they close after the drain (the engine vs
// the shard backends), so the machinery lives here exactly once.
type lifecycle struct {
	readTimeout  time.Duration
	writeTimeout time.Duration

	// draining turns new requests away with 503 while shutdown waits for
	// in-flight ones; it is the HTTP analogue of the engine's close fence.
	draining atomic.Bool
	// inflightN counts requests inside the fence, so shutdown can drain
	// them even when the server does not own the listener (a caller
	// embedding the handler in its own http.Server) — http.Server.Shutdown
	// only covers the owned-listener path.  A mutex-guarded counter with an
	// idle signal, not a sync.WaitGroup: requests keep arriving (to be
	// 503'd) while the drain waits, and Add racing Wait from zero is
	// documented WaitGroup misuse that can panic.
	inflightMu sync.Mutex
	inflightN  int
	// inflightIdle, when non-nil, is closed by the request that drops the
	// counter to zero; shutdown installs it to wait for the drain.
	inflightIdle chan struct{}

	httpSrv  *http.Server
	listener net.Listener
	// serveDone closes when the accept loop exits; serveErr (valid after
	// the close) is nil on a clean ErrServerClosed exit.  Exposed through
	// done/serveError so a daemon can notice its accept loop dying instead
	// of serving nothing until an operator intervenes.
	serveDone chan struct{}
	serveErr  error

	closeOnce sync.Once
	closeErr  error
}

func newLifecycle(readTimeout, writeTimeout time.Duration) *lifecycle {
	return &lifecycle{
		readTimeout:  readTimeout,
		writeTimeout: writeTimeout,
		serveDone:    make(chan struct{}),
	}
}

// fence wraps root with the in-flight counter and the draining 503 fence.
func (l *lifecycle) fence(root http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Count before the fence check: a request that passes the check is
		// always visible to shutdown's drain wait.
		l.inflightMu.Lock()
		l.inflightN++
		l.inflightMu.Unlock()
		defer func() {
			l.inflightMu.Lock()
			l.inflightN--
			if l.inflightN == 0 && l.inflightIdle != nil {
				close(l.inflightIdle)
				l.inflightIdle = nil
			}
			l.inflightMu.Unlock()
		}()
		if l.draining.Load() {
			writeError(w, http.StatusServiceUnavailable, errors.New("server is draining"))
			return
		}
		root.ServeHTTP(w, r)
	})
}

// start listens on addr and serves handler in a background goroutine,
// returning the bound address.
func (l *lifecycle) start(addr string, handler http.Handler) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	l.listener = ln
	l.httpSrv = &http.Server{
		Handler:      handler,
		ReadTimeout:  l.readTimeout,
		WriteTimeout: l.writeTimeout,
	}
	go func() {
		err := l.httpSrv.Serve(ln)
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			l.serveErr = err
		}
		close(l.serveDone)
	}()
	return ln.Addr().String(), nil
}

// done closes when the accept loop has exited — after shutdown, or early if
// Serve failed.
func (l *lifecycle) done() <-chan struct{} { return l.serveDone }

// isDraining reports whether shutdown has begun; long-lived streaming
// handlers poll it so an open stream ends promptly instead of holding the
// handler drain until its context deadline.
func (l *lifecycle) isDraining() bool { return l.draining.Load() }

// serveError reports why the accept loop exited; it is meaningful once
// done is closed and nil for a clean shutdown.
func (l *lifecycle) serveError() error { return l.serveErr }

// shutdown drains and closes, in the order that keeps every response whole:
//
//  1. the draining fence flips — requests arriving from here on get a
//     clean 503 without touching the backend;
//  2. http.Server.Shutdown stops the listener and waits (up to ctx) for
//     in-flight handlers to finish writing their responses;
//  3. closer runs — Engine.Close for the single-engine server, the health
//     checker stop plus backend closes for the router.
//
// shutdown is idempotent; concurrent and repeated calls return the first
// call's result.
func (l *lifecycle) shutdown(ctx context.Context, closer func() error) error {
	l.closeOnce.Do(func() {
		l.draining.Store(true)
		var errs []error
		if l.listener != nil {
			if err := l.httpSrv.Shutdown(ctx); err != nil {
				errs = append(errs, fmt.Errorf("server: http shutdown: %w", err))
			}
			<-l.serveDone
			if l.serveErr != nil {
				errs = append(errs, fmt.Errorf("server: serve: %w", l.serveErr))
			}
		}
		// Drain the handlers themselves (covers the embedded-handler case,
		// where no owned http.Server waits for them).  Requests arriving
		// during the wait only run the 503 fence path, so the one
		// zero-crossing signal suffices.  If ctx expires first, closer
		// proceeds anyway: stragglers then hit the backend's close fence
		// and return a clean 503, never a torn response.
		l.inflightMu.Lock()
		var drained chan struct{}
		if l.inflightN > 0 {
			drained = make(chan struct{})
			l.inflightIdle = drained
		}
		l.inflightMu.Unlock()
		if drained != nil {
			select {
			case <-drained:
			case <-ctx.Done():
				errs = append(errs, fmt.Errorf("server: handler drain: %w", ctx.Err()))
			}
		}
		if err := closer(); err != nil {
			errs = append(errs, err)
		}
		l.closeErr = errors.Join(errs...)
	})
	return l.closeErr
}
