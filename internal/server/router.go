package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"svrdb/internal/core"
	"svrdb/internal/topk"
)

// Router serves the single-node HTTP API over a set of shard backends.
// Writes are routed: each row lives on exactly one shard, chosen by a
// partitioner over the row's routing key.  Searches scatter to every
// healthy shard and gather through the same top-k merge discipline the
// engine uses internally, with one extra wrinkle for TF-IDF: document
// frequencies are collected from all shards first and the summed totals are
// pinned into each shard's request, so sharded ranking is byte-identical to
// a single engine holding all the data (see core.ScatterSearch for the
// in-process equivalent and the full argument).
//
// Availability beats completeness on the read path: a dead shard removes
// its documents from the result and sets "partial": true, it does not fail
// the search.  The write path is the opposite — a write for a dead shard's
// key fails loudly, because silently rerouting it would strand the row
// where reads will never look.
type Router struct {
	backends []Backend
	part     core.Partitioner
	opts     RouterOptions
	metrics  *Registry
	mux      *http.ServeMux
	life     *lifecycle

	// health[i] tracks backends[i]; flipped by the prober and by search
	// failures, read lock-free on every request.
	health []shardHealth

	// stop ends the health prober; wg waits it out during shutdown.
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// schemas caches table schemas fetched from shards.  Tables are created
	// at load time and never altered over this API, so the cache cannot go
	// stale within a router's lifetime.
	schemaMu sync.Mutex
	schemas  map[string]*SchemaResponse
}

type shardHealth struct {
	up atomic.Bool
	// errMu guards lastErr, the human-readable reason the shard is down.
	errMu   sync.Mutex
	lastErr string
}

// RouterOptions configures a Router.
type RouterOptions struct {
	// ReadTimeout and WriteTimeout bound request parsing and response
	// writing when the router owns the listener (Start).
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// ShardTimeout bounds every per-shard sub-request; zero means 10s.  A
	// shard slower than this is treated exactly like a dead one: excluded,
	// result marked partial.
	ShardTimeout time.Duration
	// HealthInterval is the probe period; zero means 500ms.
	HealthInterval time.Duration
	// Partitioner names a registered partitioner; empty means the default.
	// It must match the partitioner the shard data was loaded with.
	Partitioner string
	// RoutingColumns overrides the routing column per table (default: the
	// table's first column, the primary key).  It must match the placement
	// used at load time.
	RoutingColumns map[string]string
}

const (
	defaultShardTimeout   = 10 * time.Second
	defaultHealthInterval = 500 * time.Millisecond
)

// NewRouter builds a router over the given shard backends.  Backend order
// is the shard numbering: backends[i] must hold exactly the keys the
// partitioner maps to shard i of len(backends).
func NewRouter(backends []Backend, opts RouterOptions) (*Router, error) {
	if len(backends) == 0 {
		return nil, errors.New("server: router needs at least one backend")
	}
	part, err := core.PartitionerByName(opts.Partitioner)
	if err != nil {
		return nil, err
	}
	if opts.ShardTimeout <= 0 {
		opts.ShardTimeout = defaultShardTimeout
	}
	if opts.HealthInterval <= 0 {
		opts.HealthInterval = defaultHealthInterval
	}
	rt := &Router{
		backends: backends,
		part:     part,
		opts:     opts,
		metrics:  NewRegistry(),
		mux:      http.NewServeMux(),
		life:     newLifecycle(opts.ReadTimeout, opts.WriteTimeout),
		health:   make([]shardHealth, len(backends)),
		stop:     make(chan struct{}),
		schemas:  map[string]*SchemaResponse{},
	}
	// Start optimistic: every shard is presumed up until a probe or a
	// request says otherwise, so the first requests after boot are not
	// spuriously partial while the prober warms up.
	for i := range rt.health {
		rt.health[i].up.Store(true)
	}
	rt.routes()
	rt.wg.Add(1)
	go rt.probeLoop()
	return rt, nil
}

// Metrics returns the router's endpoint metrics registry.
func (rt *Router) Metrics() *Registry { return rt.metrics }

// Backends returns the router's shard backends in shard order.
func (rt *Router) Backends() []Backend { return rt.backends }

// Handler returns the router's root handler behind the draining fence, for
// embedding in an external listener.
func (rt *Router) Handler() http.Handler {
	return rt.life.fence(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		jw := &jsonErrorWriter{ResponseWriter: w}
		start := time.Now()
		rt.mux.ServeHTTP(jw, r)
		if jw.rewrote {
			rt.metrics.Observe("(unmatched)", jw.status, time.Since(start))
		}
	}))
}

// Start listens on addr and serves in a background goroutine, returning the
// bound address.
func (rt *Router) Start(addr string) (string, error) {
	return rt.life.start(addr, rt.Handler())
}

// Done closes when the accept loop has exited.
func (rt *Router) Done() <-chan struct{} { return rt.life.done() }

// ServeErr reports why the accept loop exited; meaningful once Done closes.
func (rt *Router) ServeErr() error { return rt.life.serveError() }

// Shutdown drains in-flight requests, stops the health prober and closes
// every backend.  Idempotent like Server.Shutdown.
func (rt *Router) Shutdown(ctx context.Context) error {
	return rt.life.shutdown(ctx, func() error {
		rt.stopOnce.Do(func() { close(rt.stop) })
		rt.wg.Wait()
		var errs []error
		for _, b := range rt.backends {
			if err := b.Close(); err != nil {
				errs = append(errs, fmt.Errorf("server: backend %s close: %w", b.Label(), err))
			}
		}
		return errors.Join(errs...)
	})
}

// --- health ----------------------------------------------------------------------

func (rt *Router) probeLoop() {
	defer rt.wg.Done()
	ticker := time.NewTicker(rt.opts.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-ticker.C:
			rt.probeAll()
		}
	}
}

func (rt *Router) probeAll() {
	ctx, cancel := context.WithTimeout(context.Background(), rt.opts.ShardTimeout)
	defer cancel()
	var wg sync.WaitGroup
	for i := range rt.backends {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := rt.backends[i].Health(ctx); err != nil {
				rt.markDown(i, err)
			} else {
				rt.markUp(i)
			}
		}(i)
	}
	wg.Wait()
}

func (rt *Router) markDown(i int, err error) {
	rt.health[i].up.Store(false)
	rt.health[i].errMu.Lock()
	rt.health[i].lastErr = err.Error()
	rt.health[i].errMu.Unlock()
}

// noteShardErr marks a shard down only for failures that say the shard
// itself is unhealthy: transport errors and 5xx responses.  A 4xx means the
// shard answered — it just rejected the request (unknown index, bad query) —
// and marking it down would eject every healthy shard the first time a
// client typos an index name.
func (rt *Router) noteShardErr(i int, err error) {
	var be *backendError
	if errors.As(err, &be) && be.status < 500 {
		return
	}
	rt.markDown(i, err)
}

func (rt *Router) markUp(i int) {
	rt.health[i].up.Store(true)
	rt.health[i].errMu.Lock()
	rt.health[i].lastErr = ""
	rt.health[i].errMu.Unlock()
}

// healthyShards returns the indices of shards currently believed up.
func (rt *Router) healthyShards() []int {
	idxs := make([]int, 0, len(rt.backends))
	for i := range rt.backends {
		if rt.health[i].up.Load() {
			idxs = append(idxs, i)
		}
	}
	return idxs
}

// --- routes ----------------------------------------------------------------------

func (rt *Router) routes() {
	register := func(pattern string, h http.HandlerFunc) {
		rt.mux.HandleFunc(pattern, rt.metrics.instrument(pattern, h))
	}
	register("GET /healthz", rt.handleHealthz)
	register("GET /v1/stats", rt.handleStats)
	register("GET /v1/tables/{name}/schema", rt.handleSchema)
	register("POST /v1/indexes", rt.handleCreateIndex)
	register("DELETE /v1/indexes/{name}", rt.handleDropIndex)
	register("POST /v1/indexes/{name}/search", rt.handleSearch)
	register("POST /v1/indexes/{name}/termstats", rt.handleTermStats)
	register("POST /v1/tables/{name}/rows", rt.handleInsertRows)
	register("POST /v1/batch", rt.handleBatch)
	register("POST /v1/tenants", rt.handleCreateTenant)
	register("GET /v1/changes", rt.handleChanges)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	shards := make([]map[string]any, len(rt.backends))
	healthy := 0
	for i, b := range rt.backends {
		up := rt.health[i].up.Load()
		if up {
			healthy++
		}
		entry := map[string]any{"shard": i, "label": b.Label(), "healthy": up}
		rt.health[i].errMu.Lock()
		if rt.health[i].lastErr != "" {
			entry["error"] = rt.health[i].lastErr
		}
		rt.health[i].errMu.Unlock()
		shards[i] = entry
	}
	status := "ok"
	code := http.StatusOK
	switch {
	case healthy == 0:
		// Nothing can be served; tell load balancers to stop sending.
		status = "down"
		code = http.StatusServiceUnavailable
	case healthy < len(rt.backends):
		// Still serving (partial results), but an operator should look.
		status = "degraded"
	}
	writeJSON(w, code, map[string]any{
		"status":         status,
		"mode":           "router",
		"uptime_seconds": rt.metrics.Uptime().Seconds(),
		"shards":         shards,
		"healthy_shards": healthy,
	})
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), rt.opts.ShardTimeout)
	defer cancel()
	perShard := make([]map[string]any, len(rt.backends))
	var wg sync.WaitGroup
	for i := range rt.backends {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := rt.backends[i].Stats(ctx)
			if err != nil {
				perShard[i] = map[string]any{"error": err.Error()}
				return
			}
			perShard[i] = st
		}(i)
	}
	wg.Wait()
	shards := map[string]any{}
	totals := map[string]any{}
	healthy := 0
	for i, b := range rt.backends {
		if rt.health[i].up.Load() {
			healthy++
		}
		shards[fmt.Sprintf("shard-%d (%s)", i, b.Label())] = perShard[i]
		if _, failed := perShard[i]["error"]; !failed {
			mergeStatsInto(totals, perShard[i])
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_seconds": rt.metrics.Uptime().Seconds(),
		"cluster": map[string]any{
			"shards":         len(rt.backends),
			"healthy_shards": healthy,
			"partitioner":    rt.part.Name(),
		},
		"totals":    totals,
		"shards":    shards,
		"endpoints": rt.metrics.Snapshot(),
	})
}

// mergeStatsInto recursively sums src's numeric leaves into dst, so the
// router's "totals" section aggregates every per-shard counter map without
// enumerating the schema.  Non-numeric leaves (method names) keep the first
// shard's value; per-node keys that are not cluster-summable (uptime,
// endpoint latency snapshots) are skipped.
func mergeStatsInto(dst, src map[string]any) {
	for key, sv := range src {
		if key == "uptime_seconds" || key == "endpoints" {
			continue
		}
		switch sv := sv.(type) {
		case map[string]any:
			sub, ok := dst[key].(map[string]any)
			if !ok {
				sub = map[string]any{}
				dst[key] = sub
			}
			mergeStatsInto(sub, sv)
		default:
			if n, ok := toFloat(sv); ok {
				prev, _ := toFloat(dst[key])
				dst[key] = prev + n
			} else if _, exists := dst[key]; !exists {
				dst[key] = sv
			}
		}
	}
}

// toFloat widens any numeric stats value: in-process payloads carry typed
// ints, HTTP payloads decode to float64 or json.Number.
func toFloat(v any) (float64, bool) {
	switch v := v.(type) {
	case float64:
		return v, true
	case int:
		return float64(v), true
	case int64:
		return float64(v), true
	case uint64:
		return float64(v), true
	case json.Number:
		f, err := v.Float64()
		return f, err == nil
	default:
		return 0, false
	}
}

func (rt *Router) handleSchema(w http.ResponseWriter, r *http.Request) {
	schema, err := rt.tableSchema(r.Context(), r.PathValue("name"))
	if err != nil {
		writeError(w, httpStatusOf(err), err)
		return
	}
	writeJSON(w, http.StatusOK, schema)
}

// tableSchema resolves (and caches) a table's schema from the first healthy
// shard; every shard holds the same schema, only different rows.
func (rt *Router) tableSchema(ctx context.Context, table string) (*SchemaResponse, error) {
	rt.schemaMu.Lock()
	cached := rt.schemas[table]
	rt.schemaMu.Unlock()
	if cached != nil {
		return cached, nil
	}
	idxs := rt.healthyShards()
	if len(idxs) == 0 {
		return nil, &backendError{status: http.StatusServiceUnavailable, msg: "router: no healthy shards"}
	}
	var firstErr error
	for _, i := range idxs {
		schema, err := rt.backends[i].Schema(ctx, table)
		if err == nil {
			rt.schemaMu.Lock()
			rt.schemas[table] = schema
			rt.schemaMu.Unlock()
			return schema, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, firstErr
}

// --- search ----------------------------------------------------------------------

func (rt *Router) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	query, err := normalizeQuery(req.Query, req.Terms)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	k, err := boundSearchK(req.K)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Forward a canonical request: one query string and an explicit k, so
	// every shard tokenizes identically and the merge heap matches theirs.
	req.Query, req.Terms, req.K = query, nil, k
	resp, err := rt.scatterSearch(r.Context(), r.PathValue("name"), req)
	if err != nil {
		writeError(w, httpStatusOf(err), err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// scatterSearch fans a search out to every healthy shard and merges the
// top-k.  Correctness leans on two invariants: each document lives on
// exactly one shard, so the global top-k is a subset of the union of local
// top-ks; and when TF-IDF is in play the gather phase pins cluster-wide
// document frequencies into every shard's request, so per-shard scores are
// the scores a single engine would have computed and merging reduces to the
// usual deterministic heap order (score desc, then primary key asc).
func (rt *Router) scatterSearch(ctx context.Context, index string, req SearchRequest) (*SearchResponse, error) {
	idxs := rt.healthyShards()
	if len(idxs) == 0 {
		return nil, &backendError{status: http.StatusServiceUnavailable, msg: "router: no healthy shards"}
	}
	partial := len(idxs) < len(rt.backends)
	ctx, cancel := context.WithTimeout(ctx, rt.opts.ShardTimeout)
	defer cancel()

	// Gather phase: sum per-shard document frequencies so each shard ranks
	// with collection-global IDF.  Only TF-IDF ranking consults collection
	// statistics; plain SVR-score ranking skips the extra round-trip.
	if req.WithTermScores && req.Global == nil {
		stats := make([]*TermStatsResponse, len(idxs))
		errs := make([]error, len(idxs))
		var wg sync.WaitGroup
		for j, i := range idxs {
			wg.Add(1)
			go func(j, i int) {
				defer wg.Done()
				stats[j], errs[j] = rt.backends[i].TermStats(ctx, index, req.Query)
			}(j, i)
		}
		wg.Wait()
		global := &GlobalStats{}
		alive := idxs[:0]
		var firstErr error
		for j, i := range idxs {
			if errs[j] != nil {
				// A shard that cannot answer the gather cannot score
				// consistently either; drop it from the scatter too.
				rt.noteShardErr(i, errs[j])
				partial = true
				if firstErr == nil {
					firstErr = errs[j]
				}
				continue
			}
			if global.DF == nil {
				global.DF = make([]int64, len(stats[j].DF))
			} else if len(stats[j].DF) != len(global.DF) {
				// Shards disagree on the query's term list — an analyzer
				// mismatch.  Global IDF would be garbage; fail loudly.
				return nil, fmt.Errorf("router: shard %s analyzed %d terms, others %d (analyzer mismatch?)",
					rt.backends[i].Label(), len(stats[j].DF), len(global.DF))
			}
			global.NumDocs += stats[j].NumDocs
			for t, df := range stats[j].DF {
				global.DF[t] += df
			}
			alive = append(alive, i)
		}
		if len(alive) == 0 {
			return nil, firstErr
		}
		idxs = alive
		req.Global = global
	}

	// Scatter phase.
	results := make([]*SearchResponse, len(idxs))
	errs := make([]error, len(idxs))
	var wg sync.WaitGroup
	for j, i := range idxs {
		wg.Add(1)
		go func(j, i int) {
			defer wg.Done()
			results[j], errs[j] = rt.backends[i].Search(ctx, index, req)
		}(j, i)
	}
	wg.Wait()

	// Gather: merge local top-ks through the same heap the engine's own
	// rankers use, so cross-shard ties break identically (score desc, pk
	// asc).  Each pk exists on exactly one shard, so no dedup is needed —
	// byPK only carries each hit's row payload across the heap.
	heap := topk.New(req.K)
	byPK := make(map[int64]SearchHit)
	merged := &SearchResponse{}
	succeeded := 0
	var firstErr error
	for j, i := range idxs {
		if errs[j] != nil {
			rt.noteShardErr(i, errs[j])
			partial = true
			if firstErr == nil {
				firstErr = errs[j]
			}
			continue
		}
		succeeded++
		res := results[j]
		merged.PostingsScanned += res.PostingsScanned
		merged.Stopped = merged.Stopped || res.Stopped
		partial = partial || res.Partial
		for _, h := range res.Hits {
			if heap.Add(h.PK, h.Score) {
				byPK[h.PK] = h
			}
		}
	}
	if succeeded == 0 {
		if firstErr != nil {
			return nil, firstErr
		}
		return nil, &backendError{status: http.StatusServiceUnavailable, msg: "router: no shard answered"}
	}
	ranked := heap.Results()
	merged.Hits = make([]SearchHit, len(ranked))
	for i, r := range ranked {
		hit := byPK[r.Doc]
		hit.Score = r.Score
		merged.Hits[i] = hit
	}
	merged.Partial = partial
	return merged, nil
}

func (rt *Router) handleTermStats(w http.ResponseWriter, r *http.Request) {
	var req TermStatsRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	query, err := normalizeQuery(req.Query, req.Terms)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	idxs := rt.healthyShards()
	if len(idxs) == 0 {
		writeError(w, http.StatusServiceUnavailable, errors.New("router: no healthy shards"))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), rt.opts.ShardTimeout)
	defer cancel()
	index := r.PathValue("name")
	stats := make([]*TermStatsResponse, len(idxs))
	errs := make([]error, len(idxs))
	var wg sync.WaitGroup
	for j, i := range idxs {
		wg.Add(1)
		go func(j, i int) {
			defer wg.Done()
			stats[j], errs[j] = rt.backends[i].TermStats(ctx, index, query)
		}(j, i)
	}
	wg.Wait()
	total := TermStatsResponse{}
	succeeded := 0
	var firstErr error
	for j, i := range idxs {
		if errs[j] != nil {
			rt.noteShardErr(i, errs[j])
			if firstErr == nil {
				firstErr = errs[j]
			}
			continue
		}
		if total.DF == nil {
			total.DF = make([]int64, len(stats[j].DF))
		} else if len(stats[j].DF) != len(total.DF) {
			writeError(w, http.StatusInternalServerError,
				fmt.Errorf("router: shard %s analyzed %d terms, others %d (analyzer mismatch?)",
					rt.backends[i].Label(), len(stats[j].DF), len(total.DF)))
			return
		}
		total.NumDocs += stats[j].NumDocs
		for t, df := range stats[j].DF {
			total.DF[t] += df
		}
		succeeded++
	}
	if succeeded == 0 {
		writeError(w, httpStatusOf(firstErr), firstErr)
		return
	}
	writeJSON(w, http.StatusOK, total)
}

// --- writes ----------------------------------------------------------------------

// routingColumn resolves which column routes a table's rows: the configured
// override, or the first column (the primary key).
func (rt *Router) routingColumn(schema *SchemaResponse) (string, error) {
	if col, ok := rt.opts.RoutingColumns[schema.Table]; ok {
		for _, c := range schema.Columns {
			if c.Name == col {
				if c.Kind != "int64" {
					return "", &backendError{
						status: http.StatusInternalServerError,
						msg:    fmt.Sprintf("router: routing column %q of table %q is %s, need int64", col, schema.Table, c.Kind),
					}
				}
				return col, nil
			}
		}
		return "", &backendError{
			status: http.StatusInternalServerError,
			msg:    fmt.Sprintf("router: routing column %q not in table %q", col, schema.Table),
		}
	}
	if len(schema.Columns) == 0 {
		return "", &backendError{status: http.StatusInternalServerError, msg: fmt.Sprintf("router: table %q has no columns", schema.Table)}
	}
	return schema.Columns[0].Name, nil
}

// routingKey extracts a row's routing value from its JSON object.
func routingKey(obj map[string]json.RawMessage, col string) (int64, error) {
	raw, ok := obj[col]
	if !ok {
		return 0, fmt.Errorf("missing routing column %q", col)
	}
	var n json.Number
	if err := json.Unmarshal(raw, &n); err != nil {
		return 0, fmt.Errorf("routing column %q: want an integer: %w", col, err)
	}
	v, err := n.Int64()
	if err != nil {
		return 0, fmt.Errorf("routing column %q: want an integer: %w", col, err)
	}
	return v, nil
}

// shardFor returns the owning shard for a routing key, failing if that
// shard is currently down: a write must reach its owner or fail loudly,
// never land elsewhere.
func (rt *Router) shardFor(key int64) (int, error) {
	i := rt.part.Shard(key, len(rt.backends))
	if !rt.health[i].up.Load() {
		return 0, &backendError{
			status: http.StatusServiceUnavailable,
			msg:    fmt.Sprintf("router: shard %d (%s) owning key %d is down", i, rt.backends[i].Label(), key),
		}
	}
	return i, nil
}

func (rt *Router) handleInsertRows(w http.ResponseWriter, r *http.Request) {
	var req InsertRowsRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Rows) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("\"rows\" must be a non-empty array"))
		return
	}
	table := r.PathValue("name")
	ctx, cancel := context.WithTimeout(r.Context(), rt.opts.ShardTimeout)
	defer cancel()
	schema, err := rt.tableSchema(ctx, table)
	if err != nil {
		writeError(w, httpStatusOf(err), err)
		return
	}
	col, err := rt.routingColumn(schema)
	if err != nil {
		writeError(w, httpStatusOf(err), err)
		return
	}
	perShard := map[int][]map[string]json.RawMessage{}
	for i, obj := range req.Rows {
		key, err := routingKey(obj, col)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("row %d: %w", i, err))
			return
		}
		shard, err := rt.shardFor(key)
		if err != nil {
			writeError(w, httpStatusOf(err), fmt.Errorf("row %d: %w", i, err))
			return
		}
		perShard[shard] = append(perShard[shard], obj)
	}
	// Per-shard sub-batches run in parallel; there is no cross-shard
	// transaction, so on failure the error names the shard and rows on
	// other shards may already be in (same applied-up-to contract as the
	// single-node batch endpoint).
	if err := rt.fanOutWrites(ctx, perShard, func(shard int, rows []map[string]json.RawMessage) error {
		return rt.backends[shard].InsertRows(ctx, table, rows)
	}); err != nil {
		writeError(w, httpStatusOf(err), err)
		return
	}
	writeJSON(w, http.StatusOK, InsertRowsResponse{Inserted: len(req.Rows)})
}

// fanOutWrites runs one write call per involved shard in parallel and joins
// failures.
func (rt *Router) fanOutWrites(ctx context.Context, perShard map[int][]map[string]json.RawMessage, call func(shard int, rows []map[string]json.RawMessage) error) error {
	var wg sync.WaitGroup
	errsMu := sync.Mutex{}
	var errs []error
	for shard, rows := range perShard {
		wg.Add(1)
		go func(shard int, rows []map[string]json.RawMessage) {
			defer wg.Done()
			if err := call(shard, rows); err != nil {
				errsMu.Lock()
				errs = append(errs, fmt.Errorf("shard %d: %w", shard, err))
				errsMu.Unlock()
			}
		}(shard, rows)
	}
	wg.Wait()
	return errors.Join(errs...)
}

func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Ops) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("\"ops\" must be a non-empty array"))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), rt.opts.ShardTimeout)
	defer cancel()
	// Route each op: inserts and pk-routed tables go straight to the owning
	// shard; an update/delete on a table routed by a non-pk column is
	// broadcast to every shard with ignore_missing — only the owner has the
	// row, and the Matched totals verify afterwards that some shard did.
	perShard := map[int][]BatchOp{}
	broadcasts := 0
	for i, op := range req.Ops {
		schema, err := rt.tableSchema(ctx, op.Table)
		if err != nil {
			writeError(w, httpStatusOf(err), fmt.Errorf("op %d: %w", i, err))
			return
		}
		col, err := rt.routingColumn(schema)
		if err != nil {
			writeError(w, httpStatusOf(err), fmt.Errorf("op %d: %w", i, err))
			return
		}
		switch op.Op {
		case "insert":
			if op.Row == nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("op %d: insert requires \"row\"", i))
				return
			}
			key, err := routingKey(op.Row, col)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("op %d: %w", i, err))
				return
			}
			shard, err := rt.shardFor(key)
			if err != nil {
				writeError(w, httpStatusOf(err), fmt.Errorf("op %d: %w", i, err))
				return
			}
			perShard[shard] = append(perShard[shard], op)
		case "update", "delete":
			if op.PK == nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("op %d: %s requires \"pk\"", i, op.Op))
				return
			}
			if col == schema.Columns[0].Name {
				shard, err := rt.shardFor(*op.PK)
				if err != nil {
					writeError(w, httpStatusOf(err), fmt.Errorf("op %d: %w", i, err))
					return
				}
				perShard[shard] = append(perShard[shard], op)
				break
			}
			// Routed by a non-pk column the op does not carry: broadcast.
			bop := op
			bop.IgnoreMissing = true
			broadcasts++
			for shard := range rt.backends {
				if !rt.health[shard].up.Load() {
					writeError(w, http.StatusServiceUnavailable,
						fmt.Errorf("op %d: broadcast needs every shard, shard %d (%s) is down", i, shard, rt.backends[shard].Label()))
					return
				}
				perShard[shard] = append(perShard[shard], bop)
			}
		default:
			writeError(w, http.StatusBadRequest, fmt.Errorf("op %d: unknown op %q (want insert, update or delete)", i, op.Op))
			return
		}
	}
	matched := atomic.Int64{}
	var wg sync.WaitGroup
	errsMu := sync.Mutex{}
	var errs []error
	for shard, ops := range perShard {
		wg.Add(1)
		go func(shard int, ops []BatchOp) {
			defer wg.Done()
			resp, err := rt.backends[shard].Batch(ctx, ops)
			if err != nil {
				errsMu.Lock()
				errs = append(errs, fmt.Errorf("shard %d: %w", shard, err))
				errsMu.Unlock()
				return
			}
			matched.Add(int64(resp.Matched))
		}(shard, ops)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		writeError(w, httpStatusOf(err), err)
		return
	}
	// Every routed op matched (or its shard's batch would have failed) and
	// every broadcast op should have matched on exactly its owner, so a
	// shortfall means some broadcast op's row exists on no shard at all.
	if int(matched.Load()) < len(req.Ops) {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("router: %d op(s) matched no shard (row not found)", len(req.Ops)-int(matched.Load())))
		return
	}
	writeJSON(w, http.StatusOK, BatchResponse{Applied: len(req.Ops), Matched: int(matched.Load())})
}

// --- index & tenant lifecycle ------------------------------------------------------

// requireAllShards verifies that every shard is currently healthy; index and
// tenant lifecycle operations fan out to the whole cluster, and running one
// with a shard missing would leave that shard permanently inconsistent with
// the rest (searches scatter to every shard, so a shard without the index
// would fail every query against it).
func (rt *Router) requireAllShards() error {
	for i := range rt.backends {
		if !rt.health[i].up.Load() {
			return &backendError{
				status: http.StatusServiceUnavailable,
				msg: fmt.Sprintf("router: lifecycle operation needs every shard, shard %d (%s) is down",
					i, rt.backends[i].Label()),
			}
		}
	}
	return nil
}

// fanOutLifecycle runs call on every shard in parallel and joins failures.
func (rt *Router) fanOutLifecycle(call func(shard int) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(rt.backends))
	for i := range rt.backends {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := call(i); err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// handleCreateIndex fans an online index build out to every shard.  Each
// shard backfills from its own slice of the data; searches scattering during
// the build cleanly miss on shards that have not published yet and observe
// the fully backfilled index afterwards.  There is no cross-shard
// transaction: a failed shard leaves the name existing on some shards only,
// and the error names which — re-issuing the create is safe on shards where
// it already exists (409) and completes the rest.
func (rt *Router) handleCreateIndex(w http.ResponseWriter, r *http.Request) {
	var req CreateIndexRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req.Name = qualifyName(r, req.Name)
	req.Table = qualifyName(r, req.Table)
	if err := rt.requireAllShards(); err != nil {
		writeError(w, httpStatusOf(err), err)
		return
	}
	// No per-shard timeout here: a backfill over a large shard legitimately
	// takes longer than a search round-trip, so only the client's own
	// context bounds it.
	if err := rt.fanOutLifecycle(func(shard int) error {
		return rt.backends[shard].CreateIndex(r.Context(), req)
	}); err != nil {
		writeError(w, httpStatusOf(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, CreateIndexResponse{
		Name:   req.Name,
		Table:  req.Table,
		Column: req.Column,
		Method: req.Method,
	})
}

// handleDropIndex fans an index drop out to every shard.  A shard that no
// longer has the index reports not_found, which the drop treats as success
// on that shard (drops are idempotent); only if every shard misses does the
// router answer 404.
func (rt *Router) handleDropIndex(w http.ResponseWriter, r *http.Request) {
	name := qualifyName(r, r.PathValue("name"))
	if err := rt.requireAllShards(); err != nil {
		writeError(w, httpStatusOf(err), err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), rt.opts.ShardTimeout)
	defer cancel()
	missing := atomic.Int64{}
	err := rt.fanOutLifecycle(func(shard int) error {
		err := rt.backends[shard].DropIndex(ctx, name)
		var be *backendError
		if errors.As(err, &be) && be.status == http.StatusNotFound {
			missing.Add(1)
			return nil
		}
		return err
	})
	if err != nil {
		writeError(w, httpStatusOf(err), err)
		return
	}
	if int(missing.Load()) == len(rt.backends) {
		writeNotFound(w, "index", name, fmt.Errorf("router: no shard has an index named %q", name))
		return
	}
	writeJSON(w, http.StatusOK, DropIndexResponse{Dropped: name})
}

// handleCreateTenant fans a tenant registration out to every shard, so each
// shard meters its own slice of the tenant's rows against the same quota.
func (rt *Router) handleCreateTenant(w http.ResponseWriter, r *http.Request) {
	var req CreateTenantRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := rt.requireAllShards(); err != nil {
		writeError(w, httpStatusOf(err), err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), rt.opts.ShardTimeout)
	defer cancel()
	if err := rt.fanOutLifecycle(func(shard int) error {
		return rt.backends[shard].CreateTenant(ctx, req)
	}); err != nil {
		writeError(w, httpStatusOf(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"name": req.Name})
}

// handleChanges: a cross-shard change stream would need commit-ordered
// merging across engines, which the scatter-gather layer does not provide;
// subscribers connect to the shard that owns their keys instead.
func (rt *Router) handleChanges(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusNotImplemented,
		errors.New("router: change streaming is per-shard; connect to a shard server directly"))
}
