package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"svrdb/internal/core"
	"svrdb/internal/relation"
	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
	"svrdb/internal/view"
)

// routerVocab is small enough that terms collide across shards, so global
// document frequencies genuinely differ from any single shard's.
var routerVocab = []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}

func routerDocBody(id int64) string {
	i := int(id)
	return routerVocab[i%len(routerVocab)] + " " +
		routerVocab[(i/2)%len(routerVocab)] + " " +
		routerVocab[(i*3+1)%len(routerVocab)]
}

func routerDocVal(id int64) float64 { return float64((id*37)%100) + 1 }

// newRouterTestEngine builds one engine holding the docs with the given ids,
// with a Docs table and both a plain-chunk and a termscore index over it.
func newRouterTestEngine(t *testing.T, ids []int64) *core.Engine {
	t.Helper()
	db := relation.NewDB(buffer.MustNew(pagefile.MustNewMem(pagefile.DefaultPageSize), 4096))
	tbl, err := db.CreateTable(relation.Schema{
		Name: "Docs",
		Columns: []relation.Column{
			{Name: "id", Kind: relation.KindInt64},
			{Name: "body", Kind: relation.KindString},
			{Name: "val", Kind: relation.KindFloat64},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		row := relation.Row{relation.Int(id), relation.Str(routerDocBody(id)), relation.Float(routerDocVal(id))}
		if err := tbl.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	engine := core.NewEngine(db, core.Options{})
	spec := view.Spec{Components: []view.Component{view.OwnColumn("Docs", "val")}}
	if _, err := engine.CreateTextIndex("docs", "Docs", "body", core.IndexOptions{
		Method: core.MethodChunk, Spec: spec,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := engine.CreateTextIndex("scored", "Docs", "body", core.IndexOptions{
		Method: core.MethodChunkTermScore, Spec: spec,
	}); err != nil {
		t.Fatal(err)
	}
	return engine
}

// newShardedFixture builds one engine with all numDocs documents and n
// engines holding the mod-partitioned slices, so sharded answers can be
// checked against the unsharded truth.
func newShardedFixture(t *testing.T, numDocs int64, n int) (single *core.Engine, shards []*core.Engine) {
	t.Helper()
	var all []int64
	parts := make([][]int64, n)
	for id := int64(1); id <= numDocs; id++ {
		all = append(all, id)
		parts[id%int64(n)] = append(parts[id%int64(n)], id)
	}
	single = newRouterTestEngine(t, all)
	t.Cleanup(func() { _ = single.Close() })
	for i := 0; i < n; i++ {
		shards = append(shards, newRouterTestEngine(t, parts[i]))
	}
	return single, shards
}

// startRouter wraps the shard engines in backends, starts a Router on an
// ephemeral port and registers a cleanup shutdown.
func startRouter(t *testing.T, shards []*core.Engine, opts RouterOptions) (*Router, string) {
	t.Helper()
	backends := make([]Backend, len(shards))
	for i, e := range shards {
		backends[i] = NewEngineBackend(fmt.Sprintf("shard-%d", i), e, true)
	}
	if opts.Partitioner == "" {
		opts.Partitioner = "mod"
	}
	rt, err := NewRouter(backends, opts)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := rt.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := rt.Shutdown(ctx); err != nil {
			t.Errorf("router shutdown: %v", err)
		}
	})
	return rt, "http://" + addr
}

func searchVia(t *testing.T, base, index string, req SearchRequest) SearchResponse {
	t.Helper()
	status, data := postJSON(t, base+"/v1/indexes/"+index+"/search", req)
	if status != http.StatusOK {
		t.Fatalf("search status = %d, body %s", status, data)
	}
	var resp SearchResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestRouterMatchesSingleServer is the routed counterpart of the core
// layer's sharded-equivalence property: the same queries through a 3-shard
// router and through a single server over all the data must rank the same
// documents with bit-identical scores — including TF-IDF ranking, which
// only holds because the router pins cluster-global document frequencies.
func TestRouterMatchesSingleServer(t *testing.T) {
	single, shards := newShardedFixture(t, 90, 3)
	_, routerBase := startRouter(t, shards, RouterOptions{})

	srv := New(single, Options{})
	singleBase := "http://" + mustStart(t, srv)

	queries := []SearchRequest{
		{Query: "alpha", K: 10},
		{Query: "alpha beta", K: 10},
		{Query: "alpha beta", K: 10, Disjunctive: true},
		{Query: "gamma delta epsilon", K: 25, Disjunctive: true},
		{Query: "theta", K: 1},
		{Query: "alpha common-missing-term", K: 10},
	}
	for _, index := range []string{"docs", "scored"} {
		for _, q := range queries {
			if index == "scored" {
				q.WithTermScores = true
			}
			want := searchVia(t, singleBase, index, q)
			got := searchVia(t, routerBase, index, q)
			if got.Partial {
				t.Fatalf("%s %q: partial result with all shards up", index, q.Query)
			}
			if len(got.Hits) != len(want.Hits) {
				t.Fatalf("%s %q: router %d hits, single %d", index, q.Query, len(got.Hits), len(want.Hits))
			}
			for i := range want.Hits {
				if got.Hits[i].PK != want.Hits[i].PK || got.Hits[i].Score != want.Hits[i].Score {
					t.Errorf("%s %q hit %d: router (%d, %v) != single (%d, %v)",
						index, q.Query, i, got.Hits[i].PK, got.Hits[i].Score, want.Hits[i].PK, want.Hits[i].Score)
				}
			}
		}
	}

	// The router's termstats aggregate must equal the single engine's.
	var fromRouter, fromSingle TermStatsResponse
	for base, dst := range map[string]*TermStatsResponse{routerBase: &fromRouter, singleBase: &fromSingle} {
		status, data := postJSON(t, base+"/v1/indexes/docs/termstats", TermStatsRequest{Query: "alpha beta"})
		if status != http.StatusOK {
			t.Fatalf("termstats status = %d, body %s", status, data)
		}
		if err := json.Unmarshal(data, dst); err != nil {
			t.Fatal(err)
		}
	}
	if fromRouter.NumDocs != fromSingle.NumDocs {
		t.Errorf("termstats num_docs: router %d, single %d", fromRouter.NumDocs, fromSingle.NumDocs)
	}
	for i := range fromSingle.DF {
		if fromRouter.DF[i] != fromSingle.DF[i] {
			t.Errorf("termstats df[%d]: router %d, single %d", i, fromRouter.DF[i], fromSingle.DF[i])
		}
	}
}

func mustStart(t *testing.T, srv *Server) string {
	t.Helper()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return addr
}

// TestRouterOverHTTPBackends runs the router against real svrserve-style
// shard servers over HTTP and then kills one, asserting degraded-but-
// serving behavior end to end: partial search results, a degraded healthz,
// and a 503 (not a stall or a torn response) only if every shard is gone.
func TestRouterOverHTTPBackends(t *testing.T) {
	_, shards := newShardedFixture(t, 60, 2)
	shardSrvs := make([]*Server, 2)
	backends := make([]Backend, 2)
	for i, e := range shards {
		shardSrvs[i] = New(e, Options{})
		addr := mustStart(t, shardSrvs[i])
		backends[i] = NewHTTPBackend("http://"+addr, 0)
	}
	rt, err := NewRouter(backends, RouterOptions{
		Partitioner: "mod",
		// Fast probes so the test observes recovery quickly.
		HealthInterval: 20 * time.Millisecond,
		ShardTimeout:   5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := rt.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := rt.Shutdown(ctx); err != nil {
			t.Errorf("router shutdown: %v", err)
		}
	})

	full := searchVia(t, base, "docs", SearchRequest{Query: "alpha", K: 30, Disjunctive: true})
	if full.Partial || len(full.Hits) == 0 {
		t.Fatalf("healthy search: partial=%v hits=%d", full.Partial, len(full.Hits))
	}

	// Kill shard 1.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := shardSrvs[1].Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// The very next searches may race the prober, but they must never fail:
	// either full (stale health, shard already gone → error path marks it
	// down and excludes it) — in all cases status 200.
	deadline := time.Now().Add(5 * time.Second)
	var degraded SearchResponse
	for {
		degraded = searchVia(t, base, "docs", SearchRequest{Query: "alpha", K: 30, Disjunctive: true})
		if degraded.Partial {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("search never turned partial after shard death")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(degraded.Hits) == 0 || len(degraded.Hits) >= len(full.Hits) {
		t.Fatalf("degraded search hits = %d, want fewer than %d but not zero", len(degraded.Hits), len(full.Hits))
	}
	// Surviving hits must all belong to the live shard (mod 2 → shard 0
	// holds the even primary keys).
	for _, h := range degraded.Hits {
		if h.PK%2 != 0 {
			t.Errorf("degraded result contains pk %d owned by the dead shard", h.PK)
		}
	}

	var hz struct {
		Status        string `json:"status"`
		HealthyShards int    `json:"healthy_shards"`
	}
	status := getJSON(t, base+"/healthz", &hz)
	if status != http.StatusOK || hz.Status != "degraded" || hz.HealthyShards != 1 {
		t.Errorf("healthz after shard death: status=%d body status=%q healthy=%d, want 200/degraded/1",
			status, hz.Status, hz.HealthyShards)
	}

	// Stats still serve, with the dead shard reporting an error entry.
	var st map[string]any
	if status := getJSON(t, base+"/v1/stats", &st); status != http.StatusOK {
		t.Fatalf("stats status = %d", status)
	}
	cluster, _ := st["cluster"].(map[string]any)
	if cluster == nil || cluster["healthy_shards"].(float64) != 1 {
		t.Errorf("stats cluster section = %v, want healthy_shards 1", cluster)
	}
}

// TestRouterDegradedUnderStorm kills a shard in the middle of a concurrent
// query storm: every in-flight and subsequent request must complete with
// 200 (full or partial results), never an error status, a stall or a torn
// body.
func TestRouterDegradedUnderStorm(t *testing.T) {
	_, shards := newShardedFixture(t, 60, 2)
	_, base := startRouter(t, shards, RouterOptions{HealthInterval: 10 * time.Millisecond})

	const workers = 8
	const perWorker = 30
	var wg sync.WaitGroup
	var failures atomic.Int64
	var sawPartial atomic.Int64
	errCh := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := 0; q < perWorker; q++ {
				status, data := postJSONNoFatal(base+"/v1/indexes/docs/search",
					SearchRequest{Query: "alpha", K: 20, Disjunctive: true})
				if status != http.StatusOK {
					failures.Add(1)
					errCh <- fmt.Errorf("status %d body %s", status, data)
					return
				}
				var resp SearchResponse
				if err := json.Unmarshal(data, &resp); err != nil {
					failures.Add(1)
					errCh <- fmt.Errorf("torn body: %v", err)
					return
				}
				if resp.Partial {
					sawPartial.Add(1)
				}
			}
		}()
	}
	// Let the storm get going, then kill shard 1's engine out from under
	// its backend.
	time.Sleep(20 * time.Millisecond)
	if err := shards[1].Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("storm request failed: %v", err)
	}
	if failures.Load() > 0 {
		t.Fatalf("%d requests failed during shard death", failures.Load())
	}
	if sawPartial.Load() == 0 {
		t.Error("no request observed a partial result after the shard died")
	}
}

// postJSONNoFatal is postJSON without the testing.T plumbing, usable from
// storm goroutines (t.Fatal from a non-test goroutine is illegal).
func postJSONNoFatal(url string, body any) (int, []byte) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, []byte(err.Error())
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, []byte(err.Error())
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, []byte(err.Error())
	}
	return resp.StatusCode, buf
}

// TestRouterWriteRouting checks that routed writes land on the partitioner's
// shard and nowhere else, and that batches route per op.
func TestRouterWriteRouting(t *testing.T) {
	_, shards := newShardedFixture(t, 20, 2)
	_, base := startRouter(t, shards, RouterOptions{})

	// Insert four new rows through the router.
	rows := make([]map[string]json.RawMessage, 0, 4)
	for id := int64(101); id <= 104; id++ {
		rows = append(rows, map[string]json.RawMessage{
			"id":   json.RawMessage(fmt.Sprintf("%d", id)),
			"body": json.RawMessage(`"alpha routed"`),
			"val":  json.RawMessage("7"),
		})
	}
	status, data := postJSON(t, base+"/v1/tables/Docs/rows", InsertRowsRequest{Rows: rows})
	if status != http.StatusOK {
		t.Fatalf("routed insert status = %d, body %s", status, data)
	}
	for id := int64(101); id <= 104; id++ {
		owner := int(id % 2)
		for i, e := range shards {
			tbl, err := e.DB().Table("Docs")
			if err != nil {
				t.Fatal(err)
			}
			_, err = tbl.Get(id)
			if i == owner && err != nil {
				t.Errorf("row %d missing from owning shard %d: %v", id, owner, err)
			}
			if i != owner && err == nil {
				t.Errorf("row %d leaked onto shard %d", id, i)
			}
		}
	}

	// A batch mixing routed inserts, updates and deletes.
	pk103 := int64(103)
	pk104 := int64(104)
	ops := []BatchOp{
		{Op: "insert", Table: "Docs", Row: map[string]json.RawMessage{
			"id": json.RawMessage("105"), "body": json.RawMessage(`"beta routed"`), "val": json.RawMessage("9")}},
		{Op: "update", Table: "Docs", PK: &pk103, Set: map[string]json.RawMessage{"val": json.RawMessage("42")}},
		{Op: "delete", Table: "Docs", PK: &pk104},
	}
	status, data = postJSON(t, base+"/v1/batch", BatchRequest{Ops: ops})
	if status != http.StatusOK {
		t.Fatalf("routed batch status = %d, body %s", status, data)
	}
	var br BatchResponse
	if err := json.Unmarshal(data, &br); err != nil || br.Applied != 3 || br.Matched != 3 {
		t.Fatalf("routed batch response = %s (err %v), want applied 3 matched 3", data, err)
	}
	tbl, err := shards[1].DB().Table("Docs") // 103 and 105 route to shard 1
	if err != nil {
		t.Fatal(err)
	}
	row, err := tbl.Get(103)
	if err != nil || row[2].F != 42 {
		t.Errorf("updated row 103 = %v (err %v), want val 42", row, err)
	}
	if _, err := tbl.Get(105); err != nil {
		t.Errorf("inserted row 105 missing: %v", err)
	}
	tbl0, err := shards[0].DB().Table("Docs")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl0.Get(104); err == nil {
		t.Error("deleted row 104 still present")
	}

	// A delete of a primary key nobody holds is a 404, same as single-node.
	missing := int64(9999)
	status, data = postJSON(t, base+"/v1/batch", BatchRequest{Ops: []BatchOp{{Op: "delete", Table: "Docs", PK: &missing}}})
	if status != http.StatusNotFound {
		t.Errorf("delete of missing pk: status = %d (body %s), want 404", status, data)
	}
}

// TestHTTPBackendHedging stalls a shard's first response past the hedge
// threshold and checks that the backend issues exactly one hedge request
// and returns the fast answer.
func TestHTTPBackendHedging(t *testing.T) {
	var calls atomic.Int64
	shard := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// First request hangs well past the hedge threshold.
			time.Sleep(500 * time.Millisecond)
		}
		writeJSON(w, http.StatusOK, SearchResponse{Hits: []SearchHit{{PK: 7, Score: 1}}})
	}))
	defer shard.Close()

	b := NewHTTPBackend(shard.URL, 25*time.Millisecond)
	start := time.Now()
	resp, err := b.Search(context.Background(), "docs", SearchRequest{Query: "alpha", K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Hits) != 1 || resp.Hits[0].PK != 7 {
		t.Fatalf("hedged search returned %+v", resp.Hits)
	}
	if got := b.HedgedSearches(); got != 1 {
		t.Errorf("hedged searches = %d, want 1", got)
	}
	if elapsed := time.Since(start); elapsed >= 500*time.Millisecond {
		t.Errorf("hedged search took %v, should have beaten the 500ms straggler", elapsed)
	}
}
