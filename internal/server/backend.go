package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"

	"svrdb/internal/core"
	"svrdb/internal/relation"
)

// Backend is one shard as the Router sees it: the subset of the single-node
// API the scatter-gather layer needs, expressed over the same JSON DTOs the
// wire uses.  Two implementations exist — EngineBackend calls an in-process
// core.Engine directly, HTTPBackend speaks to a remote svrserve — and the
// Router cannot tell them apart, so a deployment can start with in-process
// shards and split them across machines without touching routing logic.
type Backend interface {
	// Label identifies the shard in health and stats output.
	Label() string
	Search(ctx context.Context, index string, req SearchRequest) (*SearchResponse, error)
	TermStats(ctx context.Context, index, query string) (*TermStatsResponse, error)
	InsertRows(ctx context.Context, table string, rows []map[string]json.RawMessage) error
	Batch(ctx context.Context, ops []BatchOp) (*BatchResponse, error)
	Schema(ctx context.Context, table string) (*SchemaResponse, error)
	Stats(ctx context.Context) (map[string]any, error)
	// CreateIndex builds a text index on this shard; the router fans it out
	// to every shard so searches can scatter uniformly afterwards.
	CreateIndex(ctx context.Context, req CreateIndexRequest) error
	// DropIndex removes a text index from this shard.
	DropIndex(ctx context.Context, name string) error
	// CreateTenant registers (or re-quotas) a tenant on this shard.
	CreateTenant(ctx context.Context, req CreateTenantRequest) error
	// Health returns nil when the shard can serve.
	Health(ctx context.Context) error
	Close() error
}

// backendError carries the HTTP status a backend's failure maps to — for
// HTTPBackend, the status the remote shard already chose; for in-process
// validation failures, the status the single-node handler would have sent.
// resp, when set, is the structured error body to forward verbatim (a
// shard's not_found payload keeps its code/resource/name fields through the
// router).
type backendError struct {
	status int
	msg    string
	resp   *ErrorResponse
}

func (e *backendError) Error() string { return e.msg }

// notFoundBackendErr builds the structured 404 the single-node handlers
// emit, wrapped as a backendError so the router forwards the same shape.
func notFoundBackendErr(resource, name string, err error) *backendError {
	return &backendError{
		status: http.StatusNotFound,
		msg:    err.Error(),
		resp: &ErrorResponse{
			Error:    err.Error(),
			Code:     "not_found",
			Resource: resource,
			Name:     name,
		},
	}
}

// httpStatusOf maps a backend failure to a response status: a backendError
// keeps its embedded status, anything else goes through the engine-error
// mapping.
func httpStatusOf(err error) int {
	var be *backendError
	if errors.As(err, &be) {
		return be.status
	}
	return statusForEngineErr(err)
}

// --- in-process backend ----------------------------------------------------------

// EngineBackend serves a shard from an engine in the router's own process.
// It reuses the exact request bodies the single-node handlers run
// (insertJSONRows, applyJSONBatch, coreSearchRequest), so routed and direct
// writes take the same code path.
type EngineBackend struct {
	label  string
	engine *core.Engine
	// ownsEngine: Close closes the engine only if this backend opened it
	// conceptually (the router built it), not when the caller shares the
	// engine with other frontends.
	ownsEngine bool
}

// NewEngineBackend wraps an engine as a shard backend.  When ownsEngine is
// true, closing the backend closes the engine.
func NewEngineBackend(label string, engine *core.Engine, ownsEngine bool) *EngineBackend {
	return &EngineBackend{label: label, engine: engine, ownsEngine: ownsEngine}
}

// Engine returns the wrapped engine (tests and the bench harness use it to
// load shard data directly).
func (b *EngineBackend) Engine() *core.Engine { return b.engine }

func (b *EngineBackend) Label() string { return b.label }

func (b *EngineBackend) Search(ctx context.Context, index string, req SearchRequest) (*SearchResponse, error) {
	query, err := normalizeQuery(req.Query, req.Terms)
	if err != nil {
		return nil, &backendError{status: http.StatusBadRequest, msg: err.Error()}
	}
	k, err := boundSearchK(req.K)
	if err != nil {
		return nil, &backendError{status: http.StatusBadRequest, msg: err.Error()}
	}
	ti, err := b.engine.TextIndex(index)
	if err != nil {
		return nil, notFoundBackendErr("index", index, err)
	}
	res, err := ti.Search(coreSearchRequest(query, k, req))
	if err != nil {
		return nil, err
	}
	resp := searchResponseFromResult(b.engine, ti.Table(), res, req.LoadRows)
	return &resp, nil
}

func (b *EngineBackend) TermStats(ctx context.Context, index, query string) (*TermStatsResponse, error) {
	ti, err := b.engine.TextIndex(index)
	if err != nil {
		return nil, notFoundBackendErr("index", index, err)
	}
	numDocs, df, err := ti.TermStats(query)
	if err != nil {
		return nil, err
	}
	return &TermStatsResponse{NumDocs: numDocs, DF: df}, nil
}

func (b *EngineBackend) InsertRows(ctx context.Context, table string, rows []map[string]json.RawMessage) error {
	return insertJSONRows(b.engine, table, rows)
}

func (b *EngineBackend) Batch(ctx context.Context, ops []BatchOp) (*BatchResponse, error) {
	matched, err := applyJSONBatch(b.engine, ops)
	if err != nil {
		return nil, err
	}
	return &BatchResponse{Applied: len(ops), Matched: matched}, nil
}

func (b *EngineBackend) Schema(ctx context.Context, table string) (*SchemaResponse, error) {
	tbl, err := b.engine.DB().Table(table)
	if err != nil {
		return nil, notFoundBackendErr("table", table, err)
	}
	resp := schemaResponse(table, tbl.Schema())
	return &resp, nil
}

func (b *EngineBackend) Stats(ctx context.Context) (map[string]any, error) {
	return engineStatsPayload(b.engine), nil
}

func (b *EngineBackend) CreateIndex(ctx context.Context, req CreateIndexRequest) error {
	return createJSONIndex(b.engine, req)
}

func (b *EngineBackend) DropIndex(ctx context.Context, name string) error {
	if err := b.engine.DropTextIndex(name); err != nil {
		if errors.Is(err, relation.ErrNotFound) {
			return notFoundBackendErr("index", name, err)
		}
		return err
	}
	return nil
}

func (b *EngineBackend) CreateTenant(ctx context.Context, req CreateTenantRequest) error {
	return createJSONTenant(b.engine, req)
}

// Health reports the engine's close state; an in-process shard is down only
// once its engine is closed.
func (b *EngineBackend) Health(ctx context.Context) error {
	if b.engine.Closed() {
		return fmt.Errorf("engine closed: %w", core.ErrClosed)
	}
	return nil
}

func (b *EngineBackend) Close() error {
	if !b.ownsEngine {
		return nil
	}
	return b.engine.Close()
}

// --- HTTP backend ----------------------------------------------------------------

// HTTPBackend serves a shard over the single-node HTTP API.  Searches are
// hedged: when a response has not arrived within the hedge threshold a
// second identical request is issued and the first answer wins, trading a
// bounded amount of duplicate read work for immunity to one slow replica
// hiccup (searches are idempotent; writes are never hedged).
type HTTPBackend struct {
	label   string
	baseURL string
	client  *http.Client
	hedge   time.Duration

	hedged   atomic.Uint64
	failures atomic.Uint64
}

// NewHTTPBackend builds a backend for a remote shard at baseURL (e.g.
// "http://127.0.0.1:8081").  hedge <= 0 disables hedged searches.
func NewHTTPBackend(baseURL string, hedge time.Duration) *HTTPBackend {
	return &HTTPBackend{
		label:   baseURL,
		baseURL: trimTrailingSlash(baseURL),
		client:  &http.Client{},
		hedge:   hedge,
	}
}

func trimTrailingSlash(s string) string {
	for len(s) > 0 && s[len(s)-1] == '/' {
		s = s[:len(s)-1]
	}
	return s
}

func (b *HTTPBackend) Label() string { return b.label }

// HedgedSearches reports how many hedge requests this backend has issued.
func (b *HTTPBackend) HedgedSearches() uint64 { return b.hedged.Load() }

// do runs one request and decodes the response; non-2xx bodies become
// backendErrors carrying the remote status.
func (b *HTTPBackend) do(ctx context.Context, method, path string, in, out any) error {
	var body *bytes.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	} else {
		body = bytes.NewReader(nil)
	}
	req, err := http.NewRequestWithContext(ctx, method, b.baseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := b.client.Do(req)
	if err != nil {
		b.failures.Add(1)
		return fmt.Errorf("shard %s: %w", b.label, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var er ErrorResponse
		msg := resp.Status
		var structured *ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&er) == nil && er.Error != "" {
			msg = er.Error
			if er.Code != "" {
				// Keep the shard's structured body so the router can forward
				// the same shape it would have produced itself.
				structured = &er
			}
		}
		if resp.StatusCode >= 500 {
			b.failures.Add(1)
		}
		return &backendError{status: resp.StatusCode, msg: fmt.Sprintf("shard %s: %s", b.label, msg), resp: structured}
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("shard %s: decoding response: %w", b.label, err)
	}
	return nil
}

func (b *HTTPBackend) Search(ctx context.Context, index string, req SearchRequest) (*SearchResponse, error) {
	path := "/v1/indexes/" + url.PathEscape(index) + "/search"
	attempt := func() (*SearchResponse, error) {
		var out SearchResponse
		if err := b.do(ctx, http.MethodPost, path, req, &out); err != nil {
			return nil, err
		}
		return &out, nil
	}
	if b.hedge <= 0 {
		return attempt()
	}
	type result struct {
		out *SearchResponse
		err error
	}
	// Buffered so the loser's send never blocks a goroutine after return.
	ch := make(chan result, 2)
	launch := func() {
		out, err := attempt()
		ch <- result{out, err}
	}
	go launch()
	timer := time.NewTimer(b.hedge)
	defer timer.Stop()
	launched, received := 1, 0
	var firstErr error
	for received < launched {
		select {
		case res := <-ch:
			received++
			if res.err == nil {
				return res.out, nil
			}
			if firstErr == nil {
				firstErr = res.err
			}
		case <-timer.C:
			if launched == 1 {
				launched++
				b.hedged.Add(1)
				go launch()
			}
		}
	}
	return nil, firstErr
}

func (b *HTTPBackend) TermStats(ctx context.Context, index, query string) (*TermStatsResponse, error) {
	var out TermStatsResponse
	path := "/v1/indexes/" + url.PathEscape(index) + "/termstats"
	if err := b.do(ctx, http.MethodPost, path, TermStatsRequest{Query: query}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

func (b *HTTPBackend) InsertRows(ctx context.Context, table string, rows []map[string]json.RawMessage) error {
	path := "/v1/tables/" + url.PathEscape(table) + "/rows"
	return b.do(ctx, http.MethodPost, path, InsertRowsRequest{Rows: rows}, nil)
}

func (b *HTTPBackend) Batch(ctx context.Context, ops []BatchOp) (*BatchResponse, error) {
	var out BatchResponse
	if err := b.do(ctx, http.MethodPost, "/v1/batch", BatchRequest{Ops: ops}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

func (b *HTTPBackend) Schema(ctx context.Context, table string) (*SchemaResponse, error) {
	var out SchemaResponse
	path := "/v1/tables/" + url.PathEscape(table) + "/schema"
	if err := b.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

func (b *HTTPBackend) Stats(ctx context.Context) (map[string]any, error) {
	var out map[string]any
	if err := b.do(ctx, http.MethodGet, "/v1/stats", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

func (b *HTTPBackend) CreateIndex(ctx context.Context, req CreateIndexRequest) error {
	return b.do(ctx, http.MethodPost, "/v1/indexes", req, nil)
}

func (b *HTTPBackend) DropIndex(ctx context.Context, name string) error {
	return b.do(ctx, http.MethodDelete, "/v1/indexes/"+url.PathEscape(name), nil, nil)
}

func (b *HTTPBackend) CreateTenant(ctx context.Context, req CreateTenantRequest) error {
	return b.do(ctx, http.MethodPost, "/v1/tenants", req, nil)
}

func (b *HTTPBackend) Health(ctx context.Context) error {
	return b.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Close releases idle connections; the remote shard's lifecycle is its own.
func (b *HTTPBackend) Close() error {
	b.client.CloseIdleConnections()
	return nil
}
