package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"svrdb/internal/core"
	"svrdb/internal/relation"
)

// Server exposes a core.Engine over an HTTP JSON API.  One Server owns one
// engine: requests fan straight into the engine's goroutine-safe entry
// points (TextIndex.Search, Engine.ApplyBatch), so the HTTP layer adds
// routing, JSON codec work and metrics but no locking of its own.
//
// Lifecycle: New → Start (or Handler, for an external listener) → Shutdown.
// Shutdown is graceful and rides the engine's drain machinery: new requests
// are turned away with a clean 503 the moment draining begins, in-flight
// requests run to completion (http.Server.Shutdown waits for them), and only
// then is Engine.Close invoked — which drains index locks and runs the
// buffer-pool pin audit.  Within the shutdown context's deadline a request
// never observes a closed engine; a straggler past the deadline hits the
// engine's close fence and gets a clean 503 — never a torn response.
type Server struct {
	engine  *core.Engine
	metrics *Registry
	mux     *http.ServeMux

	// draining turns new requests away with 503 while Shutdown waits for
	// in-flight ones; it is the HTTP analogue of the engine's close fence.
	draining atomic.Bool
	// inflightN counts requests inside Handler, so Shutdown can drain them
	// even when the server does not own the listener (a caller embedding
	// Handler() in its own http.Server) — http.Server.Shutdown only covers
	// the owned-listener path.  A mutex-guarded counter with an idle
	// signal, not a sync.WaitGroup: requests keep arriving (to be 503'd)
	// while the drain waits, and Add racing Wait from zero is documented
	// WaitGroup misuse that can panic.
	inflightMu sync.Mutex
	inflightN  int
	// inflightIdle, when non-nil, is closed by the request that drops the
	// counter to zero; Shutdown installs it to wait for the drain.
	inflightIdle chan struct{}

	httpSrv  *http.Server
	listener net.Listener
	// serveDone closes when the accept loop exits; serveErr (valid after
	// the close) is nil on a clean ErrServerClosed exit.  Exposed through
	// Done/ServeErr so a daemon can notice its accept loop dying instead
	// of serving nothing until an operator intervenes.
	serveDone chan struct{}
	serveErr  error

	closeOnce sync.Once
	closeErr  error
}

// Options configures a Server.
type Options struct {
	// ReadTimeout and WriteTimeout bound request parsing and response
	// writing when the server owns the listener (Start).  Zero means no
	// timeout, matching net/http.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
}

// New builds a Server over an engine.
func New(engine *core.Engine, opts Options) *Server {
	s := &Server{
		engine:    engine,
		metrics:   NewRegistry(),
		mux:       http.NewServeMux(),
		serveDone: make(chan struct{}),
	}
	s.httpSrv = &http.Server{
		Handler:      s.Handler(),
		ReadTimeout:  opts.ReadTimeout,
		WriteTimeout: opts.WriteTimeout,
	}
	s.routes()
	return s
}

// Handler returns the server's root handler: the route mux behind the
// draining fence.  Exposed so tests and embedding callers can serve it from
// their own listener.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Count before the fence check: a request that passes the check is
		// always visible to Shutdown's drain wait.
		s.inflightMu.Lock()
		s.inflightN++
		s.inflightMu.Unlock()
		defer func() {
			s.inflightMu.Lock()
			s.inflightN--
			if s.inflightN == 0 && s.inflightIdle != nil {
				close(s.inflightIdle)
				s.inflightIdle = nil
			}
			s.inflightMu.Unlock()
		}()
		if s.draining.Load() {
			writeError(w, http.StatusServiceUnavailable, errors.New("server is draining"))
			return
		}
		// The mux's built-in 404/405 responses are plain text; the API
		// contract says every non-2xx body is {"error":...} JSON, so those
		// defaults are rewritten on the way out and recorded under a
		// catch-all metrics label (they never reach an instrumented route).
		jw := &jsonErrorWriter{ResponseWriter: w}
		start := time.Now()
		s.mux.ServeHTTP(jw, r)
		if jw.rewrote {
			s.metrics.Observe("(unmatched)", jw.status, time.Since(start))
		}
	})
}

// jsonErrorWriter rewrites net/http's plain-text 404 ("404 page not found")
// and 405 ("Method Not Allowed") default bodies into the API's JSON error
// shape.  The server's own handlers always set an application/json
// Content-Type before writing a header, so anything arriving at WriteHeader
// with those statuses and a different content type is a mux default.
type jsonErrorWriter struct {
	http.ResponseWriter
	status  int
	rewrote bool
}

func (w *jsonErrorWriter) WriteHeader(code int) {
	if (code == http.StatusNotFound || code == http.StatusMethodNotAllowed) &&
		!strings.HasPrefix(w.Header().Get("Content-Type"), "application/json") {
		w.rewrote = true
		w.status = code
		writeJSON(w.ResponseWriter, code, ErrorResponse{Error: http.StatusText(code)})
		return
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *jsonErrorWriter) Write(b []byte) (int, error) {
	if w.rewrote {
		// Swallow the plain-text default body; the JSON body is already out.
		return len(b), nil
	}
	return w.ResponseWriter.Write(b)
}

// Metrics returns the server's metrics registry.
func (s *Server) Metrics() *Registry { return s.metrics }

// Engine returns the engine the server fronts.
func (s *Server) Engine() *core.Engine { return s.engine }

// Start listens on addr (e.g. ":8080", or "127.0.0.1:0" for an ephemeral
// port) and serves in a background goroutine.  It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.listener = ln
	go func() {
		err := s.httpSrv.Serve(ln)
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.serveErr = err
		}
		close(s.serveDone)
	}()
	return ln.Addr().String(), nil
}

// Done closes when the accept loop has exited — after Shutdown, or early if
// Serve failed.  A daemon selects on it alongside its signal channel.
func (s *Server) Done() <-chan struct{} { return s.serveDone }

// ServeErr reports why the accept loop exited; it is meaningful once Done
// is closed and nil for a clean shutdown.
func (s *Server) ServeErr() error { return s.serveErr }

// Shutdown drains and closes, in the order that keeps every response whole:
//
//  1. the draining fence flips — requests arriving from here on get a
//     clean 503 without touching the engine;
//  2. http.Server.Shutdown stops the listener and waits (up to ctx) for
//     in-flight handlers to finish writing their responses;
//  3. Engine.Close drains the index locks, surfaces maintenance errors,
//     flushes dirty pages and audits buffer-pool pin accounting.
//
// Shutdown is idempotent; concurrent and repeated calls return the first
// call's result.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		var errs []error
		if s.listener != nil {
			if err := s.httpSrv.Shutdown(ctx); err != nil {
				errs = append(errs, fmt.Errorf("server: http shutdown: %w", err))
			}
			<-s.serveDone
			if s.serveErr != nil {
				errs = append(errs, fmt.Errorf("server: serve: %w", s.serveErr))
			}
		}
		// Drain the handlers themselves (covers the embedded-Handler case,
		// where no owned http.Server waits for them).  Requests arriving
		// during the wait only run the 503 fence path, so the one
		// zero-crossing signal suffices.  If ctx expires first,
		// Engine.Close proceeds anyway: stragglers then hit the engine's
		// close fence and return a clean 503, never a torn response.
		s.inflightMu.Lock()
		var drained chan struct{}
		if s.inflightN > 0 {
			drained = make(chan struct{})
			s.inflightIdle = drained
		}
		s.inflightMu.Unlock()
		if drained != nil {
			select {
			case <-drained:
			case <-ctx.Done():
				errs = append(errs, fmt.Errorf("server: handler drain: %w", ctx.Err()))
			}
		}
		if err := s.engine.Close(); err != nil {
			errs = append(errs, fmt.Errorf("server: engine close: %w", err))
		}
		s.closeErr = errors.Join(errs...)
	})
	return s.closeErr
}

// routes installs every endpoint, instrumented with the metrics registry.
func (s *Server) routes() {
	register := func(pattern string, h http.HandlerFunc) {
		s.mux.HandleFunc(pattern, s.metrics.instrument(pattern, h))
	}
	register("GET /healthz", s.handleHealthz)
	register("GET /v1/stats", s.handleStats)
	register("POST /v1/indexes/{name}/search", s.handleSearch)
	register("POST /v1/tables/{name}/rows", s.handleInsertRows)
	register("POST /v1/batch", s.handleBatch)
}

// --- request/response types ------------------------------------------------------

// SearchRequest is the body of POST /v1/indexes/{name}/search.
type SearchRequest struct {
	// Query is the raw query text; Terms is the pre-tokenized alternative
	// (the load generator uses it).  Exactly one must be non-empty: a
	// request setting both is rejected rather than one being silently
	// ignored.
	Query string   `json:"query,omitempty"`
	Terms []string `json:"terms,omitempty"`
	// K is the number of results wanted; it defaults to 10.
	K int `json:"k,omitempty"`
	// Disjunctive selects OR semantics (default AND).
	Disjunctive bool `json:"disjunctive,omitempty"`
	// WithTermScores combines TF-IDF term scores with the SVR score
	// (requires a TermScore method).
	WithTermScores bool `json:"with_term_scores,omitempty"`
	// LoadRows also returns each hit's base-table row.
	LoadRows bool `json:"load_rows,omitempty"`
}

// SearchHit is one ranked result.
type SearchHit struct {
	PK    int64          `json:"pk"`
	Score float64        `json:"score"`
	Row   map[string]any `json:"row,omitempty"`
}

// SearchResponse is the body returned by the search endpoint.
type SearchResponse struct {
	Hits            []SearchHit `json:"hits"`
	PostingsScanned int         `json:"postings_scanned"`
	Stopped         bool        `json:"stopped"`
}

// InsertRowsRequest is the body of POST /v1/tables/{name}/rows.
type InsertRowsRequest struct {
	Rows []map[string]json.RawMessage `json:"rows"`
}

// InsertRowsResponse reports how many rows were inserted.
type InsertRowsResponse struct {
	Inserted int `json:"inserted"`
}

// BatchOp is one operation of POST /v1/batch.
type BatchOp struct {
	// Op is "insert", "update" or "delete".
	Op    string `json:"op"`
	Table string `json:"table"`
	// Row carries a full row for insert.
	Row map[string]json.RawMessage `json:"row,omitempty"`
	// PK addresses the row for update and delete.  A pointer so that an
	// omitted field is distinguishable from primary key 0 — silently
	// defaulting to row 0 would make a client's forgotten "pk" mutate a
	// real row.
	PK *int64 `json:"pk,omitempty"`
	// Set carries the changed columns for update.
	Set map[string]json.RawMessage `json:"set,omitempty"`
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	Ops []BatchOp `json:"ops"`
}

// BatchResponse reports how many operations were applied.
type BatchResponse struct {
	Applied int `json:"applied"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// --- handlers --------------------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": s.metrics.Uptime().Seconds(),
		"indexes":        s.engine.TextIndexNames(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	indexes := map[string]any{}
	for _, name := range s.engine.TextIndexNames() {
		ti, err := s.engine.TextIndex(name)
		if err != nil {
			continue
		}
		st := ti.Stats()
		ratio := 0.0
		if st.LongListBytes > 0 && st.LongListRawBytes > 0 {
			ratio = float64(st.LongListRawBytes) / float64(st.LongListBytes)
		}
		indexes[name] = map[string]any{
			"method":                      st.Method,
			"long_list_bytes":             st.LongListBytes,
			"long_list_raw_bytes":         st.LongListRawBytes,
			"compression_ratio":           ratio,
			"pages_read":                  st.PagesRead,
			"short_list_entries":          st.ShortListEntries,
			"score_updates":               st.ScoreUpdates,
			"short_list_postings_written": st.ShortListPostingsWritten,
			"long_list_postings_written":  st.LongListPostingsWritten,
			"queries":                     st.Queries,
			"postings_scanned":            st.PostingsScanned,
			"table_patches":               st.TablePatches,
			"epoch":                       st.Epoch,
			"active_readers":              st.ActiveReaders,
			"retained_pages":              st.RetainedPages,
		}
	}
	pool := s.engine.Pool()
	ps := pool.Stats()
	fs := pool.File().Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_seconds": s.metrics.Uptime().Seconds(),
		"indexes":        indexes,
		"pool": map[string]any{
			"hits":          ps.Hits,
			"misses":        ps.Misses,
			"evictions":     ps.Evictions,
			"flushes":       ps.Flushes,
			"over_releases": ps.OverReleases,
		},
		"pagefile": map[string]any{
			"reads":         fs.Reads,
			"writes":        fs.Writes,
			"allocs":        fs.Allocs,
			"frees":         fs.Frees,
			"reuses":        fs.Reuses,
			"bytes_read":    fs.BytesRead,
			"bytes_written": fs.BytesWritten,
		},
		"durability": map[string]any{
			"commits":    fs.Commits,
			"wal_bytes":  fs.WALBytes,
			"fsyncs":     fs.Fsyncs,
			"recoveries": fs.Recoveries,
			"torn_pages": fs.TornPages,
		},
		"endpoints": s.metrics.Snapshot(),
	})
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	ti, err := s.engine.TextIndex(r.PathValue("name"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	var req SearchRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	query := req.Query
	if query == "" {
		if len(req.Terms) == 0 {
			writeError(w, http.StatusBadRequest, errors.New("one of \"query\" or \"terms\" is required"))
			return
		}
		query = strings.Join(req.Terms, " ")
	} else if len(req.Terms) > 0 {
		writeError(w, http.StatusBadRequest, errors.New("\"query\" and \"terms\" are mutually exclusive"))
		return
	}
	k := req.K
	if k == 0 {
		k = 10
	}
	if k < 1 || k > maxSearchK {
		// Bounding k here protects the daemon: the top-k heap preallocates
		// proportionally to k, so an unchecked client value could exhaust
		// memory with one request.
		writeError(w, http.StatusBadRequest, fmt.Errorf("k must be between 1 and %d", maxSearchK))
		return
	}
	res, err := ti.Search(core.SearchRequest{
		Query:          query,
		K:              k,
		Disjunctive:    req.Disjunctive,
		WithTermScores: req.WithTermScores,
		LoadRows:       req.LoadRows,
	})
	if err != nil {
		writeError(w, statusForEngineErr(err), err)
		return
	}
	resp := SearchResponse{
		Hits:            make([]SearchHit, len(res.Hits)),
		PostingsScanned: res.PostingsScanned,
		Stopped:         res.Stopped,
	}
	var schema relation.Schema
	if req.LoadRows {
		if tbl, err := s.engine.DB().Table(ti.Table()); err == nil {
			schema = tbl.Schema()
		}
	}
	for i, h := range res.Hits {
		resp.Hits[i] = SearchHit{PK: h.PK, Score: h.Score}
		if h.Row != nil && len(schema.Columns) > 0 {
			resp.Hits[i].Row = rowToJSON(schema, h.Row)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleInsertRows(w http.ResponseWriter, r *http.Request) {
	tbl, err := s.engine.DB().Table(r.PathValue("name"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	var req InsertRowsRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Rows) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("\"rows\" must be a non-empty array"))
		return
	}
	rows := make([]relation.Row, len(req.Rows))
	for i, obj := range req.Rows {
		row, err := rowFromJSON(tbl.Schema(), obj)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("row %d: %w", i, err))
			return
		}
		rows[i] = row
	}
	// One ApplyBatch per request: the rows' index maintenance flushes
	// through the batched write pipeline instead of one tree round-trip
	// per row.  Rows are schema-validated above, but a runtime failure
	// (e.g. a duplicate primary key) has no rollback — rows before the
	// failing one stay inserted, and the error names where the batch
	// stopped.
	err = s.engine.ApplyBatch(func() error {
		for i, row := range rows {
			if err := tbl.Insert(row); err != nil {
				return fmt.Errorf("row %d: %w", i, err)
			}
		}
		return nil
	})
	if err != nil {
		writeError(w, statusForEngineErr(err), err)
		return
	}
	writeJSON(w, http.StatusOK, InsertRowsResponse{Inserted: len(rows)})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Ops) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("\"ops\" must be a non-empty array"))
		return
	}
	// Schema-validate and bind every op before mutating anything, so a
	// malformed op (unknown table/column, wrong type, unknown op kind)
	// rejects the batch with 400 before any write.  Runtime failures inside
	// the batch (duplicate primary key, update/delete of a missing row) are
	// a different matter: the engine has no rollback, so ops before the
	// failing one stay applied and the error names the op that stopped the
	// batch — clients must treat a non-2xx as "applied up to the named op".
	apply := make([]func() error, len(req.Ops))
	for i, op := range req.Ops {
		fn, err := s.bindOp(op)
		if err != nil {
			// An unknown table is the same 404 the rows endpoint returns;
			// everything else bindOp rejects is a malformed request.
			status := http.StatusBadRequest
			if errors.Is(err, relation.ErrNotFound) {
				status = http.StatusNotFound
			}
			writeError(w, status, fmt.Errorf("op %d: %w", i, err))
			return
		}
		apply[i] = fn
	}
	err := s.engine.ApplyBatch(func() error {
		for i, fn := range apply {
			if err := fn(); err != nil {
				return fmt.Errorf("op %d: %w", i, err)
			}
		}
		return nil
	})
	if err != nil {
		writeError(w, statusForEngineErr(err), err)
		return
	}
	writeJSON(w, http.StatusOK, BatchResponse{Applied: len(apply)})
}

// bindOp resolves one batch op against the schema and returns the closure
// that applies it.
func (s *Server) bindOp(op BatchOp) (func() error, error) {
	tbl, err := s.engine.DB().Table(op.Table)
	if err != nil {
		return nil, err
	}
	switch op.Op {
	case "insert":
		if op.Row == nil {
			return nil, errors.New("insert requires \"row\"")
		}
		row, err := rowFromJSON(tbl.Schema(), op.Row)
		if err != nil {
			return nil, err
		}
		return func() error { return tbl.Insert(row) }, nil
	case "update":
		if op.PK == nil {
			return nil, errors.New("update requires \"pk\"")
		}
		if len(op.Set) == 0 {
			return nil, errors.New("update requires a non-empty \"set\"")
		}
		set, err := setFromJSON(tbl.Schema(), op.Set)
		if err != nil {
			return nil, err
		}
		pk := *op.PK
		return func() error { return tbl.Update(pk, set) }, nil
	case "delete":
		if op.PK == nil {
			return nil, errors.New("delete requires \"pk\"")
		}
		pk := *op.PK
		return func() error { return tbl.Delete(pk) }, nil
	default:
		return nil, fmt.Errorf("unknown op %q (want insert, update or delete)", op.Op)
	}
}

// --- JSON plumbing ---------------------------------------------------------------

// maxBodyBytes bounds request bodies; a row batch far past this belongs in
// the bulk loader, not an HTTP request.
const maxBodyBytes = 32 << 20

// maxSearchK bounds the per-request result count.
const maxSearchK = 10000

func decodeJSON(r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.UseNumber()
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("invalid request body: %w", err)
	}
	// The body must be exactly one JSON document: trailing garbage or a
	// second concatenated document means a buggy client whose extra input
	// would otherwise be silently dropped.
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		return errors.New("invalid request body: trailing data after JSON document")
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(body)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// statusForEngineErr maps engine errors onto HTTP statuses: a request the
// engine rejected as invalid is 400, a missing row or table is 404, a
// duplicate primary key is 409 (a client mistake, and one a blind retry
// would only repeat), a closed engine is 503 (the server is going away),
// anything else is a plain 500.
func statusForEngineErr(err error) int {
	switch {
	case errors.Is(err, core.ErrInvalidRequest):
		return http.StatusBadRequest
	case errors.Is(err, relation.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, relation.ErrDuplicateKey):
		return http.StatusConflict
	case errors.Is(err, core.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// rowToJSON renders a row as a column-name-keyed object.
func rowToJSON(schema relation.Schema, row relation.Row) map[string]any {
	obj := make(map[string]any, len(row))
	for i, v := range row {
		if i >= len(schema.Columns) {
			break
		}
		switch v.Kind {
		case relation.KindInt64:
			obj[schema.Columns[i].Name] = v.I
		case relation.KindFloat64:
			obj[schema.Columns[i].Name] = v.F
		default:
			obj[schema.Columns[i].Name] = v.S
		}
	}
	return obj
}

// rowFromJSON decodes a full row: every schema column must be present.
func rowFromJSON(schema relation.Schema, obj map[string]json.RawMessage) (relation.Row, error) {
	row := make(relation.Row, len(schema.Columns))
	for i, col := range schema.Columns {
		raw, ok := obj[col.Name]
		if !ok {
			return nil, fmt.Errorf("missing column %q", col.Name)
		}
		v, err := valueFromJSON(col, raw)
		if err != nil {
			return nil, err
		}
		row[i] = v
	}
	if len(obj) > len(schema.Columns) {
		for name := range obj {
			if _, err := schema.ColumnIndex(name); err != nil {
				return nil, fmt.Errorf("unknown column %q", name)
			}
		}
	}
	return row, nil
}

// setFromJSON decodes an update's changed-column map.
func setFromJSON(schema relation.Schema, obj map[string]json.RawMessage) (map[string]relation.Value, error) {
	set := make(map[string]relation.Value, len(obj))
	for name, raw := range obj {
		idx, err := schema.ColumnIndex(name)
		if err != nil {
			return nil, err
		}
		v, err := valueFromJSON(schema.Columns[idx], raw)
		if err != nil {
			return nil, err
		}
		set[name] = v
	}
	return set, nil
}

// valueFromJSON decodes one cell according to its column kind.
func valueFromJSON(col relation.Column, raw json.RawMessage) (relation.Value, error) {
	switch col.Kind {
	case relation.KindInt64:
		var n json.Number
		if err := json.Unmarshal(raw, &n); err != nil {
			return relation.Value{}, fmt.Errorf("column %q: want an integer: %w", col.Name, err)
		}
		i, err := n.Int64()
		if err != nil {
			return relation.Value{}, fmt.Errorf("column %q: want an integer: %w", col.Name, err)
		}
		return relation.Int(i), nil
	case relation.KindFloat64:
		var n json.Number
		if err := json.Unmarshal(raw, &n); err != nil {
			return relation.Value{}, fmt.Errorf("column %q: want a number: %w", col.Name, err)
		}
		f, err := n.Float64()
		if err != nil {
			return relation.Value{}, fmt.Errorf("column %q: want a number: %w", col.Name, err)
		}
		return relation.Float(f), nil
	case relation.KindString:
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return relation.Value{}, fmt.Errorf("column %q: want a string: %w", col.Name, err)
		}
		return relation.Str(s), nil
	default:
		return relation.Value{}, fmt.Errorf("column %q: unsupported kind", col.Name)
	}
}
