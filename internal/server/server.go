package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"svrdb/internal/core"
	"svrdb/internal/index"
	"svrdb/internal/relation"
)

// Server exposes a core.Engine over an HTTP JSON API.  One Server owns one
// engine: requests fan straight into the engine's goroutine-safe entry
// points (TextIndex.Search, Engine.ApplyBatch), so the HTTP layer adds
// routing, JSON codec work and metrics but no locking of its own.
//
// Lifecycle: New → Start (or Handler, for an external listener) → Shutdown.
// Shutdown is graceful and rides the engine's drain machinery: new requests
// are turned away with a clean 503 the moment draining begins, in-flight
// requests run to completion (http.Server.Shutdown waits for them), and only
// then is Engine.Close invoked — which drains index locks and runs the
// buffer-pool pin audit.  Within the shutdown context's deadline a request
// never observes a closed engine; a straggler past the deadline hits the
// engine's close fence and gets a clean 503 — never a torn response.
//
// The listener/drain machinery itself lives in lifecycle (shared with the
// shard Router); Server contributes the engine-backed routes and passes
// Engine.Close as the post-drain closer.
type Server struct {
	engine  *core.Engine
	metrics *Registry
	mux     *http.ServeMux
	life    *lifecycle
}

// Options configures a Server.
type Options struct {
	// ReadTimeout and WriteTimeout bound request parsing and response
	// writing when the server owns the listener (Start).  Zero means no
	// timeout, matching net/http.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
}

// New builds a Server over an engine.
func New(engine *core.Engine, opts Options) *Server {
	s := &Server{
		engine:  engine,
		metrics: NewRegistry(),
		mux:     http.NewServeMux(),
		life:    newLifecycle(opts.ReadTimeout, opts.WriteTimeout),
	}
	s.routes()
	return s
}

// Handler returns the server's root handler: the route mux behind the
// draining fence.  Exposed so tests and embedding callers can serve it from
// their own listener.
func (s *Server) Handler() http.Handler {
	return s.life.fence(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// The mux's built-in 404/405 responses are plain text; the API
		// contract says every non-2xx body is {"error":...} JSON, so those
		// defaults are rewritten on the way out and recorded under a
		// catch-all metrics label (they never reach an instrumented route).
		jw := &jsonErrorWriter{ResponseWriter: w}
		start := time.Now()
		s.mux.ServeHTTP(jw, r)
		if jw.rewrote {
			s.metrics.Observe("(unmatched)", jw.status, time.Since(start))
		}
	}))
}

// jsonErrorWriter rewrites net/http's plain-text 404 ("404 page not found")
// and 405 ("Method Not Allowed") default bodies into the API's JSON error
// shape.  The server's own handlers always set an application/json
// Content-Type before writing a header, so anything arriving at WriteHeader
// with those statuses and a different content type is a mux default.
type jsonErrorWriter struct {
	http.ResponseWriter
	status  int
	rewrote bool
}

func (w *jsonErrorWriter) WriteHeader(code int) {
	if (code == http.StatusNotFound || code == http.StatusMethodNotAllowed) &&
		!strings.HasPrefix(w.Header().Get("Content-Type"), "application/json") {
		w.rewrote = true
		w.status = code
		writeJSON(w.ResponseWriter, code, ErrorResponse{Error: http.StatusText(code)})
		return
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *jsonErrorWriter) Write(b []byte) (int, error) {
	if w.rewrote {
		// Swallow the plain-text default body; the JSON body is already out.
		return len(b), nil
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so the change-subscription stream
// can push lines through the error-rewriting wrapper.
func (w *jsonErrorWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Metrics returns the server's metrics registry.
func (s *Server) Metrics() *Registry { return s.metrics }

// Engine returns the engine the server fronts.
func (s *Server) Engine() *core.Engine { return s.engine }

// Start listens on addr (e.g. ":8080", or "127.0.0.1:0" for an ephemeral
// port) and serves in a background goroutine.  It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	return s.life.start(addr, s.Handler())
}

// Done closes when the accept loop has exited — after Shutdown, or early if
// Serve failed.  A daemon selects on it alongside its signal channel.
func (s *Server) Done() <-chan struct{} { return s.life.done() }

// ServeErr reports why the accept loop exited; it is meaningful once Done
// is closed and nil for a clean shutdown.
func (s *Server) ServeErr() error { return s.life.serveError() }

// Shutdown drains and closes: the draining fence flips, in-flight handlers
// finish (up to ctx), then Engine.Close drains the index locks, surfaces
// maintenance errors, flushes dirty pages and audits buffer-pool pin
// accounting.  Idempotent; concurrent and repeated calls return the first
// call's result.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.life.shutdown(ctx, func() error {
		if err := s.engine.Close(); err != nil {
			return fmt.Errorf("server: engine close: %w", err)
		}
		return nil
	})
}

// routes installs every endpoint, instrumented with the metrics registry.
func (s *Server) routes() {
	register := func(pattern string, h http.HandlerFunc) {
		s.mux.HandleFunc(pattern, s.metrics.instrument(pattern, h))
	}
	register("GET /healthz", s.handleHealthz)
	register("GET /v1/stats", s.handleStats)
	register("GET /v1/tables/{name}/schema", s.handleSchema)
	register("POST /v1/indexes", s.handleCreateIndex)
	register("DELETE /v1/indexes/{name}", s.handleDropIndex)
	register("POST /v1/indexes/{name}/search", s.handleSearch)
	register("POST /v1/indexes/{name}/termstats", s.handleTermStats)
	register("POST /v1/tables/{name}/rows", s.handleInsertRows)
	register("POST /v1/batch", s.handleBatch)
	register("POST /v1/tenants", s.handleCreateTenant)
	register("GET /v1/tenants", s.handleListTenants)
	register("GET /v1/changes", s.handleChanges)
}

// tenantHeader carries the caller's tenant.  It namespaces unqualified
// table and index names ("Reviews" becomes "<tenant>/Reviews", names already
// containing "/" pass through) and keys the per-tenant latency histograms —
// so multi-tenant clients use the plain API and never repeat the prefix.
const tenantHeader = "X-SVR-Tenant"

// qualifyName applies the request's tenant namespace to an unqualified name.
func qualifyName(r *http.Request, name string) string {
	if t := r.Header.Get(tenantHeader); t != "" && name != "" && !strings.Contains(name, "/") {
		return t + "/" + name
	}
	return name
}

// --- request/response types ------------------------------------------------------

// GlobalStats carries collection-wide term statistics with a search request,
// so TF-IDF ranking on one shard uses the cluster's document frequencies
// instead of its local slice.  The router gathers these from every shard's
// termstats endpoint and forwards the sum; a sharded search without them
// would rank by per-shard IDF and diverge from a single-engine run.
type GlobalStats struct {
	NumDocs int64   `json:"num_docs"`
	DF      []int64 `json:"df"`
}

// SearchRequest is the body of POST /v1/indexes/{name}/search.
type SearchRequest struct {
	// Query is the raw query text; Terms is the pre-tokenized alternative
	// (the load generator uses it).  Exactly one must be non-empty: a
	// request setting both is rejected rather than one being silently
	// ignored.
	Query string   `json:"query,omitempty"`
	Terms []string `json:"terms,omitempty"`
	// K is the number of results wanted; it defaults to 10.
	K int `json:"k,omitempty"`
	// Disjunctive selects OR semantics (default AND).
	Disjunctive bool `json:"disjunctive,omitempty"`
	// WithTermScores combines TF-IDF term scores with the SVR score
	// (requires a TermScore method).
	WithTermScores bool `json:"with_term_scores,omitempty"`
	// LoadRows also returns each hit's base-table row.
	LoadRows bool `json:"load_rows,omitempty"`
	// Global pins collection statistics for TF-IDF; shard routers set it,
	// direct clients leave it unset.
	Global *GlobalStats `json:"global,omitempty"`
}

// SearchHit is one ranked result.
type SearchHit struct {
	PK    int64          `json:"pk"`
	Score float64        `json:"score"`
	Row   map[string]any `json:"row,omitempty"`
}

// SearchResponse is the body returned by the search endpoint.
type SearchResponse struct {
	Hits            []SearchHit `json:"hits"`
	PostingsScanned int         `json:"postings_scanned"`
	Stopped         bool        `json:"stopped"`
	// Partial reports that some shards could not be consulted and the hits
	// cover only the reachable ones.  Single-engine responses never set it.
	Partial bool `json:"partial,omitempty"`
}

// TermStatsRequest is the body of POST /v1/indexes/{name}/termstats.
type TermStatsRequest struct {
	Query string   `json:"query,omitempty"`
	Terms []string `json:"terms,omitempty"`
}

// TermStatsResponse reports document frequencies for a query's distinct
// terms, in the same term order the search endpoint would use for the same
// query text.
type TermStatsResponse struct {
	NumDocs int64   `json:"num_docs"`
	DF      []int64 `json:"df"`
}

// SchemaColumn is one column of a table schema response.
type SchemaColumn struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// SchemaResponse is the body of GET /v1/tables/{name}/schema.
type SchemaResponse struct {
	Table   string         `json:"table"`
	Columns []SchemaColumn `json:"columns"`
}

// InsertRowsRequest is the body of POST /v1/tables/{name}/rows.
type InsertRowsRequest struct {
	Rows []map[string]json.RawMessage `json:"rows"`
}

// InsertRowsResponse reports how many rows were inserted.
type InsertRowsResponse struct {
	Inserted int `json:"inserted"`
}

// BatchOp is one operation of POST /v1/batch.
type BatchOp struct {
	// Op is "insert", "update" or "delete".
	Op    string `json:"op"`
	Table string `json:"table"`
	// Row carries a full row for insert.
	Row map[string]json.RawMessage `json:"row,omitempty"`
	// PK addresses the row for update and delete.  A pointer so that an
	// omitted field is distinguishable from primary key 0 — silently
	// defaulting to row 0 would make a client's forgotten "pk" mutate a
	// real row.
	PK *int64 `json:"pk,omitempty"`
	// Set carries the changed columns for update.
	Set map[string]json.RawMessage `json:"set,omitempty"`
	// IgnoreMissing makes an update or delete of an absent row a no-op
	// instead of an error.  The shard router sets it when broadcasting an
	// op to every shard (only the owner has the row; the rest must not
	// fail the batch).
	IgnoreMissing bool `json:"ignore_missing,omitempty"`
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	Ops []BatchOp `json:"ops"`
}

// BatchResponse reports how many operations were applied.  Matched counts
// the ops whose target row existed here — with ignore_missing it can be
// lower than Applied, which the router uses to tell "the owning shard took
// it" from "no shard had that row".
type BatchResponse struct {
	Applied int `json:"applied"`
	Matched int `json:"matched"`
}

// ErrorResponse is the body of every non-2xx response.  Code, Resource and
// Name are set on structured errors (today: every 404 for a missing index,
// table or tenant, from both the single-engine server and the router), so
// clients can distinguish "that index does not exist" from other failures
// without parsing the human-readable message.
type ErrorResponse struct {
	Error string `json:"error"`
	// Code is a stable machine-readable discriminator; "not_found" today.
	Code string `json:"code,omitempty"`
	// Resource names what kind of thing was missing: "index", "table", "tenant".
	Resource string `json:"resource,omitempty"`
	// Name is the missing resource's (qualified) name.
	Name string `json:"name,omitempty"`
}

// CreateIndexRequest is the body of POST /v1/indexes: build a new text index
// online.  The build runs under the engine's batch lock — writers queue
// behind it like behind a long batch, searches keep serving throughout and
// observe the index only once it is fully backfilled.
type CreateIndexRequest struct {
	Name   string `json:"name"`
	Table  string `json:"table"`
	Column string `json:"column"`
	// Method selects the inverted-list structure ("id", "score",
	// "score-threshold", "chunk", "id-termscore", "chunk-termscore");
	// empty selects chunk, the paper's recommended method.
	Method string `json:"method,omitempty"`
	// Spec names a score specification registered on the engine (specs hold
	// Go functions and cannot travel in a request body).
	Spec string `json:"spec"`
	// Optional method knobs; zero values use the paper's defaults.
	ThresholdRatio float64 `json:"threshold_ratio,omitempty"`
	ChunkRatio     float64 `json:"chunk_ratio,omitempty"`
	MinChunkSize   int     `json:"min_chunk_size,omitempty"`
	FancyListSize  int     `json:"fancy_list_size,omitempty"`
}

// CreateIndexResponse is the body of a successful index creation.
type CreateIndexResponse struct {
	Name   string `json:"name"`
	Table  string `json:"table"`
	Column string `json:"column"`
	Method string `json:"method"`
}

// DropIndexResponse is the body of a successful DELETE /v1/indexes/{name}.
type DropIndexResponse struct {
	Dropped string `json:"dropped"`
}

// CreateTenantRequest is the body of POST /v1/tenants.  Zero quota fields
// mean unlimited on that axis; re-creating a tenant replaces its quota.
type CreateTenantRequest struct {
	Name     string `json:"name"`
	MaxRows  int64  `json:"max_rows,omitempty"`
	MaxBytes int64  `json:"max_bytes,omitempty"`
}

// TenantStatus is one tenant's registration and live usage, served by
// GET /v1/tenants and the stats endpoint's tenants section.
type TenantStatus struct {
	Name     string `json:"name"`
	MaxRows  int64  `json:"max_rows"`
	MaxBytes int64  `json:"max_bytes"`
	Rows     int64  `json:"rows"`
	Bytes    int64  `json:"bytes"`
}

// ChangeEvent is one line of the GET /v1/changes NDJSON stream.  A line with
// Lagged set means the subscriber fell behind the table's write rate and an
// unknown number of events were dropped — change delivery never blocks the
// engine's commit-ordered notification path on a slow client.
type ChangeEvent struct {
	Table  string         `json:"table,omitempty"`
	Kind   string         `json:"kind,omitempty"`
	PK     int64          `json:"pk,omitempty"`
	Row    map[string]any `json:"row,omitempty"`
	Lagged bool           `json:"lagged,omitempty"`
}

// --- handlers --------------------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": s.metrics.Uptime().Seconds(),
		"indexes":        s.engine.TextIndexNames(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	body := engineStatsPayload(s.engine)
	body["uptime_seconds"] = s.metrics.Uptime().Seconds()
	// Per-tenant latency cells live in the same registry under a label
	// prefix; split them into the tenants section so the endpoints list
	// stays per-route.
	endpoints := make([]EndpointSnapshot, 0)
	latencies := map[string]EndpointSnapshot{}
	for _, snap := range s.metrics.Snapshot() {
		if t, ok := strings.CutPrefix(snap.Route, tenantRoutePrefix); ok {
			latencies[t] = snap
			continue
		}
		endpoints = append(endpoints, snap)
	}
	body["endpoints"] = endpoints
	tenants := make([]map[string]any, 0)
	for _, st := range tenantStatuses(s.engine) {
		entry := map[string]any{
			"name":      st.Name,
			"max_rows":  st.MaxRows,
			"max_bytes": st.MaxBytes,
			"rows":      st.Rows,
			"bytes":     st.Bytes,
		}
		if lat, ok := latencies[st.Name]; ok {
			entry["latency"] = lat
		}
		tenants = append(tenants, entry)
	}
	body["tenants"] = tenants
	writeJSON(w, http.StatusOK, body)
}

// engineStatsPayload builds the engine half of the stats body: index,
// buffer-pool, pagefile and durability counters.  The single-engine handler
// adds uptime and endpoint metrics; the router serves it per shard under a
// "shards" section and aggregates the totals.
func engineStatsPayload(e *core.Engine) map[string]any {
	indexes := map[string]any{}
	for _, name := range e.TextIndexNames() {
		ti, err := e.TextIndex(name)
		if err != nil {
			continue
		}
		st := ti.Stats()
		ratio := 0.0
		if st.LongListBytes > 0 && st.LongListRawBytes > 0 {
			ratio = float64(st.LongListRawBytes) / float64(st.LongListBytes)
		}
		indexes[name] = map[string]any{
			"method":                      st.Method,
			"long_list_bytes":             st.LongListBytes,
			"long_list_raw_bytes":         st.LongListRawBytes,
			"compression_ratio":           ratio,
			"pages_read":                  st.PagesRead,
			"short_list_entries":          st.ShortListEntries,
			"score_updates":               st.ScoreUpdates,
			"short_list_postings_written": st.ShortListPostingsWritten,
			"long_list_postings_written":  st.LongListPostingsWritten,
			"queries":                     st.Queries,
			"postings_scanned":            st.PostingsScanned,
			"table_patches":               st.TablePatches,
			"epoch":                       st.Epoch,
			"active_readers":              st.ActiveReaders,
			"retained_pages":              st.RetainedPages,
		}
	}
	pool := e.Pool()
	ps := pool.Stats()
	fs := pool.File().Stats()
	return map[string]any{
		"indexes": indexes,
		"pool": map[string]any{
			"hits":          ps.Hits,
			"misses":        ps.Misses,
			"evictions":     ps.Evictions,
			"flushes":       ps.Flushes,
			"over_releases": ps.OverReleases,
		},
		"pagefile": map[string]any{
			"reads":         fs.Reads,
			"writes":        fs.Writes,
			"allocs":        fs.Allocs,
			"frees":         fs.Frees,
			"reuses":        fs.Reuses,
			"bytes_read":    fs.BytesRead,
			"bytes_written": fs.BytesWritten,
		},
		"durability": map[string]any{
			"commits":    fs.Commits,
			"wal_bytes":  fs.WALBytes,
			"fsyncs":     fs.Fsyncs,
			"recoveries": fs.Recoveries,
			"torn_pages": fs.TornPages,
		},
	}
}

// normalizeQuery folds the query/terms alternative into one query string and
// bounds k, sharing the validation between the search and termstats
// endpoints and the router.
func normalizeQuery(query string, terms []string) (string, error) {
	if query == "" {
		if len(terms) == 0 {
			return "", errors.New("one of \"query\" or \"terms\" is required")
		}
		return strings.Join(terms, " "), nil
	}
	if len(terms) > 0 {
		return "", errors.New("\"query\" and \"terms\" are mutually exclusive")
	}
	return query, nil
}

func boundSearchK(k int) (int, error) {
	if k == 0 {
		k = 10
	}
	if k < 1 || k > maxSearchK {
		// Bounding k here protects the daemon: the top-k heap preallocates
		// proportionally to k, so an unchecked client value could exhaust
		// memory with one request.
		return 0, fmt.Errorf("k must be between 1 and %d", maxSearchK)
	}
	return k, nil
}

// coreSearchRequest translates the JSON DTO into the engine's request type.
func coreSearchRequest(query string, k int, req SearchRequest) core.SearchRequest {
	creq := core.SearchRequest{
		Query:          query,
		K:              k,
		Disjunctive:    req.Disjunctive,
		WithTermScores: req.WithTermScores,
		LoadRows:       req.LoadRows,
	}
	if req.Global != nil {
		creq.Global = &index.GlobalStats{NumDocs: req.Global.NumDocs, DF: req.Global.DF}
	}
	return creq
}

// searchResponseFromResult renders an engine result as the wire response,
// resolving rows through the index's base table schema when requested.
func searchResponseFromResult(e *core.Engine, table string, res *core.SearchResult, loadRows bool) SearchResponse {
	resp := SearchResponse{
		Hits:            make([]SearchHit, len(res.Hits)),
		PostingsScanned: res.PostingsScanned,
		Stopped:         res.Stopped,
		Partial:         res.Partial,
	}
	var schema relation.Schema
	if loadRows {
		if tbl, err := e.DB().Table(table); err == nil {
			schema = tbl.Schema()
		}
	}
	for i, h := range res.Hits {
		resp.Hits[i] = SearchHit{PK: h.PK, Score: h.Score}
		if h.Row != nil && len(schema.Columns) > 0 {
			resp.Hits[i].Row = rowToJSON(schema, h.Row)
		}
	}
	return resp
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	name := qualifyName(r, r.PathValue("name"))
	ti, err := s.engine.TextIndex(name)
	if err != nil {
		writeNotFound(w, "index", name, err)
		return
	}
	var req SearchRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	query, err := normalizeQuery(req.Query, req.Terms)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	k, err := boundSearchK(req.K)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := ti.Search(coreSearchRequest(query, k, req))
	if err != nil {
		writeError(w, statusForEngineErr(err), err)
		return
	}
	writeJSON(w, http.StatusOK, searchResponseFromResult(s.engine, ti.Table(), res, req.LoadRows))
}

func (s *Server) handleTermStats(w http.ResponseWriter, r *http.Request) {
	name := qualifyName(r, r.PathValue("name"))
	ti, err := s.engine.TextIndex(name)
	if err != nil {
		writeNotFound(w, "index", name, err)
		return
	}
	var req TermStatsRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	query, err := normalizeQuery(req.Query, req.Terms)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	numDocs, df, err := ti.TermStats(query)
	if err != nil {
		writeError(w, statusForEngineErr(err), err)
		return
	}
	writeJSON(w, http.StatusOK, TermStatsResponse{NumDocs: numDocs, DF: df})
}

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	name := qualifyName(r, r.PathValue("name"))
	tbl, err := s.engine.DB().Table(name)
	if err != nil {
		writeNotFound(w, "table", name, err)
		return
	}
	writeJSON(w, http.StatusOK, schemaResponse(name, tbl.Schema()))
}

func schemaResponse(table string, schema relation.Schema) SchemaResponse {
	resp := SchemaResponse{Table: table, Columns: make([]SchemaColumn, len(schema.Columns))}
	for i, col := range schema.Columns {
		kind := "string"
		switch col.Kind {
		case relation.KindInt64:
			kind = "int64"
		case relation.KindFloat64:
			kind = "float64"
		}
		resp.Columns[i] = SchemaColumn{Name: col.Name, Kind: kind}
	}
	return resp
}

// insertJSONRows decodes and inserts rows through one ApplyBatch; it is the
// shared body of the rows endpoint and the router's engine backend.  Decode
// errors surface as ErrInvalidRequest so both callers map them to 400.
func insertJSONRows(e *core.Engine, table string, jsonRows []map[string]json.RawMessage) error {
	tbl, err := e.DB().Table(table)
	if err != nil {
		return err
	}
	rows := make([]relation.Row, len(jsonRows))
	for i, obj := range jsonRows {
		row, err := rowFromJSON(tbl.Schema(), obj)
		if err != nil {
			return fmt.Errorf("%w: row %d: %s", core.ErrInvalidRequest, i, err)
		}
		rows[i] = row
	}
	// One ApplyBatch per request: the rows' index maintenance flushes
	// through the batched write pipeline instead of one tree round-trip
	// per row.  Rows are schema-validated above, but a runtime failure
	// (e.g. a duplicate primary key) has no rollback — rows before the
	// failing one stay inserted, and the error names where the batch
	// stopped.  The quota pre-check runs under the batch lock before any
	// mutation: an over-quota insert batch rejects atomically.
	var pre func() error
	if tenant := core.TenantOf(table); tenant != "" {
		var addBytes int64
		for _, row := range rows {
			addBytes += int64(core.EncodedRowSize(row))
		}
		pre = func() error {
			return e.CheckTenantQuota(tenant, int64(len(rows)), addBytes)
		}
	}
	return e.ApplyBatchChecked(pre, func() error {
		for i, row := range rows {
			if err := tbl.Insert(row); err != nil {
				return fmt.Errorf("row %d: %w", i, err)
			}
		}
		return nil
	})
}

func (s *Server) handleInsertRows(w http.ResponseWriter, r *http.Request) {
	var req InsertRowsRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Rows) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("\"rows\" must be a non-empty array"))
		return
	}
	if err := insertJSONRows(s.engine, qualifyName(r, r.PathValue("name")), req.Rows); err != nil {
		writeError(w, statusForEngineErr(err), err)
		return
	}
	writeJSON(w, http.StatusOK, InsertRowsResponse{Inserted: len(req.Rows)})
}

// applyJSONBatch binds and applies a batch of ops; it is the shared body of
// the batch endpoint and the router's engine backend.  It returns how many
// ops matched a row (inserts always match; ignore_missing updates and
// deletes of absent rows do not).
func applyJSONBatch(e *core.Engine, ops []BatchOp) (int, error) {
	// Schema-validate and bind every op before mutating anything, so a
	// malformed op (unknown table/column, wrong type, unknown op kind)
	// rejects the batch before any write.  Runtime failures inside the
	// batch (duplicate primary key, update/delete of a missing row) are a
	// different matter: the engine has no rollback, so ops before the
	// failing one stay applied and the error names the op that stopped the
	// batch — clients must treat a non-2xx as "applied up to the named op".
	matched := 0
	bound := make([]boundOp, len(ops))
	metered := false
	for i, op := range ops {
		b, err := bindOp(e, op, &matched)
		if err != nil {
			if !errors.Is(err, relation.ErrNotFound) {
				err = fmt.Errorf("%w: %s", core.ErrInvalidRequest, err)
			}
			return 0, fmt.Errorf("op %d: %w", i, err)
		}
		bound[i] = b
		metered = metered || b.tenant != ""
	}
	// Quota admission: under the batch lock (where no other batch can move
	// usage), sum every metered tenant's projected row/byte delta and check
	// it against its quota.  A failing check rejects the whole batch before
	// any op runs, so one tenant's over-quota batch never half-applies and
	// never disturbs other tenants' batches queued behind it.
	var pre func() error
	if metered {
		pre = func() error {
			type delta struct{ rows, bytes int64 }
			perTenant := map[string]*delta{}
			for _, b := range bound {
				if b.tenant == "" {
					continue
				}
				rows, bytes := b.delta()
				d := perTenant[b.tenant]
				if d == nil {
					d = &delta{}
					perTenant[b.tenant] = d
				}
				d.rows += rows
				d.bytes += bytes
			}
			for tenant, d := range perTenant {
				if err := e.CheckTenantQuota(tenant, d.rows, d.bytes); err != nil {
					return err
				}
			}
			return nil
		}
	}
	err := e.ApplyBatchChecked(pre, func() error {
		for i, b := range bound {
			if err := b.apply(); err != nil {
				return fmt.Errorf("op %d: %w", i, err)
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return matched, nil
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Ops) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("\"ops\" must be a non-empty array"))
		return
	}
	for i := range req.Ops {
		req.Ops[i].Table = qualifyName(r, req.Ops[i].Table)
	}
	matched, err := applyJSONBatch(s.engine, req.Ops)
	if err != nil {
		writeError(w, statusForEngineErr(err), err)
		return
	}
	writeJSON(w, http.StatusOK, BatchResponse{Applied: len(req.Ops), Matched: matched})
}

// createJSONIndex validates a creation request and builds the index; shared
// by the single-engine handler and the router's engine backend.
func createJSONIndex(e *core.Engine, req CreateIndexRequest) error {
	if req.Name == "" || req.Table == "" || req.Column == "" {
		return fmt.Errorf("%w: \"name\", \"table\" and \"column\" are required", core.ErrInvalidRequest)
	}
	if req.Spec == "" {
		return fmt.Errorf("%w: \"spec\" must name a registered score spec (one of %v)",
			core.ErrInvalidRequest, e.SpecNames())
	}
	_, err := e.CreateTextIndex(req.Name, req.Table, req.Column, core.IndexOptions{
		Method:         core.MethodKind(req.Method),
		SpecName:       req.Spec,
		ThresholdRatio: req.ThresholdRatio,
		ChunkRatio:     req.ChunkRatio,
		MinChunkSize:   req.MinChunkSize,
		FancyListSize:  req.FancyListSize,
	})
	return err
}

func (s *Server) handleCreateIndex(w http.ResponseWriter, r *http.Request) {
	var req CreateIndexRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req.Name = qualifyName(r, req.Name)
	req.Table = qualifyName(r, req.Table)
	if err := createJSONIndex(s.engine, req); err != nil {
		if errors.Is(err, relation.ErrNotFound) {
			writeNotFound(w, "table", req.Table, err)
			return
		}
		writeError(w, statusForEngineErr(err), err)
		return
	}
	ti, err := s.engine.TextIndex(req.Name)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusCreated, CreateIndexResponse{
		Name:   req.Name,
		Table:  req.Table,
		Column: req.Column,
		Method: ti.Method().Name(),
	})
}

func (s *Server) handleDropIndex(w http.ResponseWriter, r *http.Request) {
	name := qualifyName(r, r.PathValue("name"))
	if err := s.engine.DropTextIndex(name); err != nil {
		if errors.Is(err, relation.ErrNotFound) {
			writeNotFound(w, "index", name, err)
			return
		}
		writeError(w, statusForEngineErr(err), err)
		return
	}
	writeJSON(w, http.StatusOK, DropIndexResponse{Dropped: name})
}

func (s *Server) handleCreateTenant(w http.ResponseWriter, r *http.Request) {
	var req CreateTenantRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := createJSONTenant(s.engine, req); err != nil {
		writeError(w, statusForEngineErr(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, tenantStatus(s.engine, req.Name))
}

// createJSONTenant registers the tenant and, on durable engines, persists
// the registration immediately through an empty batch (the catalog commit
// rides the batch path), so a quota survives a crash that follows it.
func createJSONTenant(e *core.Engine, req CreateTenantRequest) error {
	quota := core.TenantQuota{MaxRows: req.MaxRows, MaxBytes: req.MaxBytes}
	if err := e.CreateTenant(req.Name, quota); err != nil {
		return err
	}
	return e.ApplyBatch(func() error { return nil })
}

func (s *Server) handleListTenants(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"tenants": tenantStatuses(s.engine)})
}

func tenantStatus(e *core.Engine, name string) TenantStatus {
	quota, _ := e.TenantQuotaOf(name)
	usage := e.TenantUsageOf(name)
	return TenantStatus{
		Name:     name,
		MaxRows:  quota.MaxRows,
		MaxBytes: quota.MaxBytes,
		Rows:     usage.Rows,
		Bytes:    usage.Bytes,
	}
}

func tenantStatuses(e *core.Engine) []TenantStatus {
	names := e.TenantNames()
	out := make([]TenantStatus, len(names))
	for i, n := range names {
		out[i] = tenantStatus(e, n)
	}
	return out
}

// changeStreamBuffer bounds each subscriber's queue.  The table's listener
// enqueues without blocking: a subscriber slower than the write rate loses
// events and is told so via a lagged marker, rather than ever stalling the
// engine's commit-ordered notification path.
const changeStreamBuffer = 256

func (s *Server) handleChanges(w http.ResponseWriter, r *http.Request) {
	table := qualifyName(r, r.URL.Query().Get("table"))
	if table == "" {
		writeError(w, http.StatusBadRequest, errors.New("query parameter \"table\" is required"))
		return
	}
	tbl, err := s.engine.DB().Table(table)
	if err != nil {
		writeNotFound(w, "table", table, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("response writer does not support streaming"))
		return
	}
	schema := tbl.Schema()

	ch := make(chan relation.Change, changeStreamBuffer)
	var lagged atomic.Bool
	handle := tbl.OnChange(func(c relation.Change) {
		select {
		case ch <- c:
		default:
			lagged.Store(true)
		}
	})
	defer tbl.RemoveListener(handle)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	enc := json.NewEncoder(w)

	// Streams end when the client disconnects or the server starts
	// draining; the periodic tick bounds how long an idle stream can delay
	// a graceful shutdown.
	drainTick := time.NewTicker(250 * time.Millisecond)
	defer drainTick.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-drainTick.C:
			if s.life.isDraining() || s.engine.Closed() {
				return
			}
		case c := <-ch:
			if lagged.Swap(false) {
				if err := enc.Encode(ChangeEvent{Lagged: true}); err != nil {
					return
				}
			}
			ev := ChangeEvent{Table: c.Table, PK: c.PK}
			switch c.Kind {
			case relation.ChangeInsert:
				ev.Kind = "insert"
			case relation.ChangeUpdate:
				ev.Kind = "update"
			case relation.ChangeDelete:
				ev.Kind = "delete"
			}
			if c.New != nil {
				ev.Row = rowToJSON(schema, c.New)
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// boundOp is one schema-validated batch op: the closure that applies it,
// plus — for ops on tenant-namespaced tables — the tenant it is metered
// against and a delta function projecting its row/byte footprint change.
// delta is only called under the batch lock, where the rows it reads cannot
// move before apply runs.
type boundOp struct {
	apply  func() error
	tenant string
	delta  func() (rows, bytes int64)
}

// bindOp resolves one batch op against the schema and returns the closure
// that applies it.  matched is incremented by the closure when the op finds
// its target row.
func bindOp(e *core.Engine, op BatchOp, matched *int) (boundOp, error) {
	tbl, err := e.DB().Table(op.Table)
	if err != nil {
		return boundOp{}, err
	}
	b := boundOp{tenant: core.TenantOf(op.Table)}
	switch op.Op {
	case "insert":
		if op.Row == nil {
			return boundOp{}, errors.New("insert requires \"row\"")
		}
		row, err := rowFromJSON(tbl.Schema(), op.Row)
		if err != nil {
			return boundOp{}, err
		}
		b.delta = func() (int64, int64) { return 1, int64(core.EncodedRowSize(row)) }
		b.apply = func() error {
			if err := tbl.Insert(row); err != nil {
				return err
			}
			*matched++
			return nil
		}
		return b, nil
	case "update":
		if op.PK == nil {
			return boundOp{}, errors.New("update requires \"pk\"")
		}
		if len(op.Set) == 0 {
			return boundOp{}, errors.New("update requires a non-empty \"set\"")
		}
		set, err := setFromJSON(tbl.Schema(), op.Set)
		if err != nil {
			return boundOp{}, err
		}
		pk, ignore := *op.PK, op.IgnoreMissing
		b.delta = func() (int64, int64) {
			old, err := tbl.Get(pk)
			if err != nil {
				return 0, 0
			}
			updated := applySet(tbl.Schema(), old, set)
			return 0, int64(core.EncodedRowSize(updated)) - int64(core.EncodedRowSize(old))
		}
		b.apply = func() error {
			err := tbl.Update(pk, set)
			if err == nil {
				*matched++
				return nil
			}
			if ignore && errors.Is(err, relation.ErrNotFound) {
				return nil
			}
			return err
		}
		return b, nil
	case "delete":
		if op.PK == nil {
			return boundOp{}, errors.New("delete requires \"pk\"")
		}
		pk, ignore := *op.PK, op.IgnoreMissing
		b.delta = func() (int64, int64) {
			old, err := tbl.Get(pk)
			if err != nil {
				return 0, 0
			}
			return -1, -int64(core.EncodedRowSize(old))
		}
		b.apply = func() error {
			err := tbl.Delete(pk)
			if err == nil {
				*matched++
				return nil
			}
			if ignore && errors.Is(err, relation.ErrNotFound) {
				return nil
			}
			return err
		}
		return b, nil
	default:
		return boundOp{}, fmt.Errorf("unknown op %q (want insert, update or delete)", op.Op)
	}
}

// applySet projects an update onto a copy of a row, for quota byte-delta
// estimation; unknown columns were already rejected by setFromJSON.
func applySet(schema relation.Schema, old relation.Row, set map[string]relation.Value) relation.Row {
	updated := make(relation.Row, len(old))
	copy(updated, old)
	for name, v := range set {
		if idx, err := schema.ColumnIndex(name); err == nil && idx < len(updated) {
			updated[idx] = v
		}
	}
	return updated
}

// --- JSON plumbing ---------------------------------------------------------------

// maxBodyBytes bounds request bodies; a row batch far past this belongs in
// the bulk loader, not an HTTP request.
const maxBodyBytes = 32 << 20

// maxSearchK bounds the per-request result count.
const maxSearchK = 10000

func decodeJSON(r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.UseNumber()
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("invalid request body: %w", err)
	}
	// The body must be exactly one JSON document: trailing garbage or a
	// second concatenated document means a buggy client whose extra input
	// would otherwise be silently dropped.
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		return errors.New("invalid request body: trailing data after JSON document")
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(body)
}

func writeError(w http.ResponseWriter, status int, err error) {
	// A backend that already produced a structured error body (a shard's
	// 404, say) has it forwarded verbatim, so router responses carry the
	// same shape as single-engine ones.
	var be *backendError
	if errors.As(err, &be) && be.resp != nil {
		writeJSON(w, status, *be.resp)
		return
	}
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// writeNotFound writes the structured 404 body: both the single-engine
// server and the router emit this exact shape for a missing index, table or
// tenant, so clients (and the router tests) can rely on it regardless of
// deployment mode.
func writeNotFound(w http.ResponseWriter, resource, name string, err error) {
	writeJSON(w, http.StatusNotFound, ErrorResponse{
		Error:    err.Error(),
		Code:     "not_found",
		Resource: resource,
		Name:     name,
	})
}

// statusForEngineErr maps engine errors onto HTTP statuses: a request the
// engine rejected as invalid is 400, a missing row or table is 404, a
// duplicate primary key or existing index name is 409 (a client mistake,
// and one a blind retry would only repeat), an exceeded tenant quota is 429
// (retrying helps only after the tenant frees space or buys quota), a
// closed engine is 503 (the server is going away), anything else is a
// plain 500.
func statusForEngineErr(err error) int {
	switch {
	case errors.Is(err, core.ErrInvalidRequest):
		return http.StatusBadRequest
	case errors.Is(err, relation.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, relation.ErrDuplicateKey), errors.Is(err, core.ErrExists):
		return http.StatusConflict
	case errors.Is(err, core.ErrQuotaExceeded):
		return http.StatusTooManyRequests
	case errors.Is(err, core.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// rowToJSON renders a row as a column-name-keyed object.
func rowToJSON(schema relation.Schema, row relation.Row) map[string]any {
	obj := make(map[string]any, len(row))
	for i, v := range row {
		if i >= len(schema.Columns) {
			break
		}
		switch v.Kind {
		case relation.KindInt64:
			obj[schema.Columns[i].Name] = v.I
		case relation.KindFloat64:
			obj[schema.Columns[i].Name] = v.F
		default:
			obj[schema.Columns[i].Name] = v.S
		}
	}
	return obj
}

// rowFromJSON decodes a full row: every schema column must be present.
func rowFromJSON(schema relation.Schema, obj map[string]json.RawMessage) (relation.Row, error) {
	row := make(relation.Row, len(schema.Columns))
	for i, col := range schema.Columns {
		raw, ok := obj[col.Name]
		if !ok {
			return nil, fmt.Errorf("missing column %q", col.Name)
		}
		v, err := valueFromJSON(col, raw)
		if err != nil {
			return nil, err
		}
		row[i] = v
	}
	if len(obj) > len(schema.Columns) {
		for name := range obj {
			if _, err := schema.ColumnIndex(name); err != nil {
				return nil, fmt.Errorf("unknown column %q", name)
			}
		}
	}
	return row, nil
}

// setFromJSON decodes an update's changed-column map.
func setFromJSON(schema relation.Schema, obj map[string]json.RawMessage) (map[string]relation.Value, error) {
	set := make(map[string]relation.Value, len(obj))
	for name, raw := range obj {
		idx, err := schema.ColumnIndex(name)
		if err != nil {
			return nil, err
		}
		v, err := valueFromJSON(schema.Columns[idx], raw)
		if err != nil {
			return nil, err
		}
		set[name] = v
	}
	return set, nil
}

// valueFromJSON decodes one cell according to its column kind.
func valueFromJSON(col relation.Column, raw json.RawMessage) (relation.Value, error) {
	switch col.Kind {
	case relation.KindInt64:
		var n json.Number
		if err := json.Unmarshal(raw, &n); err != nil {
			return relation.Value{}, fmt.Errorf("column %q: want an integer: %w", col.Name, err)
		}
		i, err := n.Int64()
		if err != nil {
			return relation.Value{}, fmt.Errorf("column %q: want an integer: %w", col.Name, err)
		}
		return relation.Int(i), nil
	case relation.KindFloat64:
		var n json.Number
		if err := json.Unmarshal(raw, &n); err != nil {
			return relation.Value{}, fmt.Errorf("column %q: want a number: %w", col.Name, err)
		}
		f, err := n.Float64()
		if err != nil {
			return relation.Value{}, fmt.Errorf("column %q: want a number: %w", col.Name, err)
		}
		return relation.Float(f), nil
	case relation.KindString:
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return relation.Value{}, fmt.Errorf("column %q: want a string: %w", col.Name, err)
		}
		return relation.Str(s), nil
	default:
		return relation.Value{}, fmt.Errorf("column %q: unsupported kind", col.Name)
	}
}
