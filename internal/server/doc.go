// Package server is the HTTP serving layer over the SVR engine: a JSON API
// that exposes keyword search, row writes and batched mutations, plus the
// operational surface (health, stats, per-endpoint latency metrics) a
// long-running daemon needs.  cmd/svrserve is the daemon built on it.
//
// Endpoints:
//
//	POST /v1/indexes/{name}/search   top-k keyword search (method options:
//	                                 k, disjunctive, with_term_scores,
//	                                 load_rows)
//	POST /v1/tables/{name}/rows      batched row insertion through
//	                                 Engine.ApplyBatch
//	POST /v1/batch                   mixed insert/update/delete ops applied
//	                                 as one Engine.ApplyBatch
//	GET  /healthz                    liveness plus uptime and index names
//	GET  /v1/stats                   index.Stats per index, buffer-pool and
//	                                 page-file counters, per-endpoint QPS
//	                                 and latency histograms
//
// The layer adds routing, JSON codec work and metrics but no locking of its
// own: requests fan straight into the engine's goroutine-safe entry points
// (see ARCHITECTURE.md for the concurrency contract).  Shutdown is graceful
// — a draining fence turns new requests away with a clean 503, in-flight
// requests complete, then Engine.Close drains the index locks and audits
// buffer-pool pins — so a client can never observe a torn response or a
// half-closed engine.
//
// The package also houses the serving load generator (RunSearchLoad), which
// drives a query mix over real HTTP; svrbench -experiment serve and
// BenchmarkServeQuery use it to report serving overhead against the direct
// core.TextIndex.Search path.
package server
