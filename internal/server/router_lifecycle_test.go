package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"testing"

	"svrdb/internal/core"
	"svrdb/internal/relation"
	"svrdb/internal/view"
)

// registerShardSpecs gives every shard engine the named "val" spec that
// POST /v1/indexes resolves (specs hold Go functions and cannot travel in a
// request body, so each shard must know the name).
func registerShardSpecs(shards []*core.Engine) {
	for _, e := range shards {
		e.RegisterSpec("val", view.Spec{Components: []view.Component{view.OwnColumn("Docs", "val")}})
	}
}

// routerHealthz fetches /healthz and returns status string + healthy count.
func routerHealthz(t *testing.T, base string) (string, int) {
	t.Helper()
	var hz struct {
		Status        string `json:"status"`
		HealthyShards int    `json:"healthy_shards"`
	}
	if code := getJSON(t, base+"/healthz", &hz); code != http.StatusOK {
		t.Fatalf("healthz status = %d", code)
	}
	return hz.Status, hz.HealthyShards
}

// TestRouterIndexLifecycleFanOut drives create → query → drop through the
// router: the create lands on every shard engine, routed searches agree
// with the pre-existing index, and the drop removes the index everywhere
// (with the all-shards-missing case collapsing to the structured 404).
func TestRouterIndexLifecycleFanOut(t *testing.T) {
	_, shards := newShardedFixture(t, 40, 3)
	registerShardSpecs(shards)
	_, base := startRouter(t, shards, RouterOptions{})

	status, data := doJSON(t, http.MethodPost, base+"/v1/indexes", CreateIndexRequest{
		Name: "docs2", Table: "Docs", Column: "body", Method: "id", Spec: "val",
	}, nil)
	if status != http.StatusCreated {
		t.Fatalf("routed create status = %d, body %s", status, data)
	}
	for i, e := range shards {
		if _, err := e.TextIndex("docs2"); err != nil {
			t.Errorf("shard %d missing docs2 after routed create: %v", i, err)
		}
	}

	// Both methods are exact over the same score spec, so the scattered
	// top-k through the new index must equal the existing chunk index's.
	want := searchVia(t, base, "docs", SearchRequest{Query: "alpha", K: 20, Disjunctive: true})
	got := searchVia(t, base, "docs2", SearchRequest{Query: "alpha", K: 20, Disjunctive: true})
	if got.Partial || len(got.Hits) == 0 {
		t.Fatalf("routed search on new index: partial=%v hits=%d", got.Partial, len(got.Hits))
	}
	if len(got.Hits) != len(want.Hits) {
		t.Fatalf("docs2 returned %d hits, docs %d", len(got.Hits), len(want.Hits))
	}
	for i := range want.Hits {
		if got.Hits[i].PK != want.Hits[i].PK || got.Hits[i].Score != want.Hits[i].Score {
			t.Errorf("hit %d: docs2 (%d, %v) != docs (%d, %v)", i,
				got.Hits[i].PK, got.Hits[i].Score, want.Hits[i].PK, want.Hits[i].Score)
		}
	}

	// A duplicate create is a 409 from every shard, surfaced as one 409.
	status, data = doJSON(t, http.MethodPost, base+"/v1/indexes", CreateIndexRequest{
		Name: "docs2", Table: "Docs", Column: "body", Spec: "val",
	}, nil)
	if status != http.StatusConflict {
		t.Errorf("duplicate routed create status = %d, want 409 (body %s)", status, data)
	}

	status, data = doJSON(t, http.MethodDelete, base+"/v1/indexes/docs2", nil, nil)
	if status != http.StatusOK {
		t.Fatalf("routed drop status = %d, body %s", status, data)
	}
	var dr DropIndexResponse
	if err := json.Unmarshal(data, &dr); err != nil || dr.Dropped != "docs2" {
		t.Fatalf("routed drop response %s, want dropped docs2", data)
	}
	for i, e := range shards {
		if _, err := e.TextIndex("docs2"); !errors.Is(err, relation.ErrNotFound) {
			t.Errorf("shard %d still has docs2 after routed drop (err %v)", i, err)
		}
	}
	// Every shard now misses → the router's own structured 404.
	status, data = doJSON(t, http.MethodDelete, base+"/v1/indexes/docs2", nil, nil)
	if status != http.StatusNotFound {
		t.Fatalf("double routed drop status = %d, want 404 (body %s)", status, data)
	}
	assertNotFoundShape(t, data, "index", "docs2")
}

// TestRouterStructured404DoesNotMarkShardsDown asserts the unified 404
// contract through in-process backends: a missing index produces the same
// structured body as the single-engine server, and client mistakes (4xx)
// never count against shard health or degrade subsequent searches.
func TestRouterStructured404DoesNotMarkShardsDown(t *testing.T) {
	_, shards := newShardedFixture(t, 30, 2)
	_, base := startRouter(t, shards, RouterOptions{})

	for i := 0; i < 3; i++ {
		status, data := postJSON(t, base+"/v1/indexes/nope/search", SearchRequest{Query: "alpha"})
		if status != http.StatusNotFound {
			t.Fatalf("missing index search status = %d, want 404 (body %s)", status, data)
		}
		assertNotFoundShape(t, data, "index", "nope")
	}

	if st, healthy := routerHealthz(t, base); st != "ok" || healthy != len(shards) {
		t.Errorf("healthz after 404 storm = %q with %d healthy shards, want ok with %d", st, healthy, len(shards))
	}
	if res := searchVia(t, base, "docs", SearchRequest{Query: "alpha", K: 10, Disjunctive: true}); res.Partial || len(res.Hits) == 0 {
		t.Errorf("search after 404 storm: partial=%v hits=%d — a 4xx must not bench a shard", res.Partial, len(res.Hits))
	}
}

// TestRouterLifecycleOverHTTPBackends repeats the 404-shape and lifecycle
// fan-out checks with real HTTP shard servers behind the router, proving a
// shard's structured 404 body survives the extra hop verbatim.
func TestRouterLifecycleOverHTTPBackends(t *testing.T) {
	_, shards := newShardedFixture(t, 30, 2)
	registerShardSpecs(shards)
	backends := make([]Backend, len(shards))
	for i, e := range shards {
		srv := New(e, Options{})
		addr := mustStart(t, srv)
		backends[i] = NewHTTPBackend("http://"+addr, 0)
	}
	rt, err := NewRouter(backends, RouterOptions{Partitioner: "mod"})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := rt.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr
	t.Cleanup(func() {
		if err := rt.Shutdown(t.Context()); err != nil {
			t.Errorf("router shutdown: %v", err)
		}
	})

	status, data := postJSON(t, base+"/v1/indexes/nope/search", SearchRequest{Query: "alpha"})
	if status != http.StatusNotFound {
		t.Fatalf("missing index over HTTP backends: status = %d (body %s)", status, data)
	}
	assertNotFoundShape(t, data, "index", "nope")

	status, data = doJSON(t, http.MethodPost, base+"/v1/indexes", CreateIndexRequest{
		Name: "docs2", Table: "Docs", Column: "body", Spec: "val",
	}, nil)
	if status != http.StatusCreated {
		t.Fatalf("create over HTTP backends: status = %d (body %s)", status, data)
	}
	for i, e := range shards {
		if _, err := e.TextIndex("docs2"); err != nil {
			t.Errorf("shard %d missing docs2: %v", i, err)
		}
	}
	if res := searchVia(t, base, "docs2", SearchRequest{Query: "alpha", K: 10, Disjunctive: true}); res.Partial || len(res.Hits) == 0 {
		t.Fatalf("search on created index: partial=%v hits=%d", res.Partial, len(res.Hits))
	}
	status, data = doJSON(t, http.MethodDelete, base+"/v1/indexes/docs2", nil, nil)
	if status != http.StatusOK {
		t.Fatalf("drop over HTTP backends: status = %d (body %s)", status, data)
	}
	status, data = doJSON(t, http.MethodDelete, base+"/v1/indexes/docs2", nil, nil)
	if status != http.StatusNotFound {
		t.Fatalf("double drop over HTTP backends: status = %d (body %s)", status, data)
	}
	assertNotFoundShape(t, data, "index", "docs2")

	if st, healthy := routerHealthz(t, base); st != "ok" || healthy != len(shards) {
		t.Errorf("healthz after lifecycle + 404s = %q/%d healthy, want ok/%d", st, healthy, len(shards))
	}
}

// TestRouterCreateTenantFanOut checks a tenant registration reaches every
// shard engine so each meters its slice against the same quota.
func TestRouterCreateTenantFanOut(t *testing.T) {
	_, shards := newShardedFixture(t, 20, 3)
	_, base := startRouter(t, shards, RouterOptions{})

	status, data := doJSON(t, http.MethodPost, base+"/v1/tenants", CreateTenantRequest{
		Name: "acme", MaxRows: 5, MaxBytes: 1 << 20,
	}, nil)
	if status != http.StatusCreated {
		t.Fatalf("routed tenant create status = %d, body %s", status, data)
	}
	for i, e := range shards {
		quota, ok := e.TenantQuotaOf("acme")
		if !ok || quota.MaxRows != 5 || quota.MaxBytes != 1<<20 {
			t.Errorf("shard %d tenant acme = (%+v, %v), want the registered quota", i, quota, ok)
		}
	}
	status, data = doJSON(t, http.MethodPost, base+"/v1/tenants", CreateTenantRequest{Name: "a/b"}, nil)
	if status != http.StatusBadRequest {
		t.Errorf("invalid tenant name over router: status = %d, want 400 (body %s)", status, data)
	}
}

// TestRouterChangesNotImplemented: cross-shard change streams would need
// commit-ordered merging, which scatter-gather does not provide.
func TestRouterChangesNotImplemented(t *testing.T) {
	_, shards := newShardedFixture(t, 10, 2)
	_, base := startRouter(t, shards, RouterOptions{})
	status, data := doJSON(t, http.MethodGet, base+"/v1/changes?table=Docs", nil, nil)
	if status != http.StatusNotImplemented {
		t.Errorf("router changes status = %d, want 501 (body %s)", status, data)
	}
}
