package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"svrdb/internal/core"
	"svrdb/internal/relation"
	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
	"svrdb/internal/view"
)

// TestGracefulShutdownUnderLoad races a storm of searches against a
// SIGTERM-style Shutdown.  The contract under test: every request that gets
// an HTTP response gets a whole one — a 200 whose body decodes as a full
// SearchResponse, or a clean 503 that decodes as an ErrorResponse — and
// never a torn body or a 500 from a half-closed engine; requests that lose
// the race entirely see a transport-level connection error, which is the
// client's retry signal.  Shutdown itself must return nil: Engine.Close ran
// after the drain, so its buffer-pool pin audit saw every search's pins
// released.  Run with -race (CI does).
func TestGracefulShutdownUnderLoad(t *testing.T) {
	srv, base, _, _ := newTestServer(t)

	const workers = 8
	var (
		ok200     atomic.Int64
		clean503  atomic.Int64
		transport atomic.Int64
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	client := NewLoadClient(workers)
	body, _ := json.Marshal(SearchRequest{Query: "alpha common", K: 10, LoadRows: true})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Post(base+"/v1/indexes/docs/search", "application/json", bytes.NewReader(body))
				if err != nil {
					// The listener closed mid-request: a transport error,
					// not a torn HTTP response.
					transport.Add(1)
					return
				}
				data, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Errorf("torn response body (status %d): %v", resp.StatusCode, err)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					var sr SearchResponse
					if err := json.Unmarshal(data, &sr); err != nil {
						t.Errorf("200 with undecodable body %q: %v", data, err)
						return
					}
					if len(sr.Hits) == 0 {
						t.Errorf("200 with zero hits during shutdown race: %s", data)
						return
					}
					ok200.Add(1)
				case http.StatusServiceUnavailable:
					var er ErrorResponse
					if err := json.Unmarshal(data, &er); err != nil || er.Error == "" {
						t.Errorf("503 with undecodable body %q", data)
						return
					}
					clean503.Add(1)
				default:
					t.Errorf("unexpected status %d during shutdown: %s", resp.StatusCode, data)
					return
				}
			}
		}()
	}

	// Let the storm develop, then shut down while requests are in flight.
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("Shutdown under load: %v (pin audit or drain failed)", err)
	}
	close(stop)
	wg.Wait()

	if ok200.Load() == 0 {
		t.Error("no search completed before shutdown; the race never happened")
	}
	t.Logf("outcomes: %d completed, %d clean 503, %d transport errors",
		ok200.Load(), clean503.Load(), transport.Load())

	// The fence holds after drain: a direct engine search fails fast with
	// the closed sentinel rather than touching closed storage.
	ti, err := srv.Engine().TextIndex("docs")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ti.Search(core.SearchRequest{Query: "alpha", K: 1}); !errors.Is(err, core.ErrClosed) {
		t.Errorf("post-shutdown Search error = %v, want core.ErrClosed", err)
	}

	// Shutdown is idempotent.
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}
}

// TestEmbeddedHandlerShutdownUnderLoad exercises the drain path Handler()
// embedding relies on: the server never owns a listener, so Shutdown's own
// in-flight counter — not http.Server.Shutdown — is what keeps Engine.Close
// from racing live handlers.  Responses must stay whole (200 or clean 503)
// and the close-time pin audit must pass.  Run with -race (CI does).
func TestEmbeddedHandlerShutdownUnderLoad(t *testing.T) {
	db := relation.NewDB(buffer.MustNew(pagefile.MustNewMem(pagefile.DefaultPageSize), 4096))
	tbl, err := db.CreateTable(relation.Schema{
		Name: "Docs",
		Columns: []relation.Column{
			{Name: "id", Kind: relation.KindInt64},
			{Name: "body", Kind: relation.KindString},
			{Name: "val", Kind: relation.KindFloat64},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(relation.Row{relation.Int(1), relation.Str("alpha common"), relation.Float(1)}); err != nil {
		t.Fatal(err)
	}
	engine := core.NewEngine(db, core.Options{})
	if _, err := engine.CreateTextIndex("docs", "Docs", "body", core.IndexOptions{
		Spec: view.Spec{Components: []view.Component{view.OwnColumn("Docs", "val")}},
	}); err != nil {
		t.Fatal(err)
	}
	srv := New(engine, Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(SearchRequest{Query: "alpha", K: 5})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/indexes/docs/search", "application/json", bytes.NewReader(body))
				if err != nil {
					return
				}
				data, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Errorf("torn response body: %v", err)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					var sr SearchResponse
					if err := json.Unmarshal(data, &sr); err != nil {
						t.Errorf("200 with undecodable body %q: %v", data, err)
						return
					}
				case http.StatusServiceUnavailable:
					var er ErrorResponse
					if err := json.Unmarshal(data, &er); err != nil || er.Error == "" {
						t.Errorf("503 with undecodable body %q", data)
						return
					}
				default:
					t.Errorf("unexpected status %d: %s", resp.StatusCode, data)
					return
				}
			}
		}()
	}

	time.Sleep(30 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("embedded Shutdown: %v", err)
	}
	close(stop)
	wg.Wait()
}

// TestShutdownWithoutTraffic covers the quiet path: no requests in flight,
// Shutdown still drains, closes the engine and audits pins exactly once.
func TestShutdownWithoutTraffic(t *testing.T) {
	srv, base, _, _ := newTestServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The handler (still reachable in-process) turns requests away cleanly.
	req, _ := http.NewRequest(http.MethodGet, base+"/healthz", nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown handler status = %d, want 503", rec.Code)
	}
}
