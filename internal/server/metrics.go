package server

import (
	"math"
	"math/bits"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latBuckets is the number of power-of-two latency histogram buckets.
// Bucket 0 holds sub-microsecond observations; bucket b (b >= 1) holds
// [2^(b-1), 2^b) microseconds, so 40 buckets cover up to ~6 days — far past
// any request the HTTP server would keep alive.
const latBuckets = 40

// endpointMetrics accumulates one route's counters and latency histogram.
// All fields are atomics: Observe is called concurrently from every
// in-flight request with no shared lock.
type endpointMetrics struct {
	count      atomic.Uint64
	errors     atomic.Uint64 // responses with status >= 400
	totalNanos atomic.Uint64
	buckets    [latBuckets]atomic.Uint64
}

// Registry is the in-process metrics registry: per-route request counters
// and latency histograms, plus the process start time from which QPS is
// derived.  It has no external dependencies by design — /v1/stats renders a
// Snapshot as JSON, which is all the operational surface this engine needs.
type Registry struct {
	start time.Time

	mu     sync.RWMutex
	routes map[string]*endpointMetrics
}

// NewRegistry creates an empty registry anchored at the current time.
func NewRegistry() *Registry {
	return &Registry{start: time.Now(), routes: map[string]*endpointMetrics{}}
}

// route returns (creating on first use) the metrics cell for a route label.
func (r *Registry) route(label string) *endpointMetrics {
	r.mu.RLock()
	m, ok := r.routes[label]
	r.mu.RUnlock()
	if ok {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok = r.routes[label]; ok {
		return m
	}
	m = &endpointMetrics{}
	r.routes[label] = m
	return m
}

// Observe records one completed request against a route label.
func (r *Registry) Observe(label string, status int, d time.Duration) {
	r.route(label).observe(status, d)
}

// observe records one completed request into a resolved cell — the hot
// path, pure atomics with no map lookup or lock.
func (m *endpointMetrics) observe(status int, d time.Duration) {
	m.count.Add(1)
	if status >= 400 {
		m.errors.Add(1)
	}
	if d < 0 {
		d = 0
	}
	m.totalNanos.Add(uint64(d.Nanoseconds()))
	m.buckets[bucketFor(d)].Add(1)
}

// bucketFor maps a latency to its histogram bucket.
func bucketFor(d time.Duration) int {
	us := d.Microseconds()
	if us < 1 {
		return 0
	}
	b := bits.Len64(uint64(us))
	if b >= latBuckets {
		b = latBuckets - 1
	}
	return b
}

// bucketUpperUS is the inclusive upper bound, in microseconds, a histogram
// bucket reports for the observations it holds.
func bucketUpperUS(b int) float64 {
	if b == 0 {
		return 1
	}
	return float64(uint64(1) << b)
}

// EndpointSnapshot is one route's metrics at a point in time.  Percentiles
// come from the power-of-two histogram, so they are upper bounds accurate
// to a factor of two; the load generator computes exact percentiles when a
// benchmark needs them.
type EndpointSnapshot struct {
	Route   string           `json:"route"`
	Count   uint64           `json:"count"`
	Errors  uint64           `json:"errors"`
	QPS     float64          `json:"qps"`
	AvgMS   float64          `json:"avg_ms"`
	P50MS   float64          `json:"p50_ms"`
	P99MS   float64          `json:"p99_ms"`
	P999MS  float64          `json:"p999_ms"`
	Buckets []BucketSnapshot `json:"latency_histogram,omitempty"`
}

// BucketSnapshot is one non-empty latency histogram bucket.
type BucketSnapshot struct {
	UpToUS float64 `json:"up_to_us"`
	Count  uint64  `json:"count"`
}

// Snapshot renders every route's metrics, sorted by route label.  QPS is
// averaged over the registry's lifetime — the honest number for a stats
// endpoint without a sliding-window dependency.
func (r *Registry) Snapshot() []EndpointSnapshot {
	uptime := time.Since(r.start).Seconds()
	r.mu.RLock()
	labels := make([]string, 0, len(r.routes))
	for l := range r.routes {
		labels = append(labels, l)
	}
	r.mu.RUnlock()
	sort.Strings(labels)

	out := make([]EndpointSnapshot, 0, len(labels))
	for _, l := range labels {
		m := r.route(l)
		var counts [latBuckets]uint64
		var total uint64
		for i := range counts {
			counts[i] = m.buckets[i].Load()
			total += counts[i]
		}
		s := EndpointSnapshot{
			Route:  l,
			Count:  m.count.Load(),
			Errors: m.errors.Load(),
		}
		if uptime > 0 {
			s.QPS = float64(s.Count) / uptime
		}
		if s.Count > 0 {
			s.AvgMS = float64(m.totalNanos.Load()) / float64(s.Count) / 1e6
		}
		s.P50MS = percentileMS(counts[:], total, 0.50)
		s.P99MS = percentileMS(counts[:], total, 0.99)
		s.P999MS = percentileMS(counts[:], total, 0.999)
		for i, c := range counts {
			if c > 0 {
				s.Buckets = append(s.Buckets, BucketSnapshot{UpToUS: bucketUpperUS(i), Count: c})
			}
		}
		out = append(out, s)
	}
	return out
}

// percentileMS returns the upper bound of the bucket where the cumulative
// count first reaches quantile q, in milliseconds.  The nearest-rank index
// rounds up: with 99 fast observations and 2 slow ones, p99 must report the
// slow bucket — the tail the histogram exists to surface — not the 99th
// fastest.
func percentileMS(counts []uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	need := uint64(math.Ceil(q * float64(total)))
	if need < 1 {
		need = 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= need {
			return bucketUpperUS(i) / 1e3
		}
	}
	return bucketUpperUS(latBuckets-1) / 1e3
}

// Uptime reports how long the registry (and hence the server) has been up.
func (r *Registry) Uptime() time.Duration { return time.Since(r.start) }

// statusRecorder captures the response status an instrumented handler wrote.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so streaming handlers (the change
// subscription) can push partial responses through the instrumented wrapper.
func (w *statusRecorder) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// tenantRoutePrefix labels the per-tenant latency cells in the registry, so
// /v1/stats can split them out of the per-endpoint listing.
const tenantRoutePrefix = "tenant:"

// instrument wraps a handler so every request is timed and recorded against
// the route label.  The label is fixed at registration, so the metrics cell
// is resolved once here rather than through the locked map on every request.
// Requests carrying a tenant header are additionally recorded into that
// tenant's own histogram, giving /v1/stats a per-tenant latency slice — the
// number the tenants benchmark reads to check hot-neighbor isolation.
func (r *Registry) instrument(label string, h http.HandlerFunc) http.HandlerFunc {
	m := r.route(label)
	return func(w http.ResponseWriter, req *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		h(rec, req)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		d := time.Since(start)
		m.observe(rec.status, d)
		if tenant := req.Header.Get(tenantHeader); tenant != "" {
			r.Observe(tenantRoutePrefix+tenant, rec.status, d)
		}
	}
}
