// Package topk implements the bounded result heap used by every query
// algorithm in the paper: a min-heap of the current best k (document, score)
// pairs, plus the bookkeeping the stopping rules need (whether k results
// have been collected, and the smallest score among them).
//
// See ARCHITECTURE.md for the layer map — where this package sits in the
// stack — and for the repo-wide concurrency contract.
package topk
