package topk

import (
	"sort"
)

// Result is one ranked document.
type Result struct {
	Doc   int64
	Score float64
}

// Heap keeps the k highest-scoring documents seen so far.  Ties are broken
// in favour of the smaller document ID so results are deterministic.  The
// doc → slot map is maintained incrementally on every heap movement, so Add
// costs O(log k) even at large k.
type Heap struct {
	k       int
	entries []Result
	seen    map[int64]int // doc -> index in entries
}

// New returns a heap that retains the best k results.  k must be positive.
func New(k int) *Heap {
	if k < 1 {
		k = 1
	}
	return &Heap{k: k, seen: make(map[int64]int, k)}
}

// K returns the requested result count.
func (h *Heap) K() int { return h.k }

// Len reports how many results are currently held (≤ k).
func (h *Heap) Len() int { return len(h.entries) }

// Full reports whether k results have been collected.
func (h *Heap) Full() bool { return len(h.entries) >= h.k }

// MinScore returns the lowest score among the held results.  It returns
// negative infinity semantics via ok=false when the heap is not yet full,
// because the stopping rules in Algorithms 2 and 3 only apply once k
// results exist.
func (h *Heap) MinScore() (float64, bool) {
	if !h.Full() {
		return 0, false
	}
	return h.entries[0].Score, true
}

// less orders the min-heap so the root is the weakest retained result;
// larger doc IDs are "worse" so they are evicted first on score ties.
func (h *Heap) less(i, j int) bool {
	if h.entries[i].Score != h.entries[j].Score {
		return h.entries[i].Score < h.entries[j].Score
	}
	return h.entries[i].Doc > h.entries[j].Doc
}

func (h *Heap) swap(i, j int) {
	h.entries[i], h.entries[j] = h.entries[j], h.entries[i]
	h.seen[h.entries[i].Doc] = i
	h.seen[h.entries[j].Doc] = j
}

func (h *Heap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *Heap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.entries) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.entries) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

// Add offers a document with its current score.  If the document is already
// present its score is updated to the maximum of the two offers (a document
// can be encountered through both its short-list and long-list postings).
// Add reports whether the document is now among the retained results.
func (h *Heap) Add(doc int64, score float64) bool {
	if idx, ok := h.seen[doc]; ok {
		if score > h.entries[idx].Score {
			h.entries[idx].Score = score
			// A higher score moves the entry away from the root.
			h.down(idx)
		}
		return true
	}
	if len(h.entries) < h.k {
		h.entries = append(h.entries, Result{Doc: doc, Score: score})
		i := len(h.entries) - 1
		h.seen[doc] = i
		h.up(i)
		return true
	}
	worst := h.entries[0]
	if score < worst.Score || (score == worst.Score && doc > worst.Doc) {
		return false
	}
	delete(h.seen, worst.Doc)
	h.entries[0] = Result{Doc: doc, Score: score}
	h.seen[doc] = 0
	h.down(0)
	return true
}

// Contains reports whether doc is currently retained.
func (h *Heap) Contains(doc int64) bool {
	_, ok := h.seen[doc]
	return ok
}

// Results returns the retained documents ordered by descending score (ties
// by ascending document ID).  The heap remains usable afterwards.
func (h *Heap) Results() []Result {
	out := append([]Result(nil), h.entries...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Doc < out[j].Doc
	})
	return out
}
