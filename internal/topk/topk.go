// Package topk implements the bounded result heap used by every query
// algorithm in the paper: a min-heap of the current best k (document, score)
// pairs, plus the bookkeeping the stopping rules need (whether k results
// have been collected, and the smallest score among them).
package topk

import (
	"container/heap"
	"sort"
)

// Result is one ranked document.
type Result struct {
	Doc   int64
	Score float64
}

// Heap keeps the k highest-scoring documents seen so far.  Ties are broken
// in favour of the smaller document ID so results are deterministic.
type Heap struct {
	k     int
	items resultHeap
	seen  map[int64]int // doc -> index in items, to update in place
}

// New returns a heap that retains the best k results.  k must be positive.
func New(k int) *Heap {
	if k < 1 {
		k = 1
	}
	return &Heap{k: k, seen: make(map[int64]int, k)}
}

// K returns the requested result count.
func (h *Heap) K() int { return h.k }

// Len reports how many results are currently held (≤ k).
func (h *Heap) Len() int { return len(h.items.entries) }

// Full reports whether k results have been collected.
func (h *Heap) Full() bool { return len(h.items.entries) >= h.k }

// MinScore returns the lowest score among the held results.  It returns
// negative infinity semantics via ok=false when the heap is not yet full,
// because the stopping rules in Algorithms 2 and 3 only apply once k
// results exist.
func (h *Heap) MinScore() (float64, bool) {
	if !h.Full() {
		return 0, false
	}
	return h.items.entries[0].Score, true
}

// Add offers a document with its current score.  If the document is already
// present its score is updated to the maximum of the two offers (a document
// can be encountered through both its short-list and long-list postings).
// Add reports whether the document is now among the retained results.
func (h *Heap) Add(doc int64, score float64) bool {
	if idx, ok := h.seen[doc]; ok {
		if score > h.items.entries[idx].Score {
			h.items.entries[idx].Score = score
			heap.Fix(&h.items, idx)
		}
		return true
	}
	if len(h.items.entries) < h.k {
		heap.Push(&h.items, Result{Doc: doc, Score: score})
		h.reindex()
		h.seen[doc] = h.indexOf(doc)
		return true
	}
	worst := h.items.entries[0]
	if score < worst.Score || (score == worst.Score && doc > worst.Doc) {
		return false
	}
	delete(h.seen, worst.Doc)
	h.items.entries[0] = Result{Doc: doc, Score: score}
	heap.Fix(&h.items, 0)
	h.reindex()
	return true
}

// indexOf finds the heap slot of doc (linear; k is small).
func (h *Heap) indexOf(doc int64) int {
	for i, e := range h.items.entries {
		if e.Doc == doc {
			return i
		}
	}
	return -1
}

// reindex rebuilds the doc -> slot map after heap movement.
func (h *Heap) reindex() {
	for i, e := range h.items.entries {
		h.seen[e.Doc] = i
	}
}

// Contains reports whether doc is currently retained.
func (h *Heap) Contains(doc int64) bool {
	_, ok := h.seen[doc]
	return ok
}

// Results returns the retained documents ordered by descending score (ties
// by ascending document ID).  The heap remains usable afterwards.
func (h *Heap) Results() []Result {
	out := append([]Result(nil), h.items.entries...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Doc < out[j].Doc
	})
	return out
}

// resultHeap is a min-heap ordered by (score, then doc descending) so that
// the root is always the weakest retained result.
type resultHeap struct {
	entries []Result
}

func (r *resultHeap) Len() int { return len(r.entries) }

func (r *resultHeap) Less(i, j int) bool {
	if r.entries[i].Score != r.entries[j].Score {
		return r.entries[i].Score < r.entries[j].Score
	}
	// Larger doc IDs are "worse" so they are evicted first on ties.
	return r.entries[i].Doc > r.entries[j].Doc
}

func (r *resultHeap) Swap(i, j int) { r.entries[i], r.entries[j] = r.entries[j], r.entries[i] }

func (r *resultHeap) Push(x any) { r.entries = append(r.entries, x.(Result)) }

func (r *resultHeap) Pop() any {
	last := r.entries[len(r.entries)-1]
	r.entries = r.entries[:len(r.entries)-1]
	return last
}
