package topk

import (
	"math/rand"
	"sort"
	"testing"
)

func TestBasicTopK(t *testing.T) {
	h := New(3)
	h.Add(1, 10)
	h.Add(2, 50)
	h.Add(3, 30)
	h.Add(4, 20)
	h.Add(5, 40)
	got := h.Results()
	if len(got) != 3 {
		t.Fatalf("got %d results, want 3", len(got))
	}
	wantDocs := []int64{2, 5, 3}
	for i, r := range got {
		if r.Doc != wantDocs[i] {
			t.Errorf("result %d = doc %d, want %d", i, r.Doc, wantDocs[i])
		}
	}
}

func TestKOfOneMinimum(t *testing.T) {
	h := New(0)
	if h.K() != 1 {
		t.Errorf("K() = %d, want clamp to 1", h.K())
	}
	h.Add(9, 1)
	h.Add(10, 2)
	got := h.Results()
	if len(got) != 1 || got[0].Doc != 10 {
		t.Errorf("Results = %v, want just doc 10", got)
	}
}

func TestMinScoreOnlyWhenFull(t *testing.T) {
	h := New(2)
	if _, ok := h.MinScore(); ok {
		t.Error("MinScore reported a value on an empty heap")
	}
	h.Add(1, 5)
	if _, ok := h.MinScore(); ok {
		t.Error("MinScore reported a value before the heap was full")
	}
	h.Add(2, 9)
	min, ok := h.MinScore()
	if !ok || min != 5 {
		t.Errorf("MinScore = %v, %v; want 5, true", min, ok)
	}
	h.Add(3, 7)
	min, _ = h.MinScore()
	if min != 7 {
		t.Errorf("MinScore after displacement = %v, want 7", min)
	}
}

func TestDuplicateDocKeepsBestScore(t *testing.T) {
	h := New(2)
	h.Add(1, 10)
	h.Add(1, 25)
	h.Add(1, 5)
	got := h.Results()
	if len(got) != 1 {
		t.Fatalf("duplicate adds produced %d results, want 1", len(got))
	}
	if got[0].Score != 25 {
		t.Errorf("score = %g, want best offer 25", got[0].Score)
	}
}

func TestTieBreakByDocID(t *testing.T) {
	h := New(2)
	h.Add(5, 10)
	h.Add(3, 10)
	h.Add(9, 10)
	got := h.Results()
	if len(got) != 2 {
		t.Fatalf("got %d results", len(got))
	}
	if got[0].Doc != 3 || got[1].Doc != 5 {
		t.Errorf("tie break kept docs %d, %d; want 3, 5", got[0].Doc, got[1].Doc)
	}
}

func TestContains(t *testing.T) {
	h := New(2)
	h.Add(1, 10)
	h.Add(2, 20)
	h.Add(3, 30) // evicts doc 1
	if h.Contains(1) {
		t.Error("evicted doc still reported as contained")
	}
	if !h.Contains(2) || !h.Contains(3) {
		t.Error("retained docs not reported as contained")
	}
}

func TestAgainstSortOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200) + 1
		k := rng.Intn(20) + 1
		type pair struct {
			doc   int64
			score float64
		}
		var all []pair
		h := New(k)
		for i := 0; i < n; i++ {
			p := pair{doc: int64(i), score: float64(rng.Intn(1000))}
			all = append(all, p)
			h.Add(p.doc, p.score)
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].score != all[j].score {
				return all[i].score > all[j].score
			}
			return all[i].doc < all[j].doc
		})
		want := all
		if len(want) > k {
			want = want[:k]
		}
		got := h.Results()
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].Doc != want[i].doc || got[i].Score != want[i].score {
				t.Fatalf("trial %d result %d = (%d, %g), want (%d, %g)",
					trial, i, got[i].Doc, got[i].Score, want[i].doc, want[i].score)
			}
		}
	}
}
