package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"svrdb/internal/index"
)

// tinyOptions keeps the experiment smoke tests fast.
func tinyOptions() Options {
	return Options{
		Scale:      0.03,
		NumUpdates: 300,
		NumQueries: 3,
		K:          5,
		MeanStep:   100,
		ColdCache:  true,
		PoolPages:  2048,
		Seed:       1,
	}
}

func TestRegistryIsWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Registry() {
		if e.ID == "" || e.Run == nil || e.Paper == "" || e.Description == "" {
			t.Errorf("experiment %+v is missing fields", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment ID %q", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := Lookup("table1"); !ok {
		t.Error("Lookup(table1) failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup(nope) succeeded")
	}
}

func TestOptionsNormalization(t *testing.T) {
	var zero Options
	n := zero.normalized()
	d := DefaultOptions()
	if n.Scale != d.Scale || n.NumUpdates != d.NumUpdates || n.K != d.K || n.PoolPages != d.PoolPages {
		t.Errorf("normalized zero options = %+v", n)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Name:    "Example",
		Caption: "caption",
		Header:  []string{"A", "Blongheader"},
		Rows:    [][]string{{"1", "2"}, {"333333", "4"}},
		Notes:   []string{"a note"},
	}
	var buf bytes.Buffer
	if _, err := tbl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Example", "caption", "Blongheader", "333333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

// TestExperimentsSmoke runs every registered experiment at a tiny scale and
// checks that it produces a non-empty, well-shaped table.  This keeps the
// harness runnable end to end without waiting for full-scale numbers.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	opts := tinyOptions()
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			start := time.Now()
			tbl, err := e.Run(opts)
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			for i, row := range tbl.Rows {
				if len(row) != len(tbl.Header) {
					t.Errorf("%s row %d has %d cells, header has %d", e.ID, i, len(row), len(tbl.Header))
				}
			}
			t.Logf("%s: %d rows in %s", e.ID, len(tbl.Rows), time.Since(start).Round(time.Millisecond))
		})
	}
}

// TestTable1SizeOrdering verifies the qualitative result of Table 1 at smoke
// scale: the Score method's lists dominate, Chunk stays close to ID.
func TestTable1SizeOrdering(t *testing.T) {
	opts := tinyOptions()
	corpus := corpusFor(opts)
	sizes := map[string]uint64{}
	for _, m := range []string{"ID", "Score", "Score-Threshold", "Chunk"} {
		r, err := newRig(m, corpus, opts, index.Config{})
		if err != nil {
			t.Fatal(err)
		}
		sizes[m] = r.method.Stats().LongListBytes
	}
	if sizes["Score"] <= sizes["Score-Threshold"] {
		t.Errorf("Score (%d) should exceed Score-Threshold (%d)", sizes["Score"], sizes["Score-Threshold"])
	}
	if sizes["Score-Threshold"] <= sizes["ID"] {
		t.Errorf("Score-Threshold (%d) should exceed ID (%d)", sizes["Score-Threshold"], sizes["ID"])
	}
	if float64(sizes["Chunk"]) > 1.5*float64(sizes["ID"]) {
		t.Errorf("Chunk (%d) should stay close to ID (%d)", sizes["Chunk"], sizes["ID"])
	}
}
