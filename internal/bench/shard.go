package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"svrdb/internal/core"
	"svrdb/internal/server"
	"svrdb/internal/workload"
)

// This file implements the sharded-serving experiment: the Figure 7 query
// mix replayed through the shard router at 1/2/4 shards.  Each shard engine
// holds a hash partition of the corpus, the router scatter-gathers every
// search, and each per-query cost is roughly 1/N of the postings plus a
// fixed fan-out overhead — so on a machine with cores to spare, per-query
// latency shrinks with the shard count and single-client QPS rises.  The
// per-shard rows report each shard searched directly with the same mix,
// which is where a placement skew (one shard holding the hot documents)
// shows up as a p99 gap between shards.

// shardCounts lists the cluster sizes the experiment measures.
func shardCounts() []int { return []int{1, 2, 4} }

// shardGateScale is the smallest collection scale at which the speedup gate
// is enforced: smoke-test corpora are so small that fan-out overhead, not
// postings work, dominates the query, which would make the gate flaky.
const shardGateScale = 0.1

// shardGateSpeedup is the single-client QPS multiple 2 shards must reach
// over 1 shard for the scatter-gather path to be pulling its weight.  Only
// enforced when the host has at least 2 cores — on a single core the two
// shard searches time-share, so total work (not parallelism) bounds QPS.
const shardGateSpeedup = 1.5

// RunShard measures scatter-gather serving throughput by shard count.
func RunShard(opts Options) (*Table, error) {
	opts = opts.normalized()
	corpus := corpusFor(opts)
	queries := workload.GenerateQueries(corpus, queryParams(opts))

	up := workload.DefaultUpdateParams()
	up.NumUpdates = opts.NumUpdates
	up.MeanStep = opts.MeanStep
	up.Seed = opts.Seed + 47
	updates := workload.GenerateUpdates(corpus, up)

	part, err := core.PartitionerByName(core.DefaultPartitioner)
	if err != nil {
		return nil, err
	}

	baseQueries := opts.NumQueries * 4
	if baseQueries < 64 {
		baseQueries = 64
	}

	t := &Table{
		Name: "Sharded Serving — scatter-gather search by shard count",
		Caption: fmt.Sprintf("Chunk method, k=%d, conjunctive, hash partitioning, after %d score updates; %d queries per row, GOMAXPROCS=%d",
			opts.K, len(updates), baseQueries, runtime.GOMAXPROCS(0)),
		Header: []string{"Shards", "Path", "QPS", "avg (ms)", "p50 (ms)", "p99 (ms)", "Speedup vs 1 shard"},
	}

	qpsByShards := map[int]float64{}
	for _, n := range shardCounts() {
		// Build the shard engines: hash-partitioned corpus slices, each
		// with the update trace filtered to the documents it owns.
		engines := make([]*serveEngine, n)
		backends := make([]server.Backend, n)
		for i := 0; i < n; i++ {
			i := i
			keep := func(doc int64) bool { return part.Shard(doc, n) == i }
			se, err := buildServeEngineFiltered(corpus, opts, core.MethodChunk, keep)
			if err != nil {
				return nil, err
			}
			var owned []workload.ScoreUpdate
			for _, u := range updates {
				if keep(int64(u.Doc)) {
					owned = append(owned, u)
				}
			}
			if err := se.applyServeUpdates(owned, 256); err != nil {
				return nil, err
			}
			engines[i] = se
			backends[i] = server.NewEngineBackend(fmt.Sprintf("shard-%d", i), se.engine, true)
		}

		rt, err := server.NewRouter(backends, server.RouterOptions{})
		if err != nil {
			return nil, err
		}
		addr, err := rt.Start("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		baseURL := "http://" + addr

		// One sequential client: QPS here is 1/latency, so the row isolates
		// the per-query speedup from shard parallelism (the concurrent and
		// serve experiments already cover multi-client scaling).
		client := server.NewLoadClient(1)
		if _, err := server.RunSearchLoad(client, baseURL, "docs", queries, opts.K, 1, len(queries)); err != nil {
			return nil, err
		}
		res, err := server.RunSearchLoad(client, baseURL, "docs", queries, opts.K, 1, baseQueries)
		if err != nil {
			return nil, err
		}
		qpsByShards[n] = res.QPS
		speedup := "1.00x"
		if base := qpsByShards[shardCounts()[0]]; n > shardCounts()[0] && base > 0 {
			speedup = fmt.Sprintf("%.2fx", res.QPS/base)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n), "router", fmt.Sprintf("%.0f", res.QPS),
			fmtDur(res.Avg), fmtDur(res.P50), fmtDur(res.P99), speedup,
		})

		// Per-shard latency with the same mix, searched directly: exposes
		// placement skew and the per-shard share of the postings work.
		for i, se := range engines {
			direct, err := se.measureDirect(queries, opts.K, baseQueries)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", n), fmt.Sprintf("  shard-%d direct", i), fmt.Sprintf("%.0f", direct.QPS),
				fmtDur(direct.Avg), fmtDur(direct.P50), fmtDur(direct.P99), "",
			})
		}

		// Shutdown is part of the contract: drain, close every shard
		// engine, pass the pin audits.
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err = rt.Shutdown(ctx)
		cancel()
		if err != nil {
			return nil, fmt.Errorf("bench: shard router shutdown: %w", err)
		}
	}

	speedup2 := 0.0
	if qpsByShards[1] > 0 {
		speedup2 = qpsByShards[2] / qpsByShards[1]
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("2-shard speedup at one client: %.2fx (each shard scans ~half the postings; the scatter runs shards in parallel when cores allow)", speedup2),
		"per-shard direct rows share one query mix: a conjunctive query only matches documents a shard owns, so each shard answers from its slice",
	)
	if runtime.GOMAXPROCS(0) < 2 {
		t.Notes = append(t.Notes, "single-CPU host: shard searches time-share the core, so the speedup gate is waived (total work bounds QPS, not parallelism)")
	}
	if opts.Scale >= shardGateScale && runtime.GOMAXPROCS(0) >= 2 && speedup2 < shardGateSpeedup {
		return nil, fmt.Errorf("bench: 2-shard speedup %.2fx below the %.1fx gate (1 shard %.0f QPS, 2 shards %.0f QPS)",
			speedup2, shardGateSpeedup, qpsByShards[1], qpsByShards[2])
	}
	return t, nil
}
