package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"svrdb/internal/core"
	"svrdb/internal/relation"
	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
	"svrdb/internal/view"
	"svrdb/internal/workload"
)

// coldstartQueries are the probes that warm the reopened engine; the terms
// come from the archive vocabulary so every method returns hits.
var coldstartQueries = []core.SearchRequest{
	{Query: "golden gate", K: 10},
	{Query: "san francisco", K: 10, Disjunctive: true},
}

// RunColdstart measures what durability costs: for each method it builds the
// archive engine once in memory and once into a disk file, closes the file,
// reopens it (catalog restore + WAL recovery — no rebuild) and warms it with
// the first queries.  The table compares build time against open+warm time
// and the on-disk footprint against the in-memory page image.
func RunColdstart(opts Options) (*Table, error) {
	opts = opts.normalized()
	movies := int(1200 * opts.Scale)
	if movies < 40 {
		movies = 40
	}
	params := workload.DefaultArchiveParams()
	params.NumMovies = movies
	params.Seed = opts.Seed

	dir, err := os.MkdirTemp("", "svrdb-coldstart-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	t := &Table{
		Name:    "Cold start",
		Caption: fmt.Sprintf("Durable open+warm vs in-memory rebuild, archive workload with %d movies", movies),
		Header:  []string{"Method", "BuildMem(ms)", "BuildDisk(ms)", "Open(ms)", "Warm(ms)", "MemMB", "DiskMB", "Overhead%"},
		Notes: []string{
			"Open restores every table and index from the catalog without rebuilding: it should be orders of magnitude below build time and independent of collection size.",
			"Overhead is the on-disk file size (header, catalog chain, free pages, WAL) relative to the in-memory page image of the same build.",
		},
	}

	for _, kind := range core.AllMethods() {
		// In-memory baseline build.
		memFile := pagefile.MustNewMem(pagefile.DefaultDiskPageSize)
		memPool := buffer.MustNew(memFile, opts.PoolPages)
		registerPool(memPool)
		memStart := time.Now()
		db := relation.NewDB(memPool)
		if _, err := workload.BuildArchiveDB(db, params); err != nil {
			return nil, err
		}
		memEngine := core.NewEngine(db, core.Options{})
		if _, err := memEngine.CreateTextIndex("movies_desc", "Movies", "desc", core.IndexOptions{
			Method: kind,
			Spec:   workload.ArchiveSpec(),
		}); err != nil {
			return nil, err
		}
		memBuild := time.Since(memStart)
		memBytes := memFile.SizeBytes()

		// Durable build, committed and closed.
		path := filepath.Join(dir, string(kind)+".svrdb")
		diskStart := time.Now()
		e, err := core.Open(path, core.OpenOptions{
			Specs:     map[string]view.Spec{"archive": workload.ArchiveSpec()},
			PoolPages: opts.PoolPages,
		})
		if err != nil {
			return nil, err
		}
		if _, err := workload.BuildArchiveDB(e.DB(), params); err != nil {
			return nil, err
		}
		if _, err := e.CreateTextIndex("movies_desc", "Movies", "desc", core.IndexOptions{
			Method:   kind,
			Spec:     workload.ArchiveSpec(),
			SpecName: "archive",
		}); err != nil {
			return nil, err
		}
		if err := e.Close(); err != nil {
			return nil, err
		}
		diskBuild := time.Since(diskStart)

		// Cold start: open (catalog restore) then warm (first queries pull
		// the working set off disk).
		openStart := time.Now()
		re, err := core.Open(path, core.OpenOptions{
			Specs:     map[string]view.Spec{"archive": workload.ArchiveSpec()},
			PoolPages: opts.PoolPages,
		})
		if err != nil {
			return nil, err
		}
		openTime := time.Since(openStart)
		ti, err := re.TextIndex("movies_desc")
		if err != nil {
			return nil, err
		}
		warmStart := time.Now()
		for _, q := range coldstartQueries {
			if _, err := ti.Search(q); err != nil {
				return nil, err
			}
		}
		warmTime := time.Since(warmStart)
		diskBytes := re.Pool().File().SizeBytes()
		if err := re.Close(); err != nil {
			return nil, err
		}

		overhead := 0.0
		if memBytes > 0 {
			overhead = 100 * (float64(diskBytes) - float64(memBytes)) / float64(memBytes)
		}
		t.Rows = append(t.Rows, []string{
			string(kind),
			fmtDur(memBuild),
			fmtDur(diskBuild),
			fmtDur(openTime),
			fmtDur(warmTime),
			fmtMB(memBytes),
			fmtMB(diskBytes),
			fmt.Sprintf("%.1f", overhead),
		})
	}
	return t, nil
}
