package bench

import (
	"testing"
	"time"

	"svrdb/internal/core"
	"svrdb/internal/relation"
	"svrdb/internal/workload"
)

// maintenanceStall is the length of the deliberately slow maintenance batch
// the stall test parks inside ApplyBatch.  The bound asserted on the search
// side is half of it: a search that queues behind the writer waits the whole
// stall, a search on the epoch snapshot finishes in microseconds, so half is
// a wide, unambiguous line between the two regimes.
const maintenanceStall = 700 * time.Millisecond

// TestSearchMaxLatencyUnderMaintenanceStall is the CI race-smoke gate for
// the epoch-read contract at the bench layer: while an ApplyBatch is
// parked mid-maintenance for maintenanceStall, a burst of concurrent
// searches must all complete against the published snapshot — the maximum
// observed search latency must stay under half the stall length.  Before
// the snapshot refactor the first search queued for the full stall.
func TestSearchMaxLatencyUnderMaintenanceStall(t *testing.T) {
	opts := tinyOptions()
	corpus := corpusFor(opts)
	queries := workload.GenerateQueries(corpus, queryParams(opts))

	up := workload.DefaultUpdateParams()
	up.NumUpdates = opts.NumUpdates
	up.Seed = opts.Seed + 53
	updates := workload.GenerateUpdates(corpus, up)

	se, err := buildTailEngine(corpus, queries, opts, core.MethodChunk, updates)
	if err != nil {
		t.Fatal(err)
	}

	inBatch := make(chan struct{})
	batchDone := make(chan error, 1)
	go func() {
		batchDone <- se.engine.ApplyBatch(func() error {
			tbl, err := se.engine.DB().Table("Docs")
			if err != nil {
				return err
			}
			u := updates[len(updates)-1]
			if err := tbl.Update(int64(u.Doc), map[string]relation.Value{
				"score": relation.Float(u.NewScore + 1),
			}); err != nil {
				return err
			}
			close(inBatch)
			time.Sleep(maintenanceStall)
			return nil
		})
	}()
	<-inBatch

	res, err := runEngineSearchLoad(se, queries, opts.K, 2, 200)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-batchDone; err != nil {
		t.Fatalf("stalled ApplyBatch: %v", err)
	}
	if res.Max > maintenanceStall/2 {
		t.Fatalf("max search latency %s during a %s maintenance stall — searches are queueing behind the writer (p99 %s)",
			res.Max, maintenanceStall, res.P99)
	}
	if err := se.engine.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestTailLatencyGate smoke-runs the full experiment (both methods, idle and
// storm phases, the 5x p99 gate) at tiny scale; CI runs it under -race so
// the storm itself is also a data-race probe on the snapshot read path.
func TestTailLatencyGate(t *testing.T) {
	if testing.Short() {
		t.Skip("tail-latency gate skipped in -short mode")
	}
	tbl, err := RunTailLatency(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("expected 4 rows (2 methods x idle/storm), got %d", len(tbl.Rows))
	}
}
