package bench

import (
	"fmt"

	"svrdb/internal/index"
	"svrdb/internal/workload"
)

// RunSelectivity sweeps the three query-selectivity classes of §5.1
// (unselective / medium-selective / selective keyword pools).  The paper
// summarizes these runs in §5.3.7 ("we ran other experiments varying all the
// parameters ... the conclusion was essentially the same"); this experiment
// makes that summary reproducible: for every class, the Chunk method's query
// cost stays at or below the ID method's, and both fall as the keywords get
// rarer because the inverted lists get shorter.
func RunSelectivity(opts Options) (*Table, error) {
	opts = opts.normalized()
	corpus := corpusFor(opts)

	up := workload.DefaultUpdateParams()
	up.NumUpdates = opts.NumUpdates
	up.MeanStep = opts.MeanStep
	up.Seed = opts.Seed + 61
	updates := workload.GenerateUpdates(corpus, up)

	t := &Table{
		Name:    "§5.3.7 — Query Selectivity Sweep (times in ms)",
		Caption: fmt.Sprintf("%d updates, %d queries per class, k=%d", opts.NumUpdates, opts.NumQueries, opts.K),
		Header:  []string{"Query class", "Method", "Query (ms)", "Postings/query", "Results/query"},
		Notes: []string{
			"expected shape (paper): the ranking of methods is unchanged across selectivity classes; all methods get faster as keywords get rarer",
		},
	}

	methods := []string{"ID", "Chunk"}
	rigs := map[string]*rig{}
	for _, m := range methods {
		r, err := newRig(m, corpus, opts, index.Config{MinChunkSize: minChunkSize(opts)})
		if err != nil {
			return nil, err
		}
		if _, _, err := applyUpdates(r, updates, 0); err != nil {
			return nil, err
		}
		rigs[m] = r
	}

	classes := []workload.QueryClass{workload.Unselective, workload.MediumSelective, workload.Selective}
	for _, class := range classes {
		queries := workload.GenerateQueries(corpus, workload.QueryParams{
			Class:         class,
			TermsPerQuery: 2,
			NumQueries:    opts.NumQueries,
			Seed:          opts.Seed + 67,
		})
		for _, m := range methods {
			qs, err := runQueries(rigs[m], queries, opts, opts.K, false, false)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				class.String(), m, fmtDur(qs.avgTime), fmt.Sprintf("%.0f", qs.avgPostings),
				fmt.Sprintf("%.1f", float64(qs.results)/float64(opts.NumQueries)),
			})
		}
	}
	return t, nil
}
