package bench

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"svrdb/internal/core"
	"svrdb/internal/relation"
	"svrdb/internal/server"
	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
	"svrdb/internal/view"
	"svrdb/internal/workload"
)

// This file implements the multi-tenant isolation experiment: several small
// tenants serve searches from their own namespaced indexes while one hot
// tenant pushes a continuous update storm through its slice of the same
// engine.  It is the benchmark behind the tenancy layer's isolation claim —
// a tenant's maintenance traffic must cost its neighbours cache and CPU
// contention at worst, never lock waits, because searches read pinned epoch
// snapshots and the storm's batches only lock the writer path.

// tenantIsolationFactor is the multiple of a small tenant's idle p99 its
// storm p99 must stay within for the experiment to pass.
const tenantIsolationFactor = 2

// tenantP99Grace is absolute slack on the gate: on loaded hosts the tail
// picks up scheduler slices that are not lock waits, and at bench scale the
// idle p99 is small enough that a fixed-cost wobble would dominate a pure
// ratio.
const tenantP99Grace = 50 * time.Millisecond

// tenantStormBatch is the hot tenant's updates per ApplyBatch round.
const tenantStormBatch = 128

// numSmallTenants is how many small serving tenants share the engine with
// the hot one.
const numSmallTenants = 4

// hotTenantSlots is the hot tenant's share of the document assignment: with
// 4 small tenants and 4 hot slots the hot tenant owns half the corpus and
// each small tenant an eighth, so the storm has real index mass to churn.
const hotTenantSlots = 4

// tenantEngine is the multi-tenant rig: one engine, one index per tenant
// over that tenant's namespaced table.
type tenantEngine struct {
	engine  *core.Engine
	small   []*core.TextIndex
	hotDocs []workload.DocID
}

// tenantName returns the i-th small tenant's name.
func tenantName(i int) string { return fmt.Sprintf("t%d", i) }

// buildTenantEngine partitions the corpus across the tenants' namespaced
// tables and builds one chunk index per tenant, registering each tenant
// with a quota comfortably above its usage (the experiment measures
// isolation, not rejection — the quota suite covers that).
func buildTenantEngine(corpus *workload.Corpus, opts Options) (*tenantEngine, error) {
	pool := buffer.MustNew(pagefile.MustNewMem(pagefile.DefaultPageSize), opts.PoolPages*4)
	registerPool(pool)
	db := relation.NewDB(pool)
	engine := core.NewEngine(db, core.Options{})

	names := make([]string, 0, numSmallTenants+1)
	for i := 0; i < numSmallTenants; i++ {
		names = append(names, tenantName(i))
	}
	names = append(names, "hot")
	tables := make(map[string]*relation.Table, len(names))
	for _, name := range names {
		if err := engine.CreateTenant(name, core.TenantQuota{MaxRows: int64(corpus.NumDocs()) + 1}); err != nil {
			return nil, err
		}
		tbl, err := db.CreateTable(relation.Schema{
			Name: name + "/Docs",
			Columns: []relation.Column{
				{Name: "id", Kind: relation.KindInt64},
				{Name: "body", Kind: relation.KindString},
				{Name: "score", Kind: relation.KindFloat64},
			},
		})
		if err != nil {
			return nil, err
		}
		tables[name] = tbl
	}

	te := &tenantEngine{engine: engine}
	slots := numSmallTenants + hotTenantSlots
	err := corpus.ForEach(func(doc workload.DocID, tokens []string) error {
		name := "hot"
		if slot := int(doc) % slots; slot < numSmallTenants {
			name = tenantName(slot)
		} else {
			te.hotDocs = append(te.hotDocs, doc)
		}
		return tables[name].Insert(relation.Row{
			relation.Int(int64(doc)),
			relation.Str(strings.Join(tokens, " ")),
			relation.Float(corpus.Score(doc)),
		})
	})
	if err != nil {
		return nil, err
	}

	for _, name := range names {
		ti, err := engine.CreateTextIndex(name+"/docs", name+"/Docs", "body", core.IndexOptions{
			Method:       core.MethodChunk,
			Spec:         view.Spec{Components: []view.Component{view.OwnColumn(name+"/Docs", "score")}},
			MinChunkSize: minChunkSize(opts),
		})
		if err != nil {
			return nil, err
		}
		if name != "hot" {
			te.small = append(te.small, ti)
		}
	}
	return te, nil
}

// runHotStorm pushes back-to-back update batches through the hot tenant's
// table until stop closes, cycling through the update trace.  It returns
// the applied batch count via the counter.
func (te *tenantEngine) runHotStorm(updates []workload.ScoreUpdate, stop <-chan struct{}, applied *atomic.Int64) error {
	i := 0
	for {
		select {
		case <-stop:
			return nil
		default:
		}
		end := i + tenantStormBatch
		if end > len(updates) {
			end = len(updates)
		}
		chunk := updates[i:end]
		err := te.engine.ApplyBatch(func() error {
			tbl, err := te.engine.DB().Table("hot/Docs")
			if err != nil {
				return err
			}
			for _, u := range chunk {
				if err := tbl.Update(int64(u.Doc), map[string]relation.Value{"score": relation.Float(u.NewScore)}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		applied.Add(1)
		i = end
		if i >= len(updates) {
			i = 0
		}
	}
}

// runTenantSearchLoad replays total queries across workers goroutines,
// round-robining requests over the small tenants' indexes via an atomic
// cursor, and returns one latency summary per tenant plus the aggregate.
func runTenantSearchLoad(indexes []*core.TextIndex, queries [][]string, k, workers, total int) ([]server.LoadResult, server.LoadResult, error) {
	reqs := make([]string, len(queries))
	for i, terms := range queries {
		reqs[i] = strings.Join(terms, " ")
	}
	var cursor atomic.Int64
	var (
		errMu    sync.Mutex
		firstErr error
	)
	// perWorker[w][tenant] collects latencies without cross-worker sharing.
	perWorker := make([][][]time.Duration, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lats := make([][]time.Duration, len(indexes))
			for {
				i := cursor.Add(1) - 1
				if i >= int64(total) {
					break
				}
				tn := int(i) % len(indexes)
				qStart := time.Now()
				if _, err := indexes[tn].Search(core.SearchRequest{Query: reqs[i%int64(len(reqs))], K: k}); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					break
				}
				lats[tn] = append(lats[tn], time.Since(qStart))
			}
			perWorker[w] = lats
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return nil, server.LoadResult{}, firstErr
	}
	perTenant := make([]server.LoadResult, len(indexes))
	var all []time.Duration
	for tn := range indexes {
		var lats []time.Duration
		for w := 0; w < workers; w++ {
			lats = append(lats, perWorker[w][tn]...)
		}
		perTenant[tn] = server.Summarize(lats, elapsed, workers)
		all = append(all, lats...)
	}
	return perTenant, server.Summarize(all, elapsed, workers), nil
}

// RunTenants measures small-tenant search latency with and without the hot
// tenant's update storm running on the same engine.
func RunTenants(opts Options) (*Table, error) {
	opts = opts.normalized()
	corpus := corpusFor(opts)
	queries := workload.GenerateQueries(corpus, queryParams(opts))

	up := workload.DefaultUpdateParams()
	up.NumUpdates = opts.NumUpdates
	up.MeanStep = opts.MeanStep
	up.Seed = opts.Seed + 71
	var hotUpdates []workload.ScoreUpdate

	te, err := buildTenantEngine(corpus, opts)
	if err != nil {
		return nil, fmt.Errorf("bench: tenants: %w", err)
	}
	hotSet := make(map[workload.DocID]bool, len(te.hotDocs))
	for _, d := range te.hotDocs {
		hotSet[d] = true
	}
	for _, u := range workload.GenerateUpdates(corpus, up) {
		if hotSet[u.Doc] {
			hotUpdates = append(hotUpdates, u)
		}
	}
	if len(hotUpdates) == 0 {
		return nil, fmt.Errorf("bench: tenants: update trace has no hot-tenant documents")
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > 4 {
		workers = 4
	}
	// Enough samples that every tenant's p99 rests on a real tail (total is
	// split numSmallTenants ways).
	total := opts.NumQueries * 50
	if total < 1000*numSmallTenants {
		total = 1000 * numSmallTenants
	}

	// Warm every small index once so the idle phase measures a warm cache.
	if _, _, err := runTenantSearchLoad(te.small, queries, opts.K, 1, len(queries)*numSmallTenants); err != nil {
		return nil, fmt.Errorf("bench: tenants: warmup: %w", err)
	}

	idle, idleAll, err := runTenantSearchLoad(te.small, queries, opts.K, workers, total)
	if err != nil {
		return nil, fmt.Errorf("bench: tenants: idle phase: %w", err)
	}

	stop := make(chan struct{})
	stormErr := make(chan error, 1)
	var applied atomic.Int64
	go func() { stormErr <- te.runHotStorm(hotUpdates, stop, &applied) }()
	storm, stormAll, err := runTenantSearchLoad(te.small, queries, opts.K, workers, total)
	close(stop)
	if serr := <-stormErr; err == nil && serr != nil {
		err = serr
	}
	if err != nil {
		return nil, fmt.Errorf("bench: tenants: storm phase: %w", err)
	}

	multiCore := runtime.GOMAXPROCS(0) > 1
	gated := multiCore && opts.Scale >= tailGateScale
	if gated {
		for tn := range te.small {
			if storm[tn].P99 > tenantIsolationFactor*idle[tn].P99+tenantP99Grace {
				return nil, fmt.Errorf("bench: tenants: %s storm p99 %s exceeds %dx idle p99 %s (+%s) — the hot tenant's maintenance is stalling a neighbour's searches",
					tenantName(tn), storm[tn].P99, tenantIsolationFactor, idle[tn].P99, tenantP99Grace)
			}
		}
	}

	hotUsage := te.engine.TenantUsageOf("hot")
	t := &Table{
		Name: "Multi-tenant isolation — small-tenant search latency vs a hot tenant's update storm",
		Caption: fmt.Sprintf("one engine, %d small tenants + 1 hot tenant (hot owns %d/%d of the corpus); %d query workers x %d queries round-robined over the small tenants; storm = back-to-back ApplyBatch rounds of %d score updates on the hot tenant's table",
			numSmallTenants, hotTenantSlots, numSmallTenants+hotTenantSlots, workers, total, tenantStormBatch),
		Header: []string{"Tenant", "Phase", "QPS", "p50 (ms)", "p99 (ms)", "max (ms)", "p99 vs idle"},
		Notes: []string{
			fmt.Sprintf("gate (multi-core hosts, scale >= %.2g): each small tenant's storm p99 must stay within %dx of its idle p99 (+%s) — searches pin epoch snapshots and never queue behind the hot tenant's writer", tailGateScale, tenantIsolationFactor, tenantP99Grace),
			fmt.Sprintf("hot tenant applied %d storm batches (%d updates) concurrently; hot usage %d rows / %d bytes", applied.Load(), applied.Load()*tenantStormBatch, hotUsage.Rows, hotUsage.Bytes),
		},
	}
	if !multiCore {
		t.Notes = append(t.Notes,
			"single-CPU host: the storm time-shares the core with the search workers, so the isolation gate is informational only here")
	}
	for tn := range te.small {
		addTenantRow(t, tenantName(tn), "idle", idle[tn], idle[tn])
		addTenantRow(t, tenantName(tn), "storm", storm[tn], idle[tn])
	}
	addTenantRow(t, "all-small", "idle", idleAll, idleAll)
	addTenantRow(t, "all-small", "storm", stormAll, idleAll)

	if err := te.engine.Close(); err != nil {
		return nil, fmt.Errorf("bench: tenants: close: %w", err)
	}
	return t, nil
}

func addTenantRow(t *Table, tenant, phase string, r, idle server.LoadResult) {
	ratio := "1.00x"
	if phase != "idle" && idle.P99 > 0 {
		ratio = fmt.Sprintf("%.2fx", float64(r.P99)/float64(idle.P99))
	}
	t.Rows = append(t.Rows, []string{
		tenant, phase, fmt.Sprintf("%.0f", r.QPS),
		fmtDur(r.P50), fmtDur(r.P99), fmtDur(r.Max), ratio,
	})
}
