package bench

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"svrdb/internal/core"
	"svrdb/internal/relation"
	"svrdb/internal/server"
	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
	"svrdb/internal/view"
	"svrdb/internal/workload"
)

// This file implements the HTTP serving experiment: the Figure 7 query mix
// replayed over the real serving stack — TCP loopback, JSON codec, mux,
// metrics, the engine's snapshot coordination — at 1/2/4/GOMAXPROCS client
// workers, next to the same queries through a direct core.TextIndex.Search
// call.  The gap between the two rows is the measured serving overhead; the
// paper's evaluation stops at the method layer, but the engine's north star
// is serving traffic, so the harness has to know what the HTTP layer costs.

// serveEngine bundles the engine-backed rig the serve experiment measures.
type serveEngine struct {
	engine *core.Engine
	index  *core.TextIndex
}

// buildServeEngine loads the synthetic corpus into a relational table
// ("Docs": pk, body text, score column) and builds a text index whose SVR
// score is the score column itself, so the workload generator's update
// trace maps 1:1 onto structured updates.
func buildServeEngine(corpus *workload.Corpus, opts Options, kind core.MethodKind) (*serveEngine, error) {
	return buildServeEngineFiltered(corpus, opts, kind, nil)
}

// buildServeEngineFiltered is buildServeEngine restricted to the documents
// keep selects (nil keeps everything); the shard experiment uses it to give
// each shard engine its partition of the corpus.
func buildServeEngineFiltered(corpus *workload.Corpus, opts Options, kind core.MethodKind, keep func(int64) bool) (*serveEngine, error) {
	pool := buffer.MustNew(pagefile.MustNewMem(pagefile.DefaultPageSize), opts.PoolPages*4)
	registerPool(pool)
	db := relation.NewDB(pool)
	tbl, err := db.CreateTable(relation.Schema{
		Name: "Docs",
		Columns: []relation.Column{
			{Name: "id", Kind: relation.KindInt64},
			{Name: "body", Kind: relation.KindString},
			{Name: "score", Kind: relation.KindFloat64},
		},
	})
	if err != nil {
		return nil, err
	}
	err = corpus.ForEach(func(doc workload.DocID, tokens []string) error {
		if keep != nil && !keep(int64(doc)) {
			return nil
		}
		return tbl.Insert(relation.Row{
			relation.Int(int64(doc)),
			relation.Str(strings.Join(tokens, " ")),
			relation.Float(corpus.Score(doc)),
		})
	})
	if err != nil {
		return nil, err
	}
	engine := core.NewEngine(db, core.Options{})
	ti, err := engine.CreateTextIndex("docs", "Docs", "body", core.IndexOptions{
		Method:       kind,
		Spec:         view.Spec{Components: []view.Component{view.OwnColumn("Docs", "score")}},
		MinChunkSize: minChunkSize(opts),
	})
	if err != nil {
		return nil, err
	}
	return &serveEngine{engine: engine, index: ti}, nil
}

// applyServeUpdates replays the score-update trace as structured updates
// through Engine.ApplyBatch, populating the short lists the same way the
// method-level experiments do before measuring queries.
func (se *serveEngine) applyServeUpdates(updates []workload.ScoreUpdate, batchSize int) error {
	for start := 0; start < len(updates); start += batchSize {
		end := start + batchSize
		if end > len(updates) {
			end = len(updates)
		}
		chunk := updates[start:end]
		err := se.engine.ApplyBatch(func() error {
			tbl, err := se.engine.DB().Table("Docs")
			if err != nil {
				return err
			}
			for _, u := range chunk {
				if err := tbl.Update(int64(u.Doc), map[string]relation.Value{"score": relation.Float(u.NewScore)}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// measureDirect replays total queries through core.TextIndex.Search on one
// goroutine and summarizes latency the same way the load generator does, so
// the direct row of the table is exactly comparable to the HTTP rows.
func (se *serveEngine) measureDirect(queries [][]string, k, total int) (server.LoadResult, error) {
	lats := make([]time.Duration, 0, total)
	start := time.Now()
	for i := 0; i < total; i++ {
		terms := queries[i%len(queries)]
		qStart := time.Now()
		if _, err := se.index.Search(core.SearchRequest{Query: strings.Join(terms, " "), K: k}); err != nil {
			return server.LoadResult{}, err
		}
		lats = append(lats, time.Since(qStart))
	}
	return server.Summarize(lats, time.Since(start), 1), nil
}

// RunServe measures the HTTP serving layer against the direct search path.
func RunServe(opts Options) (*Table, error) {
	opts = opts.normalized()
	corpus := corpusFor(opts)
	queries := workload.GenerateQueries(corpus, queryParams(opts))

	up := workload.DefaultUpdateParams()
	up.NumUpdates = opts.NumUpdates
	up.MeanStep = opts.MeanStep
	up.Seed = opts.Seed + 47
	updates := workload.GenerateUpdates(corpus, up)

	se, err := buildServeEngine(corpus, opts, core.MethodChunk)
	if err != nil {
		return nil, err
	}
	if err := se.applyServeUpdates(updates, 256); err != nil {
		return nil, err
	}

	srv := server.New(se.engine, server.Options{})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	baseURL := "http://" + addr

	baseQueries := opts.NumQueries * 4
	if baseQueries < 64 {
		baseQueries = 64
	}

	// Warm the cache and the scratch pools once before measuring.
	if _, err := se.measureDirect(queries, opts.K, len(queries)); err != nil {
		return nil, err
	}

	direct, err := se.measureDirect(queries, opts.K, baseQueries)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Name: "HTTP Serving — Figure 7 query mix over the serving stack vs direct Search",
		Caption: fmt.Sprintf("Chunk method, k=%d, conjunctive, warm cache, after %d score updates; %d queries per worker, GOMAXPROCS=%d",
			opts.K, len(updates), baseQueries, runtime.GOMAXPROCS(0)),
		Header: []string{"Path", "Workers", "QPS", "avg (ms)", "p50 (ms)", "p99 (ms)", "p99.9 (ms)", "Scaling vs 1 worker"},
	}
	addRow := func(path string, r server.LoadResult, baseQPS float64) {
		scaling := "1.00x"
		if baseQPS > 0 && r.QPS > 0 && r.Workers > 1 {
			scaling = fmt.Sprintf("%.2fx", r.QPS/baseQPS)
		}
		t.Rows = append(t.Rows, []string{
			path, fmt.Sprintf("%d", r.Workers), fmt.Sprintf("%.0f", r.QPS),
			fmtDur(r.Avg), fmtDur(r.P50), fmtDur(r.P99), fmtDur(r.P999), scaling,
		})
	}
	addRow("direct Search", direct, 0)

	var httpBaseQPS float64
	var httpOneWorker server.LoadResult
	for _, workers := range WorkerCounts() {
		client := server.NewLoadClient(workers)
		// Warm this row's client so its keep-alive connections exist before
		// the measured window — otherwise each row's p99 includes TCP
		// handshakes, which is not what the experiment compares.
		if _, err := server.RunSearchLoad(client, baseURL, "docs", queries, opts.K, workers, workers*2); err != nil {
			return nil, err
		}
		res, err := server.RunSearchLoad(client, baseURL, "docs", queries, opts.K, workers, baseQueries*workers)
		if err != nil {
			return nil, err
		}
		if workers == 1 {
			httpBaseQPS = res.QPS
			httpOneWorker = res
		}
		addRow("HTTP", res, httpBaseQPS)
	}

	if direct.Avg > 0 && httpOneWorker.Avg > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"serving overhead at 1 worker: %.3f ms/query HTTP vs %.3f ms direct (%.2fx, +%s per request for TCP + JSON + mux + metrics)",
			float64(httpOneWorker.Avg.Nanoseconds())/1e6, float64(direct.Avg.Nanoseconds())/1e6,
			float64(httpOneWorker.Avg)/float64(direct.Avg), (httpOneWorker.Avg-direct.Avg).Round(time.Microsecond)))
	}
	t.Notes = append(t.Notes,
		"on a multi-core machine HTTP QPS should scale with workers like the concurrent experiment; on a single core it stays flat",
		"shutdown below is part of the measurement: the server drains in-flight requests and the engine's close-time pin audit must pass",
	)

	// Graceful shutdown is part of the serving contract: drain, close,
	// audit pins.  A failure here fails the experiment (and hence tier-1's
	// experiment smoke).
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return nil, fmt.Errorf("bench: serve shutdown: %w", err)
	}
	return t, nil
}
