package bench

import (
	"fmt"
	"time"

	"svrdb/internal/core"
	"svrdb/internal/index"
	"svrdb/internal/relation"
	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
	"svrdb/internal/workload"
)

// RunTable1 reproduces Table 1: the size of the long inverted lists for every
// method on the same collection.
func RunTable1(opts Options) (*Table, error) {
	opts = opts.normalized()
	corpus := corpusFor(opts)
	methods := []string{"ID", "Score", "Score-Threshold", "Chunk", "ID-TermScore", "Chunk-TermScore"}
	t := &Table{
		Name:    "Table 1 — Size of Long Inverted Lists",
		Caption: fmt.Sprintf("collection: %d docs x %d tokens, %d distinct terms", corpus.NumDocs(), corpus.Params().TermsPerDoc, corpus.DistinctTermCount()),
		Header:  []string{"Method", "Long list size (MB)", "Relative to ID"},
		Notes: []string{
			"expected shape (paper): Score >> Score-Threshold > ID ~= Chunk; TermScore variants ~3x their base",
		},
	}
	var idSize uint64
	sizes := map[string]uint64{}
	for _, m := range methods {
		r, err := newRig(m, corpus, opts, index.Config{})
		if err != nil {
			return nil, err
		}
		sizes[m] = r.method.Stats().LongListBytes
		if m == "ID" {
			idSize = sizes[m]
		}
	}
	for _, m := range methods {
		rel := "-"
		if idSize > 0 {
			rel = fmt.Sprintf("%.2fx", float64(sizes[m])/float64(idSize))
		}
		t.Rows = append(t.Rows, []string{m, fmtMB(sizes[m]), rel})
	}
	return t, nil
}

// RunTable2 reproduces Table 2: the chunk-ratio sweep for several mean update
// step sizes.
func RunTable2(opts Options) (*Table, error) {
	opts = opts.normalized()
	corpus := corpusFor(opts)
	queries := workload.GenerateQueries(corpus, queryParams(opts))
	ratios := []float64{164.84, 82.92, 41.96, 21.48, 11.24, 6.12, 3.56, 2.28, 1.56}
	steps := []float64{100, 1000, 10000}

	t := &Table{
		Name:    "Table 2 — Effect of Chunk Ratio (times in ms)",
		Caption: fmt.Sprintf("%d score updates, %d queries, k=%d", opts.NumUpdates, opts.NumQueries, opts.K),
		Header:  []string{"Ratio", "Upd(step 100)", "Qry(step 100)", "Upd(step 1000)", "Qry(step 1000)", "Upd(step 10000)", "Qry(step 10000)"},
		Notes: []string{
			"expected shape (paper): update cost rises as the ratio shrinks; the optimal ratio grows with the update step",
		},
	}
	for _, ratio := range ratios {
		row := []string{fmt.Sprintf("%.2f", ratio)}
		for _, step := range steps {
			upd, qry, err := chunkRatioPoint(corpus, opts, ratio, step, queries)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtDur(upd), fmtDur(qry))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func chunkRatioPoint(corpus *workload.Corpus, opts Options, ratio, step float64, queries [][]string) (time.Duration, time.Duration, error) {
	r, err := newRig("Chunk", corpus, opts, index.Config{ChunkRatio: ratio, MinChunkSize: minChunkSize(opts)})
	if err != nil {
		return 0, 0, err
	}
	up := workload.DefaultUpdateParams()
	up.NumUpdates = opts.NumUpdates
	up.MeanStep = step
	up.Seed = opts.Seed + int64(step)
	updates := workload.GenerateUpdates(corpus, up)
	upd, _, err := applyUpdates(r, updates, 0)
	if err != nil {
		return 0, 0, err
	}
	qs, err := runQueries(r, queries, opts, opts.K, false, false)
	if err != nil {
		return 0, 0, err
	}
	return upd, qs.avgTime, nil
}

// minChunkSize adapts the paper's minimum chunk size of 100 documents to the
// scaled collection.
func minChunkSize(opts Options) int {
	n := int(100 * opts.Scale)
	if n < 4 {
		n = 4
	}
	return n
}

func queryParams(opts Options) workload.QueryParams {
	qp := workload.DefaultQueryParams()
	qp.NumQueries = opts.NumQueries
	qp.Seed = opts.Seed + 77
	return qp
}

// RunFigure7 reproduces Figure 7: per-operation update and query times for
// the four SVR-only methods as the number of score updates grows.
func RunFigure7(opts Options) (*Table, error) {
	opts = opts.normalized()
	corpus := corpusFor(opts)
	queries := workload.GenerateQueries(corpus, queryParams(opts))
	methods := []string{"ID", "Score", "Score-Threshold", "Chunk"}
	points := []int{0, opts.NumUpdates / 4, opts.NumUpdates / 2, opts.NumUpdates}

	t := &Table{
		Name:    "Figure 7 — Varying the Number of Updates (times in ms)",
		Caption: fmt.Sprintf("per-op averages; %d queries per point, k=%d", opts.NumQueries, opts.K),
		Header:  []string{"#Updates", "Method", "Update (ms/op)", "Query (ms)", "Postings/query", "Pages/query"},
		Notes: []string{
			"expected shape (paper): Score update cost is orders of magnitude above all others; ID query cost is flat and highest of the chunked methods; Chunk and Score-Threshold track each other with Chunk slightly ahead",
			"the Score method is capped at a small number of measured updates because each one rewrites every posting of the document",
			"Pages/query counts buffer-pool misses per query; with a warm pool it is ~0 and only the cold/disk-backed runs exercise it",
		},
	}
	up := workload.DefaultUpdateParams()
	up.MeanStep = opts.MeanStep
	up.Seed = opts.Seed + 5
	for _, nUpd := range points {
		up.NumUpdates = nUpd
		updates := workload.GenerateUpdates(corpus, up)
		for _, m := range methods {
			r, err := newRig(m, corpus, opts, index.Config{MinChunkSize: minChunkSize(opts)})
			if err != nil {
				return nil, err
			}
			cap := 0
			if m == "Score" {
				cap = 50
			}
			upd, applied, err := applyUpdates(r, updates, cap)
			if err != nil {
				return nil, err
			}
			qs, err := runQueries(r, queries, opts, opts.K, false, false)
			if err != nil {
				return nil, err
			}
			updCell := fmtDur(upd)
			if applied == 0 {
				updCell = "-"
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", nUpd), m, updCell, fmtDur(qs.avgTime), fmt.Sprintf("%.0f", qs.avgPostings), fmt.Sprintf("%.1f", qs.avgPages),
			})
		}
	}
	return t, nil
}

// RunFigure8 reproduces Figure 8: query time as k grows.
func RunFigure8(opts Options) (*Table, error) {
	opts = opts.normalized()
	corpus := corpusFor(opts)
	queries := workload.GenerateQueries(corpus, queryParams(opts))
	methods := []string{"ID", "Score-Threshold", "Chunk"}
	ks := []int{1, 10, 100, 1000}

	up := workload.DefaultUpdateParams()
	up.NumUpdates = opts.NumUpdates
	up.MeanStep = opts.MeanStep
	up.Seed = opts.Seed + 9
	updates := workload.GenerateUpdates(corpus, up)

	t := &Table{
		Name:    "Figure 8 — Varying the Number of Desired Results (times in ms)",
		Caption: fmt.Sprintf("after %d score updates; %d queries per point", opts.NumUpdates, opts.NumQueries),
		Header:  []string{"k", "Method", "Query (ms)", "Postings/query"},
		Notes: []string{
			"expected shape (paper): ID is flat in k; Chunk and Score-Threshold grow with k and approach ID for large k; Chunk dominates Score-Threshold",
		},
	}
	rigs := map[string]*rig{}
	for _, m := range methods {
		r, err := newRig(m, corpus, opts, index.Config{MinChunkSize: minChunkSize(opts)})
		if err != nil {
			return nil, err
		}
		if _, _, err := applyUpdates(r, updates, 0); err != nil {
			return nil, err
		}
		rigs[m] = r
	}
	for _, k := range ks {
		for _, m := range methods {
			qs, err := runQueries(rigs[m], queries, opts, k, false, false)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", k), m, fmtDur(qs.avgTime), fmt.Sprintf("%.0f", qs.avgPostings)})
		}
	}
	return t, nil
}

// RunStepSweep reproduces §5.3.4: for each mean update step, the Chunk
// method tuned with a suitable ratio is compared against the ID method.
func RunStepSweep(opts Options) (*Table, error) {
	opts = opts.normalized()
	corpus := corpusFor(opts)
	queries := workload.GenerateQueries(corpus, queryParams(opts))
	steps := []float64{100, 1000, 10000}
	tunedRatio := map[float64]float64{100: 6.12, 1000: 21.48, 10000: 82.92}

	t := &Table{
		Name:    "§5.3.4 — Varying Mean Update Step Size (times in ms)",
		Caption: fmt.Sprintf("%d updates, %d queries, k=%d; Chunk uses the ratio tuned for each step", opts.NumUpdates, opts.NumQueries, opts.K),
		Header:  []string{"Mean step", "Method", "Update (ms/op)", "Query (ms)"},
		Notes: []string{
			"expected shape (paper): the tuned Chunk method matches or beats ID at every step size; ID query time is flat",
		},
	}
	for _, step := range steps {
		up := workload.DefaultUpdateParams()
		up.NumUpdates = opts.NumUpdates
		up.MeanStep = step
		up.Seed = opts.Seed + int64(step)
		updates := workload.GenerateUpdates(corpus, up)

		for _, m := range []string{"Chunk", "ID"} {
			cfg := index.Config{MinChunkSize: minChunkSize(opts)}
			if m == "Chunk" {
				cfg.ChunkRatio = tunedRatio[step]
			}
			r, err := newRig(m, corpus, opts, cfg)
			if err != nil {
				return nil, err
			}
			upd, _, err := applyUpdates(r, updates, 0)
			if err != nil {
				return nil, err
			}
			qs, err := runQueries(r, queries, opts, opts.K, false, false)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{fmt.Sprintf("%.0f", step), m, fmtDur(upd), fmtDur(qs.avgTime)})
		}
	}
	return t, nil
}

// RunFigure9 reproduces Figure 9: combined SVR + term-score ranking,
// Chunk-TermScore versus the ID-TermScore baseline.
func RunFigure9(opts Options) (*Table, error) {
	opts = opts.normalized()
	corpus := corpusFor(opts)
	queries := workload.GenerateQueries(corpus, queryParams(opts))
	methods := []string{"ID-TermScore", "Chunk-TermScore"}

	up := workload.DefaultUpdateParams()
	up.NumUpdates = opts.NumUpdates
	up.MeanStep = opts.MeanStep
	up.Seed = opts.Seed + 13
	updates := workload.GenerateUpdates(corpus, up)

	t := &Table{
		Name:    "Figure 9 — Combining Term Scores (times in ms)",
		Caption: fmt.Sprintf("%d updates, %d queries, k=%d, combined SVR+TF-IDF ranking", opts.NumUpdates, opts.NumQueries, opts.K),
		Header:  []string{"Method", "Update (ms/op)", "Query (ms)", "Postings/query"},
		Notes: []string{
			"expected shape (paper): Chunk-TermScore query time is well below ID-TermScore (early stopping) with comparable update cost",
		},
	}
	for _, m := range methods {
		r, err := newRig(m, corpus, opts, index.Config{MinChunkSize: minChunkSize(opts)})
		if err != nil {
			return nil, err
		}
		upd, _, err := applyUpdates(r, updates, 0)
		if err != nil {
			return nil, err
		}
		qs, err := runQueries(r, queries, opts, opts.K, false, true)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{m, fmtDur(upd), fmtDur(qs.avgTime), fmt.Sprintf("%.0f", qs.avgPostings)})
	}
	return t, nil
}

// RunFigure10 reproduces Figure 10: disjunctive versus conjunctive queries.
func RunFigure10(opts Options) (*Table, error) {
	opts = opts.normalized()
	corpus := corpusFor(opts)
	queries := workload.GenerateQueries(corpus, queryParams(opts))
	methods := []string{"ID", "Score-Threshold", "Chunk", "ID-TermScore", "Chunk-TermScore"}

	up := workload.DefaultUpdateParams()
	up.NumUpdates = opts.NumUpdates
	up.MeanStep = opts.MeanStep
	up.Seed = opts.Seed + 17
	updates := workload.GenerateUpdates(corpus, up)

	t := &Table{
		Name:    "Figure 10 — Disjunctive Query Results (times in ms)",
		Caption: fmt.Sprintf("%d updates, %d queries, k=%d", opts.NumUpdates, opts.NumQueries, opts.K),
		Header:  []string{"Method", "Conjunctive (ms)", "Disjunctive (ms)", "Disj postings/query", "Disj pages/query"},
		Notes: []string{
			"expected shape (paper): the chunked/threshold methods are nearly unchanged; the ID family degrades because disjunction produces many more candidates",
			"Disj pages/query counts buffer-pool misses per disjunctive query; ~0 on a warm pool",
		},
	}
	for _, m := range methods {
		r, err := newRig(m, corpus, opts, index.Config{MinChunkSize: minChunkSize(opts)})
		if err != nil {
			return nil, err
		}
		if _, _, err := applyUpdates(r, updates, 0); err != nil {
			return nil, err
		}
		withTS := m == "ID-TermScore" || m == "Chunk-TermScore"
		conj, err := runQueries(r, queries, opts, opts.K, false, withTS)
		if err != nil {
			return nil, err
		}
		disj, err := runQueries(r, queries, opts, opts.K, true, withTS)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{m, fmtDur(conj.avgTime), fmtDur(disj.avgTime), fmt.Sprintf("%.0f", disj.avgPostings), fmt.Sprintf("%.1f", disj.avgPages)})
	}
	return t, nil
}

// RunTable3 reproduces Table 3 (Appendix A.3): the effect of incremental
// document insertions on query, score-update and insertion cost for the
// Chunk method.
func RunTable3(opts Options) (*Table, error) {
	opts = opts.normalized()
	corpus := corpusFor(opts)
	queries := workload.GenerateQueries(corpus, queryParams(opts))
	insertPoints := []int{100, 200, 400, 800, 1000}

	t := &Table{
		Name:    "Table 3 — Varying the Number of Insertions (times in ms)",
		Caption: "Chunk method; insertions are new documents added after the bulk build",
		Header:  []string{"Inserted docs", "Query (ms)", "Score update (ms/op)", "Insertion (ms/doc)"},
		Notes: []string{
			"expected shape (paper): query time stays robust; score-update and insertion cost grow as the short lists grow",
		},
	}
	params := corpus.Params()
	for _, nIns := range insertPoints {
		r, err := newRig("Chunk", corpus, opts, index.Config{MinChunkSize: minChunkSize(opts)})
		if err != nil {
			return nil, err
		}
		// Insert new documents drawn from the same distributions.
		insCorpus := workload.Generate(workload.Params{
			NumDocs:     nIns,
			TermsPerDoc: params.TermsPerDoc,
			VocabSize:   params.VocabSize,
			TermZipf:    params.TermZipf,
			ScoreMax:    params.ScoreMax,
			ScoreZipf:   params.ScoreZipf,
			Seed:        opts.Seed + int64(nIns),
		})
		start := time.Now()
		for i := 0; i < nIns; i++ {
			doc := workload.DocID(corpus.NumDocs() + i + 1)
			tokens, err := insCorpus.Tokens(workload.DocID(i + 1))
			if err != nil {
				return nil, err
			}
			if err := r.method.InsertDocument(doc, tokens, insCorpus.Score(workload.DocID(i+1))); err != nil {
				return nil, err
			}
		}
		insertAvg := time.Since(start) / time.Duration(nIns)

		up := workload.DefaultUpdateParams()
		up.NumUpdates = opts.NumUpdates / 4
		up.MeanStep = opts.MeanStep
		up.Seed = opts.Seed + 23
		updates := workload.GenerateUpdates(corpus, up)
		updAvg, _, err := applyUpdates(r, updates, 0)
		if err != nil {
			return nil, err
		}
		qs, err := runQueries(r, queries, opts, opts.K, false, false)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", nIns), fmtDur(qs.avgTime), fmtDur(updAvg), fmtDur(insertAvg),
		})
	}
	return t, nil
}

// RunThresholdSweep is the Score-Threshold analogue of Table 2 (the paper
// reports the same tradeoff exists but omits the numbers).
func RunThresholdSweep(opts Options) (*Table, error) {
	opts = opts.normalized()
	corpus := corpusFor(opts)
	queries := workload.GenerateQueries(corpus, queryParams(opts))
	ratios := []float64{100, 50, 20, 11.24, 5, 2, 1.2}

	t := &Table{
		Name:    "§5.3.1 — Effect of Threshold Ratio (times in ms)",
		Caption: fmt.Sprintf("Score-Threshold method, %d updates, %d queries, k=%d", opts.NumUpdates, opts.NumQueries, opts.K),
		Header:  []string{"Threshold ratio", "Update (ms/op)", "Query (ms)", "Short-list postings"},
		Notes: []string{
			"expected shape: small ratios push many documents into the short lists (costly updates); large ratios make queries scan more of the long lists",
		},
	}
	up := workload.DefaultUpdateParams()
	up.NumUpdates = opts.NumUpdates
	up.MeanStep = opts.MeanStep
	up.Seed = opts.Seed + 31
	updates := workload.GenerateUpdates(corpus, up)
	for _, ratio := range ratios {
		r, err := newRig("Score-Threshold", corpus, opts, index.Config{ThresholdRatio: ratio})
		if err != nil {
			return nil, err
		}
		upd, _, err := applyUpdates(r, updates, 0)
		if err != nil {
			return nil, err
		}
		qs, err := runQueries(r, queries, opts, opts.K, false, false)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", ratio), fmtDur(upd), fmtDur(qs.avgTime),
			fmt.Sprintf("%d", r.method.Stats().ShortListEntries),
		})
	}
	return t, nil
}

// RunArchive reproduces the spirit of §5.3.7: the same comparison on an
// Internet-Archive-style relational data set driven through the full engine
// (score specification, materialized view, index maintenance).
func RunArchive(opts Options) (*Table, error) {
	opts = opts.normalized()
	nMovies := int(2000 * opts.Scale)
	if nMovies < 200 {
		nMovies = 200
	}

	t := &Table{
		Name:    "§5.3.7 — Archive-Style Data Set (times in ms)",
		Caption: fmt.Sprintf("%d movies with reviews and statistics; structured updates drive score changes through the materialized view", nMovies),
		Header:  []string{"Method", "Structured update (ms/op)", "Query (ms)", "Top-1 stable"},
		Notes: []string{
			"expected shape (paper): the same conclusions as the synthetic data — Chunk best or close to best on both sides",
		},
	}
	for _, kind := range []core.MethodKind{core.MethodID, core.MethodScoreThreshold, core.MethodChunk} {
		file := pagefile.MustNewMem(pagefile.DefaultPageSize)
		file.SetReadLatency(opts.ReadLatency)
		pool := buffer.MustNew(file, opts.PoolPages)
		registerPool(pool)
		db := relation.NewDB(pool)
		if _, err := workload.BuildArchiveDB(db, workload.ArchiveParams{
			NumMovies:        nMovies,
			ReviewsPerMovie:  5,
			WordsPerDesc:     40,
			Seed:             opts.Seed,
			PopularityZipf:   0.75,
			MaxVisitsPerItem: 100000,
		}); err != nil {
			return nil, err
		}
		engine := core.NewEngine(db, core.Options{})
		ti, err := engine.CreateTextIndex("movies_desc", "Movies", "desc", core.IndexOptions{
			Method: kind,
			Spec:   workload.ArchiveSpec(),
		})
		if err != nil {
			return nil, err
		}

		// Structured updates: bump visit counts of random movies (flash
		// crowds), which flows through the view into index score updates.
		stats, err := db.Table("Statistics")
		if err != nil {
			return nil, err
		}
		nUpdates := opts.NumUpdates / 4
		if nUpdates > nMovies*4 {
			nUpdates = nMovies * 4
		}
		start := time.Now()
		for i := 0; i < nUpdates; i++ {
			mID := int64(i%nMovies + 1)
			row, err := stats.Get(mID)
			if err != nil {
				return nil, err
			}
			if err := stats.Update(mID, map[string]relation.Value{
				"nVisit": relation.Int(row[2].I + int64(100+i%500)),
			}); err != nil {
				return nil, err
			}
		}
		updAvg := time.Duration(0)
		if nUpdates > 0 {
			updAvg = time.Since(start) / time.Duration(nUpdates)
		}
		if err := ti.MaintenanceErr(); err != nil {
			return nil, err
		}

		queries := []string{"golden gate", "amateur film", "san francisco", "gold rush", "cable car"}
		var totalQ time.Duration
		stable := true
		for _, q := range queries {
			if opts.ColdCache {
				if err := pool.EvictAll(); err != nil {
					return nil, err
				}
			}
			qstart := time.Now()
			res, err := ti.Search(core.SearchRequest{Query: q, K: opts.K})
			if err != nil {
				return nil, err
			}
			totalQ += time.Since(qstart)
			if len(res.Hits) == 0 {
				stable = false
			}
		}
		t.Rows = append(t.Rows, []string{
			string(kind), fmtDur(updAvg), fmtDur(totalQ / time.Duration(len(queries))), fmt.Sprintf("%v", stable),
		})
	}
	return t, nil
}

// RunChunkPolicyAblation compares the paper's score-ratio chunk boundaries
// against equal-width boundaries (a design choice §4.3.2 discusses and
// rejects).
func RunChunkPolicyAblation(opts Options) (*Table, error) {
	opts = opts.normalized()
	corpus := corpusFor(opts)
	queries := workload.GenerateQueries(corpus, queryParams(opts))

	up := workload.DefaultUpdateParams()
	up.NumUpdates = opts.NumUpdates
	up.MeanStep = opts.MeanStep
	up.Seed = opts.Seed + 41
	updates := workload.GenerateUpdates(corpus, up)

	t := &Table{
		Name:    "Ablation — Chunk-Boundary Policy (times in ms)",
		Caption: "score-ratio boundaries (paper's choice) vs small/large fixed ratios standing in for uniform chunking",
		Header:  []string{"Policy", "Chunks", "Update (ms/op)", "Query (ms)"},
		Notes: []string{
			"the paper found ratio-based boundaries derived from the score distribution to be the best compromise",
		},
	}
	policies := []struct {
		label string
		cfg   index.Config
	}{
		{"score-ratio (6.12)", index.Config{ChunkRatio: 6.12, MinChunkSize: minChunkSize(opts)}},
		{"many tiny chunks (1.56)", index.Config{ChunkRatio: 1.56, MinChunkSize: 1}},
		{"few huge chunks (164.8)", index.Config{ChunkRatio: 164.84, MinChunkSize: minChunkSize(opts)}},
	}
	for _, p := range policies {
		r, err := newRig("Chunk", corpus, opts, p.cfg)
		if err != nil {
			return nil, err
		}
		upd, _, err := applyUpdates(r, updates, 0)
		if err != nil {
			return nil, err
		}
		qs, err := runQueries(r, queries, opts, opts.K, false, false)
		if err != nil {
			return nil, err
		}
		chunks := 0
		if cm, ok := r.method.(*index.ChunkMethod); ok {
			chunks = cm.NumChunks()
		}
		t.Rows = append(t.Rows, []string{p.label, fmt.Sprintf("%d", chunks), fmtDur(upd), fmtDur(qs.avgTime)})
	}
	return t, nil
}

// RunFancyListAblation varies the fancy-list length of Chunk-TermScore.
func RunFancyListAblation(opts Options) (*Table, error) {
	opts = opts.normalized()
	corpus := corpusFor(opts)
	queries := workload.GenerateQueries(corpus, queryParams(opts))
	lengths := []int{4, 16, 64, 256}

	t := &Table{
		Name:    "Ablation — Fancy-List Length (Chunk-TermScore, times in ms)",
		Caption: fmt.Sprintf("%d queries with combined SVR+TF-IDF ranking, k=%d", opts.NumQueries, opts.K),
		Header:  []string{"Fancy-list length", "Query (ms)", "Postings/query", "Long+fancy size (MB)"},
		Notes: []string{
			"longer fancy lists tighten the term-score bound (earlier stopping) at the cost of a larger read-only structure",
		},
	}
	for _, n := range lengths {
		r, err := newRig("Chunk-TermScore", corpus, opts, index.Config{FancyListSize: n, MinChunkSize: minChunkSize(opts)})
		if err != nil {
			return nil, err
		}
		qs, err := runQueries(r, queries, opts, opts.K, false, true)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n), fmtDur(qs.avgTime), fmt.Sprintf("%.0f", qs.avgPostings),
			fmtMB(r.method.Stats().LongListBytes),
		})
	}
	return t, nil
}
