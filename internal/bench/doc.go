// Package bench implements the experiment harness that regenerates every
// table and figure of the paper's evaluation (§5) on the Go implementation:
// it builds the requested index structures over the synthetic (or
// archive-style) workload, replays score-update traces, runs the query
// workloads on a cold cache, and prints rows in the same shape as the paper
// reports them.
//
// Absolute numbers differ from the paper (different hardware, scaled-down
// data), but each experiment preserves the comparison the paper makes: which
// method wins, by roughly what factor, and where the crossovers are.
//
// Beyond the paper's tables, the harness carries engineering experiments for
// this implementation: update throughput, concurrent serving, durable cold
// start, and the posting-block compression A/B ("compression"), which also
// enforces the ≥ 2x compression-ratio gate in CI.
//
// See ARCHITECTURE.md for the layer map — where this package sits in the
// stack — and for the repo-wide concurrency contract.
package bench
