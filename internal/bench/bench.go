package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"svrdb/internal/index"
	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
	"svrdb/internal/workload"
)

// Options controls the scale and instrumentation of an experiment run.
type Options struct {
	// Scale multiplies the default synthetic collection size (1.0 = the
	// harness default of 8000 documents x 200 tokens; the paper's full-size
	// collection is roughly 6x that with 2000-token documents).
	Scale float64
	// NumUpdates is the length of the score-update trace.
	NumUpdates int
	// NumQueries is the number of queries measured per data point.
	NumQueries int
	// K is the number of results requested per query.
	K int
	// MeanStep is the mean score-update magnitude (the paper's default 100).
	MeanStep float64
	// ColdCache evicts the buffer pool before every measured query, matching
	// the paper's cold-cache query methodology (§5.2).
	ColdCache bool
	// ReadLatency charges a simulated latency on every page read, emulating
	// the disk the paper's cold-cache numbers include.  Zero measures pure
	// CPU + page-count behaviour.
	ReadLatency time.Duration
	// PoolPages is the buffer-pool capacity in pages (the equivalent of the
	// paper's 100 MB BerkeleyDB cache).
	PoolPages int
	// Seed drives all random generation.
	Seed int64
}

// DefaultOptions returns laptop-friendly defaults.
func DefaultOptions() Options {
	return Options{
		Scale:       0.25,
		NumUpdates:  4000,
		NumQueries:  20,
		K:           10,
		MeanStep:    100,
		ColdCache:   true,
		ReadLatency: 0,
		PoolPages:   4096,
		Seed:        1,
	}
}

func (o Options) normalized() Options {
	d := DefaultOptions()
	if o.Scale <= 0 {
		o.Scale = d.Scale
	}
	if o.NumUpdates <= 0 {
		o.NumUpdates = d.NumUpdates
	}
	if o.NumQueries <= 0 {
		o.NumQueries = d.NumQueries
	}
	if o.K <= 0 {
		o.K = d.K
	}
	if o.MeanStep <= 0 {
		o.MeanStep = d.MeanStep
	}
	if o.PoolPages <= 0 {
		o.PoolPages = d.PoolPages
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	return o
}

// Table is the printable result of one experiment.
type Table struct {
	Name    string
	Caption string
	Header  []string
	Rows    [][]string
	// Notes carries interpretation hints (what shape to expect versus the
	// paper).
	Notes []string
}

// WriteTo renders the table as aligned text.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("== %s ==\n%s\n", t.Name, t.Caption))
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(fmt.Sprintf("%-*s", widths[i], c))
		}
		sb.WriteString("\n")
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	sb.WriteString("\n")
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// Experiment is a named, runnable reproduction of one table or figure.
type Experiment struct {
	// ID is the short name used on the command line (e.g. "table2").
	ID string
	// Paper locates the experiment in the paper.
	Paper string
	// Description says what the experiment shows.
	Description string
	// Run executes the experiment.
	Run func(Options) (*Table, error)
}

// checkedPools collects every buffer pool an experiment run creates so that
// withPinCheck can audit pin accounting when the run finishes.  The harness
// is single-threaded, so a plain slice suffices.
var checkedPools []*buffer.Pool

// registerPool enrolls a pool in the end-of-run pin audit.
func registerPool(p *buffer.Pool) { checkedPools = append(checkedPools, p) }

// withPinCheck wraps an experiment so that, after a successful run, every
// pool the run created is audited with CheckPins: a pin leak or over-release
// anywhere in the measured paths (including the patch fast path) fails the
// experiment — and hence tier-1, which smoke-runs every experiment — instead
// of shipping silently.
func withPinCheck(run func(Options) (*Table, error)) func(Options) (*Table, error) {
	return func(opts Options) (*Table, error) {
		checkedPools = checkedPools[:0]
		t, err := run(opts)
		if err != nil {
			return nil, err
		}
		for _, p := range checkedPools {
			if err := p.CheckPins(); err != nil {
				return nil, err
			}
		}
		checkedPools = checkedPools[:0]
		return t, nil
	}
}

// Registry returns every experiment keyed by ID, in presentation order.
// Every Run is wrapped with withPinCheck.
func Registry() []Experiment {
	experiments := []Experiment{
		{ID: "table1", Paper: "Table 1", Description: "Size of the long inverted lists per method", Run: RunTable1},
		{ID: "table2", Paper: "Table 2", Description: "Chunk-ratio sweep: update vs query time for several mean update steps", Run: RunTable2},
		{ID: "figure7", Paper: "Figure 7", Description: "Update and query time per method as the number of score updates grows", Run: RunFigure7},
		{ID: "update", Paper: "§5.3 (update cost)", Description: "Update throughput: batched ApplyUpdates vs the one-at-a-time loop, pure and mixed with queries", Run: RunUpdateFigure},
		{ID: "figure8", Paper: "Figure 8", Description: "Query time as the number of desired results k grows", Run: RunFigure8},
		{ID: "step", Paper: "§5.3.4", Description: "Mean update step sweep: Chunk (tuned ratio) vs ID", Run: RunStepSweep},
		{ID: "figure9", Paper: "Figure 9", Description: "Combined SVR+term scoring: Chunk-TermScore vs ID-TermScore", Run: RunFigure9},
		{ID: "figure10", Paper: "Figure 10", Description: "Disjunctive vs conjunctive query performance", Run: RunFigure10},
		{ID: "table3", Paper: "Table 3", Description: "Incremental document insertions: query, score update and insertion cost", Run: RunTable3},
		{ID: "threshold", Paper: "§5.3.1", Description: "Threshold-ratio sweep for the Score-Threshold method", Run: RunThresholdSweep},
		{ID: "selectivity", Paper: "§5.3.7 / §5.1", Description: "Query-selectivity sweep across the three keyword classes", Run: RunSelectivity},
		{ID: "concurrent", Paper: "§5 (read scaling)", Description: "Concurrent query serving: aggregate QPS at 1/2/4/GOMAXPROCS query workers", Run: RunConcurrent},
		{ID: "serve", Paper: "§5 (serving layer)", Description: "HTTP serving: Figure 7 query mix over the svrserve JSON API vs direct Search, QPS + p50/p99/p99.9 per worker count", Run: RunServe},
		{ID: "shard", Paper: "§5 (scale-out serving)", Description: "Sharded serving: Figure 7 mix scatter-gathered through the router at 1/2/4 shards, aggregate QPS + per-shard p50/p99", Run: RunShard},
		{ID: "tail-latency", Paper: "§5 (serving under maintenance)", Description: "Search tail latency under a continuous update storm: p50/p99/p99.9/max idle vs storm, gated at 5x idle p99", Run: RunTailLatency},
		{ID: "tenants", Paper: "§5 (multi-tenant serving)", Description: "Multi-tenant isolation: small-tenant search p50/p99 idle vs a hot tenant's update storm on the same engine, gated at 2x idle p99 where cores allow", Run: RunTenants},
		{ID: "archive", Paper: "§5.3.7", Description: "Archive-style (real-data analogue) workload across methods", Run: RunArchive},
		{ID: "coldstart", Paper: "§5.2 (serving methodology)", Description: "Durable cold start: open+warm time and on-disk size overhead vs the in-memory pagefile", Run: RunColdstart},
		{ID: "compression", Paper: "§5.2 (storage layout)", Description: "Posting-block compression vs the legacy layouts: stored bytes, ratio, cold-query time and pages per query", Run: RunCompression},
		{ID: "ablation-chunking", Paper: "§4.3.2 (design choice)", Description: "Chunk-boundary policy ablation: score-ratio vs uniform boundaries", Run: RunChunkPolicyAblation},
		{ID: "ablation-fancy", Paper: "§4.3.3 (design choice)", Description: "Fancy-list length ablation for Chunk-TermScore", Run: RunFancyListAblation},
	}
	for i := range experiments {
		experiments[i].Run = withPinCheck(experiments[i].Run)
	}
	return experiments
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// --- shared measurement plumbing -----------------------------------------------

// rig bundles one built index with its private storage so that I/O counters
// are attributable to the method under test.
type rig struct {
	method index.Method
	pool   *buffer.Pool
	file   pagefile.File
}

// newRig builds a method over the corpus with its own buffer pool.
func newRig(kind string, corpus *workload.Corpus, opts Options, cfg index.Config) (*rig, error) {
	file := pagefile.MustNewMem(pagefile.DefaultPageSize)
	file.SetReadLatency(opts.ReadLatency)
	pool := buffer.MustNew(file, opts.PoolPages)
	registerPool(pool)
	cfg.Pool = pool
	m, err := newMethodByName(kind, cfg)
	if err != nil {
		return nil, err
	}
	if err := m.Build(corpus, corpus.ScoreFunc()); err != nil {
		return nil, err
	}
	return &rig{method: m, pool: pool, file: file}, nil
}

func newMethodByName(kind string, cfg index.Config) (index.Method, error) {
	switch kind {
	case "ID":
		return index.NewID(cfg)
	case "Score":
		return index.NewScore(cfg)
	case "Score-Threshold":
		return index.NewScoreThreshold(cfg)
	case "Chunk":
		return index.NewChunk(cfg)
	case "ID-TermScore":
		return index.NewIDTermScore(cfg)
	case "Chunk-TermScore":
		return index.NewChunkTermScore(cfg)
	default:
		return nil, fmt.Errorf("bench: unknown method %q", kind)
	}
}

// corpusFor generates (and caches per options) the synthetic corpus.
var corpusCache = map[string]*workload.Corpus{}

func corpusFor(opts Options) *workload.Corpus {
	params := workload.DefaultParams().Scaled(opts.Scale)
	params.Seed = opts.Seed
	key := fmt.Sprintf("%d-%d-%d-%d", params.NumDocs, params.TermsPerDoc, params.VocabSize, params.Seed)
	if c, ok := corpusCache[key]; ok {
		return c
	}
	c := workload.Generate(params)
	corpusCache[key] = c
	return c
}

// applyUpdates replays a score-update trace and returns the average time per
// update.  maxMeasured caps how many updates are actually applied for
// methods whose per-update cost is pathological (the Score method), matching
// the paper's observation that its updates are orders of magnitude slower;
// the average is still per applied update.
func applyUpdates(r *rig, updates []workload.ScoreUpdate, maxMeasured int) (time.Duration, int, error) {
	n := len(updates)
	if maxMeasured > 0 && n > maxMeasured {
		n = maxMeasured
	}
	if n == 0 {
		return 0, 0, nil
	}
	start := time.Now()
	for _, u := range updates[:n] {
		if err := r.method.UpdateScore(u.Doc, u.NewScore); err != nil {
			return 0, 0, err
		}
	}
	return time.Since(start) / time.Duration(n), n, nil
}

// queryStats aggregates query-side measurements.
type queryStats struct {
	avgTime     time.Duration
	avgPostings float64
	avgPages    float64
	results     int
}

// runQueries measures the query workload on the rig.  With ColdCache the
// pool is evicted before every query, as in §5.2.
func runQueries(r *rig, queries [][]string, opts Options, k int, disjunctive, withTermScores bool) (queryStats, error) {
	var total time.Duration
	var postings int
	var pages uint64
	var results int
	ran := 0
	for _, terms := range queries {
		if opts.ColdCache {
			if err := r.pool.EvictAll(); err != nil {
				return queryStats{}, err
			}
		}
		before := r.pool.Stats().Misses
		start := time.Now()
		res, err := r.method.TopK(index.Query{Terms: terms, K: k, Disjunctive: disjunctive, WithTermScores: withTermScores})
		if err != nil {
			return queryStats{}, err
		}
		total += time.Since(start)
		postings += res.PostingsScanned
		pages += r.pool.Stats().Misses - before
		results += len(res.Results)
		ran++
	}
	if ran == 0 {
		return queryStats{}, nil
	}
	return queryStats{
		avgTime:     total / time.Duration(ran),
		avgPostings: float64(postings) / float64(ran),
		avgPages:    float64(pages) / float64(ran),
		results:     results,
	}, nil
}

// fmtDur renders a duration in milliseconds with three significant decimals,
// matching the paper's "times in ms" tables.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Nanoseconds())/1e6)
}

func fmtMB(bytes uint64) string {
	return fmt.Sprintf("%.2f", float64(bytes)/(1024*1024))
}
