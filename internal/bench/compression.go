package bench

import (
	"fmt"
	"math/rand"

	"svrdb/internal/index"
	"svrdb/internal/postings"
	"svrdb/internal/storage/blob"
	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
	"svrdb/internal/workload"
)

// compressionGateScale is the smallest collection scale at which the 2x
// compression-ratio gate is enforced: the smoke tests run tiny collections
// whose lists are mostly block headers, which would make the gate flaky.
const compressionGateScale = 0.1

// RunCompression measures the compressed posting-block encoding against the
// legacy fixed-layout blobs, method by method: stored bytes (both ways) and
// the fixed-width raw footprint they both encode, plus cold-cache query time
// and buffer-pool pages per query under each encoding.  The Score method is
// excluded because its postings live in B+-tree leaves, not long-list blobs.
//
// At Scale >= 0.1 the run fails if any method compresses below 2x of the
// fixed-width footprint, so the benchmark doubles as the regression gate CI
// runs.
func RunCompression(opts Options) (*Table, error) {
	opts = opts.normalized()
	corpus := corpusFor(opts)
	queries := workload.GenerateQueries(corpus, queryParams(opts))
	methods := []string{"ID", "Score-Threshold", "Chunk", "ID-TermScore", "Chunk-TermScore"}

	t := &Table{
		Name:    "Compression — posting blocks vs legacy layouts",
		Caption: fmt.Sprintf("%d queries, k=%d, cold cache; Raw is the fixed-width footprint (8 B ids, 8 B scores, 4 B weights/chunk headers)", opts.NumQueries, opts.K),
		Header:  []string{"Method", "Blocks (MB)", "Legacy (MB)", "Raw (MB)", "Ratio", "Query blk (ms)", "Query leg (ms)", "Pages blk", "Pages leg"},
		Notes: []string{
			"Ratio is Raw/Blocks; the legacy layouts already varint d-gaps, so Blocks < Legacy is the block format's own win",
			"Pages counts buffer-pool misses per cold query: fewer pages hold the same postings, so the compressed side should drop roughly with the ratio",
		},
	}

	// Cold-cache queries make the page counts meaningful regardless of the
	// caller's flag (a warm pool reads ~0 pages either way).
	coldOpts := opts
	coldOpts.ColdCache = true

	for _, m := range methods {
		withTS := m == "ID-TermScore" || m == "Chunk-TermScore"

		rigBlk, err := newRig(m, corpus, opts, index.Config{MinChunkSize: minChunkSize(opts)})
		if err != nil {
			return nil, err
		}
		rigLeg, err := newRig(m, corpus, opts, index.Config{MinChunkSize: minChunkSize(opts), Uncompressed: true})
		if err != nil {
			return nil, err
		}

		qsBlk, err := runQueries(rigBlk, queries, coldOpts, opts.K, false, withTS)
		if err != nil {
			return nil, err
		}
		qsLeg, err := runQueries(rigLeg, queries, coldOpts, opts.K, false, withTS)
		if err != nil {
			return nil, err
		}

		stBlk, stLeg := rigBlk.method.Stats(), rigLeg.method.Stats()
		if stBlk.LongListRawBytes != stLeg.LongListRawBytes {
			return nil, fmt.Errorf("bench: %s raw footprint differs across encodings: %d vs %d", m, stBlk.LongListRawBytes, stLeg.LongListRawBytes)
		}
		ratio := 0.0
		if stBlk.LongListBytes > 0 {
			ratio = float64(stBlk.LongListRawBytes) / float64(stBlk.LongListBytes)
		}
		if opts.Scale >= compressionGateScale && ratio < 2 {
			return nil, fmt.Errorf("bench: %s compression ratio %.2fx below the 2x gate (raw %d B, stored %d B)",
				m, ratio, stBlk.LongListRawBytes, stBlk.LongListBytes)
		}

		t.Rows = append(t.Rows, []string{
			m,
			fmtMB(stBlk.LongListBytes),
			fmtMB(stLeg.LongListBytes),
			fmtMB(stBlk.LongListRawBytes),
			fmt.Sprintf("%.2f", ratio),
			fmtDur(qsBlk.avgTime),
			fmtDur(qsLeg.avgTime),
			fmt.Sprintf("%.1f", qsBlk.avgPages),
			fmt.Sprintf("%.1f", qsLeg.avgPages),
		})
	}

	scanPages, seekPages, listPages, err := seekProbe(opts.Seed)
	if err != nil {
		return nil, err
	}
	// The seek probe is also an assertion: SeekDoc exists so that the
	// conjunctive planner can leapfrog selective terms past non-matching
	// super-blocks, which is only real if seeking faults in strictly fewer
	// pages than scanning the same distance.
	if seekPages >= scanPages {
		return nil, fmt.Errorf("bench: SeekDoc read %d pages vs %d for a sequential scan — super-block skips are not saving page reads", seekPages, scanPages)
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"seek probe: reaching the tail of a 200k-posting compressed ID list (%d pages) costs %d pages by scanning vs %d by SeekDoc — super-block skips advance past pages without faulting them",
		listPages, scanPages, seekPages))
	return t, nil
}

// seekProbe measures the skip-based seek against a sequential scan on one
// long compressed ID list: buffer-pool pages touched to position just
// before the list's last document.  This is the microbenchmark behind the
// "selective conjunctions seek past blocks without decoding them" claim;
// the per-method tables above use the ordinary scanning query paths.
func seekProbe(seed int64) (scanPages, seekPages, listPages int, err error) {
	pool := buffer.MustNew(pagefile.MustNewMem(pagefile.DefaultPageSize), 512)
	registerPool(pool)
	store := blob.NewStore(pool)

	rng := rand.New(rand.NewSource(seed + 41))
	b := postings.NewBlockIDListBuilder()
	d := postings.DocID(0)
	for i := 0; i < 200000; i++ {
		d += postings.DocID(rng.Intn(6000) + 1)
		if err := b.Add(d); err != nil {
			return 0, 0, 0, err
		}
	}
	data := b.Bytes()
	ref, err := store.Put(data)
	if err != nil {
		return 0, 0, 0, err
	}
	listPages = (len(data) + pagefile.DefaultPageSize - 1) / pagefile.DefaultPageSize
	target := d - 1000

	scanReader := store.NewReader(ref)
	scan, err := postings.NewStreamIDList(scanReader)
	if err != nil {
		return 0, 0, 0, err
	}
	buf := make([]postings.Entry, postings.BatchSize)
	for {
		n, err := scan.NextBatch(buf)
		if err != nil {
			return 0, 0, 0, err
		}
		if n == 0 || buf[n-1].Doc >= target {
			break
		}
	}
	scanPages = scanReader.PagesRead()

	seekReader := store.NewReader(ref)
	seek, err := postings.NewStreamIDList(seekReader)
	if err != nil {
		return 0, 0, 0, err
	}
	ok, err := seek.SeekDoc(target)
	if err != nil {
		return 0, 0, 0, err
	}
	if !ok {
		return 0, 0, 0, fmt.Errorf("bench: compressed list did not offer seek")
	}
	if n, err := seek.NextBatch(buf); err != nil || n == 0 {
		return 0, 0, 0, fmt.Errorf("bench: seek probe landed empty (n=%d, err=%v)", n, err)
	}
	seekPages = seekReader.PagesRead()
	return scanPages, seekPages, listPages, nil
}
