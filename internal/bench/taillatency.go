package bench

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"svrdb/internal/core"
	"svrdb/internal/index"
	"svrdb/internal/server"
	"svrdb/internal/workload"
)

// This file implements the tail-latency experiment: the Figure 7 query mix
// racing a continuous update storm through the full engine.  It is the
// benchmark behind the epoch-read design — before snapshots, a search
// arriving during an ApplyBatch flush queued behind the writer and the
// search tail stretched to the length of the maintenance window; with epoch
// reads the storm should cost cache pressure, not stalls.  The experiment
// therefore doubles as a regression gate: it fails outright if the storm
// p99 exceeds tailLatencyFactor times the idle p99.

// tailLatencyFactor is the multiple of the idle percentile the storm
// percentile must stay within for the experiment to pass.
const tailLatencyFactor = 5

// tailP50Grace and tailP99Grace are absolute slack on the two gates.  A
// search that queues behind maintenance waits for the in-flight batch —
// ~10ms+ at default scale — and it waits on every request, so the median
// moves by the full batch length and 2ms of slack hides nothing.  The p99
// grace is wider because on a single-core host the storm and the search
// workers time-share the CPU and the tail picks up scheduler slices
// (~10-40ms) that are not lock waits; a real stall regression still trips
// the median gate there.
const (
	tailP50Grace = 2 * time.Millisecond
	tailP99Grace = 50 * time.Millisecond
)

// tailGateScale is the smallest collection scale at which the p99 gate is
// enforced.  At smoke scale every query is sub-millisecond, so the idle p99
// carries no slow-query mass and the storm's GC/pool-contention jitter —
// real but bounded in absolute terms — dominates the ratio.  At realistic
// scale the query mix includes genuinely expensive conjunctions and the
// ratio measures what it should: whether those queries stall behind
// maintenance.  (The absolute stall bound is covered at every scale by
// TestSearchMaxLatencyUnderMaintenanceStall.)
const tailGateScale = 0.1

// stormBatch is the number of score updates per ApplyBatch in the storm:
// large enough that the flush path (batch apply, snapshot publication) is
// continuously exercised, small enough that batches recur many times per
// measured window.
const stormBatch = 128

// RunTailLatency measures search latency with and without a concurrent
// maintenance storm, per method.
func RunTailLatency(opts Options) (*Table, error) {
	opts = opts.normalized()
	corpus := corpusFor(opts)
	queries := workload.GenerateQueries(corpus, queryParams(opts))

	up := workload.DefaultUpdateParams()
	up.NumUpdates = opts.NumUpdates
	up.MeanStep = opts.MeanStep
	up.Seed = opts.Seed + 53
	updates := workload.GenerateUpdates(corpus, up)

	workers := runtime.GOMAXPROCS(0)
	if workers > 4 {
		workers = 4
	}
	// p99 of n samples is the ceil(0.01*n)-th slowest observation; at 200
	// samples that is the 2nd slowest and run-to-run noise swamps the
	// signal.  1000 samples make the idle and storm tails reproducible.
	total := opts.NumQueries * 50
	if total < 1000 {
		total = 1000
	}

	t := &Table{
		Name: "Tail latency — Figure 7 query mix vs a continuous update storm",
		Caption: fmt.Sprintf("warm cache, k=%d, conjunctive, %d query workers x %d queries; storm = back-to-back ApplyBatch rounds of %d score updates",
			opts.K, workers, total, stormBatch),
		Header: []string{"Method", "Phase", "QPS", "p50 (ms)", "p99 (ms)", "p99.9 (ms)", "max (ms)", "p99 vs idle"},
		Notes: []string{
			fmt.Sprintf("gate (scale >= %.2g): storm p50 and p99 must stay within %dx of idle (+%s/+%s) — searches read a pinned epoch snapshot and never queue behind the writer", tailGateScale, tailLatencyFactor, tailP50Grace, tailP99Grace),
			"the residual storm/idle gap is cache and CPU contention, not lock waits; max is the hard ceiling a maintenance stall would show up in",
		},
	}
	if runtime.GOMAXPROCS(0) == 1 {
		t.Notes = append(t.Notes,
			"single-CPU host: the storm time-shares the core with the search workers, so the storm tail includes scheduler slices; the p50 gate carries the lock-wait signal here")
	}

	for _, mk := range []struct {
		name string
		kind core.MethodKind
	}{
		{"ID", core.MethodID},
		{"Chunk", core.MethodChunk},
	} {
		idle, storm, batches, stats, err := measureTailLatency(corpus, queries, updates, opts, mk.kind, workers, total)
		if err != nil {
			return nil, fmt.Errorf("bench: tail-latency %s: %w", mk.name, err)
		}
		if opts.Scale >= tailGateScale {
			if storm.P50 > tailLatencyFactor*idle.P50+tailP50Grace {
				return nil, fmt.Errorf("bench: %s storm p50 %s exceeds %dx idle p50 %s (+%s) — every search is queueing behind maintenance",
					mk.name, storm.P50, tailLatencyFactor, idle.P50, tailP50Grace)
			}
			if storm.P99 > tailLatencyFactor*idle.P99+tailP99Grace {
				return nil, fmt.Errorf("bench: %s storm p99 %s exceeds %dx idle p99 %s (+%s) — the search tail is stalling behind maintenance",
					mk.name, storm.P99, tailLatencyFactor, idle.P99, tailP99Grace)
			}
		}
		addTailRow(t, mk.name, "idle", idle, idle)
		addTailRow(t, mk.name, "storm", storm, idle)
		t.Notes = append(t.Notes, fmt.Sprintf(
			"%s: storm applied %d batches (%d updates) concurrently; epoch advanced to %d, %d retained pages awaiting reader drain at scrape time",
			mk.name, batches, batches*stormBatch, stats.Epoch, stats.RetainedPages))
	}
	return t, nil
}

func addTailRow(t *Table, method, phase string, r, idle server.LoadResult) {
	ratio := "1.00x"
	if phase != "idle" && idle.P99 > 0 {
		ratio = fmt.Sprintf("%.2fx", float64(r.P99)/float64(idle.P99))
	}
	t.Rows = append(t.Rows, []string{
		method, phase, fmt.Sprintf("%.0f", r.QPS),
		fmtDur(r.P50), fmtDur(r.P99), fmtDur(r.P999), fmtDur(r.Max), ratio,
	})
}

// measureTailLatency builds one engine-backed index and measures the query
// load twice: idle (no writer) and under the storm (a background goroutine
// pushing continuous score-update batches through Engine.ApplyBatch).
func measureTailLatency(corpus *workload.Corpus, queries [][]string, updates []workload.ScoreUpdate, opts Options, kind core.MethodKind, workers, total int) (idle, storm server.LoadResult, batches int, stats index.Stats, err error) {
	se, err := buildTailEngine(corpus, queries, opts, kind, updates)
	if err != nil {
		return
	}
	idle, err = runEngineSearchLoad(se, queries, opts.K, workers, total)
	if err != nil {
		return
	}

	stop := make(chan struct{})
	stormErr := make(chan error, 1)
	var applied atomic.Int64
	go func() {
		stormErr <- func() error {
			i := 0
			for {
				select {
				case <-stop:
					return nil
				default:
				}
				end := i + stormBatch
				if end > len(updates) {
					end = len(updates)
				}
				if err := se.applyServeUpdates(updates[i:end], stormBatch); err != nil {
					return err
				}
				applied.Add(1)
				i = end
				if i >= len(updates) {
					i = 0
				}
			}
		}()
	}()
	storm, err = runEngineSearchLoad(se, queries, opts.K, workers, total)
	close(stop)
	if serr := <-stormErr; err == nil && serr != nil {
		err = serr
	}
	batches = int(applied.Load())
	if err != nil {
		return
	}
	stats = se.index.Stats()
	err = se.engine.Close()
	return
}

// buildTailEngine builds the engine, pre-populates the short lists with a
// slice of the update trace (so idle queries exercise the patched read path,
// not a pristine build), and warms the cache.
func buildTailEngine(corpus *workload.Corpus, queries [][]string, opts Options, kind core.MethodKind, updates []workload.ScoreUpdate) (*serveEngine, error) {
	se, err := buildServeEngine(corpus, opts, kind)
	if err != nil {
		return nil, err
	}
	seed := len(updates) / 4
	if seed > 0 {
		if err := se.applyServeUpdates(updates[:seed], 256); err != nil {
			return nil, err
		}
	}
	if _, err := se.measureDirect(queries, opts.K, len(queries)); err != nil {
		return nil, err
	}
	return se, nil
}

// runEngineSearchLoad replays total queries across workers goroutines
// through core.TextIndex.Search, handing work out via an atomic cursor (the
// same discipline as server.RunSearchLoad) and summarizing per-request
// latency with the shared percentile math, so idle and storm rows — and the
// serve experiment's HTTP rows — are all on the same scale.
func runEngineSearchLoad(se *serveEngine, queries [][]string, k, workers, total int) (server.LoadResult, error) {
	reqs := make([]string, len(queries))
	for i, terms := range queries {
		reqs[i] = strings.Join(terms, " ")
	}
	var cursor atomic.Int64
	var (
		errMu    sync.Mutex
		firstErr error
	)
	latencies := make([][]time.Duration, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lats := make([]time.Duration, 0, total/workers+1)
			for {
				i := cursor.Add(1) - 1
				if i >= int64(total) {
					break
				}
				qStart := time.Now()
				if _, err := se.index.Search(core.SearchRequest{Query: reqs[i%int64(len(reqs))], K: k}); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					break
				}
				lats = append(lats, time.Since(qStart))
			}
			latencies[w] = lats
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return server.LoadResult{}, firstErr
	}
	var all []time.Duration
	for _, lats := range latencies {
		all = append(all, lats...)
	}
	return server.Summarize(all, elapsed, workers), nil
}
