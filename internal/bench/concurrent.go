package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"svrdb/internal/index"
	"svrdb/internal/workload"
)

// This file implements the concurrent query-serving experiment: the paper's
// evaluation is strictly single-threaded, but the engine's north star is
// serving heavy read traffic, and SVR queries are read-dominant — so the
// cheapest scaling win is running many queries at once.  The experiment
// fixes a pool of Figure 7 queries (the conjunctive k=10 mix, after the
// default score-update trace has populated the short lists) and replays it
// from 1, 2, 4 and GOMAXPROCS goroutines against one shared index,
// reporting aggregate throughput and per-query latency per worker count.
//
// On a multi-core machine the read path should scale near-linearly until
// the buffer-pool lock or memory bandwidth saturates; on a single core the
// QPS column stays flat, which is itself the interesting result — the
// reader/writer coordination layer adds no measurable per-query cost.

// WorkerCounts returns the worker counts the concurrent experiment and
// BenchmarkConcurrentQuery measure: 1, 2, 4 and GOMAXPROCS (deduplicated,
// ascending).  Exported so the two stay in lockstep.
func WorkerCounts() []int {
	counts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		counts = append(counts, p)
	}
	return counts
}

// SearchFunc evaluates one query; RunConcurrentQueries drives it from many
// goroutines.  Method-level harnesses pass a TopK closure; engine-level
// harnesses pass a core TextIndex.Search closure so the index RW-lock
// coordination is part of what gets measured.
type SearchFunc func(terms []string, k int) error

// MethodSearcher adapts an index.Method's TopK to a SearchFunc.
func MethodSearcher(m index.Method) SearchFunc {
	return func(terms []string, k int) error {
		_, err := m.TopK(index.Query{Terms: terms, K: k})
		return err
	}
}

// RunConcurrentQueries replays totalQueries queries from the pool across
// the given number of goroutines and returns the wall-clock elapsed time.
// Work is handed out through an atomic cursor so the division of labour is
// even regardless of per-query cost variance.  Exported so the top-level
// concurrency benchmarks share the exact worker loop the experiment
// measures.
func RunConcurrentQueries(search SearchFunc, queries [][]string, k, workers, totalQueries int) (time.Duration, error) {
	var cursor atomic.Int64
	var (
		errMu    sync.Mutex
		firstErr error
	)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := cursor.Add(1) - 1
				if i >= int64(totalQueries) {
					return
				}
				if err := search(queries[i%int64(len(queries))], k); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return 0, firstErr
	}
	return elapsed, nil
}

// RunConcurrent measures aggregate query throughput per method as the
// number of concurrent query goroutines grows.
func RunConcurrent(opts Options) (*Table, error) {
	opts = opts.normalized()
	corpus := corpusFor(opts)
	queries := workload.GenerateQueries(corpus, queryParams(opts))
	methods := []string{"ID", "Score-Threshold", "Chunk", "Chunk-TermScore"}

	up := workload.DefaultUpdateParams()
	up.NumUpdates = opts.NumUpdates
	up.MeanStep = opts.MeanStep
	up.Seed = opts.Seed + 47
	updates := workload.GenerateUpdates(corpus, up)

	workerCounts := WorkerCounts()
	// Enough work per data point that goroutine start-up cost vanishes,
	// scaled by the worker count so every configuration runs comparably
	// long per worker.
	baseQueries := opts.NumQueries * 4
	if baseQueries < 64 {
		baseQueries = 64
	}

	t := &Table{
		Name:    "Concurrent Query Serving — aggregate throughput by worker count",
		Caption: fmt.Sprintf("Figure 7 query mix (k=%d, conjunctive) after %d score updates; %d queries per worker, warm cache, GOMAXPROCS=%d", opts.K, len(updates), baseQueries, runtime.GOMAXPROCS(0)),
		Header:  []string{"Method", "Workers", "Aggregate QPS", "Latency (ms/query)", "Scaling vs 1 worker"},
		Notes: []string{
			"queries run against a warm cache: concurrent serving measures coordination and CPU scaling, not disk behaviour (the cold-cache single-query experiments cover that)",
			"on a multi-core machine the QPS column should grow near-linearly with workers for the read-only mix; on a single core it stays flat — flat-at-1x also confirms the read-lock coordination costs nothing measurable per query",
		},
	}

	for _, kind := range methods {
		r, err := newRig(kind, corpus, opts, index.Config{MinChunkSize: minChunkSize(opts)})
		if err != nil {
			return nil, err
		}
		if _, _, err := applyUpdates(r, updates, 0); err != nil {
			return nil, err
		}
		// Warm the cache and the scratch pools once before measuring.
		if _, err := RunConcurrentQueries(MethodSearcher(r.method), queries, opts.K, 1, len(queries)); err != nil {
			return nil, err
		}
		var baseQPS float64
		for _, workers := range workerCounts {
			total := baseQueries * workers
			elapsed, err := RunConcurrentQueries(MethodSearcher(r.method), queries, opts.K, workers, total)
			if err != nil {
				return nil, err
			}
			qps := float64(total) / elapsed.Seconds()
			// Per-query latency as a worker saw it: worker-seconds per query.
			latency := elapsed * time.Duration(workers) / time.Duration(total)
			scaling := "1.00x"
			if workers == 1 {
				baseQPS = qps
			} else if baseQPS > 0 {
				scaling = fmt.Sprintf("%.2fx", qps/baseQPS)
			}
			t.Rows = append(t.Rows, []string{kind, fmt.Sprintf("%d", workers), fmt.Sprintf("%.0f", qps), fmtDur(latency), scaling})
		}
	}
	return t, nil
}
