package bench

import (
	"fmt"
	"time"

	"svrdb/internal/index"
	"svrdb/internal/workload"
)

// updateFigureBatchSize is how many trace entries each ApplyUpdates call
// carries in the update-throughput experiments.
const updateFigureBatchSize = 512

// toBatch converts a slice of the score-update trace to a write batch.
func toBatch(updates []workload.ScoreUpdate, buf []index.Update) []index.Update {
	buf = buf[:0]
	for _, u := range updates {
		buf = append(buf, index.Update{Op: index.ScoreOp, Doc: u.Doc, Score: u.NewScore})
	}
	return buf
}

// applyBatched replays a trace through Method.ApplyUpdates in fixed-size
// batches and returns the average time per update.
func applyBatched(r *rig, updates []workload.ScoreUpdate, maxMeasured int) (time.Duration, int, error) {
	n := len(updates)
	if maxMeasured > 0 && n > maxMeasured {
		n = maxMeasured
	}
	if n == 0 {
		return 0, 0, nil
	}
	buf := make([]index.Update, 0, updateFigureBatchSize)
	start := time.Now()
	for lo := 0; lo < n; lo += updateFigureBatchSize {
		hi := lo + updateFigureBatchSize
		if hi > n {
			hi = n
		}
		if err := r.method.ApplyUpdates(toBatch(updates[lo:hi], buf)); err != nil {
			return 0, 0, err
		}
	}
	return time.Since(start) / time.Duration(n), n, nil
}

// RunUpdateFigure measures update throughput per method on the default
// update workload: the one-at-a-time UpdateScore loop of the paper's
// experiments against the batched ApplyUpdates pipeline, first as a pure
// update stream, then mixed with queries (a query burst after every batch).
// The paper reports per-update cost (Figure 7, Tables 2-3); this experiment
// adds the loop-vs-batch comparison those numbers left open.
func RunUpdateFigure(opts Options) (*Table, error) {
	opts = opts.normalized()
	corpus := corpusFor(opts)
	queries := workload.GenerateQueries(corpus, queryParams(opts))
	methods := []string{"ID", "Score", "Score-Threshold", "Chunk", "Chunk-TermScore"}

	up := workload.DefaultUpdateParams()
	up.NumUpdates = opts.NumUpdates
	up.MeanStep = opts.MeanStep
	up.Seed = opts.Seed + 47
	updates := workload.GenerateUpdates(corpus, up)

	t := &Table{
		Name:    "Update Throughput — Batched ApplyUpdates vs One-at-a-Time (times in µs/op)",
		Caption: fmt.Sprintf("%d score updates (default trace, mean step %.0f), batch size %d; mixed rows interleave %d queries (k=%d)", len(updates), up.MeanStep, updateFigureBatchSize, opts.NumQueries, opts.K),
		Header:  []string{"Workload", "Method", "Loop (µs/op)", "Loop patched", "Batched (µs/op)", "Speedup", "Updates/s (batched)", "Query (ms)"},
		Notes: []string{
			"the in-place patch fast path (PR 3) made the loop itself ~11-16x faster, so the loop-vs-batch gap is far narrower than PR 2's >=5x era; batched should still win (shared descents, grouped leaf work) — the Score method is capped because each of its updates rewrites every posting of the document",
			"'Loop patched' is the number of table writes the one-at-a-time loop absorbed via the B+-tree's in-place leaf patch fast path, as a percentage of updates applied (one update can patch several tables, so >100% is possible); a collapse towards 0% means the fast path regressed",
			"mixed rows run the same trace with a query burst after every batch; query times should match the pure-query experiments",
		},
	}

	fmtUs := func(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d.Nanoseconds())/1e3) }

	// Pure update throughput.
	for _, m := range methods {
		cap := 0
		if m == "Score" {
			cap = 512
		}
		loopRig, err := newRig(m, corpus, opts, index.Config{MinChunkSize: minChunkSize(opts)})
		if err != nil {
			return nil, err
		}
		loopAvg, n, err := applyUpdates(loopRig, updates, cap)
		if err != nil {
			return nil, err
		}
		patched := "-"
		if n > 0 {
			patched = fmt.Sprintf("%.0f%%", 100*float64(loopRig.method.Stats().TablePatches)/float64(n))
		}
		batchRig, err := newRig(m, corpus, opts, index.Config{MinChunkSize: minChunkSize(opts)})
		if err != nil {
			return nil, err
		}
		batchAvg, _, err := applyBatched(batchRig, updates, cap)
		if err != nil {
			return nil, err
		}
		speedup := "-"
		rate := "-"
		if batchAvg > 0 {
			speedup = fmt.Sprintf("%.1fx", float64(loopAvg)/float64(batchAvg))
			rate = fmt.Sprintf("%.0f", float64(time.Second)/float64(batchAvg))
		}
		t.Rows = append(t.Rows, []string{"pure", m, fmtUs(loopAvg), patched, fmtUs(batchAvg), speedup, rate, "-"})
	}

	// Mixed update/query workload for the paper's recommended methods.
	for _, m := range []string{"Score-Threshold", "Chunk"} {
		r, err := newRig(m, corpus, opts, index.Config{MinChunkSize: minChunkSize(opts)})
		if err != nil {
			return nil, err
		}
		var updTotal time.Duration
		qTick := 0
		var qs queryStats
		for lo := 0; lo < len(updates); lo += updateFigureBatchSize {
			hi := lo + updateFigureBatchSize
			if hi > len(updates) {
				hi = len(updates)
			}
			start := time.Now()
			if err := r.method.ApplyUpdates(toBatch(updates[lo:hi], nil)); err != nil {
				return nil, err
			}
			updTotal += time.Since(start)
			// One query per batch, rotating through the workload.
			q, err := runQueries(r, queries[qTick%len(queries):qTick%len(queries)+1], opts, opts.K, false, false)
			if err != nil {
				return nil, err
			}
			qs.avgTime += q.avgTime
			qTick++
		}
		updAvg := updTotal / time.Duration(len(updates))
		qAvg := time.Duration(0)
		if qTick > 0 {
			qAvg = qs.avgTime / time.Duration(qTick)
		}
		rate := "-"
		if updAvg > 0 {
			rate = fmt.Sprintf("%.0f", float64(time.Second)/float64(updAvg))
		}
		t.Rows = append(t.Rows, []string{"mixed", m, "-", "-", fmtUs(updAvg), "-", rate, fmtDur(qAvg)})
	}
	return t, nil
}
