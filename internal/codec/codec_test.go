package codec

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestUvarintRoundTrip(t *testing.T) {
	values := []uint64{0, 1, 127, 128, 300, 1 << 20, 1<<40 + 17, math.MaxUint64}
	for _, v := range values {
		buf := PutUvarint(nil, v)
		got, n, err := Uvarint(buf)
		if err != nil {
			t.Fatalf("Uvarint(%d): %v", v, err)
		}
		if got != v || n != len(buf) {
			t.Errorf("Uvarint(%d) = %d consuming %d bytes, want %d consuming %d", v, got, n, v, len(buf))
		}
	}
}

func TestUvarintEmptyInput(t *testing.T) {
	if _, _, err := Uvarint(nil); err == nil {
		t.Fatal("Uvarint(nil) succeeded, want error")
	}
}

func TestVarintRoundTrip(t *testing.T) {
	values := []int64{0, 1, -1, 63, -64, 1 << 30, -(1 << 30), math.MaxInt64, math.MinInt64}
	for _, v := range values {
		buf := PutVarint(nil, v)
		got, n, err := Varint(buf)
		if err != nil {
			t.Fatalf("Varint(%d): %v", v, err)
		}
		if got != v || n != len(buf) {
			t.Errorf("Varint(%d) = %d consuming %d, want %d consuming %d", v, got, n, v, len(buf))
		}
	}
}

func TestFloat64RoundTrip(t *testing.T) {
	values := []float64{0, 1.5, -2.25, math.MaxFloat64, math.SmallestNonzeroFloat64, math.Inf(1), math.Inf(-1)}
	for _, v := range values {
		buf := PutFloat64(nil, v)
		got, n, err := Float64(buf)
		if err != nil {
			t.Fatalf("Float64(%v): %v", v, err)
		}
		if got != v || n != 8 {
			t.Errorf("Float64(%v) = %v, n=%d", v, got, n)
		}
	}
}

func TestFloat64Short(t *testing.T) {
	if _, _, err := Float64([]byte{1, 2, 3}); err == nil {
		t.Fatal("Float64 on short input succeeded, want error")
	}
}

func TestFloat32RoundTrip(t *testing.T) {
	values := []float32{0, 1.5, -7.75, math.MaxFloat32}
	for _, v := range values {
		buf := PutFloat32(nil, v)
		got, n, err := Float32(buf)
		if err != nil {
			t.Fatalf("Float32(%v): %v", v, err)
		}
		if got != v || n != 4 {
			t.Errorf("Float32(%v) = %v, n=%d", v, got, n)
		}
	}
}

func TestFixedWidthRoundTrip(t *testing.T) {
	b := PutUint32(nil, 0xDEADBEEF)
	v32, n, err := Uint32(b)
	if err != nil || v32 != 0xDEADBEEF || n != 4 {
		t.Errorf("Uint32 round trip = %x, %d, %v", v32, n, err)
	}
	b = PutUint64(nil, 0xCAFEBABE12345678)
	v64, n, err := Uint64(b)
	if err != nil || v64 != 0xCAFEBABE12345678 || n != 8 {
		t.Errorf("Uint64 round trip = %x, %d, %v", v64, n, err)
	}
}

func TestDeltaEncodeRejectsNonAscending(t *testing.T) {
	if _, err := DeltaEncode(nil, []uint64{1, 5, 5}); err == nil {
		t.Error("DeltaEncode accepted repeated value")
	}
	if _, err := DeltaEncode(nil, []uint64{5, 3}); err == nil {
		t.Error("DeltaEncode accepted descending values")
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	ids := []uint64{3, 4, 10, 11, 500, 501, 1 << 33}
	buf, err := DeltaEncode(nil, ids)
	if err != nil {
		t.Fatalf("DeltaEncode: %v", err)
	}
	got, n, err := DeltaDecode(nil, buf, len(ids))
	if err != nil {
		t.Fatalf("DeltaDecode: %v", err)
	}
	if n != len(buf) {
		t.Errorf("DeltaDecode consumed %d bytes, want %d", n, len(buf))
	}
	for i := range ids {
		if got[i] != ids[i] {
			t.Errorf("element %d = %d, want %d", i, got[i], ids[i])
		}
	}
}

func TestDeltaRoundTripProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		// Build a strictly ascending sequence from arbitrary input.
		set := map[uint64]bool{}
		for _, r := range raw {
			set[uint64(r)] = true
		}
		ids := make([]uint64, 0, len(set))
		for v := range set {
			ids = append(ids, v)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		buf, err := DeltaEncode(nil, ids)
		if err != nil {
			return false
		}
		got, _, err := DeltaDecode(nil, buf, len(ids))
		if err != nil {
			return false
		}
		if len(got) != len(ids) {
			return false
		}
		for i := range ids {
			if got[i] != ids[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLenBytesRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xAB}, 1000)}
	for _, p := range payloads {
		buf := PutLenBytes(nil, p)
		got, n, err := LenBytes(buf)
		if err != nil {
			t.Fatalf("LenBytes: %v", err)
		}
		if n != len(buf) || !bytes.Equal(got, p) {
			t.Errorf("LenBytes round trip failed for %d-byte payload", len(p))
		}
	}
}

func TestLenBytesTruncated(t *testing.T) {
	buf := PutLenBytes(nil, []byte("hello"))
	if _, _, err := LenBytes(buf[:len(buf)-2]); err == nil {
		t.Fatal("LenBytes on truncated input succeeded, want error")
	}
}

func TestStringRoundTrip(t *testing.T) {
	buf := PutString(nil, "golden gate")
	s, n, err := String(buf)
	if err != nil || s != "golden gate" || n != len(buf) {
		t.Errorf("String round trip = %q, %d, %v", s, n, err)
	}
}

func TestOrderedUint64Order(t *testing.T) {
	values := []uint64{0, 1, 255, 256, 1 << 31, math.MaxUint64}
	for i := 0; i < len(values); i++ {
		for j := 0; j < len(values); j++ {
			a := PutOrderedUint64(nil, values[i])
			b := PutOrderedUint64(nil, values[j])
			wantCmp := 0
			if values[i] < values[j] {
				wantCmp = -1
			} else if values[i] > values[j] {
				wantCmp = 1
			}
			if got := bytes.Compare(a, b); got != wantCmp {
				t.Errorf("order of %d vs %d: byte compare %d, want %d", values[i], values[j], got, wantCmp)
			}
			aDesc := PutOrderedUint64Desc(nil, values[i])
			bDesc := PutOrderedUint64Desc(nil, values[j])
			if got := bytes.Compare(aDesc, bDesc); got != -wantCmp {
				t.Errorf("desc order of %d vs %d: byte compare %d, want %d", values[i], values[j], got, -wantCmp)
			}
		}
	}
}

func TestOrderedUint64RoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 42, math.MaxUint64} {
		asc, n, err := OrderedUint64(PutOrderedUint64(nil, v))
		if err != nil || asc != v || n != 8 {
			t.Errorf("OrderedUint64 round trip of %d = %d, %d, %v", v, asc, n, err)
		}
		desc, n, err := OrderedUint64Desc(PutOrderedUint64Desc(nil, v))
		if err != nil || desc != v || n != 8 {
			t.Errorf("OrderedUint64Desc round trip of %d = %d, %d, %v", v, desc, n, err)
		}
	}
}

func TestOrderedFloat64OrderProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ka := PutOrderedFloat64(nil, a)
		kb := PutOrderedFloat64(nil, b)
		cmp := bytes.Compare(ka, kb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			// 0 and -0 encode differently but compare equal numerically;
			// accept either ordering for that pair.
			if a == 0 && b == 0 {
				return true
			}
			return cmp == 0
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestOrderedFloat64DescOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	prevScore := 1e9
	var prevKey []byte
	for i := 0; i < 200; i++ {
		score := prevScore - rng.Float64()*100 - 0.001
		key := PutOrderedFloat64Desc(nil, score)
		if prevKey != nil && bytes.Compare(prevKey, key) >= 0 {
			t.Fatalf("descending scores must produce ascending keys: score %v after %v", score, prevScore)
		}
		prevKey = key
		prevScore = score
	}
}

func TestOrderedFloat64RoundTrip(t *testing.T) {
	values := []float64{0, 1.25, -3.5, 87.13, 124.2, math.MaxFloat64, -math.MaxFloat64}
	for _, v := range values {
		got, n, err := OrderedFloat64(PutOrderedFloat64(nil, v))
		if err != nil || got != v || n != 8 {
			t.Errorf("OrderedFloat64 round trip of %v = %v, %d, %v", v, got, n, err)
		}
		gotDesc, n, err := OrderedFloat64Desc(PutOrderedFloat64Desc(nil, v))
		if err != nil || gotDesc != v || n != 8 {
			t.Errorf("OrderedFloat64Desc round trip of %v = %v, %d, %v", v, gotDesc, n, err)
		}
	}
}

func TestOrderedStringRoundTripAndOrder(t *testing.T) {
	words := []string{"", "a", "ab", "b", "golden", "gate", "news"}
	for _, w := range words {
		got, n, err := OrderedString(PutOrderedString(nil, w))
		if err != nil || got != w {
			t.Errorf("OrderedString round trip of %q = %q, %d, %v", w, got, n, err)
		}
	}
	sorted := append([]string(nil), words...)
	sort.Strings(sorted)
	for i := 1; i < len(sorted); i++ {
		a := PutOrderedString(nil, sorted[i-1])
		b := PutOrderedString(nil, sorted[i])
		if bytes.Compare(a, b) >= 0 {
			t.Errorf("encoded order of %q and %q does not match string order", sorted[i-1], sorted[i])
		}
	}
}

func TestOrderedStringUnterminated(t *testing.T) {
	if _, _, err := OrderedString([]byte("no terminator")); err == nil {
		t.Fatal("OrderedString without terminator succeeded, want error")
	}
}
