package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrCorrupt is returned when a decoder encounters malformed input.
var ErrCorrupt = errors.New("codec: corrupt input")

// PutUvarint appends v to dst as a variable-length unsigned integer and
// returns the extended slice.
func PutUvarint(dst []byte, v uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	return append(dst, buf[:n]...)
}

// Uvarint decodes an unsigned varint from src, returning the value and the
// number of bytes consumed.
func Uvarint(src []byte) (uint64, int, error) {
	v, n := binary.Uvarint(src)
	if n <= 0 {
		return 0, 0, fmt.Errorf("%w: uvarint", ErrCorrupt)
	}
	return v, n, nil
}

// PutVarint appends v to dst using zig-zag encoding and returns the extended
// slice.
func PutVarint(dst []byte, v int64) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	return append(dst, buf[:n]...)
}

// Varint decodes a zig-zag signed varint from src, returning the value and
// the number of bytes consumed.
func Varint(src []byte) (int64, int, error) {
	v, n := binary.Varint(src)
	if n <= 0 {
		return 0, 0, fmt.Errorf("%w: varint", ErrCorrupt)
	}
	return v, n, nil
}

// PutFloat64 appends the IEEE-754 bits of v in little-endian order.
func PutFloat64(dst []byte, v float64) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	return append(dst, buf[:]...)
}

// Float64 decodes a float64 written by PutFloat64.
func Float64(src []byte) (float64, int, error) {
	if len(src) < 8 {
		return 0, 0, fmt.Errorf("%w: float64 needs 8 bytes, have %d", ErrCorrupt, len(src))
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(src)), 8, nil
}

// PutFloat32 appends the IEEE-754 bits of v in little-endian order.  Term
// scores are stored as float32 in the TermScore index variants to keep
// postings small, matching the paper's observation that the TermScore lists
// are about 3x the ID lists rather than larger.
func PutFloat32(dst []byte, v float32) []byte {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
	return append(dst, buf[:]...)
}

// Float32 decodes a float32 written by PutFloat32.
func Float32(src []byte) (float32, int, error) {
	if len(src) < 4 {
		return 0, 0, fmt.Errorf("%w: float32 needs 4 bytes, have %d", ErrCorrupt, len(src))
	}
	return math.Float32frombits(binary.LittleEndian.Uint32(src)), 4, nil
}

// PutUint32 appends v in little-endian order.
func PutUint32(dst []byte, v uint32) []byte {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	return append(dst, buf[:]...)
}

// Uint32 decodes a fixed-width uint32.
func Uint32(src []byte) (uint32, int, error) {
	if len(src) < 4 {
		return 0, 0, fmt.Errorf("%w: uint32 needs 4 bytes, have %d", ErrCorrupt, len(src))
	}
	return binary.LittleEndian.Uint32(src), 4, nil
}

// PutUint64 appends v in little-endian order.
func PutUint64(dst []byte, v uint64) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return append(dst, buf[:]...)
}

// Uint64 decodes a fixed-width uint64.
func Uint64(src []byte) (uint64, int, error) {
	if len(src) < 8 {
		return 0, 0, fmt.Errorf("%w: uint64 needs 8 bytes, have %d", ErrCorrupt, len(src))
	}
	return binary.LittleEndian.Uint64(src), 8, nil
}

// DeltaEncode appends a delta (d-gap) encoding of the ascending sequence ids
// to dst: the first element verbatim, then successive differences, each as an
// unsigned varint.  It returns an error if the sequence is not strictly
// ascending, because a non-ascending sequence would silently decode to
// garbage.
func DeltaEncode(dst []byte, ids []uint64) ([]byte, error) {
	prev := uint64(0)
	for i, id := range ids {
		if i == 0 {
			dst = PutUvarint(dst, id)
			prev = id
			continue
		}
		if id <= prev {
			return nil, fmt.Errorf("codec: delta encode: sequence not strictly ascending at index %d (%d after %d)", i, id, prev)
		}
		dst = PutUvarint(dst, id-prev)
		prev = id
	}
	return dst, nil
}

// DeltaDecode reads n delta-encoded values from src, appending them to out
// and returning the extended slice plus the number of bytes consumed.
func DeltaDecode(out []uint64, src []byte, n int) ([]uint64, int, error) {
	off := 0
	prev := uint64(0)
	for i := 0; i < n; i++ {
		v, sz, err := Uvarint(src[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("codec: delta decode at element %d: %w", i, err)
		}
		off += sz
		if i == 0 {
			prev = v
		} else {
			prev += v
		}
		out = append(out, prev)
	}
	return out, off, nil
}

// PutLenBytes appends a length-prefixed byte string.
func PutLenBytes(dst, b []byte) []byte {
	dst = PutUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// LenBytes decodes a length-prefixed byte string, returning a sub-slice of
// src (no copy) and the number of bytes consumed.
func LenBytes(src []byte) ([]byte, int, error) {
	n, sz, err := Uvarint(src)
	if err != nil {
		return nil, 0, err
	}
	if uint64(len(src)-sz) < n {
		return nil, 0, fmt.Errorf("%w: length prefix %d exceeds remaining %d bytes", ErrCorrupt, n, len(src)-sz)
	}
	return src[sz : sz+int(n)], sz + int(n), nil
}

// PutString appends a length-prefixed UTF-8 string.
func PutString(dst []byte, s string) []byte {
	dst = PutUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// String decodes a length-prefixed string.
func String(src []byte) (string, int, error) {
	b, n, err := LenBytes(src)
	if err != nil {
		return "", 0, err
	}
	return string(b), n, nil
}
