package codec

import (
	"encoding/binary"
	"fmt"
	"math"
)

// This file contains order-preserving encodings used for composite B+-tree
// keys.  A key built by concatenating these encodings compares bytewise in
// the same order as the tuple of its components, which is what lets the
// Score-Threshold and Chunk methods keep their short lists and long lists
// clustered in (term, score desc, docID) or (term, chunk desc, docID) order
// inside an ordinary B+-tree, exactly as the paper implements them on top of
// BerkeleyDB (§5.2).

// PutOrderedUint64 appends v as 8 big-endian bytes so that bytewise order
// equals numeric order.
func PutOrderedUint64(dst []byte, v uint64) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	return append(dst, buf[:]...)
}

// OrderedUint64 decodes a value written by PutOrderedUint64.
func OrderedUint64(src []byte) (uint64, int, error) {
	if len(src) < 8 {
		return 0, 0, fmt.Errorf("%w: ordered uint64 needs 8 bytes, have %d", ErrCorrupt, len(src))
	}
	return binary.BigEndian.Uint64(src), 8, nil
}

// PutOrderedUint64Desc appends v encoded so that bytewise order equals
// descending numeric order.
func PutOrderedUint64Desc(dst []byte, v uint64) []byte {
	return PutOrderedUint64(dst, ^v)
}

// OrderedUint64Desc decodes a value written by PutOrderedUint64Desc.
func OrderedUint64Desc(src []byte) (uint64, int, error) {
	v, n, err := OrderedUint64(src)
	if err != nil {
		return 0, 0, err
	}
	return ^v, n, nil
}

// orderedFloatBits maps float64 bits to a uint64 whose unsigned order equals
// the float's numeric order (NaNs sort above +Inf; the index layer never
// stores NaN scores).
func orderedFloatBits(f float64) uint64 {
	bits := math.Float64bits(f)
	if bits&(1<<63) != 0 {
		return ^bits // negative numbers: flip everything
	}
	return bits | (1 << 63) // positive numbers: flip the sign bit
}

func floatFromOrderedBits(u uint64) float64 {
	if u&(1<<63) != 0 {
		return math.Float64frombits(u &^ (1 << 63))
	}
	return math.Float64frombits(^u)
}

// PutOrderedFloat64 appends f encoded so that bytewise order equals
// ascending numeric order.
func PutOrderedFloat64(dst []byte, f float64) []byte {
	return PutOrderedUint64(dst, orderedFloatBits(f))
}

// OrderedFloat64 decodes a value written by PutOrderedFloat64.
func OrderedFloat64(src []byte) (float64, int, error) {
	u, n, err := OrderedUint64(src)
	if err != nil {
		return 0, 0, err
	}
	return floatFromOrderedBits(u), n, nil
}

// PutOrderedFloat64Desc appends f encoded so that bytewise order equals
// descending numeric order.  Score-ordered inverted lists use this so that a
// forward B+-tree scan visits postings from highest to lowest score.
func PutOrderedFloat64Desc(dst []byte, f float64) []byte {
	return PutOrderedUint64(dst, ^orderedFloatBits(f))
}

// OrderedFloat64Desc decodes a value written by PutOrderedFloat64Desc.
func OrderedFloat64Desc(src []byte) (float64, int, error) {
	u, n, err := OrderedUint64(src)
	if err != nil {
		return 0, 0, err
	}
	return floatFromOrderedBits(^u), n, nil
}

// PutOrderedString appends s followed by a 0x00 terminator so that prefix
// keys group together and shorter strings sort before longer ones with the
// same prefix.  The string must not itself contain a NUL byte; term strings
// produced by the analyzer never do.
func PutOrderedString(dst []byte, s string) []byte {
	dst = append(dst, s...)
	return append(dst, 0x00)
}

// OrderedString decodes a string written by PutOrderedString.
func OrderedString(src []byte) (string, int, error) {
	for i, b := range src {
		if b == 0x00 {
			return string(src[:i]), i + 1, nil
		}
	}
	return "", 0, fmt.Errorf("%w: unterminated ordered string", ErrCorrupt)
}
