// Package codec provides the low-level binary encodings shared by the
// storage engine and the inverted-list layouts: unsigned and zig-zag signed
// varints, delta ("d-gap") encoding of sorted integer sequences, and
// fixed-width float encodings.
//
// The ID and Chunk methods in the paper owe part of their compactness to
// differential encoding of document IDs within ID-ordered runs (§5.2,
// Table 1); this package supplies exactly that primitive.
//
// See ARCHITECTURE.md for the layer map — where this package sits in the
// stack — and for the repo-wide concurrency contract.
package codec
