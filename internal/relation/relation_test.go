package relation

import (
	"errors"
	"fmt"
	"testing"

	"svrdb/internal/storage/buffer"
	"svrdb/internal/storage/pagefile"
)

func newDB(t testing.TB) *DB {
	t.Helper()
	return NewDB(buffer.MustNew(pagefile.MustNewMem(4096), 1024))
}

func moviesSchema() Schema {
	return Schema{
		Name: "Movies",
		Columns: []Column{
			{Name: "mID", Kind: KindInt64},
			{Name: "name", Kind: KindString},
			{Name: "desc", Kind: KindString},
			{Name: "year", Kind: KindInt64},
		},
	}
}

func TestSchemaValidation(t *testing.T) {
	cases := []struct {
		name   string
		schema Schema
		ok     bool
	}{
		{"valid", moviesSchema(), true},
		{"no name", Schema{Columns: []Column{{Name: "id", Kind: KindInt64}}}, false},
		{"no columns", Schema{Name: "T"}, false},
		{"non-int pk", Schema{Name: "T", Columns: []Column{{Name: "id", Kind: KindString}}}, false},
		{"duplicate column", Schema{Name: "T", Columns: []Column{{Name: "id", Kind: KindInt64}, {Name: "id", Kind: KindString}}}, false},
		{"unnamed column", Schema{Name: "T", Columns: []Column{{Name: "id", Kind: KindInt64}, {Name: "", Kind: KindString}}}, false},
		{"bad kind", Schema{Name: "T", Columns: []Column{{Name: "id", Kind: KindInt64}, {Name: "x", Kind: Kind(99)}}}, false},
	}
	for _, c := range cases {
		err := c.schema.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: validation passed, want error", c.name)
		}
	}
}

func TestInsertGetUpdateDelete(t *testing.T) {
	db := newDB(t)
	movies, err := db.CreateTable(moviesSchema())
	if err != nil {
		t.Fatal(err)
	}
	row := Row{Int(1), Str("American Thrift"), Str("a classic about the golden gate"), Int(1962)}
	if err := movies.Insert(row); err != nil {
		t.Fatal(err)
	}
	if movies.Len() != 1 {
		t.Errorf("Len = %d, want 1", movies.Len())
	}
	got, err := movies.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if got[1].S != "American Thrift" || got[3].I != 1962 {
		t.Errorf("Get returned %v", got)
	}

	if err := movies.Update(1, map[string]Value{"year": Int(1963)}); err != nil {
		t.Fatal(err)
	}
	got, _ = movies.Get(1)
	if got[3].I != 1963 {
		t.Errorf("year after update = %d, want 1963", got[3].I)
	}

	if err := movies.Delete(1); err != nil {
		t.Fatal(err)
	}
	if _, err := movies.Get(1); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after delete = %v, want ErrNotFound", err)
	}
	if movies.Len() != 0 {
		t.Errorf("Len after delete = %d, want 0", movies.Len())
	}
}

func TestInsertValidation(t *testing.T) {
	db := newDB(t)
	movies, _ := db.CreateTable(moviesSchema())
	if err := movies.Insert(Row{Int(1), Str("x")}); err == nil {
		t.Error("short row accepted")
	}
	if err := movies.Insert(Row{Str("1"), Str("x"), Str("y"), Int(2000)}); err == nil {
		t.Error("wrong-typed primary key accepted")
	}
	good := Row{Int(7), Str("a"), Str("b"), Int(2000)}
	if err := movies.Insert(good); err != nil {
		t.Fatal(err)
	}
	if err := movies.Insert(good); !errors.Is(err, ErrDuplicateKey) {
		t.Errorf("duplicate insert error = %v, want ErrDuplicateKey", err)
	}
}

func TestUpdateValidation(t *testing.T) {
	db := newDB(t)
	movies, _ := db.CreateTable(moviesSchema())
	if err := movies.Insert(Row{Int(1), Str("a"), Str("b"), Int(2000)}); err != nil {
		t.Fatal(err)
	}
	if err := movies.Update(1, map[string]Value{"mID": Int(2)}); err == nil {
		t.Error("primary key update accepted")
	}
	if err := movies.Update(1, map[string]Value{"year": Str("nope")}); err == nil {
		t.Error("wrong-typed update accepted")
	}
	if err := movies.Update(1, map[string]Value{"missing": Int(1)}); !errors.Is(err, ErrNoSuchColumn) {
		t.Errorf("unknown column update error = %v, want ErrNoSuchColumn", err)
	}
	if err := movies.Update(99, map[string]Value{"year": Int(1)}); !errors.Is(err, ErrNotFound) {
		t.Errorf("update of missing row error = %v, want ErrNotFound", err)
	}
}

func TestScanOrderAndEarlyStop(t *testing.T) {
	db := newDB(t)
	movies, _ := db.CreateTable(moviesSchema())
	for i := 50; i >= 1; i-- {
		if err := movies.Insert(Row{Int(int64(i)), Str("m"), Str("d"), Int(2000)}); err != nil {
			t.Fatal(err)
		}
	}
	var pks []int64
	if err := movies.Scan(func(r Row) bool {
		pks = append(pks, r[0].I)
		return len(pks) < 10
	}); err != nil {
		t.Fatal(err)
	}
	if len(pks) != 10 {
		t.Fatalf("early-stopped scan visited %d rows", len(pks))
	}
	for i, pk := range pks {
		if pk != int64(i+1) {
			t.Errorf("scan order wrong: position %d has pk %d", i, pk)
		}
	}
}

func TestSecondaryIndexLookup(t *testing.T) {
	db := newDB(t)
	reviews, err := db.CreateTable(Schema{
		Name: "Reviews",
		Columns: []Column{
			{Name: "rID", Kind: KindInt64},
			{Name: "mID", Kind: KindInt64},
			{Name: "rating", Kind: KindFloat64},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := reviews.CreateIndex("mID"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		row := Row{Int(int64(i)), Int(int64(i % 10)), Float(float64(i%5) + 1)}
		if err := reviews.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	var count int
	var sum float64
	if err := reviews.LookupByColumn("mID", Int(3), func(r Row) bool {
		count++
		sum += r[2].F
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Errorf("lookup returned %d rows, want 10", count)
	}
	// mID 3 corresponds to rIDs 3,13,...,93 whose ratings are (i%5)+1.
	want := 0.0
	for i := 3; i < 100; i += 10 {
		want += float64(i%5) + 1
	}
	if sum != want {
		t.Errorf("sum of ratings = %g, want %g", sum, want)
	}
}

func TestSecondaryIndexMaintainedOnMutations(t *testing.T) {
	db := newDB(t)
	stats, _ := db.CreateTable(Schema{
		Name: "Statistics",
		Columns: []Column{
			{Name: "sID", Kind: KindInt64},
			{Name: "mID", Kind: KindInt64},
			{Name: "nVisit", Kind: KindInt64},
		},
	})
	if err := stats.CreateIndex("mID"); err != nil {
		t.Fatal(err)
	}
	if err := stats.Insert(Row{Int(1), Int(10), Int(100)}); err != nil {
		t.Fatal(err)
	}
	if err := stats.Insert(Row{Int(2), Int(20), Int(5)}); err != nil {
		t.Fatal(err)
	}
	// Move row 1 from mID 10 to mID 20.
	if err := stats.Update(1, map[string]Value{"mID": Int(20)}); err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := stats.LookupByColumn("mID", Int(10), func(Row) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Errorf("old index entry still present: %d rows for mID 10", count)
	}
	count = 0
	if err := stats.LookupByColumn("mID", Int(20), func(Row) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Errorf("rows for mID 20 = %d, want 2", count)
	}
	// Delete removes index entries too.
	if err := stats.Delete(2); err != nil {
		t.Fatal(err)
	}
	count = 0
	if err := stats.LookupByColumn("mID", Int(20), func(Row) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("rows for mID 20 after delete = %d, want 1", count)
	}
}

func TestLookupWithoutIndexFails(t *testing.T) {
	db := newDB(t)
	movies, _ := db.CreateTable(moviesSchema())
	if err := movies.LookupByColumn("year", Int(2000), func(Row) bool { return true }); err == nil {
		t.Error("LookupByColumn without index succeeded, want error")
	}
}

func TestChangeNotifications(t *testing.T) {
	db := newDB(t)
	movies, _ := db.CreateTable(moviesSchema())
	var changes []Change
	movies.OnChange(func(c Change) { changes = append(changes, c) })

	if err := movies.Insert(Row{Int(1), Str("a"), Str("b"), Int(2000)}); err != nil {
		t.Fatal(err)
	}
	if err := movies.Update(1, map[string]Value{"year": Int(2001)}); err != nil {
		t.Fatal(err)
	}
	if err := movies.Delete(1); err != nil {
		t.Fatal(err)
	}
	if len(changes) != 3 {
		t.Fatalf("received %d change notifications, want 3", len(changes))
	}
	if changes[0].Kind != ChangeInsert || changes[0].New == nil || changes[0].Old != nil {
		t.Errorf("insert change = %+v", changes[0])
	}
	if changes[1].Kind != ChangeUpdate || changes[1].Old[3].I != 2000 || changes[1].New[3].I != 2001 {
		t.Errorf("update change = %+v", changes[1])
	}
	if changes[2].Kind != ChangeDelete || changes[2].New != nil {
		t.Errorf("delete change = %+v", changes[2])
	}
}

func TestNegativeAndLargePrimaryKeys(t *testing.T) {
	db := newDB(t)
	tbl, _ := db.CreateTable(Schema{Name: "T", Columns: []Column{{Name: "id", Kind: KindInt64}, {Name: "v", Kind: KindFloat64}}})
	keys := []int64{-5, -1, 0, 1, 1 << 40}
	for _, k := range keys {
		if err := tbl.Insert(Row{Int(k), Float(float64(k))}); err != nil {
			t.Fatalf("Insert pk %d: %v", k, err)
		}
	}
	for _, k := range keys {
		row, err := tbl.Get(k)
		if err != nil || row[1].F != float64(k) {
			t.Errorf("Get pk %d = %v, %v", k, row, err)
		}
	}
}

func TestCatalog(t *testing.T) {
	db := newDB(t)
	if _, err := db.CreateTable(moviesSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(moviesSchema()); err == nil {
		t.Error("duplicate table creation succeeded")
	}
	if _, err := db.Table("Movies"); err != nil {
		t.Errorf("Table lookup failed: %v", err)
	}
	if _, err := db.Table("Nope"); err == nil {
		t.Error("lookup of missing table succeeded")
	}
	if names := db.TableNames(); len(names) != 1 || names[0] != "Movies" {
		t.Errorf("TableNames = %v", names)
	}
}

func TestValueConversionsAndString(t *testing.T) {
	if Int(7).AsFloat() != 7 || Float(2.5).AsInt() != 2 || Str("x").AsFloat() != 0 || Str("x").AsInt() != 0 {
		t.Error("value conversions wrong")
	}
	if Int(7).String() != "7" || Float(2.5).String() != "2.5" || Str("x").String() != "x" {
		t.Error("value String() wrong")
	}
	if KindInt64.String() != "BIGINT" || KindFloat64.String() != "DOUBLE" || KindString.String() != "VARCHAR" {
		t.Error("kind String() wrong")
	}
	if got := Kind(42).String(); got != "Kind(42)" {
		t.Errorf("unknown kind String() = %q", got)
	}
}

func TestManyRowsSurviveEviction(t *testing.T) {
	// Use a tiny pool so rows round-trip through the page file.
	db := NewDB(buffer.MustNew(pagefile.MustNewMem(1024), 16))
	tbl, err := db.CreateTable(Schema{Name: "T", Columns: []Column{
		{Name: "id", Kind: KindInt64},
		{Name: "payload", Kind: KindString},
	}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		if err := tbl.Insert(Row{Int(int64(i)), Str(fmt.Sprintf("payload-%d", i))}); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	for i := 0; i < n; i += 97 {
		row, err := tbl.Get(int64(i))
		if err != nil || row[1].S != fmt.Sprintf("payload-%d", i) {
			t.Fatalf("Get %d = %v, %v", i, row, err)
		}
	}
}
