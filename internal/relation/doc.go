// Package relation implements the minimal relational substrate the SVR
// engine sits on: typed schemas, tables keyed by an integer primary key and
// stored in B+-trees, secondary indexes, and change notification hooks used
// for incremental materialized-view maintenance.
//
// The paper assumes an ordinary SQL engine (DB2/Oracle/Informix style) that
// stores the base relations, evaluates the SQL-bodied scoring functions and
// incrementally maintains the Score materialized view.  This package is that
// substrate, reduced to the operations those components actually need:
// point lookups by primary key, foreign-key lookups through secondary
// indexes, full scans, and per-row update notifications.
//
// See ARCHITECTURE.md for the layer map — where this package sits in the
// stack — and for the repo-wide concurrency contract.
package relation
